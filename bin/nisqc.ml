(* nisqc — noise-adaptive NISQ compiler command-line interface.

   Subcommands:
     compile      map a benchmark or OpenQASM file onto the machine and
                  print mapping, metrics and (optionally) OpenQASM
     run          compile then estimate the success rate by simulation
     calibration  show a day's machine calibration
     list         list built-in benchmarks and compiler configurations
     experiment   regenerate one of the paper's tables/figures *)

open Cmdliner
module Circuit = Nisq_circuit.Circuit
module Qasm = Nisq_circuit.Qasm
module Calibration = Nisq_device.Calibration
module Calib_io = Nisq_device.Calib_io
module Calib_sanitize = Nisq_device.Calib_sanitize
module Faultkit = Nisq_faultkit.Faultkit
module Ibmq16 = Nisq_device.Ibmq16
module Config = Nisq_compiler.Config
module Compile = Nisq_compiler.Compile
module Layout = Nisq_compiler.Layout
module Budget = Nisq_solver.Budget
module Benchmarks = Nisq_bench.Benchmarks
module Experiments = Nisq_bench.Experiments
module Runner = Nisq_sim.Runner
module Telemetry = Nisq_obs.Telemetry
module Obs_clock = Nisq_obs.Clock
module Obs_json = Nisq_obs.Json
module Obs_metrics = Nisq_obs.Metrics
module Report = Nisq_obs.Report
module Atomic_io = Nisq_runkit.Atomic_io
module Deadline = Nisq_runkit.Deadline
module Ledger = Nisq_runkit.Run
module Signals = Nisq_runkit.Signals
module Serve_client = Nisq_serve.Client
module Serve_protocol = Nisq_serve.Protocol

(* ------------------------- shared arguments ------------------------ *)

let method_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "qiskit" -> Ok Config.Qiskit
    | "tsmt" | "t-smt" -> Ok Config.T_smt
    | "tsmt*" | "t-smt*" | "tsmt-star" -> Ok Config.T_smt_star
    | "greedyv" | "greedyv*" -> Ok Config.Greedy_v
    | "greedye" | "greedye*" -> Ok Config.Greedy_e
    | s when String.length s > 5 && String.sub s 0 5 = "rsmt:" ->
        (try Ok (Config.R_smt_star (Float.of_string (String.sub s 5 (String.length s - 5))))
         with _ -> Error (`Msg "bad omega in rsmt:<omega>"))
    | "rsmt" | "rsmt*" | "r-smt*" -> Ok (Config.R_smt_star 0.5)
    | _ ->
        Error
          (`Msg
            "unknown method (qiskit | tsmt | tsmt* | rsmt | rsmt:<omega> | \
             greedyv | greedye)")
  in
  let print ppf m =
    Format.pp_print_string ppf
      (match m with
      | Config.Qiskit -> "qiskit"
      | Config.T_smt -> "tsmt"
      | Config.T_smt_star -> "tsmt*"
      | Config.R_smt_star w -> Printf.sprintf "rsmt:%g" w
      | Config.Greedy_v -> "greedyv"
      | Config.Greedy_e -> "greedye")
  in
  Arg.conv (parse, print)

let routing_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "rr" -> Ok Config.Rectangle_reservation
    | "1bp" -> Ok Config.One_bend
    | "bestpath" | "best-path" -> Ok Config.Best_path
    | _ -> Error (`Msg "unknown routing policy (rr | 1bp | bestpath)")
  in
  let print ppf r = Format.pp_print_string ppf (Config.routing_name r) in
  Arg.conv (parse, print)

let method_arg =
  Arg.(
    value
    & opt method_conv (Config.R_smt_star 0.5)
    & info [ "m"; "method" ] ~docv:"METHOD"
        ~doc:
          "Mapping method: qiskit, tsmt, tsmt*, rsmt (= rsmt:0.5), \
           rsmt:$(i,OMEGA), greedyv, greedye.")

let movement_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "swap-back" | "swapback" | "static" -> Ok Config.Swap_back
    | "move" | "move-and-stay" | "dynamic" -> Ok Config.Move_and_stay
    | _ -> Error (`Msg "unknown movement model (swap-back | move-and-stay)")
  in
  let print ppf m =
    Format.pp_print_string ppf
      (match m with Config.Swap_back -> "swap-back" | Config.Move_and_stay -> "move-and-stay")
  in
  Arg.conv (parse, print)

let movement_arg =
  Arg.(
    value
    & opt movement_conv Config.Swap_back
    & info [ "movement" ] ~docv:"MODEL"
        ~doc:"Qubit movement model: swap-back (the paper's static \
              placement) or move-and-stay (dynamic routing).")

let routing_arg =
  Arg.(
    value
    & opt (some routing_conv) None
    & info [ "r"; "routing" ] ~docv:"POLICY"
        ~doc:"Routing policy: rr, 1bp or bestpath (default: the paper's \
              choice for the method).")

let day_arg =
  Arg.(
    value & opt int 0
    & info [ "d"; "day" ] ~docv:"DAY" ~doc:"Calibration day to compile for.")

let seed_arg =
  Arg.(
    value & opt int Ibmq16.default_seed
    & info [ "calibration-seed" ] ~docv:"SEED"
        ~doc:"Seed of the synthetic calibration stream.")

let calib_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "calib" ] ~docv:"FILE"
        ~doc:
          "Compile against the archived calibration in $(docv) (the            format of $(b,nisqc calibration --save)) instead of the            synthetic stream; $(b,--day) and $(b,--calibration-seed) are            then ignored.")

let calib_prev_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "calib-prev" ] ~docv:"FILE"
        ~doc:
          "Previous-day calibration seeding the sanitizer's backfill            chain when loading $(b,--calib).")

let program_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"PROGRAM"
        ~doc:
          "Benchmark name (see $(b,nisqc list)), an OpenQASM 2.0 file, or a \
           mini-Scaffold file (.scaf).")

(* Parse diagnostics go to stderr as "file:line: message" (no line part
   when the error is not tied to one) and exit with status 2, the
   conventional usage/input-error code — never a backtrace. *)
let die_parse file line message =
  if line > 0 then Printf.eprintf "%s:%d: %s\n" file line message
  else Printf.eprintf "%s: %s\n" file message;
  exit 2

let load_program name =
  if Sys.file_exists name then begin
    if Filename.check_suffix name ".scaf" then
      match Nisq_frontend.Scaffold.parse_file name with
      | c -> (Filename.basename name, c, None)
      | exception Nisq_frontend.Scaffold.Parse_error { line; message } ->
          die_parse name line message
    else begin
      let ic = open_in name in
      let len = in_channel_length ic in
      let src = really_input_string ic len in
      close_in ic;
      match Qasm.of_string src with
      | Ok c -> (Filename.basename name, c, None)
      | Error { Qasm.line; message } -> die_parse name line message
    end
  end
  else
    let b = Benchmarks.by_name name in
    (b.Benchmarks.name, b.Benchmarks.circuit, Some b.Benchmarks.expected)

(* --trace/--metrics ride on compile and run; the environment variables
   NISQ_TRACE / NISQ_METRICS arm the same collectors, flags win. *)
let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace_event JSON (Perfetto-loadable) of the            compile/simulate spans to $(docv), and print the span tree.            Env: $(b,NISQ_TRACE).")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Dump the metrics registry (counters, gauges, histograms) after            the command. Env: $(b,NISQ_METRICS=1).")

let events_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "events" ] ~docv:"FILE"
        ~doc:
          "Record the structured event ledger (warnings, cache and            sanitizer notices) and write it to $(docv) as JSONL at exit.            Env: $(b,NISQ_EVENTS).")

let prom_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "prom" ] ~docv:"FILE"
        ~doc:
          "Write a Prometheus text-format scrape of the metrics registry            to $(docv) at exit. Env: $(b,NISQ_PROM).")

let report_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "report" ] ~docv:"FILE"
        ~doc:
          "Write a structured explain report (JSON) of the compile to            $(docv): ESP decomposition per qubit and link, solver evidence            (rung, nodes, bound-ladder prunes), cache provenance and            per-phase timings. Collection never changes the compile —            output is byte-identical either way.")

let inject_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "inject" ] ~docv:"SPEC"
        ~doc:
          "Deterministically inject faults for resilience testing, e.g.            $(b,calib:nan\\@q3;solver:blow;pool:crash\\@chunk7). Env:            $(b,NISQ_FAULTS).")

let deadline_conv =
  let parse s =
    match Deadline.parse_duration s with
    | Ok f -> Ok f
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv (parse, fun ppf s -> Format.fprintf ppf "%gs" s)

let deadline_arg =
  Arg.(
    value
    & opt (some deadline_conv) None
    & info [ "deadline" ] ~docv:"DUR"
        ~doc:
          "Cancel cooperatively after $(docv) (e.g. 30s, 5m, 1h30m):            in-flight work drains, partial results are checkpointed when a            run ledger is active, and the exit status is 3. Env:            $(b,NISQ_DEADLINE).")

let run_id_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "run-id" ] ~docv:"ID"
        ~doc:
          "Journal simulation results under $(b,_runs/)$(docv)$(b,/) as            they complete, enabling $(b,--resume).")

let resume_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "resume" ] ~docv:"ID"
        ~doc:
          "Replay the journal of run $(docv): completed cells are reused            (bit-identically — the simulator is deterministic), only the            remainder is computed.")

let resume_force_arg =
  Arg.(
    value & flag
    & info [ "resume-force" ]
        ~doc:
          "Resume even if the run's recorded identity (program, method,            trials, seeds) differs from this invocation. Individual cells            are still only replayed on an exact digest match.")

(* Arm the cancellation token sources and run [f]; on cancellation,
   checkpoint the ledger (if any), flush telemetry, and exit with the
   reason's code (3 deadline / 130 SIGINT / 143 SIGTERM). *)
let with_cancellation ?ledger deadline f =
  Deadline.init_from_env ();
  Option.iter Deadline.arm_seconds deadline;
  Signals.install ();
  match f () with
  | v ->
      Option.iter (fun r -> Ledger.finish r ~status:"completed") ledger;
      v
  | exception Deadline.Cancelled reason ->
      let status =
        match reason with
        | Deadline.Deadline -> "degraded:deadline"
        | Deadline.Sigint -> "interrupted:sigint"
        | Deadline.Sigterm -> "interrupted:sigterm"
      in
      Option.iter
        (fun r ->
          Ledger.finish r ~status;
          Printf.eprintf
            "nisqc: %s — partial results checkpointed in %s; resume with \
             --resume %s\n\
             %!"
            status (Ledger.dir r) (Ledger.id r))
        ledger;
      if ledger = None then
        Printf.eprintf "nisqc: %s — cancelled before completion\n%!" status;
      Telemetry.finish ();
      exit (Deadline.exit_code reason)

(* Open (or reopen) the run ledger named on the command line. *)
let ledger_of ~identity ~run_id ~resume ~force =
  match (resume, run_id) with
  | Some id, _ -> (
      match Ledger.resume ~run_id:id ~identity ~force () with
      | Ok r ->
          Printf.eprintf "nisqc: resuming run %s from %s\n%!" id (Ledger.dir r);
          Some r
      | Error msg ->
          Printf.eprintf "nisqc: cannot resume: %s\n" msg;
          exit 2)
  | None, Some id -> Some (Ledger.start ~run_id:id ~identity ())
  | None, None -> None

let solver_domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "solver-domains" ] ~docv:"N"
        ~doc:
          "Enable the deterministic parallel solver with $(docv) dedicated            worker domains ($(docv) = 0 runs the same parallel algorithm            on a sequential pool — assignment, objective and node counts            are byte-identical for every $(docv)). Env:            $(b,NISQ_SOLVER_DOMAINS); set $(b,NISQ_SOLVER_PORTFOLIO=1) to            race variable orderings instead of fanning out subtrees.")

let setup_telemetry ?inject ?solver_domains ?events ?prom ?report trace metrics =
  (* The obs layer cannot link runkit; upgrade its file writer to the
     crash-safe one here, once, before anything can flush. *)
  Telemetry.set_sink Atomic_io.write_file;
  Telemetry.init_from_env ();
  Telemetry.configure ?trace
    ?metrics:(if metrics then Some true else None)
    ?events ?prom ();
  (match report with
  | Some _ ->
      (* Cache provenance in the report is counter deltas, so the
         registry must collect; --report alone does not print the
         metrics table. *)
      Report.set_enabled true;
      Obs_metrics.set_enabled true
  | None -> ());
  Nisq_solver.Parallel.init_from_env ();
  (match solver_domains with
  | Some n -> Nisq_solver.Parallel.configure ~domains:n ()
  | None -> ());
  Faultkit.init_from_env ();
  match inject with
  | None -> ()
  | Some spec -> (
      match Faultkit.configure spec with
      | Ok () -> ()
      | Error msg ->
          Printf.eprintf "nisqc: bad --inject spec: %s\n" msg;
          exit 2)

(* The synthetic calibration stream, with any armed calib:* faults
   corrupting it and the sanitizer repairing/quarantining the result —
   exactly the path a real (possibly damaged) calibration log takes. *)
let effective_calibration ~seed ~day () =
  let calib = Ibmq16.calibration ~seed ~day () in
  match Faultkit.calib_faults () with
  | [] -> calib
  | faults ->
      let raw =
        Calib_sanitize.apply_faults (Calib_sanitize.of_calibration calib) faults
      in
      let previous =
        if day > 0 then Some (Ibmq16.calibration ~seed ~day:(day - 1) ())
        else None
      in
      let calib, report = Calib_sanitize.sanitize ?previous raw in
      if not (Calib_sanitize.is_clean report) then begin
        print_endline "calibration sanitizer:";
        print_string (Calib_sanitize.render report);
        print_newline ()
      end;
      calib

(* File-backed calibration for local compiles: the same lenient
   raw-parse + sanitize path the daemon's epoch loading uses, so a file
   that boots nisqd compiles identically here. *)
let file_calibration ?prev path =
  let parse p =
    match Calib_io.load_raw ~path:p with
    | Ok raw -> raw
    | Error { Calib_io.line; message } -> die_parse p line message
  in
  let previous =
    Option.map (fun p -> fst (Calib_sanitize.sanitize (parse p))) prev
  in
  match Calib_sanitize.sanitize ?previous (parse path) with
  | calib, report ->
      if not (Calib_sanitize.is_clean report) then begin
        print_endline "calibration sanitizer:";
        print_string (Calib_sanitize.render report);
        print_newline ()
      end;
      calib
  | exception Invalid_argument msg -> die_parse path 0 msg

let local_calibration ?calib_file ?calib_prev ~seed ~day () =
  match calib_file with
  | Some path -> file_calibration ?prev:calib_prev path
  | None ->
      if Option.is_some calib_prev then begin
        Printf.eprintf "nisqc: --calib-prev needs --calib\n";
        exit 2
      end;
      effective_calibration ~seed ~day ()

let reject_remote_calib calib_file calib_prev =
  if Option.is_some calib_file || Option.is_some calib_prev then begin
    Printf.eprintf
      "nisqc: --calib/--calib-prev are local-only; a daemon serves its own \
       --calib file\n";
    exit 2
  end

(* ------------------------- daemon client --------------------------- *)

let connect_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "connect" ] ~docv:"SOCK"
        ~doc:
          "Route the request through a running $(b,nisqd) listening on            the Unix socket $(docv) instead of compiling in-process, and            print the daemon's JSON reply payload. Retries with capped            exponential backoff, honoring the server's            $(b,retry_after_ms) hint when it sheds load. Exit codes: 4 on            a non-retryable server error, 5 when the daemon stays            unavailable.")

(* Benchmark names travel by name; OpenQASM files travel as source.
   mini-Scaffold needs the local frontend, so it stays local. *)
let remote_program program =
  if Sys.file_exists program then begin
    if Filename.check_suffix program ".scaf" then begin
      Printf.eprintf
        "nisqc: --connect does not support .scaf files; compile locally\n";
      exit 2
    end;
    let ic = open_in program in
    let len = in_channel_length ic in
    let src = really_input_string ic len in
    close_in ic;
    Serve_protocol.Qasm src
  end
  else Serve_protocol.Named program

let remote_call ~socket ?deadline verb =
  let deadline_ms =
    Option.map (fun s -> max 1 (int_of_float (s *. 1000.0))) deadline
  in
  let req = { Serve_protocol.id = 1; deadline_ms; verb } in
  match Serve_client.call_with_retry ~socket req with
  | Ok payload ->
      print_endline (Obs_json.to_string payload);
      Telemetry.finish ()
  | Error (Serve_client.Remote { code; message }) ->
      Printf.eprintf "nisqc: server error [%s]: %s\n" code message;
      exit 4
  | Error (Serve_client.Unavailable msg) ->
      Printf.eprintf "nisqc: daemon unavailable: %s\n" msg;
      exit 5

let config_of ?(movement = Config.Swap_back) method_ routing =
  match routing with
  | Some r -> Config.make ~routing:r ~movement method_
  | None -> Config.make ~movement method_

let describe_result name (r : Compile.t) =
  Printf.printf "program     : %s (%d qubits, %d gates, %d CNOTs)\n" name
    r.Compile.program.Circuit.num_qubits
    (Circuit.gate_count r.Compile.program)
    (Circuit.cnot_count r.Compile.program);
  Printf.printf "config      : %s\n" (Config.name r.Compile.config);
  Printf.printf "day         : %d\n" r.Compile.calib.Calibration.day;
  Printf.printf "swaps       : %d\n" r.Compile.swap_count;
  Printf.printf "duration    : %d timeslots (%.2f us)\n" r.Compile.duration
    (Float.of_int r.Compile.duration *. Calibration.timeslot_ns /. 1000.0);
  Printf.printf "ESP         : %.4f\n" r.Compile.esp;
  Printf.printf "compile time: %.4f s\n" r.Compile.compile_seconds;
  (match r.Compile.solver_stats with
  | Some s ->
      Printf.printf "solver      : %d nodes, %s%s\n" s.Budget.nodes_visited
        (if s.Budget.proven_optimal then "proven optimal" else "budget-truncated")
        (if s.Budget.degraded then ", DEGRADED (budget blown)" else "")
  | None -> ());
  (match r.Compile.rung with
  | Some Compile.Rung_full | None -> ()
  | Some rung ->
      Printf.printf "fallback    : %s rung of the solver ladder\n"
        (Compile.rung_name rung));
  Printf.printf "\nmapping (program qubits on the device grid):\n%s\n"
    (Layout.render Ibmq16.topology ~calib:r.Compile.calib r.Compile.layout)

(* ------------------------------ compile ---------------------------- *)

let compile_cmd =
  let run program method_ routing movement day seed emit_qasm diagram trace
      metrics events prom report inject deadline solver_domains connect
      calib_file calib_prev =
    setup_telemetry ?inject ?solver_domains ?events ?prom ?report trace metrics;
    match connect with
    | Some socket ->
        reject_remote_calib calib_file calib_prev;
        remote_call ~socket ?deadline
          (Serve_protocol.Compile
             {
               program = remote_program program;
               method_;
               routing;
               movement;
               day;
               calib_seed = seed;
               emit_qasm;
             })
    | None ->
    with_cancellation deadline @@ fun () ->
    let name, circuit, _ = load_program program in
    let calib = local_calibration ?calib_file ?calib_prev ~seed ~day () in
    if diagram then begin
      print_endline "source circuit:";
      print_string (Nisq_circuit.Draw.render circuit);
      print_newline ()
    end;
    let r = Compile.run ~config:(config_of ~movement method_ routing) ~calib circuit in
    describe_result name r;
    if emit_qasm then begin
      print_endline "compiled OpenQASM:";
      print_string (Compile.to_qasm r)
    end;
    (match (report, r.Compile.report) with
    | Some path, Some rep ->
        Atomic_io.write_json ~path (Report.to_json rep);
        Printf.eprintf "explain report written to %s\n%!" path
    | _ -> ());
    Telemetry.finish ()
  in
  let qasm_arg =
    Arg.(value & flag & info [ "emit-qasm" ] ~doc:"Print the compiled OpenQASM.")
  in
  let diagram_arg =
    Arg.(value & flag & info [ "diagram" ] ~doc:"Print an ASCII circuit diagram.")
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Map a program onto the machine")
    Term.(
      const run $ program_arg $ method_arg $ routing_arg $ movement_arg
      $ day_arg $ seed_arg $ qasm_arg $ diagram_arg $ trace_arg $ metrics_arg
      $ events_arg $ prom_arg $ report_arg $ inject_arg $ deadline_arg
      $ solver_domains_arg $ connect_arg $ calib_file_arg $ calib_prev_arg)

(* -------------------------------- run ------------------------------ *)

let run_cmd =
  let run program method_ routing movement day seed trials sim_seed trace
      metrics events prom inject deadline run_id resume force solver_domains
      connect calib_file calib_prev =
    setup_telemetry ?inject ?solver_domains ?events ?prom trace metrics;
    (match connect with
    | Some socket ->
        reject_remote_calib calib_file calib_prev;
        remote_call ~socket ?deadline
          (Serve_protocol.Run
             {
               compile =
                 {
                   program = remote_program program;
                   method_;
                   routing;
                   movement;
                   day;
                   calib_seed = seed;
                   emit_qasm = false;
                 };
               trials;
               sim_seed;
             });
        exit 0
    | None -> ());
    (* The summary's chunk-latency percentiles read the sim histogram,
       so the registry collects during `run` regardless of --metrics. *)
    Obs_metrics.set_enabled true;
    let identity =
      Obs_json.Obj
        [
          ("harness", Obs_json.String "nisqc run");
          ("program", Obs_json.String program);
          ("method", Obs_json.String (Config.name (config_of method_ routing)));
          ("day", Obs_json.Int day);
          ("calibration_seed", Obs_json.Int seed);
          ("trials", Obs_json.Int trials);
          ("sim_seed", Obs_json.Int sim_seed);
        ]
    in
    let ledger = ledger_of ~identity ~run_id ~resume ~force in
    Option.iter Ledger.install ledger;
    with_cancellation ?ledger deadline @@ fun () ->
    let name, circuit, expected = load_program program in
    let calib = local_calibration ?calib_file ?calib_prev ~seed ~day () in
    let r = Compile.run ~config:(config_of ~movement method_ routing) ~calib circuit in
    describe_result name r;
    let runner = Experiments.runner_of r in
    let pool = Nisq_util.Pool.default () in
    let t0 = Obs_clock.now_ns () in
    (* Journalled when a ledger is active: a resumed run replays the
       cell (same digest ⇒ same value) instead of re-simulating. *)
    let success =
      Experiments.checkpointed_success_rate ~trials ~seed:sim_seed ~pool r
    in
    let wall_s = Int64.to_float (Int64.sub (Obs_clock.now_ns ()) t0) /. 1e9 in
    Printf.printf "ideal answer : %d (probability %.4f)\n"
      (Runner.ideal_answer runner)
      (Runner.ideal_answer_probability runner);
    (match expected with
    | Some e ->
        Printf.printf "expected     : %d (%s)\n" e
          (if e = Runner.ideal_answer runner then "matches" else "MISMATCH")
    | None -> ());
    Printf.printf "success rate : %.4f over %d trials\n" success trials;
    (* Pool-size-independent summary: throughput plus chunk-latency
       percentiles from the sim histogram — the worker count lives in
       the metrics/trace output, not here. *)
    Printf.printf "sim wall     : %.3f s (%.0f trials/s)\n" wall_s
      (Float.of_int trials /. Float.max wall_s 1e-9);
    let h = Obs_metrics.histogram "sim.chunk_latency_ns" in
    let chunks = Obs_metrics.histogram_count h in
    if chunks > 0 then begin
      let q p = Obs_metrics.quantile h p /. 1e6 in
      Printf.printf
        "chunk latency: p50 %.2f ms, p95 %.2f ms, p99 %.2f ms (%d chunks)\n"
        (q 0.5) (q 0.95) (q 0.99) chunks
    end;
    (* Fast-path routing: how many noisy trials the exact stabilizer
       backend took vs the dense fallback, with per-backend chunk
       latencies — the evidence that the Clifford tier engaged (ideal
       no-fault trials skip both backends and appear in neither). *)
    let hits = Obs_metrics.value (Obs_metrics.counter "sim.clifford.hit") in
    let falls =
      Obs_metrics.value (Obs_metrics.counter "sim.clifford.fallback")
    in
    if hits + falls > 0 then begin
      Printf.printf
        "sim backends : %d tableau trials, %d dense trials (job %s)\n" hits
        falls
        (if Runner.clifford_capable runner then "clifford"
         else "non-clifford");
      List.iter
        (fun (label, name) ->
          let h = Obs_metrics.histogram name in
          let n = Obs_metrics.histogram_count h in
          if n > 0 then begin
            let q p = Obs_metrics.quantile h p /. 1e6 in
            Printf.printf
              "  %-7s    : p50 %.2f ms, p95 %.2f ms, p99 %.2f ms (%d chunks)\n"
              label (q 0.5) (q 0.95) (q 0.99) n
          end)
        [
          ("tableau", "sim.chunk_latency_tableau_ns");
          ("dense", "sim.chunk_latency_dense_ns");
        ]
    end;
    Telemetry.finish ()
  in
  let trials_arg =
    Arg.(value & opt int 4096
         & info [ "t"; "trials" ] ~docv:"N" ~doc:"Number of noisy trials.")
  in
  let sim_seed_arg =
    Arg.(value & opt int 424242
         & info [ "sim-seed" ] ~docv:"SEED" ~doc:"Simulation seed.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Compile then simulate noisy execution")
    Term.(
      const run $ program_arg $ method_arg $ routing_arg $ movement_arg
      $ day_arg $ seed_arg $ trials_arg $ sim_seed_arg $ trace_arg
      $ metrics_arg $ events_arg $ prom_arg $ inject_arg $ deadline_arg
      $ run_id_arg $ resume_arg $ resume_force_arg $ solver_domains_arg
      $ connect_arg $ calib_file_arg $ calib_prev_arg)

(* ---------------------------- calibration -------------------------- *)

let calibration_cmd =
  let run day seed save load =
    let calib =
      match load with
      | Some path -> (
          (* Lenient load: structural errors are fatal, but bad field
             values are repaired/quarantined by the sanitizer, with the
             repair report shown. *)
          match Calib_io.load_raw ~path with
          | Error { Calib_io.line; message } -> die_parse path line message
          | Ok raw ->
              let calib, report = Calib_sanitize.sanitize raw in
              if not (Calib_sanitize.is_clean report) then begin
                print_endline "sanitizer report:";
                print_string (Calib_sanitize.render report);
                print_newline ()
              end;
              calib)
      | None -> Ibmq16.calibration ~seed ~day ()
    in
    Format.printf "%a@." Calibration.pp_summary calib;
    print_newline ();
    if Nisq_device.Topology.is_grid calib.Calibration.topology then begin
      print_string
        (Layout.render calib.Calibration.topology ~calib
           (Layout.of_array
              ~num_hw:(Nisq_device.Topology.num_qubits calib.Calibration.topology)
              [||]));
      print_endline
        "(nodes: readout error %; edges: CNOT error %; all values daily)"
    end;
    match save with
    | Some path ->
        Nisq_device.Calib_io.save calib ~path;
        Printf.printf "saved calibration to %s\n" path
    | None -> ()
  in
  let save_arg =
    Arg.(value & opt (some string) None
         & info [ "save" ] ~docv:"FILE" ~doc:"Archive the calibration to a file.")
  in
  let load_arg =
    Arg.(value & opt (some string) None
         & info [ "load" ] ~docv:"FILE" ~doc:"Show an archived calibration instead.")
  in
  Cmd.v
    (Cmd.info "calibration" ~doc:"Show, archive or reload machine calibration")
    Term.(const run $ day_arg $ seed_arg $ save_arg $ load_arg)

(* -------------------------------- list ----------------------------- *)

let list_cmd =
  let run () =
    print_endline "benchmarks:";
    List.iter
      (fun b ->
        let name, q, g, c = Benchmarks.characteristics b in
        Printf.printf "  %-8s %d qubits, %2d gates, %2d CNOTs  — %s\n" name q g
          c b.Benchmarks.description)
      Benchmarks.all;
    print_endline "\nconfigurations (Table 1):";
    List.iter
      (fun c -> Printf.printf "  %s\n" (Config.name c))
      Config.paper_suite
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List built-in benchmarks and configurations")
    Term.(const run $ const ())

(* ----------------------------- experiment -------------------------- *)

let experiment_cmd =
  let run which trials =
    let out =
      match which with
      | "table2" -> Experiments.table2 ()
      | "fig1" -> Experiments.fig1 ()
      | "fig5" -> Experiments.fig5 ~trials ()
      | "fig6" -> Experiments.fig6 ~trials ()
      | "fig7" -> Experiments.fig7 ~trials ()
      | "fig8" -> Experiments.fig8 ()
      | "fig9" -> Experiments.fig9 ()
      | "fig10" -> Experiments.fig10 ~trials ()
      | "fig11" -> Experiments.fig11 ()
      | "all" -> Experiments.run_all ~trials ()
      | other -> Printf.sprintf "unknown experiment %S\n" other
    in
    print_string out
  in
  let which_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ID" ~doc:"table2, fig1, fig5..fig11, or all.")
  in
  let trials_arg =
    Arg.(value & opt int 2048
         & info [ "t"; "trials" ] ~docv:"N" ~doc:"Trials per success-rate point.")
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate a table/figure from the paper")
    Term.(const run $ which_arg $ trials_arg)

(* -------------------------------- main ----------------------------- *)

let () =
  let doc = "noise-adaptive compiler mappings for NISQ computers" in
  let info = Cmd.info "nisqc" ~version:Serve_protocol.build_id ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ compile_cmd; run_cmd; calibration_cmd; list_cmd; experiment_cmd ]))
