(* nisqd — the compile-as-a-service daemon.

   Subcommands:
     serve   listen on a Unix socket and serve compile/run requests
     call    send one request to a running daemon and print the reply

   Exit codes follow the nisqc conventions: 0 clean (including a drain
   requested over the wire), 2 usage or startup errors, 130/143 when a
   drain was started by SIGINT/SIGTERM, and for `call` 4 when the
   server answered with a non-retryable error, 5 when no answer could
   be obtained within the retry budget. *)

open Cmdliner
module Server = Nisq_serve.Server
module Client = Nisq_serve.Client
module Protocol = Nisq_serve.Protocol
module Deadline = Nisq_runkit.Deadline
module Atomic_io = Nisq_runkit.Atomic_io
module Telemetry = Nisq_obs.Telemetry
module Obs_json = Nisq_obs.Json
module Obs_metrics = Nisq_obs.Metrics
module Events = Nisq_obs.Events
module Faultkit = Nisq_faultkit.Faultkit

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "s"; "socket" ] ~docv:"PATH"
        ~doc:"Unix socket the daemon listens on / the client connects to.")

(* ------------------------------- serve ------------------------------ *)

let serve_cmd =
  let run socket workers queue deadline_ms grace inject events prom metrics
      calib calib_prev calib_watch reload_report max_drift =
    Telemetry.set_sink Atomic_io.write_file;
    Telemetry.init_from_env ();
    Telemetry.configure
      ?metrics:(if metrics then Some true else None)
      ?events ?prom ();
    Events.set_enabled true;
    Obs_metrics.set_enabled true;
    Faultkit.init_from_env ();
    (match inject with
    | None -> ()
    | Some spec -> (
        match Faultkit.configure spec with
        | Ok () -> ()
        | Error msg ->
            Printf.eprintf "nisqd: bad --inject spec: %s\n" msg;
            exit 2));
    (match (calib, calib_prev, calib_watch, reload_report) with
    | None, Some _, _, _ | None, _, Some _, _ | None, _, _, Some _ ->
        Printf.eprintf
          "nisqd: --calib-prev/--calib-watch/--reload-report need --calib\n";
        exit 2
    | _ -> ());
    let calib =
      Option.map
        (fun path ->
          let thresholds =
            match max_drift with
            | None -> Nisq_device.Calib_diff.default_thresholds
            | Some d ->
                {
                  Nisq_device.Calib_diff.default_thresholds with
                  max_mean_cnot_drift = d;
                  max_mean_readout_drift = d;
                }
          in
          Server.calib_config ?prev:calib_prev ?watch_s:calib_watch
            ~thresholds ?report:reload_report path)
        calib
    in
    let cfg =
      {
        (Server.default_config ~socket) with
        workers;
        queue_capacity = queue;
        default_deadline_ms = deadline_ms;
        drain_grace_s = grace;
        calib;
      }
    in
    match Server.run ~signals:true cfg with
    | Server.Drained reason ->
        Telemetry.finish ();
        exit (match reason with None -> 0 | Some r -> Deadline.exit_code r)
    | exception Server.Startup_error msg ->
        Printf.eprintf "nisqd: %s\n" msg;
        exit 2
  in
  let workers_arg =
    Arg.(
      value & opt int 2
      & info [ "workers" ] ~docv:"N" ~doc:"Worker domains serving requests.")
  in
  let queue_arg =
    Arg.(
      value & opt int 64
      & info [ "queue" ] ~docv:"N"
          ~doc:
            "Admission queue capacity; beyond it requests are shed with            an $(b,overloaded) reply.")
  in
  let deadline_arg =
    Arg.(
      value & opt int 30_000
      & info [ "default-deadline-ms" ] ~docv:"MS"
          ~doc:"Deadline for requests that do not carry their own.")
  in
  let grace_arg =
    Arg.(
      value & opt float 5.0
      & info [ "drain-grace" ] ~docv:"SECONDS"
          ~doc:
            "Stage-1 drain budget: how long in-flight work may finish            after SIGTERM before it is cancelled.")
  in
  let inject_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "inject" ] ~docv:"SPEC"
          ~doc:
            "Deterministic fault injection, e.g.            $(b,net:torn\\@req2;server:crash-handler\\@req5). Env:            $(b,NISQ_FAULTS).")
  in
  let events_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "events" ] ~docv:"FILE"
          ~doc:"Write the event ledger as JSONL at exit.")
  in
  let prom_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "prom" ] ~docv:"FILE"
          ~doc:"Write a Prometheus scrape of the metrics at exit.")
  in
  let metrics_arg =
    Arg.(
      value & flag
      & info [ "metrics" ] ~doc:"Dump the metrics registry at exit.")
  in
  let calib_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "calib" ] ~docv:"FILE"
          ~doc:
            "Serve the calibration in $(docv) (epoch 0) instead of            synthetic per-request calibration; enables the $(b,reload)            verb, SIGHUP reload, and $(b,--calib-watch).")
  in
  let calib_prev_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "calib-prev" ] ~docv:"FILE"
          ~doc:
            "Previous-day calibration seeding the sanitizer's backfill            chain for the initial load (reloads backfill from the live            epoch automatically).")
  in
  let calib_watch_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "calib-watch" ] ~docv:"SECONDS"
          ~doc:
            "Poll the $(b,--calib) file's mtime every $(docv) seconds            and reload when it changes.")
  in
  let reload_report_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "reload-report" ] ~docv:"FILE"
          ~doc:
            "Write each reload attempt's $(b,nisq-reload/1) JSON report            to $(docv) (overwritten per attempt); check with            $(b,jsonlint --reload).")
  in
  let max_drift_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "max-drift" ] ~docv:"FRACTION"
          ~doc:
            "Reload drift gate: reject a candidate whose mean CNOT or            readout error drifted by more than $(docv) relative to the            live epoch (default 0.5).")
  in
  Cmd.v
    (Cmd.info "serve" ~doc:"Serve compile/run requests on a Unix socket")
    Term.(
      const run $ socket_arg $ workers_arg $ queue_arg $ deadline_arg
      $ grace_arg $ inject_arg $ events_arg $ prom_arg $ metrics_arg
      $ calib_arg $ calib_prev_arg $ calib_watch_arg $ reload_report_arg
      $ max_drift_arg)

(* ------------------------------- call ------------------------------- *)

let call_cmd =
  let run socket verb program method_s trials deadline_ms attempts seed record
      =
    let req_of_verb v = { Protocol.id = 1; deadline_ms; verb = v } in
    let work_verb () =
      let params program =
        match Protocol.method_of_string method_s with
        | Error msg ->
            Printf.eprintf "nisqd: %s\n" msg;
            exit 2
        | Ok method_ ->
            {
              Protocol.program;
              method_;
              routing = None;
              movement = Nisq_compiler.Config.Swap_back;
              day = 0;
              calib_seed = Nisq_device.Ibmq16.default_seed;
              emit_qasm = false;
            }
      in
      match (verb, program) with
      | "ping", _ -> Protocol.Ping
      | "stats", _ -> Protocol.Stats
      | "drain", _ -> Protocol.Drain
      | "reload", path ->
          (* PATH overrides the daemon's configured calibration file for
             this one attempt; exit 0 on any decision — the RPC
             succeeded, the report says promoted or rolled-back. *)
          Protocol.Reload { path }
      | "compile", Some p -> Protocol.Compile (params (Protocol.Named p))
      | "run", Some p ->
          Protocol.Run
            {
              compile = params (Protocol.Named p);
              trials;
              sim_seed = 424242;
            }
      | ("compile" | "run"), None ->
          Printf.eprintf "nisqd: %s needs a PROGRAM argument\n" verb;
          exit 2
      | other, _ ->
          Printf.eprintf
            "nisqd: unknown verb %S (ping | stats | drain | reload | compile \
             | run)\n"
            other;
          exit 2
    in
    let req = req_of_verb (work_verb ()) in
    let capture = Buffer.create 256 in
    let result =
      match record with
      | None ->
          Client.call_with_retry ~attempts ~seed ~socket req
      | Some _ -> (
          (* --record wants the raw frames, so drive a single connection
             by hand instead of the retry loop. *)
          match Client.connect ~socket with
          | Error msg -> Error (Client.Unavailable msg)
          | Ok conn ->
              let r =
                Client.call ~record:(Buffer.add_string capture) conn req
              in
              Client.close conn;
              (match r with
              | Ok { Protocol.body = Protocol.Result v; _ } -> Ok v
              | Ok { body = Protocol.Overloaded { retry_after_ms; _ }; _ } ->
                  Error
                    (Client.Unavailable
                       (Printf.sprintf "overloaded; retry after %d ms"
                          retry_after_ms))
              | Ok { body = Protocol.Failed { code; message; retryable }; _ }
                ->
                  if retryable then Error (Client.Unavailable message)
                  else Error (Client.Remote { code; message })
              | Error msg -> Error (Client.Unavailable msg)))
    in
    Option.iter
      (fun path -> Atomic_io.write_file ~path (Buffer.contents capture))
      record;
    match result with
    | Ok v ->
        print_endline (Obs_json.to_string v);
        exit 0
    | Error (Client.Remote { code; message }) ->
        Printf.eprintf "nisqd: server error [%s]: %s\n" code message;
        exit 4
    | Error (Client.Unavailable msg) ->
        Printf.eprintf "nisqd: unavailable: %s\n" msg;
        exit 5
  in
  let verb_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"VERB"
          ~doc:"ping, stats, drain, reload, compile or run.")
  in
  let program_arg =
    Arg.(
      value
      & pos 1 (some string) None
      & info [] ~docv:"PROGRAM"
          ~doc:
            "Benchmark name for compile/run; candidate calibration file            path for reload (defaults to the daemon's $(b,--calib)            file).")
  in
  let method_arg =
    Arg.(
      value & opt string "rsmt:0.5"
      & info [ "m"; "method" ] ~docv:"METHOD" ~doc:"Mapping method.")
  in
  let trials_arg =
    Arg.(
      value & opt int 4096
      & info [ "t"; "trials" ] ~docv:"N" ~doc:"Trials for the run verb.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline-ms" ] ~docv:"MS" ~doc:"Per-request deadline.")
  in
  let attempts_arg =
    Arg.(
      value & opt int 5
      & info [ "attempts" ] ~docv:"N" ~doc:"Retry budget (backoff between).")
  in
  let seed_arg =
    Arg.(
      value & opt int 0
      & info [ "retry-seed" ] ~docv:"SEED"
          ~doc:"Seed of the deterministic retry jitter.")
  in
  let record_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "record" ] ~docv:"FILE"
          ~doc:
            "Capture the raw wire bytes of the exchange (request and            reply frames) to $(docv); check with $(b,jsonlint --frame).            Disables retries.")
  in
  Cmd.v
    (Cmd.info "call" ~doc:"Send one request to a running daemon")
    Term.(
      const run $ socket_arg $ verb_arg $ program_arg $ method_arg
      $ trials_arg $ deadline_arg $ attempts_arg $ seed_arg $ record_arg)

(* -------------------------------- main ------------------------------ *)

let () =
  let doc = "noise-adaptive NISQ compile service daemon" in
  let info = Cmd.info "nisqd" ~version:Protocol.build_id ~doc in
  exit (Cmd.eval (Cmd.group info [ serve_cmd; call_cmd ]))
