(* QASM pipeline: text in, text out.

   Parses an OpenQASM 2.0 program (the GHZ-like parity circuit below),
   compiles it noise-adaptively, and emits machine-ready OpenQASM whose
   gates are all hardware-supported (nearest-neighbour CNOTs + 1q gates),
   demonstrating that the toolchain composes with any frontend that can
   produce OpenQASM.

   Run with: dune exec examples/qasm_pipeline.exe *)

module Qasm = Nisq_circuit.Qasm
module Circuit = Nisq_circuit.Circuit
module Config = Nisq_compiler.Config
module Compile = Nisq_compiler.Compile
module Ibmq16 = Nisq_device.Ibmq16
module Runner = Nisq_sim.Runner
module Experiments = Nisq_bench.Experiments

let source =
  {|OPENQASM 2.0;
include "qelib1.inc";
// parity of three inputs, accumulated on q[3]
qreg q[4];
creg c[4];
x q[0];
x q[2];
cx q[0],q[3];
cx q[1],q[3];
cx q[2],q[3];
measure q[3] -> c[3];
|}

let () =
  print_endline "input OpenQASM:";
  print_string source;
  let circuit = Qasm.of_string_exn source in
  Printf.printf "\nparsed: %d qubits, %d gates, %d CNOTs\n"
    circuit.Circuit.num_qubits (Circuit.gate_count circuit)
    (Circuit.cnot_count circuit);
  let calib = Ibmq16.calibration ~day:0 () in
  let r = Compile.run ~config:(Config.make Config.Greedy_e) ~calib circuit in
  let runner = Experiments.runner_of r in
  Printf.printf "parity of inputs 1,0,1 -> ideal answer %d, success %.3f\n\n"
    (Runner.ideal_answer runner)
    (Runner.success_rate ~trials:2048 ~seed:5 runner);
  print_endline "compiled OpenQASM (hardware gates over physical qubits):";
  print_string (Compile.to_qasm r)
