# Convenience targets; `make check` is the tier-1 gate plus a smoke run
# of the figure harness (compile + parallel Monte-Carlo on one figure),
# a telemetry smoke (a traced run whose Chrome trace must parse and
# carry the expected span shape), an observability smoke (event ledger,
# explain report and Prometheus scrape, each linted), a kill-and-resume
# smoke (a journalled run killed mid-sweep must resume to byte-identical
# output), a bench smoke (the compile fast-path micro-benchmarks,
# schema-checked against the committed BENCH_compile.json baseline), a
# simulator-scaling smoke (a 2-point scale sweep whose BENCH_sim.json
# entry must lint), the bench-gate regression sentinel over both
# committed baseline trajectories, a
# daemon smoke (nisqd served through injected network/handler faults,
# overload shedding, wire-capture lint and both drain paths), and a
# reload smoke (calibration hot-reload under concurrent clients with
# faulted candidates: byte-identical replies, rollback accounting, and
# a schema-checked nisq-reload/1 report).

.PHONY: all build test check bench bench-smoke bench-compile bench-scale bench-scale-smoke bench-gate micro resume-smoke serve-smoke reload-smoke

all: build

build:
	dune build

test:
	dune runtest

check:
	dune build
	dune runtest
	dune exec bench/main.exe -- fig5 256
	dune exec bin/nisqc.exe -- run BV4 -m rsmt -t 512 \
	  --trace /tmp/nisq-smoke-trace.json --metrics > /dev/null
	dune exec tools/jsonlint.exe -- --trace /tmp/nisq-smoke-trace.json
	dune exec bin/nisqc.exe -- calibration --save /tmp/nisq-smoke-calib.txt \
	  > /dev/null
	dune exec tools/caliblint.exe -- --strict /tmp/nisq-smoke-calib.txt
	dune exec bin/nisqc.exe -- run BV4 -m rsmt -t 512 --metrics \
	  --events /tmp/nisq-smoke-events.jsonl \
	  --inject "calib:nan@q3;solver:blow;pool:crash@chunk0" > /dev/null
	dune exec tools/jsonlint.exe -- --jsonl /tmp/nisq-smoke-events.jsonl
	dune exec bin/nisqc.exe -- compile Adder -m rsmt \
	  --report /tmp/nisq-smoke-report.json \
	  --prom /tmp/nisq-smoke-prom.txt > /dev/null
	dune exec tools/jsonlint.exe -- --report /tmp/nisq-smoke-report.json
	dune exec tools/jsonlint.exe -- --prom /tmp/nisq-smoke-prom.txt
	tools/resume_smoke.sh
	tools/serve_smoke.sh
	tools/reload_smoke.sh
	$(MAKE) bench-smoke
	$(MAKE) bench-scale-smoke
	$(MAKE) bench-gate

# Short-mode run of the compile fast-path micro-benchmarks; the fresh
# baseline must have the same schema and latest benchmark set as the
# committed one (ns/run drift is expected across machines and is not
# checked), and the parallel solver must agree with the sequential one
# (objective parity, pool-size determinism, seeding never adds nodes).
bench-smoke:
	rm -f /tmp/nisq-bench-compile.json
	dune exec bench/main.exe -- micro-compile \
	  --out /tmp/nisq-bench-compile.json > /dev/null
	dune exec tools/jsonlint.exe -- --bench /tmp/nisq-bench-compile.json \
	  BENCH_compile.json
	dune exec bench/main.exe -- solver-par-check

# Append today's entry to the committed baseline trajectory.
bench-compile:
	dune exec bench/main.exe -- micro-compile --out BENCH_compile.json

# Simulator weak/strong scaling sweep (domains x qubits x trials, both
# backends): appends today's entry to the committed BENCH_sim.json
# trajectory, printing the stabilizer-vs-dense speedup per size.
bench-scale:
	dune exec bench/main.exe -- scale --out BENCH_sim.json

# CI smoke: a 2-point sweep at whatever NISQ_DOMAINS the job selects,
# written to a scratch file (its name set depends on the pool size, so
# it must never be appended to the committed trajectory) and linted.
bench-scale-smoke:
	rm -f /tmp/nisq-bench-sim.json
	dune exec bench/main.exe -- scale --smoke \
	  --out /tmp/nisq-bench-sim.json > /dev/null
	dune exec tools/jsonlint.exe -- --bench /tmp/nisq-bench-sim.json

# Regression sentinel: the latest trajectory entry of each committed
# baseline must stay within the noise threshold of the trailing median
# per benchmark (see lib/benchkit/benchwatch.mli for the policy).
bench-gate:
	dune exec tools/benchwatch.exe -- BENCH_compile.json BENCH_sim.json

resume-smoke:
	tools/resume_smoke.sh

serve-smoke:
	tools/serve_smoke.sh

reload-smoke:
	tools/reload_smoke.sh

bench:
	dune exec bench/main.exe

micro:
	dune exec bench/main.exe -- micro
