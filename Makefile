# Convenience targets; `make check` is the tier-1 gate plus a smoke run
# of the figure harness (compile + parallel Monte-Carlo on one figure).

.PHONY: all build test check bench micro

all: build

build:
	dune build

test:
	dune runtest

check:
	dune build
	dune runtest
	dune exec bench/main.exe -- fig5 256

bench:
	dune exec bench/main.exe

micro:
	dune exec bench/main.exe -- micro
