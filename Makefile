# Convenience targets; `make check` is the tier-1 gate plus a smoke run
# of the figure harness (compile + parallel Monte-Carlo on one figure),
# a telemetry smoke (a traced run whose Chrome trace must parse and
# carry the expected span shape), a kill-and-resume smoke (a journalled
# run killed mid-sweep must resume to byte-identical output) and a bench
# smoke (the compile fast-path micro-benchmarks, schema-checked against
# the committed BENCH_compile.json baseline).

.PHONY: all build test check bench bench-smoke bench-compile micro resume-smoke

all: build

build:
	dune build

test:
	dune runtest

check:
	dune build
	dune runtest
	dune exec bench/main.exe -- fig5 256
	dune exec bin/nisqc.exe -- run BV4 -m rsmt -t 512 \
	  --trace /tmp/nisq-smoke-trace.json --metrics > /dev/null
	dune exec tools/jsonlint.exe -- --trace /tmp/nisq-smoke-trace.json
	dune exec bin/nisqc.exe -- calibration --save /tmp/nisq-smoke-calib.txt \
	  > /dev/null
	dune exec tools/caliblint.exe -- --strict /tmp/nisq-smoke-calib.txt
	dune exec bin/nisqc.exe -- run BV4 -m rsmt -t 512 --metrics \
	  --inject "calib:nan@q3;solver:blow;pool:crash@chunk0" > /dev/null
	tools/resume_smoke.sh
	$(MAKE) bench-smoke

# Short-mode run of the compile fast-path micro-benchmarks; the fresh
# baseline must have the same schema and latest benchmark set as the
# committed one (ns/run drift is expected across machines and is not
# checked), and the parallel solver must agree with the sequential one
# (objective parity, pool-size determinism, seeding never adds nodes).
bench-smoke:
	rm -f /tmp/nisq-bench-compile.json
	dune exec bench/main.exe -- micro-compile \
	  --out /tmp/nisq-bench-compile.json > /dev/null
	dune exec tools/jsonlint.exe -- --bench /tmp/nisq-bench-compile.json \
	  BENCH_compile.json
	dune exec bench/main.exe -- solver-par-check

# Append today's entry to the committed baseline trajectory.
bench-compile:
	dune exec bench/main.exe -- micro-compile --out BENCH_compile.json

resume-smoke:
	tools/resume_smoke.sh

bench:
	dune exec bench/main.exe

micro:
	dune exec bench/main.exe -- micro
