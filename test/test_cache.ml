(* Tests for Nisq_device.Calib_cache: calibration-keyed memoization of
   routing structures. The keying contract under test: two calibrations
   share a cache entry iff they agree on every noise array, the topology
   and the quarantine masks — the [day] label is deliberately excluded,
   while anything a [Calib_sanitize] repair or a quarantine decision
   touches must change the key. *)

module Topology = Nisq_device.Topology
module Calibration = Nisq_device.Calibration
module Calib_gen = Nisq_device.Calib_gen
module Calib_sanitize = Nisq_device.Calib_sanitize
module Ibmq16 = Nisq_device.Ibmq16
module Calib_cache = Nisq_device.Calib_cache
module Paths = Nisq_device.Paths
module Metrics = Nisq_obs.Metrics
module Faultkit = Nisq_faultkit.Faultkit

let calib0 () = Ibmq16.calibration ~day:0 ()

(* Deep copy of the mutable noise arrays so a test can perturb one field
   without aliasing the original. *)
let copy (c : Calibration.t) =
  {
    c with
    Calibration.t1_us = Array.copy c.Calibration.t1_us;
    t2_us = Array.copy c.Calibration.t2_us;
    readout_error = Array.copy c.Calibration.readout_error;
    single_error = Array.copy c.Calibration.single_error;
    cnot_error = Array.map Array.copy c.Calibration.cnot_error;
    cnot_duration = Array.map Array.copy c.Calibration.cnot_duration;
    qubit_ok = Array.copy c.Calibration.qubit_ok;
    link_ok = Array.map Array.copy c.Calibration.link_ok;
  }

let test_same_calibration_pointer_equal () =
  Calib_cache.clear ();
  let calib = calib0 () in
  let p1 = Calib_cache.paths calib in
  let p2 = Calib_cache.paths calib in
  Alcotest.(check bool) "same record hits" true (p1 == p2);
  (* an equal record rebuilt from scratch digests identically *)
  let rebuilt = calib0 () in
  Alcotest.(check bool) "not the same record" true (rebuilt != calib);
  let p3 = Calib_cache.paths rebuilt in
  Alcotest.(check bool) "equal noise hits" true (p1 == p3)

let test_day_excluded_from_digest () =
  let calib = calib0 () in
  let relabeled = { (copy calib) with Calibration.day = 99 } in
  Alcotest.(check string) "day does not change the key"
    (Calib_cache.digest calib)
    (Calib_cache.digest relabeled)

let test_cnot_error_changes_digest () =
  Calib_cache.clear ();
  let calib = calib0 () in
  let p1 = Calib_cache.paths calib in
  let perturbed = copy calib in
  (* symmetric edit of one edge, as a fresh calibration day would be *)
  perturbed.Calibration.cnot_error.(0).(1) <- 0.123;
  perturbed.Calibration.cnot_error.(1).(0) <- 0.123;
  Alcotest.(check bool) "digest differs" true
    (Calib_cache.digest calib <> Calib_cache.digest perturbed);
  let p2 = Calib_cache.paths perturbed in
  Alcotest.(check bool) "changed noise misses" true (p1 != p2)

let test_quarantine_changes_digest () =
  Calib_cache.clear ();
  let calib = calib0 () in
  let p1 = Calib_cache.paths calib in
  let n = Topology.num_qubits calib.Calibration.topology in
  let qubit_ok = Array.make n true in
  qubit_ok.(3) <- false;
  let link_ok =
    Array.init n (fun u ->
        Array.init n (fun v -> Topology.adjacent calib.Calibration.topology u v))
  in
  let quarantined = Calibration.with_quarantine calib ~qubit_ok ~link_ok in
  Alcotest.(check bool) "digest differs" true
    (Calib_cache.digest calib <> Calib_cache.digest quarantined);
  let p2 = Calib_cache.paths quarantined in
  Alcotest.(check bool) "quarantined view misses" true (p1 != p2);
  Alcotest.(check bool) "quarantined source unreachable" false
    (Paths.reachable p2 3 0)

let test_sanitize_repair_changes_digest () =
  let calib = calib0 () in
  let raw = Calib_sanitize.of_calibration calib in
  let corrupted =
    Calib_sanitize.apply_faults raw
      [ { Faultkit.target = Faultkit.Qubit 2; kind = Faultkit.Nan } ]
  in
  let repaired, report = Calib_sanitize.sanitize corrupted in
  Alcotest.(check bool) "sanitizer acted" false (Calib_sanitize.is_clean report);
  Alcotest.(check bool) "repair changes the key" true
    (Calib_cache.digest calib <> Calib_cache.digest repaired)

let test_random_calibrations_distinct_digests () =
  (* property-style: every generated day keys its own entry *)
  let topo = Topology.grid ~rows:2 ~cols:8 in
  let digests =
    List.init 12 (fun day ->
        Calib_cache.digest (Calib_gen.generate ~topology:topo ~seed:5 ~day ()))
  in
  let distinct = List.sort_uniq compare digests in
  Alcotest.(check int) "12 days, 12 keys" 12 (List.length distinct)

let test_salt_separates_entries () =
  Calib_cache.clear ();
  let calib = calib0 () in
  let memo : int Calib_cache.memo = Calib_cache.memo "test.salted" in
  let a = Calib_cache.find memo ~salt:"a" calib ~compute:(fun () -> 1) in
  let b = Calib_cache.find memo ~salt:"b" calib ~compute:(fun () -> 2) in
  let a' = Calib_cache.find memo ~salt:"a" calib ~compute:(fun () -> 3) in
  Alcotest.(check int) "salt a" 1 a;
  Alcotest.(check int) "salt b" 2 b;
  Alcotest.(check int) "salt a cached" 1 a'

let test_hit_miss_counters () =
  Calib_cache.clear ();
  let calib = calib0 () in
  let m_hit = Metrics.counter "cache.hit" in
  let m_miss = Metrics.counter "cache.miss" in
  Metrics.set_enabled true;
  Metrics.reset ();
  Fun.protect ~finally:(fun () -> Metrics.set_enabled false) @@ fun () ->
  let _ = Calib_cache.paths calib in
  Alcotest.(check int) "first lookup misses" 1 (Metrics.value m_miss);
  Alcotest.(check int) "no hit yet" 0 (Metrics.value m_hit);
  let _ = Calib_cache.paths calib in
  let _ = Calib_cache.paths calib in
  Alcotest.(check int) "still one miss" 1 (Metrics.value m_miss);
  Alcotest.(check int) "two hits" 2 (Metrics.value m_hit)

let test_clear_forces_recompute () =
  Calib_cache.clear ();
  let calib = calib0 () in
  let p1 = Calib_cache.paths calib in
  Calib_cache.clear ();
  let p2 = Calib_cache.paths calib in
  Alcotest.(check bool) "clear drops the entry" true (p1 != p2)

let test_cached_paths_equal_fresh () =
  (* the cache must be transparent: a cached [Paths.t] answers every
     query exactly like a freshly built one *)
  Calib_cache.clear ();
  let calib = calib0 () in
  let cached = Calib_cache.paths calib in
  let fresh = Paths.make calib in
  let n = Topology.num_qubits calib.Calibration.topology in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      if a <> b then begin
        Alcotest.(check bool) "reachable agrees"
          (Paths.reachable fresh a b)
          (Paths.reachable cached a b);
        Alcotest.(check (float 0.0)) "log-reliability agrees"
          (Paths.path_log_reliability fresh a b)
          (Paths.path_log_reliability cached a b)
      end
    done
  done

let test_shared_compute_once_across_domains () =
  (* N domains race for the same key: exactly one compute, everyone gets
     the same (physically equal) value, and the counter totals are
     miss=1/hit=N-1 regardless of how the race interleaves. *)
  Calib_cache.clear ();
  let calib = calib0 () in
  let memo : int array Calib_cache.shared_memo =
    Calib_cache.shared_memo "test.shared_race"
  in
  let m_hit = Metrics.counter "cache.hit" in
  let m_miss = Metrics.counter "cache.miss" in
  Metrics.set_enabled true;
  Metrics.reset ();
  Fun.protect ~finally:(fun () -> Metrics.set_enabled false) @@ fun () ->
  let computes = Atomic.make 0 in
  let compute () =
    Atomic.incr computes;
    (* Linger so any concurrent requester arrives while the build is
       still pending and has to take the waiter path. *)
    Unix.sleepf 0.02;
    [| 42 |]
  in
  let worker () = Calib_cache.find_shared memo calib ~compute in
  let domains = List.init 3 (fun _ -> Domain.spawn worker) in
  let v0 = worker () in
  let values = v0 :: List.map Domain.join domains in
  Alcotest.(check int) "one compute" 1 (Atomic.get computes);
  List.iter
    (fun v -> Alcotest.(check bool) "shared value" true (v == v0))
    values;
  Alcotest.(check int) "one miss" 1 (Metrics.value m_miss);
  Alcotest.(check int) "waiters count as hits" 3 (Metrics.value m_hit)

let test_shared_builder_failure_drops_entry () =
  (* A builder that raises must not poison the key: the exception
     reaches the caller, and the next request recomputes from scratch. *)
  Calib_cache.clear ();
  let calib = calib0 () in
  let memo : int Calib_cache.shared_memo =
    Calib_cache.shared_memo "test.shared_fail"
  in
  let boom () = failwith "injected" in
  (match Calib_cache.find_shared memo calib ~compute:boom with
  | _ -> Alcotest.fail "builder exception swallowed"
  | exception Failure m -> Alcotest.(check string) "propagates" "injected" m);
  let v = Calib_cache.find_shared memo calib ~compute:(fun () -> 7) in
  Alcotest.(check int) "retry recomputes" 7 v;
  let v' = Calib_cache.find_shared memo calib ~compute:(fun () -> 8) in
  Alcotest.(check int) "success is cached" 7 v'

let test_shared_clear_flushes () =
  Calib_cache.clear ();
  let calib = calib0 () in
  let memo : int Calib_cache.shared_memo =
    Calib_cache.shared_memo "test.shared_clear"
  in
  let a = Calib_cache.find_shared memo calib ~compute:(fun () -> 1) in
  Calib_cache.clear ();
  let b = Calib_cache.find_shared memo calib ~compute:(fun () -> 2) in
  Alcotest.(check int) "before clear" 1 a;
  Alcotest.(check int) "clear drops shared entries" 2 b

let test_shared_salt_separates_entries () =
  Calib_cache.clear ();
  let calib = calib0 () in
  let memo : int Calib_cache.shared_memo =
    Calib_cache.shared_memo "test.shared_salted"
  in
  let a = Calib_cache.find_shared memo ~salt:"a" calib ~compute:(fun () -> 1) in
  let b = Calib_cache.find_shared memo ~salt:"b" calib ~compute:(fun () -> 2) in
  let a' = Calib_cache.find_shared memo ~salt:"a" calib ~compute:(fun () -> 3) in
  Alcotest.(check int) "salt a" 1 a;
  Alcotest.(check int) "salt b" 2 b;
  Alcotest.(check int) "salt a cached" 1 a'

let suite =
  [
    ("same calibration is pointer-equal", `Quick, test_same_calibration_pointer_equal);
    ("day excluded from digest", `Quick, test_day_excluded_from_digest);
    ("cnot error change misses", `Quick, test_cnot_error_changes_digest);
    ("quarantine change misses", `Quick, test_quarantine_changes_digest);
    ("sanitize repair misses", `Quick, test_sanitize_repair_changes_digest);
    ("random calibrations distinct", `Quick, test_random_calibrations_distinct_digests);
    ("salt separates entries", `Quick, test_salt_separates_entries);
    ("hit/miss counters", `Quick, test_hit_miss_counters);
    ("clear forces recompute", `Quick, test_clear_forces_recompute);
    ("cached paths transparent", `Quick, test_cached_paths_equal_fresh);
    ("shared: one compute across domains", `Quick, test_shared_compute_once_across_domains);
    ("shared: builder failure drops entry", `Quick, test_shared_builder_failure_drops_entry);
    ("shared: clear flushes", `Quick, test_shared_clear_flushes);
    ("shared: salt separates entries", `Quick, test_shared_salt_separates_entries);
  ]
