(* The compile service: frame codec, protocol codecs, admission
   (coalescing, shedding, drain), client backoff, and an in-process
   end-to-end daemon exercised through injected faults.

   The determinism tests double as the NISQ_DOMAINS matrix check: CI
   runs this suite at pool sizes 0, 1 and 4, and every payload
   comparison here is byte-level. *)

module Frame = Nisq_serve.Frame
module Protocol = Nisq_serve.Protocol
module Admission = Nisq_serve.Admission
module Server = Nisq_serve.Server
module Client = Nisq_serve.Client
module Json = Nisq_obs.Json
module Config = Nisq_compiler.Config
module Ibmq16 = Nisq_device.Ibmq16
module Faultkit = Nisq_faultkit.Faultkit

let with_faults spec f =
  (match Faultkit.configure spec with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "bad fault spec %S: %s" spec msg);
  Fun.protect ~finally:Faultkit.clear f

let compile_params ?(day = 0) ?(emit_qasm = false) name =
  {
    Protocol.program = Protocol.Named name;
    method_ = Config.R_smt_star 0.5;
    routing = None;
    movement = Config.Swap_back;
    day;
    calib_seed = Ibmq16.default_seed;
    emit_qasm;
  }

(* ------------------------------ frames ------------------------------ *)

let test_frame_roundtrip_scan () =
  let docs =
    [
      Json.Obj [ ("a", Json.Int 1) ];
      Json.Obj [ ("s", Json.String "x\"y\n") ];
      Json.Obj [];
    ]
  in
  let wire = String.concat "" (List.map Frame.encode docs) in
  match Frame.scan_string wire with
  | Error msg -> Alcotest.failf "scan failed: %s" msg
  | Ok got ->
      Alcotest.(check (list string))
        "all frames round-trip"
        (List.map Json.to_string docs)
        (List.map Json.to_string got)

let test_frame_socket_roundtrip () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () ->
      let doc = Json.Obj [ ("hello", Json.Bool true) ] in
      let wire = Frame.write a doc in
      Alcotest.(check string) "returned wire bytes" (Frame.encode doc) wire;
      let recorded = Buffer.create 32 in
      (match Frame.read ~record:(Buffer.add_string recorded) b with
      | Ok got ->
          Alcotest.(check string)
            "payload" (Json.to_string doc) (Json.to_string got)
      | Error e -> Alcotest.failf "read failed: %s" (Frame.error_message e));
      Alcotest.(check string)
        "record captured the wire bytes" wire (Buffer.contents recorded);
      (* clean EOF on a frame boundary *)
      Unix.close a;
      match Frame.read b with
      | Error Frame.Eof -> ()
      | Ok _ -> Alcotest.fail "read after close must not succeed"
      | Error e -> Alcotest.failf "want Eof, got %s" (Frame.error_message e))

let test_frame_torn () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () ->
      Frame.write_torn a (Json.Obj [ ("big", Json.String (String.make 64 'x')) ]);
      Unix.close a;
      match Frame.read b with
      | Error (Frame.Torn _) -> ()
      | Ok _ -> Alcotest.fail "torn frame parsed"
      | Error e -> Alcotest.failf "want Torn, got %s" (Frame.error_message e))

let test_frame_too_large () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () ->
      (* A length prefix of 2^30: far beyond max_payload_bytes. *)
      let prefix = Bytes.create 4 in
      Bytes.set_uint8 prefix 0 0x40;
      Bytes.set_uint8 prefix 1 0;
      Bytes.set_uint8 prefix 2 0;
      Bytes.set_uint8 prefix 3 0;
      ignore (Unix.write a prefix 0 4);
      match Frame.read b with
      | Error (Frame.Too_large n) ->
          Alcotest.(check bool) "reported the length" true
            (n > Frame.max_payload_bytes)
      | Ok _ -> Alcotest.fail "oversized frame accepted"
      | Error e -> Alcotest.failf "want Too_large, got %s" (Frame.error_message e))

(* A peer that trickles one byte at a time (Nagle off, tiny writes, a
   slow link): [Frame.read] must assemble the frame across arbitrarily
   fragmented reads — both inside the 4-byte length prefix and inside
   the payload. *)
let test_frame_one_byte_dribble () =
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
    (fun () ->
      let docs =
        [
          Json.Obj [ ("first", Json.Int 1) ];
          Json.Obj [ ("second", Json.String (String.make 100 'y')) ];
        ]
      in
      let wire = String.concat "" (List.map Frame.encode docs) in
      let writer =
        Domain.spawn (fun () ->
            String.iter
              (fun c ->
                ignore (Unix.write_substring w (String.make 1 c) 0 1);
                (* Yield so the reader usually wakes per byte. *)
                Unix.sleepf 0.0002)
              wire;
            Unix.close w)
      in
      let got =
        List.map
          (fun _ ->
            match Frame.read r with
            | Ok v -> Json.to_string v
            | Error e -> Alcotest.failf "read: %s" (Frame.error_message e))
          docs
      in
      Domain.join writer;
      Alcotest.(check (list string))
        "frames survive 1-byte fragmentation"
        (List.map Json.to_string docs)
        got;
      match Frame.read r with
      | Error Frame.Eof -> ()
      | _ -> Alcotest.fail "stream must end cleanly")

(* The same dribble with a SIGALRM interval timer peppering the process:
   blocking reads and writes keep getting interrupted, and Frame must
   resume rather than fail. The assertion is round-trip correctness —
   the test is meaningful whether or not a given read actually took the
   EINTR path (on most runs many do), and never flaky either way. *)
let test_frame_eintr_interleaved () =
  let alarms = ref 0 in
  let old_alrm =
    Sys.signal Sys.sigalrm (Sys.Signal_handle (fun _ -> incr alarms))
  in
  let old_timer =
    Unix.setitimer Unix.ITIMER_REAL
      { Unix.it_value = 0.001; it_interval = 0.001 }
  in
  Fun.protect
    ~finally:(fun () ->
      ignore
        (Unix.setitimer Unix.ITIMER_REAL
           { Unix.it_value = 0.0; it_interval = 0.0 });
      ignore old_timer;
      Sys.set_signal Sys.sigalrm old_alrm)
    (fun () ->
      let r, w = Unix.pipe () in
      Fun.protect
        ~finally:(fun () ->
          (try Unix.close r with Unix.Unix_error _ -> ());
          try Unix.close w with Unix.Unix_error _ -> ())
        (fun () ->
          (* Big enough to overflow the pipe buffer, so the writer also
             blocks (and gets interrupted) mid-frame. *)
          let doc = Json.Obj [ ("blob", Json.String (String.make 300_000 'z')) ] in
          let writer =
            Domain.spawn (fun () ->
                ignore (Frame.write w doc);
                Unix.close w)
          in
          let got =
            match Frame.read r with
            | Ok v -> Json.to_string v
            | Error e -> Alcotest.failf "read: %s" (Frame.error_message e)
          in
          Domain.join writer;
          Alcotest.(check string)
            "large frame survives signal interruption"
            (Json.to_string doc) got;
          (* ~0.3 s of 1 ms alarms: the timer demonstrably fired. *)
          Alcotest.(check bool) "alarms actually fired" true (!alarms > 0)))

let test_frame_malformed () =
  let payload = "{\"key\": nope}" in
  let wire =
    let b = Buffer.create 32 in
    Buffer.add_uint8 b 0;
    Buffer.add_uint8 b 0;
    Buffer.add_uint8 b 0;
    Buffer.add_uint8 b (String.length payload);
    Buffer.add_string b payload;
    Buffer.contents b
  in
  match Frame.scan_string wire with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed payload accepted"

let test_scan_torn_capture () =
  let doc = Json.Obj [ ("a", Json.Int 1) ] in
  let wire = Frame.encode doc in
  let torn = String.sub wire 0 (String.length wire - 2) in
  match Frame.scan_string (wire ^ torn) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "torn trailing frame accepted"

(* ----------------------------- protocol ----------------------------- *)

let roundtrip_request req =
  match Protocol.request_of_json (Protocol.request_to_json req) with
  | Ok got -> got
  | Error msg -> Alcotest.failf "request did not round-trip: %s" msg

let test_request_roundtrip () =
  let reqs =
    [
      { Protocol.id = 7; deadline_ms = Some 1500; verb = Protocol.Ping };
      { Protocol.id = 8; deadline_ms = None; verb = Protocol.Stats };
      { Protocol.id = 9; deadline_ms = None; verb = Protocol.Drain };
      {
        Protocol.id = 10;
        deadline_ms = Some 30;
        verb = Protocol.Compile (compile_params ~day:3 ~emit_qasm:true "bv4");
      };
      {
        Protocol.id = 11;
        deadline_ms = None;
        verb =
          Protocol.Run
            {
              compile =
                {
                  (compile_params "ignored") with
                  Protocol.program = Protocol.Qasm "OPENQASM 2.0;";
                  routing = Some Config.Best_path;
                  movement = Config.Move_and_stay;
                };
              trials = 128;
              sim_seed = 99;
            };
      };
    ]
  in
  List.iter
    (fun req ->
      let got = roundtrip_request req in
      Alcotest.(check string)
        (Protocol.verb_name req.Protocol.verb)
        (Json.to_string (Protocol.request_to_json req))
        (Json.to_string (Protocol.request_to_json got)))
    reqs

let test_reply_roundtrip () =
  let bodies =
    [
      Protocol.Result (Json.Obj [ ("esp", Json.Float 0.5) ]);
      Protocol.Overloaded { retry_after_ms = 40; queue_depth = 3 };
      Protocol.Failed
        { code = "internal"; message = "boom"; retryable = true };
    ]
  in
  List.iter
    (fun body ->
      let r = { Protocol.id = 42; body } in
      match Protocol.reply_of_json (Protocol.reply_to_json r) with
      | Ok got ->
          Alcotest.(check string)
            "reply bytes stable"
            (Json.to_string (Protocol.reply_to_json r))
            (Json.to_string (Protocol.reply_to_json got))
      | Error msg -> Alcotest.failf "reply did not round-trip: %s" msg)
    bodies

let test_request_decode_rejects () =
  let cases =
    [
      "{}";
      "{\"id\":1}";
      "{\"id\":1,\"verb\":\"warp\"}";
      "{\"id\":1,\"verb\":\"compile\"}";
      "{\"id\":1,\"verb\":\"compile\",\"params\":{}}";
      "{\"id\":1,\"verb\":\"compile\",\"params\":{\"program\":\"bv4\",\"qasm\":\"x\",\"method\":\"tsmt\"}}";
      "{\"id\":1,\"deadline_ms\":0,\"verb\":\"ping\"}";
      "{\"id\":1,\"verb\":\"run\",\"params\":{\"program\":\"bv4\",\"method\":\"tsmt\",\"trials\":-1}}";
    ]
  in
  List.iter
    (fun src ->
      match Json.of_string src with
      | Error msg -> Alcotest.failf "test input %S invalid: %s" src msg
      | Ok v -> (
          match Protocol.request_of_json v with
          | Error _ -> ()
          | Ok _ -> Alcotest.failf "accepted %s" src))
    cases

let key_of verb =
  match Protocol.coalesce_key verb with
  | Some k -> k
  | None -> Alcotest.fail "work verb has no coalesce key"

let test_coalesce_key () =
  let c1 = Protocol.Compile (compile_params "bv4") in
  let c2 = Protocol.Compile (compile_params "bv4") in
  let c3 = Protocol.Compile (compile_params ~day:1 "bv4") in
  Alcotest.(check string) "identical params agree" (key_of c1) (key_of c2);
  Alcotest.(check bool) "day changes the key" true (key_of c1 <> key_of c3);
  let r1 =
    Protocol.Run { compile = compile_params "bv4"; trials = 64; sim_seed = 1 }
  in
  let r2 =
    Protocol.Run { compile = compile_params "bv4"; trials = 64; sim_seed = 2 }
  in
  Alcotest.(check bool) "sim seed changes the key" true
    (key_of r1 <> key_of r2);
  Alcotest.(check bool) "compile and run never collide" true
    (key_of c1 <> key_of r1);
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Protocol.verb_name v ^ " not coalescable")
        true
        (Protocol.coalesce_key v = None))
    [ Protocol.Ping; Protocol.Stats; Protocol.Drain ]

(* ----------------------------- admission ---------------------------- *)

let submit ?coalescable q verb deliver =
  Admission.submit ?coalescable q ~verb ~deadline_ms:None ~req_index:0 ~deliver

let test_admission_coalesce_shed () =
  let q = Admission.create ~capacity:2 ~workers:1 () in
  let log = ref [] in
  let deliver tag _body = log := tag :: !log in
  let bv4 = Protocol.Compile (compile_params "bv4") in
  let bv6 = Protocol.Compile (compile_params "bv6") in
  let hs2 = Protocol.Compile (compile_params "hs2") in
  (match submit q bv4 (deliver "a1") with
  | Admission.Admitted -> ()
  | _ -> Alcotest.fail "first submit must admit");
  (match submit q bv4 (deliver "a2") with
  | Admission.Coalesced -> ()
  | _ -> Alcotest.fail "identical queued request must coalesce");
  (match submit q bv6 (deliver "b") with
  | Admission.Admitted -> ()
  | _ -> Alcotest.fail "distinct request must admit");
  Alcotest.(check int) "coalesced waiter takes no slot" 2 (Admission.depth q);
  (match submit q hs2 (deliver "c") with
  | Admission.Shed { retry_after_ms; queue_depth } ->
      Alcotest.(check int) "reported depth" 2 queue_depth;
      Alcotest.(check bool) "retry hint floor" true (retry_after_ms >= 25)
  | _ -> Alcotest.fail "full queue must shed");
  (* Forced-private entries never coalesce. *)
  (match submit ~coalescable:false q bv6 (deliver "b2") with
  | Admission.Shed _ -> ()
  | Admission.Coalesced -> Alcotest.fail "non-coalescable request coalesced"
  | _ -> Alcotest.fail "non-coalescable over a full queue must shed");
  match Admission.pop q with
  | None -> Alcotest.fail "pop returned None on a non-empty queue"
  | Some entry ->
      Alcotest.(check int) "FIFO: first entry first" 2
        (List.length entry.Admission.waiters);
      List.iter (fun d -> d (Protocol.Result Json.Null)) entry.Admission.waiters;
      Alcotest.(check (list string))
        "waiters delivered in submission order" [ "a1"; "a2" ] (List.rev !log);
      (* The popped entry is in flight: its twin starts a new entry. *)
      (match submit q bv4 (deliver "a3") with
      | Admission.Admitted -> ()
      | _ -> Alcotest.fail "in-flight entries must not coalesce");
      Admission.close_intake q;
      (match submit q hs2 (deliver "late") with
      | Admission.Draining -> ()
      | _ -> Alcotest.fail "closed intake must report draining");
      Admission.stop q;
      let rec drain n =
        match Admission.pop q with Some _ -> drain (n + 1) | None -> n
      in
      Alcotest.(check int) "queued entries drain after stop" 2 (drain 0)

let test_admission_retry_hint_tracks_service_time () =
  let q = Admission.create ~capacity:1 ~workers:1 () in
  let bv4 = Protocol.Compile (compile_params "bv4") in
  let bv6 = Protocol.Compile (compile_params "bv6") in
  ignore (submit q bv4 (fun _ -> ()));
  let shed () =
    match submit q bv6 (fun _ -> ()) with
    | Admission.Shed { retry_after_ms; _ } -> retry_after_ms
    | _ -> Alcotest.fail "expected shed"
  in
  let before = shed () in
  for _ = 1 to 20 do
    Admission.note_service_ms q 2000.0
  done;
  let after = shed () in
  Alcotest.(check bool)
    (Printf.sprintf "hint grows with service time (%d -> %d)" before after)
    true (after > before);
  Alcotest.(check bool) "hint is capped" true (after <= 5000)

(* ------------------------------ client ------------------------------ *)

let test_backoff_schedule () =
  let hint = None in
  let at attempt = Client.backoff_ms ~seed:7 ~attempt ~retry_after_ms:hint () in
  Alcotest.(check int) "deterministic" (at 3) (at 3);
  Alcotest.(check bool) "grows" true (at 4 > at 0);
  Alcotest.(check bool) "capped with jitter headroom" true (at 20 <= 2500);
  let hinted =
    Client.backoff_ms ~seed:7 ~attempt:0 ~retry_after_ms:(Some 1200) ()
  in
  Alcotest.(check bool) "server hint is a floor" true (hinted >= 1200);
  Alcotest.(check bool) "jitter stays within 25%" true
    (hinted <= 1200 + (1200 / 4));
  let a = Client.backoff_ms ~seed:1 ~attempt:5 ~retry_after_ms:None () in
  let b = Client.backoff_ms ~seed:2 ~attempt:5 ~retry_after_ms:None () in
  ignore (a = b);
  (* seeds may collide on one attempt; the full schedules must not *)
  let schedule seed =
    List.init 8 (fun i -> Client.backoff_ms ~seed ~attempt:i ~retry_after_ms:None ())
  in
  Alcotest.(check bool) "distinct seeds decorrelate" true
    (schedule 1 <> schedule 2)

let test_retry_exhaustion_without_server () =
  let socket = Filename.temp_file "nisq-no-daemon" ".sock" in
  Sys.remove socket;
  let sleeps = ref 0 in
  match
    Client.call_with_retry ~attempts:3
      ~sleep:(fun _ -> incr sleeps)
      ~socket
      { Protocol.id = 1; deadline_ms = None; verb = Protocol.Ping }
  with
  | Ok _ -> Alcotest.fail "no daemon, yet the call succeeded"
  | Error (Client.Remote _) -> Alcotest.fail "connect failure is not remote"
  | Error (Client.Unavailable _) ->
      Alcotest.(check int) "slept between attempts" 2 !sleeps

(* ------------------------- end-to-end daemon ------------------------ *)

let fresh_socket =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "nisq-serve-%d-%d.sock" (Unix.getpid ()) !n)

let with_server ?(workers = 1) ?(queue = 8) ?(deadline_ms = 10_000) ?calib f =
  let socket = fresh_socket () in
  let cfg =
    {
      Server.socket;
      workers;
      queue_capacity = queue;
      default_deadline_ms = deadline_ms;
      drain_grace_s = 10.0;
      calib;
    }
  in
  let ready = Atomic.make false in
  let server =
    Domain.spawn (fun () ->
        Server.run ~on_ready:(fun () -> Atomic.set ready true) cfg)
  in
  let deadline = Unix.gettimeofday () +. 10.0 in
  while (not (Atomic.get ready)) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.005
  done;
  if not (Atomic.get ready) then Alcotest.fail "server never became ready";
  let finished = ref false in
  Fun.protect
    ~finally:(fun () ->
      if not !finished then begin
        (* A failing test must not leak the server domain. *)
        ignore
          (Client.call_with_retry ~attempts:2 ~sleep:(fun _ -> ()) ~socket
             { Protocol.id = 0; deadline_ms = None; verb = Protocol.Drain });
        ignore (Domain.join server)
      end)
    (fun () ->
      let out = f socket in
      (match
         Client.call_with_retry ~attempts:3 ~sleep:(fun _ -> ()) ~socket
           { Protocol.id = 99; deadline_ms = None; verb = Protocol.Drain }
       with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "drain verb failed");
      (match Domain.join server with
      | Server.Drained None -> ()
      | Server.Drained (Some _) -> Alcotest.fail "verb drain blamed a signal");
      finished := true;
      Alcotest.(check bool) "socket removed after drain" false
        (Sys.file_exists socket);
      out)

let call_once socket req =
  match Client.connect ~socket with
  | Error msg -> Alcotest.failf "connect: %s" msg
  | Ok conn ->
      Fun.protect
        ~finally:(fun () -> Client.close conn)
        (fun () -> Client.call conn req)

let payload_of body =
  match body with
  | Protocol.Result v -> Json.to_string v
  | Protocol.Overloaded _ -> Alcotest.fail "unexpected overload"
  | Protocol.Failed { code; message; _ } ->
      Alcotest.failf "unexpected error [%s]: %s" code message

let test_e2e_basics () =
  with_server (fun socket ->
      (* ping *)
      (match call_once socket { id = 1; deadline_ms = None; verb = Protocol.Ping } with
      | Ok { Protocol.body = Protocol.Result v; id } ->
          Alcotest.(check int) "id echoed" 1 id;
          (match Json.member "build" v with
          | Some (Json.String b) ->
              Alcotest.(check string) "build id" Protocol.build_id b
          | _ -> Alcotest.fail "ping has no build id")
      | Ok _ -> Alcotest.fail "ping must succeed"
      | Error msg -> Alcotest.failf "ping: %s" msg);
      (* compile equals the handler run in-process, byte for byte *)
      let verb = Protocol.Compile (compile_params "bv4") in
      let direct = payload_of (Server.handle_work verb) in
      (match call_once socket { id = 2; deadline_ms = None; verb } with
      | Ok { Protocol.body; _ } ->
          Alcotest.(check string) "served = in-process bytes" direct
            (payload_of body)
      | Error msg -> Alcotest.failf "compile: %s" msg);
      (* run verb carries the simulated success rate *)
      (match
         call_once socket
           {
             id = 3;
             deadline_ms = None;
             verb =
               Protocol.Run
                 { compile = compile_params "bv4"; trials = 256; sim_seed = 7 };
           }
       with
      | Ok { Protocol.body = Protocol.Result v; _ } -> (
          match Json.member "success_rate" v with
          | Some (Json.Float r) ->
              Alcotest.(check bool) "success rate sane" true
                (r >= 0.0 && r <= 1.0)
          | _ -> Alcotest.fail "run reply has no success_rate")
      | Ok _ -> Alcotest.fail "run must succeed"
      | Error msg -> Alcotest.failf "run: %s" msg);
      (* stats *)
      match call_once socket { id = 4; deadline_ms = None; verb = Protocol.Stats } with
      | Ok { Protocol.body = Protocol.Result v; _ } -> (
          match Json.member "served" v with
          | Some (Json.Int n) ->
              Alcotest.(check bool) "served some work" true (n >= 2)
          | _ -> Alcotest.fail "stats has no served count")
      | Ok _ -> Alcotest.fail "stats must succeed"
      | Error msg -> Alcotest.failf "stats: %s" msg)

let test_e2e_bad_requests () =
  with_server (fun socket ->
      (* unknown benchmark: a structured, non-retryable error *)
      (match
         call_once socket
           {
             id = 5;
             deadline_ms = None;
             verb = Protocol.Compile (compile_params "nonesuch");
           }
       with
      | Ok { Protocol.body = Protocol.Failed { code; retryable; _ }; _ } ->
          Alcotest.(check string) "code" "bad-request" code;
          Alcotest.(check bool) "not retryable" false retryable
      | Ok _ -> Alcotest.fail "unknown benchmark must fail"
      | Error msg -> Alcotest.failf "call: %s" msg);
      (* an unparseable request body gets a structured error reply with
         the reserved id 0 — the connection is not just dropped *)
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd (Unix.ADDR_UNIX socket);
          ignore (Frame.write fd (Json.Obj [ ("not", Json.String "a request") ]));
          match Frame.read fd with
          | Ok v -> (
              match Protocol.reply_of_json v with
              | Ok { Protocol.id; body = Protocol.Failed { code; retryable; _ } }
                ->
                  Alcotest.(check int) "reserved id" 0 id;
                  Alcotest.(check string) "code" "bad-request" code;
                  Alcotest.(check bool) "not retryable" false retryable
              | Ok _ -> Alcotest.fail "garbage request did not fail"
              | Error msg -> Alcotest.failf "reply: %s" msg)
          | Error e ->
              Alcotest.failf "no reply to garbage: %s" (Frame.error_message e)))

let test_e2e_faults () =
  (* Work arrival indices on a fresh server: req0, req1, ... — admin
     verbs do not consume them. *)
  with_faults "server:crash-handler@req0;net:torn@req2;server:slow@req4"
    (fun () ->
      with_server ~deadline_ms:400 (fun socket ->
          (* req0: the handler crashes; the worker survives and answers
             a structured retryable error. *)
          (match
             call_once socket
               {
                 id = 10;
                 deadline_ms = None;
                 verb = Protocol.Compile (compile_params "bv4");
               }
           with
          | Ok { Protocol.body = Protocol.Failed { code; retryable; _ }; _ } ->
              Alcotest.(check string) "crash becomes internal" "internal" code;
              Alcotest.(check bool) "and is retryable" true retryable
          | Ok _ -> Alcotest.fail "crash-handler fault did not surface"
          | Error msg -> Alcotest.failf "call: %s" msg);
          (* req1: the fault is one-shot — the worker lives and the
             retried request succeeds with pristine bytes. *)
          let direct =
            payload_of (Server.handle_work (Protocol.Compile (compile_params "bv4")))
          in
          (match
             call_once socket
               {
                 id = 11;
                 deadline_ms = None;
                 verb = Protocol.Compile (compile_params "bv4");
               }
           with
          | Ok { Protocol.body; _ } ->
              Alcotest.(check string) "retry is clean" direct (payload_of body)
          | Error msg -> Alcotest.failf "retry: %s" msg);
          (* req2: the reply frame is torn mid-payload; the client sees
             a framing error, not a hang or a garbage payload. *)
          (match
             call_once socket
               {
                 id = 12;
                 deadline_ms = None;
                 verb = Protocol.Compile (compile_params "bv6");
               }
           with
          | Error _ -> ()
          | Ok _ -> Alcotest.fail "torn reply parsed");
          (* req3: and the retry loop recovers end to end. *)
          (match
             Client.call_with_retry ~attempts:4 ~sleep:(fun _ -> ()) ~socket
               {
                 id = 13;
                 deadline_ms = None;
                 verb = Protocol.Compile (compile_params "bv6");
               }
           with
          | Ok _ -> ()
          | Error _ -> Alcotest.fail "retry after torn reply failed");
          (* req4: an injected stall burns the request's deadline. *)
          match
            call_once socket
              {
                id = 14;
                deadline_ms = Some 150;
                verb = Protocol.Compile (compile_params "hs2");
              }
          with
          | Ok { Protocol.body = Protocol.Failed { code; retryable; _ }; _ } ->
              Alcotest.(check string) "deadline code" "deadline" code;
              Alcotest.(check bool) "deadline not retryable" false retryable
          | Ok _ -> Alcotest.fail "slow fault did not trip the deadline"
          | Error msg -> Alcotest.failf "slow call: %s" msg))

(* Coalesced delivery must be byte-identical to uncoalesced execution:
   two waiters on one queued entry receive one computed body, and its
   bytes equal a fresh in-process run of the same work. CI runs this at
   NISQ_DOMAINS = 0, 1 and 4. *)
let test_coalesced_bytes_identical () =
  let q = Admission.create ~capacity:4 ~workers:1 () in
  let verb = Protocol.Compile (compile_params "bv4") in
  let got = ref [] in
  let deliver body = got := Json.to_string (Protocol.reply_to_json
    { Protocol.id = 0; body }) :: !got in
  (match Admission.submit q ~verb ~deadline_ms:None ~req_index:0 ~deliver with
  | Admission.Admitted -> ()
  | _ -> Alcotest.fail "first submit must admit");
  (match Admission.submit q ~verb ~deadline_ms:None ~req_index:1 ~deliver with
  | Admission.Coalesced -> ()
  | _ -> Alcotest.fail "duplicate must coalesce");
  (match Admission.pop q with
  | None -> Alcotest.fail "pop failed"
  | Some entry ->
      let body = Server.handle_work entry.Admission.verb in
      List.iter (fun d -> d body) entry.Admission.waiters);
  (match !got with
  | [ a; b ] -> Alcotest.(check string) "both waiters, same bytes" a b
  | l -> Alcotest.failf "expected 2 deliveries, got %d" (List.length l));
  let uncoalesced =
    Json.to_string
      (Protocol.reply_to_json { Protocol.id = 0; body = Server.handle_work verb })
  in
  match !got with
  | a :: _ ->
      Alcotest.(check string) "coalesced = uncoalesced bytes" uncoalesced a
  | [] -> assert false

(* --------------------------- faultkit spec -------------------------- *)

let test_server_fault_clauses () =
  with_faults "net:torn@req2;net:close@req3;server:slow@req5;server:crash-handler@req7"
    (fun () ->
      Alcotest.(check bool) "unarmed index" true (Faultkit.server_fault 0 = None);
      (match Faultkit.server_fault 2 with
      | Some Faultkit.Net_torn -> ()
      | _ -> Alcotest.fail "req2 must be Net_torn");
      Alcotest.(check bool) "one-shot" true (Faultkit.server_fault 2 = None);
      (match Faultkit.server_fault 3 with
      | Some Faultkit.Net_close -> ()
      | _ -> Alcotest.fail "req3 must be Net_close");
      (match Faultkit.server_fault 5 with
      | Some Faultkit.Slow -> ()
      | _ -> Alcotest.fail "req5 must be Slow");
      match Faultkit.server_fault 7 with
      | Some Faultkit.Crash_handler -> ()
      | _ -> Alcotest.fail "req7 must be Crash_handler")

let test_server_fault_spec_rejects () =
  Fun.protect ~finally:Faultkit.clear (fun () ->
      List.iter
        (fun spec ->
          match Faultkit.configure spec with
          | Error _ -> ()
          | Ok () -> Alcotest.failf "accepted %S" spec)
        [
          "net:torn"; "server:slow"; "net:torn@chunk3"; "server:crash-handler@req";
        ])

let suite =
  [
    Alcotest.test_case "frame: encode/scan round-trip" `Quick
      test_frame_roundtrip_scan;
    Alcotest.test_case "frame: socket round-trip + record + EOF" `Quick
      test_frame_socket_roundtrip;
    Alcotest.test_case "frame: torn write detected" `Quick test_frame_torn;
    Alcotest.test_case "frame: oversized prefix rejected" `Quick
      test_frame_too_large;
    Alcotest.test_case "frame: malformed payload rejected" `Quick
      test_frame_malformed;
    Alcotest.test_case "frame: 1-byte partial reads reassemble" `Quick
      test_frame_one_byte_dribble;
    Alcotest.test_case "frame: EINTR-peppered round-trip" `Quick
      test_frame_eintr_interleaved;
    Alcotest.test_case "frame: torn capture rejected by scan" `Quick
      test_scan_torn_capture;
    Alcotest.test_case "protocol: request round-trip" `Quick
      test_request_roundtrip;
    Alcotest.test_case "protocol: reply round-trip" `Quick test_reply_roundtrip;
    Alcotest.test_case "protocol: bad requests rejected" `Quick
      test_request_decode_rejects;
    Alcotest.test_case "protocol: coalesce keys" `Quick test_coalesce_key;
    Alcotest.test_case "admission: coalesce, shed, FIFO, drain" `Quick
      test_admission_coalesce_shed;
    Alcotest.test_case "admission: retry hint tracks service time" `Quick
      test_admission_retry_hint_tracks_service_time;
    Alcotest.test_case "client: backoff schedule" `Quick test_backoff_schedule;
    Alcotest.test_case "client: retries exhaust without a daemon" `Quick
      test_retry_exhaustion_without_server;
    Alcotest.test_case "e2e: ping/compile/run/stats" `Quick test_e2e_basics;
    Alcotest.test_case "e2e: structured errors for bad input" `Quick
      test_e2e_bad_requests;
    Alcotest.test_case "e2e: injected crash/torn/slow faults" `Quick
      test_e2e_faults;
    Alcotest.test_case "determinism: coalesced = uncoalesced bytes" `Quick
      test_coalesced_bytes_identical;
    Alcotest.test_case "faultkit: server clauses one-shot" `Quick
      test_server_fault_clauses;
    Alcotest.test_case "faultkit: malformed server clauses rejected" `Quick
      test_server_fault_spec_rejects;
  ]
