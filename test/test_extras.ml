(* Tests for the extension modules: Draw, Calib_io, Compile.best_of. *)

module Circuit = Nisq_circuit.Circuit
module Gate = Nisq_circuit.Gate
module Draw = Nisq_circuit.Draw
module Topology = Nisq_device.Topology
module Calibration = Nisq_device.Calibration
module Calib_io = Nisq_device.Calib_io
module Ibmq16 = Nisq_device.Ibmq16
module Config = Nisq_compiler.Config
module Compile = Nisq_compiler.Compile
module Benchmarks = Nisq_bench.Benchmarks

let contains = Astring_contains.contains

(* -------------------------------- Draw ----------------------------- *)

let test_draw_bell () =
  let c =
    Circuit.make 2
      [ (Gate.H, [| 0 |]); (Gate.Cnot, [| 0; 1 |]); (Gate.Measure, [| 0 |]);
        (Gate.Measure, [| 1 |]) ]
  in
  let s = Draw.render c in
  Alcotest.(check int) "two wires" 2
    (List.length (List.filter (fun l -> l <> "") (String.split_on_char '\n' s)));
  Alcotest.(check bool) "has control" true (contains s "*");
  Alcotest.(check bool) "has target" true (contains s "X");
  Alcotest.(check bool) "has measure" true (contains s "M")

let test_draw_vertical_connector () =
  (* CNOT q0 -> q2 must draw a '|' across the middle wire *)
  let c = Circuit.make 3 [ (Gate.Cnot, [| 0; 2 |]) ] in
  let s = Draw.render c in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check bool) "middle wire crossed" true
    (contains (List.nth lines 1) "|")

let test_draw_every_benchmark () =
  List.iter
    (fun (b : Benchmarks.t) ->
      let s = Draw.render b.Benchmarks.circuit in
      Alcotest.(check bool) (b.Benchmarks.name ^ " renders") true
        (String.length s > 0))
    Benchmarks.extended

let test_draw_rejects_wide () =
  let c = Circuit.make 65 [ (Gate.H, [| 0 |]) ] in
  Alcotest.(check bool) "raises" true
    (try ignore (Draw.render c); false with Invalid_argument _ -> true)

(* ------------------------------ Calib_io --------------------------- *)

let test_calib_io_roundtrip_grid () =
  let c = Ibmq16.calibration ~day:4 () in
  let c' = Calib_io.of_string_exn (Calib_io.to_string c) in
  Alcotest.(check int) "day" c.Calibration.day c'.Calibration.day;
  for h = 0 to 15 do
    Alcotest.(check (float 1e-9)) "t2" c.Calibration.t2_us.(h) c'.Calibration.t2_us.(h);
    Alcotest.(check (float 1e-9)) "readout"
      (Calibration.readout_error c h)
      (Calibration.readout_error c' h)
  done;
  List.iter
    (fun (a, b) ->
      Alcotest.(check (float 1e-9)) "cnot err"
        (Calibration.cnot_error c a b)
        (Calibration.cnot_error c' a b);
      Alcotest.(check int) "duration"
        (Calibration.cnot_duration c a b)
        (Calibration.cnot_duration c' a b))
    (Topology.edges Ibmq16.topology)

let test_calib_io_roundtrip_graph () =
  let topo = Topology.ring 8 in
  let c = Nisq_device.Calib_gen.generate ~topology:topo ~seed:3 ~day:1 () in
  let c' = Calib_io.of_string_exn (Calib_io.to_string c) in
  Alcotest.(check int) "qubits" 8 (Topology.num_qubits c'.Calibration.topology);
  Alcotest.(check (list (pair int int))) "same edges"
    (Topology.edges topo)
    (Topology.edges c'.Calibration.topology)

let test_calib_io_file_roundtrip () =
  let c = Ibmq16.calibration ~day:2 () in
  let path = Filename.temp_file "calib" ".txt" in
  Calib_io.save c ~path;
  let c' = Result.get_ok (Calib_io.load ~path) in
  Sys.remove path;
  Alcotest.(check (float 1e-9)) "cnot err survives disk"
    (Calibration.cnot_error c 0 1)
    (Calibration.cnot_error c' 0 1)

let test_calib_io_comments_and_blank_lines () =
  let c = Ibmq16.calibration ~day:0 () in
  let src = "# archived machine state\n\n" ^ Calib_io.to_string c in
  let c' = Calib_io.of_string_exn src in
  Alcotest.(check int) "parses with comments" 0 c'.Calibration.day

let test_calib_io_rejects_missing_qubit () =
  let c = Ibmq16.calibration ~day:0 () in
  let without_q3 =
    Calib_io.to_string c |> String.split_on_char '\n'
    |> List.filter (fun l ->
           not (String.length l > 7 && String.sub l 0 8 = "qubit 3 "))
    |> String.concat "\n"
  in
  (match Calib_io.of_string without_q3 with
  | Ok _ -> Alcotest.fail "missing qubit record parsed"
  | Error { Calib_io.line; message } ->
      Alcotest.(check int) "whole-file error" 0 line;
      Alcotest.(check bool) "mentions qubit" true (contains message "qubit"))

let test_calib_io_rejects_garbage () =
  match Calib_io.of_string "nonsense 1 2 3" with
  | Ok _ -> Alcotest.fail "garbage parsed"
  | Error { Calib_io.line; _ } -> Alcotest.(check int) "error line" 1 line

(* Fuzz table: systematically damaged archives — truncations at every
   line boundary, duplicated records, severed fields — must come back
   as [Error {line; message}], never as an exception and never as a
   silently-wrong [Ok]. This is the guarantee the reload pipeline's
   parse stage builds on: a torn or corrupted candidate file always
   produces a structured rollback reason. *)
let test_calib_io_fuzz_structured_errors () =
  let good = Calib_io.to_string (Ibmq16.calibration ~day:0 ()) in
  let lines = String.split_on_char '\n' good in
  let n_lines = List.length lines in
  let take k = List.filteri (fun i _ -> i < k) lines |> String.concat "\n" in
  let parse tag src =
    (* Both entry points must agree that the damage is structural. *)
    (match Calib_io.of_string src with
    | Ok _ -> Alcotest.failf "%s: strict parser accepted damaged input" tag
    | Error { Calib_io.message; _ } ->
        Alcotest.(check bool)
          (tag ^ ": error message not empty")
          true
          (String.length message > 0)
    | exception e ->
        Alcotest.failf "%s: of_string raised %s" tag (Printexc.to_string e));
    match Calib_io.raw_of_string src with
    | Ok _ -> Alcotest.failf "%s: raw parser accepted damaged input" tag
    | Error _ -> ()
    | exception e ->
        Alcotest.failf "%s: raw_of_string raised %s" tag (Printexc.to_string e)
  in
  (* Truncation at every prefix that drops at least one record. The
     empty prefix and mid-file cuts exercise missing-header,
     missing-qubit and missing-edge paths. *)
  for k = 0 to n_lines - 2 do
    parse (Printf.sprintf "truncated to %d lines" k) (take k)
  done;
  (* Byte-level tear in the middle of a record (what a torn write or a
     half-transferred file looks like). *)
  parse "torn mid-byte" (String.sub good 0 (String.length good / 2));
  (* Duplicated records: the same qubit or edge appearing twice must be
     flagged, not last-one-wins. *)
  let dup prefix =
    match List.find_opt (fun l -> String.starts_with ~prefix l) lines with
    | Some l -> good ^ l ^ "\n"
    | None -> Alcotest.failf "no %S record in the archive" prefix
  in
  parse "duplicated qubit record" (dup "qubit 3 ");
  parse "duplicated edge record" (dup "edge 0 1 ");
  parse "duplicated header" ("nisq-calibration 1\n" ^ good);
  (* Severed fields within a line: a qubit record missing its last
     columns. *)
  let sever prefix keep =
    match List.find_opt (fun l -> String.starts_with ~prefix l) lines with
    | Some l ->
        let cut =
          String.concat " "
            (List.filteri (fun i _ -> i < keep) (String.split_on_char ' ' l))
        in
        String.concat "\n"
          (List.map (fun x -> if x = l then cut else x) lines)
    | None -> Alcotest.failf "no %S record in the archive" prefix
  in
  parse "qubit record missing fields" (sever "qubit 3 " 3);
  parse "edge record missing fields" (sever "edge 0 1 " 3);
  (* Unparseable numbers survive neither entry point. *)
  parse "qubit field not a number"
    (String.concat "\n"
       (List.map
          (fun l ->
            if String.starts_with ~prefix:"qubit 5 " l then
              "qubit 5 sixty 70 0.05 0.001"
            else l)
          lines))

(* ------------------------------- best_of --------------------------- *)

let test_best_of_picks_highest_esp () =
  let calib = Ibmq16.calibration ~day:0 () in
  let bv4 = (Benchmarks.by_name "BV4").Benchmarks.circuit in
  let configs =
    [ Config.make Config.Qiskit; Config.make (Config.R_smt_star 0.5);
      Config.make Config.Greedy_e ]
  in
  let best = Compile.best_of ~configs ~calib bv4 in
  List.iter
    (fun config ->
      let r = Compile.run ~config ~calib bv4 in
      Alcotest.(check bool) "best is max esp" true
        (best.Compile.esp >= r.Compile.esp -. 1e-12))
    configs

let test_best_of_rejects_empty () =
  let calib = Ibmq16.calibration ~day:0 () in
  let bv4 = (Benchmarks.by_name "BV4").Benchmarks.circuit in
  Alcotest.(check bool) "raises" true
    (try ignore (Compile.best_of ~configs:[] ~calib bv4); false
     with Invalid_argument _ -> true)

(* --------------------------- misc integration ---------------------- *)

let test_layout_render_on_graph_topology () =
  let topo = Topology.ring 8 in
  let layout = Nisq_compiler.Layout.of_array ~num_hw:8 [| 2; 5 |] in
  let s = Nisq_compiler.Layout.render topo layout in
  Alcotest.(check bool) "mentions placement" true (contains s "p0 -> q2")

let test_emit_phys_ops_have_positive_durations () =
  let calib = Ibmq16.calibration ~day:0 () in
  let b = Benchmarks.by_name "Adder" in
  let r = Compile.run ~config:(Config.make Config.Qiskit) ~calib b.Benchmarks.circuit in
  Array.iter
    (fun (p : Nisq_compiler.Emit.phys) ->
      Alcotest.(check bool) "positive duration" true (p.Nisq_compiler.Emit.duration > 0))
    r.Compile.phys

let test_emit_same_qubit_ops_do_not_overlap () =
  (* physical ops touching the same hardware qubit must be disjoint in
     time: the scheduler + expansion must compose correctly *)
  let calib = Ibmq16.calibration ~day:0 () in
  let b = Benchmarks.by_name "BV8" in
  let r =
    Compile.run ~config:(Config.make (Config.R_smt_star 0.5)) ~calib
      b.Benchmarks.circuit
  in
  let ops = r.Compile.phys in
  let n = Array.length ops in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let a = ops.(i) and b = ops.(j) in
      let share =
        Array.exists
          (fun q -> Array.exists (fun p -> p = q) b.Nisq_compiler.Emit.qubits)
          a.Nisq_compiler.Emit.qubits
      in
      if share then
        Alcotest.(check bool) "no time overlap" false
          (a.Nisq_compiler.Emit.start
           < b.Nisq_compiler.Emit.start + b.Nisq_compiler.Emit.duration
          && b.Nisq_compiler.Emit.start
             < a.Nisq_compiler.Emit.start + a.Nisq_compiler.Emit.duration)
    done
  done

let test_iontrap_machine () =
  let module Iontrap = Nisq_device.Iontrap in
  Alcotest.(check bool) "all-to-all" true
    (Topology.adjacent Iontrap.topology 0 15);
  let c = Iontrap.calibration ~day:0 () in
  (* ions: slower two-qubit gates, longer coherence than the transmon *)
  let transmon = Ibmq16.calibration ~day:0 () in
  Alcotest.(check bool) "slower gates" true
    (Calibration.cnot_duration c 0 15 > Calibration.cnot_duration transmon 0 1);
  Alcotest.(check bool) "longer coherence" true
    (Calibration.mean_t2_us c > 3.0 *. Calibration.mean_t2_us transmon);
  (* and the compiler runs on it end-to-end *)
  let b = Benchmarks.by_name "Toffoli" in
  let r =
    Compile.run ~config:(Config.make (Config.R_smt_star 0.5)) ~calib:c
      b.Benchmarks.circuit
  in
  Alcotest.(check int) "no swaps ever" 0 r.Compile.swap_count

let test_ablation_reports_render () =
  let module E = Nisq_bench.Experiments in
  List.iter
    (fun s -> Alcotest.(check bool) "non-empty" true (String.length s > 100))
    [
      E.ablation_movement ~trials:32 ();
      E.ablation_topology ~trials:32 ();
      E.ablation_high_variance ~trials:32 ();
    ]

let test_config_movement_in_name () =
  Alcotest.(check string) "movement suffix" "GreedyE* (BestPath+move)"
    (Config.name (Config.make ~movement:Config.Move_and_stay Config.Greedy_e))

let test_runner_ideal_distribution_sums_to_one () =
  let calib = Ibmq16.calibration ~day:0 () in
  let b = Benchmarks.by_name "Grover2" in
  let r = Compile.run ~config:(Config.make Config.Greedy_e) ~calib b.Benchmarks.circuit in
  let d = Nisq_sim.Runner.ideal_distribution (Nisq_bench.Experiments.runner_of r) in
  let total = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 d in
  Alcotest.(check (float 1e-9)) "sums to 1" 1.0 total

let test_tsmt_coherence_penalty_on_tiny_t2 () =
  (* a machine whose coherence window can't fit any schedule: T-SMT*
     must still return a layout (best-effort, penalized) *)
  let n = 16 in
  let cnot_error = Array.make_matrix n n Float.nan in
  let cnot_duration = Array.make_matrix n n 0 in
  List.iter
    (fun (a, b) ->
      cnot_error.(a).(b) <- 0.04;
      cnot_error.(b).(a) <- 0.04;
      cnot_duration.(a).(b) <- 4;
      cnot_duration.(b).(a) <- 4)
    (Topology.edges Ibmq16.topology);
  let tiny =
    Calibration.create ~topology:Ibmq16.topology ~day:0
      ~t1_us:(Array.make n 0.3) ~t2_us:(Array.make n 0.3) (* < 4 slots *)
      ~readout_error:(Array.make n 0.05) ~single_error:(Array.make n 0.001)
      ~cnot_error ~cnot_duration
  in
  let b = Benchmarks.by_name "Toffoli" in
  let r = Compile.run ~config:(Config.make Config.T_smt_star) ~calib:tiny b.Benchmarks.circuit in
  Alcotest.(check bool) "layout produced anyway" true
    (r.Compile.duration > 0);
  Alcotest.(check bool) "violations reported" true
    (Nisq_compiler.Schedule.coherence_violations r.Compile.schedule tiny <> [])

let test_swap_count_zero_for_adjacent_only () =
  let calib = Ibmq16.calibration ~day:0 () in
  let c =
    Circuit.make 2
      [ (Gate.H, [| 0 |]); (Gate.Cnot, [| 0; 1 |]); (Gate.Measure, [| 0 |]) ]
  in
  let r = Compile.run ~config:(Config.make (Config.R_smt_star 0.5)) ~calib c in
  Alcotest.(check int) "no swaps" 0 r.Compile.swap_count

let suite =
  [
    ("draw bell", `Quick, test_draw_bell);
    ("config movement naming", `Quick, test_config_movement_in_name);
    ("runner ideal distribution sums to 1", `Quick, test_runner_ideal_distribution_sums_to_one);
    ("tsmt coherence penalty best-effort", `Quick, test_tsmt_coherence_penalty_on_tiny_t2);
    ("swap count zero when adjacent", `Quick, test_swap_count_zero_for_adjacent_only);
    ("layout render on graph", `Quick, test_layout_render_on_graph_topology);
    ("emit positive durations", `Quick, test_emit_phys_ops_have_positive_durations);
    ("emit same-qubit exclusivity", `Quick, test_emit_same_qubit_ops_do_not_overlap);
    ("ion trap machine", `Quick, test_iontrap_machine);
    ("ablation reports render", `Slow, test_ablation_reports_render);
    ("draw vertical connector", `Quick, test_draw_vertical_connector);
    ("draw every benchmark", `Quick, test_draw_every_benchmark);
    ("draw rejects wide circuits", `Quick, test_draw_rejects_wide);
    ("calib_io grid roundtrip", `Quick, test_calib_io_roundtrip_grid);
    ("calib_io graph roundtrip", `Quick, test_calib_io_roundtrip_graph);
    ("calib_io file roundtrip", `Quick, test_calib_io_file_roundtrip);
    ("calib_io comments", `Quick, test_calib_io_comments_and_blank_lines);
    ("calib_io missing qubit", `Quick, test_calib_io_rejects_missing_qubit);
    ("calib_io rejects garbage", `Quick, test_calib_io_rejects_garbage);
    ("calib_io fuzz: structured errors", `Quick,
     test_calib_io_fuzz_structured_errors);
    ("best_of picks highest esp", `Quick, test_best_of_picks_highest_esp);
    ("best_of rejects empty", `Quick, test_best_of_rejects_empty);
  ]
