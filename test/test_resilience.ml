(* Resilience layer: calibration sanitizing and quarantine, the solver
   fallback ladder, pool self-healing, and deterministic fault injection.

   Every test that arms the fault kit disarms it in a [Fun.protect]
   finalizer — an armed spec leaking out of a test would corrupt
   unrelated suites. *)

module Circuit = Nisq_circuit.Circuit
module Calibration = Nisq_device.Calibration
module Calib_io = Nisq_device.Calib_io
module Calib_sanitize = Nisq_device.Calib_sanitize
module Paths = Nisq_device.Paths
module Topology = Nisq_device.Topology
module Ibmq16 = Nisq_device.Ibmq16
module Faultkit = Nisq_faultkit.Faultkit
module Budget = Nisq_solver.Budget
module Placement = Nisq_solver.Placement
module Config = Nisq_compiler.Config
module Compile = Nisq_compiler.Compile
module Greedy = Nisq_compiler.Greedy
module Layout = Nisq_compiler.Layout
module Pool = Nisq_util.Pool
module Runner = Nisq_sim.Runner
module Benchmarks = Nisq_bench.Benchmarks
module Experiments = Nisq_bench.Experiments

let with_faults spec f =
  (match Faultkit.configure spec with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "bad fault spec %S: %s" spec msg);
  Fun.protect ~finally:Faultkit.clear f

let calib = Ibmq16.calibration ~day:0 ()

let hw_positions layout n = Array.init n (Layout.hw_of layout)

(* --------------------------- fault specs --------------------------- *)

let test_faultkit_parse () =
  with_faults "calib:nan@q3; solver:blow ;pool:crash@chunk7" (fun () ->
      Alcotest.(check bool) "armed" true (Faultkit.active () <> None);
      Alcotest.(check bool) "blow" true (Faultkit.solver_blow ());
      Alcotest.(check int) "one calib fault" 1
        (List.length (Faultkit.calib_faults ())));
  Alcotest.(check bool) "disarmed after" true (Faultkit.active () = None);
  Alcotest.(check bool) "blow off" false (Faultkit.solver_blow ())

let test_faultkit_rejects_garbage () =
  List.iter
    (fun spec ->
      match Faultkit.configure spec with
      | Ok () -> Alcotest.failf "spec %S accepted" spec
      | Error _ -> ())
    [ "calib:nan"; "calib:nan@x3"; "solver:blow@q1"; "pool:crash@7";
      "frobnicate" ];
  Faultkit.clear ()

let test_faultkit_pool_clause_is_one_shot () =
  with_faults "pool:crash@chunk2" (fun () ->
      Alcotest.(check bool) "fires" true
        (try Faultkit.chunk_check 2; false with Faultkit.Injected _ -> true);
      (* The clause disarmed itself: the retry must pass. *)
      Faultkit.chunk_check 2;
      Faultkit.chunk_check 2)

(* ------------------------ calibration repair ----------------------- *)

let test_sanitize_clean_is_identity () =
  let sane, report = Calib_sanitize.sanitize (Calib_sanitize.of_calibration calib) in
  Alcotest.(check bool) "clean" true (Calib_sanitize.is_clean report);
  Alcotest.(check bool) "fully live" true (Calibration.fully_live sane);
  Alcotest.(check (float 0.0)) "t1 untouched" calib.Calibration.t1_us.(5)
    sane.Calibration.t1_us.(5)

let test_sanitize_backfills_from_previous_day () =
  let today = Ibmq16.calibration ~day:1 () in
  let raw = Calib_sanitize.of_calibration today in
  raw.Calib_sanitize.t1_us.(2) <- Float.nan;
  raw.Calib_sanitize.readout_error.(4) <- -0.5;
  let sane, report = Calib_sanitize.sanitize ~previous:calib raw in
  Alcotest.(check int) "two repairs" 2 (Calib_sanitize.repairs report);
  Alcotest.(check (float 0.0)) "t1 from day 0" calib.Calibration.t1_us.(2)
    sane.Calibration.t1_us.(2);
  Alcotest.(check (float 0.0)) "readout from day 0"
    calib.Calibration.readout_error.(4)
    sane.Calibration.readout_error.(4);
  Alcotest.(check bool) "nothing quarantined" true (Calibration.fully_live sane)

let test_sanitize_falls_back_to_median () =
  let raw = Calib_sanitize.of_calibration calib in
  raw.Calib_sanitize.t2_us.(7) <- 0.0;
  let sane, report = Calib_sanitize.sanitize raw in
  Alcotest.(check int) "one repair" 1 (Calib_sanitize.repairs report);
  let valid =
    Array.to_list calib.Calibration.t2_us
    |> List.filteri (fun i _ -> i <> 7)
    |> List.sort compare
    |> Array.of_list
  in
  Alcotest.(check (float 0.0)) "median backfill"
    valid.(Array.length valid / 2)
    sane.Calibration.t2_us.(7)

let test_sanitize_quarantines_offline_qubit () =
  let raw =
    Calib_sanitize.apply_faults
      (Calib_sanitize.of_calibration calib)
      [ { Faultkit.target = Faultkit.Qubit 3; kind = Faultkit.Offline } ]
  in
  let sane, report = Calib_sanitize.sanitize raw in
  Alcotest.(check (list int)) "q3 quarantined" [ 3 ]
    report.Calib_sanitize.quarantined_qubits;
  Alcotest.(check bool) "mask applied" false (Calibration.qubit_live sane 3);
  Alcotest.(check int) "15 live" 15 (Calibration.num_live sane);
  List.iter
    (fun (a, b) ->
      Alcotest.(check bool)
        (Printf.sprintf "link %d-%d dead" a b)
        false (Calibration.link_live sane a b))
    (List.filter (fun (a, b) -> a = 3 || b = 3) (Topology.edges Ibmq16.topology))

let test_compile_around_quarantine () =
  let raw =
    Calib_sanitize.apply_faults
      (Calib_sanitize.of_calibration calib)
      [ { Faultkit.target = Faultkit.Qubit 3; kind = Faultkit.Offline } ]
  in
  let sane, _ = Calib_sanitize.sanitize raw in
  let bv8 = (Benchmarks.by_name "BV8").Benchmarks.circuit in
  List.iter
    (fun method_ ->
      let config = Config.make method_ in
      let r = Compile.run ~config ~calib:sane bv8 in
      Array.iteri
        (fun p hw ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: p%d avoids q3" (Config.name config) p)
            true (hw <> 3))
        (hw_positions r.Compile.layout bv8.Circuit.num_qubits);
      let runner = Experiments.runner_of r in
      let s = Runner.success_rate_seq ~trials:64 ~seed:11 runner in
      Alcotest.(check bool) "simulates" true (s >= 0.0 && s <= 1.0))
    [ Config.T_smt; Config.T_smt_star; Config.R_smt_star 0.5; Config.Greedy_v;
      Config.Greedy_e ]

(* Every single-field corruption — NaN / negative / zero in each qubit
   and edge field — must still compile and simulate all 12 paper
   benchmarks after sanitizing. *)
let test_single_field_corruption_matrix () =
  let corruptions =
    let q = [ Float.nan; -1.0; 0.0 ] in
    List.concat
      [
        List.map (fun v -> ("t1_us", fun (r : Calib_sanitize.raw) h -> r.Calib_sanitize.t1_us.(h) <- v)) q;
        List.map (fun v -> ("t2_us", fun (r : Calib_sanitize.raw) h -> r.Calib_sanitize.t2_us.(h) <- v)) q;
        (* 0.0 is a legal probability (a perfect readout), so the bad
           values for probability fields are NaN, negative and > 1. *)
        List.map (fun v -> ("readout", fun (r : Calib_sanitize.raw) h -> r.Calib_sanitize.readout_error.(h) <- v)) [ Float.nan; -1.0; 1.5 ];
        List.map (fun v -> ("single", fun (r : Calib_sanitize.raw) h -> r.Calib_sanitize.single_error.(h) <- v)) [ Float.nan; -1.0; 1.5 ];
        List.map
          (fun v ->
            ( "cnot_error",
              fun (r : Calib_sanitize.raw) h ->
                let a, b = List.nth (Topology.edges Ibmq16.topology) h in
                r.Calib_sanitize.cnot_error.(a).(b) <- v;
                r.Calib_sanitize.cnot_error.(b).(a) <- v ))
          [ 2.0; Float.nan; -1.0 ];
        List.map
          (fun v ->
            ( "cnot_duration",
              fun (r : Calib_sanitize.raw) h ->
                let a, b = List.nth (Topology.edges Ibmq16.topology) h in
                r.Calib_sanitize.cnot_duration.(a).(b) <- v;
                r.Calib_sanitize.cnot_duration.(b).(a) <- v ))
          [ 0; -4 ];
      ]
  in
  List.iteri
    (fun i (field, corrupt) ->
      let raw = Calib_sanitize.of_calibration calib in
      corrupt raw (i mod List.length (Topology.edges Ibmq16.topology));
      let sane, report = Calib_sanitize.sanitize raw in
      Alcotest.(check bool)
        (Printf.sprintf "%s corruption %d reported" field i)
        false
        (Calib_sanitize.is_clean report);
      List.iter
        (fun (b : Benchmarks.t) ->
          let r =
            Compile.run ~config:(Config.make Config.Greedy_e) ~calib:sane
              b.Benchmarks.circuit
          in
          let s =
            Runner.success_rate_seq ~trials:16 ~seed:3
              (Experiments.runner_of r)
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s compiles+simulates" field b.Benchmarks.name)
            true
            (s >= 0.0 && s <= 1.0))
        Benchmarks.all)
    corruptions

(* ------------------------- solver fallback ------------------------- *)

let test_budget_blow_marks_degraded () =
  with_faults "solver:blow" (fun () ->
      let c = Budget.Clock.start Budget.unlimited in
      Alcotest.(check bool) "pre-exhausted" false (Budget.Clock.tick c);
      let s = Budget.Clock.stats c ~exhausted:false in
      Alcotest.(check bool) "degraded" true s.Budget.degraded;
      Alcotest.(check bool) "not optimal" false s.Budget.proven_optimal);
  let c = Budget.Clock.start Budget.unlimited in
  Alcotest.(check bool) "healthy ticks" true (Budget.Clock.tick c);
  Alcotest.(check bool) "healthy not degraded" false
    (Budget.Clock.stats c ~exhausted:true).Budget.degraded

let test_placement_forbid_avoids_slots () =
  let n = 4 and slots = 8 in
  let unary = Array.make_matrix n slots 0.0 in
  for i = 0 to n - 1 do
    (* Forbidden slots carry the best scores: the solver must resist. *)
    unary.(i).(0) <- 10.0;
    unary.(i).(1) <- 9.0
  done;
  let p = { Placement.num_items = n; num_slots = slots; unary; pairwise = [] } in
  let sol = Placement.solve ~forbid:(fun s -> s < 2) p in
  Array.iter
    (fun s -> Alcotest.(check bool) "slot allowed" true (s >= 2))
    sol.Placement.assignment;
  Alcotest.(check bool) "too few live slots rejected" true
    (try
       ignore (Placement.solve ~forbid:(fun s -> s < 5) p);
       false
     with Invalid_argument _ -> true)

let test_fallback_ladder_reaches_greedy () =
  let bv4 = (Benchmarks.by_name "BV4").Benchmarks.circuit in
  with_faults "solver:blow" (fun () ->
      (* T-SMT*: the greedy rung is GreedyV against the real calibration. *)
      let r = Compile.run ~config:(Config.make Config.T_smt_star) ~calib bv4 in
      Alcotest.(check bool) "greedy rung" true
        (r.Compile.rung = Some Compile.Rung_greedy);
      Alcotest.(check bool) "stats degraded" true
        (match r.Compile.solver_stats with
        | Some s -> s.Budget.degraded
        | None -> false);
      let expected = Greedy.vertex_first (Paths.make calib) bv4 in
      Alcotest.(check (array int)) "matches GreedyV exactly"
        (hw_positions expected bv4.Circuit.num_qubits)
        (hw_positions r.Compile.layout bv4.Circuit.num_qubits);
      (* R-SMT*: the greedy rung is GreedyE. *)
      let r = Compile.run ~config:(Config.make (Config.R_smt_star 0.5)) ~calib bv4 in
      Alcotest.(check bool) "greedy rung (rsmt)" true
        (r.Compile.rung = Some Compile.Rung_greedy);
      let expected = Greedy.edge_first (Paths.make calib) bv4 in
      Alcotest.(check (array int)) "matches GreedyE exactly"
        (hw_positions expected bv4.Circuit.num_qubits)
        (hw_positions r.Compile.layout bv4.Circuit.num_qubits));
  (* Fault cleared: the full rung succeeds again. *)
  let r = Compile.run ~config:(Config.make Config.T_smt_star) ~calib bv4 in
  Alcotest.(check bool) "full rung when healthy" true
    (r.Compile.rung = Some Compile.Rung_full)

let test_capped_rung_when_budget_tiny () =
  (* A 1-node configured budget blows, the 20k-node second rung holds on
     a 4-qubit instance: the ladder stops at Rung_capped. *)
  let bv4 = (Benchmarks.by_name "BV4").Benchmarks.circuit in
  let config =
    Config.make ~budget:(Budget.nodes 1) (Config.R_smt_star 0.5)
  in
  let r = Compile.run ~config ~calib bv4 in
  Alcotest.(check bool) "capped rung" true
    (r.Compile.rung = Some Compile.Rung_capped)

(* ----------------------------- the pool ---------------------------- *)

let test_pool_crash_retry_is_bit_identical () =
  let r = Compile.run ~config:(Config.make Config.Greedy_e) ~calib
      (Benchmarks.by_name "BV4").Benchmarks.circuit
  in
  let runner = Experiments.runner_of r in
  let pool = Pool.create ~size:2 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let clean = Runner.success_rate ~trials:1024 ~pool ~seed:99 runner in
  let crashed =
    with_faults "pool:crash@chunk1" (fun () ->
        Runner.success_rate ~trials:1024 ~pool ~seed:99 runner)
  in
  Alcotest.(check (float 0.0)) "crash invisible in results" clean crashed

let test_pool_crash_sequential_path () =
  let pool = Pool.create ~size:0 () in
  let seen = ref [] in
  let out =
    with_faults "pool:crash@chunk0" (fun () ->
        Pool.parallel_chunks pool ~chunks:3 (fun i ->
            seen := i :: !seen;
            i * i))
  in
  Alcotest.(check (list int)) "results in order" [ 0; 1; 4 ] out;
  (* The injection fires before the chunk body, so the body runs exactly
     once — on the retry. Results are as if nothing happened. *)
  Alcotest.(check (list int)) "each chunk ran once" [ 2; 1; 0 ] !seen

let test_pool_kill_respawns_worker () =
  let pool = Pool.create ~size:2 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let square i = i * i in
  let expected = List.init 8 square in
  let killed =
    with_faults "pool:kill@chunk3" (fun () ->
        Pool.parallel_chunks pool ~chunks:8 square)
  in
  Alcotest.(check (list int)) "no chunk lost to the kill" expected killed;
  (* The next call heals the pool and completes normally. *)
  Alcotest.(check (list int)) "pool still works" expected
    (Pool.parallel_chunks pool ~chunks:8 square)

let test_pool_double_failure_raises () =
  (* A chunk that fails deterministically (not via the one-shot fault
     kit) fails its retry too; the exception must surface. *)
  let pool = Pool.create ~size:0 () in
  Alcotest.(check bool) "raises after retry" true
    (try
       ignore
         (Pool.parallel_chunks pool ~chunks:2 (fun i ->
              if i = 1 then failwith "perma" else i));
       false
     with Failure _ -> true)

(* ----------------------- end-to-end injection ---------------------- *)

let test_triple_fault_run_completes () =
  with_faults "calib:nan@q3;solver:blow;pool:crash@chunk0" (fun () ->
      let raw =
        Calib_sanitize.apply_faults
          (Calib_sanitize.of_calibration calib)
          (Faultkit.calib_faults ())
      in
      let sane, report = Calib_sanitize.sanitize raw in
      Alcotest.(check bool) "repairs reported" true
        (Calib_sanitize.repairs report > 0);
      let r =
        Compile.run ~config:(Config.make (Config.R_smt_star 0.5)) ~calib:sane
          (Benchmarks.by_name "BV4").Benchmarks.circuit
      in
      Alcotest.(check bool) "degraded rung" true
        (r.Compile.rung <> Some Compile.Rung_full);
      let pool = Pool.create ~size:2 () in
      Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
      let s =
        Runner.success_rate ~trials:512 ~pool ~seed:7
          (Experiments.runner_of r)
      in
      Alcotest.(check bool) "still answers" true (s >= 0.0 && s <= 1.0))

let suite =
  [
    ("faultkit parse and disarm", `Quick, test_faultkit_parse);
    ("faultkit rejects garbage", `Quick, test_faultkit_rejects_garbage);
    ("faultkit pool clause one-shot", `Quick, test_faultkit_pool_clause_is_one_shot);
    ("sanitize clean identity", `Quick, test_sanitize_clean_is_identity);
    ("sanitize previous-day backfill", `Quick, test_sanitize_backfills_from_previous_day);
    ("sanitize median backfill", `Quick, test_sanitize_falls_back_to_median);
    ("sanitize quarantines offline qubit", `Quick, test_sanitize_quarantines_offline_qubit);
    ("compile around quarantine", `Quick, test_compile_around_quarantine);
    ("single-field corruption matrix", `Slow, test_single_field_corruption_matrix);
    ("budget blow marks degraded", `Quick, test_budget_blow_marks_degraded);
    ("placement forbid avoids slots", `Quick, test_placement_forbid_avoids_slots);
    ("fallback ladder reaches greedy", `Quick, test_fallback_ladder_reaches_greedy);
    ("capped rung on tiny budget", `Quick, test_capped_rung_when_budget_tiny);
    ("pool crash retry bit-identical", `Quick, test_pool_crash_retry_is_bit_identical);
    ("pool crash sequential path", `Quick, test_pool_crash_sequential_path);
    ("pool kill respawns worker", `Quick, test_pool_kill_respawns_worker);
    ("pool double failure raises", `Quick, test_pool_double_failure_raises);
    ("triple fault run completes", `Quick, test_triple_fault_run_completes);
  ]
