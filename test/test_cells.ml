(* Tests for the figure-cell fan-out (Nisq_bench.Experiments.map_cells):
   the determinism contract — identical figure data, and identical
   journal cell sets, at any pool size — plus the NISQ_CELL_FANOUT
   opt-out and the no-nested-fan-out guard. *)

module E = Nisq_bench.Experiments
module Compile = Nisq_compiler.Compile
module Pool = Nisq_util.Pool
module Run = Nisq_runkit.Run
module Json = Nisq_obs.Json

let with_pool size f =
  let pool = Pool.create ~size () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

(* The comparable slice of fig5 data: success rates and swap counts,
   the numbers every rendered table derives from. *)
let fingerprint data =
  List.map
    (fun (bench, evals) ->
      ( bench,
        List.map
          (fun (cname, (e : E.eval)) ->
            (cname, e.E.success, e.E.result.Compile.swap_count))
          evals ))
    data

let test_map_cells_preserves_order () =
  with_pool 4 (fun pool ->
      Alcotest.(check (list int))
        "input order"
        (List.init 17 (fun i -> i * i))
        (E.map_cells ~pool (List.init 17 (fun i () -> i * i))))

let test_map_cells_no_nested_fanout () =
  (* an (illegal) nested call inside a cell must degrade to the plain
     sequential map instead of re-entering the pool *)
  with_pool 4 (fun pool ->
      let nested =
        E.map_cells ~pool
          (List.init 3 (fun i () ->
               E.map_cells ~pool (List.init 4 (fun j () -> (i, j)))))
      in
      Alcotest.(check int) "outer size" 3 (List.length nested);
      List.iteri
        (fun i row ->
          Alcotest.(check bool)
            "inner rows intact" true
            (row = List.init 4 (fun j -> (i, j))))
        nested)

let test_fig5_identical_across_pool_sizes () =
  let run size =
    with_pool size (fun pool -> fingerprint (E.fig5_data ~trials:128 ~pool ()))
  in
  let seq = run 0 in
  Alcotest.(check bool) "pool size 1 matches sequential" true (seq = run 1);
  Alcotest.(check bool) "pool size 4 matches sequential" true (seq = run 4)

let test_fanout_env_disable () =
  let base =
    with_pool 4 (fun pool -> fingerprint (E.fig5_data ~trials:64 ~pool ()))
  in
  Unix.putenv "NISQ_CELL_FANOUT" "0";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "NISQ_CELL_FANOUT" "")
    (fun () ->
      Alcotest.(check bool) "knob read" false (E.cell_fanout_enabled ());
      let disabled =
        with_pool 4 (fun pool -> fingerprint (E.fig5_data ~trials:64 ~pool ()))
      in
      Alcotest.(check bool) "disabled fan-out identical" true (base = disabled))

(* ------------------------- journal equality ------------------------ *)

let tmp_counter = ref 0

let fresh_root () =
  incr tmp_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "nisq_cells_%d_%d" (Unix.getpid ()) !tmp_counter)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* The journal's cell records as a sorted, deduplicated line set: under
   fan-out, completion ORDER varies with the pool size (and two cells
   sharing one sim digest may both journal the — identical — record),
   but the SET of (key, value) cells is an invariant. *)
let journal_cells ~root ~run_id =
  read_file (Filename.concat (Filename.concat root run_id) "journal.jsonl")
  |> String.split_on_char '\n'
  |> List.filter_map (fun line ->
         if String.trim line = "" then None
         else
           match Json.of_string line with
           | Ok r when Json.member "kind" r = Some (Json.String "cell") ->
               Some (Json.to_string r)
           | _ -> None)
  |> List.sort_uniq compare

let journalled_run ~size ~root ~run_id =
  let identity = Json.Obj [ ("test", Json.String "cells") ] in
  let r = Run.start ~root ~run_id ~identity () in
  Run.install r;
  Fun.protect
    ~finally:(fun () ->
      Run.uninstall ();
      Run.finish r ~status:"completed")
    (fun () ->
      with_pool size (fun pool -> fingerprint (E.fig5_data ~trials:64 ~pool ())))

let test_journals_identical_across_pool_sizes () =
  let root = fresh_root () in
  let seq = journalled_run ~size:0 ~root ~run_id:"seq" in
  let par = journalled_run ~size:4 ~root ~run_id:"par" in
  Alcotest.(check bool) "figure data identical" true (seq = par);
  let cells_seq = journal_cells ~root ~run_id:"seq" in
  let cells_par = journal_cells ~root ~run_id:"par" in
  Alcotest.(check bool) "journals non-empty" true (cells_seq <> []);
  Alcotest.(check bool) "cell sets identical" true (cells_seq = cells_par)

let test_resume_replays_fanned_out_journal () =
  (* a journal written under fan-out must replay on resume: the second
     run computes nothing *)
  let root = fresh_root () in
  let first = journalled_run ~size:4 ~root ~run_id:"rr" in
  let identity = Json.Obj [ ("test", Json.String "cells") ] in
  match Run.resume ~root ~run_id:"rr" ~identity ~force:false () with
  | Error msg -> Alcotest.fail msg
  | Ok r ->
      Run.install r;
      Fun.protect
        ~finally:(fun () ->
          Run.uninstall ();
          Run.finish r ~status:"completed")
        (fun () ->
          let again =
            with_pool 4 (fun pool ->
                fingerprint (E.fig5_data ~trials:64 ~pool ()))
          in
          Alcotest.(check bool) "resumed data identical" true (first = again);
          let cached, computed = Run.cache_stats r in
          Alcotest.(check int) "nothing recomputed" 0 computed;
          Alcotest.(check bool) "cells replayed" true (cached > 0))

let suite =
  [
    ("map_cells preserves order", `Quick, test_map_cells_preserves_order);
    ("no nested fan-out", `Quick, test_map_cells_no_nested_fanout);
    ("fig5 identical across pool sizes", `Slow, test_fig5_identical_across_pool_sizes);
    ("NISQ_CELL_FANOUT=0 identical", `Quick, test_fanout_env_disable);
    ("journal cell sets identical", `Quick, test_journals_identical_across_pool_sizes);
    ("resume replays fanned-out journal", `Quick, test_resume_replays_fanned_out_journal);
  ]
