(* Tests for Nisq_circuit: Gate, Circuit, Dag, Decompose, Qasm. *)

module Gate = Nisq_circuit.Gate
module Circuit = Nisq_circuit.Circuit
module Dag = Nisq_circuit.Dag
module Decompose = Nisq_circuit.Decompose
module Qasm = Nisq_circuit.Qasm
module B = Circuit.Builder

let bell () =
  let b = B.create ~name:"bell" 2 in
  B.h b 0;
  B.cnot b 0 1;
  B.measure_all b;
  B.build b

(* ------------------------------- Gate ------------------------------ *)

let test_gate_arity () =
  Alcotest.(check int) "h" 1 (Gate.arity Gate.H);
  Alcotest.(check int) "cx" 2 (Gate.arity Gate.Cnot);
  Alcotest.(check int) "swap" 2 (Gate.arity Gate.Swap);
  Alcotest.(check int) "measure" 1 (Gate.arity Gate.Measure)

let test_gate_adjoint_involution () =
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Gate.name k ^ " adjoint-adjoint")
        true
        (Gate.equal_kind k (Gate.adjoint (Gate.adjoint k))))
    [ Gate.H; Gate.X; Gate.Y; Gate.Z; Gate.S; Gate.Sdg; Gate.T; Gate.Tdg;
      Gate.Rz 0.7; Gate.Rx 1.1; Gate.Ry (-0.3); Gate.Cnot; Gate.Swap ]

let test_gate_adjoint_s () =
  Alcotest.(check bool) "S† = Sdg" true (Gate.equal_kind (Gate.adjoint Gate.S) Gate.Sdg)

let test_gate_adjoint_measure_raises () =
  Alcotest.(check bool) "raises" true
    (try ignore (Gate.adjoint Gate.Measure); false
     with Invalid_argument _ -> true)

let test_gate_names () =
  Alcotest.(check string) "cx" "cx" (Gate.name Gate.Cnot);
  Alcotest.(check string) "rz" "rz" (Gate.name (Gate.Rz 0.5));
  Alcotest.(check string) "sdg" "sdg" (Gate.name Gate.Sdg)

let test_gate_equal_kind_rotations () =
  Alcotest.(check bool) "close angles equal" true
    (Gate.equal_kind (Gate.Rz 0.5) (Gate.Rz (0.5 +. 1e-15)));
  Alcotest.(check bool) "distinct angles differ" false
    (Gate.equal_kind (Gate.Rz 0.5) (Gate.Rz 0.6));
  Alcotest.(check bool) "rz is not rx" false
    (Gate.equal_kind (Gate.Rz 0.5) (Gate.Rx 0.5))

(* ------------------------------ Circuit ---------------------------- *)

let test_builder_rejects_out_of_range () =
  let b = B.create 2 in
  Alcotest.(check bool) "raises" true
    (try B.h b 2; false with Invalid_argument _ -> true)

let test_builder_rejects_duplicate_operands () =
  let b = B.create 2 in
  Alcotest.(check bool) "raises" true
    (try B.cnot b 1 1; false with Invalid_argument _ -> true)

let test_builder_rejects_arity_mismatch () =
  let b = B.create 3 in
  Alcotest.(check bool) "raises" true
    (try B.add b Gate.Cnot [| 0 |]; false with Invalid_argument _ -> true)

let test_builder_ids_sequential () =
  let c = bell () in
  Array.iteri
    (fun i (g : Gate.t) -> Alcotest.(check int) "id" i g.id)
    c.Circuit.gates

let test_counts () =
  let c = bell () in
  Alcotest.(check int) "length" 4 (Circuit.length c);
  Alcotest.(check int) "gate_count" 4 (Circuit.gate_count c);
  Alcotest.(check int) "cnots" 1 (Circuit.cnot_count c);
  Alcotest.(check int) "two-qubit" 1 (Circuit.two_qubit_count c)

let test_swap_counts_as_three_cnots () =
  let c = Circuit.make 2 [ (Gate.Swap, [| 0; 1 |]) ] in
  Alcotest.(check int) "cnot_count" 3 (Circuit.cnot_count c);
  Alcotest.(check int) "two_qubit_count" 1 (Circuit.two_qubit_count c)

let test_barrier_excluded_from_gate_count () =
  let c =
    Circuit.make 2 [ (Gate.H, [| 0 |]); (Gate.Barrier, [| 0; 1 |]) ]
  in
  Alcotest.(check int) "gate_count skips barrier" 1 (Circuit.gate_count c)

let test_measured_qubits () =
  let c = bell () in
  Alcotest.(check (list int)) "measured" [ 0; 1 ] (Circuit.measured_qubits c)

let test_measured_qubits_dedup () =
  let c = Circuit.make 1 [ (Gate.Measure, [| 0 |]); (Gate.Measure, [| 0 |]) ] in
  Alcotest.(check (list int)) "deduped" [ 0 ] (Circuit.measured_qubits c)

let test_used_qubits () =
  let c = Circuit.make 5 [ (Gate.H, [| 3 |]); (Gate.Cnot, [| 1; 3 |]) ] in
  Alcotest.(check (list int)) "used" [ 1; 3 ] (Circuit.used_qubits c)

let test_interaction_weights () =
  let c =
    Circuit.make 3
      [ (Gate.Cnot, [| 0; 1 |]); (Gate.Cnot, [| 1; 0 |]); (Gate.Cnot, [| 1; 2 |]) ]
  in
  Alcotest.(check (list (pair (pair int int) int)))
    "weights normalized and summed"
    [ ((0, 1), 2); ((1, 2), 1) ]
    (Circuit.interaction_weights c)

let test_qubit_degrees () =
  let c =
    Circuit.make 3 [ (Gate.Cnot, [| 0; 1 |]); (Gate.Cnot, [| 1; 2 |]) ]
  in
  Alcotest.(check (array int)) "degrees" [| 1; 2; 1 |] (Circuit.qubit_degrees c)

let test_map_qubits () =
  let c = bell () in
  let m = Circuit.map_qubits c ~f:(fun q -> q + 3) ~num_qubits:8 in
  Alcotest.(check int) "num_qubits" 8 m.Circuit.num_qubits;
  Alcotest.(check (list int)) "used" [ 3; 4 ] (Circuit.used_qubits m)

let test_map_qubits_rejects_non_injective () =
  let c = bell () in
  Alcotest.(check bool) "raises" true
    (try ignore (Circuit.map_qubits c ~f:(fun _ -> 0) ~num_qubits:4); false
     with Invalid_argument _ -> true)

let test_append () =
  let a = Circuit.make 2 [ (Gate.H, [| 0 |]) ] in
  let b = Circuit.make 2 [ (Gate.X, [| 1 |]) ] in
  let c = Circuit.append a b in
  Alcotest.(check int) "length" 2 (Circuit.length c);
  Alcotest.(check int) "ids renumbered" 1 c.Circuit.gates.(1).Gate.id

let test_append_rejects_mismatch () =
  let a = Circuit.make 2 [ (Gate.H, [| 0 |]) ] in
  let b = Circuit.make 3 [ (Gate.H, [| 0 |]) ] in
  Alcotest.(check bool) "raises" true
    (try ignore (Circuit.append a b); false with Invalid_argument _ -> true)

let test_inverse_reverses_and_adjoints () =
  let c = Circuit.make 2 [ (Gate.S, [| 0 |]); (Gate.Cnot, [| 0; 1 |]) ] in
  let inv = Circuit.inverse c in
  Alcotest.(check bool) "first is cnot" true
    (Gate.equal_kind inv.Circuit.gates.(0).Gate.kind Gate.Cnot);
  Alcotest.(check bool) "second is sdg" true
    (Gate.equal_kind inv.Circuit.gates.(1).Gate.kind Gate.Sdg)

let test_inverse_rejects_measurement () =
  let c = bell () in
  Alcotest.(check bool) "raises" true
    (try ignore (Circuit.inverse c); false with Invalid_argument _ -> true)

(* -------------------------------- Dag ------------------------------ *)

let test_dag_chain () =
  let c = Circuit.make 1 [ (Gate.H, [| 0 |]); (Gate.X, [| 0 |]); (Gate.Z, [| 0 |]) ] in
  let d = Dag.of_circuit c in
  Alcotest.(check (list int)) "preds of 2" [ 1 ] (Dag.preds d 2);
  Alcotest.(check (list int)) "succs of 0" [ 1 ] (Dag.succs d 0);
  Alcotest.(check (list int)) "roots" [ 0 ] (Dag.roots d);
  Alcotest.(check int) "depth" 3 (Dag.depth d)

let test_dag_parallel_gates () =
  let c = Circuit.make 2 [ (Gate.H, [| 0 |]); (Gate.H, [| 1 |]) ] in
  let d = Dag.of_circuit c in
  Alcotest.(check (list int)) "both roots" [ 0; 1 ] (Dag.roots d);
  Alcotest.(check int) "depth 1" 1 (Dag.depth d);
  Alcotest.(check (list (list int))) "one layer" [ [ 0; 1 ] ] (Dag.layers d)

let test_dag_cnot_joins_dependencies () =
  let c =
    Circuit.make 2
      [ (Gate.H, [| 0 |]); (Gate.X, [| 1 |]); (Gate.Cnot, [| 0; 1 |]) ]
  in
  let d = Dag.of_circuit c in
  Alcotest.(check (list int)) "cnot depends on both" [ 0; 1 ] (Dag.preds d 2)

let test_dag_no_duplicate_edges () =
  (* two gates sharing two qubits must produce a single dependency edge *)
  let c = Circuit.make 2 [ (Gate.Cnot, [| 0; 1 |]); (Gate.Cnot, [| 1; 0 |]) ] in
  let d = Dag.of_circuit c in
  Alcotest.(check (list int)) "single edge" [ 0 ] (Dag.preds d 1)

let test_dag_layers_partition () =
  let c = (Nisq_bench.Benchmarks.by_name "Toffoli").Nisq_bench.Benchmarks.circuit in
  let d = Dag.of_circuit c in
  let total = List.fold_left (fun acc l -> acc + List.length l) 0 (Dag.layers d) in
  Alcotest.(check int) "layers cover all gates" (Circuit.length c) total

let test_dag_critical_path_unit_weights () =
  let c = bell () in
  let d = Dag.of_circuit c in
  (* h; cnot; 2 measures in parallel -> depth 3 with unit weights *)
  Alcotest.(check int) "critical path" 3
    (Dag.critical_path_length d ~weight:(fun _ -> 1))

let test_dag_critical_path_weighted () =
  let c = bell () in
  let d = Dag.of_circuit c in
  let weight (g : Gate.t) = match g.kind with Gate.Cnot -> 10 | _ -> 1 in
  Alcotest.(check int) "weighted path" 12 (Dag.critical_path_length d ~weight)

let test_dag_empty () =
  let c = Circuit.make 1 [] in
  let d = Dag.of_circuit c in
  Alcotest.(check int) "depth 0" 0 (Dag.depth d);
  Alcotest.(check (list (list int))) "no layers" [] (Dag.layers d)

(* ----------------------------- Decompose --------------------------- *)

let test_toffoli_cnot_count () =
  let b = B.create 3 in
  Decompose.emit_toffoli b 0 1 2;
  Alcotest.(check int) "6 CNOTs" 6 (Circuit.cnot_count (B.build b))

let test_fredkin_cnot_count () =
  let b = B.create 3 in
  Decompose.emit_fredkin b 0 1 2;
  Alcotest.(check int) "8 CNOTs" 8 (Circuit.cnot_count (B.build b))

let test_cz_cnot_count () =
  let b = B.create 2 in
  Decompose.emit_cz b 0 1;
  Alcotest.(check int) "1 CNOT" 1 (Circuit.cnot_count (B.build b))

let test_lower_swaps () =
  let c = Circuit.make 2 [ (Gate.Swap, [| 0; 1 |]); (Gate.H, [| 0 |]) ] in
  let l = Nisq_circuit.Decompose.lower_swaps c in
  Alcotest.(check int) "4 gates" 4 (Circuit.length l);
  Alcotest.(check bool) "no swap remains" true
    (Array.for_all (fun (g : Gate.t) -> g.kind <> Gate.Swap) l.Circuit.gates)

(* -------------------------------- Qasm ----------------------------- *)

let test_qasm_emit_contains_header () =
  let s = Qasm.to_string (bell ()) in
  Alcotest.(check bool) "header" true
    (String.length s > 0 && String.sub s 0 13 = "OPENQASM 2.0;")

let test_qasm_roundtrip_bell () =
  let c = bell () in
  let c' = Qasm.roundtrip c in
  Alcotest.(check int) "same num_qubits" c.Circuit.num_qubits c'.Circuit.num_qubits;
  Alcotest.(check int) "same length" (Circuit.length c) (Circuit.length c');
  Array.iteri
    (fun i (g : Gate.t) ->
      Alcotest.(check bool) "same kind" true
        (Gate.equal_kind g.kind c'.Circuit.gates.(i).Gate.kind))
    c.Circuit.gates

let test_qasm_roundtrip_rotations () =
  let c =
    Circuit.make 1 [ (Gate.Rz 0.123456789, [| 0 |]); (Gate.Rx (-1.5), [| 0 |]) ]
  in
  let c' = Qasm.roundtrip c in
  Array.iteri
    (fun i (g : Gate.t) ->
      Alcotest.(check bool) "angle preserved" true
        (Gate.equal_kind g.kind c'.Circuit.gates.(i).Gate.kind))
    c.Circuit.gates

let test_qasm_roundtrip_lowers_swaps () =
  let c = Circuit.make 2 [ (Gate.Swap, [| 0; 1 |]) ] in
  let c' = Qasm.roundtrip c in
  Alcotest.(check int) "3 cx" 3 (Circuit.length c')

let test_qasm_parse_pi_angles () =
  let src =
    "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[1];\ncreg c[1];\nrz(pi/2) q[0];\nrz(-pi/4) q[0];\nrz(2*pi) q[0];\n"
  in
  let c = Qasm.of_string_exn src in
  let angle i =
    match c.Circuit.gates.(i).Gate.kind with Gate.Rz a -> a | _ -> Float.nan
  in
  Alcotest.(check (float 1e-12)) "pi/2" (Float.pi /. 2.0) (angle 0);
  Alcotest.(check (float 1e-12)) "-pi/4" (-.Float.pi /. 4.0) (angle 1);
  Alcotest.(check (float 1e-12)) "2*pi" (2.0 *. Float.pi) (angle 2)

let test_qasm_parse_comments_and_blank_lines () =
  let src =
    "// a comment\nOPENQASM 2.0;\nqreg q[2];\ncreg c[2];\n\nh q[0]; // trailing\ncx q[0],q[1];\n"
  in
  let c = Qasm.of_string_exn src in
  Alcotest.(check int) "2 gates" 2 (Circuit.length c)

let test_qasm_parse_rejects_garbage () =
  match Qasm.of_string "qreg q[2];\nfrobnicate q[0];" with
  | Ok _ -> Alcotest.fail "garbage parsed"
  | Error { Qasm.line; _ } -> Alcotest.(check int) "error line" 2 line

let test_qasm_parse_rejects_missing_qreg () =
  match Qasm.of_string "h q[0];" with
  | Ok _ -> Alcotest.fail "missing qreg parsed"
  | Error { Qasm.line; _ } -> Alcotest.(check int) "no line (whole file)" 0 line

let test_qasm_all_benchmarks_roundtrip () =
  List.iter
    (fun (b : Nisq_bench.Benchmarks.t) ->
      let c = b.Nisq_bench.Benchmarks.circuit in
      let c' = Qasm.roundtrip c in
      Alcotest.(check int)
        (b.Nisq_bench.Benchmarks.name ^ " length")
        (Circuit.length c) (Circuit.length c'))
    Nisq_bench.Benchmarks.all

let suite =
  [
    ("gate arity", `Quick, test_gate_arity);
    ("gate adjoint involution", `Quick, test_gate_adjoint_involution);
    ("gate adjoint of S", `Quick, test_gate_adjoint_s);
    ("gate adjoint of measure raises", `Quick, test_gate_adjoint_measure_raises);
    ("gate names", `Quick, test_gate_names);
    ("gate equal_kind on rotations", `Quick, test_gate_equal_kind_rotations);
    ("builder rejects out-of-range", `Quick, test_builder_rejects_out_of_range);
    ("builder rejects duplicates", `Quick, test_builder_rejects_duplicate_operands);
    ("builder rejects arity mismatch", `Quick, test_builder_rejects_arity_mismatch);
    ("builder assigns sequential ids", `Quick, test_builder_ids_sequential);
    ("circuit counts", `Quick, test_counts);
    ("swap counts as 3 cnots", `Quick, test_swap_counts_as_three_cnots);
    ("barrier excluded from gate count", `Quick, test_barrier_excluded_from_gate_count);
    ("measured qubits", `Quick, test_measured_qubits);
    ("measured qubits deduped", `Quick, test_measured_qubits_dedup);
    ("used qubits", `Quick, test_used_qubits);
    ("interaction weights", `Quick, test_interaction_weights);
    ("qubit degrees", `Quick, test_qubit_degrees);
    ("map qubits", `Quick, test_map_qubits);
    ("map qubits rejects non-injective", `Quick, test_map_qubits_rejects_non_injective);
    ("append", `Quick, test_append);
    ("append rejects mismatch", `Quick, test_append_rejects_mismatch);
    ("inverse reverses and adjoints", `Quick, test_inverse_reverses_and_adjoints);
    ("inverse rejects measurement", `Quick, test_inverse_rejects_measurement);
    ("dag chain", `Quick, test_dag_chain);
    ("dag parallel gates", `Quick, test_dag_parallel_gates);
    ("dag cnot joins deps", `Quick, test_dag_cnot_joins_dependencies);
    ("dag no duplicate edges", `Quick, test_dag_no_duplicate_edges);
    ("dag layers partition gates", `Quick, test_dag_layers_partition);
    ("dag critical path unit", `Quick, test_dag_critical_path_unit_weights);
    ("dag critical path weighted", `Quick, test_dag_critical_path_weighted);
    ("dag empty circuit", `Quick, test_dag_empty);
    ("toffoli has 6 cnots", `Quick, test_toffoli_cnot_count);
    ("fredkin has 8 cnots", `Quick, test_fredkin_cnot_count);
    ("cz has 1 cnot", `Quick, test_cz_cnot_count);
    ("lower swaps", `Quick, test_lower_swaps);
    ("qasm header", `Quick, test_qasm_emit_contains_header);
    ("qasm roundtrip bell", `Quick, test_qasm_roundtrip_bell);
    ("qasm roundtrip rotations", `Quick, test_qasm_roundtrip_rotations);
    ("qasm roundtrip lowers swaps", `Quick, test_qasm_roundtrip_lowers_swaps);
    ("qasm parses pi angles", `Quick, test_qasm_parse_pi_angles);
    ("qasm parses comments", `Quick, test_qasm_parse_comments_and_blank_lines);
    ("qasm rejects unknown gate", `Quick, test_qasm_parse_rejects_garbage);
    ("qasm rejects missing qreg", `Quick, test_qasm_parse_rejects_missing_qreg);
    ("qasm roundtrips all benchmarks", `Quick, test_qasm_all_benchmarks_roundtrip);
  ]
