(* Tests for Nisq_solver: Budget, Placement, Makespan. *)

module Budget = Nisq_solver.Budget
module Placement = Nisq_solver.Placement
module Makespan = Nisq_solver.Makespan
module Rng = Nisq_util.Rng

(* ------------------------------- Budget ---------------------------- *)

let test_budget_clock_nodes () =
  let c = Budget.Clock.start (Budget.nodes 3) in
  Alcotest.(check bool) "1" true (Budget.Clock.tick c);
  Alcotest.(check bool) "2" true (Budget.Clock.tick c);
  Alcotest.(check bool) "3" true (Budget.Clock.tick c);
  Alcotest.(check bool) "4 blows" false (Budget.Clock.tick c);
  Alcotest.(check bool) "stays blown" false (Budget.Clock.tick c)

let test_budget_unlimited () =
  let c = Budget.Clock.start Budget.unlimited in
  for _ = 1 to 10_000 do
    ignore (Budget.Clock.tick c)
  done;
  let s = Budget.Clock.stats c ~exhausted:true in
  Alcotest.(check bool) "optimal when exhausted" true s.Budget.proven_optimal

let test_budget_stats_not_optimal_when_blown () =
  let c = Budget.Clock.start (Budget.nodes 1) in
  ignore (Budget.Clock.tick c);
  ignore (Budget.Clock.tick c);
  let s = Budget.Clock.stats c ~exhausted:false in
  Alcotest.(check bool) "not optimal" false s.Budget.proven_optimal

(* ------------------------------ Placement -------------------------- *)

let random_problem rng ~items ~slots ~pairs =
  let unary =
    Array.init items (fun _ ->
        Array.init slots (fun _ -> -.Rng.float rng 1.0))
  in
  let pairwise =
    List.init pairs (fun _ ->
        let i = Rng.int rng (items - 1) in
        let j = i + 1 + Rng.int rng (items - i - 1) in
        let m =
          Array.init slots (fun _ ->
              Array.init slots (fun _ -> -.Rng.float rng 1.0))
        in
        (i, j, m))
  in
  { Placement.num_items = items; num_slots = slots; unary; pairwise }

let test_placement_matches_brute_force () =
  let rng = Rng.create 1 in
  for _ = 1 to 25 do
    let items = 2 + Rng.int rng 3 in
    let slots = items + Rng.int rng 3 in
    let p = random_problem rng ~items ~slots ~pairs:(Rng.int rng 4) in
    let s = Placement.solve p in
    let _, best = Placement.brute_force p in
    Alcotest.(check (float 1e-9)) "objective optimal" best s.Placement.objective;
    Alcotest.(check (float 1e-9)) "assignment consistent" s.Placement.objective
      (Placement.score p s.Placement.assignment);
    Alcotest.(check bool) "proven optimal" true s.Placement.stats.Budget.proven_optimal
  done

let test_placement_assignment_injective () =
  let rng = Rng.create 2 in
  for _ = 1 to 20 do
    let items = 2 + Rng.int rng 5 in
    let slots = items + Rng.int rng 4 in
    let p = random_problem rng ~items ~slots ~pairs:(Rng.int rng 6) in
    let s = Placement.solve p in
    let seen = Hashtbl.create 8 in
    Array.iter
      (fun slot ->
        Alcotest.(check bool) "in range" true (slot >= 0 && slot < slots);
        Alcotest.(check bool) "distinct" false (Hashtbl.mem seen slot);
        Hashtbl.add seen slot ())
      s.Placement.assignment
  done

let test_placement_unary_only_picks_best () =
  let p =
    {
      Placement.num_items = 2;
      num_slots = 3;
      unary = [| [| -5.0; -1.0; -9.0 |]; [| -2.0; -7.0; -3.0 |] |];
      pairwise = [];
    }
  in
  let s = Placement.solve p in
  Alcotest.(check (array int)) "best slots" [| 1; 0 |] s.Placement.assignment

let test_placement_pairwise_dominates () =
  (* strong pairwise coupling forces items onto the matched slot pair even
     though unary prefers elsewhere *)
  let m = Array.make_matrix 3 3 (-100.0) in
  m.(0).(1) <- 0.0;
  let p =
    {
      Placement.num_items = 2;
      num_slots = 3;
      unary = [| [| -1.0; -1.0; 0.0 |]; [| -1.0; -1.0; 0.0 |] |];
      pairwise = [ (0, 1, m) ];
    }
  in
  let s = Placement.solve p in
  Alcotest.(check (array int)) "paired slots" [| 0; 1 |] s.Placement.assignment

let test_placement_duplicate_pairs_summed () =
  let m1 = Array.make_matrix 2 2 0.0 in
  m1.(0).(1) <- -1.0;
  m1.(1).(0) <- -4.0;
  let p =
    {
      Placement.num_items = 2;
      num_slots = 2;
      unary = [| [| 0.0; 0.0 |]; [| 0.0; 0.0 |] |];
      pairwise = [ (0, 1, m1); (0, 1, m1) ];
    }
  in
  let s = Placement.solve p in
  Alcotest.(check (float 1e-9)) "summed objective" (-2.0) s.Placement.objective

let test_placement_budget_still_feasible () =
  let rng = Rng.create 3 in
  let p = random_problem rng ~items:6 ~slots:12 ~pairs:8 in
  let s = Placement.solve ~budget:(Budget.nodes 5) p in
  Alcotest.(check bool) "not proven optimal" false
    s.Placement.stats.Budget.proven_optimal;
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun slot ->
      Alcotest.(check bool) "valid slot" true (slot >= 0 && slot < 12);
      Alcotest.(check bool) "injective" false (Hashtbl.mem seen slot);
      Hashtbl.add seen slot ())
    s.Placement.assignment

let test_placement_rejects_too_many_items () =
  let p =
    { Placement.num_items = 3; num_slots = 2;
      unary = Array.make_matrix 3 2 0.0; pairwise = [] }
  in
  Alcotest.(check bool) "raises" true
    (try ignore (Placement.solve p); false with Invalid_argument _ -> true)

let test_placement_rejects_bad_pair_indices () =
  let p =
    { Placement.num_items = 2; num_slots = 2;
      unary = Array.make_matrix 2 2 0.0;
      pairwise = [ (1, 0, Array.make_matrix 2 2 0.0) ] }
  in
  Alcotest.(check bool) "raises on i >= j" true
    (try ignore (Placement.solve p); false with Invalid_argument _ -> true)

let test_placement_score_function () =
  let m = Array.make_matrix 2 2 0.0 in
  m.(0).(1) <- -3.0;
  let p =
    { Placement.num_items = 2; num_slots = 2;
      unary = [| [| -1.0; 0.0 |]; [| 0.0; -2.0 |] |];
      pairwise = [ (0, 1, m) ] }
  in
  Alcotest.(check (float 1e-12)) "score" (-6.0) (Placement.score p [| 0; 1 |])

(* ------------------------------- Makespan -------------------------- *)

(* A toy placement-cost model: cost of a complete placement is the sum of
   |slot(i) - target(i)|; the lower bound for partial placements sums only
   the placed items, which is admissible. *)
let toy_problem targets slots =
  let items = Array.length targets in
  let cost placement =
    let acc = ref 0 in
    Array.iteri
      (fun i s -> if s >= 0 then acc := !acc + abs (s - targets.(i)))
      placement;
    !acc
  in
  {
    Makespan.num_items = items;
    num_slots = slots;
    order = None;
    lower_bound = cost;
    leaf_cost = cost;
  }

let test_makespan_finds_exact_assignment () =
  let p = toy_problem [| 2; 0; 1 |] 4 in
  let s = Makespan.solve p in
  Alcotest.(check int) "zero cost" 0 s.Makespan.cost;
  Alcotest.(check (array int)) "exact targets" [| 2; 0; 1 |] s.Makespan.assignment

let test_makespan_handles_conflicts () =
  (* two items want the same slot; optimal cost is 1 *)
  let p = toy_problem [| 0; 0 |] 2 in
  let s = Makespan.solve p in
  Alcotest.(check int) "cost 1" 1 s.Makespan.cost

let test_makespan_respects_order () =
  let p = { (toy_problem [| 1; 0 |] 3) with Makespan.order = Some [| 1; 0 |] } in
  let s = Makespan.solve p in
  Alcotest.(check int) "still optimal" 0 s.Makespan.cost

let test_makespan_budget_fallback () =
  let p = toy_problem [| 3; 1; 0; 2 |] 6 in
  let s = Makespan.solve ~budget:(Budget.nodes 1) p in
  (* budget blown immediately: greedy completion must still be injective *)
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun slot ->
      Alcotest.(check bool) "valid" true (slot >= 0 && slot < 6);
      Alcotest.(check bool) "injective" false (Hashtbl.mem seen slot);
      Hashtbl.add seen slot ())
    s.Makespan.assignment;
  Alcotest.(check bool) "cost computed" true (s.Makespan.cost < Int.max_int)

let test_makespan_infeasible_leaves () =
  (* leaf cost rejects everything: solver returns max_int *)
  let p =
    {
      Makespan.num_items = 2;
      num_slots = 2;
      order = None;
      lower_bound = (fun _ -> 0);
      leaf_cost = (fun _ -> Int.max_int);
    }
  in
  let s = Makespan.solve p in
  Alcotest.(check bool) "no feasible cost" true (s.Makespan.cost = Int.max_int)

let test_makespan_rejects_bad_problem () =
  let p = toy_problem [| 0; 1; 2 |] 2 in
  Alcotest.(check bool) "raises" true
    (try ignore (Makespan.solve p); false with Invalid_argument _ -> true)

(* Forbid-aware exhaustive reference: [brute_force] with quarantined
   slots excluded. Random float scores make ties measure-zero, so the
   DFS and the reference must agree on the optimum exactly. *)
let brute_force_forbid p ~forbid =
  let n = p.Placement.num_items and s = p.Placement.num_slots in
  let assignment = Array.make n (-1) in
  let used = Array.make s false in
  let best = Array.make n (-1) in
  let best_score = ref neg_infinity in
  let rec go i =
    if i = n then begin
      let v = Placement.score p assignment in
      if v > !best_score then begin
        best_score := v;
        Array.blit assignment 0 best 0 n
      end
    end
    else
      for slot = 0 to s - 1 do
        if (not used.(slot)) && not (forbid slot) then begin
          assignment.(i) <- slot;
          used.(slot) <- true;
          go (i + 1);
          used.(slot) <- false;
          assignment.(i) <- -1
        end
      done
  in
  go 0;
  (best, !best_score)

let test_placement_matches_reference_with_forbid () =
  let rng = Rng.create 11 in
  for _ = 1 to 20 do
    let items = 2 + Rng.int rng 3 in
    let slots = items + 1 + Rng.int rng 3 in
    let p = random_problem rng ~items ~slots ~pairs:(Rng.int rng 5) in
    (* quarantine one slot, keeping at least [items] live *)
    let banned = Rng.int rng slots in
    let forbid slot = slot = banned in
    let sol = Placement.solve ~forbid p in
    let ref_assign, ref_score = brute_force_forbid p ~forbid in
    Alcotest.(check (float 1e-9)) "objective equals reference" ref_score
      sol.Placement.objective;
    Alcotest.(check (float 1e-9)) "objective consistent with assignment"
      sol.Placement.objective
      (Placement.score p sol.Placement.assignment);
    Alcotest.(check bool) "banned slot unused" false
      (Array.exists (fun sl -> sl = banned) sol.Placement.assignment);
    Alcotest.(check bool) "assignment is the unique optimum" true
      (sol.Placement.assignment = ref_assign);
    Alcotest.(check bool) "proven optimal" true
      sol.Placement.stats.Budget.proven_optimal
  done

let test_placement_evals_published_when_forbid_raises () =
  (* The constraint-eval counter must be published even when the search
     dies mid-DFS in caller code (a fault-injected [forbid]). The raise
     is timed to land after the first node's candidate evaluations, so a
     lost batch would be visible as a zero. *)
  let rng = Rng.create 12 in
  let slots = 6 in
  let p = random_problem rng ~items:4 ~slots ~pairs:4 in
  let m = Nisq_obs.Metrics.counter "solver.constraint_evals" in
  Nisq_obs.Metrics.set_enabled true;
  Nisq_obs.Metrics.reset ();
  Fun.protect ~finally:(fun () -> Nisq_obs.Metrics.set_enabled false)
  @@ fun () ->
  let calls = ref 0 in
  let forbid _ =
    incr calls;
    (* calls 1..slots: the live-slot count; calls slots+1..2*slots: the
       first DFS node's candidate fill, which interleaves incremental
       evaluations — raise at the end of it *)
    if !calls >= 2 * slots then failwith "injected forbid fault" else false
  in
  (match Placement.solve ~forbid p with
  | _ -> Alcotest.fail "expected the injected fault to escape"
  | exception Failure _ -> ());
  Alcotest.(check bool) "evals published on raise" true
    (Nisq_obs.Metrics.value m > 0)

let suite =
  [
    ("budget clock node limit", `Quick, test_budget_clock_nodes);
    ("budget unlimited", `Quick, test_budget_unlimited);
    ("budget stats when blown", `Quick, test_budget_stats_not_optimal_when_blown);
    ("placement matches brute force", `Quick, test_placement_matches_brute_force);
    ("placement assignment injective", `Quick, test_placement_assignment_injective);
    ("placement unary-only optimum", `Quick, test_placement_unary_only_picks_best);
    ("placement pairwise dominates", `Quick, test_placement_pairwise_dominates);
    ("placement duplicate pairs summed", `Quick, test_placement_duplicate_pairs_summed);
    ("placement budget fallback feasible", `Quick, test_placement_budget_still_feasible);
    ("placement rejects items > slots", `Quick, test_placement_rejects_too_many_items);
    ("placement rejects bad pairs", `Quick, test_placement_rejects_bad_pair_indices);
    ("placement score", `Quick, test_placement_score_function);
    ("placement matches reference with forbid", `Quick,
      test_placement_matches_reference_with_forbid);
    ("placement evals published on raising forbid", `Quick,
      test_placement_evals_published_when_forbid_raises);
    ("makespan exact assignment", `Quick, test_makespan_finds_exact_assignment);
    ("makespan conflicting targets", `Quick, test_makespan_handles_conflicts);
    ("makespan custom order", `Quick, test_makespan_respects_order);
    ("makespan budget fallback", `Quick, test_makespan_budget_fallback);
    ("makespan infeasible leaves", `Quick, test_makespan_infeasible_leaves);
    ("makespan rejects bad problem", `Quick, test_makespan_rejects_bad_problem);
  ]
