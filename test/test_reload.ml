(* Calibration hot reload: the epoch store's pin/retire/flush
   lifecycle, the drift gate, the reload pipeline's promote and
   rollback paths (clean and under every injected fault), and the
   daemon end-to-end — byte-identical compile replies across a
   concurrent promotion.

   Like test_serve's determinism tests, every payload comparison is
   byte-level and runs at all NISQ_DOMAINS pool sizes. *)

module Json = Nisq_obs.Json
module Calibration = Nisq_device.Calibration
module Calib_io = Nisq_device.Calib_io
module Calib_sanitize = Nisq_device.Calib_sanitize
module Calib_diff = Nisq_device.Calib_diff
module Calib_store = Nisq_device.Calib_store
module Ibmq16 = Nisq_device.Ibmq16
module Faultkit = Nisq_faultkit.Faultkit
module Reload = Nisq_serve.Reload
module Server = Nisq_serve.Server
module Protocol = Nisq_serve.Protocol

let calib ?(day = 0) () = Ibmq16.calibration ~day ()

let tmp_calib ?(day = 0) () =
  let path = Filename.temp_file "nisq-reload" ".calib" in
  Calib_io.save (calib ~day ()) ~path;
  path

let with_faults spec f =
  (match Faultkit.configure spec with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "bad fault spec %S: %s" spec msg);
  Fun.protect ~finally:Faultkit.clear f

(* ------------------------------ store ------------------------------- *)

let test_store_pin_lifecycle () =
  let store = Calib_store.create ~calib:(calib ()) ~source:"t" in
  let e0 = Calib_store.current store in
  Alcotest.(check int) "epoch 0 first" 0 e0.Calib_store.id;
  let p = Calib_store.acquire store in
  Alcotest.(check int) "pin counted" 1 (Calib_store.pins store);
  (* A promotion while e0 is pinned keeps e0 alive (retired, pinned). *)
  let id1 = Calib_store.allocate_candidate store in
  let e1 = Calib_store.swap store ~id:id1 ~calib:(calib ~day:1 ()) ~source:"t" in
  Alcotest.(check int) "promoted id" id1 e1.Calib_store.id;
  Alcotest.(check int) "current moved"
    id1 (Calib_store.current store).Calib_store.id;
  Alcotest.(check int) "retiree retained while pinned" 2
    (Calib_store.live_epochs store);
  (* The pinned request still sees epoch 0's calibration. *)
  Alcotest.(check int) "pinned epoch unchanged" 0 p.Calib_store.id;
  Calib_store.release store p;
  Alcotest.(check int) "retiree flushed at zero pins" 1
    (Calib_store.live_epochs store);
  Alcotest.(check int) "no pins left" 0 (Calib_store.pins store);
  (* Releasing an unknown epoch is a no-op, not a crash. *)
  Calib_store.release store p

let test_store_candidate_ids_consumed () =
  let store = Calib_store.create ~calib:(calib ()) ~source:"t" in
  let a = Calib_store.allocate_candidate store in
  let b = Calib_store.allocate_candidate store in
  Alcotest.(check bool) "ids monotonic" true (b > a);
  (* A stale candidate (allocated, then superseded) cannot promote over
     a newer one. *)
  let _ = Calib_store.swap store ~id:b ~calib:(calib ~day:1 ()) ~source:"t" in
  (match Calib_store.swap store ~id:a ~calib:(calib ()) ~source:"t" with
  | _ -> Alcotest.fail "stale candidate promoted"
  | exception Invalid_argument _ -> ());
  Alcotest.(check int) "current unchanged by the stale attempt" b
    (Calib_store.current store).Calib_store.id

let test_store_identical_digest_shared () =
  (* Reloading a byte-identical file: old and new epoch share a digest;
     retiring the old one must NOT flush the caches the new one uses.
     Observable here as: the store knows the digests match. *)
  let c = calib () in
  let store = Calib_store.create ~calib:c ~source:"t" in
  let e0 = Calib_store.current store in
  let id1 = Calib_store.allocate_candidate store in
  let e1 = Calib_store.swap store ~id:id1 ~calib:c ~source:"t" in
  Alcotest.(check string) "same calibration, same digest"
    e0.Calib_store.digest e1.Calib_store.digest;
  Alcotest.(check int) "unpinned retiree dropped" 1
    (Calib_store.live_epochs store)

(* --------------------------- drift gate ----------------------------- *)

let test_diff_identical_passes () =
  let c = calib () in
  let d = Calib_diff.diff ~old_:c ~candidate:c in
  Alcotest.(check (list string)) "no rejection reasons" [] (Calib_diff.gate d);
  Alcotest.(check int) "no changed fields" 0
    (List.fold_left (fun n f -> n + f.Calib_diff.changed) 0 d.Calib_diff.fields)

let test_diff_day_to_day_within_gate () =
  (* Consecutive synthetic days drift mildly — the gate must not reject
     routine daily refreshes, or reload would be useless in practice. *)
  let d =
    Calib_diff.diff ~old_:(calib ~day:0 ()) ~candidate:(calib ~day:1 ())
  in
  Alcotest.(check (list string)) "daily drift passes" [] (Calib_diff.gate d)

let test_gate_rejects_error_drift () =
  let c = calib () in
  let raw = Calib_sanitize.of_calibration c in
  let scale x = Float.min 0.9 (3.0 *. x) in
  let drifted =
    {
      raw with
      Calib_sanitize.readout_error = Array.map scale raw.Calib_sanitize.readout_error;
      cnot_error =
        Array.map
          (Array.map (fun e -> if Float.is_nan e then e else scale e))
          raw.Calib_sanitize.cnot_error;
    }
  in
  let candidate, _ = Calib_sanitize.sanitize ~previous:c drifted in
  let d = Calib_diff.diff ~old_:c ~candidate in
  let reasons = Calib_diff.gate d in
  Alcotest.(check bool) "3x errors rejected" true (reasons <> []);
  Alcotest.(check bool) "names the cnot drift" true
    (List.exists (fun r -> Astring_contains.contains r "CNOT") reasons)

let test_gate_rejects_quarantine_growth () =
  let c = calib () in
  let raw = Calib_sanitize.of_calibration c in
  let poisoned =
    Calib_sanitize.apply_faults raw
      (List.map
         (fun q -> { Faultkit.target = Faultkit.Qubit q; kind = Faultkit.Offline })
         [ 0; 1; 2; 3 ])
  in
  let candidate, _ = Calib_sanitize.sanitize ~previous:c poisoned in
  let d = Calib_diff.diff ~old_:c ~candidate in
  Alcotest.(check bool) "4 dead qubits exceed the quarantine budget" true
    (List.length d.Calib_diff.new_quarantined_qubits >= 4);
  Alcotest.(check bool) "gate rejects" true (Calib_diff.gate d <> [])

let test_diff_json_schema () =
  let d = Calib_diff.diff ~old_:(calib ()) ~candidate:(calib ~day:1 ()) in
  match Json.member "schema" (Calib_diff.to_json d) with
  | Some (Json.String "nisq-calib-diff/1") -> ()
  | _ -> Alcotest.fail "diff json must carry schema nisq-calib-diff/1"

(* --------------------------- faultkit ------------------------------- *)

let test_faultkit_reload_clauses () =
  with_faults
    "calib:reload-torn@epoch1;calib:reload-drift@epoch2;calib:reload-poison@epoch3;server:slow-reload@epoch4"
    (fun () ->
      let kind i =
        match Faultkit.reload_fault i with
        | Some Faultkit.Reload_torn -> "torn"
        | Some Faultkit.Reload_drift -> "drift"
        | Some Faultkit.Reload_poison -> "poison"
        | Some Faultkit.Reload_slow -> "slow"
        | None -> "none"
      in
      Alcotest.(check string) "epoch1" "torn" (kind 1);
      Alcotest.(check string) "one-shot" "none" (kind 1);
      Alcotest.(check string) "epoch2" "drift" (kind 2);
      Alcotest.(check string) "epoch3" "poison" (kind 3);
      Alcotest.(check string) "epoch4" "slow" (kind 4);
      Alcotest.(check string) "unarmed epoch" "none" (kind 5))

let test_faultkit_reload_parse_errors () =
  match Faultkit.configure "calib:reload-torn@req3" with
  | Ok () ->
      Faultkit.clear ();
      Alcotest.fail "reload clause must demand an @epoch target"
  | Error _ -> ()

(* --------------------------- pipeline ------------------------------- *)

let run_store path = Calib_store.create ~calib:(calib ()) ~source:path

let test_pipeline_promotes_clean_file () =
  let path = tmp_calib () in
  let store = run_store path in
  let res = Reload.run ~store ~path () in
  (match res.Reload.outcome with
  | Reload.Promoted e ->
      Alcotest.(check int) "epoch 1 live" 1 e.Calib_store.id;
      Alcotest.(check int) "store current follows" 1
        (Calib_store.current store).Calib_store.id
  | Reload.Rolled_back { stage; reasons } ->
      Alcotest.failf "clean reload rolled back at %s: %s" stage
        (String.concat "; " reasons));
  match Json.member "decision" res.Reload.report with
  | Some (Json.String "promoted") -> ()
  | _ -> Alcotest.fail "report decision must be promoted"

let test_pipeline_missing_file_rolls_back () =
  let store = run_store "/nonexistent/calib" in
  let res = Reload.run ~store ~path:"/nonexistent/calib" () in
  match res.Reload.outcome with
  | Reload.Rolled_back { stage = "parse"; _ } ->
      Alcotest.(check int) "live epoch untouched" 0
        (Calib_store.current store).Calib_store.id
  | Reload.Rolled_back { stage; _ } -> Alcotest.failf "wrong stage %s" stage
  | Reload.Promoted _ -> Alcotest.fail "missing file promoted"

let expect_rollback ~fault ~stage:want =
  let path = tmp_calib () in
  let store = run_store path in
  with_faults (Printf.sprintf "%s@epoch1" fault) (fun () ->
      let res = Reload.run ~store ~path () in
      (match res.Reload.outcome with
      | Reload.Rolled_back { stage; _ } ->
          Alcotest.(check string) (fault ^ " stage") want stage
      | Reload.Promoted _ -> Alcotest.failf "%s promoted" fault);
      Alcotest.(check int) "live epoch untouched" 0
        (Calib_store.current store).Calib_store.id;
      (* The report names the injected clause. *)
      match Json.member "injected" res.Reload.report with
      | Some (Json.String s) ->
          Alcotest.(check string) "injected clause" fault s
      | _ -> Alcotest.fail "report must name the injected fault");
  Sys.remove path

let test_pipeline_torn_fault () =
  expect_rollback ~fault:"calib:reload-torn" ~stage:"parse"

let test_pipeline_poison_fault () =
  expect_rollback ~fault:"calib:reload-poison" ~stage:"drift"

let test_pipeline_drift_fault () =
  expect_rollback ~fault:"calib:reload-drift" ~stage:"drift"

let test_pipeline_slow_fault_still_promotes () =
  let path = tmp_calib () in
  let store = run_store path in
  with_faults "server:slow-reload@epoch1" (fun () ->
      let t0 = Unix.gettimeofday () in
      let res = Reload.run ~store ~path () in
      let elapsed = Unix.gettimeofday () -. t0 in
      (match res.Reload.outcome with
      | Reload.Promoted _ -> ()
      | Reload.Rolled_back { stage; reasons } ->
          Alcotest.failf "slow reload rolled back at %s: %s" stage
            (String.concat "; " reasons));
      Alcotest.(check bool) "the stall actually happened" true (elapsed > 0.5));
  Sys.remove path

let test_pipeline_attempts_consume_epoch_ids () =
  (* Three rollbacks then a success: the promotion takes id 4, proving
     failed attempts consume ids (so @epoch clauses stay unambiguous). *)
  let path = tmp_calib () in
  let store = run_store path in
  with_faults
    "calib:reload-torn@epoch1;calib:reload-poison@epoch2;calib:reload-drift@epoch3"
    (fun () ->
      for _ = 1 to 3 do
        match (Reload.run ~store ~path ()).Reload.outcome with
        | Reload.Rolled_back _ -> ()
        | Reload.Promoted _ -> Alcotest.fail "faulted attempt promoted"
      done;
      match (Reload.run ~store ~path ()).Reload.outcome with
      | Reload.Promoted e ->
          Alcotest.(check int) "fourth attempt is epoch 4" 4 e.Calib_store.id
      | Reload.Rolled_back { stage; _ } ->
          Alcotest.failf "clean fourth attempt failed at %s" stage);
  Sys.remove path

(* ------------------------- daemon end-to-end ------------------------ *)

let compile_req id =
  {
    Protocol.id;
    deadline_ms = None;
    verb = Protocol.Compile (Test_serve.compile_params "bv4");
  }

let result_bytes = function
  | Ok { Protocol.body = Protocol.Result v; _ } -> Json.to_string v
  | Ok { Protocol.body = Protocol.Failed { code; message; _ }; _ } ->
      Alcotest.failf "request failed [%s]: %s" code message
  | Ok _ -> Alcotest.fail "unexpected reply body"
  | Error msg -> Alcotest.failf "call failed: %s" msg

let call socket req =
  match Nisq_serve.Client.connect ~socket with
  | Error msg -> Alcotest.failf "connect: %s" msg
  | Ok conn ->
      Fun.protect
        ~finally:(fun () -> Nisq_serve.Client.close conn)
        (fun () -> Nisq_serve.Client.call conn req)

let test_e2e_reload_byte_identity () =
  let path = tmp_calib () in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Test_serve.with_server ~calib:(Server.calib_config path) (fun socket ->
      let before = result_bytes (call socket (compile_req 1)) in
      (* Reload the same file: promotion with identical content. *)
      let reload = call socket { Protocol.id = 2; deadline_ms = None;
                                 verb = Protocol.Reload { path = None } } in
      (match reload with
      | Ok { Protocol.body = Protocol.Result v; _ } -> (
          match Json.member "decision" v with
          | Some (Json.String "promoted") -> ()
          | _ -> Alcotest.fail "same-file reload must promote")
      | _ -> Alcotest.fail "reload verb must answer with a report");
      let after = result_bytes (call socket (compile_req 3)) in
      Alcotest.(check string)
        "identical calibration content, identical reply bytes" before after;
      (* Stats reflect the attempt and the promoted epoch. *)
      match call socket { Protocol.id = 4; deadline_ms = None; verb = Protocol.Stats } with
      | Ok { Protocol.body = Protocol.Result v; _ } ->
          let int_at path_keys =
            List.fold_left
              (fun acc k -> Option.bind acc (Json.member k))
              (Some v) path_keys
          in
          (match int_at [ "reloads"; "promotions" ] with
          | Some (Json.Int 1) -> ()
          | _ -> Alcotest.fail "stats must count 1 promotion");
          (match int_at [ "calib"; "epoch" ] with
          | Some (Json.Int 1) -> ()
          | _ -> Alcotest.fail "stats must report epoch 1");
          (match int_at [ "calib"; "pins" ] with
          | Some (Json.Int 0) -> ()
          | _ -> Alcotest.fail "no pins may leak after delivery")
      | _ -> Alcotest.fail "stats failed")

let test_e2e_rollback_leaves_replies_unchanged () =
  let path = tmp_calib () in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Test_serve.with_server ~calib:(Server.calib_config path) (fun socket ->
      let before = result_bytes (call socket (compile_req 1)) in
      with_faults "calib:reload-poison@epoch1" (fun () ->
          match call socket { Protocol.id = 2; deadline_ms = None;
                              verb = Protocol.Reload { path = None } } with
          | Ok { Protocol.body = Protocol.Result v; _ } -> (
              match Json.member "decision" v with
              | Some (Json.String "rolled-back") -> ()
              | _ -> Alcotest.fail "poisoned candidate must roll back")
          | _ -> Alcotest.fail "reload verb must answer");
      let after = result_bytes (call socket (compile_req 3)) in
      Alcotest.(check string) "rollback leaves epoch 0 serving" before after)

let test_e2e_reload_without_store_fails () =
  Test_serve.with_server (fun socket ->
      match call socket { Protocol.id = 1; deadline_ms = None;
                          verb = Protocol.Reload { path = None } } with
      | Ok { Protocol.body = Protocol.Failed { code; retryable; _ }; _ } ->
          Alcotest.(check string) "code" "no-calibration" code;
          Alcotest.(check bool) "not retryable" false retryable
      | _ -> Alcotest.fail "synthetic daemon must refuse reload")

let test_e2e_bad_initial_calib_is_startup_error () =
  let path = Filename.temp_file "nisq-reload-bad" ".calib" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc "nisq-calibration 1\nnonsense\n");
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "nisq-badcal-%d.sock" (Unix.getpid ()))
  in
  let cfg =
    { (Server.default_config ~socket) with calib = Some (Server.calib_config path) }
  in
  (match Server.run cfg with
  | _ -> Alcotest.fail "unparseable initial calibration must refuse startup"
  | exception Server.Startup_error _ -> ());
  Alcotest.(check bool) "no socket left behind" false (Sys.file_exists socket)

let suite =
  [
    Alcotest.test_case "store: pin lifecycle across swap" `Quick
      test_store_pin_lifecycle;
    Alcotest.test_case "store: candidate ids are consumed" `Quick
      test_store_candidate_ids_consumed;
    Alcotest.test_case "store: identical reload shares digest" `Quick
      test_store_identical_digest_shared;
    Alcotest.test_case "diff: identical calibrations pass" `Quick
      test_diff_identical_passes;
    Alcotest.test_case "diff: routine daily drift passes" `Quick
      test_diff_day_to_day_within_gate;
    Alcotest.test_case "gate: rejects 3x error drift" `Quick
      test_gate_rejects_error_drift;
    Alcotest.test_case "gate: rejects quarantine growth" `Quick
      test_gate_rejects_quarantine_growth;
    Alcotest.test_case "diff: json schema tag" `Quick test_diff_json_schema;
    Alcotest.test_case "faultkit: reload clauses parse and one-shot" `Quick
      test_faultkit_reload_clauses;
    Alcotest.test_case "faultkit: reload clause needs @epoch" `Quick
      test_faultkit_reload_parse_errors;
    Alcotest.test_case "pipeline: clean file promotes" `Quick
      test_pipeline_promotes_clean_file;
    Alcotest.test_case "pipeline: missing file rolls back at parse" `Quick
      test_pipeline_missing_file_rolls_back;
    Alcotest.test_case "pipeline: torn candidate rolls back" `Quick
      test_pipeline_torn_fault;
    Alcotest.test_case "pipeline: poisoned candidate rolls back" `Quick
      test_pipeline_poison_fault;
    Alcotest.test_case "pipeline: drifted candidate rolls back" `Quick
      test_pipeline_drift_fault;
    Alcotest.test_case "pipeline: slow reload still promotes" `Quick
      test_pipeline_slow_fault_still_promotes;
    Alcotest.test_case "pipeline: attempts consume epoch ids" `Quick
      test_pipeline_attempts_consume_epoch_ids;
    Alcotest.test_case "e2e: reload keeps replies byte-identical" `Quick
      test_e2e_reload_byte_identity;
    Alcotest.test_case "e2e: rollback leaves serving unchanged" `Quick
      test_e2e_rollback_leaves_replies_unchanged;
    Alcotest.test_case "e2e: reload refused without --calib" `Quick
      test_e2e_reload_without_store_fails;
    Alcotest.test_case "e2e: bad initial calibration refuses startup" `Quick
      test_e2e_bad_initial_calib_is_startup_error;
  ]
