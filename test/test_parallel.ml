(* Tests for Nisq_solver.Parallel: trajectory-deterministic fan-out,
   portfolio racing, Greedy-seeded incumbents, budget degradation under
   the compile fallback ladder, and the pool re-entrancy guard. *)

module Budget = Nisq_solver.Budget
module Placement = Nisq_solver.Placement
module Makespan = Nisq_solver.Makespan
module Parallel = Nisq_solver.Parallel
module Pool = Nisq_util.Pool
module Rng = Nisq_util.Rng
module Config = Nisq_compiler.Config
module Compile = Nisq_compiler.Compile
module Ibmq16 = Nisq_device.Ibmq16
module Benchmarks = Nisq_bench.Benchmarks

let random_problem rng ~items ~slots ~pairs =
  let unary =
    Array.init items (fun _ ->
        Array.init slots (fun _ -> -.Rng.float rng 1.0))
  in
  let pairwise =
    List.init pairs (fun _ ->
        let i = Rng.int rng (items - 1) in
        let j = i + 1 + Rng.int rng (items - i - 1) in
        let m =
          Array.init slots (fun _ ->
              Array.init slots (fun _ -> -.Rng.float rng 1.0))
        in
        (i, j, m))
  in
  { Placement.num_items = items; num_slots = slots; unary; pairwise }

let with_pool size f =
  let pool = Pool.create ~size () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

(* The determinism contract: assignment, objective bits, node count and
   the optimality verdict agree exactly across pool sizes. *)
let check_identical what (a : Placement.solution) (b : Placement.solution) =
  Alcotest.(check (array int))
    (what ^ ": assignment") a.Placement.assignment b.Placement.assignment;
  Alcotest.(check int64)
    (what ^ ": objective bits")
    (Int64.bits_of_float a.Placement.objective)
    (Int64.bits_of_float b.Placement.objective);
  Alcotest.(check int)
    (what ^ ": nodes")
    a.Placement.stats.Budget.nodes_visited
    b.Placement.stats.Budget.nodes_visited;
  Alcotest.(check bool)
    (what ^ ": proven")
    a.Placement.stats.Budget.proven_optimal
    b.Placement.stats.Budget.proven_optimal

(* --------------------- Fan-out determinism ------------------------- *)

let test_fanout_pool_size_invariant () =
  let rng = Rng.create 42 in
  for case = 1 to 4 do
    let items = 4 + Rng.int rng 3 in
    let slots = items + Rng.int rng 4 in
    let p = random_problem rng ~items ~slots ~pairs:(2 + Rng.int rng 5) in
    let seq = Placement.solve p in
    let solve size =
      with_pool size (fun pool -> Parallel.solve_placement ~pool p)
    in
    let r0 = solve 0 and r1 = solve 1 and r4 = solve 4 in
    let tag n = Printf.sprintf "case %d pools 0/%d" case n in
    check_identical (tag 1) r0 r1;
    check_identical (tag 4) r0 r4;
    Alcotest.(check (float 1e-9))
      (Printf.sprintf "case %d matches sequential objective" case)
      seq.Placement.objective r0.Placement.objective;
    Alcotest.(check bool)
      (Printf.sprintf "case %d proven" case)
      true r0.Placement.stats.Budget.proven_optimal
  done

let test_fanout_assignment_injective () =
  let rng = Rng.create 7 in
  let p = random_problem rng ~items:5 ~slots:8 ~pairs:4 in
  let r = with_pool 4 (fun pool -> Parallel.solve_placement ~pool p) in
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun slot ->
      Alcotest.(check bool) "in range" true (slot >= 0 && slot < 8);
      Alcotest.(check bool) "distinct" false (Hashtbl.mem seen slot);
      Hashtbl.add seen slot ())
    r.Placement.assignment

(* ------------------------- Greedy seeding -------------------------- *)

(* Seeding supplies an incumbent, never a different optimum: the seeded
   and unseeded searches reach equal objectives, and along the identical
   exploration order the seeded bound is never weaker, so the seeded
   sequential search visits no more nodes. *)
let test_seeded_equals_unseeded_objective () =
  let rng = Rng.create 11 in
  for case = 1 to 4 do
    let items = 4 + Rng.int rng 3 in
    let slots = items + Rng.int rng 4 in
    let p = random_problem rng ~items ~slots ~pairs:(2 + Rng.int rng 5) in
    let seed = Array.init items (fun i -> i) in
    let unseeded, seeded =
      with_pool 4 (fun pool ->
          ( Parallel.solve_placement ~pool p,
            Parallel.solve_placement ~seed ~pool p ))
    in
    Alcotest.(check (float 1e-9))
      (Printf.sprintf "case %d equal objectives" case)
      unseeded.Placement.objective seeded.Placement.objective;
    let plain = Placement.solve p in
    let incumbent = (seed, Placement.score p seed) in
    let primed = Placement.solve ~incumbent p in
    Alcotest.(check bool)
      (Printf.sprintf "case %d seeding never adds nodes" case)
      true
      (primed.Placement.stats.Budget.nodes_visited
      <= plain.Placement.stats.Budget.nodes_visited)
  done

let test_seeded_fanout_pool_size_invariant () =
  let rng = Rng.create 13 in
  let p = random_problem rng ~items:6 ~slots:9 ~pairs:5 in
  let seed = Array.init 6 (fun i -> i) in
  let solve size =
    with_pool size (fun pool -> Parallel.solve_placement ~seed ~pool p)
  in
  check_identical "seeded pools 0/4" (solve 0) (solve 4)

(* ------------------------- Portfolio mode -------------------------- *)

let test_portfolio_agrees_with_sequential () =
  let rng = Rng.create 23 in
  for case = 1 to 3 do
    let items = 4 + Rng.int rng 3 in
    let slots = items + Rng.int rng 4 in
    let p = random_problem rng ~items ~slots ~pairs:(2 + Rng.int rng 5) in
    let seq = Placement.solve p in
    let solve size =
      with_pool size (fun pool ->
          Parallel.solve_placement ~mode:Parallel.Portfolio ~pool p)
    in
    let r0 = solve 0 and r4 = solve 4 in
    check_identical (Printf.sprintf "case %d portfolio pools 0/4" case) r0 r4;
    Alcotest.(check bool)
      (Printf.sprintf "case %d portfolio proves" case)
      true r0.Placement.stats.Budget.proven_optimal;
    Alcotest.(check (float 1e-9))
      (Printf.sprintf "case %d portfolio objective" case)
      seq.Placement.objective r0.Placement.objective
  done

(* --------------------- Makespan (T-SMT⋆ side) ---------------------- *)

(* Same toy cost model as the Makespan unit tests: Σ |slot − target|,
   admissible on partial placements. The thunk builds a fresh problem
   per call, as the stateful T-SMT⋆ lower bound requires. *)
let toy_problem targets slots =
  let items = Array.length targets in
  let cost placement =
    let acc = ref 0 in
    Array.iteri
      (fun i s -> if s >= 0 then acc := !acc + abs (s - targets.(i)))
      placement;
    !acc
  in
  {
    Makespan.num_items = items;
    num_slots = slots;
    order = None;
    lower_bound = cost;
    leaf_cost = cost;
  }

let test_makespan_fanout_matches_sequential () =
  let targets = [| 3; 1; 0; 2; 4 |] in
  let make () = toy_problem targets 7 in
  let seq = Makespan.solve (make ()) in
  let solve size =
    with_pool size (fun pool -> Parallel.solve_makespan ~pool make)
  in
  let r0 = solve 0 and r4 = solve 4 in
  Alcotest.(check int) "cost matches sequential" seq.Makespan.cost
    r0.Makespan.cost;
  Alcotest.(check (array int)) "assignment pools 0/4" r0.Makespan.assignment
    r4.Makespan.assignment;
  Alcotest.(check int) "cost pools 0/4" r0.Makespan.cost r4.Makespan.cost;
  Alcotest.(check int) "nodes pools 0/4"
    r0.Makespan.stats.Budget.nodes_visited
    r4.Makespan.stats.Budget.nodes_visited;
  let seeded =
    with_pool 4 (fun pool -> Parallel.solve_makespan ~seed:targets ~pool make)
  in
  Alcotest.(check int) "seeded cost optimal" seq.Makespan.cost
    seeded.Makespan.cost

(* -------------------- Budget degradation --------------------------- *)

let test_capped_parallel_degrades_feasibly () =
  let rng = Rng.create 31 in
  let p = random_problem rng ~items:6 ~slots:9 ~pairs:6 in
  let solve size =
    with_pool size (fun pool ->
        Parallel.solve_placement ~budget:(Budget.nodes 1) ~pool p)
  in
  let r0 = solve 0 and r4 = solve 4 in
  Alcotest.(check bool) "degraded" true r0.Placement.stats.Budget.degraded;
  Alcotest.(check bool) "not proven" false
    r0.Placement.stats.Budget.proven_optimal;
  check_identical "capped pools 0/4" r0 r4;
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun slot ->
      Alcotest.(check bool) "feasible slot" true (slot >= 0 && slot < 9);
      Alcotest.(check bool) "feasible distinct" false (Hashtbl.mem seen slot);
      Hashtbl.add seen slot ())
    r0.Placement.assignment

(* A blown full budget must walk the same fallback ladder with the
   parallel path enabled: the node-capped retry succeeds at BV4 scale
   and the compile still produces a valid executable. *)
let test_compile_fallback_ladder_under_parallel () =
  let calib = Ibmq16.calibration ~day:0 () in
  let bv4 = (Benchmarks.by_name "BV4").Benchmarks.circuit in
  let config = Config.make ~budget:(Budget.nodes 1) (Config.R_smt_star 0.5) in
  Parallel.configure ~domains:2 ();
  let r =
    Fun.protect
      ~finally:(fun () -> Parallel.disable ())
      (fun () -> Compile.run ~config ~calib bv4)
  in
  (match r.Compile.rung with
  | Some Compile.Rung_capped -> ()
  | Some other ->
      Alcotest.failf "expected node-capped rung, got %s"
        (Compile.rung_name other)
  | None -> Alcotest.fail "SMT compile reported no rung");
  Alcotest.(check bool) "positive esp" true (r.Compile.esp > 0.0);
  Alcotest.(check bool) "parallel disabled again" false (Parallel.enabled ())

(* ---------------------- Pool re-entrancy guard --------------------- *)

let test_pool_reentrancy_guard () =
  List.iter
    (fun size ->
      with_pool size (fun pool ->
          let trapped =
            Pool.parallel_chunks pool ~chunks:2 (fun _ ->
                try
                  ignore (Pool.parallel_chunks pool ~chunks:1 (fun i -> i));
                  false
                with Invalid_argument _ -> true)
          in
          List.iter
            (Alcotest.(check bool)
               (Printf.sprintf "size %d: nested call trapped" size)
               true)
            trapped))
    [ 0; 2 ]

let test_pool_cross_pool_nesting_ok () =
  with_pool 2 (fun outer ->
      with_pool 0 (fun inner ->
          let sums =
            Pool.parallel_chunks outer ~chunks:2 (fun i ->
                Pool.parallel_chunks inner ~chunks:3 (fun j -> (10 * i) + j)
                |> List.fold_left ( + ) 0)
          in
          Alcotest.(check (list int)) "different-pool nesting" [ 3; 33 ] sums))

let suite =
  [
    ("fanout pool-size invariant", `Quick, test_fanout_pool_size_invariant);
    ("fanout assignment injective", `Quick, test_fanout_assignment_injective);
    ("seeded equals unseeded", `Quick, test_seeded_equals_unseeded_objective);
    ( "seeded fanout pool-size invariant",
      `Quick,
      test_seeded_fanout_pool_size_invariant );
    ("portfolio agrees with sequential", `Quick,
      test_portfolio_agrees_with_sequential);
    ("makespan fanout matches sequential", `Quick,
      test_makespan_fanout_matches_sequential);
    ("capped parallel degrades feasibly", `Quick,
      test_capped_parallel_degrades_feasibly);
    ("compile ladder under parallel", `Quick,
      test_compile_fallback_ladder_under_parallel);
    ("pool re-entrancy guard", `Quick, test_pool_reentrancy_guard);
    ("cross-pool nesting ok", `Quick, test_pool_cross_pool_nesting_ok);
  ]
