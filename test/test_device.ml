(* Tests for Nisq_device: Topology, Calibration, Calib_gen, Ibmq16, Paths. *)

module Topology = Nisq_device.Topology
module Calibration = Nisq_device.Calibration
module Calib_gen = Nisq_device.Calib_gen
module Ibmq16 = Nisq_device.Ibmq16
module Paths = Nisq_device.Paths
module Stats = Nisq_util.Stats

let grid28 = Topology.grid ~rows:2 ~cols:8

(* ------------------------------ Topology --------------------------- *)

let test_grid_size () =
  Alcotest.(check int) "16 qubits" 16 (Topology.num_qubits grid28);
  Alcotest.(check int) "edges" (7 * 2 + 8) (List.length (Topology.edges grid28))

let test_coords_index_inverse () =
  for h = 0 to 15 do
    let x, y = Topology.coords grid28 h in
    Alcotest.(check int) "roundtrip" h (Topology.index grid28 ~x ~y)
  done

let test_adjacency () =
  Alcotest.(check bool) "0-1 adjacent" true (Topology.adjacent grid28 0 1);
  Alcotest.(check bool) "0-8 adjacent (vertical)" true (Topology.adjacent grid28 0 8);
  Alcotest.(check bool) "0-2 not adjacent" false (Topology.adjacent grid28 0 2);
  Alcotest.(check bool) "7-8 not adjacent (row wrap)" false (Topology.adjacent grid28 7 8);
  Alcotest.(check bool) "self not adjacent" false (Topology.adjacent grid28 3 3)

let test_neighbors () =
  Alcotest.(check (list int)) "corner" [ 1; 8 ] (Topology.neighbors grid28 0);
  Alcotest.(check (list int)) "interior top" [ 2; 4; 11 ] (Topology.neighbors grid28 3)

let test_distance () =
  Alcotest.(check int) "manhattan" 8 (Topology.distance grid28 0 15);
  Alcotest.(check int) "same" 0 (Topology.distance grid28 5 5)

let test_degree () =
  Alcotest.(check int) "corner degree" 2 (Topology.degree grid28 0);
  Alcotest.(check int) "interior degree" 3 (Topology.degree grid28 3)

let test_grid_rejects_bad_dims () =
  Alcotest.(check bool) "raises" true
    (try ignore (Topology.grid ~rows:0 ~cols:3); false
     with Invalid_argument _ -> true)

let test_out_of_range_qubit () =
  Alcotest.(check bool) "raises" true
    (try ignore (Topology.coords grid28 16); false
     with Invalid_argument _ -> true)

(* --------------------------- Graph topologies ---------------------- *)

let test_ring_structure () =
  let r = Topology.ring 6 in
  Alcotest.(check int) "qubits" 6 (Topology.num_qubits r);
  Alcotest.(check int) "edges" 6 (List.length (Topology.edges r));
  Alcotest.(check bool) "0-5 adjacent (wrap)" true (Topology.adjacent r 0 5);
  Alcotest.(check int) "opposite distance" 3 (Topology.distance r 0 3);
  Alcotest.(check bool) "not a grid" false (Topology.is_grid r)

let test_fully_connected_structure () =
  let f = Topology.fully_connected 5 in
  Alcotest.(check int) "edges n(n-1)/2" 10 (List.length (Topology.edges f));
  for a = 0 to 4 do
    for b = 0 to 4 do
      if a <> b then begin
        Alcotest.(check bool) "all adjacent" true (Topology.adjacent f a b);
        Alcotest.(check int) "distance 1" 1 (Topology.distance f a b)
      end
    done
  done

let test_torus_structure () =
  let t = Topology.torus ~rows:4 ~cols:4 in
  Alcotest.(check int) "qubits" 16 (Topology.num_qubits t);
  (* every torus node has degree 4 *)
  for h = 0 to 15 do
    Alcotest.(check int) "degree 4" 4 (Topology.degree t h)
  done;
  (* wraparound shortens distances vs the grid *)
  let g = Topology.grid ~rows:4 ~cols:4 in
  Alcotest.(check int) "grid corner distance" 6 (Topology.distance g 0 15);
  Alcotest.(check int) "torus corner distance" 2 (Topology.distance t 0 15)

let test_of_edges_rejects_disconnected () =
  Alcotest.(check bool) "raises" true
    (try ignore (Topology.of_edges ~name:"x" ~num_qubits:4 [ (0, 1); (2, 3) ]); false
     with Invalid_argument _ -> true)

let test_of_edges_rejects_self_loop () =
  Alcotest.(check bool) "raises" true
    (try ignore (Topology.of_edges ~name:"x" ~num_qubits:2 [ (0, 0) ]); false
     with Invalid_argument _ -> true)

let test_graph_coords_raise () =
  Alcotest.(check bool) "raises" true
    (try ignore (Topology.coords (Topology.ring 4) 0); false
     with Invalid_argument _ -> true)

let test_graph_bfs_distance_symmetric () =
  let t = Topology.torus ~rows:3 ~cols:5 in
  for a = 0 to 14 do
    for b = 0 to 14 do
      Alcotest.(check int) "symmetric" (Topology.distance t a b)
        (Topology.distance t b a)
    done
  done

(* ----------------------------- Calibration ------------------------- *)

let calib = Ibmq16.calibration ~day:0 ()

let test_calibration_symmetric () =
  List.iter
    (fun (a, b) ->
      Alcotest.(check (float 1e-12)) "symmetric error"
        (Calibration.cnot_error calib a b)
        (Calibration.cnot_error calib b a))
    (Topology.edges Ibmq16.topology)

let test_calibration_rejects_non_edge () =
  Alcotest.(check bool) "raises" true
    (try ignore (Calibration.cnot_error calib 0 2); false
     with Invalid_argument _ -> true)

let test_calibration_probability_ranges () =
  for h = 0 to 15 do
    let r = Calibration.readout_error calib h in
    Alcotest.(check bool) "readout in (0,1)" true (r > 0.0 && r < 1.0)
  done;
  List.iter
    (fun (a, b) ->
      let e = Calibration.cnot_error calib a b in
      Alcotest.(check bool) "cnot err in (0,1)" true (e > 0.0 && e < 1.0))
    (Topology.edges Ibmq16.topology)

let test_calibration_reliability_complement () =
  let a, b = List.hd (Topology.edges Ibmq16.topology) in
  Alcotest.(check (float 1e-12)) "1 - err"
    (1.0 -. Calibration.cnot_error calib a b)
    (Calibration.cnot_reliability calib a b)

let test_swap_is_three_cnots_duration () =
  let a, b = List.hd (Topology.edges Ibmq16.topology) in
  Alcotest.(check int) "3x" (3 * Calibration.cnot_duration calib a b)
    (Calibration.swap_duration calib a b)

let test_t2_slots_conversion () =
  (* 80 us = 1000 slots of 80 ns *)
  let u = Calibration.uniform Ibmq16.topology in
  Alcotest.(check int) "1000 slots" 1000 (Calibration.t2_slots u 0)

let test_worst_t2_above_300_slots () =
  (* §7.2: the worst qubit's coherence window exceeds 300 timeslots *)
  Alcotest.(check bool) "above 300" true (Calibration.worst_t2_slots calib > 300)

let test_uniform_calibration_flat () =
  let u = Calibration.uniform Ibmq16.topology in
  List.iter
    (fun (a, b) ->
      Alcotest.(check (float 1e-12)) "flat cnot" 0.04 (Calibration.cnot_error u a b))
    (Topology.edges Ibmq16.topology);
  Alcotest.(check (float 1e-12)) "flat readout" 0.07 (Calibration.readout_error u 3)

let test_create_rejects_bad_lengths () =
  let n = 16 in
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (Calibration.create ~topology:Ibmq16.topology ~day:0
            ~t1_us:(Array.make 3 1.0) ~t2_us:(Array.make n 1.0)
            ~readout_error:(Array.make n 0.01) ~single_error:(Array.make n 0.001)
            ~cnot_error:(Array.make_matrix n n 0.04)
            ~cnot_duration:(Array.make_matrix n n 4));
       false
     with Invalid_argument _ -> true)

(* ------------------------------ Calib_gen -------------------------- *)

let test_calib_gen_deterministic () =
  let a = Calib_gen.generate ~topology:grid28 ~seed:5 ~day:3 () in
  let b = Calib_gen.generate ~topology:grid28 ~seed:5 ~day:3 () in
  List.iter
    (fun (x, y) ->
      Alcotest.(check (float 1e-15)) "same errors"
        (Calibration.cnot_error a x y) (Calibration.cnot_error b x y))
    (Topology.edges grid28)

let test_calib_gen_day_variation () =
  let a = Calib_gen.generate ~topology:grid28 ~seed:5 ~day:0 () in
  let b = Calib_gen.generate ~topology:grid28 ~seed:5 ~day:1 () in
  let e0, e1 = List.hd (Topology.edges grid28) in
  Alcotest.(check bool) "errors differ across days" true
    (Calibration.cnot_error a e0 e1 <> Calibration.cnot_error b e0 e1)

let test_calib_gen_series_consistent_with_generate () =
  let series = Calib_gen.series ~topology:grid28 ~seed:5 ~days:4 () in
  let direct = Calib_gen.generate ~topology:grid28 ~seed:5 ~day:2 () in
  let e0, e1 = List.hd (Topology.edges grid28) in
  Alcotest.(check (float 1e-15)) "day 2 matches"
    (Calibration.cnot_error series.(2) e0 e1)
    (Calibration.cnot_error direct e0 e1)

let test_calib_gen_statistics_match_paper () =
  (* §2: CNOT error mean ~0.04, readout mean ~0.07, T2 mean ~70us *)
  let series = Calib_gen.series ~topology:grid28 ~seed:Ibmq16.default_seed ~days:30 () in
  let cnot_means = Array.map Calibration.mean_cnot_error series in
  let readout_means = Array.map Calibration.mean_readout_error series in
  let t2_means = Array.map Calibration.mean_t2_us series in
  let cm = Stats.mean cnot_means in
  let rm = Stats.mean readout_means in
  let tm = Stats.mean t2_means in
  Alcotest.(check bool) "cnot mean in [0.02, 0.07]" true (cm > 0.02 && cm < 0.07);
  Alcotest.(check bool) "readout mean in [0.04, 0.11]" true (rm > 0.04 && rm < 0.11);
  Alcotest.(check bool) "t2 mean in [45, 100]" true (tm > 45.0 && tm < 100.0)

let test_calib_gen_spread_magnitude () =
  (* the whole point of noise-adaptivity: error rates vary several-fold *)
  let series = Calib_gen.series ~topology:grid28 ~seed:Ibmq16.default_seed ~days:25 () in
  let all_errs =
    Array.to_list series
    |> List.concat_map (fun c ->
           List.map (fun (a, b) -> Calibration.cnot_error c a b)
             (Topology.edges grid28))
    |> Array.of_list
  in
  let lo, hi = Stats.min_max all_errs in
  Alcotest.(check bool) "at least 4x spread" true (hi /. lo > 4.0);
  Alcotest.(check bool) "at most 60x spread" true (hi /. lo < 60.0)

let test_calib_gen_t2_within_clamp () =
  let c = Calib_gen.generate ~topology:grid28 ~seed:99 ~day:7 () in
  Array.iter
    (fun t2 ->
      Alcotest.(check bool) "clamped" true (t2 >= 25.0 && t2 <= 220.0))
    c.Calibration.t2_us

let test_high_variance_wider_than_default () =
  let spread params =
    let series = Calib_gen.series ~params ~topology:grid28 ~seed:3 ~days:10 () in
    let errs =
      Array.to_list series
      |> List.concat_map (fun c ->
             List.map (fun (a, b) -> Calibration.cnot_error c a b)
               (Topology.edges grid28))
      |> Array.of_list
    in
    let lo, hi = Stats.min_max errs in
    hi /. lo
  in
  Alcotest.(check bool) "high variance spreads more" true
    (spread Calib_gen.high_variance > spread Calib_gen.default)

(* -------------------------------- Paths ---------------------------- *)

let paths = Paths.make calib

let test_best_path_endpoints () =
  let p = Paths.best_path paths 0 15 in
  Alcotest.(check int) "starts at 0" 0 p.(0);
  Alcotest.(check int) "ends at 15" 15 p.(Array.length p - 1)

let test_best_path_steps_adjacent () =
  let p = Paths.best_path paths 0 15 in
  for i = 0 to Array.length p - 2 do
    Alcotest.(check bool) "adjacent steps" true
      (Topology.adjacent Ibmq16.topology p.(i) p.(i + 1))
  done

let test_best_path_at_least_as_reliable_as_one_bend () =
  (* Dijkstra's path must beat or match any one-bend path under the
     single-traversal metric it optimizes *)
  for h1 = 0 to 15 do
    for h2 = 0 to 15 do
      if h1 <> h2 then begin
        let d = Paths.path_log_reliability paths h1 h2 in
        List.iter
          (fun (r : Paths.route) ->
            let single =
              (* single-traversal log reliability of the route's path *)
              let p = r.Paths.path in
              let acc = ref 0.0 in
              for i = 0 to Array.length p - 2 do
                acc := !acc +. log (Calibration.cnot_reliability calib p.(i) p.(i + 1))
              done;
              !acc
            in
            Alcotest.(check bool) "dijkstra >= one-bend" true (d >= single -. 1e-9))
          (Paths.one_bend_routes paths h1 h2)
      end
    done
  done

let test_one_bend_count () =
  (* same row: 1 route; different row and column: 2 routes *)
  Alcotest.(check int) "same row" 1 (List.length (Paths.one_bend_routes paths 0 3));
  Alcotest.(check int) "corner pair" 2 (List.length (Paths.one_bend_routes paths 0 9))

let test_one_bend_paths_valid () =
  for h1 = 0 to 15 do
    for h2 = 0 to 15 do
      if h1 <> h2 then
        List.iter
          (fun (r : Paths.route) ->
            let p = r.Paths.path in
            Alcotest.(check int) "starts" h1 p.(0);
            Alcotest.(check int) "ends" h2 p.(Array.length p - 1);
            Alcotest.(check int) "length = distance + 1"
              (Topology.distance Ibmq16.topology h1 h2 + 1)
              (Array.length p);
            for i = 0 to Array.length p - 2 do
              Alcotest.(check bool) "adjacent" true
                (Topology.adjacent Ibmq16.topology p.(i) p.(i + 1))
            done)
          (Paths.one_bend_routes paths h1 h2)
    done
  done

let test_adjacent_route_is_bare_cnot () =
  let r = Paths.best_one_bend paths 0 1 in
  Alcotest.(check int) "path length 2" 2 (Array.length r.Paths.path);
  Alcotest.(check (float 1e-12)) "reliability = edge reliability"
    (log (Calibration.cnot_reliability calib 0 1))
    r.Paths.log_reliability;
  Alcotest.(check int) "duration = cnot duration"
    (Calibration.cnot_duration calib 0 1) r.Paths.duration

let test_route_duration_formula () =
  (* duration = 2 * sum(swap hops) + final cnot (§4.2) *)
  let r = Paths.route_via_path calib [| 0; 1; 2 |] in
  let expected =
    (2 * Calibration.swap_duration calib 0 1) + Calibration.cnot_duration calib 1 2
  in
  Alcotest.(check int) "two-hop duration" expected r.Paths.duration

let test_route_reliability_formula () =
  (* reliability = (1-e01)^6 * (1-e12): worked example of §3.1 *)
  let r = Paths.route_via_path calib [| 0; 1; 2 |] in
  let expected =
    (6.0 *. log (Calibration.cnot_reliability calib 0 1))
    +. log (Calibration.cnot_reliability calib 1 2)
  in
  Alcotest.(check (float 1e-12)) "log reliability" expected r.Paths.log_reliability

let test_route_via_path_rejects_short () =
  Alcotest.(check bool) "raises" true
    (try ignore (Paths.route_via_path calib [| 3 |]); false
     with Invalid_argument _ -> true)

let test_route_via_path_rejects_non_adjacent () =
  Alcotest.(check bool) "raises" true
    (try ignore (Paths.route_via_path calib [| 0; 5 |]); false
     with Invalid_argument _ -> true)

let test_best_one_bend_picks_max () =
  for h1 = 0 to 15 do
    for h2 = 0 to 15 do
      if h1 <> h2 then begin
        let best = Paths.best_one_bend paths h1 h2 in
        List.iter
          (fun (r : Paths.route) ->
            Alcotest.(check bool) "best is max" true
              (best.Paths.log_reliability >= r.Paths.log_reliability -. 1e-12))
          (Paths.one_bend_routes paths h1 h2)
      end
    done
  done

(* Above Paths' size threshold the all-pairs solve switches to a binary
   heap; the claim is bit-identical tables. Check an 80-qubit quarantined
   grid against a test-local O(n²) scan with the same (distance, index)
   tie-break and strict-< relaxation. *)
let test_heap_dijkstra_matches_scan_reference () =
  let topo = Topology.grid ~rows:8 ~cols:10 in
  let n = Topology.num_qubits topo in
  let base = Calib_gen.generate ~topology:topo ~seed:21 ~day:0 () in
  let qubit_ok = Array.make n true in
  qubit_ok.(7) <- false;
  qubit_ok.(33) <- false;
  qubit_ok.(54) <- false;
  let link_ok =
    Array.init n (fun u -> Array.init n (fun v -> Topology.adjacent topo u v))
  in
  link_ok.(12).(13) <- false;
  link_ok.(13).(12) <- false;
  let calib = Calibration.with_quarantine base ~qubit_ok ~link_ok in
  let paths = Paths.make calib in
  (* reference solve *)
  let neighbors u =
    if not (Calibration.qubit_live calib u) then []
    else
      List.filter (fun v -> Calibration.link_live calib u v)
        (Topology.neighbors topo u)
  in
  let scan src =
    let dist = Array.make n infinity and prev = Array.make n (-1) in
    let visited = Array.make n false in
    dist.(src) <- 0.0;
    for _ = 1 to n do
      let u = ref (-1) and best = ref infinity in
      for v = 0 to n - 1 do
        if (not visited.(v)) && dist.(v) < !best then begin
          u := v;
          best := dist.(v)
        end
      done;
      if !u >= 0 then begin
        visited.(!u) <- true;
        List.iter
          (fun v ->
            let d =
              dist.(!u) -. log (Calibration.cnot_reliability calib !u v)
            in
            if d < dist.(v) then begin
              dist.(v) <- d;
              prev.(v) <- !u
            end)
          (neighbors !u)
      end
    done;
    (dist, prev)
  in
  for src = 0 to n - 1 do
    let dist, prev =
      if Calibration.qubit_live calib src then scan src
      else (Array.make n infinity, Array.make n (-1))
    in
    for dst = 0 to n - 1 do
      Alcotest.(check bool)
        (Printf.sprintf "reachable %d->%d" src dst)
        (dist.(dst) < infinity)
        (Paths.reachable paths src dst);
      if dist.(dst) < infinity then
        (* bit-identical, hence the zero tolerance *)
        Alcotest.(check (float 0.0))
          (Printf.sprintf "log-reliability %d->%d" src dst)
          (-.dist.(dst))
          (Paths.path_log_reliability paths src dst);
      if src <> dst && dist.(dst) < infinity then begin
        let rec collect acc v =
          if v = src then src :: acc else collect (v :: acc) prev.(v)
        in
        Alcotest.(check (list int))
          (Printf.sprintf "best path %d->%d" src dst)
          (collect [] dst)
          (Array.to_list (Paths.best_path paths src dst))
      end
    done
  done

let suite =
  [
    ("grid size", `Quick, test_grid_size);
    ("coords/index inverse", `Quick, test_coords_index_inverse);
    ("adjacency", `Quick, test_adjacency);
    ("neighbors", `Quick, test_neighbors);
    ("manhattan distance", `Quick, test_distance);
    ("degree", `Quick, test_degree);
    ("grid rejects bad dims", `Quick, test_grid_rejects_bad_dims);
    ("coords out of range", `Quick, test_out_of_range_qubit);
    ("ring structure", `Quick, test_ring_structure);
    ("fully connected structure", `Quick, test_fully_connected_structure);
    ("torus structure", `Quick, test_torus_structure);
    ("of_edges rejects disconnected", `Quick, test_of_edges_rejects_disconnected);
    ("of_edges rejects self-loop", `Quick, test_of_edges_rejects_self_loop);
    ("graph coords raise", `Quick, test_graph_coords_raise);
    ("graph distance symmetric", `Quick, test_graph_bfs_distance_symmetric);
    ("calibration symmetric", `Quick, test_calibration_symmetric);
    ("calibration rejects non-edge", `Quick, test_calibration_rejects_non_edge);
    ("calibration probability ranges", `Quick, test_calibration_probability_ranges);
    ("reliability = 1 - error", `Quick, test_calibration_reliability_complement);
    ("swap duration = 3 cnots", `Quick, test_swap_is_three_cnots_duration);
    ("t2 slots conversion", `Quick, test_t2_slots_conversion);
    ("worst t2 above 300 slots", `Quick, test_worst_t2_above_300_slots);
    ("uniform calibration is flat", `Quick, test_uniform_calibration_flat);
    ("create rejects bad lengths", `Quick, test_create_rejects_bad_lengths);
    ("calib_gen deterministic", `Quick, test_calib_gen_deterministic);
    ("calib_gen varies by day", `Quick, test_calib_gen_day_variation);
    ("calib_gen series matches generate", `Quick, test_calib_gen_series_consistent_with_generate);
    ("calib_gen statistics match paper", `Quick, test_calib_gen_statistics_match_paper);
    ("calib_gen spread magnitude", `Quick, test_calib_gen_spread_magnitude);
    ("calib_gen t2 clamped", `Quick, test_calib_gen_t2_within_clamp);
    ("high variance spreads wider", `Quick, test_high_variance_wider_than_default);
    ("best path endpoints", `Quick, test_best_path_endpoints);
    ("best path steps adjacent", `Quick, test_best_path_steps_adjacent);
    ("dijkstra beats one-bend", `Quick, test_best_path_at_least_as_reliable_as_one_bend);
    ("one-bend route count", `Quick, test_one_bend_count);
    ("one-bend paths valid", `Quick, test_one_bend_paths_valid);
    ("adjacent route is bare cnot", `Quick, test_adjacent_route_is_bare_cnot);
    ("route duration formula", `Quick, test_route_duration_formula);
    ("route reliability formula", `Quick, test_route_reliability_formula);
    ("route rejects short path", `Quick, test_route_via_path_rejects_short);
    ("route rejects non-adjacent path", `Quick, test_route_via_path_rejects_non_adjacent);
    ("best one-bend picks max", `Quick, test_best_one_bend_picks_max);
    ("heap dijkstra matches scan", `Quick, test_heap_dijkstra_matches_scan_reference);
  ]
