(* Property-based tests (qcheck) on core invariants. *)

module Q = QCheck
module Gate = Nisq_circuit.Gate
module Circuit = Nisq_circuit.Circuit
module Dag = Nisq_circuit.Dag
module Qasm = Nisq_circuit.Qasm
module Topology = Nisq_device.Topology
module Calibration = Nisq_device.Calibration
module Ibmq16 = Nisq_device.Ibmq16
module Paths = Nisq_device.Paths
module Placement = Nisq_solver.Placement
module Config = Nisq_compiler.Config
module Layout = Nisq_compiler.Layout
module Route = Nisq_compiler.Route
module Schedule = Nisq_compiler.Schedule
module Compile = Nisq_compiler.Compile
module Greedy = Nisq_compiler.Greedy
module Synth = Nisq_bench.Synth
module Experiments = Nisq_bench.Experiments
module Runner = Nisq_sim.Runner

let calib = Ibmq16.calibration ~day:0 ()
let paths = Paths.make calib

(* Arbitrary circuit described by (qubits, gates, seed). *)
let circuit_arb =
  let gen =
    Q.Gen.map3
      (fun qubits gates seed -> (2 + qubits, 1 + gates, seed))
      (Q.Gen.int_bound 6) (Q.Gen.int_bound 60) (Q.Gen.int_bound 10_000)
  in
  Q.make
    ~print:(fun (q, g, s) -> Printf.sprintf "circuit(q=%d,g=%d,seed=%d)" q g s)
    gen

let build (q, g, s) = Synth.random_circuit ~qubits:q ~gates:g ~seed:s ()

let prop_dag_edges_go_forward =
  Q.Test.make ~name:"dag edges respect program order" ~count:100 circuit_arb
    (fun spec ->
      let c = build spec in
      let d = Dag.of_circuit c in
      let ok = ref true in
      for i = 0 to Dag.num_gates d - 1 do
        List.iter (fun p -> if p >= i then ok := false) (Dag.preds d i)
      done;
      !ok)

let prop_dag_layers_partition =
  Q.Test.make ~name:"dag layers partition the gates" ~count:100 circuit_arb
    (fun spec ->
      let c = build spec in
      let d = Dag.of_circuit c in
      let seen = Hashtbl.create 64 in
      List.iter
        (fun layer -> List.iter (fun i -> Hashtbl.replace seen i ()) layer)
        (Dag.layers d);
      Hashtbl.length seen = Circuit.length c)

let prop_qasm_roundtrip =
  Q.Test.make ~name:"qasm roundtrip preserves gate kinds" ~count:100 circuit_arb
    (fun spec ->
      let c = build spec in
      let c' = Qasm.roundtrip c in
      Circuit.length c = Circuit.length c'
      && Array.for_all2
           (fun (a : Gate.t) (b : Gate.t) -> Gate.equal_kind a.kind b.kind)
           c.Circuit.gates c'.Circuit.gates)

let prop_interaction_weights_total =
  Q.Test.make ~name:"interaction weights sum to 2q gate count" ~count:100
    circuit_arb (fun spec ->
      let c = build spec in
      let total =
        List.fold_left (fun acc (_, w) -> acc + w) 0 (Circuit.interaction_weights c)
      in
      total = Circuit.two_qubit_count c)

let prop_greedy_layout_injective =
  Q.Test.make ~name:"greedy layouts are injective placements" ~count:60
    circuit_arb (fun spec ->
      let c = build spec in
      List.for_all
        (fun mk ->
          let layout = mk paths c in
          let hw = List.init c.Circuit.num_qubits (Layout.hw_of layout) in
          List.length (List.sort_uniq compare hw) = c.Circuit.num_qubits)
        [ Greedy.vertex_first; Greedy.edge_first ])

let prop_schedule_no_overlap =
  Q.Test.make ~name:"schedule has no spatial-temporal overlap" ~count:40
    circuit_arb (fun spec ->
      let c = build spec in
      let layout = Greedy.edge_first paths c in
      let dag = Dag.of_circuit c in
      let plan =
        Route.plan paths ~policy:Config.One_bend
          ~criterion:Route.Max_reliability ~layout c
      in
      let sched = Schedule.compute dag ~circuit:c plan in
      let ok = ref true in
      let n = Array.length plan in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          let a = sched.Schedule.entries.(i)
          and b = sched.Schedule.entries.(j) in
          let share =
            Array.exists
              (fun q -> Array.exists (fun r -> q = r) b.Schedule.reserve)
              a.Schedule.reserve
          in
          let overlap =
            a.Schedule.duration > 0 && b.Schedule.duration > 0
            && a.Schedule.start < b.Schedule.start + b.Schedule.duration
            && b.Schedule.start < a.Schedule.start + a.Schedule.duration
          in
          if share && overlap then ok := false
        done
      done;
      !ok)

let prop_schedule_deps =
  Q.Test.make ~name:"schedule respects dependencies" ~count:40 circuit_arb
    (fun spec ->
      let c = build spec in
      let layout = Greedy.vertex_first paths c in
      let dag = Dag.of_circuit c in
      let plan =
        Route.plan paths ~policy:Config.Best_path
          ~criterion:Route.Max_reliability ~layout c
      in
      let sched = Schedule.compute dag ~circuit:c plan in
      let ok = ref true in
      Array.iteri
        (fun i (e : Schedule.entry) ->
          List.iter
            (fun p ->
              let pe = sched.Schedule.entries.(p) in
              if e.Schedule.start < pe.Schedule.start + pe.Schedule.duration then
                ok := false)
            (Dag.preds dag i))
        sched.Schedule.entries;
      !ok)

(* Semantics preservation: the compiled program's noiseless answer
   distribution matches the source's, for every mapping method. *)
let perfect =
  Calibration.uniform ~cnot_error:0.0 ~readout_error:0.0 ~single_error:0.0
    ~t2_us:1e12 Ibmq16.topology

let distribution_of config circuit =
  let r = Compile.run ~config ~calib:perfect circuit in
  Runner.ideal_distribution (Experiments.runner_of r)

let distributions_close a b =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (k, p) -> Hashtbl.replace tbl k p) a;
  List.for_all
    (fun (k, p) ->
      let q = Option.value ~default:0.0 (Hashtbl.find_opt tbl k) in
      Float.abs (p -. q) < 1e-6)
    b
  && List.length a = List.length b

let small_circuit_arb =
  let gen =
    Q.Gen.map3
      (fun qubits gates seed -> (2 + qubits, 1 + gates, seed))
      (Q.Gen.int_bound 3) (Q.Gen.int_bound 25) (Q.Gen.int_bound 10_000)
  in
  Q.make
    ~print:(fun (q, g, s) -> Printf.sprintf "circuit(q=%d,g=%d,seed=%d)" q g s)
    gen

let prop_compilation_preserves_distribution =
  Q.Test.make
    ~name:"compilation preserves the answer distribution (all methods)"
    ~count:25 small_circuit_arb (fun spec ->
      let c = build spec in
      let reference = distribution_of (Config.make Config.Qiskit) c in
      List.for_all
        (fun config -> distributions_close reference (distribution_of config c))
        [ Config.make Config.T_smt;
          Config.make (Config.R_smt_star 0.5);
          Config.make Config.Greedy_v;
          Config.make Config.Greedy_e ])

let prop_move_and_stay_preserves_distribution =
  Q.Test.make
    ~name:"move-and-stay routing preserves the answer distribution"
    ~count:25 small_circuit_arb (fun spec ->
      let c = build spec in
      let reference = distribution_of (Config.make Config.Qiskit) c in
      List.for_all
        (fun method_ ->
          distributions_close reference
            (distribution_of
               (Config.make ~movement:Config.Move_and_stay method_)
               c))
        [ Config.Qiskit; Config.Greedy_e ])

let prop_scaffold_roundtrip_via_qasm =
  (* a circuit emitted as QASM and re-read computes the same distribution *)
  Q.Test.make ~name:"qasm of compiled output parses to same gate count"
    ~count:25 small_circuit_arb (fun spec ->
      let c = build spec in
      let r = Compile.run ~config:(Config.make Config.Greedy_e) ~calib c in
      let qasm = Compile.to_qasm r in
      let parsed = Nisq_circuit.Qasm.of_string_exn qasm in
      Circuit.gate_count parsed = Circuit.gate_count r.Compile.hw_circuit)

let prop_esp_decreases_with_more_gates =
  Q.Test.make ~name:"ESP never increases when a circuit grows" ~count:40
    small_circuit_arb (fun (q, g, s) ->
      let short = Synth.random_circuit ~measure:false ~qubits:q ~gates:g ~seed:s () in
      let long = Synth.random_circuit ~measure:false ~qubits:q ~gates:(g * 2) ~seed:s () in
      (* Qiskit's identity layout and noise-blind routing make the long
         circuit's physical prefix identical to the short circuit's, so
         ESP (a product of per-gate reliabilities <= 1) can only drop. *)
      let esp c =
        (Compile.run ~config:(Config.make Config.Qiskit) ~calib c).Compile.esp
      in
      esp long <= esp short +. 1e-9)

let prop_placement_solver_optimal =
  let spec_arb =
    Q.make
      ~print:(fun (i, s, p, seed) ->
        Printf.sprintf "placement(items=%d,slots=%d,pairs=%d,seed=%d)" i s p seed)
      Q.Gen.(
        map
          (fun (i, extra, p, seed) -> (2 + i, 2 + i + extra, p, seed))
          (quad (int_bound 2) (int_bound 2) (int_bound 3) (int_bound 1000)))
  in
  Q.Test.make ~name:"placement solver matches brute force" ~count:50 spec_arb
    (fun (items, slots, npairs, seed) ->
      let rng = Nisq_util.Rng.create seed in
      let unary =
        Array.init items (fun _ ->
            Array.init slots (fun _ -> -.Nisq_util.Rng.float rng 2.0))
      in
      let pairwise =
        List.init npairs (fun _ ->
            let i = Nisq_util.Rng.int rng (items - 1) in
            let j = i + 1 + Nisq_util.Rng.int rng (items - i - 1) in
            ( i, j,
              Array.init slots (fun _ ->
                  Array.init slots (fun _ -> -.Nisq_util.Rng.float rng 2.0)) ))
      in
      let p = { Placement.num_items = items; num_slots = slots; unary; pairwise } in
      let s = Placement.solve p in
      let _, best = Placement.brute_force p in
      Float.abs (s.Placement.objective -. best) < 1e-9)

let prop_route_reliability_never_positive =
  let pair_arb =
    Q.make
      ~print:(fun (a, b) -> Printf.sprintf "(%d,%d)" a b)
      Q.Gen.(
        map
          (fun (a, b) -> (a mod 16, b mod 16))
          (pair (int_bound 15) (int_bound 15)))
  in
  Q.Test.make ~name:"route log-reliabilities are non-positive" ~count:100
    pair_arb (fun (a, b) ->
      a = b
      || List.for_all
           (fun (r : Paths.route) -> r.Paths.log_reliability <= 0.0)
           (Paths.one_bend_routes paths a b))

let prop_success_rate_within_bounds =
  Q.Test.make ~name:"success rate lies in [0,1]" ~count:10 small_circuit_arb
    (fun spec ->
      let c = build spec in
      let r = Compile.run ~config:(Config.make Config.Greedy_e) ~calib c in
      let s =
        Runner.success_rate ~trials:64 ~seed:9 (Experiments.runner_of r)
      in
      s >= 0.0 && s <= 1.0)

let prop_mix_chunk_seeds_never_collide =
  (* the parallel engine's chunk streams: mix seed i <> mix seed j for
     i <> j, over any base seed *)
  Q.Test.make ~name:"chunk-seed derivation is collision-free (Rng.mix)"
    ~count:200
    Q.(pair int (pair (int_bound 511) (int_bound 511)))
    (fun (seed, (i, j)) ->
      i = j || Nisq_util.Rng.mix seed i <> Nisq_util.Rng.mix seed j)

let prop_parallel_rate_matches_sequential =
  (* the engine's determinism contract, on arbitrary compiled circuits *)
  let pool = Nisq_util.Pool.create ~size:2 () in
  at_exit (fun () -> Nisq_util.Pool.shutdown pool);
  Q.Test.make ~name:"pooled success rate equals sequential bit-for-bit"
    ~count:10 small_circuit_arb (fun spec ->
      let c = build spec in
      let r = Compile.run ~config:(Config.make Config.Greedy_e) ~calib c in
      let runner = Experiments.runner_of r in
      Runner.success_rate ~trials:300 ~pool ~seed:17 runner
      = Runner.success_rate_seq ~trials:300 ~seed:17 runner)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_dag_edges_go_forward;
      prop_dag_layers_partition;
      prop_qasm_roundtrip;
      prop_interaction_weights_total;
      prop_greedy_layout_injective;
      prop_schedule_no_overlap;
      prop_schedule_deps;
      prop_compilation_preserves_distribution;
      prop_move_and_stay_preserves_distribution;
      prop_scaffold_roundtrip_via_qasm;
      prop_esp_decreases_with_more_gates;
      prop_placement_solver_optimal;
      prop_route_reliability_never_positive;
      prop_success_rate_within_bounds;
      prop_mix_chunk_seeds_never_collide;
      prop_parallel_rate_matches_sequential;
    ]
