(* Tests for Nisq_util: Rng, Stats, Table. *)

module Rng = Nisq_util.Rng
module Stats = Nisq_util.Stats
module Table = Nisq_util.Table
module Pool = Nisq_util.Pool

let check_float = Alcotest.(check (float 1e-9))

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different seeds differ" false
    (Rng.bits64 a = Rng.bits64 b)

let test_rng_copy_independence () =
  let a = Rng.create 7 in
  let _ = Rng.bits64 a in
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a)
    (Rng.bits64 b);
  (* advancing one does not advance the other *)
  let _ = Rng.bits64 a in
  let va = Rng.bits64 a and vb = Rng.bits64 b in
  Alcotest.(check bool) "streams diverge after copy" false (va = vb)

let test_rng_int_range () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_int_rejects_nonpositive () =
  let r = Rng.create 3 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_rng_float_range () =
  let r = Rng.create 4 in
  for _ = 1 to 1000 do
    let v = Rng.float r 2.5 in
    Alcotest.(check bool) "in [0, 2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_rng_uniform_bounds () =
  let r = Rng.create 5 in
  for _ = 1 to 200 do
    let v = Rng.uniform r ~lo:(-3.0) ~hi:(-1.0) in
    Alcotest.(check bool) "in [-3, -1)" true (v >= -3.0 && v < -1.0)
  done

let test_rng_gaussian_moments () =
  let r = Rng.create 6 in
  let n = 20000 in
  let xs = Array.init n (fun _ -> Rng.gaussian r ~mean:5.0 ~sigma:2.0) in
  Alcotest.(check bool) "mean near 5" true (Float.abs (Stats.mean xs -. 5.0) < 0.1);
  Alcotest.(check bool) "stddev near 2" true (Float.abs (Stats.stddev xs -. 2.0) < 0.1)

let test_rng_lognormal_positive () =
  let r = Rng.create 8 in
  for _ = 1 to 500 do
    Alcotest.(check bool) "positive" true (Rng.lognormal r ~mu:(-3.0) ~sigma:1.0 > 0.0)
  done

let test_rng_bool_balance () =
  let r = Rng.create 9 in
  let trues = ref 0 in
  for _ = 1 to 10000 do
    if Rng.bool r then incr trues
  done;
  Alcotest.(check bool) "roughly balanced" true (!trues > 4700 && !trues < 5300)

let test_rng_shuffle_permutation () =
  let r = Rng.create 10 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 50 Fun.id) sorted

let test_rng_split_streams_differ () =
  let a = Rng.create 11 in
  let b = Rng.split a in
  Alcotest.(check bool) "split streams differ" false (Rng.bits64 a = Rng.bits64 b)

let test_rng_choose () =
  let r = Rng.create 12 in
  let a = [| "x"; "y"; "z" |] in
  for _ = 1 to 50 do
    let v = Rng.choose r a in
    Alcotest.(check bool) "member" true (Array.exists (fun s -> s = v) a)
  done

let test_rng_mix_distinct_streams () =
  (* chunk seeds must not collide across a realistic index range *)
  let seen = Hashtbl.create 4096 in
  for i = 0 to 2047 do
    let v = Rng.mix 424242 i in
    Alcotest.(check bool) (Printf.sprintf "no collision at %d" i) false
      (Hashtbl.mem seen v);
    Hashtbl.add seen v ()
  done

let test_rng_mix_deterministic () =
  Alcotest.(check int) "same inputs same seed" (Rng.mix 7 13) (Rng.mix 7 13);
  Alcotest.(check bool) "seed sensitivity" false (Rng.mix 7 13 = Rng.mix 8 13)

let test_pool_parallel_chunks_order () =
  let pool = Pool.create ~size:4 () in
  let got = Pool.parallel_chunks pool ~chunks:37 (fun i -> i * i) in
  Alcotest.(check (list int)) "index order" (List.init 37 (fun i -> i * i)) got;
  Pool.shutdown pool

let test_pool_sequential_fallback () =
  let pool = Pool.create ~size:0 () in
  Alcotest.(check int) "no workers" 0 (Pool.size pool);
  Alcotest.(check (list int)) "still computes"
    (List.init 5 Fun.id)
    (Pool.parallel_chunks pool ~chunks:5 Fun.id);
  Pool.shutdown pool

let test_pool_rejects_nonpositive_chunks () =
  let pool = Pool.create ~size:0 () in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Pool.parallel_chunks pool ~chunks:0 Fun.id);
       false
     with Invalid_argument _ -> true)

let test_pool_propagates_exceptions () =
  let pool = Pool.create ~size:2 () in
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (Pool.parallel_chunks pool ~chunks:8 (fun i ->
              if i = 5 then failwith "boom" else i));
       false
     with Failure _ -> true);
  Pool.shutdown pool

let test_pool_reusable_across_calls () =
  let pool = Pool.create ~size:2 () in
  for round = 1 to 5 do
    let total =
      List.fold_left ( + ) 0
        (Pool.parallel_chunks pool ~chunks:16 (fun i -> (round * 100) + i))
    in
    Alcotest.(check int) "sum" ((round * 1600) + 120) total
  done;
  Pool.shutdown pool;
  (* post-shutdown calls degrade to sequential, not deadlock *)
  Alcotest.(check (list int)) "after shutdown" [ 0; 1; 2 ]
    (Pool.parallel_chunks pool ~chunks:3 Fun.id)

let test_stats_mean () = check_float "mean" 2.0 (Stats.mean [| 1.0; 2.0; 3.0 |])

let test_stats_mean_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.mean: empty array")
    (fun () -> ignore (Stats.mean [||]))

let test_stats_geomean () =
  check_float "geomean of 1,4" 2.0 (Stats.geomean [| 1.0; 4.0 |])

let test_stats_geomean_zero_clamped () =
  Alcotest.(check bool) "clamped, not zero" true (Stats.geomean [| 0.0; 4.0 |] > 0.0)

let test_stats_stddev () =
  check_float "stddev" 2.0 (Stats.stddev [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |])

let test_stats_min_max () =
  let lo, hi = Stats.min_max [| 3.0; -1.0; 7.5 |] in
  check_float "min" (-1.0) lo;
  check_float "max" 7.5 hi

let test_stats_median_odd () =
  check_float "median odd" 3.0 (Stats.median [| 5.0; 1.0; 3.0 |])

let test_stats_median_even () =
  check_float "median even" 2.5 (Stats.median [| 4.0; 1.0; 2.0; 3.0 |])

let test_stats_percentile () =
  let xs = Array.init 100 (fun i -> Float.of_int (i + 1)) in
  check_float "p50" 50.0 (Stats.percentile xs 50.0);
  check_float "p100" 100.0 (Stats.percentile xs 100.0)

let test_stats_ratio_summary () =
  let geo, mx = Stats.ratio_summary ~num:[| 2.0; 8.0 |] ~den:[| 1.0; 2.0 |] in
  check_float "geomean of 2x and 4x" (sqrt 8.0) geo;
  check_float "max" 4.0 mx

let test_table_alignment () =
  let s =
    Table.render
      ~align:[ Table.Left; Table.Right ]
      ~header:[ "a"; "num" ]
      ~rows:[ [ "xx"; "1" ]; [ "y"; "22" ] ]
      ()
  in
  Alcotest.(check bool) "right-aligned column" true
    (String.length s > 0
    && List.exists
         (fun line -> line = "xx    1" || line = "xx     1")
         (String.split_on_char '\n' s))

let test_table_pads_short_rows () =
  let s = Table.render ~header:[ "a"; "b" ] ~rows:[ [ "only" ] ] () in
  Alcotest.(check bool) "renders without exception" true (String.length s > 0)

let test_table_fmt () =
  Alcotest.(check string) "fmt_float" "1.500" (Table.fmt_float 1.5);
  Alcotest.(check string) "fmt_pct" "42.3%" (Table.fmt_pct 0.423)

let suite =
  [
    ("rng determinism", `Quick, test_rng_determinism);
    ("rng seed sensitivity", `Quick, test_rng_seed_sensitivity);
    ("rng copy independence", `Quick, test_rng_copy_independence);
    ("rng int range", `Quick, test_rng_int_range);
    ("rng int rejects non-positive", `Quick, test_rng_int_rejects_nonpositive);
    ("rng float range", `Quick, test_rng_float_range);
    ("rng uniform bounds", `Quick, test_rng_uniform_bounds);
    ("rng gaussian moments", `Quick, test_rng_gaussian_moments);
    ("rng lognormal positive", `Quick, test_rng_lognormal_positive);
    ("rng bool balance", `Quick, test_rng_bool_balance);
    ("rng shuffle is a permutation", `Quick, test_rng_shuffle_permutation);
    ("rng split streams differ", `Quick, test_rng_split_streams_differ);
    ("rng choose picks members", `Quick, test_rng_choose);
    ("rng mix streams distinct", `Quick, test_rng_mix_distinct_streams);
    ("rng mix deterministic", `Quick, test_rng_mix_deterministic);
    ("pool preserves chunk order", `Quick, test_pool_parallel_chunks_order);
    ("pool sequential fallback", `Quick, test_pool_sequential_fallback);
    ("pool rejects non-positive chunks", `Quick, test_pool_rejects_nonpositive_chunks);
    ("pool propagates exceptions", `Quick, test_pool_propagates_exceptions);
    ("pool reusable across calls", `Quick, test_pool_reusable_across_calls);
    ("stats mean", `Quick, test_stats_mean);
    ("stats mean empty", `Quick, test_stats_mean_empty);
    ("stats geomean", `Quick, test_stats_geomean);
    ("stats geomean clamps zeros", `Quick, test_stats_geomean_zero_clamped);
    ("stats stddev", `Quick, test_stats_stddev);
    ("stats min_max", `Quick, test_stats_min_max);
    ("stats median odd", `Quick, test_stats_median_odd);
    ("stats median even", `Quick, test_stats_median_even);
    ("stats percentile", `Quick, test_stats_percentile);
    ("stats ratio summary", `Quick, test_stats_ratio_summary);
    ("table alignment", `Quick, test_table_alignment);
    ("table pads short rows", `Quick, test_table_pads_short_rows);
    ("table formatting helpers", `Quick, test_table_fmt);
  ]
