(* Tests for the stabilizer (Clifford tableau) fast path.

   The contract under test is DESIGN.md §14: routing a noisy trial to
   the tableau backend must be invisible in the results — success rates
   and distributions are bit-for-bit identical with the fast path on or
   off, at any pool size — and a job containing any non-Clifford
   unitary must route every trial to the dense backend. *)

module Gate = Nisq_circuit.Gate
module State = Nisq_sim.State
module Stabilizer = Nisq_sim.Stabilizer
module Runner = Nisq_sim.Runner
module Calibration = Nisq_device.Calibration
module Ibmq16 = Nisq_device.Ibmq16
module Topology = Nisq_device.Topology
module Rng = Nisq_util.Rng
module Pool = Nisq_util.Pool
module Scratch = Nisq_util.Scratch
module Metrics = Nisq_obs.Metrics

let check_float = Alcotest.(check (float 1e-9))

let with_stabilizer v f =
  Runner.set_stabilizer_enabled v;
  Fun.protect ~finally:(fun () -> Runner.set_stabilizer_enabled None) f

(* ---------------------- tableau unit behaviour --------------------- *)

let test_clifford_classifier () =
  List.iter
    (fun k -> Alcotest.(check bool) "clifford" true (Stabilizer.is_clifford k))
    [ Gate.H; Gate.X; Gate.Y; Gate.Z; Gate.S; Gate.Sdg; Gate.Cnot; Gate.Swap ];
  List.iter
    (fun k ->
      Alcotest.(check bool) "not clifford" false (Stabilizer.is_clifford k))
    [
      Gate.T; Gate.Tdg; Gate.Rz 0.1; Gate.Rx 0.1; Gate.Ry 0.1; Gate.Measure;
      Gate.Barrier;
    ]

(* A random Clifford word over [n] qubits, identically applied to both
   backends. *)
let random_clifford_step rng n st tab =
  let kind =
    match Rng.int rng 8 with
    | 0 -> Gate.H
    | 1 -> Gate.X
    | 2 -> Gate.Y
    | 3 -> Gate.Z
    | 4 -> Gate.S
    | 5 -> Gate.Sdg
    | 6 -> Gate.Cnot
    | _ -> Gate.Swap
  in
  let qubits =
    match kind with
    | Gate.Cnot | Gate.Swap ->
        let a = Rng.int rng n in
        let b = (a + 1 + Rng.int rng (n - 1)) mod n in
        [| a; b |]
    | _ -> [| Rng.int rng n |]
  in
  State.apply_gate st kind qubits;
  Stabilizer.apply_gate tab kind qubits

let test_tableau_matches_dense_probs () =
  let n = 5 in
  let rng = Rng.create 2024 in
  for _trial = 1 to 50 do
    let st = State.create n in
    let tab = Stabilizer.create n in
    for _step = 1 to 30 do
      random_clifford_step rng n st tab
    done;
    for q = 0 to n - 1 do
      (* stabilizer probabilities are exactly {0, 1/2, 1}; the dense
         amplitudes of the same state agree to rounding *)
      check_float "prob_one agrees" (State.prob_one st q)
        (Stabilizer.prob_one tab q)
    done
  done

let test_measure_stream_parity () =
  (* Same circuit, same seed: outcomes agree AND both backends consume
     exactly one draw per measurement, so the streams stay aligned. *)
  let n = 4 in
  let gen = Rng.create 7 in
  for _trial = 1 to 40 do
    let st = State.create n in
    let tab = Stabilizer.create n in
    for _step = 1 to 20 do
      random_clifford_step gen n st tab
    done;
    let seed = Rng.int gen 1_000_000 in
    let rng_dense = Rng.create seed and rng_tab = Rng.create seed in
    for q = 0 to n - 1 do
      let a = State.measure st rng_dense q in
      let b = Stabilizer.measure tab rng_tab q in
      Alcotest.(check bool) "same outcome" a b
    done;
    (* draw-count parity: the next float must match bit-for-bit *)
    Alcotest.(check (float 0.0)) "streams aligned"
      (Rng.float rng_dense 1.0) (Rng.float rng_tab 1.0)
  done

let test_collapse_one_projects () =
  (* Bell pair: collapsing one side onto |1> must drag the other along,
     exactly as the dense projector does. *)
  let st = State.create 2 in
  let tab = Stabilizer.create 2 in
  List.iter
    (fun (k, qs) ->
      State.apply_gate st k qs;
      Stabilizer.apply_gate tab k qs)
    [ (Gate.H, [| 0 |]); (Gate.Cnot, [| 0; 1 |]) ];
  Stabilizer.collapse_one tab 0;
  State.collapse st 0 true;
  check_float "q0 is 1" (State.prob_one st 0) (Stabilizer.prob_one tab 0);
  check_float "q1 followed" (State.prob_one st 1) (Stabilizer.prob_one tab 1);
  check_float "exactly one" 1.0 (Stabilizer.prob_one tab 1);
  (* collapsing an already-deterministic qubit is a no-op *)
  Stabilizer.collapse_one tab 1;
  check_float "still one" 1.0 (Stabilizer.prob_one tab 1)

let test_tableau_reset () =
  let tab = Stabilizer.create 3 in
  Stabilizer.apply_gate tab Gate.H [| 0 |];
  Stabilizer.apply_gate tab Gate.Cnot [| 0; 2 |];
  Stabilizer.reset tab;
  for q = 0 to 2 do
    check_float "back to |0>" 0.0 (Stabilizer.prob_one tab q)
  done

let test_tableau_bounds () =
  Alcotest.(check bool) "raises on 0" true
    (try ignore (Stabilizer.create 0); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "raises on 25" true
    (try ignore (Stabilizer.create 25); false with Invalid_argument _ -> true);
  let tab = Stabilizer.create 2 in
  Alcotest.(check bool) "rejects T" true
    (try Stabilizer.apply_gate tab Gate.T [| 0 |]; false
     with Invalid_argument _ -> true)

(* ------------------- switch and per-job capability ------------------ *)

let test_stabilizer_switch () =
  Alcotest.(check bool) "default on" true (Runner.stabilizer_enabled ());
  with_stabilizer (Some false) (fun () ->
      Alcotest.(check bool) "forced off" false (Runner.stabilizer_enabled ()));
  with_stabilizer (Some true) (fun () ->
      Alcotest.(check bool) "forced on" true (Runner.stabilizer_enabled ()));
  Alcotest.(check bool) "restored" true (Runner.stabilizer_enabled ())

let calib = Ibmq16.calibration ~day:0 ()

let clifford_job () =
  Runner.prepare ~calib
    ~ops:
      [|
        { Runner.kind = Gate.H; qubits = [| 0 |]; start = 0; duration = 1 };
        { Runner.kind = Gate.Cnot; qubits = [| 0; 1 |]; start = 1; duration = 4 };
        { Runner.kind = Gate.Cnot; qubits = [| 0; 1 |]; start = 5; duration = 4 };
        { Runner.kind = Gate.H; qubits = [| 0 |]; start = 9; duration = 1 };
        { Runner.kind = Gate.Measure; qubits = [| 0 |]; start = 10; duration = 4 };
        { Runner.kind = Gate.Measure; qubits = [| 1 |]; start = 10; duration = 4 };
      |]
    ~readout:[ (0, 0); (1, 1) ]

let t_poisoned_job () =
  Runner.prepare ~calib
    ~ops:
      [|
        { Runner.kind = Gate.H; qubits = [| 0 |]; start = 0; duration = 1 };
        { Runner.kind = Gate.T; qubits = [| 0 |]; start = 1; duration = 1 };
        { Runner.kind = Gate.H; qubits = [| 0 |]; start = 2; duration = 1 };
        { Runner.kind = Gate.Measure; qubits = [| 0 |]; start = 3; duration = 4 };
      |]
    ~readout:[ (0, 0) ]

let test_clifford_capability () =
  Alcotest.(check bool) "clifford job capable" true
    (Runner.clifford_capable (clifford_job ()));
  Alcotest.(check bool) "T job not capable" false
    (Runner.clifford_capable (t_poisoned_job ()))

(* The routing metrics: a Clifford job's noisy trials all count as
   hits, a T-poisoned job's all as fallbacks — and the split is the
   `nisqc run --metrics` evidence that the fast path actually ran. *)
let test_routing_metrics () =
  let hit = Metrics.counter "sim.clifford.hit" in
  let fallback = Metrics.counter "sim.clifford.fallback" in
  Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Metrics.set_enabled false) @@ fun () ->
  let h0 = Metrics.value hit and f0 = Metrics.value fallback in
  let (_ : float) =
    Runner.success_rate_seq ~trials:512 ~seed:3 (clifford_job ())
  in
  let h1 = Metrics.value hit and f1 = Metrics.value fallback in
  Alcotest.(check bool) "clifford job hits" true (h1 - h0 > 0);
  Alcotest.(check int) "clifford job never falls back" 0 (f1 - f0);
  let (_ : float) =
    Runner.success_rate_seq ~trials:512 ~seed:3 (t_poisoned_job ())
  in
  let h2 = Metrics.value hit and f2 = Metrics.value fallback in
  Alcotest.(check int) "T job never hits" 0 (h2 - h1);
  Alcotest.(check bool) "T job falls back" true (f2 - f1 > 0);
  (* forced off: the same Clifford job stops hitting *)
  with_stabilizer (Some false) (fun () ->
      let (_ : float) =
        Runner.success_rate_seq ~trials:128 ~seed:3 (clifford_job ())
      in
      Alcotest.(check int) "disabled path never hits" 0
        (Metrics.value hit - h2))

(* --------------- tableau-vs-dense equivalence, end to end ----------- *)

let pools = [ 0; 1; 4 ]

(* Byte-identity of success_rate and distribution with the fast path on
   vs off, at every pool size. [Int64.bits_of_float] turns "equal" into
   "the same 64 bits" — the paper tables must not depend on the
   backend. *)
let assert_equivalent name job =
  let measure () =
    List.map
      (fun size ->
        let pool = Pool.create ~size () in
        Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
        ( Int64.bits_of_float
            (Runner.success_rate ~trials:384 ~pool ~seed:42 job),
          Runner.distribution ~trials:384 ~pool ~seed:43 job ))
      pools
  in
  let fast = with_stabilizer (Some true) measure in
  let dense = with_stabilizer (Some false) measure in
  List.iteri
    (fun i ((s_fast, d_fast), (s_dense, d_dense)) ->
      let ctx = Printf.sprintf "%s pool=%d" name (List.nth pools i) in
      Alcotest.(check int64) (ctx ^ ": success bits") s_dense s_fast;
      Alcotest.(check (list (pair int int))) (ctx ^ ": distribution") d_dense
        d_fast)
    (List.combine fast dense)

let paper_runner name =
  let b = Nisq_bench.Benchmarks.by_name name in
  let config =
    Nisq_compiler.Config.make (Nisq_compiler.Config.R_smt_star 0.5)
  in
  let r = Nisq_compiler.Compile.run ~config ~calib b.Nisq_bench.Benchmarks.circuit in
  Nisq_bench.Experiments.runner_of r

let test_paper_benchmarks_equivalent () =
  List.iter
    (fun b ->
      assert_equivalent b.Nisq_bench.Benchmarks.name
        (paper_runner b.Nisq_bench.Benchmarks.name))
    Nisq_bench.Benchmarks.all

(* Channel matrix: one crafted calibration per noise channel, each hot
   enough to fire constantly, over hand-built Clifford ops — every
   channel's tableau twin (Z dephasing, exact amplitude-damping jumps,
   Pauli faults, readout flips) must reproduce the dense bits. *)
let grid_calib ~t1_us ~t2_us ~single_error ~readout_error ~cnot_err =
  let n = 16 in
  let cnot_error = Array.make_matrix n n Float.nan in
  let cnot_duration = Array.make_matrix n n 0 in
  List.iter
    (fun (a, b) ->
      cnot_error.(a).(b) <- cnot_err;
      cnot_error.(b).(a) <- cnot_err;
      cnot_duration.(a).(b) <- 4;
      cnot_duration.(b).(a) <- 4)
    (Topology.edges Ibmq16.topology);
  Calibration.create ~topology:Ibmq16.topology ~day:0
    ~t1_us:(Array.make n t1_us) ~t2_us:(Array.make n t2_us)
    ~readout_error:(Array.make n readout_error)
    ~single_error:(Array.make n single_error) ~cnot_error ~cnot_duration

let channel_job ~calib =
  (* superposition + entanglement + a long idle window + measurement:
     every channel in the model gets somewhere to fire *)
  Runner.prepare ~calib
    ~ops:
      [|
        { Runner.kind = Gate.H; qubits = [| 0 |]; start = 0; duration = 1 };
        { Runner.kind = Gate.X; qubits = [| 1 |]; start = 0; duration = 1 };
        { Runner.kind = Gate.Cnot; qubits = [| 0; 1 |]; start = 1; duration = 4 };
        { Runner.kind = Gate.H; qubits = [| 0 |]; start = 200; duration = 1 };
        { Runner.kind = Gate.Measure; qubits = [| 0 |]; start = 201; duration = 4 };
        { Runner.kind = Gate.Measure; qubits = [| 1 |]; start = 201; duration = 4 };
      |]
    ~readout:[ (0, 0); (1, 1) ]

let test_channel_matrix_equivalent () =
  let channels =
    [
      (* one channel scaled hot per row, the rest benign *)
      ("t2-dephasing", grid_calib ~t1_us:1e9 ~t2_us:2.0 ~single_error:0.0
         ~readout_error:0.0 ~cnot_err:0.0);
      ("t1-damping", grid_calib ~t1_us:2.0 ~t2_us:1e9 ~single_error:0.0
         ~readout_error:0.0 ~cnot_err:0.0);
      ("single-gate", grid_calib ~t1_us:1e9 ~t2_us:1e9 ~single_error:0.3
         ~readout_error:0.0 ~cnot_err:0.0);
      ("cnot", grid_calib ~t1_us:1e9 ~t2_us:1e9 ~single_error:0.0
         ~readout_error:0.0 ~cnot_err:0.4);
      ("readout", grid_calib ~t1_us:1e9 ~t2_us:1e9 ~single_error:0.0
         ~readout_error:0.35 ~cnot_err:0.0);
      ("all-hot", grid_calib ~t1_us:5.0 ~t2_us:3.0 ~single_error:0.2
         ~readout_error:0.2 ~cnot_err:0.3);
    ]
  in
  List.iter
    (fun (name, calib) -> assert_equivalent name (channel_job ~calib))
    channels

let test_forced_fallback_equivalent () =
  (* the non-Clifford case rides the dense path under both switch
     settings — equivalence must hold trivially, and stay bit-exact *)
  assert_equivalent "t-poisoned" (t_poisoned_job ())

(* --------------------------- scratch arena -------------------------- *)

let test_scratch_arena_caches () =
  let arena : (int ref, int array) Scratch.t = Scratch.create () in
  let makes = ref 0 in
  let make _ = incr makes; Array.make 4 0 in
  let k1 = ref 1 and k2 = ref 2 in
  let a = Scratch.get arena ~key:k1 ~make in
  let b = Scratch.get arena ~key:k1 ~make in
  Alcotest.(check bool) "same key hits" true (a == b);
  Alcotest.(check int) "one make" 1 !makes;
  (* the slot remembers last use: per-use state survives *)
  a.(0) <- 42;
  Alcotest.(check int) "cached state visible" 42
    (Scratch.get arena ~key:k1 ~make).(0);
  let c = Scratch.get arena ~key:k2 ~make in
  Alcotest.(check bool) "new key rebuilds" true (c != a);
  Alcotest.(check int) "two makes" 2 !makes;
  (* single slot: returning to k1 rebuilds again *)
  let d = Scratch.get arena ~key:k1 ~make in
  Alcotest.(check bool) "slot was evicted" true (d != a);
  Alcotest.(check int) "three makes" 3 !makes

let test_scratch_arena_per_domain () =
  let arena : (unit ref, int ref) Scratch.t = Scratch.create () in
  let key = ref () in
  let mine = Scratch.get arena ~key ~make:(fun _ -> ref 0) in
  let theirs =
    Domain.join
      (Domain.spawn (fun () -> Scratch.get arena ~key ~make:(fun _ -> ref 0)))
  in
  Alcotest.(check bool) "domains never share scratch" true (mine != theirs)

let suite =
  [
    ("clifford classifier", `Quick, test_clifford_classifier);
    ("tableau matches dense probabilities", `Quick,
     test_tableau_matches_dense_probs);
    ("measure parity and RNG contract", `Quick, test_measure_stream_parity);
    ("collapse_one projects like dense", `Quick, test_collapse_one_projects);
    ("tableau reset", `Quick, test_tableau_reset);
    ("tableau bounds and gate rejection", `Quick, test_tableau_bounds);
    ("stabilizer switch override", `Quick, test_stabilizer_switch);
    ("per-job clifford capability", `Quick, test_clifford_capability);
    ("routing metrics split", `Quick, test_routing_metrics);
    ("paper benchmarks bit-identical", `Slow, test_paper_benchmarks_equivalent);
    ("channel matrix bit-identical", `Quick, test_channel_matrix_equivalent);
    ("forced fallback bit-identical", `Quick, test_forced_fallback_equivalent);
    ("scratch arena caches per key", `Quick, test_scratch_arena_caches);
    ("scratch arena is per-domain", `Quick, test_scratch_arena_per_domain);
  ]
