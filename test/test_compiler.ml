(* Tests for Nisq_compiler: Config, Layout, Route, Schedule, Emit,
   Reliability, the mappers, and end-to-end compilation semantics. *)

module Gate = Nisq_circuit.Gate
module Circuit = Nisq_circuit.Circuit
module Dag = Nisq_circuit.Dag
module Topology = Nisq_device.Topology
module Calibration = Nisq_device.Calibration
module Ibmq16 = Nisq_device.Ibmq16
module Paths = Nisq_device.Paths
module Config = Nisq_compiler.Config
module Layout = Nisq_compiler.Layout
module Route = Nisq_compiler.Route
module Schedule = Nisq_compiler.Schedule
module Emit = Nisq_compiler.Emit
module Reliability = Nisq_compiler.Reliability
module Greedy = Nisq_compiler.Greedy
module Compile = Nisq_compiler.Compile
module Benchmarks = Nisq_bench.Benchmarks
module Experiments = Nisq_bench.Experiments
module Runner = Nisq_sim.Runner
module Budget = Nisq_solver.Budget

let calib = Ibmq16.calibration ~day:0 ()
let paths = Paths.make calib

(* ------------------------------- Config ---------------------------- *)

let test_config_defaults () =
  Alcotest.(check bool) "rsmt is 1BP" true
    ((Config.make (Config.R_smt_star 0.5)).Config.routing = Config.One_bend);
  Alcotest.(check bool) "tsmt is RR" true
    ((Config.make Config.T_smt).Config.routing = Config.Rectangle_reservation);
  Alcotest.(check bool) "greedy is BestPath" true
    ((Config.make Config.Greedy_e).Config.routing = Config.Best_path)

let test_config_star_marker () =
  Alcotest.(check bool) "qiskit blind" false
    (Config.uses_calibration (Config.make Config.Qiskit));
  Alcotest.(check bool) "tsmt blind" false
    (Config.uses_calibration (Config.make Config.T_smt));
  Alcotest.(check bool) "tsmt* aware" true
    (Config.uses_calibration (Config.make Config.T_smt_star));
  Alcotest.(check bool) "greedy aware" true
    (Config.uses_calibration (Config.make Config.Greedy_v))

let test_config_rejects_bad_omega () =
  Alcotest.(check bool) "raises" true
    (try ignore (Config.make (Config.R_smt_star 1.5)); false
     with Invalid_argument _ -> true)

let test_config_names () =
  Alcotest.(check string) "name" "R-SMT* w=0.50 (1BP)"
    (Config.name (Config.make (Config.R_smt_star 0.5)))

let test_paper_suite_size () =
  Alcotest.(check int) "8 configurations" 8 (List.length Config.paper_suite)

(* ------------------------------- Layout ---------------------------- *)

let test_layout_identity () =
  let l = Layout.identity ~num_prog:4 ~num_hw:16 in
  for p = 0 to 3 do
    Alcotest.(check int) "hw = prog" p (Layout.hw_of l p)
  done

let test_layout_inverse () =
  let l = Layout.of_array ~num_hw:16 [| 3; 7; 0 |] in
  Alcotest.(check (option int)) "prog at 7" (Some 1) (Layout.prog_of l 7);
  Alcotest.(check (option int)) "empty slot" None (Layout.prog_of l 5)

let test_layout_rejects_duplicates () =
  Alcotest.(check bool) "raises" true
    (try ignore (Layout.of_array ~num_hw:16 [| 3; 3 |]); false
     with Invalid_argument _ -> true)

let test_layout_rejects_out_of_range () =
  Alcotest.(check bool) "raises" true
    (try ignore (Layout.of_array ~num_hw:4 [| 5 |]); false
     with Invalid_argument _ -> true)

let test_layout_apply () =
  let c = Circuit.make 2 [ (Gate.Cnot, [| 0; 1 |]) ] in
  let l = Layout.of_array ~num_hw:16 [| 9; 2 |] in
  let m = Layout.apply l c in
  Alcotest.(check (array int)) "relabelled" [| 9; 2 |] m.Circuit.gates.(0).Gate.qubits

let test_layout_render_marks_program_qubits () =
  let l = Layout.of_array ~num_hw:16 [| 0; 9 |] in
  let s = Layout.render Ibmq16.topology l in
  Alcotest.(check bool) "mentions p0" true
    (Astring_contains.contains s "p0");
  Alcotest.(check bool) "mentions p1" true (Astring_contains.contains s "p1")

(* -------------------------------- Route ---------------------------- *)

let bv4 = (Benchmarks.by_name "BV4").Benchmarks.circuit

let test_plan_shapes () =
  let layout = Layout.identity ~num_prog:4 ~num_hw:16 in
  let plan =
    Route.plan paths ~policy:Config.One_bend ~criterion:Route.Max_reliability
      ~layout bv4
  in
  Alcotest.(check int) "entry per gate" (Circuit.length bv4) (Array.length plan);
  Array.iteri
    (fun i (e : Route.entry) ->
      let g = bv4.Circuit.gates.(i) in
      Alcotest.(check int) "operand count" (Array.length g.Gate.qubits)
        (Array.length e.Route.hw);
      match g.Gate.kind with
      | Gate.Cnot ->
          Alcotest.(check bool) "cnot has route" true (e.Route.route <> None)
      | _ -> Alcotest.(check bool) "no route" true (e.Route.route = None))
    plan

let test_plan_rejects_non_adjacent_swap_gates () =
  let c = Circuit.make 2 [ (Gate.Swap, [| 0; 1 |]) ] in
  (* hw 0 and hw 5 are not coupled: a raw SWAP there is illegal *)
  let layout = Layout.of_array ~num_hw:16 [| 0; 5 |] in
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (Route.plan paths ~policy:Config.One_bend
            ~criterion:Route.Max_reliability ~layout c);
       false
     with Invalid_argument _ -> true)

let test_plan_adjacent_swap_duration () =
  let c = Circuit.make 2 [ (Gate.Swap, [| 0; 1 |]) ] in
  let layout = Layout.identity ~num_prog:2 ~num_hw:16 in
  let plan =
    Route.plan paths ~policy:Config.One_bend ~criterion:Route.Max_reliability
      ~layout c
  in
  Alcotest.(check int) "3 cnot durations"
    (Nisq_device.Calibration.swap_duration calib 0 1)
    plan.(0).Route.duration

let test_rectangle_reservation_region () =
  (* CNOT between hw 0 and hw 10 (coords (0,0) and (2,1)): rectangle is
     the 6 qubits {0,1,2,8,9,10} *)
  let c = Circuit.make 2 [ (Gate.Cnot, [| 0; 1 |]) ] in
  let layout = Layout.of_array ~num_hw:16 [| 0; 10 |] in
  let plan =
    Route.plan paths ~policy:Config.Rectangle_reservation
      ~criterion:Route.Min_duration ~layout c
  in
  let reserve = Array.to_list plan.(0).Route.reserve |> List.sort compare in
  Alcotest.(check (list int)) "bounding box" [ 0; 1; 2; 8; 9; 10 ] reserve

let test_one_bend_reserves_path_only () =
  let c = Circuit.make 2 [ (Gate.Cnot, [| 0; 1 |]) ] in
  let layout = Layout.of_array ~num_hw:16 [| 0; 10 |] in
  let plan =
    Route.plan paths ~policy:Config.One_bend ~criterion:Route.Max_reliability
      ~layout c
  in
  Alcotest.(check int) "path qubits only" 4 (Array.length plan.(0).Route.reserve)

let test_min_hops_ignores_calibration () =
  (* under Min_hops, the chosen route length equals the manhattan distance *)
  let c = Circuit.make 2 [ (Gate.Cnot, [| 0; 1 |]) ] in
  let layout = Layout.of_array ~num_hw:16 [| 0; 15 |] in
  let plan =
    Route.plan paths ~policy:Config.One_bend ~criterion:Route.Min_hops ~layout c
  in
  match plan.(0).Route.route with
  | Some r ->
      Alcotest.(check int) "shortest" (Topology.distance Ibmq16.topology 0 15 + 1)
        (Array.length r.Paths.path)
  | None -> Alcotest.fail "expected route"

let test_reprice_keeps_path () =
  let layout = Layout.identity ~num_prog:4 ~num_hw:16 in
  let plan =
    Route.plan paths ~policy:Config.One_bend ~criterion:Route.Max_reliability
      ~layout bv4
  in
  let other = Paths.make (Ibmq16.calibration ~day:5 ()) in
  let plan' = Route.reprice other plan in
  Array.iteri
    (fun i (e : Route.entry) ->
      match (e.Route.route, plan'.(i).Route.route) with
      | Some a, Some b ->
          Alcotest.(check (array int)) "same path" a.Paths.path b.Paths.path
      | None, None -> ()
      | _ -> Alcotest.fail "route presence changed")
    plan

let test_duration_matrix_consistency () =
  let m =
    Route.duration_matrix paths ~policy:Config.One_bend
      ~criterion:Route.Min_duration
  in
  Alcotest.(check int) "diagonal zero" 0 m.(3).(3);
  Alcotest.(check int) "adjacent = cnot duration"
    (Calibration.cnot_duration calib 0 1) m.(0).(1)

let test_log_reliability_matrix_negative () =
  let m = Route.log_reliability_matrix paths ~policy:Config.One_bend in
  for a = 0 to 15 do
    for b = 0 to 15 do
      if a <> b then
        Alcotest.(check bool) "log reliability < 0" true (m.(a).(b) < 0.0)
    done
  done

let test_swap_count () =
  let c = Circuit.make 2 [ (Gate.Cnot, [| 0; 1 |]) ] in
  let layout = Layout.of_array ~num_hw:16 [| 0; 3 |] in
  let plan =
    Route.plan paths ~policy:Config.One_bend ~criterion:Route.Min_hops ~layout c
  in
  (* distance 3: 2 movement hops, each swapped out and back = 4 swaps *)
  Alcotest.(check int) "4 swaps" 4 (Route.swap_count plan)

(* ------------------------------ Schedule --------------------------- *)

let schedule_of ?(policy = Config.One_bend) circuit layout =
  let dag = Dag.of_circuit circuit in
  let plan =
    Route.plan paths ~policy ~criterion:Route.Max_reliability ~layout circuit
  in
  (Schedule.compute dag ~circuit plan, plan, dag)

let test_schedule_respects_dependencies () =
  let layout = Layout.identity ~num_prog:4 ~num_hw:16 in
  let sched, _, dag = schedule_of bv4 layout in
  Array.iteri
    (fun i (e : Schedule.entry) ->
      List.iter
        (fun p ->
          let pe = sched.Schedule.entries.(p) in
          Alcotest.(check bool) "starts after preds" true
            (e.Schedule.start >= pe.Schedule.start + pe.Schedule.duration))
        (Dag.preds dag i))
    sched.Schedule.entries

let test_schedule_no_spatial_overlap () =
  let layout = Layout.identity ~num_prog:4 ~num_hw:16 in
  let sched, plan, _ = schedule_of bv4 layout in
  let n = Array.length plan in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let a = sched.Schedule.entries.(i) and b = sched.Schedule.entries.(j) in
      let share =
        Array.exists
          (fun q -> Array.exists (fun r -> q = r) b.Schedule.reserve)
          a.Schedule.reserve
      in
      let overlap =
        a.Schedule.duration > 0 && b.Schedule.duration > 0
        && a.Schedule.start < b.Schedule.start + b.Schedule.duration
        && b.Schedule.start < a.Schedule.start + a.Schedule.duration
      in
      if share then
        Alcotest.(check bool)
          (Printf.sprintf "gates %d and %d exclusive" i j)
          false overlap
    done
  done

let test_schedule_makespan_is_max_finish () =
  let layout = Layout.identity ~num_prog:4 ~num_hw:16 in
  let sched, _, _ = schedule_of bv4 layout in
  let max_finish =
    Array.fold_left
      (fun acc (e : Schedule.entry) ->
        Int.max acc (e.Schedule.start + e.Schedule.duration))
      0 sched.Schedule.entries
  in
  Alcotest.(check int) "makespan" max_finish sched.Schedule.makespan

let test_schedule_measure_is_terminal_per_qubit () =
  (* no op may reserve a hardware qubit after its measurement started *)
  let layout = Layout.identity ~num_prog:4 ~num_hw:16 in
  let circuit = (Benchmarks.by_name "BV4").Benchmarks.circuit in
  let sched, plan, _ = schedule_of circuit layout in
  Array.iteri
    (fun i (g : Gate.t) ->
      if g.Gate.kind = Gate.Measure then begin
        let m = sched.Schedule.entries.(i) in
        let hw = plan.(i).Route.hw.(0) in
        Array.iteri
          (fun j (e : Schedule.entry) ->
            if j <> i && Array.exists (fun q -> q = hw) e.Schedule.reserve then
              Alcotest.(check bool) "no later use of measured qubit" true
                (e.Schedule.start + e.Schedule.duration <= m.Schedule.start))
          sched.Schedule.entries
      end)
    circuit.Circuit.gates

let test_schedule_parallel_when_disjoint () =
  (* two CNOTs on disjoint adjacent pairs should overlap in time *)
  let c =
    Circuit.make 4 [ (Gate.Cnot, [| 0; 1 |]); (Gate.Cnot, [| 2; 3 |]) ]
  in
  let layout = Layout.of_array ~num_hw:16 [| 0; 1; 4; 5 |] in
  let sched, _, _ = schedule_of c layout in
  Alcotest.(check int) "both start at 0" 0
    (Int.max sched.Schedule.entries.(0).Schedule.start
       sched.Schedule.entries.(1).Schedule.start)

let test_schedule_coherence_violations_on_uniform () =
  let layout = Layout.identity ~num_prog:4 ~num_hw:16 in
  let sched, _, _ = schedule_of bv4 layout in
  Alcotest.(check (list (triple int int int))) "none on IBMQ16" []
    (Schedule.coherence_violations sched calib)

let test_schedule_busy_slots () =
  let c = Circuit.make 1 [ (Gate.H, [| 0 |]); (Gate.H, [| 0 |]) ] in
  let layout = Layout.of_array ~num_hw:16 [| 6 |] in
  let sched, _, _ = schedule_of c layout in
  Alcotest.(check int) "2 slots busy" 2 (Schedule.busy_slots sched 6)

(* -------------------------------- Emit ----------------------------- *)

let test_emit_expands_swaps () =
  let c = Circuit.make 2 [ (Gate.Cnot, [| 0; 1 |]) ] in
  let layout = Layout.of_array ~num_hw:16 [| 0; 2 |] in
  let dag = Dag.of_circuit c in
  let plan =
    Route.plan paths ~policy:Config.One_bend ~criterion:Route.Min_hops ~layout c
  in
  let sched = Schedule.compute dag ~circuit:c plan in
  let phys = Emit.physical_ops calib c sched plan in
  (* distance 2: 1 hop out (3 cnots) + cnot + 1 hop back (3 cnots) = 7 *)
  Alcotest.(check int) "7 physical cnots" 7 (Array.length phys);
  Array.iter
    (fun (p : Emit.phys) ->
      Alcotest.(check bool) "all cnots" true (p.Emit.kind = Gate.Cnot);
      Alcotest.(check bool) "adjacent operands" true
        (Topology.adjacent Ibmq16.topology p.Emit.qubits.(0) p.Emit.qubits.(1)))
    phys

let test_emit_time_ordered () =
  let r =
    Compile.run ~config:(Config.make Config.Qiskit) ~calib
      (Benchmarks.by_name "BV8").Benchmarks.circuit
  in
  let last = ref min_int in
  Array.iter
    (fun (p : Emit.phys) ->
      Alcotest.(check bool) "sorted" true (p.Emit.start >= !last);
      last := p.Emit.start)
    r.Compile.phys

let test_emit_to_circuit_valid_qasm () =
  let r = Compile.run ~config:(Config.make (Config.R_smt_star 0.5)) ~calib bv4 in
  let qasm = Compile.to_qasm r in
  let parsed = Nisq_circuit.Qasm.of_string_exn qasm in
  Alcotest.(check int) "16 hw qubits" 16 parsed.Circuit.num_qubits

(* ----------------------------- Reliability ------------------------- *)

let test_esp_in_unit_interval () =
  List.iter
    (fun (b : Benchmarks.t) ->
      let r =
        Compile.run ~config:(Config.make (Config.R_smt_star 0.5)) ~calib
          b.Benchmarks.circuit
      in
      Alcotest.(check bool) "esp in (0,1]" true
        (r.Compile.esp > 0.0 && r.Compile.esp <= 1.0))
    Benchmarks.all

let test_esp_perfect_machine_is_one () =
  let perfect =
    Calibration.uniform ~cnot_error:0.0 ~readout_error:0.0 ~single_error:0.0
      Ibmq16.topology
  in
  let r = Compile.run ~config:(Config.make Config.Qiskit) ~calib:perfect bv4 in
  Alcotest.(check (float 1e-9)) "esp 1" 1.0 r.Compile.esp

let test_placement_problem_dimensions () =
  let p =
    Reliability.placement_problem paths ~omega:0.5 ~policy:Config.One_bend bv4
  in
  Alcotest.(check int) "items" 4 p.Nisq_solver.Placement.num_items;
  Alcotest.(check int) "slots" 16 p.Nisq_solver.Placement.num_slots;
  Alcotest.(check int) "one pair per interacting pair" 3
    (List.length p.Nisq_solver.Placement.pairwise)

let test_placement_problem_omega_extremes () =
  let p0 =
    Reliability.placement_problem paths ~omega:0.0 ~policy:Config.One_bend bv4
  in
  (* omega = 0: readout ignored -> unary all zero *)
  Array.iter
    (Array.iter (fun v -> Alcotest.(check (float 1e-12)) "zero unary" 0.0 v))
    p0.Nisq_solver.Placement.unary;
  let p1 =
    Reliability.placement_problem paths ~omega:1.0 ~policy:Config.One_bend bv4
  in
  (* omega = 1: CNOTs ignored -> pairwise matrices all zero off-diagonal *)
  List.iter
    (fun (_, _, m) ->
      Array.iteri
        (fun i row ->
          Array.iteri
            (fun j v ->
              if i <> j then Alcotest.(check (float 1e-12)) "zero pairwise" 0.0 v)
            row)
        m)
    p1.Nisq_solver.Placement.pairwise

(* ------------------------------- Mappers --------------------------- *)

let all_selected_hw layout n =
  List.init n (fun p -> Layout.hw_of layout p)

let test_greedy_layouts_injective () =
  List.iter
    (fun (b : Benchmarks.t) ->
      List.iter
        (fun mk ->
          let layout = mk paths b.Benchmarks.circuit in
          let hw =
            all_selected_hw layout b.Benchmarks.circuit.Circuit.num_qubits
          in
          let sorted = List.sort_uniq compare hw in
          Alcotest.(check int)
            (b.Benchmarks.name ^ " injective")
            (List.length hw) (List.length sorted))
        [ Greedy.vertex_first; Greedy.edge_first ])
    Benchmarks.all

let test_greedy_edge_first_adjacent_pair () =
  (* a circuit with a single dominant edge must land on coupled qubits *)
  let c =
    Circuit.make 2
      [ (Gate.Cnot, [| 0; 1 |]); (Gate.Cnot, [| 0; 1 |]); (Gate.Measure, [| 0 |]);
        (Gate.Measure, [| 1 |]) ]
  in
  let layout = Greedy.edge_first paths c in
  Alcotest.(check bool) "coupled" true
    (Topology.adjacent Ibmq16.topology (Layout.hw_of layout 0) (Layout.hw_of layout 1))

let test_rsmt_optimal_beats_greedy_objective () =
  (* the solver maximizes Eq. 12; greedy can at best match it *)
  List.iter
    (fun name ->
      let b = Benchmarks.by_name name in
      let circuit = b.Benchmarks.circuit in
      let layout_opt, stats, _ =
        Nisq_compiler.Rsmt.compile_layout ~decision_paths:paths ~omega:0.5
          ~policy:Config.One_bend ~budget:(Budget.nodes 200_000) circuit
      in
      Alcotest.(check bool) "proven optimal" true stats.Budget.proven_optimal;
      let objective layout =
        let plan =
          Route.plan paths ~policy:Config.One_bend
            ~criterion:Route.Max_reliability ~layout circuit
        in
        Reliability.plan_log_reliability calib ~omega:0.5 circuit plan
      in
      let greedy = Greedy.edge_first paths circuit in
      Alcotest.(check bool)
        (name ^ ": optimal >= greedy")
        true
        (objective layout_opt >= objective greedy -. 1e-9))
    [ "BV4"; "Toffoli"; "QFT2"; "HS4" ]

let test_tsmt_star_duration_beats_qiskit () =
  List.iter
    (fun name ->
      let b = Benchmarks.by_name name in
      let t =
        Compile.run ~config:(Config.make Config.T_smt_star) ~calib
          b.Benchmarks.circuit
      in
      let q =
        Compile.run ~config:(Config.make Config.Qiskit) ~calib
          b.Benchmarks.circuit
      in
      Alcotest.(check bool)
        (name ^ ": tsmt* <= qiskit duration")
        true
        (t.Compile.duration <= q.Compile.duration))
    [ "BV4"; "BV8"; "Toffoli"; "Adder" ]

(* --------------------------- End-to-end ---------------------------- *)

(* The decisive test: whatever the configuration, the compiled physical
   program must compute the same answer as the source program. *)
let test_compilation_preserves_semantics () =
  let configs =
    [ Config.make Config.Qiskit;
      Config.make Config.T_smt;
      Config.make Config.T_smt_star;
      Config.make (Config.R_smt_star 0.0);
      Config.make (Config.R_smt_star 0.5);
      Config.make (Config.R_smt_star 1.0);
      Config.make Config.Greedy_v;
      Config.make Config.Greedy_e ]
  in
  List.iter
    (fun (b : Benchmarks.t) ->
      List.iter
        (fun config ->
          let r = Compile.run ~config ~calib b.Benchmarks.circuit in
          let runner = Experiments.runner_of r in
          Alcotest.(check int)
            (Printf.sprintf "%s under %s" b.Benchmarks.name (Config.name config))
            b.Benchmarks.expected (Runner.ideal_answer runner);
          Alcotest.(check bool)
            (b.Benchmarks.name ^ " deterministic")
            true
            (Runner.ideal_answer_probability runner > 0.999))
        configs)
    Benchmarks.all

(* The Move_and_stay extension must preserve semantics too — this
   exercises the position-tracking logic through every benchmark. *)
let test_move_and_stay_preserves_semantics () =
  List.iter
    (fun (b : Benchmarks.t) ->
      List.iter
        (fun method_ ->
          let config = Config.make ~movement:Config.Move_and_stay method_ in
          let r = Compile.run ~config ~calib b.Benchmarks.circuit in
          let runner = Experiments.runner_of r in
          Alcotest.(check int)
            (Printf.sprintf "%s under %s" b.Benchmarks.name (Config.name config))
            b.Benchmarks.expected (Runner.ideal_answer runner))
        [ Config.Qiskit; Config.R_smt_star 0.5; Config.Greedy_e ])
    Benchmarks.all

let test_move_and_stay_fewer_swaps () =
  (* dynamic routing does not undo its SWAPs: for any routed program it
     inserts at most as many SWAPs as the static model *)
  List.iter
    (fun name ->
      let b = Benchmarks.by_name name in
      let static =
        Compile.run ~config:(Config.make Config.Qiskit) ~calib
          b.Benchmarks.circuit
      in
      let dynamic =
        Compile.run
          ~config:(Config.make ~movement:Config.Move_and_stay Config.Qiskit)
          ~calib b.Benchmarks.circuit
      in
      Alcotest.(check bool)
        (name ^ ": fewer or equal swaps")
        true
        (dynamic.Compile.swap_count <= static.Compile.swap_count);
      Alcotest.(check bool)
        (name ^ ": no longer duration")
        true
        (dynamic.Compile.duration <= static.Compile.duration))
    [ "BV8"; "Adder"; "Fredkin"; "Toffoli" ]

let test_move_and_stay_final_positions () =
  (* BV8's star forces movement under any mapper: some program qubit must
     end somewhere other than its initial location, and final_positions
     must stay injective. *)
  let b = Benchmarks.by_name "BV8" in
  let r =
    Compile.run
      ~config:(Config.make ~movement:Config.Move_and_stay (Config.R_smt_star 0.5))
      ~calib b.Benchmarks.circuit
  in
  let n = b.Benchmarks.circuit.Circuit.num_qubits in
  let finals = Array.to_list r.Compile.final_positions in
  Alcotest.(check int) "injective finals" n
    (List.length (List.sort_uniq compare finals));
  let moved =
    List.exists
      (fun p -> r.Compile.final_positions.(p) <> Layout.hw_of r.Compile.layout p)
      (List.init n Fun.id)
  in
  Alcotest.(check bool) "someone moved" true moved

let test_swap_back_final_positions_equal_layout () =
  let b = Benchmarks.by_name "BV8" in
  let r =
    Compile.run ~config:(Config.make (Config.R_smt_star 0.5)) ~calib
      b.Benchmarks.circuit
  in
  Array.iteri
    (fun p h ->
      Alcotest.(check int) "static placement" (Layout.hw_of r.Compile.layout p) h)
    r.Compile.final_positions

let test_compile_rejects_oversized_program () =
  let c = Nisq_bench.Synth.random_circuit ~qubits:17 ~gates:20 ~seed:1 () in
  Alcotest.(check bool) "raises" true
    (try ignore (Compile.run ~config:(Config.make Config.Greedy_e) ~calib c); false
     with Invalid_argument _ -> true)

let test_compile_reports_solver_stats () =
  let r = Compile.run ~config:(Config.make (Config.R_smt_star 0.5)) ~calib bv4 in
  Alcotest.(check bool) "has stats" true (r.Compile.solver_stats <> None);
  let q = Compile.run ~config:(Config.make Config.Qiskit) ~calib bv4 in
  Alcotest.(check bool) "qiskit has none" true (q.Compile.solver_stats = None)

let test_compile_readout_map_complete () =
  List.iter
    (fun (b : Benchmarks.t) ->
      let r =
        Compile.run ~config:(Config.make Config.Greedy_e) ~calib
          b.Benchmarks.circuit
      in
      Alcotest.(check int)
        (b.Benchmarks.name ^ " readout size")
        (List.length (Circuit.measured_qubits b.Benchmarks.circuit))
        (List.length (Compile.readout_map r)))
    Benchmarks.all

let test_compile_durations_consistent_with_schedule () =
  let r = Compile.run ~config:(Config.make (Config.R_smt_star 0.5)) ~calib bv4 in
  Alcotest.(check int) "duration = makespan" r.Compile.schedule.Schedule.makespan
    r.Compile.duration

(* Compilation must stay correct on non-grid topologies (best-path
   routing fallback). *)
let test_compile_on_graph_topologies () =
  List.iter
    (fun topo ->
      let c =
        Nisq_device.Calib_gen.generate ~topology:topo ~seed:5 ~day:0 ()
      in
      List.iter
        (fun name ->
          let b = Benchmarks.by_name name in
          let r =
            Compile.run ~config:(Config.make Config.Greedy_e) ~calib:c
              b.Benchmarks.circuit
          in
          let runner = Experiments.runner_of r in
          Alcotest.(check int)
            (Format.asprintf "%s on %a" name Topology.pp topo)
            b.Benchmarks.expected (Runner.ideal_answer runner))
        [ "BV8"; "Toffoli"; "Adder" ])
    [ Topology.ring 16;
      Topology.torus ~rows:4 ~cols:4;
      Topology.fully_connected 16 ]

let test_full_connectivity_eliminates_swaps () =
  (* on an all-to-all machine every CNOT is local: zero swaps even for
     the movement-hungry Adder *)
  let topo = Topology.fully_connected 16 in
  let c = Nisq_device.Calib_gen.generate ~topology:topo ~seed:5 ~day:0 () in
  let b = Benchmarks.by_name "Adder" in
  let r =
    Compile.run ~config:(Config.make (Config.R_smt_star 0.5)) ~calib:c
      b.Benchmarks.circuit
  in
  Alcotest.(check int) "zero swaps" 0 r.Compile.swap_count

let test_compile_on_high_variance_day () =
  let hv = Ibmq16.high_variance_calibration ~day:0 () in
  let r =
    Compile.run ~config:(Config.make (Config.R_smt_star 0.5)) ~calib:hv bv4
  in
  let runner = Experiments.runner_of r in
  Alcotest.(check int) "still correct" 0b111 (Runner.ideal_answer runner)

let suite =
  [
    ("config defaults", `Quick, test_config_defaults);
    ("config star marker", `Quick, test_config_star_marker);
    ("config rejects bad omega", `Quick, test_config_rejects_bad_omega);
    ("config names", `Quick, test_config_names);
    ("paper suite size", `Quick, test_paper_suite_size);
    ("layout identity", `Quick, test_layout_identity);
    ("layout inverse", `Quick, test_layout_inverse);
    ("layout rejects duplicates", `Quick, test_layout_rejects_duplicates);
    ("layout rejects out of range", `Quick, test_layout_rejects_out_of_range);
    ("layout apply", `Quick, test_layout_apply);
    ("layout render", `Quick, test_layout_render_marks_program_qubits);
    ("plan shapes", `Quick, test_plan_shapes);
    ("plan rejects non-adjacent swaps", `Quick, test_plan_rejects_non_adjacent_swap_gates);
    ("plan adjacent swap duration", `Quick, test_plan_adjacent_swap_duration);
    ("rectangle reservation region", `Quick, test_rectangle_reservation_region);
    ("one-bend reserves path", `Quick, test_one_bend_reserves_path_only);
    ("min-hops is shortest", `Quick, test_min_hops_ignores_calibration);
    ("reprice keeps path", `Quick, test_reprice_keeps_path);
    ("duration matrix", `Quick, test_duration_matrix_consistency);
    ("log reliability matrix negative", `Quick, test_log_reliability_matrix_negative);
    ("swap count", `Quick, test_swap_count);
    ("schedule respects deps", `Quick, test_schedule_respects_dependencies);
    ("schedule no spatial overlap", `Quick, test_schedule_no_spatial_overlap);
    ("schedule makespan", `Quick, test_schedule_makespan_is_max_finish);
    ("schedule measures terminal", `Quick, test_schedule_measure_is_terminal_per_qubit);
    ("schedule parallel disjoint", `Quick, test_schedule_parallel_when_disjoint);
    ("schedule coherence ok on ibmq16", `Quick, test_schedule_coherence_violations_on_uniform);
    ("schedule busy slots", `Quick, test_schedule_busy_slots);
    ("emit expands swaps", `Quick, test_emit_expands_swaps);
    ("emit time ordered", `Quick, test_emit_time_ordered);
    ("emit to valid qasm", `Quick, test_emit_to_circuit_valid_qasm);
    ("esp in unit interval", `Quick, test_esp_in_unit_interval);
    ("esp perfect machine", `Quick, test_esp_perfect_machine_is_one);
    ("placement problem dims", `Quick, test_placement_problem_dimensions);
    ("placement problem omega extremes", `Quick, test_placement_problem_omega_extremes);
    ("greedy layouts injective", `Quick, test_greedy_layouts_injective);
    ("greedy edge-first adjacency", `Quick, test_greedy_edge_first_adjacent_pair);
    ("rsmt beats greedy objective", `Quick, test_rsmt_optimal_beats_greedy_objective);
    ("tsmt* duration beats qiskit", `Quick, test_tsmt_star_duration_beats_qiskit);
    ("compilation preserves semantics", `Slow, test_compilation_preserves_semantics);
    ("move-and-stay preserves semantics", `Slow, test_move_and_stay_preserves_semantics);
    ("move-and-stay fewer swaps", `Quick, test_move_and_stay_fewer_swaps);
    ("move-and-stay final positions", `Quick, test_move_and_stay_final_positions);
    ("swap-back keeps placement static", `Quick, test_swap_back_final_positions_equal_layout);
    ("compile rejects oversized", `Quick, test_compile_rejects_oversized_program);
    ("compile solver stats", `Quick, test_compile_reports_solver_stats);
    ("compile readout map", `Quick, test_compile_readout_map_complete);
    ("compile duration consistency", `Quick, test_compile_durations_consistent_with_schedule);
    ("compile on graph topologies", `Quick, test_compile_on_graph_topologies);
    ("full connectivity eliminates swaps", `Quick, test_full_connectivity_eliminates_swaps);
    ("compile on high-variance day", `Quick, test_compile_on_high_variance_day);
  ]
