let () =
  Alcotest.run "nisq"
    [
      ("util", Test_util.suite);
      ("obs", Test_obs.suite);
      ("circuit", Test_circuit.suite);
      ("device", Test_device.suite);
      ("cache", Test_cache.suite);
      ("solver", Test_solver.suite);
      ("parallel", Test_parallel.suite);
      ("sim", Test_sim.suite);
      ("stabilizer", Test_stabilizer.suite);
      ("compiler", Test_compiler.suite);
      ("benchmarks", Test_benchmarks.suite);
      ("cells", Test_cells.suite);
      ("frontend", Test_frontend.suite);
      ("extras", Test_extras.suite);
      ("resilience", Test_resilience.suite);
      ("runkit", Test_runkit.suite);
      ("observability", Test_observability.suite);
      ("serve", Test_serve.suite);
      ("reload", Test_reload.suite);
      ("properties", Test_props.suite);
    ]
