(* Crash-safe run layer: atomic IO, duration parsing, the journal's
   torn-tail/corruption contract, cooperative cancellation at pool
   chunk boundaries, and kill-then-resume producing bit-identical
   results at every pool size.

   Tests that flip the cancellation token reset it in a finalizer; an
   armed token leaking out of a test would cancel every later suite. *)

module Atomic_io = Nisq_runkit.Atomic_io
module Deadline = Nisq_runkit.Deadline
module Journal = Nisq_runkit.Journal
module Run = Nisq_runkit.Run
module Json = Nisq_obs.Json
module Faultkit = Nisq_faultkit.Faultkit
module Pool = Nisq_util.Pool
module Config = Nisq_compiler.Config
module Compile = Nisq_compiler.Compile
module Runner = Nisq_sim.Runner
module Ibmq16 = Nisq_device.Ibmq16
module Benchmarks = Nisq_bench.Benchmarks
module Experiments = Nisq_bench.Experiments

let with_faults spec f =
  (match Faultkit.configure spec with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "bad fault spec %S: %s" spec msg);
  Fun.protect ~finally:Faultkit.clear f

let with_clean_token f = Fun.protect ~finally:Deadline.reset f

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  n = 0 || at 0

let tmp_counter = ref 0

let fresh_dir () =
  incr tmp_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "nisq_runkit_%d_%d" (Unix.getpid ()) !tmp_counter)
  in
  Atomic_io.mkdir_p d;
  d

(* ---------------------------- Atomic_io ---------------------------- *)

let test_mkdir_p () =
  let root = fresh_dir () in
  let deep = Filename.concat root "a/b/c" in
  Atomic_io.mkdir_p deep;
  Alcotest.(check bool) "created" true (Sys.is_directory deep);
  (* idempotent, including on pre-existing directories *)
  Atomic_io.mkdir_p deep;
  Atomic_io.mkdir_p root;
  Alcotest.(check bool) "still there" true (Sys.is_directory deep)

let test_atomic_write_roundtrip () =
  let path = Filename.concat (fresh_dir ()) "out.txt" in
  Atomic_io.write_file ~path "first\n";
  Alcotest.(check string) "content" "first\n" (Atomic_io.read_file path);
  (* overwrite is atomic: no .tmp residue, new content wins *)
  Atomic_io.write_file ~path "second\n";
  Alcotest.(check string) "overwritten" "second\n" (Atomic_io.read_file path);
  let dir = Filename.dirname path in
  Array.iter
    (fun f ->
      if contains ~sub:".tmp." f then
        Alcotest.failf "leftover temp file %s" f)
    (Sys.readdir dir)

let test_write_json () =
  let path = Filename.concat (fresh_dir ()) "v.json" in
  Atomic_io.write_json ~path (Json.Obj [ ("x", Json.Int 3) ]);
  Alcotest.(check string) "doc" "{\"x\":3}\n" (Atomic_io.read_file path)

(* ------------------------- duration parsing ------------------------ *)

let test_parse_duration_ok () =
  List.iter
    (fun (src, want) ->
      match Deadline.parse_duration src with
      | Ok got -> Alcotest.(check (float 1e-9)) src want got
      | Error msg -> Alcotest.failf "%S rejected: %s" src msg)
    [
      ("30s", 30.0); ("42", 42.0); (" 2s ", 2.0); ("5m", 300.0);
      ("1h30m", 5400.0); ("250ms", 0.25); ("1.5h", 5400.0);
      ("2min", 120.0); ("1H", 3600.0);
      (* fractional, with and without a unit *)
      ("0.5s", 0.5); ("0.5", 0.5); (".5s", 0.5); ("1.25h", 4500.0);
      ("500ms", 0.5); ("0.5ms", 0.0005);
    ]

let test_parse_duration_rejects () =
  List.iter
    (fun src ->
      match Deadline.parse_duration src with
      | Ok v -> Alcotest.failf "%S accepted as %g" src v
      | Error _ -> ())
    [
      ""; "abc"; "-5s"; "0"; "3x"; "10 20"; "s";
      (* zero in every spelling: a deadline must be positive *)
      "0s"; "0.0"; "0ms"; "0h0m0s";
      (* negatives with units and fractions *)
      "-0.5h"; "-250ms";
      (* a finite-looking literal that overflows float to infinity;
         arming it would feed Int64.of_float an undefined conversion *)
      String.make 400 '9' ^ "h";
    ]

(* ----------------------------- journal ----------------------------- *)

let obj_a = Json.Obj [ ("a", Json.Int 1) ]
let obj_b = Json.Obj [ ("b", Json.String "x") ]

let write_journal path records =
  let w = Journal.create ~path in
  List.iter (Journal.append w) records;
  Journal.close w

let append_raw path s =
  let oc = open_out_gen [ Open_wronly; Open_append ] 0o644 path in
  output_string oc s;
  close_out oc

let test_journal_roundtrip () =
  let path = Filename.concat (fresh_dir ()) "j.jsonl" in
  write_journal path [ obj_a; obj_b ];
  match Journal.load ~path with
  | Error msg -> Alcotest.fail msg
  | Ok { Journal.records; torn; _ } ->
      Alcotest.(check bool) "not torn" false torn;
      Alcotest.(check (list string)) "records"
        [ Json.to_string obj_a; Json.to_string obj_b ]
        (List.map Json.to_string records)

let test_journal_torn_tail_dropped () =
  let path = Filename.concat (fresh_dir ()) "j.jsonl" in
  write_journal path [ obj_a; obj_b ];
  let intact = (Unix.stat path).Unix.st_size in
  append_raw path "{\"c\":";  (* the record in flight when we died *)
  (match Journal.load ~path with
  | Error msg -> Alcotest.fail msg
  | Ok { Journal.records; torn; valid_bytes } ->
      Alcotest.(check bool) "torn" true torn;
      Alcotest.(check int) "two survive" 2 (List.length records);
      Alcotest.(check int) "prefix length" intact valid_bytes;
      (* resume: truncate the tail, append on a clean boundary *)
      Journal.truncate_to ~path valid_bytes);
  let w = Journal.append_to ~path in
  Journal.append w obj_a;
  Journal.close w;
  match Journal.load ~path with
  | Error msg -> Alcotest.fail msg
  | Ok { Journal.records; torn; _ } ->
      Alcotest.(check bool) "clean after repair" false torn;
      Alcotest.(check int) "three records" 3 (List.length records)

(* truncate_to at exactly a record boundary: the full-file length is a
   no-op, an interior boundary keeps precisely the records before it,
   and appends ride the repaired boundary without a stray separator. *)
let test_journal_truncate_at_boundary () =
  let path = Filename.concat (fresh_dir ()) "j.jsonl" in
  write_journal path [ obj_a; obj_b ];
  let size = (Unix.stat path).Unix.st_size in
  Journal.truncate_to ~path size;
  (match Journal.load ~path with
  | Error msg -> Alcotest.fail msg
  | Ok { Journal.records; torn; valid_bytes } ->
      Alcotest.(check bool) "full length: still clean" false torn;
      Alcotest.(check int) "full length: nothing lost" 2 (List.length records);
      Alcotest.(check int) "full length: valid_bytes" size valid_bytes);
  let first = String.length (Json.to_string obj_a) + 1 in
  Journal.truncate_to ~path first;
  (match Journal.load ~path with
  | Error msg -> Alcotest.fail msg
  | Ok { Journal.records; torn; valid_bytes } ->
      Alcotest.(check bool) "boundary: clean" false torn;
      Alcotest.(check (list string)) "boundary: first record survives intact"
        [ Json.to_string obj_a ]
        (List.map Json.to_string records);
      Alcotest.(check int) "boundary: valid_bytes" first valid_bytes);
  let w = Journal.append_to ~path in
  Journal.append w obj_b;
  Journal.close w;
  match Journal.load ~path with
  | Error msg -> Alcotest.fail msg
  | Ok { Journal.records; torn; _ } ->
      Alcotest.(check bool) "append after repair: clean" false torn;
      Alcotest.(check (list string)) "append after repair: records"
        [ Json.to_string obj_a; Json.to_string obj_b ]
        (List.map Json.to_string records)

let test_journal_corrupt_middle_is_fatal () =
  let path = Filename.concat (fresh_dir ()) "j.jsonl" in
  write_journal path [ obj_a ];
  append_raw path "garbage{\n";
  append_raw path (Json.to_string obj_b ^ "\n");
  match Journal.load ~path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "interior corruption must not load"

let test_journal_blank_lines_tolerated () =
  let path = Filename.concat (fresh_dir ()) "j.jsonl" in
  write_journal path [ obj_a ];
  append_raw path "\n";
  append_raw path (Json.to_string obj_b ^ "\n");
  match Journal.load ~path with
  | Error msg -> Alcotest.fail msg
  | Ok { Journal.records; torn; _ } ->
      Alcotest.(check bool) "not torn" false torn;
      Alcotest.(check int) "both records" 2 (List.length records)

(* ------------------------------- run ------------------------------- *)

let identity = Json.Obj [ ("suite", Json.String "test_runkit") ]

let test_run_cells_replay_on_resume () =
  let root = fresh_dir () in
  let computes = ref 0 in
  let cell run key v =
    Run.float_cell run ~key (fun () -> incr computes; v)
  in
  let r1 = Run.start ~root ~run_id:"w" ~identity () in
  Alcotest.(check (float 0.0)) "fresh" 0.5 (cell r1 "k1" 0.5);
  (* 1.0 renders as "1" and reparses as Int: the reader must cope *)
  Alcotest.(check (float 0.0)) "integral" 1.0 (cell r1 "k2" 1.0);
  Run.finish r1 ~status:"completed";
  Alcotest.(check int) "two computes" 2 !computes;
  match Run.resume ~root ~run_id:"w" ~identity ~force:false () with
  | Error msg -> Alcotest.fail msg
  | Ok r2 ->
      Alcotest.(check (float 0.0)) "replayed" 0.5 (cell r2 "k1" 99.0);
      Alcotest.(check (float 0.0)) "replayed int-valued" 1.0 (cell r2 "k2" 99.0);
      Alcotest.(check (float 0.0)) "fresh cell computes" 7.5 (cell r2 "k3" 7.5);
      Alcotest.(check int) "one more compute" 3 !computes;
      let cached, computed = Run.cache_stats r2 in
      Alcotest.(check (pair int int)) "stats" (2, 1) (cached, computed);
      Run.finish r2 ~status:"completed"

let test_run_identity_mismatch_refused () =
  let root = fresh_dir () in
  let r = Run.start ~root ~run_id:"m" ~identity () in
  Run.finish r ~status:"completed";
  let other = Json.Obj [ ("suite", Json.String "something-else") ] in
  (match Run.resume ~root ~run_id:"m" ~identity:other ~force:false () with
  | Error msg ->
      Alcotest.(check bool) "mentions force" true
        (contains ~sub:"--resume-force" msg)
  | Ok _ -> Alcotest.fail "identity mismatch accepted");
  match Run.resume ~root ~run_id:"m" ~identity:other ~force:true () with
  | Error msg -> Alcotest.failf "forced resume refused: %s" msg
  | Ok r -> Run.finish r ~status:"completed"

let test_run_resume_missing_refused () =
  match Run.resume ~root:(fresh_dir ()) ~run_id:"nope" ~identity ~force:false () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "resumed a run that never existed"

let test_run_figure_replay () =
  let root = fresh_dir () in
  let r1 = Run.start ~root ~run_id:"f" ~identity () in
  Alcotest.(check bool) "not cached yet" true (Run.figure_cached r1 "fig" = None);
  Run.figure_done r1 "fig" "the table\n";
  Run.finish r1 ~status:"completed";
  match Run.resume ~root ~run_id:"f" ~identity ~force:false () with
  | Error msg -> Alcotest.fail msg
  | Ok r2 ->
      (match Run.figure_cached r2 "fig" with
      | Some text -> Alcotest.(check string) "replayed text" "the table\n" text
      | None -> Alcotest.fail "completed figure not cached");
      Run.finish r2 ~status:"completed"

(* -------------------------- cancellation --------------------------- *)

let test_deadline_blow_cancels () =
  with_clean_token @@ fun () ->
  with_faults "deadline:blow" (fun () ->
      Alcotest.(check bool) "cancelled" true (Deadline.is_cancelled ());
      match Deadline.chunk_checkpoint 0 with
      | () -> Alcotest.fail "checkpoint passed a blown deadline"
      | exception Deadline.Cancelled Deadline.Deadline -> ()
      | exception Deadline.Cancelled _ -> Alcotest.fail "wrong reason")

let test_armed_deadline_expires () =
  with_clean_token @@ fun () ->
  Deadline.arm_seconds 0.001;
  Unix.sleepf 0.01;
  Alcotest.(check bool) "expired" true (Deadline.is_cancelled ());
  match Deadline.cancelled () with
  | Some Deadline.Deadline -> ()
  | _ -> Alcotest.fail "expected a deadline cancellation"

let test_scoped_deadline_expires_locally () =
  with_clean_token @@ fun () ->
  (match
     Deadline.with_scoped ~seconds:0.005 (fun () ->
         let stop = Unix.gettimeofday () +. 2.0 in
         while Unix.gettimeofday () < stop do
           Unix.sleepf 0.001;
           Deadline.raise_if_cancelled ()
         done;
         "finished")
   with
  | Error Deadline.Deadline -> ()
  | Error _ -> Alcotest.fail "wrong scoped reason"
  | Ok _ -> Alcotest.fail "scoped deadline never fired");
  (* the process-wide token must be untouched: sibling workers live on *)
  Alcotest.(check bool) "global token untouched" false
    (Deadline.is_cancelled ())

let test_scoped_deadline_ok_passthrough () =
  with_clean_token @@ fun () ->
  match Deadline.with_scoped ~seconds:60.0 (fun () -> 42) with
  | Ok n -> Alcotest.(check int) "value through" 42 n
  | Error _ -> Alcotest.fail "an idle scope expired"

let test_scoped_deadline_nested_tightens () =
  with_clean_token @@ fun () ->
  match
    Deadline.with_scoped ~seconds:0.005 (fun () ->
        (* the inner scope asks for more time than the outer has left;
           the outer bound must win *)
        Deadline.with_scoped ~seconds:60.0 (fun () ->
            let stop = Unix.gettimeofday () +. 2.0 in
            while Unix.gettimeofday () < stop do
              Unix.sleepf 0.001;
              Deadline.raise_if_cancelled ()
            done))
  with
  | Error Deadline.Deadline -> ()
  | Error _ -> Alcotest.fail "wrong reason"
  | Ok (Error Deadline.Deadline) -> ()
  | Ok (Error _) -> Alcotest.fail "wrong inner reason"
  | Ok (Ok ()) -> Alcotest.fail "nested scope outlived its parent"

let test_scoped_deadline_global_cancel_wins () =
  with_clean_token @@ fun () ->
  match
    Deadline.with_scoped ~seconds:60.0 (fun () ->
        Deadline.cancel Deadline.Sigterm;
        Deadline.raise_if_cancelled ();
        "unreachable")
  with
  | exception Deadline.Cancelled Deadline.Sigterm ->
      (* the process-wide reason re-raises through the scope untouched *)
      ()
  | Ok _ | Error _ -> Alcotest.fail "global cancellation was swallowed"

let test_exit_codes () =
  Alcotest.(check int) "deadline" 3 (Deadline.exit_code Deadline.Deadline);
  Alcotest.(check int) "sigint" 130 (Deadline.exit_code Deadline.Sigint);
  Alcotest.(check int) "sigterm" 143 (Deadline.exit_code Deadline.Sigterm);
  Alcotest.(check string) "name" "deadline"
    (Deadline.reason_name Deadline.Deadline)

let test_kill_chunk_is_one_shot () =
  with_clean_token @@ fun () ->
  with_faults "kill:chunk1" (fun () ->
      Alcotest.(check bool) "wrong chunk" false (Faultkit.kill_chunk 0);
      Alcotest.(check bool) "fires" true (Faultkit.kill_chunk 1);
      Alcotest.(check bool) "one-shot" false (Faultkit.kill_chunk 1))

let calib = Ibmq16.calibration ~day:0 ()

let compiled_bv4 =
  lazy
    (Compile.run
       ~config:(Config.make (Config.R_smt_star 0.5))
       ~calib (Benchmarks.by_name "BV4").Benchmarks.circuit)

let with_pool size f =
  let pool = Pool.create ~size () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

(* kill:chunk<N> behaves like a SIGTERM arriving at chunk N's
   checkpoint: the estimate is abandoned with [Cancelled Sigterm], at
   every pool size (0 = sequential, 1 = degenerate pool, 4 = parallel
   workers). *)
let test_kill_chunk_cancels size () =
  let runner = Experiments.runner_of (Lazy.force compiled_bv4) in
  with_clean_token @@ fun () ->
  with_pool size @@ fun pool ->
  with_faults "kill:chunk3" (fun () ->
      match Runner.success_rate ~trials:2048 ~pool ~seed:5 runner with
      | (_ : float) -> Alcotest.fail "kill:chunk3 did not cancel"
      | exception Deadline.Cancelled Deadline.Sigterm -> ()
      | exception Deadline.Cancelled _ -> Alcotest.fail "wrong reason")

(* The tentpole contract: kill mid-sweep, resume from the journal, and
   the final numbers are bit-identical to a never-interrupted run with
   the same seed — for every pool size. *)
let test_kill_resume_bit_identical size () =
  let r = Lazy.force compiled_bv4 in
  let trials = 2048 and seed = 99 in
  let root = fresh_dir () in
  with_clean_token @@ fun () ->
  with_pool size @@ fun pool ->
  let clean =
    Runner.success_rate ~trials ~pool ~seed (Experiments.runner_of r)
  in
  let small_clean =
    Runner.success_rate ~trials:512 ~pool ~seed (Experiments.runner_of r)
  in
  (* run 1: the 512-trial cell completes and is journalled; the
     2048-trial cell is killed at chunk 3 *)
  let run1 = Run.start ~root ~run_id:"kr" ~identity () in
  Run.install run1;
  Fun.protect ~finally:Run.uninstall (fun () ->
      let first =
        Experiments.checkpointed_success_rate ~trials:512 ~seed ~pool r
      in
      Alcotest.(check (float 0.0)) "journalled cell" small_clean first;
      with_faults "kill:chunk3" (fun () ->
          match Experiments.checkpointed_success_rate ~trials ~seed ~pool r with
          | (_ : float) -> Alcotest.fail "kill:chunk3 did not cancel"
          | exception Deadline.Cancelled _ -> ());
      Run.finish run1 ~status:"interrupted:sigterm");
  Deadline.reset ();
  (* run 2: resume — the 512 cell replays, only the 2048 cell computes *)
  match Run.resume ~root ~run_id:"kr" ~identity ~force:false () with
  | Error msg -> Alcotest.fail msg
  | Ok run2 ->
      Run.install run2;
      Fun.protect ~finally:Run.uninstall (fun () ->
          let replayed =
            Experiments.checkpointed_success_rate ~trials:512 ~seed ~pool r
          in
          let resumed =
            Experiments.checkpointed_success_rate ~trials ~seed ~pool r
          in
          Alcotest.(check (float 0.0)) "replayed bit-identical" small_clean
            replayed;
          Alcotest.(check (float 0.0)) "resumed bit-identical" clean resumed;
          let cached, computed = Run.cache_stats run2 in
          Alcotest.(check int) "one cell replayed" 1 cached;
          Alcotest.(check int) "one cell computed" 1 computed;
          Run.finish run2 ~status:"completed")

let test_sim_digest_sensitivity () =
  let r = Lazy.force compiled_bv4 in
  let d = Experiments.sim_digest r ~trials:1024 ~seed:1 in
  Alcotest.(check string) "deterministic" d
    (Experiments.sim_digest r ~trials:1024 ~seed:1);
  Alcotest.(check bool) "trials change the key" true
    (d <> Experiments.sim_digest r ~trials:2048 ~seed:1);
  Alcotest.(check bool) "seed changes the key" true
    (d <> Experiments.sim_digest r ~trials:1024 ~seed:2)

let suite =
  let qt name f = Alcotest.test_case name `Quick f in
  [
    qt "mkdir_p creates parents, tolerates existing" test_mkdir_p;
    qt "atomic write: roundtrip, overwrite, no temp residue"
      test_atomic_write_roundtrip;
    qt "write_json renders one document" test_write_json;
    qt "parse_duration accepts human durations" test_parse_duration_ok;
    qt "parse_duration rejects garbage" test_parse_duration_rejects;
    qt "journal roundtrips records" test_journal_roundtrip;
    qt "journal drops a torn tail, truncate repairs" test_journal_torn_tail_dropped;
    qt "journal truncate_to at exact record boundaries"
      test_journal_truncate_at_boundary;
    qt "journal refuses interior corruption" test_journal_corrupt_middle_is_fatal;
    qt "journal tolerates blank lines" test_journal_blank_lines_tolerated;
    qt "run cells replay on resume (incl. integral floats)"
      test_run_cells_replay_on_resume;
    qt "run identity mismatch refused unless forced"
      test_run_identity_mismatch_refused;
    qt "resume of a missing run is an error" test_run_resume_missing_refused;
    qt "completed figures replay their tables" test_run_figure_replay;
    qt "deadline:blow cancels at the first checkpoint" test_deadline_blow_cancels;
    qt "an armed deadline expires" test_armed_deadline_expires;
    qt "scoped deadline expires without flipping the token"
      test_scoped_deadline_expires_locally;
    qt "scoped deadline passes values through" test_scoped_deadline_ok_passthrough;
    qt "nested scopes tighten" test_scoped_deadline_nested_tightens;
    qt "global cancel re-raises through a scope"
      test_scoped_deadline_global_cancel_wins;
    qt "exit codes follow convention" test_exit_codes;
    qt "kill:chunk is one-shot" test_kill_chunk_is_one_shot;
    qt "kill:chunk cancels (pool 0)" (test_kill_chunk_cancels 0);
    qt "kill:chunk cancels (pool 1)" (test_kill_chunk_cancels 1);
    qt "kill:chunk cancels (pool 4)" (test_kill_chunk_cancels 4);
    qt "kill+resume bit-identical (pool 0)" (test_kill_resume_bit_identical 0);
    qt "kill+resume bit-identical (pool 1)" (test_kill_resume_bit_identical 1);
    qt "kill+resume bit-identical (pool 4)" (test_kill_resume_bit_identical 4);
    qt "sim_digest pins trials and seed" test_sim_digest_sensitivity;
  ]
