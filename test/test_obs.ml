(* Tests for Nisq_obs: JSON round-trips, span nesting/balance, metric
   determinism across pool sizes, Chrome trace shape, and the no-allocation
   guarantee of the disabled path.

   The telemetry registry and span store are process-global, so every test
   here restores the disabled/empty state on exit — other suites must not
   observe stray spans or counts. *)

module Json = Nisq_obs.Json
module Metrics = Nisq_obs.Metrics
module Trace = Nisq_obs.Trace
module Pool = Nisq_util.Pool
module Config = Nisq_compiler.Config
module Compile = Nisq_compiler.Compile
module Ibmq16 = Nisq_device.Ibmq16
module Benchmarks = Nisq_bench.Benchmarks
module Experiments = Nisq_bench.Experiments
module Runner = Nisq_sim.Runner

let obs_off () =
  Metrics.set_enabled false;
  Trace.set_enabled false;
  Metrics.reset ();
  Trace.reset ()

let with_obs f =
  obs_off ();
  Metrics.set_enabled true;
  Trace.set_enabled true;
  Fun.protect ~finally:obs_off f

(* ------------------------------- JSON ------------------------------- *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("null", Json.Null);
        ("bools", Json.List [ Json.Bool true; Json.Bool false ]);
        ("int", Json.Int (-42));
        ("float", Json.Float 3.140625);
        ("tiny", Json.Float 1.25e-9);
        ("str", Json.String "line\nquote\" tab\tback\\ end");
        ("empty_list", Json.List []);
        ("empty_obj", Json.Obj []);
        ("nest", Json.Obj [ ("xs", Json.List [ Json.Int 1; Json.Int 2 ]) ]);
      ]
  in
  match Json.of_string (Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "round-trips" true (v = v')
  | Error msg -> Alcotest.failf "reparse failed: %s" msg

let test_json_float_roundtrip () =
  List.iter
    (fun f ->
      let s = Json.to_string (Json.Float f) in
      match Json.of_string s with
      | Ok (Json.Float f') ->
          Alcotest.(check (float 0.0)) ("float " ^ s) f f'
      | Ok (Json.Int i) ->
          Alcotest.(check (float 0.0)) ("int-coerced " ^ s) f (Float.of_int i)
      | Ok _ -> Alcotest.failf "%s parsed to a non-number" s
      | Error msg -> Alcotest.failf "%s failed: %s" s msg)
    [ 0.5; -1.75; 1e300; 4.9e-324; 0.1; Float.pi ]

let test_json_escapes () =
  (match Json.of_string {|"Aé中😀"|} with
  | Ok (Json.String s) ->
      Alcotest.(check string) "unicode escapes" "A\xc3\xa9\xe4\xb8\xad\xf0\x9f\x98\x80" s
  | Ok _ -> Alcotest.fail "parsed to non-string"
  | Error msg -> Alcotest.failf "failed: %s" msg);
  (* lone surrogate must be rejected *)
  match Json.of_string {|"\ud800"|} with
  | Ok _ -> Alcotest.fail "lone surrogate accepted"
  | Error _ -> ()

let test_json_rejects_garbage () =
  List.iter
    (fun src ->
      match Json.of_string src with
      | Ok _ -> Alcotest.failf "accepted %S" src
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "1 2"; "nul"; "\"unterminated"; "01" ]

(* ------------------------------ spans ------------------------------- *)

let test_spans_nest_and_balance () =
  with_obs @@ fun () ->
  Trace.with_span "outer" (fun () ->
      Trace.with_span "inner" (fun () -> ()));
  (try
     Trace.with_span "boom" (fun () ->
         Trace.with_span "deep" (fun () -> failwith "kaboom"))
   with Failure _ -> ());
  Trace.with_span "after" (fun () -> ());
  let spans = Trace.spans () in
  let depth_of name =
    match List.find_opt (fun (s : Trace.span) -> s.name = name) spans with
    | Some s -> s.depth
    | None -> Alcotest.failf "span %s not recorded" name
  in
  Alcotest.(check int) "five spans" 5 (List.length spans);
  Alcotest.(check int) "outer depth" 1 (depth_of "outer");
  Alcotest.(check int) "inner depth" 2 (depth_of "inner");
  Alcotest.(check int) "boom depth" 1 (depth_of "boom");
  Alcotest.(check int) "deep depth" 2 (depth_of "deep");
  (* the depth counter recovered from the exception *)
  Alcotest.(check int) "after depth" 1 (depth_of "after")

let test_span_attrs_and_value () =
  with_obs @@ fun () ->
  let v = Trace.with_span "calc" ~attrs:[ ("k", "v") ] (fun () -> 41 + 1) in
  Alcotest.(check int) "thunk value" 42 v;
  match Trace.spans () with
  | [ s ] ->
      Alcotest.(check string) "name" "calc" s.Trace.name;
      Alcotest.(check (list (pair string string))) "attrs" [ ("k", "v") ]
        s.Trace.attrs;
      Alcotest.(check bool) "duration nonnegative" true (s.Trace.dur_ns >= 0L)
  | spans -> Alcotest.failf "expected 1 span, got %d" (List.length spans)

let test_chrome_trace_roundtrip () =
  with_obs @@ fun () ->
  Trace.with_span "a" (fun () -> Trace.with_span "b" (fun () -> ()));
  let doc = Trace.export_json () in
  let reparsed =
    match Json.of_string (Json.to_string doc) with
    | Ok v -> v
    | Error msg -> Alcotest.failf "trace JSON invalid: %s" msg
  in
  match Json.member "traceEvents" reparsed with
  | Some (Json.List events) ->
      Alcotest.(check int) "two events" 2 (List.length events);
      List.iter
        (fun e ->
          (match Json.member "ph" e with
          | Some (Json.String "X") -> ()
          | _ -> Alcotest.fail "ph is not \"X\"");
          (match Json.member "ts" e with
          | Some (Json.Float ts) ->
              Alcotest.(check bool) "ts rebased to >= 0" true (ts >= 0.0)
          | Some (Json.Int ts) ->
              Alcotest.(check bool) "ts rebased to >= 0" true (ts >= 0)
          | _ -> Alcotest.fail "ts missing");
          match Json.member "name" e with
          | Some (Json.String ("a" | "b")) -> ()
          | _ -> Alcotest.fail "unexpected event name")
        events
  | _ -> Alcotest.fail "traceEvents missing"

(* ----------------------------- metrics ------------------------------ *)

let test_metrics_basics () =
  with_obs @@ fun () ->
  let c = Metrics.counter "test.counter" in
  Metrics.incr c;
  Metrics.add c 4;
  Metrics.add c 0;
  Alcotest.(check int) "counter" 5 (Metrics.value c);
  let g = Metrics.gauge "test.gauge" in
  Metrics.set g 2.5;
  Metrics.gauge_add g 0.5;
  Alcotest.(check (float 1e-12)) "gauge" 3.0 (Metrics.gauge_value g);
  let h = Metrics.histogram "test.histo" ~bounds:[| 1.0; 10.0 |] in
  List.iter (Metrics.observe h) [ 0.5; 1.0; 5.0; 100.0 ];
  Alcotest.(check int) "histogram count" 4 (Metrics.histogram_count h);
  Alcotest.(check (float 1e-9)) "histogram sum" 106.5 (Metrics.histogram_sum h);
  (* same name returns the same cell *)
  Metrics.incr (Metrics.counter "test.counter");
  Alcotest.(check int) "idempotent registration" 6 (Metrics.value c);
  (* dump parses back *)
  match Json.of_string (Json.to_string (Metrics.dump_json ())) with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "dump_json invalid: %s" msg

let test_disabled_updates_are_noops () =
  obs_off ();
  let c = Metrics.counter "test.disabled.counter" in
  Metrics.incr c;
  Metrics.add c 100;
  Alcotest.(check int) "counter unchanged" 0 (Metrics.value c);
  Trace.with_span "invisible" (fun () -> ());
  Alcotest.(check int) "no spans" 0 (List.length (Trace.spans ()))

(* The workload run once per pool size; counter totals must match. The
   calibration cache is process-global, so it is cleared per run — a
   warm cache would (correctly) report hits where the cold run reported
   misses. *)
let counter_totals_with_pool_size size =
  obs_off ();
  Metrics.set_enabled true;
  Nisq_device.Calib_cache.clear ();
  let pool = Pool.create ~size () in
  Fun.protect
    ~finally:(fun () ->
      Pool.shutdown pool;
      obs_off ())
    (fun () ->
      let calib = Ibmq16.calibration ~day:0 () in
      let bv4 = (Benchmarks.by_name "BV4").Benchmarks.circuit in
      let r =
        Compile.run ~config:(Config.make (Config.R_smt_star 0.5)) ~calib bv4
      in
      let runner = Experiments.runner_of r in
      let _rate = Runner.success_rate ~trials:1024 ~pool ~seed:7 runner in
      Metrics.counter_values ())

let test_counters_pool_size_independent () =
  let base = counter_totals_with_pool_size 0 in
  Alcotest.(check bool) "workload counted something" true
    (List.exists (fun (_, v) -> v > 0) base);
  List.iter
    (fun size ->
      let totals = counter_totals_with_pool_size size in
      Alcotest.(check (list (pair string int)))
        (Printf.sprintf "pool size %d matches sequential" size)
        base totals)
    [ 1; 4 ]

let test_counters_parallel_updates () =
  with_obs @@ fun () ->
  let c = Metrics.counter "test.parallel.counter" in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 10_000 do
              Metrics.incr c
            done))
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "no lost updates" 40_000 (Metrics.value c)

(* -------------------------- allocation ------------------------------ *)

(* Top-level so the benchmark loop closes over nothing. *)
let nop () = Sys.opaque_identity 0

let minor_words_for f =
  let before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    ignore (Sys.opaque_identity (f ()))
  done;
  Gc.minor_words () -. before

let test_disabled_path_no_alloc () =
  obs_off ();
  let c = Metrics.counter "test.alloc.counter" in
  let baseline = minor_words_for nop in
  let span_words =
    minor_words_for (fun () -> Trace.with_span "t" nop)
  in
  let counter_words =
    minor_words_for (fun () ->
        Metrics.incr c;
        0)
  in
  (* Identical allocation behaviour to the no-op baseline, modulo a tiny
     slack for GC bookkeeping noise. *)
  let slack = 256.0 in
  Alcotest.(check bool)
    (Printf.sprintf "span path allocates nothing (%.0f vs %.0f baseline)"
       span_words baseline)
    true
    (span_words -. baseline <= slack);
  Alcotest.(check bool)
    (Printf.sprintf "counter path allocates nothing (%.0f vs %.0f baseline)"
       counter_words baseline)
    true
    (counter_words -. baseline <= slack)

let suite =
  [
    Alcotest.test_case "json value round-trips" `Quick test_json_roundtrip;
    Alcotest.test_case "json floats round-trip" `Quick
      test_json_float_roundtrip;
    Alcotest.test_case "json unicode escapes" `Quick test_json_escapes;
    Alcotest.test_case "json rejects malformed input" `Quick
      test_json_rejects_garbage;
    Alcotest.test_case "spans nest and rebalance under exceptions" `Quick
      test_spans_nest_and_balance;
    Alcotest.test_case "span carries attrs and thunk value" `Quick
      test_span_attrs_and_value;
    Alcotest.test_case "chrome trace round-trips through the parser" `Quick
      test_chrome_trace_roundtrip;
    Alcotest.test_case "metrics counters, gauges, histograms" `Quick
      test_metrics_basics;
    Alcotest.test_case "disabled telemetry is a no-op" `Quick
      test_disabled_updates_are_noops;
    Alcotest.test_case "counter totals independent of pool size" `Slow
      test_counters_pool_size_independent;
    Alcotest.test_case "atomic counters survive parallel updates" `Quick
      test_counters_parallel_updates;
    Alcotest.test_case "disabled path allocates nothing" `Quick
      test_disabled_path_no_alloc;
  ]
