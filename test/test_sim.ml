(* Tests for Nisq_sim: State and Runner. *)

module Gate = Nisq_circuit.Gate
module State = Nisq_sim.State
module Runner = Nisq_sim.Runner
module Calibration = Nisq_device.Calibration
module Ibmq16 = Nisq_device.Ibmq16
module Rng = Nisq_util.Rng
module Pool = Nisq_util.Pool

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------- State ----------------------------- *)

let test_initial_state () =
  let st = State.create 2 in
  let re, im = State.amplitude st 0 in
  check_float "amp(00) re" 1.0 re;
  check_float "amp(00) im" 0.0 im;
  check_float "norm" 1.0 (State.norm st)

let test_x_flips () =
  let st = State.create 1 in
  State.apply_gate st Gate.X [| 0 |];
  check_float "prob 1" 1.0 (State.prob_one st 0)

let test_h_superposition () =
  let st = State.create 1 in
  State.apply_gate st Gate.H [| 0 |];
  check_float "prob half" 0.5 (State.prob_one st 0)

let test_h_squared_identity () =
  let st = State.create 1 in
  State.apply_gate st Gate.H [| 0 |];
  State.apply_gate st Gate.H [| 0 |];
  check_float "back to |0>" 0.0 (State.prob_one st 0)

let test_bell_state () =
  let st = State.create 2 in
  State.apply_gate st Gate.H [| 0 |];
  State.apply_gate st Gate.Cnot [| 0; 1 |];
  let p = State.probabilities st in
  check_float "p(00)" 0.5 p.(0);
  check_float "p(11)" 0.5 p.(3);
  check_float "p(01)" 0.0 p.(1);
  check_float "p(10)" 0.0 p.(2)

let test_ghz_state () =
  let st = State.create 3 in
  State.apply_gate st Gate.H [| 0 |];
  State.apply_gate st Gate.Cnot [| 0; 1 |];
  State.apply_gate st Gate.Cnot [| 1; 2 |];
  let p = State.probabilities st in
  check_float "p(000)" 0.5 p.(0);
  check_float "p(111)" 0.5 p.(7)

let test_cnot_control_zero_inert () =
  let st = State.create 2 in
  State.apply_gate st Gate.Cnot [| 0; 1 |];
  check_float "target untouched" 0.0 (State.prob_one st 1)

let test_swap_gate () =
  let st = State.create 2 in
  State.apply_gate st Gate.X [| 0 |];
  State.apply_gate st Gate.Swap [| 0; 1 |];
  check_float "q0 now 0" 0.0 (State.prob_one st 0);
  check_float "q1 now 1" 1.0 (State.prob_one st 1)

let test_z_phase_invisible_in_z_basis () =
  let st = State.create 1 in
  State.apply_gate st Gate.X [| 0 |];
  State.apply_gate st Gate.Z [| 0 |];
  check_float "still 1" 1.0 (State.prob_one st 0)

let test_z_between_h_flips () =
  (* H Z H = X: dephasing mid-superposition corrupts the answer — this is
     exactly why the T2 noise channel matters for BV-like circuits *)
  let st = State.create 1 in
  State.apply_gate st Gate.H [| 0 |];
  State.apply_gate st Gate.Z [| 0 |];
  State.apply_gate st Gate.H [| 0 |];
  check_float "flipped to 1" 1.0 (State.prob_one st 0)

let test_s_t_composition () =
  (* T^2 = S; S^2 = Z *)
  let a = State.create 1 in
  State.apply_gate a Gate.H [| 0 |];
  State.apply_gate a Gate.T [| 0 |];
  State.apply_gate a Gate.T [| 0 |];
  let b = State.create 1 in
  State.apply_gate b Gate.H [| 0 |];
  State.apply_gate b Gate.S [| 0 |];
  check_float "T^2 = S" 1.0 (State.fidelity a b)

let test_sdg_inverts_s () =
  let st = State.create 1 in
  State.apply_gate st Gate.H [| 0 |];
  State.apply_gate st Gate.S [| 0 |];
  State.apply_gate st Gate.Sdg [| 0 |];
  let plus = State.create 1 in
  State.apply_gate plus Gate.H [| 0 |];
  check_float "identity" 1.0 (State.fidelity st plus)

let test_rz_matches_tdg () =
  let a = State.create 1 in
  State.apply_gate a Gate.H [| 0 |];
  State.apply_gate a Gate.Tdg [| 0 |];
  let b = State.create 1 in
  State.apply_gate b Gate.H [| 0 |];
  State.apply_gate b (Gate.Rz (-.Float.pi /. 4.0)) [| 0 |];
  check_float "Tdg ~ Rz(-pi/4) up to phase" 1.0 (State.fidelity a b)

let test_rx_pi_is_x_up_to_phase () =
  let a = State.create 1 in
  State.apply_gate a (Gate.Rx Float.pi) [| 0 |];
  let b = State.create 1 in
  State.apply_gate b Gate.X [| 0 |];
  check_float "Rx(pi) ~ X" 1.0 (State.fidelity a b)

let test_ry_rotation () =
  let st = State.create 1 in
  State.apply_gate st (Gate.Ry (Float.pi /. 2.0)) [| 0 |];
  check_float "half rotation" 0.5 (State.prob_one st 0)

let test_unitarity_preserves_norm () =
  let rng = Rng.create 5 in
  let st = State.create 4 in
  let kinds =
    [| Gate.H; Gate.X; Gate.Y; Gate.Z; Gate.S; Gate.T; Gate.Rz 0.3; Gate.Rx 0.7 |]
  in
  for _ = 1 to 200 do
    if Rng.int rng 4 = 0 then begin
      let c = Rng.int rng 4 in
      let t = (c + 1 + Rng.int rng 3) mod 4 in
      State.apply_gate st Gate.Cnot [| c; t |]
    end
    else State.apply_gate st (Rng.choose rng kinds) [| Rng.int rng 4 |]
  done;
  check_float "norm preserved" 1.0 (State.norm st)

let test_collapse () =
  let st = State.create 2 in
  State.apply_gate st Gate.H [| 0 |];
  State.apply_gate st Gate.Cnot [| 0; 1 |];
  State.collapse st 0 true;
  check_float "q0 is 1" 1.0 (State.prob_one st 0);
  check_float "q1 follows (entangled)" 1.0 (State.prob_one st 1);
  check_float "renormalized" 1.0 (State.norm st)

let test_collapse_zero_probability_renormalizes () =
  (* |0⟩ has zero probability of reading 1: the request degrades to the
     opposite outcome (counted under resilience.sim.renorm) instead of
     raising, so a multi-thousand-trial run survives float underflow. *)
  let renorm = Nisq_obs.Metrics.counter "resilience.sim.renorm" in
  let before = Nisq_obs.Metrics.value renorm in
  let was_enabled = Nisq_obs.Metrics.enabled () in
  Nisq_obs.Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Nisq_obs.Metrics.set_enabled was_enabled)
  @@ fun () ->
  let st = State.create 1 in
  let realized = State.collapse_outcome st 0 true in
  Alcotest.(check bool) "degraded to 0" false realized;
  check_float "q0 stays 0" 0.0 (State.prob_one st 0);
  check_float "norm intact" 1.0 (State.norm st);
  Alcotest.(check bool) "renorm counted" true
    (Nisq_obs.Metrics.value renorm > before)

let test_measure_statistics () =
  let rng = Rng.create 6 in
  let ones = ref 0 in
  for _ = 1 to 2000 do
    let st = State.create 1 in
    State.apply_gate st Gate.H [| 0 |];
    if State.measure st rng 0 then incr ones
  done;
  Alcotest.(check bool) "about half" true (!ones > 880 && !ones < 1120)

let test_sample_deterministic_state () =
  let st = State.create 3 in
  State.apply_gate st Gate.X [| 1 |];
  let rng = Rng.create 7 in
  for _ = 1 to 20 do
    Alcotest.(check int) "always 010" 2 (State.sample st rng)
  done

let test_create_bounds () =
  Alcotest.(check bool) "raises on 0" true
    (try ignore (State.create 0); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "raises on 25" true
    (try ignore (State.create 25); false with Invalid_argument _ -> true)

(* ------------------------------- Runner ---------------------------- *)

let calib = Ibmq16.calibration ~day:0 ()

(* Simple job: X on hw qubit 2, measure it; answer should be 1. *)
let x_job () =
  Runner.prepare ~calib
    ~ops:
      [|
        { Runner.kind = Gate.X; qubits = [| 2 |]; start = 0; duration = 1 };
        { Runner.kind = Gate.Measure; qubits = [| 2 |]; start = 1; duration = 4 };
      |]
    ~readout:[ (0, 2) ]

let test_runner_ideal_answer () =
  let job = x_job () in
  Alcotest.(check int) "answer 1" 1 (Runner.ideal_answer job);
  check_float "deterministic" 1.0 (Runner.ideal_answer_probability job)

let test_runner_success_rate_bounds () =
  let job = x_job () in
  let s = Runner.success_rate ~trials:2000 ~seed:1 job in
  (* limited by readout + single-gate error + tiny dephasing: well above 0.8 *)
  Alcotest.(check bool) "high but not perfect" true (s > 0.8 && s < 1.0)

let test_runner_deterministic_in_seed () =
  let job = x_job () in
  check_float "same seed same rate"
    (Runner.success_rate ~trials:500 ~seed:42 job)
    (Runner.success_rate ~trials:500 ~seed:42 job)

let test_runner_noiseless_calibration_perfect () =
  let perfect =
    Calibration.uniform ~cnot_error:0.0 ~readout_error:0.0 ~single_error:0.0
      ~t2_us:1e9 Ibmq16.topology
  in
  let job =
    Runner.prepare ~calib:perfect
      ~ops:
        [|
          { Runner.kind = Gate.H; qubits = [| 0 |]; start = 0; duration = 1 };
          { Runner.kind = Gate.Cnot; qubits = [| 0; 1 |]; start = 1; duration = 4 };
          { Runner.kind = Gate.Cnot; qubits = [| 0; 1 |]; start = 5; duration = 4 };
          { Runner.kind = Gate.H; qubits = [| 0 |]; start = 9; duration = 1 };
          { Runner.kind = Gate.Measure; qubits = [| 0 |]; start = 10; duration = 4 };
          { Runner.kind = Gate.Measure; qubits = [| 1 |]; start = 10; duration = 4 };
        |]
      ~readout:[ (0, 0); (1, 1) ]
  in
  check_float "perfect machine" 1.0 (Runner.success_rate ~trials:500 ~seed:3 job)

let test_runner_bigger_errors_lower_success () =
  let mk err =
    let c = Calibration.uniform ~cnot_error:err ~readout_error:0.02 Ibmq16.topology in
    (* deterministic circuit: |11> via X then CNOT *)
    Runner.prepare ~calib:c
      ~ops:
        [|
          { Runner.kind = Gate.X; qubits = [| 0 |]; start = 0; duration = 1 };
          { Runner.kind = Gate.Cnot; qubits = [| 0; 1 |]; start = 1; duration = 4 };
          { Runner.kind = Gate.Cnot; qubits = [| 0; 1 |]; start = 5; duration = 4 };
          { Runner.kind = Gate.Cnot; qubits = [| 0; 1 |]; start = 9; duration = 4 };
          { Runner.kind = Gate.Measure; qubits = [| 0 |]; start = 13; duration = 4 };
          { Runner.kind = Gate.Measure; qubits = [| 1 |]; start = 13; duration = 4 };
        |]
      ~readout:[ (0, 0); (1, 1) ]
  in
  let low = Runner.success_rate ~trials:3000 ~seed:4 (mk 0.01) in
  let high = Runner.success_rate ~trials:3000 ~seed:4 (mk 0.25) in
  Alcotest.(check bool) "noise hurts" true (low > high +. 0.1)

let test_runner_dephasing_hurts_superposition () =
  (* H ... long idle ... H on a short-T2 qubit: dephasing flips the answer
     with probability up to 1/2. *)
  let n = 16 in
  let t2 = Array.make n 1.0 (* 1 us: brutal *) in
  let cnot_error = Array.make_matrix n n Float.nan in
  let cnot_duration = Array.make_matrix n n 0 in
  List.iter
    (fun (a, b) ->
      cnot_error.(a).(b) <- 0.0;
      cnot_error.(b).(a) <- 0.0;
      cnot_duration.(a).(b) <- 4;
      cnot_duration.(b).(a) <- 4)
    (Nisq_device.Topology.edges Ibmq16.topology);
  let harsh =
    Calibration.create ~topology:Ibmq16.topology ~day:0 ~t1_us:(Array.make n 1.0)
      ~t2_us:t2 ~readout_error:(Array.make n 0.0)
      ~single_error:(Array.make n 0.0) ~cnot_error ~cnot_duration
  in
  let job =
    Runner.prepare ~calib:harsh
      ~ops:
        [|
          { Runner.kind = Gate.H; qubits = [| 0 |]; start = 0; duration = 1 };
          (* 500 slots of idling = 40 us >> T2 *)
          { Runner.kind = Gate.H; qubits = [| 0 |]; start = 500; duration = 1 };
          { Runner.kind = Gate.Measure; qubits = [| 0 |]; start = 501; duration = 4 };
        |]
      ~readout:[ (0, 0) ]
  in
  let s = Runner.success_rate ~trials:4000 ~seed:5 job in
  Alcotest.(check bool) "dephased toward coin flip" true (s < 0.6)

let test_runner_amplitude_damping_decays_excited_state () =
  (* |1> idling far beyond T1 must relax to |0>: prepare X, idle, measure;
     with T2 huge, only T1 can corrupt the answer. *)
  let n = 16 in
  let cnot_error = Array.make_matrix n n Float.nan in
  let cnot_duration = Array.make_matrix n n 0 in
  List.iter
    (fun (a, b) ->
      cnot_error.(a).(b) <- 0.0;
      cnot_error.(b).(a) <- 0.0;
      cnot_duration.(a).(b) <- 4;
      cnot_duration.(b).(a) <- 4)
    (Nisq_device.Topology.edges Ibmq16.topology);
  let harsh =
    Calibration.create ~topology:Ibmq16.topology ~day:0
      ~t1_us:(Array.make n 1.0) (* 1 us T1 *)
      ~t2_us:(Array.make n 1e9) ~readout_error:(Array.make n 0.0)
      ~single_error:(Array.make n 0.0) ~cnot_error ~cnot_duration
  in
  let job =
    Runner.prepare ~calib:harsh
      ~ops:
        [|
          { Runner.kind = Gate.X; qubits = [| 0 |]; start = 0; duration = 1 };
          (* 1250 slots = 100 us >> T1: relaxation nearly certain *)
          { Runner.kind = Gate.Measure; qubits = [| 0 |]; start = 1250; duration = 4 };
        |]
      ~readout:[ (0, 0) ]
  in
  let s = Runner.success_rate ~trials:2000 ~seed:11 job in
  Alcotest.(check bool) "decayed to ground" true (s < 0.05)

let test_runner_readout_flip_rate () =
  (* perfect gates, 20% readout error: success ~ 0.8 *)
  let c =
    Calibration.uniform ~cnot_error:0.0 ~readout_error:0.2 ~single_error:0.0
      ~t2_us:1e9 Ibmq16.topology
  in
  let job =
    Runner.prepare ~calib:c
      ~ops:
        [| { Runner.kind = Gate.Measure; qubits = [| 0 |]; start = 0; duration = 4 } |]
      ~readout:[ (0, 0) ]
  in
  let s = Runner.success_rate ~trials:5000 ~seed:6 job in
  Alcotest.(check bool) "about 0.8" true (Float.abs (s -. 0.8) < 0.03)

let test_runner_rejects_unordered_ops () =
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (Runner.prepare ~calib
            ~ops:
              [|
                { Runner.kind = Gate.H; qubits = [| 0 |]; start = 5; duration = 1 };
                { Runner.kind = Gate.H; qubits = [| 0 |]; start = 0; duration = 1 };
              |]
            ~readout:[]);
       false
     with Invalid_argument _ -> true)

let test_runner_rejects_use_after_measure () =
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (Runner.prepare ~calib
            ~ops:
              [|
                { Runner.kind = Gate.Measure; qubits = [| 0 |]; start = 0; duration = 4 };
                { Runner.kind = Gate.X; qubits = [| 0 |]; start = 4; duration = 1 };
              |]
            ~readout:[ (0, 0) ]);
       false
     with Invalid_argument _ -> true)

let test_runner_distribution_sums_to_trials () =
  let job = x_job () in
  let d = Runner.distribution ~trials:500 ~seed:7 job in
  Alcotest.(check int) "total" 500 (List.fold_left (fun a (_, c) -> a + c) 0 d)

let paper_runner name =
  let b = Nisq_bench.Benchmarks.by_name name in
  let config =
    Nisq_compiler.Config.make (Nisq_compiler.Config.R_smt_star 0.5)
  in
  let r = Nisq_compiler.Compile.run ~config ~calib b.Nisq_bench.Benchmarks.circuit in
  Nisq_bench.Experiments.runner_of r

let test_runner_pool_matches_seq () =
  (* the determinism contract: the domain-pool estimate is bit-for-bit
     the sequential estimate, for any pool size *)
  let pool = Pool.create ~size:4 () in
  List.iter
    (fun name ->
      let job = paper_runner name in
      let seq = Runner.success_rate_seq ~trials:1111 ~seed:99 job in
      let par = Runner.success_rate ~trials:1111 ~pool ~seed:99 job in
      Alcotest.(check (float 0.0)) (name ^ ": pool = seq, bit-identical") seq par;
      Alcotest.(check (list (pair int int)))
        (name ^ ": distribution pool = seq")
        (Runner.distribution_seq ~trials:777 ~seed:13 job)
        (Runner.distribution ~trials:777 ~pool ~seed:13 job))
    [ "BV4"; "Toffoli" ];
  Pool.shutdown pool

let test_runner_rate_independent_of_pool_size () =
  let job = paper_runner "BV4" in
  let reference = Runner.success_rate_seq ~trials:600 ~seed:5 job in
  List.iter
    (fun size ->
      let pool = Pool.create ~size () in
      Alcotest.(check (float 0.0))
        (Printf.sprintf "size %d matches" size)
        reference
        (Runner.success_rate ~trials:600 ~pool ~seed:5 job);
      Pool.shutdown pool)
    [ 0; 2; 3 ]

let test_sample_only_reachable_states () =
  (* after a long gate sequence the norm drifts by ulps; sample must
     still never return an amplitude-zero basis state *)
  let st = State.create 3 in
  for _ = 1 to 50 do
    State.apply_gate st Gate.H [| 0 |];
    State.apply_gate st Gate.T [| 0 |];
    State.apply_gate st Gate.H [| 0 |]
  done;
  (* qubits 1 and 2 never touched: any index with those bits set has
     exactly zero amplitude *)
  let rng = Rng.create 21 in
  for _ = 1 to 5000 do
    let i = State.sample st rng in
    Alcotest.(check int) "untouched qubits stay 0" 0 (i land 0b110)
  done

let suite =
  [
    ("initial state", `Quick, test_initial_state);
    ("X flips", `Quick, test_x_flips);
    ("H superposition", `Quick, test_h_superposition);
    ("H^2 = I", `Quick, test_h_squared_identity);
    ("bell state", `Quick, test_bell_state);
    ("ghz state", `Quick, test_ghz_state);
    ("cnot inert on |0> control", `Quick, test_cnot_control_zero_inert);
    ("swap gate", `Quick, test_swap_gate);
    ("Z invisible in Z basis", `Quick, test_z_phase_invisible_in_z_basis);
    ("H Z H = X", `Quick, test_z_between_h_flips);
    ("T^2 = S", `Quick, test_s_t_composition);
    ("Sdg inverts S", `Quick, test_sdg_inverts_s);
    ("Tdg matches Rz(-pi/4)", `Quick, test_rz_matches_tdg);
    ("Rx(pi) ~ X", `Quick, test_rx_pi_is_x_up_to_phase);
    ("Ry(pi/2) half rotation", `Quick, test_ry_rotation);
    ("unitarity preserves norm", `Quick, test_unitarity_preserves_norm);
    ("collapse", `Quick, test_collapse);
    ("collapse zero prob renormalizes", `Quick,
     test_collapse_zero_probability_renormalizes);
    ("measure statistics", `Quick, test_measure_statistics);
    ("sample deterministic state", `Quick, test_sample_deterministic_state);
    ("state size bounds", `Quick, test_create_bounds);
    ("runner ideal answer", `Quick, test_runner_ideal_answer);
    ("runner success bounds", `Quick, test_runner_success_rate_bounds);
    ("runner deterministic in seed", `Quick, test_runner_deterministic_in_seed);
    ("runner perfect machine", `Quick, test_runner_noiseless_calibration_perfect);
    ("runner noise monotonicity", `Quick, test_runner_bigger_errors_lower_success);
    ("runner dephasing hurts", `Quick, test_runner_dephasing_hurts_superposition);
    ("runner amplitude damping decays", `Quick, test_runner_amplitude_damping_decays_excited_state);
    ("runner readout flip rate", `Quick, test_runner_readout_flip_rate);
    ("runner rejects unordered ops", `Quick, test_runner_rejects_unordered_ops);
    ("runner rejects use-after-measure", `Quick, test_runner_rejects_use_after_measure);
    ("runner distribution total", `Quick, test_runner_distribution_sums_to_trials);
    ("runner pool matches sequential", `Quick, test_runner_pool_matches_seq);
    ("runner rate independent of pool size", `Quick, test_runner_rate_independent_of_pool_size);
    ("sample only reachable states", `Quick, test_sample_only_reachable_states);
  ]
