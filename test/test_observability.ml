(* Tests for the deep-observability layer: the Prometheus text
   exposition and its quantile estimator, the structured event ledger
   (overflow, drop accounting, export shape — deterministic for any
   pool size), compile explain reports (byte-identity with the
   report-less compile, ESP decomposition arithmetic, solver evidence,
   cache provenance) and the benchwatch regression sentinel.

   Everything here touches process-global observability state, so each
   test restores the disabled/empty default on exit. *)

module Json = Nisq_obs.Json
module Metrics = Nisq_obs.Metrics
module Events = Nisq_obs.Events
module Report = Nisq_obs.Report
module Pool = Nisq_util.Pool
module Parallel = Nisq_solver.Parallel
module Calib_cache = Nisq_device.Calib_cache
module Config = Nisq_compiler.Config
module Compile = Nisq_compiler.Compile
module Ibmq16 = Nisq_device.Ibmq16
module Benchmarks = Nisq_bench.Benchmarks
module Benchwatch = Nisq_bench.Benchwatch

let obs_off () =
  Metrics.set_enabled false;
  Metrics.reset ();
  Events.set_enabled false;
  Events.reset ();
  Events.configure ~capacity:512 ();
  Report.set_enabled false

(* --------------------------- Prometheus ---------------------------- *)

(* Golden scrape of a tiny registry: exact text, so any drift in name
   sanitization, HELP/TYPE lines, bucket cumulativity or float
   rendering shows up as a diff. *)
let test_prom_golden () =
  obs_off ();
  Metrics.set_enabled true;
  Fun.protect ~finally:obs_off @@ fun () ->
  let c = Metrics.counter "prom.test-counter" in
  let g = Metrics.gauge "prom.test.gauge" in
  let h = Metrics.histogram "prom.test.hist" ~bounds:[| 1.0; 2.0 |] in
  Metrics.add c 7;
  Metrics.set g 2.5;
  List.iter (Metrics.observe h) [ 0.5; 1.5; 1.5; 9.0 ];
  let out = Metrics.to_prometheus () in
  (* The registry is process-global (every linked module registers at
     init), so the golden comparison is per family: each family renders
     as one contiguous, exactly-known block inside the scrape. *)
  List.iter
    (fun block ->
      Alcotest.(check bool)
        ("scrape contains: " ^ String.sub block 0 40)
        true
        (Astring_contains.contains out block))
    [
      String.concat ""
        [
          "# HELP nisq_prom_test_counter nisq metric prom.test-counter\n";
          "# TYPE nisq_prom_test_counter counter\n";
          "nisq_prom_test_counter 7\n";
        ];
      String.concat ""
        [
          "# HELP nisq_prom_test_gauge nisq metric prom.test.gauge\n";
          "# TYPE nisq_prom_test_gauge gauge\n";
          "nisq_prom_test_gauge 2.5\n";
        ];
      String.concat ""
        [
          "# HELP nisq_prom_test_hist nisq metric prom.test.hist\n";
          "# TYPE nisq_prom_test_hist histogram\n";
          "nisq_prom_test_hist_bucket{le=\"1\"} 1\n";
          "nisq_prom_test_hist_bucket{le=\"2\"} 3\n";
          "nisq_prom_test_hist_bucket{le=\"+Inf\"} 4\n";
          "nisq_prom_test_hist_sum 12.5\n";
          "nisq_prom_test_hist_count 4\n";
        ];
    ]

let test_prom_label_escaping () =
  Alcotest.(check string)
    "backslash, quote, newline" "a\\\\b\\\"c\\nd"
    (Metrics.escape_label_value "a\\b\"c\nd")

(* The scrape must stay parseable by the jsonlint --prom rules: every
   sample under a TYPE, buckets non-decreasing, +Inf equals _count. *)
let test_prom_shape () =
  obs_off ();
  Metrics.set_enabled true;
  Fun.protect ~finally:obs_off @@ fun () ->
  let h = Metrics.histogram "prom.shape.hist" ~bounds:[| 10.0; 100.0 |] in
  List.iter (Metrics.observe h) [ 5.0; 50.0; 500.0 ];
  let out = Metrics.to_prometheus () in
  let lines = String.split_on_char '\n' out in
  let bucket_counts =
    List.filter_map
      (fun l ->
        if Astring_contains.contains l "nisq_prom_shape_hist_bucket{" then
          String.rindex_opt l ' '
          |> Option.map (fun i ->
                 float_of_string
                   (String.sub l (i + 1) (String.length l - i - 1)))
        else None)
      lines
  in
  Alcotest.(check (list (float 0.0)))
    "cumulative buckets" [ 1.0; 2.0; 3.0 ] bucket_counts;
  Alcotest.(check bool)
    "count series present" true
    (List.exists (fun l -> l = "nisq_prom_shape_hist_count 3") lines)

let test_quantile () =
  obs_off ();
  Metrics.set_enabled true;
  Fun.protect ~finally:obs_off @@ fun () ->
  let h = Metrics.histogram "prom.quantile.hist" ~bounds:[| 10.0; 20.0; 30.0 |] in
  Alcotest.(check bool) "empty is nan" true (Float.is_nan (Metrics.quantile h 0.5));
  (* 10 observations in (10,20]: the bucket is interpolated linearly. *)
  for _ = 1 to 10 do
    Metrics.observe h 15.0
  done;
  Alcotest.(check (float 1e-9)) "p50 mid-bucket" 15.0 (Metrics.quantile h 0.5);
  Alcotest.(check (float 1e-9)) "p100 bucket top" 20.0 (Metrics.quantile h 1.0);
  (* overflow observations clamp to the last finite bound *)
  Metrics.observe h 1e9;
  Alcotest.(check (float 1e-9)) "overflow clamps" 30.0 (Metrics.quantile h 1.0);
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Metrics.quantile: q must be within [0, 1]") (fun () ->
      ignore (Metrics.quantile h 1.5))

(* --------------------------- event ledger -------------------------- *)

(* Overflow is drop-oldest with an exact drop counter; emitting from
   the test domain makes the outcome deterministic regardless of how
   many pool domains exist, which the pool-size sweep below pins. *)
let overflow_trial () =
  let capacity = 8 and emitted = 13 in
  Events.configure ~capacity ();
  Events.set_enabled true;
  for i = 0 to emitted - 1 do
    Events.emit ~domain:"test" Events.Info
      (Printf.sprintf "event %d" i)
      ~fields:[ ("i", string_of_int i) ]
  done;
  let evs = Events.events () in
  Alcotest.(check int) "total counts drops" emitted (Events.total ());
  Alcotest.(check int) "dropped" (emitted - capacity) (Events.dropped ());
  Alcotest.(check int) "ring keeps newest capacity" capacity (List.length evs);
  Alcotest.(check (list string))
    "newest events survive in order"
    (List.init capacity (fun i ->
         Printf.sprintf "event %d" (emitted - capacity + i)))
    (List.map (fun (e : Events.event) -> e.Events.message) evs);
  let seqs = List.map (fun (e : Events.event) -> e.Events.seq) evs in
  Alcotest.(check (list int))
    "per-ring seq is monotonic"
    (List.init capacity (fun i -> emitted - capacity + i))
    seqs

let test_event_overflow () =
  obs_off ();
  Fun.protect ~finally:obs_off overflow_trial

(* The same overload must resolve identically while worker pools of
   size 0, 1 and 4 exist: rings are per-domain, and idle workers never
   touch the test domain's ring. *)
let test_event_overflow_pool_sizes () =
  obs_off ();
  Fun.protect ~finally:obs_off @@ fun () ->
  List.iter
    (fun size ->
      let pool = Pool.create ~size () in
      Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
      ignore (Pool.parallel_chunks pool ~chunks:4 (fun i -> i));
      Events.reset ();
      overflow_trial ())
    [ 0; 1; 4 ]

let test_event_export_shape () =
  obs_off ();
  Events.set_enabled true;
  Fun.protect ~finally:obs_off @@ fun () ->
  Events.emit ~domain:"test" Events.Info "first" ~fields:[ ("k", "v") ];
  Events.emit ~domain:"test" Events.Debug "second";
  let jsonl = Events.export_jsonl () in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' jsonl)
  in
  Alcotest.(check int) "one line per event" 2 (List.length lines);
  List.iter
    (fun line ->
      match Json.of_string line with
      | Ok (Json.Obj _ as o) ->
          List.iter
            (fun k ->
              Alcotest.(check bool)
                (k ^ " present") true
                (Json.member k o <> None))
            [ "ts_ns"; "tid"; "seq"; "domain"; "severity"; "msg"; "fields" ]
      | Ok _ -> Alcotest.fail "ledger line is not an object"
      | Error msg -> Alcotest.failf "ledger line unparseable: %s" msg)
    lines;
  match Events.export_json () with
  | Json.Obj kvs ->
      Alcotest.(check bool)
        "document schema" true
        (List.assoc_opt "schema" kvs = Some (Json.String "nisq-events/1"))
  | _ -> Alcotest.fail "export_json is not an object"

(* A disabled Debug/Info emit must not allocate: the ledger's cost
   model promises the disabled path is branch-and-return. *)
let test_event_disabled_no_alloc () =
  obs_off ();
  let probe () =
    let before = Gc.minor_words () in
    for _ = 1 to 1000 do
      Events.emit ~domain:"test" Events.Debug "tick"
    done;
    Gc.minor_words () -. before
  in
  ignore (probe ());
  Alcotest.(check (float 0.0)) "no allocation when disabled" 0.0 (probe ())

(* ------------------------- explain reports ------------------------- *)

let calib = Ibmq16.calibration ~day:0 ()

let compile_once ?(report = false) name =
  Calib_cache.clear ();
  Metrics.reset ();
  Report.set_enabled report;
  let circuit = (Benchmarks.by_name name).Benchmarks.circuit in
  let r =
    Compile.run ~config:(Config.make (Config.R_smt_star 0.5)) ~calib circuit
  in
  (Compile.to_qasm r, Metrics.counter_values (), r)

(* Arming report collection must not change the compile: QASM and the
   deterministic counter slice are byte-identical with and without it,
   at every solver pool size. *)
let test_report_byte_identity () =
  obs_off ();
  Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Parallel.disable ();
      obs_off ())
  @@ fun () ->
  List.iter
    (fun domains ->
      (match domains with
      | None -> Parallel.disable ()
      | Some n -> Parallel.configure ~domains:n ());
      let qasm_off, counters_off, r_off = compile_once "Adder" in
      let qasm_on, counters_on, r_on = compile_once ~report:true "Adder" in
      let label =
        match domains with
        | None -> "seq"
        | Some n -> Printf.sprintf "domains=%d" n
      in
      Alcotest.(check bool) (label ^ ": no report when off") true (r_off.Compile.report = None);
      Alcotest.(check bool) (label ^ ": report when on") true (r_on.Compile.report <> None);
      Alcotest.(check string) (label ^ ": identical QASM") qasm_off qasm_on;
      Alcotest.(check (list (pair string int)))
        (label ^ ": identical counters") counters_off counters_on)
    [ None; Some 0; Some 1; Some 4 ]

let test_report_esp_and_validate () =
  obs_off ();
  Metrics.set_enabled true;
  Fun.protect ~finally:obs_off @@ fun () ->
  let _, _, r = compile_once ~report:true "Adder" in
  let rep = Option.get r.Compile.report in
  (* the decomposition multiplies back to the published ESP *)
  let product =
    List.fold_left
      (fun acc (t : Report.esp_term) -> acc *. t.Report.contribution)
      1.0 rep.Report.esp.Report.terms
  in
  Alcotest.(check (float 1e-9)) "terms multiply to predicted"
    rep.Report.esp.Report.predicted product;
  Alcotest.(check (float 1e-9)) "predicted is the compile ESP"
    r.Compile.esp rep.Report.esp.Report.predicted;
  Alcotest.(check bool) "routing overhead >= 1" true
    (rep.Report.esp.Report.routing_overhead >= 1.0);
  (* Adder on the rsmt path routes: swap terms must appear *)
  Alcotest.(check bool) "has swap terms" true
    (List.exists
       (fun (t : Report.esp_term) -> t.Report.channel = "swap")
       rep.Report.esp.Report.terms);
  (* solver evidence: full rung, live bound ladder *)
  (match rep.Report.solver with
  | None -> Alcotest.fail "rsmt compile must carry solver evidence"
  | Some s ->
      Alcotest.(check string) "rung" "full" s.Report.rung;
      Alcotest.(check bool) "nodes visited" true (s.Report.nodes_visited > 0);
      Alcotest.(check bool) "bound ladder recorded" true
        (List.exists (fun (_, n) -> n > 0) s.Report.bound_hits));
  (* the document validates, and survives a JSON round-trip *)
  (match Report.validate (Report.to_json rep) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "validate: %s" msg);
  match Json.of_string (Json.to_string (Report.to_json rep)) with
  | Ok v -> (
      match Report.validate v with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "validate after round-trip: %s" msg)
  | Error msg -> Alcotest.failf "report JSON unparseable: %s" msg

let test_report_cache_provenance () =
  obs_off ();
  Metrics.set_enabled true;
  Fun.protect ~finally:obs_off @@ fun () ->
  let _, _, first = compile_once ~report:true "BV4" in
  let delta name (rep : Report.t) =
    match
      List.find_opt (fun (c : Report.cache) -> c.Report.cache = name) rep.Report.caches
    with
    | Some c -> (c.Report.hits, c.Report.misses)
    | None -> Alcotest.failf "cache %s missing from report" name
  in
  let rep1 = Option.get first.Compile.report in
  Alcotest.(check (pair int int)) "cold layout compile misses" (0, 1)
    (delta "compiler.layout" rep1);
  (* same program again, cache retained: the layout memo must hit *)
  Report.set_enabled true;
  let circuit = (Benchmarks.by_name "BV4").Benchmarks.circuit in
  let second =
    Compile.run ~config:(Config.make (Config.R_smt_star 0.5)) ~calib circuit
  in
  let rep2 = Option.get second.Compile.report in
  Alcotest.(check (pair int int)) "warm layout compile hits" (1, 0)
    (delta "compiler.layout" rep2);
  Alcotest.(check bool) "not flagged as bypassed" true
    (not rep2.Report.cache_bypassed)

(* --------------------------- benchwatch ---------------------------- *)

let trajectory entries =
  Json.Obj
    [
      ("schema", Json.String "nisq-bench-compile/2");
      ( "trajectory",
        Json.List
          (List.map
             (fun (date, rows) ->
               Json.Obj
                 [
                   ("date", Json.String date);
                   ( "benchmarks",
                     Json.List
                       (List.map
                          (fun (name, ns) ->
                            Json.Obj
                              [
                                ("name", Json.String name);
                                ("ns_per_run", Json.Float ns);
                              ])
                          rows) );
                 ])
             entries) );
    ]

let analysis_exn v =
  match Benchwatch.analyze v with
  | Ok a -> a
  | Error msg -> Alcotest.failf "analyze: %s" msg

(* The sentinel's reason to exist: an injected 2x slowdown on one
   benchmark must fail the gate while the steady one passes. *)
let test_benchwatch_catches_slowdown () =
  let a =
    analysis_exn
      (trajectory
         [
           ("d1", [ ("dfs", 100.0); ("paths", 50.0) ]);
           ("d2", [ ("dfs", 110.0); ("paths", 52.0) ]);
           ("d3", [ ("dfs", 90.0); ("paths", 48.0) ]);
           ("d4", [ ("dfs", 200.0); ("paths", 49.0) ]);
         ])
  in
  Alcotest.(check int) "one failure" 1 a.Benchwatch.failures;
  let dfs =
    List.find (fun (v : Benchwatch.verdict) -> v.Benchwatch.name = "dfs") a.Benchwatch.verdicts
  in
  Alcotest.(check bool) "dfs regressed" true dfs.Benchwatch.regressed;
  (* baseline is the median of 100/110/90 = 100, so the ratio is 2.0 *)
  Alcotest.(check (option (float 1e-9))) "ratio 2x" (Some 2.0) dfs.Benchwatch.ratio;
  let paths =
    List.find (fun (v : Benchwatch.verdict) -> v.Benchwatch.name = "paths") a.Benchwatch.verdicts
  in
  Alcotest.(check bool) "paths ok" false paths.Benchwatch.regressed;
  Alcotest.(check bool) "render says FAIL" true
    (Astring_contains.contains (Benchwatch.render a) "FAIL")

let test_benchwatch_vacuous_cases () =
  (* a single entry has no baseline: vacuous pass *)
  let single = analysis_exn (trajectory [ ("d1", [ ("dfs", 100.0) ]) ]) in
  Alcotest.(check int) "single entry passes" 0 single.Benchwatch.failures;
  (* a brand-new benchmark is reported but never failed *)
  let witness =
    analysis_exn
      (trajectory
         [ ("d1", [ ("dfs", 100.0) ]); ("d2", [ ("dfs", 101.0); ("new", 9e9) ]) ])
  in
  Alcotest.(check int) "new benchmark passes" 0 witness.Benchwatch.failures;
  let nv =
    List.find (fun (v : Benchwatch.verdict) -> v.Benchwatch.name = "new") witness.Benchwatch.verdicts
  in
  Alcotest.(check bool) "no baseline for new" true (nv.Benchwatch.baseline_ns = None);
  (* the window bounds how much history feeds the median *)
  let windowed =
    match
      Benchwatch.analyze ~window:2
        (trajectory
           [
             ("d1", [ ("dfs", 1000.0) ]);
             ("d2", [ ("dfs", 100.0) ]);
             ("d3", [ ("dfs", 102.0) ]);
             ("d4", [ ("dfs", 104.0) ]);
           ])
    with
    | Ok a -> a
    | Error msg -> Alcotest.failf "analyze: %s" msg
  in
  Alcotest.(check int) "old spike outside window is ignored" 0
    windowed.Benchwatch.failures;
  (* malformed documents are errors, not crashes *)
  match Benchwatch.analyze (Json.Obj [ ("schema", Json.String "bogus/9") ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown schema must not analyze"

let suite =
  [
    Alcotest.test_case "prom: golden scrape" `Quick test_prom_golden;
    Alcotest.test_case "prom: label escaping" `Quick test_prom_label_escaping;
    Alcotest.test_case "prom: scrape shape" `Quick test_prom_shape;
    Alcotest.test_case "prom: quantile estimation" `Quick test_quantile;
    Alcotest.test_case "events: overflow drops oldest" `Quick test_event_overflow;
    Alcotest.test_case "events: overflow at pool sizes 0/1/4" `Quick
      test_event_overflow_pool_sizes;
    Alcotest.test_case "events: export shape" `Quick test_event_export_shape;
    Alcotest.test_case "events: disabled emit never allocates" `Quick
      test_event_disabled_no_alloc;
    Alcotest.test_case "report: byte-identity across pool sizes" `Quick
      test_report_byte_identity;
    Alcotest.test_case "report: ESP decomposition and validation" `Quick
      test_report_esp_and_validate;
    Alcotest.test_case "report: cache provenance" `Quick
      test_report_cache_provenance;
    Alcotest.test_case "benchwatch: catches a 2x slowdown" `Quick
      test_benchwatch_catches_slowdown;
    Alcotest.test_case "benchwatch: vacuous and windowed cases" `Quick
      test_benchwatch_vacuous_cases;
  ]
