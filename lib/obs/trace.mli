(** Structured span tracing on a monotonic clock.

    [with_span "route" f] runs [f ()] and records a completed span —
    name, start timestamp, duration, domain id, nesting depth, optional
    string attributes. Spans nest naturally: the tracer keeps a
    per-domain depth counter, and an exception escaping [f] still closes
    the span ({!with_span} is exception-transparent).

    {2 Per-domain buffers}

    Each domain appends finished spans to its own growable buffer,
    obtained through [Domain.DLS] — the hot path takes no lock and
    contends on nothing. Buffers register themselves in a global list
    (one mutex acquisition per domain lifetime); {!spans},
    {!export_json} and friends merge the registered buffers at read
    time. Reading while worker domains are still recording is safe but
    may miss in-flight spans; flush points in this codebase all sit
    after the pool has drained.

    {2 Cost model}

    Disabled (the default), [with_span name f] is one ref read, a
    conditional jump and a tail call to [f] — no allocation, no clock
    read. The [obs:span-overhead] micro-benchmark pins this within
    noise of calling [f] directly.

    {2 Determinism}

    Span {e timestamps and durations} are wall-clock and therefore not
    reproducible; span {e names and nesting} are. Counter-style facts
    belong in {!Metrics}, which is bit-deterministic across pool
    sizes. *)

type span = {
  name : string;
  ts_ns : int64;  (** monotonic start time *)
  dur_ns : int64;
  tid : int;  (** recording domain's id *)
  depth : int;  (** 1 = top-level span on its domain *)
  attrs : (string * string) list;
}

val set_enabled : bool -> unit
(** Turn tracing on or off. Off (the default) makes {!with_span} call
    through with no recording. *)

val enabled : unit -> bool

val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a named span. The span is recorded when the
    thunk returns {e or raises}; the exception is re-raised unchanged. *)

val spans : unit -> span list
(** All recorded spans merged across domains, sorted by start time
    (ties broken by domain id, then depth — parents before children). *)

val reset : unit -> unit
(** Drop all recorded spans. Call only while no domain is inside
    {!with_span}. *)

val export_json : unit -> Json.t
(** Chrome [trace_event] document:
    [{"traceEvents": [{name; cat; ph:"X"; ts; dur; pid; tid; args}, ...],
      "displayTimeUnit": "ms"}].
    Timestamps are microseconds, rebased so the earliest span starts at
    0 — loadable in Perfetto / [chrome://tracing]. *)

val render_tree : unit -> string
(** Human-readable pass-timing tree: per-domain spans indented by
    nesting depth with durations in ms, followed by a by-name aggregate
    (count and total time). *)

val summary_json : unit -> Json.t
(** By-name aggregate as JSON:
    [{"<name>": {"count": n, "total_ms": t}, ...}], sorted by name. *)
