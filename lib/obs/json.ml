type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------ render ----------------------------- *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let float_repr f =
  (* shortest decimal that still round-trips *)
  let short = Printf.sprintf "%.12g" f in
  if float_of_string short = f then short else Printf.sprintf "%.17g" f

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then Buffer.add_string buf (float_repr f)
      else Buffer.add_string buf "null"
  | String s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          to_buffer buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

(* Write-temp-then-rename so readers (and crash recovery) only ever see
   a complete document: a telemetry dump interrupted mid-write must not
   leave a torn file where the previous good one stood. This duplicates
   the tiny core of [Nisq_runkit.Atomic_io] because obs sits below
   runkit in the dependency order. *)
let write_atomic ~path content =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out tmp in
  (match
     output_string oc content;
     flush oc;
     (try Unix.fsync (Unix.descr_of_out_channel oc)
      with Unix.Unix_error _ -> ());
     close_out oc
   with
  | () -> ()
  | exception e ->
      close_out_noerr oc;
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e);
  Sys.rename tmp path

let to_file ~path v = write_atomic ~path (to_string v ^ "\n")

(* ------------------------------ parse ------------------------------ *)

exception Parse_error of int * string

let of_string src =
  let n = String.length src in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some src.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match src.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    if !pos < n && src.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let len = String.length word in
    if !pos + len <= n && String.sub src !pos len = word then begin
      pos := !pos + len;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match src.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> fail "bad hex digit in \\u escape"
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let utf8_add buf cp =
    (* encode one Unicode scalar value; surrogates arrive pre-combined *)
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match src.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          if !pos >= n then fail "unterminated escape";
          (match src.[!pos] with
          | '"' -> advance (); Buffer.add_char buf '"'
          | '\\' -> advance (); Buffer.add_char buf '\\'
          | '/' -> advance (); Buffer.add_char buf '/'
          | 'b' -> advance (); Buffer.add_char buf '\b'
          | 'f' -> advance (); Buffer.add_char buf '\012'
          | 'n' -> advance (); Buffer.add_char buf '\n'
          | 'r' -> advance (); Buffer.add_char buf '\r'
          | 't' -> advance (); Buffer.add_char buf '\t'
          | 'u' ->
              advance ();
              let cp = parse_hex4 () in
              let cp =
                if cp >= 0xD800 && cp <= 0xDBFF then begin
                  (* high surrogate: a low surrogate must follow *)
                  if
                    !pos + 1 < n && src.[!pos] = '\\' && src.[!pos + 1] = 'u'
                  then begin
                    advance ();
                    advance ();
                    let lo = parse_hex4 () in
                    if lo < 0xDC00 || lo > 0xDFFF then
                      fail "invalid low surrogate";
                    0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
                  end
                  else fail "lone high surrogate"
                end
                else if cp >= 0xDC00 && cp <= 0xDFFF then
                  fail "lone low surrogate"
                else cp
              in
              utf8_add buf cp
          | c -> fail (Printf.sprintf "bad escape \\%c" c));
          go ()
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | c ->
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while !pos < n && src.[!pos] >= '0' && src.[!pos] <= '9' do
        advance ()
      done;
      if !pos = d0 then fail "expected digit"
    in
    (* the integer part allows a lone leading 0, not 0-prefixed digits *)
    if peek () = Some '0' then advance () else digits ();
    let is_float = ref false in
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    let text = String.sub src start (!pos - start) in
    if !is_float then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((k, v) :: acc)
            | Some '}' -> advance (); List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements (v :: acc)
            | Some ']' -> advance (); List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (elements [])
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after value";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
      Error (Printf.sprintf "byte %d: %s" at msg)
  | exception Failure msg -> Error msg

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None
