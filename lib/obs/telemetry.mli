(** Session-level switchboard for the telemetry layer.

    The CLI and the bench harness talk to this module instead of
    flipping {!Trace}, {!Metrics} and {!Events} individually:
    {!configure} (from [--trace FILE] / [--metrics] / [--events FILE] /
    [--prom FILE]) or {!init_from_env} (from [NISQ_TRACE] /
    [NISQ_METRICS] / [NISQ_EVENTS] / [NISQ_PROM]) arm the collectors
    before the work runs, and {!finish} flushes everything afterwards —
    Chrome trace JSON, the event ledger as JSONL, the metrics table,
    and a Prometheus text scrape to their respective files. *)

val configure :
  ?trace:string ->
  ?metrics:bool ->
  ?events:string ->
  ?prom:string ->
  unit ->
  unit
(** Arm collectors. [~trace:path] enables span tracing and remembers
    where {!finish} should write the Chrome trace; [~metrics:true]
    enables the metrics registry; [~events:path] enables the event
    ledger and remembers the JSONL destination; [~prom:path] enables
    the metrics registry (scrapes need data) and remembers where the
    Prometheus text goes. Omitted arguments leave the corresponding
    collector untouched, so env-derived settings survive a flagless
    CLI invocation. *)

val init_from_env : unit -> unit
(** Read [NISQ_TRACE] / [NISQ_EVENTS] / [NISQ_PROM] (file paths) and
    [NISQ_METRICS] (truthy: "1"/"true"/"yes"/"on", case-insensitive)
    and {!configure} accordingly. Call before CLI flags so flags win. *)

val trace_path : unit -> string option
(** Where {!finish} will write the trace, if tracing is armed. *)

val events_path : unit -> string option
(** Where {!finish} will write the event ledger, if armed. *)

val prom_path : unit -> string option
(** Where {!finish} will write the Prometheus scrape, if armed. *)

val metrics_requested : unit -> bool

val set_sink : (path:string -> string -> unit) -> unit
(** Replace the writer {!finish} uses for ledger and Prometheus files.
    The default duplicates the tiny atomic-write core (temp + fsync +
    rename); [bin/nisqc] and the bench harness install
    [Nisq_runkit.Atomic_io.write_file] at startup — obs sits below
    runkit in the dependency order, so the upgrade is injected rather
    than linked. *)

val finish : ?out:out_channel -> unit -> unit
(** Flush: write the Chrome trace to the configured path (if any) and
    print the span tree; drain the event ledger to its JSONL file (if
    armed) and note recorded/dropped counts; print the metrics table
    (if requested); write the Prometheus scrape (if armed) — all
    status lines to [out] (default [stderr]). Collectors stay enabled;
    call [reset] on the individual collectors to reuse the process. *)
