(** Session-level switchboard for the telemetry layer.

    The CLI and the bench harness talk to this module instead of
    flipping {!Trace} and {!Metrics} individually: {!configure} (from
    [--trace FILE] / [--metrics]) or {!init_from_env} (from
    [NISQ_TRACE] / [NISQ_METRICS]) arm the collectors before the work
    runs, and {!finish} flushes everything afterwards — Chrome trace
    JSON to the requested file, pass-timing tree and metrics table to
    an output channel. *)

val configure : ?trace:string -> ?metrics:bool -> unit -> unit
(** Arm collectors. [~trace:path] enables span tracing and remembers
    where {!finish} should write the Chrome trace; [~metrics:true]
    enables the metrics registry. Omitted arguments leave the
    corresponding collector untouched, so env-derived settings survive
    a flagless CLI invocation. *)

val init_from_env : unit -> unit
(** Read [NISQ_TRACE] (a file path) and [NISQ_METRICS] (truthy:
    "1"/"true"/"yes"/"on", case-insensitive) and {!configure}
    accordingly. Call before CLI flags so flags win. *)

val trace_path : unit -> string option
(** Where {!finish} will write the trace, if tracing is armed. *)

val metrics_requested : unit -> bool

val finish : ?out:out_channel -> unit -> unit
(** Flush: write the Chrome trace to the configured path (if any) and
    print the span tree, then print the metrics table (if requested)
    to [out] (default [stderr]). Collectors stay enabled; call
    {!Trace.reset} / {!Metrics.reset} to reuse the process. *)
