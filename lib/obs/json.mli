(** Minimal self-contained JSON: a value type, a compact renderer and a
    strict parser.

    The telemetry layer exports Chrome [trace_event] files and metrics
    dumps; the test suite and the CI smoke check parse them back. No
    JSON library is preinstalled in the toolchain, so this module is the
    single source of truth for both directions — anything {!to_string}
    produces, {!of_string} accepts. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering (no insignificant whitespace). Non-finite floats
    render as [null]: JSON has no representation for them. *)

val to_buffer : Buffer.t -> t -> unit
(** {!to_string} into an existing buffer. *)

val write_atomic : path:string -> string -> unit
(** Write raw [content] to [path] atomically (temp file, fsync,
    rename) — the same discipline as {!to_file}, for non-JSON or
    pre-rendered payloads (JSONL ledgers, Prometheus text). *)

val to_file : path:string -> t -> unit
(** Write {!to_string} plus a trailing newline to [path], atomically:
    the document is written to a temp file, fsync'd, then renamed into
    place, so [path] never holds a torn JSON value — even if the writer
    is killed mid-dump. *)

val of_string : string -> (t, string) result
(** Strict RFC 8259 parser: one value, nothing after it. Numbers
    without [.], [e] or [E] parse as [Int]; [\uXXXX] escapes decode to
    UTF-8. Errors carry a byte offset. *)

val member : string -> t -> t option
(** [member k (Obj kvs)] is the value bound to the first [k]; [None] on
    a missing key or a non-object. *)
