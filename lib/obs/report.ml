let schema = "nisq-report/1"

let on = ref false

let set_enabled b = on := b

let enabled () = !on

type esp_term = {
  channel : string;
  site : string;
  ops : int;
  reliability : float;
  contribution : float;
}

type esp = {
  predicted : float;
  untouched_bound : float;
  routing_overhead : float;
  terms : esp_term list;
}

type solver = {
  rung : string;
  mode : string;
  nodes_visited : int;
  elapsed_seconds : float;
  proven_optimal : bool;
  degraded : bool;
  bound_hits : (string * int) list;
}

type cache = { cache : string; hits : int; misses : int }

type phase = {
  phase : string;
  wall_ms : float;
  minor_words : float;
  major_words : float;
}

type t = {
  program : string;
  qubits : int;
  hw_qubits : int;
  config : (string * string) list;
  duration : int;
  swap_count : int;
  compile_seconds : float;
  esp : esp;
  solver : solver option;
  cache_bypassed : bool;
  caches : cache list;
  phases : phase list;
}

(* ------------------------------ export ----------------------------- *)

let term_json t =
  Json.Obj
    [
      ("channel", Json.String t.channel);
      ("site", Json.String t.site);
      ("ops", Json.Int t.ops);
      ("reliability", Json.Float t.reliability);
      ("contribution", Json.Float t.contribution);
    ]

let esp_json e =
  Json.Obj
    [
      ("predicted", Json.Float e.predicted);
      ("untouched_bound", Json.Float e.untouched_bound);
      ("routing_overhead", Json.Float e.routing_overhead);
      ("terms", Json.List (List.map term_json e.terms));
    ]

let solver_json = function
  | None -> Json.Null
  | Some s ->
      Json.Obj
        [
          ("rung", Json.String s.rung);
          ("mode", Json.String s.mode);
          ("nodes_visited", Json.Int s.nodes_visited);
          ("elapsed_seconds", Json.Float s.elapsed_seconds);
          ("proven_optimal", Json.Bool s.proven_optimal);
          ("degraded", Json.Bool s.degraded);
          ( "bound_hits",
            Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) s.bound_hits)
          );
        ]

let cache_json c =
  Json.Obj
    [
      ("cache", Json.String c.cache);
      ("hits", Json.Int c.hits);
      ("misses", Json.Int c.misses);
    ]

let phase_json p =
  Json.Obj
    [
      ("phase", Json.String p.phase);
      ("wall_ms", Json.Float p.wall_ms);
      ("minor_words", Json.Float p.minor_words);
      ("major_words", Json.Float p.major_words);
    ]

let to_json t =
  Json.Obj
    [
      ("schema", Json.String schema);
      ("program", Json.String t.program);
      ("qubits", Json.Int t.qubits);
      ("hw_qubits", Json.Int t.hw_qubits);
      ( "config",
        Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) t.config) );
      ("duration", Json.Int t.duration);
      ("swap_count", Json.Int t.swap_count);
      ("compile_seconds", Json.Float t.compile_seconds);
      ("esp", esp_json t.esp);
      ("solver", solver_json t.solver);
      ("cache_bypassed", Json.Bool t.cache_bypassed);
      ("caches", Json.List (List.map cache_json t.caches));
      ("phases", Json.List (List.map phase_json t.phases));
    ]

(* ----------------------------- validate ---------------------------- *)

let ( let* ) = Result.bind

let fail fmt = Printf.ksprintf (fun s -> Error s) fmt

let need ctx key doc =
  match Json.member key doc with
  | Some v -> Ok v
  | None -> fail "%s: missing key %S" ctx key

let as_number ctx = function
  | Json.Int i -> Ok (float_of_int i)
  | Json.Float f -> Ok f
  | _ -> fail "%s: expected a number" ctx

let as_int ctx = function
  | Json.Int i -> Ok i
  | _ -> fail "%s: expected an integer" ctx

let as_string ctx = function
  | Json.String s -> Ok s
  | _ -> fail "%s: expected a string" ctx

let as_bool ctx = function
  | Json.Bool b -> Ok b
  | _ -> fail "%s: expected a bool" ctx

let as_list ctx = function
  | Json.List l -> Ok l
  | _ -> fail "%s: expected a list" ctx

let as_obj ctx = function
  | Json.Obj kvs -> Ok kvs
  | _ -> fail "%s: expected an object" ctx

let number ctx key doc =
  let* v = need ctx key doc in
  as_number (ctx ^ "." ^ key) v

let string_ ctx key doc =
  let* v = need ctx key doc in
  as_string (ctx ^ "." ^ key) v

let int_ ctx key doc =
  let* v = need ctx key doc in
  as_int (ctx ^ "." ^ key) v

let bool_ ctx key doc =
  let* v = need ctx key doc in
  as_bool (ctx ^ "." ^ key) v

let rec each ctx i f = function
  | [] -> Ok ()
  | x :: rest ->
      let* () = f (Printf.sprintf "%s[%d]" ctx i) x in
      each ctx (i + 1) f rest

let close ctx ~expect ~got =
  if Float.abs (expect -. got) <= 1e-9 then Ok ()
  else fail "%s: expected %.17g, document says %.17g (|diff| > 1e-9)" ctx
      expect got

let validate_term ctx t =
  let* channel = string_ ctx "channel" t in
  let* _ = string_ ctx "site" t in
  let* ops = int_ ctx "ops" t in
  let* _ = number ctx "reliability" t in
  let* contribution = number ctx "contribution" t in
  if ops < 1 then fail "%s: ops must be >= 1" ctx
  else
    match channel with
    | "readout" | "single" | "cnot" | "swap" -> Ok (channel, contribution)
    | other -> fail "%s: unknown channel %S" ctx other

let validate_esp ctx e =
  let* predicted = number ctx "predicted" e in
  let* untouched = number ctx "untouched_bound" e in
  let* overhead = number ctx "routing_overhead" e in
  let* terms = need ctx "terms" e in
  let* terms = as_list (ctx ^ ".terms") terms in
  let parsed = ref [] in
  let* () =
    each (ctx ^ ".terms") 0
      (fun tctx t ->
        let* p = validate_term tctx t in
        parsed := p :: !parsed;
        Ok ())
      terms
  in
  let product = List.fold_left (fun acc (_, c) -> acc *. c) 1.0 !parsed in
  let untouched_product =
    List.fold_left
      (fun acc (channel, c) -> if channel = "swap" then acc else acc *. c)
      1.0 !parsed
  in
  let* () = close (ctx ^ ".terms product vs predicted") ~expect:product
      ~got:predicted
  in
  let* () =
    close (ctx ^ ".non-swap terms vs untouched_bound")
      ~expect:untouched_product ~got:untouched
  in
  if predicted > 0.0 then
    close (ctx ^ ".routing_overhead") ~expect:(untouched /. predicted)
      ~got:overhead
  else Ok ()

let validate_solver ctx = function
  | Json.Null -> Ok ()
  | s ->
      let* _ = string_ ctx "rung" s in
      let* _ = string_ ctx "mode" s in
      let* nodes = int_ ctx "nodes_visited" s in
      let* _ = number ctx "elapsed_seconds" s in
      let* _ = bool_ ctx "proven_optimal" s in
      let* _ = bool_ ctx "degraded" s in
      let* hits = need ctx "bound_hits" s in
      let* hits = as_obj (ctx ^ ".bound_hits") hits in
      let* () =
        each (ctx ^ ".bound_hits") 0
          (fun hctx (_, v) ->
            let* n = as_int hctx v in
            if n < 0 then fail "%s: negative hit count" hctx else Ok ())
          hits
      in
      if nodes < 0 then fail "%s: negative nodes_visited" ctx else Ok ()

let validate doc =
  let ctx = "report" in
  let* s = string_ ctx "schema" doc in
  if s <> schema then fail "%s: schema is %S, expected %S" ctx s schema
  else
    let* _ = string_ ctx "program" doc in
    let* _ = int_ ctx "qubits" doc in
    let* _ = int_ ctx "hw_qubits" doc in
    let* config = need ctx "config" doc in
    let* _ = as_obj (ctx ^ ".config") config in
    let* _ = int_ ctx "duration" doc in
    let* swaps = int_ ctx "swap_count" doc in
    let* _ = number ctx "compile_seconds" doc in
    let* _ = bool_ ctx "cache_bypassed" doc in
    let* esp = need ctx "esp" doc in
    let* () = validate_esp (ctx ^ ".esp") esp in
    let* solver = need ctx "solver" doc in
    let* () = validate_solver (ctx ^ ".solver") solver in
    let* caches = need ctx "caches" doc in
    let* caches = as_list (ctx ^ ".caches") caches in
    let* () =
      each (ctx ^ ".caches") 0
        (fun cctx c ->
          let* _ = string_ cctx "cache" c in
          let* h = int_ cctx "hits" c in
          let* m = int_ cctx "misses" c in
          if h < 0 || m < 0 then fail "%s: negative cache stats" cctx
          else Ok ())
        caches
    in
    let* phases = need ctx "phases" doc in
    let* phases = as_list (ctx ^ ".phases") phases in
    let* () =
      each (ctx ^ ".phases") 0
        (fun pctx p ->
          let* _ = string_ pctx "phase" p in
          let* wall = number pctx "wall_ms" p in
          let* _ = number pctx "minor_words" p in
          let* _ = number pctx "major_words" p in
          if wall < 0.0 then fail "%s: negative wall_ms" pctx else Ok ())
        phases
    in
    if swaps < 0 then fail "%s: negative swap_count" ctx else Ok ()
