(** Monotonic time source for the telemetry layer.

    Span timestamps and chunk latencies must come from a clock that never
    jumps backwards; [Unix.gettimeofday] is wall time and does. This
    wraps the CLOCK_MONOTONIC stub already shipped with Bechamel so the
    rest of the repository never names the dependency directly. *)

val now_ns : unit -> int64
(** Nanoseconds on the monotonic clock. Only differences are
    meaningful; the origin is unspecified. Allocation-free. *)

val ns_to_ms : int64 -> float
(** Convenience: nanoseconds to milliseconds. *)
