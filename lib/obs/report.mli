(** Compile explain reports.

    A report is a structured audit artifact for one compile: where the
    predicted ESP comes from (per-site reliability terms and the
    routing overhead paid versus an untouched-circuit bound), what the
    solver did (fallback rung, nodes, per-level bound-ladder hits,
    proof status, parallel mode), which caches served the compile, and
    where the wall-clock went. The compiler assembles a {!t} when
    {!enabled}; [nisqc compile --report FILE] writes {!to_json}
    atomically.

    This module owns only the schema — plain data, {!to_json} and
    {!validate} — so that tools ([jsonlint --report]) and tests can
    check artifacts without linking the compiler. *)

val schema : string
(** ["nisq-report/1"], stamped into every document. *)

val set_enabled : bool -> unit
(** Arm report collection (default off). The compiler consults this
    before doing any per-phase measurement work. *)

val enabled : unit -> bool

(** {1 Schema} *)

type esp_term = {
  channel : string;  (** ["readout"], ["single"], ["cnot"] or ["swap"] *)
  site : string;  (** ["q<N>"] for qubits, ["e<A>-<B>"] for links *)
  ops : int;  (** physical ops folded into this term *)
  reliability : float;  (** per-op reliability (first occurrence) *)
  contribution : float;  (** product of the per-op reliabilities *)
}

type esp = {
  predicted : float;  (** the ESP the compiler published *)
  untouched_bound : float;
      (** ESP of the same stream with every routing SWAP removed — an
          upper bound no routing can beat *)
  routing_overhead : float;  (** [untouched_bound /. predicted], >= 1 *)
  terms : esp_term list;
      (** multiplies back to [predicted] within 1e-9 *)
}

type solver = {
  rung : string;  (** fallback-ladder rung: ["full"] etc. *)
  mode : string;  (** parallel mode tag: ["seq"], ["fanout"], ... *)
  nodes_visited : int;
  elapsed_seconds : float;
  proven_optimal : bool;
  degraded : bool;
  bound_hits : (string * int) list;
      (** per-level bound-ladder prune counts, e.g. [("static", n)] *)
}

type cache = { cache : string; hits : int; misses : int }
(** Hit/miss deltas attributed to this compile, per memo table. *)

type phase = {
  phase : string;
  wall_ms : float;
  minor_words : float;  (** GC words allocated during the phase *)
  major_words : float;
}

type t = {
  program : string;
  qubits : int;  (** program qubits *)
  hw_qubits : int;  (** device qubits *)
  config : (string * string) list;  (** compile policy, key=value *)
  duration : int;  (** schedule makespan, timeslots *)
  swap_count : int;
  compile_seconds : float;
  esp : esp;
  solver : solver option;  (** [None] when no B&B ran (pure greedy) *)
  cache_bypassed : bool;  (** caches skipped under fault injection *)
  caches : cache list;
  phases : phase list;
}

(** {1 Export / validation} *)

val to_json : t -> Json.t
(** One object, [{"schema":"nisq-report/1", ...}]; deterministic field
    order. *)

val validate : Json.t -> (unit, string) result
(** Structural and semantic check of a report document: schema tag,
    required fields and types, and the arithmetic invariants — ESP
    terms multiply back to [predicted] within 1e-9, non-swap terms
    multiply to [untouched_bound] within 1e-9, and
    [routing_overhead = untouched_bound / predicted] (within 1e-9,
    when [predicted > 0]). *)
