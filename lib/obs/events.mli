(** Structured event ledger: bounded per-domain ring buffers.

    Libraries report notable conditions (a malformed environment
    variable, a cache bypassed under fault injection, a quarantined
    qubit) as structured events instead of bare [Printf.eprintf]
    calls. Each OCaml domain owns a fixed-capacity ring; a full ring
    drops its {e oldest} event and bumps a drop counter, so a noisy
    run degrades to "most recent N events per domain" instead of
    unbounded memory. At flush time the rings are merged and sorted
    into one timeline (see {!events} / {!export_jsonl}).

    {2 Cost model}

    The ledger is disabled by default. A disabled {!emit} below
    {!Warn} severity is one mutable-ref read, one branch and a
    severity comparison — no allocation, no atomic traffic; the
    [obs:event-disabled] micro-benchmark pins it within noise of a
    no-op call. [Warn]/[Error] events additionally echo their message
    to stderr {e even while disabled}, so user-facing warning text
    does not depend on telemetry being armed.

    {2 Merge protocol}

    Rings need no synchronization on the emit path: each domain
    mutates only its own ring (found via [Domain.DLS]). A global list
    of rings, guarded by a mutex, exists solely so readers can find
    them; {!events} snapshots every ring and sorts by
    [(ts_ns, tid, seq)] — [seq] is a per-ring monotonic counter, so
    same-timestamp events from one domain keep emission order. *)

type severity = Debug | Info | Warn | Error

val severity_name : severity -> string
(** ["debug"] / ["info"] / ["warn"] / ["error"]. *)

type event = {
  seq : int;  (** per-ring emission index, monotonic within [tid] *)
  ts_ns : int64;  (** monotonic clock, same base as {!Trace} spans *)
  tid : int;  (** OCaml domain id that emitted the event *)
  domain : string;  (** component name: ["pool"], ["cache"], ... *)
  severity : severity;
  message : string;
  fields : (string * string) list;  (** key=value details *)
}

val set_enabled : bool -> unit
(** Turn recording on or off (default off). Echoing of [Warn]+
    messages to stderr is unconditional and unaffected. *)

val enabled : unit -> bool

val configure : ?capacity:int -> unit -> unit
(** Set the per-domain ring capacity (default 512). Takes effect
    lazily: every ring is reallocated (empty) at its owner's next
    {!emit}. Raises [Invalid_argument] on [capacity < 1]. *)

val capacity : unit -> int

val emit :
  ?fields:(string * string) list ->
  domain:string ->
  severity ->
  string ->
  unit
(** [emit ~domain sev msg] records an event on the calling domain's
    ring (when enabled) and, for [Warn] or [Error], echoes [msg] plus
    a newline to stderr (always). [msg] should not end in a newline. *)

val events : unit -> event list
(** Merged snapshot of every ring, sorted by [(ts_ns, tid, seq)].
    Dropped events are gone — only the newest [capacity] per domain
    survive. *)

val total : unit -> int
(** Events recorded since the last {!reset} (dropped ones included). *)

val dropped : unit -> int
(** Events evicted from full rings since the last {!reset}. *)

val export_jsonl : unit -> string
(** One compact JSON object per line, in {!events} order, each
    [{"ts_ns":…,"tid":…,"domain":…,"severity":…,"msg":…,"fields":{…}}].
    Ends with a trailing newline when nonempty. *)

val export_json : unit -> Json.t
(** The same data as one document:
    [{"schema":"nisq-events/1","dropped":…,"events":[…]}]. *)

val reset : unit -> unit
(** Empty every ring and zero the counters (capacity survives). *)
