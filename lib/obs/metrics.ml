let on = ref false

let set_enabled b = on := b

let enabled () = !on

type counter = { cell : int Atomic.t } [@@unboxed]

type gauge = { bits : int64 Atomic.t } [@@unboxed]

type histogram = {
  bounds : float array; (* ascending inclusive upper bounds *)
  counts : int Atomic.t array; (* length bounds + 1; last is +inf *)
  sum_bits : int64 Atomic.t; (* float accumulated via CAS *)
}

let registry_mutex = Mutex.create ()

let counters : (string, counter) Hashtbl.t = Hashtbl.create 32

let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16

let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let registered tbl name make =
  Mutex.lock registry_mutex;
  let v =
    match Hashtbl.find_opt tbl name with
    | Some v -> v
    | None ->
        let v = make () in
        Hashtbl.add tbl name v;
        v
  in
  Mutex.unlock registry_mutex;
  v

(* ----------------------------- counters ---------------------------- *)

let counter name =
  registered counters name (fun () -> { cell = Atomic.make 0 })

let incr c = if !on then Atomic.incr c.cell

let add c n = if !on && n <> 0 then ignore (Atomic.fetch_and_add c.cell n)

let value c = Atomic.get c.cell

(* ------------------------------ gauges ----------------------------- *)

let zero_bits = Int64.bits_of_float 0.0

let gauge name =
  registered gauges name (fun () -> { bits = Atomic.make zero_bits })

let set g v = if !on then Atomic.set g.bits (Int64.bits_of_float v)

let rec cas_add_float cell v =
  let old = Atomic.get cell in
  let next = Int64.bits_of_float (Int64.float_of_bits old +. v) in
  if not (Atomic.compare_and_set cell old next) then cas_add_float cell v

let gauge_add g v = if !on then cas_add_float g.bits v

let gauge_value g = Int64.float_of_bits (Atomic.get g.bits)

(* ---------------------------- histograms --------------------------- *)

let default_bounds = [| 1e3; 1e4; 1e5; 1e6; 1e7; 1e8; 1e9 |]

let histogram ?(bounds = default_bounds) name =
  if Array.length bounds = 0 then
    invalid_arg "Metrics.histogram: empty bounds";
  Array.iteri
    (fun i b ->
      if i > 0 && not (b > bounds.(i - 1)) then
        invalid_arg "Metrics.histogram: bounds must be strictly ascending")
    bounds;
  registered histograms name (fun () ->
      {
        bounds = Array.copy bounds;
        counts = Array.init (Array.length bounds + 1) (fun _ -> Atomic.make 0);
        sum_bits = Atomic.make zero_bits;
      })

let observe h v =
  if !on then begin
    let n = Array.length h.bounds in
    let i = ref 0 in
    while !i < n && v > h.bounds.(!i) do
      Stdlib.incr i
    done;
    Atomic.incr h.counts.(!i);
    cas_add_float h.sum_bits v
  end

let histogram_count h =
  Array.fold_left (fun acc c -> acc + Atomic.get c) 0 h.counts

let histogram_sum h = Int64.float_of_bits (Atomic.get h.sum_bits)

(* --------------------------- dump / reset -------------------------- *)

let sorted_bindings tbl =
  Mutex.lock registry_mutex;
  let all = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
  Mutex.unlock registry_mutex;
  List.sort (fun (a, _) (b, _) -> compare a b) all

let reset () =
  List.iter (fun (_, c) -> Atomic.set c.cell 0) (sorted_bindings counters);
  List.iter (fun (_, g) -> Atomic.set g.bits zero_bits) (sorted_bindings gauges);
  List.iter
    (fun (_, h) ->
      Array.iter (fun c -> Atomic.set c 0) h.counts;
      Atomic.set h.sum_bits zero_bits)
    (sorted_bindings histograms)

let counter_values () =
  List.map (fun (name, c) -> (name, value c)) (sorted_bindings counters)

let bound_label b =
  if Float.is_integer b && Float.abs b < 1e15 then
    Printf.sprintf "%.0f" b
  else Printf.sprintf "%g" b

let dump_json () =
  let counters_json =
    List.map (fun (name, c) -> (name, Json.Int (value c)))
      (sorted_bindings counters)
  in
  let gauges_json =
    List.map (fun (name, g) -> (name, Json.Float (gauge_value g)))
      (sorted_bindings gauges)
  in
  let histograms_json =
    List.map
      (fun (name, h) ->
        ( name,
          Json.Obj
            [
              ( "bounds",
                Json.List
                  (Array.to_list (Array.map (fun b -> Json.Float b) h.bounds))
              );
              ( "counts",
                Json.List
                  (Array.to_list
                     (Array.map (fun c -> Json.Int (Atomic.get c)) h.counts))
              );
              ("count", Json.Int (histogram_count h));
              ("sum", Json.Float (histogram_sum h));
            ] ))
      (sorted_bindings histograms)
  in
  Json.Obj
    [
      ("counters", Json.Obj counters_json);
      ("gauges", Json.Obj gauges_json);
      ("histograms", Json.Obj histograms_json);
    ]

(* --------------------------- prometheus ---------------------------- *)

(* Metric names here use dots ("cache.hit"); Prometheus names must
   match [a-zA-Z_:][a-zA-Z0-9_:]*. Map every other byte to '_' and
   prefix the exporter namespace. *)
let prom_name name =
  let buf = Buffer.create (String.length name + 5) in
  Buffer.add_string buf "nisq_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' ->
          Buffer.add_char buf c
      | _ -> Buffer.add_char buf '_')
    name;
  Buffer.contents buf

let escape_label_value s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_help s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let prom_float f =
  if Float.is_nan f then "NaN"
  else if f = Float.infinity then "+Inf"
  else if f = Float.neg_infinity then "-Inf"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else
    let short = Printf.sprintf "%.12g" f in
    if float_of_string short = f then short else Printf.sprintf "%.17g" f

let to_prometheus () =
  let buf = Buffer.create 2048 in
  let header name kind =
    let pname = prom_name name in
    Printf.bprintf buf "# HELP %s nisq metric %s\n" pname
      (escape_help name);
    Printf.bprintf buf "# TYPE %s %s\n" pname kind;
    pname
  in
  List.iter
    (fun (name, c) ->
      let pname = header name "counter" in
      Printf.bprintf buf "%s %d\n" pname (value c))
    (sorted_bindings counters);
  List.iter
    (fun (name, g) ->
      let pname = header name "gauge" in
      Printf.bprintf buf "%s %s\n" pname (prom_float (gauge_value g)))
    (sorted_bindings gauges);
  List.iter
    (fun (name, h) ->
      let pname = header name "histogram" in
      let n = Array.length h.bounds in
      let cum = ref 0 in
      Array.iteri
        (fun i c ->
          cum := !cum + Atomic.get c;
          let le =
            if i < n then bound_label h.bounds.(i) else "+Inf"
          in
          Printf.bprintf buf "%s_bucket{le=\"%s\"} %d\n" pname
            (escape_label_value le) !cum)
        h.counts;
      Printf.bprintf buf "%s_sum %s\n" pname (prom_float (histogram_sum h));
      Printf.bprintf buf "%s_count %d\n" pname !cum)
    (sorted_bindings histograms);
  Buffer.contents buf

let quantile h q =
  if not (q >= 0.0 && q <= 1.0) then
    invalid_arg "Metrics.quantile: q must be within [0, 1]";
  let n = Array.length h.bounds in
  let counts = Array.map Atomic.get h.counts in
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then Float.nan
  else begin
    let target = q *. float_of_int total in
    let rec go i cum =
      let c = counts.(i) in
      let cum' = cum + c in
      if float_of_int cum' >= target || i = n then begin
        (* Linear interpolation inside the winning bucket; the +inf
           bucket clamps to the last finite bound — there is no upper
           edge to interpolate toward. *)
        let lo = if i = 0 then 0.0 else h.bounds.(i - 1) in
        let hi = if i < n then h.bounds.(i) else h.bounds.(n - 1) in
        if c = 0 || i = n then hi
        else
          lo +. ((hi -. lo) *. ((target -. float_of_int cum) /. float_of_int c))
      end
      else go (i + 1) cum'
    in
    go 0 0
  end

let render () =
  let buf = Buffer.create 1024 in
  let cs = sorted_bindings counters in
  let gs = sorted_bindings gauges in
  let hs = sorted_bindings histograms in
  let width =
    List.fold_left
      (fun acc (name, _) -> Int.max acc (String.length name))
      0
      (List.map (fun (n, _) -> (n, ())) cs
      @ List.map (fun (n, _) -> (n, ())) gs
      @ List.map (fun (n, _) -> (n, ())) hs)
  in
  Buffer.add_string buf "=== metrics ===\n";
  if cs <> [] then begin
    Buffer.add_string buf "counters:\n";
    List.iter
      (fun (name, c) ->
        Printf.bprintf buf "  %-*s %12d\n" width name (value c))
      cs
  end;
  if gs <> [] then begin
    Buffer.add_string buf "gauges:\n";
    List.iter
      (fun (name, g) ->
        Printf.bprintf buf "  %-*s %12.6g\n" width name (gauge_value g))
      gs
  end;
  if hs <> [] then begin
    Buffer.add_string buf "histograms:\n";
    List.iter
      (fun (name, h) ->
        Printf.bprintf buf "  %-*s count=%d sum=%g\n" width name
          (histogram_count h) (histogram_sum h);
        Array.iteri
          (fun i c ->
            let n = Atomic.get c in
            if n > 0 then
              let label =
                if i < Array.length h.bounds then
                  "le " ^ bound_label h.bounds.(i)
                else "+inf"
              in
              Printf.bprintf buf "  %-*s   %-12s %d\n" width "" label n)
          h.counts)
      hs
  end;
  if cs = [] && gs = [] && hs = [] then
    Buffer.add_string buf "  (no metrics registered)\n";
  Buffer.contents buf
