type span = {
  name : string;
  ts_ns : int64;
  dur_ns : int64;
  tid : int;
  depth : int;
  attrs : (string * string) list;
}

let on = ref false

let set_enabled b = on := b

let enabled () = !on

(* One buffer per domain. Pushes touch only the owning domain's buffer,
   so they need no synchronization; the global [bufs] list (guarded by
   [bufs_mutex]) exists solely so readers can find every buffer. *)
type buf = {
  tid : int;
  mutable events : span array;
  mutable len : int;
  mutable depth : int;
}

let bufs_mutex = Mutex.create ()

let bufs : buf list ref = ref []

let dummy_span =
  { name = ""; ts_ns = 0L; dur_ns = 0L; tid = 0; depth = 0; attrs = [] }

let fresh_buf () =
  let b =
    {
      tid = (Domain.self () :> int);
      events = Array.make 64 dummy_span;
      len = 0;
      depth = 0;
    }
  in
  Mutex.lock bufs_mutex;
  bufs := b :: !bufs;
  Mutex.unlock bufs_mutex;
  b

let key = Domain.DLS.new_key fresh_buf

let push b span =
  let cap = Array.length b.events in
  if b.len = cap then begin
    let bigger = Array.make (2 * cap) dummy_span in
    Array.blit b.events 0 bigger 0 cap;
    b.events <- bigger
  end;
  b.events.(b.len) <- span;
  b.len <- b.len + 1

let with_span ?attrs name f =
  if not !on then f ()
  else begin
    let b = Domain.DLS.get key in
    b.depth <- b.depth + 1;
    let depth = b.depth in
    let t0 = Clock.now_ns () in
    Fun.protect
      ~finally:(fun () ->
        let dur_ns = Int64.sub (Clock.now_ns ()) t0 in
        b.depth <- depth - 1;
        push b
          {
            name;
            ts_ns = t0;
            dur_ns;
            tid = b.tid;
            depth;
            attrs = Option.value attrs ~default:[];
          })
      f
  end

let reset () =
  Mutex.lock bufs_mutex;
  List.iter
    (fun b ->
      b.len <- 0;
      b.depth <- 0)
    !bufs;
  Mutex.unlock bufs_mutex

let spans () =
  Mutex.lock bufs_mutex;
  let all =
    List.concat_map
      (fun b -> Array.to_list (Array.sub b.events 0 b.len))
      !bufs
  in
  Mutex.unlock bufs_mutex;
  List.sort
    (fun a b ->
      match Int64.compare a.ts_ns b.ts_ns with
      | 0 -> (
          match compare a.tid b.tid with
          | 0 -> compare a.depth b.depth
          | c -> c)
      | c -> c)
    all

(* ------------------------- chrome trace_event ---------------------- *)

let us_of_ns base ns = Int64.to_float (Int64.sub ns base) /. 1e3

let export_json () =
  let all = spans () in
  let base =
    List.fold_left
      (fun acc s -> if Int64.compare s.ts_ns acc < 0 then s.ts_ns else acc)
      (match all with [] -> 0L | s :: _ -> s.ts_ns)
      all
  in
  let event s =
    let args = List.map (fun (k, v) -> (k, Json.String v)) s.attrs in
    Json.Obj
      [
        ("name", Json.String s.name);
        ("cat", Json.String "nisq");
        ("ph", Json.String "X");
        ("ts", Json.Float (us_of_ns base s.ts_ns));
        ("dur", Json.Float (Int64.to_float s.dur_ns /. 1e3));
        ("pid", Json.Int 1);
        ("tid", Json.Int s.tid);
        ("args", Json.Obj args);
      ]
  in
  Json.Obj
    [
      ("traceEvents", Json.List (List.map event all));
      ("displayTimeUnit", Json.String "ms");
    ]

(* ------------------------- human-readable tree ---------------------- *)

let aggregate all =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let count, total =
        Option.value (Hashtbl.find_opt tbl s.name) ~default:(0, 0L)
      in
      Hashtbl.replace tbl s.name (count + 1, Int64.add total s.dur_ns))
    all;
  Hashtbl.fold (fun name v acc -> (name, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let render_tree () =
  let all = spans () in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "=== trace ===\n";
  if all = [] then Buffer.add_string buf "  (no spans recorded)\n"
  else begin
    let tids =
      List.sort_uniq compare (List.map (fun (s : span) -> s.tid) all)
    in
    List.iter
      (fun tid ->
        Printf.bprintf buf "domain %d:\n" tid;
        List.iter
          (fun (s : span) ->
            if s.tid = tid then begin
              Buffer.add_string buf (String.make (2 * s.depth) ' ');
              Printf.bprintf buf "%s  %.3f ms" s.name
                (Clock.ns_to_ms s.dur_ns);
              if s.attrs <> [] then begin
                Buffer.add_string buf "  [";
                List.iteri
                  (fun i (k, v) ->
                    if i > 0 then Buffer.add_string buf ", ";
                    Printf.bprintf buf "%s=%s" k v)
                  s.attrs;
                Buffer.add_char buf ']'
              end;
              Buffer.add_char buf '\n'
            end)
          all)
      tids;
    Buffer.add_string buf "by name:\n";
    List.iter
      (fun (name, (count, total)) ->
        Printf.bprintf buf "  %-28s %6d x  %10.3f ms\n" name count
          (Clock.ns_to_ms total))
      (aggregate all)
  end;
  Buffer.contents buf

let summary_json () =
  let all = spans () in
  Json.Obj
    (List.map
       (fun (name, (count, total)) ->
         ( name,
           Json.Obj
             [
               ("count", Json.Int count);
               ("total_ms", Json.Float (Clock.ns_to_ms total));
             ] ))
       (aggregate all))
