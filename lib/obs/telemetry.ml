let trace_dest : string option ref = ref None

let events_dest : string option ref = ref None

let prom_dest : string option ref = ref None

let want_metrics = ref false

(* Export sink: how [finish] puts bytes on disk. The default is the
   local atomic write; binaries that link runkit upgrade it to
   [Nisq_runkit.Atomic_io.write_file] at startup so ledger and scrape
   files share the journaled-run write discipline. *)
let sink : (path:string -> string -> unit) ref =
  ref (fun ~path content -> Json.write_atomic ~path content)

let set_sink f = sink := f

let configure ?trace ?metrics ?events ?prom () =
  (match trace with
  | Some path ->
      trace_dest := Some path;
      Trace.set_enabled true
  | None -> ());
  (match metrics with
  | Some b ->
      want_metrics := b;
      Metrics.set_enabled b
  | None -> ());
  (match events with
  | Some path ->
      events_dest := Some path;
      Events.set_enabled true
  | None -> ());
  match prom with
  | Some path ->
      prom_dest := Some path;
      (* a scrape file without data is useless — arm the registry, but
         leave [want_metrics] alone so no table prints uninvited *)
      Metrics.set_enabled true
  | None -> ()

let truthy s =
  match String.lowercase_ascii (String.trim s) with
  | "1" | "true" | "yes" | "on" -> true
  | _ -> false

let env_path name =
  match Sys.getenv_opt name with
  | Some path when String.trim path <> "" -> Some path
  | _ -> None

let init_from_env () =
  (match env_path "NISQ_TRACE" with
  | Some path -> configure ~trace:path ()
  | None -> ());
  (match Sys.getenv_opt "NISQ_METRICS" with
  | Some v when truthy v -> configure ~metrics:true ()
  | _ -> ());
  (match env_path "NISQ_EVENTS" with
  | Some path -> configure ~events:path ()
  | None -> ());
  match env_path "NISQ_PROM" with
  | Some path -> configure ~prom:path ()
  | None -> ()

let trace_path () = !trace_dest

let events_path () = !events_dest

let prom_path () = !prom_dest

let metrics_requested () = !want_metrics

let finish ?(out = stderr) () =
  (match !trace_dest with
  | Some path ->
      Json.to_file ~path (Trace.export_json ());
      Printf.fprintf out "trace written to %s\n" path;
      output_string out (Trace.render_tree ())
  | None -> ());
  (match !events_dest with
  | Some path ->
      !sink ~path (Events.export_jsonl ());
      Printf.fprintf out "events written to %s (%d recorded, %d dropped)\n"
        path (Events.total ()) (Events.dropped ())
  | None -> ());
  if !want_metrics then output_string out (Metrics.render ());
  (match !prom_dest with
  | Some path ->
      !sink ~path (Metrics.to_prometheus ());
      Printf.fprintf out "prometheus metrics written to %s\n" path
  | None -> ());
  flush out
