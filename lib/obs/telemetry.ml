let trace_dest : string option ref = ref None

let want_metrics = ref false

let configure ?trace ?metrics () =
  (match trace with
  | Some path ->
      trace_dest := Some path;
      Trace.set_enabled true
  | None -> ());
  match metrics with
  | Some b ->
      want_metrics := b;
      Metrics.set_enabled b
  | None -> ()

let truthy s =
  match String.lowercase_ascii (String.trim s) with
  | "1" | "true" | "yes" | "on" -> true
  | _ -> false

let init_from_env () =
  (match Sys.getenv_opt "NISQ_TRACE" with
  | Some path when String.trim path <> "" -> configure ~trace:path ()
  | _ -> ());
  match Sys.getenv_opt "NISQ_METRICS" with
  | Some v when truthy v -> configure ~metrics:true ()
  | _ -> ()

let trace_path () = !trace_dest

let metrics_requested () = !want_metrics

let finish ?(out = stderr) () =
  (match !trace_dest with
  | Some path ->
      Json.to_file ~path (Trace.export_json ());
      Printf.fprintf out "trace written to %s\n" path;
      output_string out (Trace.render_tree ())
  | None -> ());
  if !want_metrics then output_string out (Metrics.render ());
  flush out
