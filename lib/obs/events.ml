type severity = Debug | Info | Warn | Error

let severity_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let severity_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

type event = {
  seq : int;
  ts_ns : int64;
  tid : int;
  domain : string;
  severity : severity;
  message : string;
  fields : (string * string) list;
}

let on = ref false

let set_enabled b = on := b

let enabled () = !on

(* Capacity changes take effect lazily: bumping [generation] marks
   every existing ring stale, and the owning domain reallocates its
   ring (empty) on its next emit. This keeps the emit path free of
   cross-domain coordination. *)
let ring_capacity = ref 512

let generation = ref 0

let configure ?capacity () =
  match capacity with
  | None -> ()
  | Some c ->
      if c < 1 then invalid_arg "Events.configure: capacity must be >= 1";
      ring_capacity := c;
      incr generation

let capacity () = !ring_capacity

(* One ring per domain; pushes touch only the owner's ring, the global
   list (under [rings_mutex]) exists solely so readers can find them —
   the same shape as [Trace]'s span buffers. *)
type ring = {
  tid : int;
  mutable slots : event array;
  mutable start : int; (* index of the oldest live event *)
  mutable len : int;
  mutable seq : int; (* events ever pushed on this ring *)
  mutable dropped : int;
  mutable gen : int; (* [generation] at (re)allocation time *)
}

let rings_mutex = Mutex.create ()

let rings : ring list ref = ref []

let dummy =
  {
    seq = 0;
    ts_ns = 0L;
    tid = 0;
    domain = "";
    severity = Debug;
    message = "";
    fields = [];
  }

let fresh_ring () =
  let r =
    {
      tid = (Domain.self () :> int);
      slots = Array.make !ring_capacity dummy;
      start = 0;
      len = 0;
      seq = 0;
      dropped = 0;
      gen = !generation;
    }
  in
  Mutex.lock rings_mutex;
  rings := r :: !rings;
  Mutex.unlock rings_mutex;
  r

let key = Domain.DLS.new_key fresh_ring

let refresh r =
  if r.gen <> !generation then begin
    r.slots <- Array.make !ring_capacity dummy;
    r.start <- 0;
    r.len <- 0;
    r.dropped <- 0;
    r.gen <- !generation
  end

let push r ev =
  let cap = Array.length r.slots in
  if r.len = cap then begin
    (* drop the oldest *)
    r.slots.(r.start) <- ev;
    r.start <- (r.start + 1) mod cap;
    r.dropped <- r.dropped + 1
  end
  else begin
    r.slots.((r.start + r.len) mod cap) <- ev;
    r.len <- r.len + 1
  end;
  r.seq <- r.seq + 1

let record ~fields ~domain severity message =
  let r = Domain.DLS.get key in
  refresh r;
  push r
    {
      seq = r.seq;
      ts_ns = Clock.now_ns ();
      tid = r.tid;
      domain;
      severity;
      message;
      fields;
    }

let echo message =
  output_string stderr message;
  output_char stderr '\n';
  flush stderr

let emit ?(fields = []) ~domain severity message =
  (* Record first so the echo cost never delays the timestamp. *)
  if !on then record ~fields ~domain severity message;
  if severity_rank severity >= 2 then echo message

let snapshot () =
  Mutex.lock rings_mutex;
  let all = !rings in
  Mutex.unlock rings_mutex;
  all

let events () =
  let live r =
    if r.gen <> !generation then []
    else
      List.init r.len (fun i ->
          r.slots.((r.start + i) mod Array.length r.slots))
  in
  snapshot ()
  |> List.concat_map live
  |> List.sort (fun a b ->
         match Int64.compare a.ts_ns b.ts_ns with
         | 0 -> (
             match compare a.tid b.tid with
             | 0 -> compare a.seq b.seq
             | c -> c)
         | c -> c)

let fold_live f acc =
  List.fold_left
    (fun acc r -> if r.gen <> !generation then acc else f acc r)
    acc (snapshot ())

let total () = fold_live (fun acc r -> acc + r.seq) 0

let dropped () = fold_live (fun acc r -> acc + r.dropped) 0

let event_json ev =
  Json.Obj
    [
      ("ts_ns", Json.Int (Int64.to_int ev.ts_ns));
      ("tid", Json.Int ev.tid);
      ("seq", Json.Int ev.seq);
      ("domain", Json.String ev.domain);
      ("severity", Json.String (severity_name ev.severity));
      ("msg", Json.String ev.message);
      ( "fields",
        Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) ev.fields) );
    ]

let export_jsonl () =
  let buf = Buffer.create 1024 in
  List.iter
    (fun ev ->
      Json.to_buffer buf (event_json ev);
      Buffer.add_char buf '\n')
    (events ());
  Buffer.contents buf

let export_json () =
  Json.Obj
    [
      ("schema", Json.String "nisq-events/1");
      ("total", Json.Int (total ()));
      ("dropped", Json.Int (dropped ()));
      ("events", Json.List (List.map event_json (events ())));
    ]

let reset () =
  Mutex.lock rings_mutex;
  List.iter
    (fun r ->
      r.start <- 0;
      r.len <- 0;
      r.seq <- 0;
      r.dropped <- 0)
    !rings;
  Mutex.unlock rings_mutex
