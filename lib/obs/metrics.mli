(** Process-wide metrics registry: named counters, gauges and
    fixed-bucket histograms.

    Every cell is an [Atomic.t], so any domain (pool workers included)
    may update any metric without locks. Registration takes a mutex but
    happens once per name — call {!counter}/{!gauge}/{!histogram} at
    module initialization and keep the handle; updates through a handle
    never hash or lock.

    {2 Cost model}

    The registry is globally disabled by default. A disabled update is
    one mutable-ref read and a branch — no allocation, no atomic
    traffic; the [obs:counter-incr] micro-benchmark (bench/main.exe
    micro) pins this within noise of a no-op call.

    {2 Determinism}

    Counters are integer sums of deterministic per-chunk contributions,
    so their totals are bit-identical for any [NISQ_DOMAINS] / pool size
    (asserted by the test suite). Gauges and histograms may carry
    wall-clock measurements (chunk latencies, busy time) and are
    reproducible in shape but not in value. *)

type counter
type gauge
type histogram

val set_enabled : bool -> unit
(** Turn the registry on or off. Off (the default) makes every update a
    no-op. *)

val enabled : unit -> bool
(** Current state; hot paths may hoist this out of loops. *)

(** {1 Counters} — monotonically increasing integers. *)

val counter : string -> counter
(** Register (or look up) the counter named [s]. Idempotent. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int
(** Reads are always live, even while the registry is disabled. *)

(** {1 Gauges} — last-written (or accumulated) floats. *)

val gauge : string -> gauge
val set : gauge -> float -> unit
val gauge_add : gauge -> float -> unit
(** Atomic float accumulation (CAS loop); used for busy-time totals. *)

val gauge_value : gauge -> float

(** {1 Histograms} — fixed upper-bound buckets plus an overflow bucket. *)

val histogram : ?bounds:float array -> string -> histogram
(** [bounds] are ascending inclusive upper bounds; one extra [+inf]
    bucket catches the rest. Re-registering a name returns the existing
    histogram (its original bounds win). Raises [Invalid_argument] on
    empty or unsorted bounds. *)

val observe : histogram -> float -> unit
val histogram_count : histogram -> int
val histogram_sum : histogram -> float

(** {1 Dump / reset} *)

val reset : unit -> unit
(** Zero every registered metric (registrations survive). *)

val counter_values : unit -> (string * int) list
(** All counters sorted by name — the deterministic slice of the
    registry, compared bit-for-bit across pool sizes in tests. *)

val to_prometheus : unit -> string
(** Prometheus text exposition (format 0.0.4) of the whole registry:
    [# HELP]/[# TYPE] per metric, names mapped to
    [nisq_<name with non-[a-zA-Z0-9_:] bytes as '_'>], histogram
    buckets rendered {e cumulatively} with [le] labels (last bucket
    [le="+Inf"]) plus [_sum]/[_count] series. Sections and metrics are
    sorted by name, so output is deterministic for a deterministic
    registry. *)

val escape_label_value : string -> string
(** Prometheus label-value escaping: backslash, double quote and
    newline become backslash-escaped two-byte sequences. *)

val quantile : histogram -> float -> float
(** [quantile h q] estimates the [q]-quantile ([0 <= q <= 1]) of the
    observed distribution by linear interpolation inside the first
    bucket whose cumulative count reaches [q * count]. Observations
    landing in the [+inf] bucket clamp the estimate to the last finite
    bound. Returns [nan] on an empty histogram; raises
    [Invalid_argument] on [q] outside [0, 1]. *)

val dump_json : unit -> Json.t
(** [{"counters": {...}, "gauges": {...}, "histograms": {...}}], every
    section sorted by name. *)

val render : unit -> string
(** Human-readable dump, one metric per line, sorted by name. *)
