(** Monte-Carlo noisy execution — the stand-in for running 8192 trials on
    IBMQ16 (§6 "Metrics").

    The noise model is derived from the calibration data the compiler
    optimizes against:

    - every CNOT suffers a uniform random two-qubit Pauli error with the
      edge's calibrated error probability;
    - every single-qubit gate suffers a uniform random Pauli with the
      qubit's single-gate error probability;
    - between operations, an idle qubit dephases: a Z error fires with
      probability (1 − exp(−t/T2))/2 for idle time t;
    - an idle qubit also relaxes: with probability 1 − exp(−t/T1) an
      amplitude-damping jump is attempted, decaying |1⟩ → |0⟩ with the
      qubit's current excited-state probability (the √(1−γ) no-jump
      backaction on |1⟩ is neglected — a second-order effect at NISQ
      idle times);
    - every readout flips classically with the qubit's readout error.

    The success rate of a job is the fraction of trials whose outcome
    equals the noiseless most-likely outcome, exactly the paper's
    metric.

    {2 Determinism and parallelism}

    Trials are split into fixed-size chunks; chunk [i] draws every
    random number from its own stream seeded by
    [Rng.create (Rng.mix seed i)]. The chunk decomposition depends only
    on [trials] and [seed], so {!success_rate} and {!distribution} are
    bit-for-bit identical whether the chunks run sequentially
    ({!success_rate_seq}) or across any number of domains of a
    {!Nisq_util.Pool.t} — the same answer on a laptop, a 64-core server,
    or with [NISQ_DOMAINS=1]. *)

type op = {
  kind : Nisq_circuit.Gate.kind;
  qubits : int array;  (** hardware qubits *)
  start : int;  (** timeslot *)
  duration : int;
}

type t

val chunk_size : int
(** Trials per Monte-Carlo chunk (256). Fixed: it is part of the
    determinism contract, and checkpoint cell digests assume it. *)

val prepare :
  calib:Nisq_device.Calibration.t ->
  ops:op array ->
  readout:(int * int) list ->
  t
(** [readout] maps measured program qubits to their hardware locations;
    answer bit [i] is the measured value of the [i]-th entry (ascending
    program-qubit order). [ops] must be time-ordered, contain one
    [Measure] per readout entry, and touch no qubit after measuring it.
    Raises [Invalid_argument] otherwise. *)

val num_active_qubits : t -> int
(** Hardware qubits the job actually touches (simulation width). *)

val clifford_capable : t -> bool
(** Whether every unitary in the job is a Clifford generator, making its
    noisy trials eligible for the stabilizer fast path. The injected
    error channels (Pauli faults, dephasing, readout flips) never
    disqualify a job; a fired amplitude-damping site only reroutes that
    single trial to the dense backend. *)

val set_stabilizer_enabled : bool option -> unit
(** Override the stabilizer fast path: [Some false] forces every noisy
    trial onto the dense backend, [Some true] forces the path on for
    Clifford-capable jobs, [None] restores the default (on, unless the
    process started with [NISQ_STABILIZER=0]). Either way the simulated
    results are bit-for-bit identical — this switch exists for the
    equivalence tests and for benchmarking the dense path. *)

val stabilizer_enabled : unit -> bool
(** The switch's current effective value. *)

val ideal_answer : t -> int
(** Most likely noiseless outcome, as a bit-packed answer. *)

val ideal_answer_probability : t -> float
(** Noiseless probability of {!ideal_answer} (≈ 1 for the deterministic
    paper benchmarks). *)

val ideal_distribution : t -> (int * float) list
(** The noiseless answer distribution, ascending by answer. Probabilities
    sum to 1. *)

val run_trial : t -> Nisq_util.Rng.t -> int
(** One noisy execution; returns the (possibly corrupted) answer. *)

val success_rate :
  ?trials:int -> ?pool:Nisq_util.Pool.t -> seed:int -> t -> float
(** Fraction of [trials] (default 4096) matching {!ideal_answer}.
    Chunks run on [pool] (default {!Nisq_util.Pool.default}); the result
    is independent of the pool size (see the determinism contract
    above). *)

val success_rate_seq : ?trials:int -> seed:int -> t -> float
(** The same estimate computed strictly sequentially in the calling
    domain — bit-identical to {!success_rate} for equal arguments; kept
    as the reference path for tests and benchmarks. *)

val distribution :
  ?trials:int -> ?pool:Nisq_util.Pool.t -> seed:int -> t -> (int * int) list
(** Histogram of noisy outcomes, descending count (ties ascending by
    answer). Parallel over [pool] with the same determinism contract as
    {!success_rate}. *)

val distribution_seq : ?trials:int -> seed:int -> t -> (int * int) list
(** Sequential reference path for {!distribution}; bit-identical. *)
