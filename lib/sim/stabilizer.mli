(** Exact stabilizer (tableau) simulation — the Clifford fast path.

    An [n]-qubit stabilizer state is represented by the Aaronson–Gottesman
    CHP tableau: [n] destabilizer and [n] stabilizer generators, each a
    Pauli string with a sign. Because {!Runner} compacts jobs to at most
    24 active qubits, each generator's X and Z components fit in a single
    OCaml int as bit masks, so every gate is a handful of word operations
    per generator — O(n) per gate instead of the dense path's O(2^n) per
    gate.

    The state space is exact, not approximate: any circuit built from
    {H, S, S†, X, Y, Z, CNOT, SWAP} plus Pauli error injections and
    computational-basis measurement is simulated with the same outcome
    probabilities as the dense state vector. Measurement probabilities in
    a stabilizer state are always exactly 0, 1/2 or 1.

    {2 RNG contract}

    {!measure} consumes exactly one [Rng.float rng 1.0] draw per call —
    including deterministic measurements — and decides the outcome by
    [draw < p1], mirroring {!State.measure} draw-for-draw. This is what
    lets {!Runner} route individual trials of one job to either backend
    without perturbing the shared random stream (see DESIGN.md §14). *)

type t

val create : int -> t
(** [create n] is |0…0⟩ over [n] qubits. Raises [Invalid_argument] for
    [n < 1] or [n > 24] (the packed rows need one bit per qubit). *)

val reset : t -> unit
(** Reinitialize to |0…0⟩ in place — no allocation. *)

val num_qubits : t -> int

val is_clifford : Nisq_circuit.Gate.kind -> bool
(** Whether {!apply_gate} accepts the gate kind. True exactly for the
    unitary Clifford generators {H, X, Y, Z, S, S†, CNOT, SWAP}; false
    for T/T†/rotations and for the non-unitary Measure/Barrier. *)

val apply_gate : t -> Nisq_circuit.Gate.kind -> int array -> unit
(** Apply a Clifford unitary to the given qubit operands. Raises
    [Invalid_argument] when [is_clifford kind] is false or on bad
    operands. *)

val apply_pauli : t -> [ `X | `Y | `Z ] -> int -> unit
(** Inject a Pauli error on one qubit (phase-only tableau update). *)

val prob_one : t -> int -> float
(** Probability that measuring the qubit yields 1 — exactly 0.0, 0.5 or
    1.0 for a stabilizer state. Does not collapse and draws nothing. *)

val collapse_one : t -> int -> unit
(** Project the qubit onto |1⟩ — the first half of an amplitude-damping
    jump (the caller applies the X decay afterwards). Projection onto a
    nonzero-probability computational outcome maps stabilizer states to
    stabilizer states, so the jump is exact here too. The caller must
    ensure [prob_one t q > 0]. *)

val measure : t -> Nisq_util.Rng.t -> int -> bool
(** Sample a computational-basis measurement and collapse. Always
    consumes exactly one [Rng.float rng 1.0] (see the RNG contract
    above). *)
