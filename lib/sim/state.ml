module Gate = Nisq_circuit.Gate
module Rng = Nisq_util.Rng
module A1 = Bigarray.Array1

(* Amplitudes live in flat float64 Bigarrays: the buffers sit outside the
   OCaml heap, so a reused register adds nothing to minor-GC pressure no
   matter the qubit count, and element access compiles to direct unboxed
   loads/stores. *)
type vec = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = { n : int; re : vec; im : vec }

let make_vec size : vec =
  Bigarray.Array1.create Bigarray.Float64 Bigarray.C_layout size

let reset t =
  Bigarray.Array1.fill t.re 0.0;
  Bigarray.Array1.fill t.im 0.0;
  Bigarray.Array1.set t.re 0 1.0

let create n =
  if n < 1 || n > 24 then invalid_arg "State.create: need 1..24 qubits";
  let size = 1 lsl n in
  let t = { n; re = make_vec size; im = make_vec size } in
  reset t;
  t

let num_qubits t = t.n

let copy t =
  let size = 1 lsl t.n in
  let re = make_vec size and im = make_vec size in
  Bigarray.Array1.blit t.re re;
  Bigarray.Array1.blit t.im im;
  { n = t.n; re; im }

let check_qubit t q =
  if q < 0 || q >= t.n then invalid_arg "State: qubit out of range"

(* Complex 2x2 matrix as (re, im) pairs, row major. *)
type m2 = {
  a_re : float; a_im : float; b_re : float; b_im : float;
  c_re : float; c_im : float; d_re : float; d_im : float;
}

(* The kernels below index with [A1.unsafe_get/set] applied directly —
   never through an alias binding, which would de-specialize the
   bigarray primitives into generic (boxing) calls: [check_qubit]
   guarantees [mask < size], every index stays in [0, size), and [size]
   is the length of both amplitude buffers by construction. *)

let apply_m2 t q m =
  check_qubit t q;
  let mask = 1 lsl q in
  let size = 1 lsl t.n in
  let re = t.re and im = t.im in
  let base = ref 0 in
  while !base < size do
    for off = 0 to mask - 1 do
      let i = !base + off in
      let j = i + mask in
      let r0 = A1.unsafe_get re i and i0 = A1.unsafe_get im i in
      let r1 = A1.unsafe_get re j and i1 = A1.unsafe_get im j in
      A1.unsafe_set re i
        ((m.a_re *. r0) -. (m.a_im *. i0) +. (m.b_re *. r1) -. (m.b_im *. i1));
      A1.unsafe_set im i
        ((m.a_re *. i0) +. (m.a_im *. r0) +. (m.b_re *. i1) +. (m.b_im *. r1));
      A1.unsafe_set re j
        ((m.c_re *. r0) -. (m.c_im *. i0) +. (m.d_re *. r1) -. (m.d_im *. i1));
      A1.unsafe_set im j
        ((m.c_re *. i0) +. (m.c_im *. r0) +. (m.d_re *. i1) +. (m.d_im *. r1))
    done;
    base := !base + (2 * mask)
  done

let s2 = 1.0 /. sqrt 2.0

(* The fixed gate matrices are preallocated so the trial loop's gate
   dispatch allocates nothing; only parameterized rotations build a
   matrix per application. *)
let m_h =
  { a_re = s2; a_im = 0.; b_re = s2; b_im = 0.;
    c_re = s2; c_im = 0.; d_re = -.s2; d_im = 0. }

let m_x =
  { a_re = 0.; a_im = 0.; b_re = 1.; b_im = 0.;
    c_re = 1.; c_im = 0.; d_re = 0.; d_im = 0. }

let m_y =
  { a_re = 0.; a_im = 0.; b_re = 0.; b_im = -1.;
    c_re = 0.; c_im = 1.; d_re = 0.; d_im = 0. }

let m_z =
  { a_re = 1.; a_im = 0.; b_re = 0.; b_im = 0.;
    c_re = 0.; c_im = 0.; d_re = -1.; d_im = 0. }

let m_s =
  { a_re = 1.; a_im = 0.; b_re = 0.; b_im = 0.;
    c_re = 0.; c_im = 0.; d_re = 0.; d_im = 1. }

let m_sdg =
  { a_re = 1.; a_im = 0.; b_re = 0.; b_im = 0.;
    c_re = 0.; c_im = 0.; d_re = 0.; d_im = -1. }

let m_t =
  { a_re = 1.; a_im = 0.; b_re = 0.; b_im = 0.;
    c_re = 0.; c_im = 0.; d_re = s2; d_im = s2 }

let m_tdg =
  { a_re = 1.; a_im = 0.; b_re = 0.; b_im = 0.;
    c_re = 0.; c_im = 0.; d_re = s2; d_im = -.s2 }

let m_rz a =
  let h = a /. 2.0 in
  { a_re = cos h; a_im = -.sin h; b_re = 0.; b_im = 0.;
    c_re = 0.; c_im = 0.; d_re = cos h; d_im = sin h }

let m_rx a =
  let h = a /. 2.0 in
  { a_re = cos h; a_im = 0.; b_re = 0.; b_im = -.sin h;
    c_re = 0.; c_im = -.sin h; d_re = cos h; d_im = 0. }

let m_ry a =
  let h = a /. 2.0 in
  { a_re = cos h; a_im = 0.; b_re = -.sin h; b_im = 0.;
    c_re = sin h; c_im = 0.; d_re = cos h; d_im = 0. }

let apply_cnot t c tgt =
  check_qubit t c;
  check_qubit t tgt;
  if c = tgt then invalid_arg "State.apply_cnot: identical operands";
  let cmask = 1 lsl c and tmask = 1 lsl tgt in
  let size = 1 lsl t.n in
  let re = t.re and im = t.im in
  for i = 0 to size - 1 do
    if i land cmask <> 0 && i land tmask = 0 then begin
      let j = i lor tmask in
      let r = A1.unsafe_get re i and m = A1.unsafe_get im i in
      A1.unsafe_set re i (A1.unsafe_get re j);
      A1.unsafe_set im i (A1.unsafe_get im j);
      A1.unsafe_set re j r;
      A1.unsafe_set im j m
    end
  done

let apply_swap t a b =
  apply_cnot t a b;
  apply_cnot t b a;
  apply_cnot t a b

let apply_gate t kind qubits =
  match kind with
  | Gate.H -> apply_m2 t qubits.(0) m_h
  | Gate.X -> apply_m2 t qubits.(0) m_x
  | Gate.Y -> apply_m2 t qubits.(0) m_y
  | Gate.Z -> apply_m2 t qubits.(0) m_z
  | Gate.S -> apply_m2 t qubits.(0) m_s
  | Gate.Sdg -> apply_m2 t qubits.(0) m_sdg
  | Gate.T -> apply_m2 t qubits.(0) m_t
  | Gate.Tdg -> apply_m2 t qubits.(0) m_tdg
  | Gate.Rz a -> apply_m2 t qubits.(0) (m_rz a)
  | Gate.Rx a -> apply_m2 t qubits.(0) (m_rx a)
  | Gate.Ry a -> apply_m2 t qubits.(0) (m_ry a)
  | Gate.Cnot -> apply_cnot t qubits.(0) qubits.(1)
  | Gate.Swap -> apply_swap t qubits.(0) qubits.(1)
  | Gate.Measure | Gate.Barrier ->
      invalid_arg "State.apply_gate: non-unitary gate"

let apply_pauli t p q =
  match p with
  | `X -> apply_m2 t q m_x
  | `Y -> apply_m2 t q m_y
  | `Z -> apply_m2 t q m_z

let prob_one t q =
  check_qubit t q;
  let mask = 1 lsl q in
  let size = 1 lsl t.n in
  let re = t.re and im = t.im in
  let p = ref 0.0 in
  for i = 0 to size - 1 do
    if i land mask <> 0 then begin
      let r = A1.unsafe_get re i and m = A1.unsafe_get im i in
      p := !p +. (r *. r) +. (m *. m)
    end
  done;
  !p

let m_renorm = Nisq_obs.Metrics.counter "resilience.sim.renorm"

let collapse_outcome t q v =
  check_qubit t q;
  let p1 = prob_one t q in
  let p = if v then p1 else 1.0 -. p1 in
  (* A requested outcome of (near-)zero probability — float underflow, or
     a fault model asking for the impossible — degrades to the opposite
     outcome instead of killing a whole multi-thousand-trial run. *)
  let v, p =
    if p >= 1e-12 then (v, p)
    else begin
      Nisq_obs.Metrics.incr m_renorm;
      (not v, 1.0 -. p)
    end
  in
  let mask = 1 lsl q in
  let size = 1 lsl t.n in
  let re = t.re and im = t.im in
  if p < 1e-12 then begin
    (* Both outcomes vanished: the register norm itself collapsed. Reset
       to the basis state matching the outcome rather than divide by ~0. *)
    Bigarray.Array1.fill re 0.0;
    Bigarray.Array1.fill im 0.0;
    A1.unsafe_set re (if v then mask else 0) 1.0
  end
  else begin
    let scale = 1.0 /. sqrt p in
    for i = 0 to size - 1 do
      let bit_set = i land mask <> 0 in
      if bit_set = v then begin
        A1.unsafe_set re i (A1.unsafe_get re i *. scale);
        A1.unsafe_set im i (A1.unsafe_get im i *. scale)
      end
      else begin
        A1.unsafe_set re i 0.0;
        A1.unsafe_set im i 0.0
      end
    done
  end;
  v

let collapse t q v = ignore (collapse_outcome t q v : bool)

let measure t rng q =
  let p1 = prob_one t q in
  let v = Rng.float rng 1.0 < p1 in
  collapse_outcome t q v

let sample t rng =
  let u = Rng.float rng 1.0 in
  let size = 1 lsl t.n in
  let re = t.re and im = t.im in
  (* If rounding leaves the cumulative sum below [u] (norm slightly under
     1.0), fall back to the last basis state with nonzero probability —
     never to an unreachable amplitude-zero state. *)
  let acc = ref 0.0 and result = ref (-1) and last_nonzero = ref 0 in
  (try
     for i = 0 to size - 1 do
       let r = A1.unsafe_get re i and m = A1.unsafe_get im i in
       let p = (r *. r) +. (m *. m) in
       if p > 0.0 then last_nonzero := i;
       acc := !acc +. p;
       if u < !acc then begin
         result := i;
         raise Exit
       end
     done
   with Exit -> ());
  if !result >= 0 then !result else !last_nonzero

let probabilities t =
  Array.init (1 lsl t.n) (fun i ->
      let r = A1.unsafe_get t.re i and m = A1.unsafe_get t.im i in
      (r *. r) +. (m *. m))

let amplitude t i = (Bigarray.Array1.get t.re i, Bigarray.Array1.get t.im i)

let fidelity a b =
  if a.n <> b.n then invalid_arg "State.fidelity: size mismatch";
  let re = ref 0.0 and im = ref 0.0 in
  for i = 0 to (1 lsl a.n) - 1 do
    (* conj(a) * b *)
    re := !re +. (A1.unsafe_get a.re i *. A1.unsafe_get b.re i) +. (A1.unsafe_get a.im i *. A1.unsafe_get b.im i);
    im := !im +. (A1.unsafe_get a.re i *. A1.unsafe_get b.im i) -. (A1.unsafe_get a.im i *. A1.unsafe_get b.re i)
  done;
  (!re *. !re) +. (!im *. !im)

let norm t =
  let s = ref 0.0 in
  for i = 0 to (1 lsl t.n) - 1 do
    let r = A1.unsafe_get t.re i and m = A1.unsafe_get t.im i in
    s := !s +. (r *. r) +. (m *. m)
  done;
  !s
