module Gate = Nisq_circuit.Gate
module Rng = Nisq_util.Rng

(* CHP tableau (Aaronson & Gottesman, "Improved simulation of stabilizer
   circuits"): rows 0..n-1 are destabilizers, n..2n-1 stabilizers, row 2n
   is scratch for deterministic measurements. Row i's X and Z Pauli
   components are bit-packed into x.(i) and z.(i) (bit q = qubit q);
   r.(i) is the sign bit (0 = +, 1 = -). *)
type t = { n : int; x : int array; z : int array; r : int array }

let init t =
  let n = t.n in
  Array.fill t.x 0 ((2 * n) + 1) 0;
  Array.fill t.z 0 ((2 * n) + 1) 0;
  Array.fill t.r 0 ((2 * n) + 1) 0;
  for i = 0 to n - 1 do
    t.x.(i) <- 1 lsl i;
    t.z.(n + i) <- 1 lsl i
  done

let create n =
  if n < 1 || n > 24 then invalid_arg "Stabilizer.create: need 1..24 qubits";
  let rows = (2 * n) + 1 in
  let t = { n; x = Array.make rows 0; z = Array.make rows 0; r = Array.make rows 0 } in
  init t;
  t

let reset = init

let num_qubits t = t.n

let check_qubit t q =
  if q < 0 || q >= t.n then invalid_arg "Stabilizer: qubit out of range"

(* Rows hold at most 24 bits, so 32-bit SWAR popcount suffices. *)
let popcount v =
  let v = v - ((v lsr 1) land 0x55555555) in
  let v = (v land 0x33333333) + ((v lsr 2) land 0x33333333) in
  let v = (v + (v lsr 4)) land 0x0F0F0F0F in
  (v * 0x01010101) lsr 24

(* Row h := row i · row h. The phase of the product accumulates, per
   qubit, the exponent g ∈ {-1, 0, 1} of the i factor picked up when
   commuting single-qubit Paulis past each other; the packed masks below
   select the qubits contributing +i and -i respectively. *)
let rowsum t h i =
  let x1 = t.x.(i) and z1 = t.z.(i) and x2 = t.x.(h) and z2 = t.z.(h) in
  let plus =
    (x1 land z1 land z2 land lnot x2)
    lor (x1 land lnot z1 land x2 land z2)
    lor (lnot x1 land z1 land x2 land lnot z2)
  in
  let minus =
    (x1 land z1 land x2 land lnot z2)
    lor (x1 land lnot z1 land lnot x2 land z2)
    lor (lnot x1 land z1 land x2 land z2)
  in
  let total =
    (2 * t.r.(h)) + (2 * t.r.(i)) + popcount plus - popcount minus
  in
  (* the product of commuting generators has a real sign: total mod 4 is
     0 or 2 *)
  t.r.(h) <- (((total mod 4) + 4) mod 4) / 2;
  t.x.(h) <- x2 lxor x1;
  t.z.(h) <- z2 lxor z1

let apply_h t q =
  check_qubit t q;
  let b = 1 lsl q in
  let x = t.x and z = t.z and r = t.r in
  for i = 0 to (2 * t.n) - 1 do
    let xi = x.(i) and zi = z.(i) in
    if xi land zi land b <> 0 then r.(i) <- r.(i) lxor 1;
    (* swap the X and Z bits at q *)
    if (xi lxor zi) land b <> 0 then begin
      x.(i) <- xi lxor b;
      z.(i) <- zi lxor b
    end
  done

let apply_s t q =
  check_qubit t q;
  let b = 1 lsl q in
  let x = t.x and z = t.z and r = t.r in
  for i = 0 to (2 * t.n) - 1 do
    let xi = x.(i) in
    if xi land b <> 0 then begin
      if z.(i) land b <> 0 then r.(i) <- r.(i) lxor 1;
      z.(i) <- z.(i) lxor b
    end
  done

let apply_sdg t q =
  check_qubit t q;
  let b = 1 lsl q in
  let x = t.x and z = t.z and r = t.r in
  for i = 0 to (2 * t.n) - 1 do
    let xi = x.(i) in
    if xi land b <> 0 then begin
      if z.(i) land b = 0 then r.(i) <- r.(i) lxor 1;
      z.(i) <- z.(i) lxor b
    end
  done

let apply_x t q =
  check_qubit t q;
  let b = 1 lsl q in
  let z = t.z and r = t.r in
  for i = 0 to (2 * t.n) - 1 do
    if z.(i) land b <> 0 then r.(i) <- r.(i) lxor 1
  done

let apply_z t q =
  check_qubit t q;
  let b = 1 lsl q in
  let x = t.x and r = t.r in
  for i = 0 to (2 * t.n) - 1 do
    if x.(i) land b <> 0 then r.(i) <- r.(i) lxor 1
  done

let apply_y t q =
  check_qubit t q;
  let b = 1 lsl q in
  let x = t.x and z = t.z and r = t.r in
  for i = 0 to (2 * t.n) - 1 do
    if (x.(i) lxor z.(i)) land b <> 0 then r.(i) <- r.(i) lxor 1
  done

let apply_cnot t c tgt =
  check_qubit t c;
  check_qubit t tgt;
  if c = tgt then invalid_arg "Stabilizer.apply_cnot: identical operands";
  let cb = 1 lsl c and tb = 1 lsl tgt in
  let x = t.x and z = t.z and r = t.r in
  for i = 0 to (2 * t.n) - 1 do
    let xi = x.(i) and zi = z.(i) in
    if
      xi land cb <> 0
      && zi land tb <> 0
      && (xi land tb <> 0) = (zi land cb <> 0)
    then r.(i) <- r.(i) lxor 1;
    if xi land cb <> 0 then x.(i) <- x.(i) lxor tb;
    if zi land tb <> 0 then z.(i) <- z.(i) lxor cb
  done

(* SWAP relabels the qubits: exchange bits a and b of every row, no
   phase change. *)
let apply_swap t a b =
  check_qubit t a;
  check_qubit t b;
  if a = b then invalid_arg "Stabilizer.apply_swap: identical operands";
  let swap_bits v =
    let ba = (v lsr a) land 1 and bb = (v lsr b) land 1 in
    if ba <> bb then v lxor ((1 lsl a) lor (1 lsl b)) else v
  in
  let x = t.x and z = t.z in
  for i = 0 to (2 * t.n) - 1 do
    x.(i) <- swap_bits x.(i);
    z.(i) <- swap_bits z.(i)
  done

let is_clifford = function
  | Gate.H | Gate.X | Gate.Y | Gate.Z | Gate.S | Gate.Sdg | Gate.Cnot
  | Gate.Swap ->
      true
  | Gate.T | Gate.Tdg | Gate.Rz _ | Gate.Rx _ | Gate.Ry _ | Gate.Measure
  | Gate.Barrier ->
      false

let apply_gate t kind qubits =
  match kind with
  | Gate.H -> apply_h t qubits.(0)
  | Gate.X -> apply_x t qubits.(0)
  | Gate.Y -> apply_y t qubits.(0)
  | Gate.Z -> apply_z t qubits.(0)
  | Gate.S -> apply_s t qubits.(0)
  | Gate.Sdg -> apply_sdg t qubits.(0)
  | Gate.Cnot -> apply_cnot t qubits.(0) qubits.(1)
  | Gate.Swap -> apply_swap t qubits.(0) qubits.(1)
  | Gate.T | Gate.Tdg | Gate.Rz _ | Gate.Rx _ | Gate.Ry _ | Gate.Measure
  | Gate.Barrier ->
      invalid_arg "Stabilizer.apply_gate: not a Clifford unitary"

let apply_pauli t p q =
  match p with
  | `X -> apply_x t q
  | `Y -> apply_y t q
  | `Z -> apply_z t q

(* First stabilizer row (n..2n-1) anticommuting with Z_q, i.e. with an X
   component on q — its presence means the measurement outcome is
   uniformly random. *)
let anticommuting_stabilizer t q =
  let b = 1 lsl q in
  let n = t.n in
  let rec find i =
    if i >= 2 * n then -1 else if t.x.(i) land b <> 0 then i else find (i + 1)
  in
  find n

(* Deterministic outcome: multiply into the scratch row every stabilizer
   whose destabilizer partner anticommutes with Z_q; the resulting sign
   is the outcome. Leaves the tableau unchanged apart from scratch. *)
let deterministic_one t q =
  let b = 1 lsl q in
  let n = t.n in
  let s = 2 * n in
  t.x.(s) <- 0;
  t.z.(s) <- 0;
  t.r.(s) <- 0;
  for i = 0 to n - 1 do
    if t.x.(i) land b <> 0 then rowsum t s (i + n)
  done;
  t.r.(s) = 1

let prob_one t q =
  check_qubit t q;
  if anticommuting_stabilizer t q >= 0 then 0.5
  else if deterministic_one t q then 1.0
  else 0.0

(* Project qubit q onto |1⟩ (no renormalization bookkeeping needed: a
   stabilizer state projected onto a nonzero-probability outcome is
   again a stabilizer state). Caller guarantees [prob_one t q > 0]. *)
let collapse_one t q =
  check_qubit t q;
  let p = anticommuting_stabilizer t q in
  if p >= 0 then begin
    let b = 1 lsl q in
    let n = t.n in
    for i = 0 to (2 * n) - 1 do
      if i <> p && t.x.(i) land b <> 0 then rowsum t i p
    done;
    t.x.(p - n) <- t.x.(p);
    t.z.(p - n) <- t.z.(p);
    t.r.(p - n) <- t.r.(p);
    t.x.(p) <- 0;
    t.z.(p) <- b;
    t.r.(p) <- 1
  end
  (* else the outcome is already deterministic-1: nothing to project *)

let measure t rng q =
  check_qubit t q;
  let p = anticommuting_stabilizer t q in
  if p >= 0 then begin
    let v = Rng.float rng 1.0 < 0.5 in
    let b = 1 lsl q in
    let n = t.n in
    for i = 0 to (2 * n) - 1 do
      if i <> p && t.x.(i) land b <> 0 then rowsum t i p
    done;
    (* the old stabilizer p becomes the destabilizer of the new Z_q
       stabilizer installed in its place *)
    t.x.(p - n) <- t.x.(p);
    t.z.(p - n) <- t.z.(p);
    t.r.(p - n) <- t.r.(p);
    t.x.(p) <- 0;
    t.z.(p) <- b;
    t.r.(p) <- (if v then 1 else 0);
    v
  end
  else begin
    let p1 = if deterministic_one t q then 1.0 else 0.0 in
    (* the draw is consumed even though the outcome is fixed, so the
       random stream stays aligned with the dense path (RNG contract) *)
    Rng.float rng 1.0 < p1
  end
