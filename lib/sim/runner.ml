module Gate = Nisq_circuit.Gate
module Calibration = Nisq_device.Calibration
module Rng = Nisq_util.Rng
module Pool = Nisq_util.Pool
module Clock = Nisq_obs.Clock
module Metrics = Nisq_obs.Metrics
module Trace = Nisq_obs.Trace

(* Fault tallies are accumulated per chunk in plain ints and batch-added
   here, so the counter totals are sums over the fixed chunk
   decomposition — identical for any pool size. Chunk latency is
   wall-clock and lands in a histogram instead. *)
let m_trials = Metrics.counter "sim.trials"
let m_fault_t2 = Metrics.counter "sim.faults.t2_dephase"
let m_fault_t1 = Metrics.counter "sim.faults.t1_damp"
let m_fault_single = Metrics.counter "sim.faults.single"
let m_fault_cnot = Metrics.counter "sim.faults.cnot"
let m_fault_readout = Metrics.counter "sim.faults.readout"

(* Noisy-trial routing between the stabilizer tableau and the dense
   state vector (fault-free trials take the ideal-distribution shortcut
   and count under neither). Tallied per chunk like the fault counters,
   so the split is pool-size-independent. *)
let m_clifford_hit = Metrics.counter "sim.clifford.hit"
let m_clifford_fallback = Metrics.counter "sim.clifford.fallback"

let chunk_bounds = [| 1e4; 3e4; 1e5; 3e5; 1e6; 3e6; 1e7; 3e7; 1e8 |]

let h_chunk_ns = Metrics.histogram "sim.chunk_latency_ns" ~bounds:chunk_bounds

(* The same latency, split by which backend the chunk's noisy trials ran
   on, so tableau and dense chunk costs are separately observable. *)
let h_chunk_tab_ns =
  Metrics.histogram "sim.chunk_latency_tableau_ns" ~bounds:chunk_bounds

let h_chunk_dense_ns =
  Metrics.histogram "sim.chunk_latency_dense_ns" ~bounds:chunk_bounds

type op = { kind : Gate.kind; qubits : int array; start : int; duration : int }

type site =
  | Dephase of { local : int; prob : float }  (* Z with prob before the op *)
  | Damp of { local : int; prob : float }
      (* amplitude-damping jump attempt before the op: when fired, the
         qubit decays |1> -> |0> with its current excited-state
         probability (the no-jump backaction is neglected; see mli) *)
  | Fault1 of { local : int; prob : float }  (* random Pauli after a 1q gate *)
  | Fault2 of { l0 : int; l1 : int; prob : float }  (* 2q Pauli after a CNOT *)

type prepared_op = {
  kind : Gate.kind;
  locals : int array;  (* operands as local (compacted) indices *)
  pre : site array;  (* Dephase/Damp idle-noise sites, in order *)
  fault : site option;  (* the gate-fault site, applied after the op *)
  readout_flip : float;  (* measure ops only *)
  answer_bit : int;  (* measure ops only: bit position in the answer *)
}

type t = {
  num_local : int;
  ops : prepared_op array;
  (* Flattened firing probabilities of every noise site, in execution
     order (per op: pre sites then the fault site). One linear scan of
     this array decides a whole trial's fault set. *)
  site_probs : float array;
  (* channel of each flat site, parallel to [site_probs]; indexes the
     per-chunk tally (see [tally_slot]) *)
  site_kinds : int array;
  ideal : int;
  ideal_prob : float;
  (* cumulative distribution over answers for the no-fault shortcut *)
  answer_values : int array;
  answer_cumulative : float array;
  (* every unitary in [ops] is a Clifford generator, so noisy trials may
     run on the stabilizer tableau (see [run_trial_scratch]) *)
  clifford_ok : bool;
}

(* The stabilizer fast path is on by default; NISQ_STABILIZER=0 (or
   "off"/"false") forces every noisy trial onto the dense path, and the
   programmatic override exists for equivalence tests that compare the
   two backends in one process. *)
let stabilizer_override = Atomic.make None

let set_stabilizer_enabled v = Atomic.set stabilizer_override v

(* read once at load: a lazy would race when worker domains force it *)
let stabilizer_env =
  match Sys.getenv_opt "NISQ_STABILIZER" with
  | Some ("0" | "off" | "false" | "no") -> false
  | _ -> true

let stabilizer_enabled () =
  match Atomic.get stabilizer_override with
  | Some v -> v
  | None -> stabilizer_env

let dephase_prob calib ~hw ~gap_slots =
  if gap_slots <= 0 then 0.0
  else
    let t2_ns = calib.Calibration.t2_us.(hw) *. 1000.0 in
    let gap_ns = Float.of_int gap_slots *. Calibration.timeslot_ns in
    0.5 *. (1.0 -. exp (-.gap_ns /. t2_ns))

let damp_prob calib ~hw ~gap_slots =
  if gap_slots <= 0 then 0.0
  else
    let t1_ns = calib.Calibration.t1_us.(hw) *. 1000.0 in
    let gap_ns = Float.of_int gap_slots *. Calibration.timeslot_ns in
    1.0 -. exp (-.gap_ns /. t1_ns)

let site_prob = function
  | Dephase { prob; _ } | Damp { prob; _ } | Fault1 { prob; _ }
  | Fault2 { prob; _ } -> prob

(* Tally slots: 0 dephase (T2), 1 damp (T1), 2 single-qubit fault,
   3 CNOT fault, 4 readout flip. *)
let tally_slot = function
  | Dephase _ -> 0
  | Damp _ -> 1
  | Fault1 _ -> 2
  | Fault2 _ -> 3

let tally_slots = 5

let readout_slot = 4

(* Run the unitary part noiselessly (measurements deferred) and return the
   final state. *)
let noiseless_final_state num_local (ops : prepared_op array) =
  let st = State.create num_local in
  Array.iter
    (fun op ->
      match op.kind with
      | Gate.Measure | Gate.Barrier -> ()
      | k -> State.apply_gate st k op.locals)
    ops;
  st

let prepare ~calib ~ops ~readout =
  (* Validate time-ordering. *)
  let () =
    let last = ref min_int in
    Array.iter
      (fun o ->
        if o.start < !last then invalid_arg "Runner.prepare: ops not time-ordered";
        last := o.start)
      ops
  in
  (* Compact hardware qubits to local indices. *)
  let local_of = Hashtbl.create 16 in
  let next = ref 0 in
  let local hw =
    match Hashtbl.find_opt local_of hw with
    | Some l -> l
    | None ->
        let l = !next in
        Hashtbl.add local_of hw l;
        incr next;
        l
  in
  Array.iter (fun o -> Array.iter (fun q -> ignore (local q)) o.qubits) ops;
  List.iter (fun (_, hw) -> ignore (local hw)) readout;
  let num_local = !next in
  if num_local > 24 then invalid_arg "Runner.prepare: too many active qubits";
  (* Answer-bit positions: ascending program qubit order. *)
  let sorted_readout = List.sort compare readout in
  let bit_of_hw = Hashtbl.create 8 in
  List.iteri (fun i (_, hw) -> Hashtbl.add bit_of_hw hw i) sorted_readout;
  (* Build prepared ops with noise sites. *)
  let last_time = Array.make num_local 0 in
  let measured = Array.make num_local false in
  let prepared =
    Array.map
      (fun o ->
        let locals = Array.map local o.qubits in
        Array.iter
          (fun l ->
            if measured.(l) then
              invalid_arg "Runner.prepare: op touches an already-measured qubit")
          locals;
        let pre =
          Array.to_list
            (Array.mapi
               (fun idx l ->
                 let hw = o.qubits.(idx) in
                 let gap_slots = o.start - last_time.(l) in
                 [
                   Dephase { local = l; prob = dephase_prob calib ~hw ~gap_slots };
                   Damp { local = l; prob = damp_prob calib ~hw ~gap_slots };
                 ])
               locals)
          |> List.concat |> Array.of_list
        in
        Array.iter (fun l -> last_time.(l) <- o.start + o.duration) locals;
        let fault =
          match o.kind with
          | Gate.Cnot ->
              Some
                (Fault2
                   {
                     l0 = locals.(0);
                     l1 = locals.(1);
                     prob = Calibration.cnot_error calib o.qubits.(0) o.qubits.(1);
                   })
          | Gate.Measure | Gate.Barrier -> None
          | Gate.Swap -> invalid_arg "Runner.prepare: lower Swap gates first"
          | _ ->
              Some
                (Fault1
                   {
                     local = locals.(0);
                     prob = calib.Calibration.single_error.(o.qubits.(0));
                   })
        in
        let readout_flip, answer_bit =
          match o.kind with
          | Gate.Measure ->
              measured.(locals.(0)) <- true;
              let hw = o.qubits.(0) in
              let bit =
                match Hashtbl.find_opt bit_of_hw hw with
                | Some b -> b
                | None ->
                    invalid_arg
                      "Runner.prepare: measured qubit absent from readout map"
              in
              (Calibration.readout_error calib hw, bit)
          | _ -> (0.0, -1)
        in
        { kind = o.kind; locals; pre; fault; readout_flip; answer_bit })
      ops
  in
  let num_measures =
    Array.fold_left
      (fun acc o -> if o.kind = Gate.Measure then acc + 1 else acc)
      0 prepared
  in
  if num_measures <> List.length readout then
    invalid_arg "Runner.prepare: measure count does not match readout map";
  (* Flattened site probabilities in execution order. *)
  let site_probs, site_kinds =
    let acc = ref [] in
    Array.iter
      (fun op ->
        Array.iter (fun s -> acc := s :: !acc) op.pre;
        Option.iter (fun s -> acc := s :: !acc) op.fault)
      prepared;
    let sites = Array.of_list (List.rev !acc) in
    (Array.map site_prob sites, Array.map tally_slot sites)
  in
  (* Ideal answer distribution from the noiseless final state. *)
  let final = noiseless_final_state num_local prepared in
  let probs = State.probabilities final in
  let answer_of_basis =
    (* map a basis index to the packed answer using measured locals *)
    let pairs =
      List.map (fun (_, hw) -> Hashtbl.find local_of hw) sorted_readout
    in
    fun basis ->
      List.fold_left
        (fun (acc, bit) l ->
          ((if basis land (1 lsl l) <> 0 then acc lor (1 lsl bit) else acc), bit + 1))
        (0, 0) pairs
      |> fst
  in
  let answer_probs = Hashtbl.create 16 in
  Array.iteri
    (fun basis p ->
      if p > 0.0 then begin
        let a = answer_of_basis basis in
        let prev = Option.value ~default:0.0 (Hashtbl.find_opt answer_probs a) in
        Hashtbl.replace answer_probs a (prev +. p)
      end)
    probs;
  let pairs =
    Hashtbl.fold (fun a p acc -> (a, p) :: acc) answer_probs []
    |> List.sort compare
  in
  let ideal, ideal_prob =
    List.fold_left
      (fun (ba, bp) (a, p) -> if p > bp then (a, p) else (ba, bp))
      (-1, neg_infinity) pairs
  in
  let answer_values = Array.of_list (List.map fst pairs) in
  let answer_cumulative =
    let acc = ref 0.0 in
    Array.of_list
      (List.map
         (fun (_, p) ->
           acc := !acc +. p;
           !acc)
         pairs)
  in
  let clifford_ok =
    Array.for_all
      (fun (o : prepared_op) ->
        match o.kind with
        | Gate.Measure | Gate.Barrier -> true
        | k -> Stabilizer.is_clifford k)
      prepared
  in
  { num_local; ops = prepared; site_probs; site_kinds; ideal; ideal_prob;
    answer_values; answer_cumulative; clifford_ok }

let num_active_qubits t = t.num_local

let clifford_capable t = t.clifford_ok

let ideal_answer t = t.ideal

let ideal_answer_probability t = t.ideal_prob

let ideal_distribution t =
  let n = Array.length t.answer_values in
  List.init n (fun i ->
      let p =
        if i = 0 then t.answer_cumulative.(0)
        else t.answer_cumulative.(i) -. t.answer_cumulative.(i - 1)
      in
      (t.answer_values.(i), p))

let sample_ideal t rng =
  let u = Rng.float rng 1.0 in
  let n = Array.length t.answer_cumulative in
  let rec find i =
    if i >= n - 1 then t.answer_values.(n - 1)
    else if u < t.answer_cumulative.(i) then t.answer_values.(i)
    else find (i + 1)
  in
  find 0

let random_pauli rng = match Rng.int rng 3 with 0 -> `X | 1 -> `Y | _ -> `Z

(* A uniform non-identity two-qubit Pauli: pick one of the 15 non-II
   combinations of {I,X,Y,Z}^2. *)
let apply_random_pauli2 st rng l0 l1 =
  let k = 1 + Rng.int rng 15 in
  let p0 = k land 3 and p1 = (k lsr 2) land 3 in
  let apply l = function
    | 1 -> State.apply_pauli st `X l
    | 2 -> State.apply_pauli st `Y l
    | 3 -> State.apply_pauli st `Z l
    | _ -> ()
  in
  apply l0 p0;
  apply l1 p1

(* The tableau twin, drawing the same random numbers. *)
let apply_random_pauli2_tab st rng l0 l1 =
  let k = 1 + Rng.int rng 15 in
  let p0 = k land 3 and p1 = (k lsr 2) land 3 in
  let apply l = function
    | 1 -> Stabilizer.apply_pauli st `X l
    | 2 -> Stabilizer.apply_pauli st `Y l
    | 3 -> Stabilizer.apply_pauli st `Z l
    | _ -> ()
  in
  apply l0 p0;
  apply l1 p1

(* Per-trial scratch: the sorted flat indices of the sites that fired,
   plus the reusable simulator registers. Sized once per job, cached per
   domain in [arena] and reused across every chunk the domain runs for
   that job, so the chunk loop performs no per-trial or per-chunk buffer
   allocation. Each domain owns its own scratch; [t] itself is shared
   read-only. *)
type scratch = {
  fired : int array;
  mutable nfired : int;
  tally : int array;  (* per-channel fired-site counts, see [tally_slot] *)
  state : State.t;  (* dense register, [State.reset] per noisy trial *)
  tableau : Stabilizer.t option;  (* Some iff [t.clifford_ok] *)
  mutable tab_trials : int;  (* per-chunk: noisy trials on the tableau *)
  mutable dense_trials : int;  (* per-chunk: noisy trials on dense *)
}

let create_scratch t =
  {
    fired = Array.make (max 1 (Array.length t.site_probs)) 0;
    nfired = 0;
    tally = Array.make tally_slots 0;
    state = State.create t.num_local;
    tableau = (if t.clifford_ok then Some (Stabilizer.create t.num_local) else None);
    tab_trials = 0;
    dense_trials = 0;
  }

let arena : (t, scratch) Nisq_util.Scratch.t = Nisq_util.Scratch.create ()

(* The domain's cached scratch for [t], with the per-chunk accumulators
   cleared. Pool chunks never nest on a domain, so the value is exclusive
   to the caller for the duration of the chunk. *)
let scratch_for t =
  let s = Nisq_util.Scratch.get arena ~key:t ~make:create_scratch in
  s.nfired <- 0;
  Array.fill s.tally 0 tally_slots 0;
  s.tab_trials <- 0;
  s.dense_trials <- 0;
  s

(* Decide which noise sites fire this trial. Fills [scratch.fired] with
   flat site indices in increasing (execution) order; allocates nothing,
   and on the common fault-free path leaves [scratch.nfired = 0]. *)
let sample_faults t scratch rng =
  let probs = t.site_probs in
  let n = Array.length probs in
  let fired = scratch.fired in
  let nfired = ref 0 in
  for i = 0 to n - 1 do
    let p = Array.unsafe_get probs i in
    if p > 0.0 && Rng.float rng 1.0 < p then begin
      Array.unsafe_set fired !nfired i;
      incr nfired
    end
  done;
  scratch.nfired <- !nfired

(* Replay the circuit applying the fired sites. The fired array is sorted
   in execution order, so a single cursor walks it in lockstep with the
   flat site counter — no per-trial hash table. *)
let run_noisy t scratch rng =
  let fired = scratch.fired and nfired = scratch.nfired in
  let st = scratch.state in
  State.reset st;
  let answer = ref 0 in
  let cursor = ref 0 in
  let flat = ref 0 in
  let fires () =
    !cursor < nfired && Array.unsafe_get fired !cursor = !flat
  in
  Array.iter
    (fun op ->
      Array.iter
        (fun site ->
          (if fires () then begin
             incr cursor;
             match site with
             | Dephase { local; _ } -> State.apply_pauli st `Z local
             | Damp { local; _ } ->
                 (* amplitude-damping jump: decay |1> -> |0> with the
                    current excited-state probability *)
                 let p1 = State.prob_one st local in
                 if p1 > 1e-12 && Rng.float rng 1.0 < p1 then begin
                   State.collapse st local true;
                   State.apply_pauli st `X local
                 end
             | Fault1 _ | Fault2 _ -> assert false
           end);
          incr flat)
        op.pre;
      (match op.kind with
      | Gate.Barrier -> ()
      | Gate.Measure ->
          let bit = State.measure st rng op.locals.(0) in
          (* the flip draw happens unconditionally, as before, so the
             stream of random numbers is unchanged by the tally *)
          let flipped = Rng.float rng 1.0 < op.readout_flip in
          if flipped then
            scratch.tally.(readout_slot) <- scratch.tally.(readout_slot) + 1;
          let bit = if flipped then not bit else bit in
          if bit then answer := !answer lor (1 lsl op.answer_bit)
      | k -> State.apply_gate st k op.locals);
      match op.fault with
      | None -> ()
      | Some site ->
          (if fires () then begin
             incr cursor;
             match site with
             | Fault1 { local; _ } -> State.apply_pauli st (random_pauli rng) local
             | Fault2 { l0; l1; _ } -> apply_random_pauli2 st rng l0 l1
             | Dephase _ | Damp _ -> assert false
           end);
          incr flat)
    t.ops;
  !answer

(* The tableau replay: structurally identical to [run_noisy] — same op
   walk, same cursor discipline, and draw-for-draw the same RNG
   consumption (each measure takes one float draw on both backends, see
   Stabilizer's RNG contract; a fired damp site takes one gated draw on
   both) — so a trial produces bit-identical answers on either
   backend. *)
let run_noisy_tab t scratch rng =
  let fired = scratch.fired and nfired = scratch.nfired in
  let st =
    match scratch.tableau with Some st -> st | None -> assert false
  in
  Stabilizer.reset st;
  let answer = ref 0 in
  let cursor = ref 0 in
  let flat = ref 0 in
  let fires () =
    !cursor < nfired && Array.unsafe_get fired !cursor = !flat
  in
  Array.iter
    (fun op ->
      Array.iter
        (fun site ->
          (if fires () then begin
             incr cursor;
             match site with
             | Dephase { local; _ } -> Stabilizer.apply_pauli st `Z local
             | Damp { local; _ } ->
                 (* the damp jump is a projective collapse + X decay —
                    a stabilizer operation, simulated exactly with the
                    same draw-gating rule as the dense path (tableau
                    probabilities are exactly 0, 1/2 or 1, and the
                    dense amplitudes of a stabilizer state are exact
                    zeros off its support, so the p1 > 1e-12 gate
                    agrees on whether the draw happens) *)
                 let p1 = Stabilizer.prob_one st local in
                 if p1 > 1e-12 && Rng.float rng 1.0 < p1 then begin
                   Stabilizer.collapse_one st local;
                   Stabilizer.apply_pauli st `X local
                 end
             | Fault1 _ | Fault2 _ -> assert false
           end);
          incr flat)
        op.pre;
      (match op.kind with
      | Gate.Barrier -> ()
      | Gate.Measure ->
          let bit = Stabilizer.measure st rng op.locals.(0) in
          let flipped = Rng.float rng 1.0 < op.readout_flip in
          if flipped then
            scratch.tally.(readout_slot) <- scratch.tally.(readout_slot) + 1;
          let bit = if flipped then not bit else bit in
          if bit then answer := !answer lor (1 lsl op.answer_bit)
      | k -> Stabilizer.apply_gate st k op.locals);
      match op.fault with
      | None -> ()
      | Some site ->
          (if fires () then begin
             incr cursor;
             match site with
             | Fault1 { local; _ } ->
                 Stabilizer.apply_pauli st (random_pauli rng) local
             | Fault2 { l0; l1; _ } -> apply_random_pauli2_tab st rng l0 l1
             | Dephase _ | Damp _ -> assert false
           end);
          incr flat)
    t.ops;
  !answer

let readout_flips t scratch rng answer =
  Array.fold_left
    (fun acc op ->
      (* same draw pattern as before the tally existed: one flip draw per
         measure op, none for other ops *)
      if op.kind = Gate.Measure && Rng.float rng 1.0 < op.readout_flip then begin
        scratch.tally.(readout_slot) <- scratch.tally.(readout_slot) + 1;
        acc lxor (1 lsl op.answer_bit)
      end
      else acc)
    answer t.ops

(* Per-trial dispatch (DESIGN.md §14): a fault-free trial samples the
   exact ideal distribution; a noisy trial replays on the stabilizer
   tableau when every unitary of the job is Clifford (the sampled error
   channels — Pauli faults, dephasing, damp jumps, readout flips — are
   all stabilizer operations and never disqualify a trial), and on the
   dense vector otherwise. The decision depends only on the job and the
   trial's own fault sample, so it is identical at every pool size. *)
let run_trial_scratch t ~use_tab scratch rng =
  sample_faults t scratch rng;
  if scratch.nfired = 0 then
    (* Fault-free trial: the quantum part is exact, only sampling and
       classical readout noise remain. *)
    readout_flips t scratch rng (sample_ideal t rng)
  else begin
    for c = 0 to scratch.nfired - 1 do
      let k = t.site_kinds.(scratch.fired.(c)) in
      scratch.tally.(k) <- scratch.tally.(k) + 1
    done;
    if use_tab then begin
      scratch.tab_trials <- scratch.tab_trials + 1;
      run_noisy_tab t scratch rng
    end
    else begin
      scratch.dense_trials <- scratch.dense_trials + 1;
      run_noisy t scratch rng
    end
  end

let run_trial t rng =
  let use_tab = t.clifford_ok && stabilizer_enabled () in
  run_trial_scratch t ~use_tab (scratch_for t) rng

(* ------------------------------------------------------------------ *)
(* Chunked Monte-Carlo estimation                                      *)
(*                                                                     *)
(* Trials are split into fixed-size chunks; chunk [i] draws from the   *)
(* independent stream [Rng.create (Rng.mix seed i)]. The chunk         *)
(* decomposition depends only on [trials] and [seed] — never on the    *)
(* pool size — so estimates are bit-for-bit identical whether chunks   *)
(* run sequentially or across any number of domains.                   *)
(* ------------------------------------------------------------------ *)

let chunk_size = 256

let num_chunks trials = (trials + chunk_size - 1) / chunk_size

let chunk_trials ~trials i = min chunk_size (trials - (i * chunk_size))

(* Publish a chunk's tallies. [Metrics.add] of a deterministic per-chunk
   quantity keeps counter totals independent of the pool size. *)
let publish_tally scratch ~n =
  Metrics.add m_trials n;
  Metrics.add m_fault_t2 scratch.tally.(0);
  Metrics.add m_fault_t1 scratch.tally.(1);
  Metrics.add m_fault_single scratch.tally.(2);
  Metrics.add m_fault_cnot scratch.tally.(3);
  Metrics.add m_fault_readout scratch.tally.(readout_slot);
  Metrics.add m_clifford_hit scratch.tab_trials;
  Metrics.add m_clifford_fallback scratch.dense_trials

let observe_chunk ~use_tab t0 =
  let ns = Int64.to_float (Int64.sub (Clock.now_ns ()) t0) in
  Metrics.observe h_chunk_ns ns;
  Metrics.observe (if use_tab then h_chunk_tab_ns else h_chunk_dense_ns) ns

let chunk_hits t ~seed ~trials i =
  Trace.with_span "sim.chunk" @@ fun () ->
  let record = Metrics.enabled () in
  let t0 = if record then Clock.now_ns () else 0L in
  let n = chunk_trials ~trials i in
  let rng = Rng.create (Rng.mix seed i) in
  let use_tab = t.clifford_ok && stabilizer_enabled () in
  let scratch = scratch_for t in
  let hits = ref 0 in
  for _ = 1 to n do
    if run_trial_scratch t ~use_tab scratch rng = t.ideal then incr hits
  done;
  if record then begin
    observe_chunk ~use_tab t0;
    publish_tally scratch ~n
  end;
  !hits

let check_trials fn trials =
  if trials <= 0 then invalid_arg (fn ^ ": trials must be positive")

let success_rate_seq ?(trials = 4096) ~seed t =
  check_trials "Runner.success_rate_seq" trials;
  let hits = ref 0 in
  for i = 0 to num_chunks trials - 1 do
    (* Same cancellation point the pool path hits via [Pool.run_chunk],
       so deadlines and [kill:chunk] faults behave identically at pool
       size 0. *)
    Nisq_runkit.Deadline.chunk_checkpoint i;
    hits := !hits + chunk_hits t ~seed ~trials i
  done;
  Float.of_int !hits /. Float.of_int trials

let success_rate ?(trials = 4096) ?pool ~seed t =
  check_trials "Runner.success_rate" trials;
  Trace.with_span "simulate" @@ fun () ->
  let pool = match pool with Some p -> p | None -> Pool.default () in
  let hits =
    Pool.parallel_chunks pool ~chunks:(num_chunks trials)
      (chunk_hits t ~seed ~trials)
    |> List.fold_left ( + ) 0
  in
  Float.of_int hits /. Float.of_int trials

let chunk_counts t ~seed ~trials i =
  Trace.with_span "sim.chunk" @@ fun () ->
  let record = Metrics.enabled () in
  let t0 = if record then Clock.now_ns () else 0L in
  let n = chunk_trials ~trials i in
  let rng = Rng.create (Rng.mix seed i) in
  let use_tab = t.clifford_ok && stabilizer_enabled () in
  let scratch = scratch_for t in
  let counts = Hashtbl.create 32 in
  for _ = 1 to n do
    let a = run_trial_scratch t ~use_tab scratch rng in
    Hashtbl.replace counts a
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts a))
  done;
  if record then begin
    observe_chunk ~use_tab t0;
    publish_tally scratch ~n
  end;
  counts

let merge_counts per_chunk =
  let total = Hashtbl.create 32 in
  List.iter
    (fun counts ->
      Hashtbl.iter
        (fun a c ->
          Hashtbl.replace total a
            (c + Option.value ~default:0 (Hashtbl.find_opt total a)))
        counts)
    per_chunk;
  Hashtbl.fold (fun a c acc -> (a, c) :: acc) total []
  |> List.sort (fun (a1, c1) (a2, c2) ->
         if c1 <> c2 then compare c2 c1 else compare a1 a2)

let distribution_seq ?(trials = 4096) ~seed t =
  check_trials "Runner.distribution_seq" trials;
  merge_counts
    (List.init (num_chunks trials) (fun i ->
         Nisq_runkit.Deadline.chunk_checkpoint i;
         chunk_counts t ~seed ~trials i))

let distribution ?(trials = 4096) ?pool ~seed t =
  check_trials "Runner.distribution" trials;
  Trace.with_span "simulate" @@ fun () ->
  let pool = match pool with Some p -> p | None -> Pool.default () in
  merge_counts
    (Pool.parallel_chunks pool ~chunks:(num_chunks trials)
       (chunk_counts t ~seed ~trials))
