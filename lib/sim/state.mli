(** Dense state-vector simulation.

    A register of [n] qubits holds [2^n] complex amplitudes (separate
    real/imaginary flat [Bigarray] float64 buffers: off the OCaml heap,
    unboxed access, reusable via {!reset} so a hot trial loop allocates
    nothing). Basis index bit [q] is the value of qubit [q]
    (little-endian). Practical to ~20 qubits; the compiled paper
    benchmarks touch at most a dozen hardware qubits. *)

type t

val create : int -> t
(** [create n] is |0…0⟩ over [n] qubits. Raises [Invalid_argument] for
    [n < 1] or [n > 24]. *)

val reset : t -> unit
(** Reinitialize to |0…0⟩ in place — no allocation. *)

val num_qubits : t -> int

val copy : t -> t

val apply_gate : t -> Nisq_circuit.Gate.kind -> int array -> unit
(** Apply a unitary gate to the given qubit operands. Raises
    [Invalid_argument] for [Measure]/[Barrier] or bad operands. *)

val apply_pauli : t -> [ `X | `Y | `Z ] -> int -> unit
(** Inject a Pauli error on one qubit. *)

val prob_one : t -> int -> float
(** Probability that measuring the qubit yields 1. *)

val collapse : t -> int -> bool -> unit
(** Project a qubit onto the given value and renormalize. A requested
    outcome of (near-)zero probability degrades to the opposite outcome
    (counted under [resilience.sim.renorm]) instead of raising — use
    {!collapse_outcome} to observe which outcome was realized. *)

val collapse_outcome : t -> int -> bool -> bool
(** Like {!collapse} but returns the outcome actually projected onto —
    equal to the request except in the zero-probability degraded case. *)

val measure : t -> Nisq_util.Rng.t -> int -> bool
(** Sample a computational-basis measurement of one qubit and collapse. *)

val sample : t -> Nisq_util.Rng.t -> int
(** Sample a full-register basis state (no collapse). Only basis states
    with nonzero probability are ever returned, even when floating-point
    rounding leaves the norm slightly under 1. *)

val probabilities : t -> float array
(** All [2^n] basis probabilities (fresh array). *)

val amplitude : t -> int -> float * float
(** Real and imaginary parts of one basis amplitude. *)

val fidelity : t -> t -> float
(** |⟨a|b⟩|² — used by equivalence tests. *)

val norm : t -> float
(** Should always be ≈ 1. *)
