type route = {
  path : int array;
  junction : int;
  log_reliability : float;
  duration : int;
}

let route_via_path ?junction calib path =
  let k = Array.length path - 1 in
  if k < 1 then invalid_arg "Paths.route_via_path: path needs >= 2 qubits";
  let log_rel = ref 0.0 and duration = ref 0 in
  (* Hops 0..k-2 are swap hops (traversed twice: there and back); the last
     edge carries the actual CNOT. *)
  for i = 0 to k - 2 do
    let a = path.(i) and b = path.(i + 1) in
    log_rel := !log_rel +. (6.0 *. log (Calibration.cnot_reliability calib a b));
    duration := !duration + (2 * Calibration.swap_duration calib a b)
  done;
  let a = path.(k - 1) and b = path.(k) in
  log_rel := !log_rel +. log (Calibration.cnot_reliability calib a b);
  duration := !duration + Calibration.cnot_duration calib a b;
  {
    path = Array.copy path;
    junction = (match junction with Some j -> j | None -> path.(0));
    log_reliability = !log_rel;
    duration = !duration;
  }

type t = {
  calib : Calibration.t;
  (* dist.(src).(dst): minimal Σ -log(1-e) over paths src->dst *)
  dist : float array array;
  (* prev.(src).(dst): predecessor of dst on the best path from src *)
  prev : int array array;
}

(* Both Dijkstra variants below settle vertices in (distance, index)
   lexicographic order and relax with strict [<], so they produce
   bit-identical [dist]/[prev] arrays: the scan picks the lowest-index
   minimum explicitly, the heap orders its entries the same way and
   skips stale ones lazily. Which one runs is purely a size question. *)

let scan_dijkstra ~adj ~wgt n src dist prev =
  let visited = Array.make n false in
  dist.(src) <- 0.0;
  (* O(n^2) scan: cheapest for the small device topologies. *)
  for _ = 1 to n do
    let u = ref (-1) and best = ref infinity in
    for v = 0 to n - 1 do
      if (not visited.(v)) && dist.(v) < !best then begin
        u := v;
        best := dist.(v)
      end
    done;
    if !u >= 0 then begin
      visited.(!u) <- true;
      let vs : int array = adj.(!u) and ws : float array = wgt.(!u) in
      let du = dist.(!u) in
      for k = 0 to Array.length vs - 1 do
        let v = vs.(k) in
        let d = du +. ws.(k) in
        if d < dist.(v) then begin
          dist.(v) <- d;
          prev.(v) <- !u
        end
      done
    end
  done

(* Binary-heap Dijkstra with lazy deletion for the larger synthetic
   topologies (fig11's 64–128-qubit machines). Heap order is
   (distance, vertex index) lexicographic — ties settle lowest index
   first, matching the scan exactly. *)
let heap_dijkstra ~adj ~wgt n src dist prev =
  let visited = Array.make n false in
  let cap = ref (Int.max 16 n) in
  let hd = ref (Array.make !cap 0.0) in
  let hv = ref (Array.make !cap 0) in
  let size = ref 0 in
  let less i j =
    let di = !hd.(i) and dj = !hd.(j) in
    di < dj || (di = dj && !hv.(i) < !hv.(j))
  in
  let swap i j =
    let d = !hd.(i) and v = !hv.(i) in
    !hd.(i) <- !hd.(j);
    !hv.(i) <- !hv.(j);
    !hd.(j) <- d;
    !hv.(j) <- v
  in
  let push d v =
    if !size = !cap then begin
      let cap' = 2 * !cap in
      let hd' = Array.make cap' 0.0 and hv' = Array.make cap' 0 in
      Array.blit !hd 0 hd' 0 !size;
      Array.blit !hv 0 hv' 0 !size;
      hd := hd';
      hv := hv';
      cap := cap'
    end;
    !hd.(!size) <- d;
    !hv.(!size) <- v;
    incr size;
    let i = ref (!size - 1) in
    while !i > 0 && less !i ((!i - 1) / 2) do
      swap !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done
  in
  let pop () =
    let v = !hv.(0) in
    decr size;
    if !size > 0 then begin
      !hd.(0) <- !hd.(!size);
      !hv.(0) <- !hv.(!size);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let m = ref !i in
        if l < !size && less l !m then m := l;
        if r < !size && less r !m then m := r;
        if !m = !i then continue := false
        else begin
          swap !i !m;
          i := !m
        end
      done
    end;
    v
  in
  dist.(src) <- 0.0;
  push 0.0 src;
  while !size > 0 do
    let u = pop () in
    if not visited.(u) then begin
      visited.(u) <- true;
      let vs : int array = adj.(u) and ws : float array = wgt.(u) in
      let du = dist.(u) in
      for k = 0 to Array.length vs - 1 do
        let v = vs.(k) in
        let d = du +. ws.(k) in
        if d < dist.(v) then begin
          dist.(v) <- d;
          prev.(v) <- u;
          push d v
        end
      done
    end
  done

(* Above this many qubits the heap wins; below it the scan's tight loop
   does. Either choice returns identical tables (see above). *)
let heap_threshold = 48

let make calib =
  let topo = calib.Calibration.topology in
  let n = Topology.num_qubits topo in
  (* Live adjacency and -log(1-e) edge weights, computed once and shared
     by every source's Dijkstra instead of re-deriving them per
     relaxation. Quarantined qubits keep empty rows. *)
  let adj = Array.make n [||] and wgt = Array.make n [||] in
  for u = 0 to n - 1 do
    if Calibration.qubit_live calib u then begin
      let vs =
        List.filter
          (fun v -> Calibration.link_live calib u v)
          (Topology.neighbors topo u)
      in
      let vs = Array.of_list vs in
      adj.(u) <- vs;
      wgt.(u) <-
        Array.map (fun v -> -.log (Calibration.cnot_reliability calib u v)) vs
    end
  done;
  let dijkstra = if n > heap_threshold then heap_dijkstra else scan_dijkstra in
  let dist = Array.make n [||] and prev = Array.make n [||] in
  for src = 0 to n - 1 do
    let d = Array.make n infinity and p = Array.make n (-1) in
    (* Quarantined sources route nowhere: their rows are all-infinity by
       construction, so skip the solve entirely. *)
    if Calibration.qubit_live calib src then dijkstra ~adj ~wgt n src d p;
    dist.(src) <- d;
    prev.(src) <- p
  done;
  { calib; dist; prev }

let calibration t = t.calib

let reachable t src dst = t.dist.(src).(dst) < infinity

let best_path t src dst =
  if src = dst then invalid_arg "Paths.best_path: identical endpoints";
  if not (reachable t src dst) then
    invalid_arg
      (Printf.sprintf "Paths.best_path: no live path from %d to %d" src dst);
  let rec collect acc v =
    if v = src then src :: acc else collect (v :: acc) t.prev.(src).(v)
  in
  Array.of_list (collect [] dst)

let path_log_reliability t src dst = -.(t.dist.(src).(dst))

(* Sentinel for pairs with no live path (a quarantined endpoint, or
   endpoints in different live fragments): infinitely unreliable and very
   slow, so no decision procedure ever prefers it. Layouts never place
   interacting program qubits on such pairs — the sentinel only keeps
   eagerly-built all-pairs matrices total. *)
let dead_route h1 h2 =
  {
    path = [| h1; h2 |];
    junction = h1;
    log_reliability = neg_infinity;
    duration = 1_000_000;
  }

let route_live t r =
  let ok = ref true in
  Array.iteri
    (fun i h ->
      if not (Calibration.qubit_live t.calib h) then ok := false
      else if i > 0 && not (Calibration.link_live t.calib r.path.(i - 1) h)
      then ok := false)
    r.path;
  !ok

(* Straight grid walk from (x1,y) to (x2,y) or vertical equivalent,
   excluding the start point. *)
let walk topo ~from_ ~dx ~dy ~steps =
  let x, y = Topology.coords topo from_ in
  List.init steps (fun i ->
      Topology.index topo ~x:(x + (dx * (i + 1))) ~y:(y + (dy * (i + 1))))

let one_bend_paths topo h1 h2 =
  let x1, y1 = Topology.coords topo h1 and x2, y2 = Topology.coords topo h2 in
  let sign a b = compare b a in
  let horiz_then_vert =
    let mid = walk topo ~from_:h1 ~dx:(sign x1 x2) ~dy:0 ~steps:(abs (x2 - x1)) in
    let corner = Topology.index topo ~x:x2 ~y:y1 in
    let tail = walk topo ~from_:corner ~dx:0 ~dy:(sign y1 y2) ~steps:(abs (y2 - y1)) in
    (Array.of_list ((h1 :: mid) @ tail), corner)
  in
  let vert_then_horiz =
    let mid = walk topo ~from_:h1 ~dx:0 ~dy:(sign y1 y2) ~steps:(abs (y2 - y1)) in
    let corner = Topology.index topo ~x:x1 ~y:y2 in
    let tail = walk topo ~from_:corner ~dx:(sign x1 x2) ~dy:0 ~steps:(abs (x2 - x1)) in
    (Array.of_list ((h1 :: mid) @ tail), corner)
  in
  if x1 = x2 || y1 = y2 then [ horiz_then_vert ]
  else [ horiz_then_vert; vert_then_horiz ]

let best_path_route t h1 h2 =
  if not (reachable t h1 h2) then dead_route h1 h2
  else
    let path = best_path t h1 h2 in
    route_via_path ~junction:path.(0) t.calib path

let one_bend_routes t h1 h2 =
  if h1 = h2 then invalid_arg "Paths.one_bend_routes: identical endpoints";
  let topo = t.calib.Calibration.topology in
  if Topology.is_grid topo then begin
    let live =
      one_bend_paths topo h1 h2
      |> List.map (fun (path, junction) ->
             route_via_path ~junction t.calib path)
      |> List.filter (route_live t)
    in
    match live with
    | _ :: _ -> live
    | [] ->
        (* Every bounding-rectangle route crosses quarantined hardware:
           degrade to the most reliable live path (possibly the dead-route
           sentinel when no live path exists at all). *)
        [ best_path_route t h1 h2 ]
  end
  else
    (* Bounding-rectangle routes are grid-specific; on general coupling
       graphs the one-bend policy degrades to the most reliable path. *)
    [ best_path_route t h1 h2 ]

let best_one_bend t h1 h2 =
  match one_bend_routes t h1 h2 with
  | [ r ] -> r
  | [ a; b ] -> if a.log_reliability >= b.log_reliability then a else b
  | _ -> assert false
