type epoch = {
  id : int;
  calib : Calibration.t;
  source : string;
  digest : string;
}

(* Retired epochs are tracked only while pinned: id -> (epoch, pins). *)
type t = {
  mutex : Mutex.t;
  mutable cur : epoch;
  mutable cur_pins : int;
  retired : (int, epoch * int ref) Hashtbl.t;
  mutable next_id : int;
}

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let make_epoch ~id ~calib ~source =
  { id; calib; source; digest = Calib_cache.digest calib }

let create ~calib ~source =
  {
    mutex = Mutex.create ();
    cur = make_epoch ~id:0 ~calib ~source;
    cur_pins = 0;
    retired = Hashtbl.create 4;
    next_id = 1;
  }

let current t = locked t (fun () -> t.cur)

let acquire t =
  locked t (fun () ->
      t.cur_pins <- t.cur_pins + 1;
      t.cur)

(* A retired epoch's digest may still be live elsewhere: the current
   epoch (identical-file reload) or another pinned retiree. Flushing
   then would evict tables a live epoch is using. *)
let digest_still_live t digest =
  t.cur.digest = digest
  || Hashtbl.fold
       (fun _ (e, _) acc -> acc || e.digest = digest)
       t.retired false

let release t (e : epoch) =
  let flush =
    locked t (fun () ->
        if e.id = t.cur.id then begin
          t.cur_pins <- max 0 (t.cur_pins - 1);
          None
        end
        else
          match Hashtbl.find_opt t.retired e.id with
          | None -> None
          | Some (_, pins) ->
              decr pins;
              if !pins <= 0 then begin
                Hashtbl.remove t.retired e.id;
                if digest_still_live t e.digest then None else Some e.digest
              end
              else None)
  in
  Option.iter Calib_cache.flush_digest flush

let allocate_candidate t =
  locked t (fun () ->
      let id = t.next_id in
      t.next_id <- id + 1;
      id)

let swap t ~id ~calib ~source =
  let epoch, flush =
    locked t (fun () ->
        if id <= t.cur.id || id >= t.next_id then
          invalid_arg
            (Printf.sprintf
               "Calib_store.swap: id %d not a live candidate (current %d, \
                next %d)"
               id t.cur.id t.next_id);
        let e = make_epoch ~id ~calib ~source in
        let old = t.cur and old_pins = t.cur_pins in
        t.cur <- e;
        t.cur_pins <- 0;
        if old_pins > 0 then begin
          Hashtbl.replace t.retired old.id (old, ref old_pins);
          (e, None)
        end
        else if digest_still_live t old.digest then (e, None)
        else (e, Some old.digest))
  in
  Option.iter Calib_cache.flush_digest flush;
  epoch

let live_epochs t = locked t (fun () -> 1 + Hashtbl.length t.retired)

let pins t =
  locked t (fun () ->
      Hashtbl.fold (fun _ (_, p) acc -> acc + !p) t.retired t.cur_pins)
