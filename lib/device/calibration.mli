(** One day of machine calibration data.

    This is the information IBM publishes daily for its devices and that
    the ⋆-variants of the compiler consume (§2, §6): per-qubit relaxation
    (T1) and coherence (T2) times, readout error rates, per-qubit
    single-qubit gate error, and per-edge CNOT error rates and durations.

    Durations are expressed in hardware timeslots of 80 ns (§6 "Metrics");
    coherence times are stored in microseconds and exposed in timeslots
    for the scheduler's coherence constraint (Eq. 6). *)

type t = {
  topology : Topology.t;
  day : int;  (** calibration cycle index, for reporting *)
  t1_us : float array;  (** per qubit, microseconds *)
  t2_us : float array;
  readout_error : float array;  (** per qubit, probability *)
  single_error : float array;  (** per qubit, 1q-gate error probability *)
  cnot_error : float array array;  (** per edge; [nan] off-edge *)
  cnot_duration : int array array;  (** per edge, timeslots; [0] off-edge *)
  qubit_ok : bool array;  (** false = quarantined, compile around it *)
  link_ok : bool array array;  (** false = quarantined link; false off-edge *)
}

val timeslot_ns : float
(** 80.0 — one IBMQ16 timeslot. *)

val single_gate_duration : int
(** Duration of any single-qubit gate, in timeslots. *)

val measure_duration : int
(** Duration of a readout operation, in timeslots. *)

val create :
  topology:Topology.t ->
  day:int ->
  t1_us:float array ->
  t2_us:float array ->
  readout_error:float array ->
  single_error:float array ->
  cnot_error:float array array ->
  cnot_duration:int array array ->
  t
(** Validates array dimensions, probability ranges, edge symmetry and that
    every coupling edge carries data. The result has every qubit and link
    live; quarantine is applied separately via [with_quarantine] (normally
    by [Calib_sanitize]). *)

val with_quarantine :
  t -> qubit_ok:bool array -> link_ok:bool array array -> t
(** A copy of [t] with the given quarantine masks, normalized so that a
    link is live only when it is a coupling edge, both directions agree
    and both endpoints are live. Layout and routing treat quarantined
    elements as nonexistent hardware. *)

val uniform :
  ?cnot_error:float ->
  ?readout_error:float ->
  ?single_error:float ->
  ?t2_us:float ->
  ?cnot_duration:int ->
  Topology.t ->
  t
(** A calibration-blind machine view: every element carries the machine's
    long-term average (defaults: CNOT error 0.04, readout error 0.07,
    single-qubit error 0.002, T2 = 80 µs = 1000 timeslots — the paper's
    MT constant of Constraint 4 — and CNOT duration 4 slots). The
    non-⋆ compiler variants plan against this view. *)

val cnot_error : t -> int -> int -> float
(** Error rate of the hardware CNOT on an edge (order-insensitive).
    Raises [Invalid_argument] if the qubits are not coupled. *)

val cnot_reliability : t -> int -> int -> float
(** [1 - cnot_error]. *)

val cnot_duration : t -> int -> int -> int
(** Timeslots for a CNOT on an edge. *)

val swap_duration : t -> int -> int -> int
(** [3 * cnot_duration] — a SWAP is three CNOTs (§2). *)

val readout_error : t -> int -> float
val readout_reliability : t -> int -> float

val qubit_live : t -> int -> bool
val link_live : t -> int -> int -> bool

val num_live : t -> int
(** Number of non-quarantined qubits. *)

val live_qubits : t -> int list
val quarantined_qubits : t -> int list

val quarantined_links : t -> (int * int) list
(** Coupling edges whose link is quarantined (including edges dead only
    because an endpoint is). *)

val fully_live : t -> bool
(** True when nothing is quarantined. *)

val t2_slots : t -> int -> int
(** Coherence time of a qubit converted to whole timeslots. *)

val worst_t2_slots : t -> int
(** Machine-wide minimum — the paper notes this exceeds 300 slots while
    benchmarks finish under 150 (§7.2). *)

val mean_cnot_error : t -> float
val mean_readout_error : t -> float
val mean_t2_us : t -> float

val pp_summary : Format.formatter -> t -> unit
