module Json = Nisq_obs.Json

type thresholds = {
  max_new_quarantined : int;
  max_mean_cnot_drift : float;
  max_mean_readout_drift : float;
  min_canary_esp_ratio : float;
}

let default_thresholds =
  {
    max_new_quarantined = 3;
    max_mean_cnot_drift = 0.5;
    max_mean_readout_drift = 0.5;
    min_canary_esp_ratio = 0.5;
  }

type field_summary = {
  field : string;
  changed : int;
  max_rel : float;
  worst_subject : string;
  mean_old : float;
  mean_new : float;
}

type t = {
  day_old : int;
  day_new : int;
  new_quarantined_qubits : int list;
  revived_qubits : int list;
  new_quarantined_links : (int * int) list;
  revived_links : (int * int) list;
  fields : field_summary list;
  mean_cnot_drift : float;
  mean_readout_drift : float;
}

(* Relative change with a floor so a 0 -> x flip still registers:
   |new - old| / max(|old|, eps). NaNs (possible only in a raw record
   that dodged sanitize, but be defensive) count as "changed" with an
   infinite-like magnitude clamped to a large finite value. *)
let rel_delta o n =
  if Float.is_nan o || Float.is_nan n then if o = n then 0.0 else 1e9
  else if o = n then 0.0
  else Float.abs (n -. o) /. Float.max (Float.abs o) 1e-9

let summarize field subjects values_old values_new =
  let changed = ref 0 in
  let max_rel = ref 0.0 in
  let worst = ref "" in
  let sum_old = ref 0.0 and sum_new = ref 0.0 in
  let count = List.length subjects in
  List.iteri
    (fun i subject ->
      let o = values_old i and n = values_new i in
      sum_old := !sum_old +. o;
      sum_new := !sum_new +. n;
      let r = rel_delta o n in
      if r > 0.0 then incr changed;
      if r > !max_rel then begin
        max_rel := r;
        worst := subject
      end)
    subjects;
  let mean s = if count = 0 then 0.0 else s /. float_of_int count in
  {
    field;
    changed = !changed;
    max_rel = !max_rel;
    worst_subject = !worst;
    mean_old = mean !sum_old;
    mean_new = mean !sum_new;
  }

let diff ~(old_ : Calibration.t) ~(candidate : Calibration.t) =
  if old_.Calibration.topology <> candidate.Calibration.topology then
    invalid_arg "Calib_diff.diff: topologies differ";
  let n = Topology.num_qubits old_.Calibration.topology in
  let edges = Topology.edges old_.Calibration.topology in
  let qubit_subjects = List.init n (fun q -> Printf.sprintf "q%d" q) in
  let edge_subjects =
    List.map (fun (a, b) -> Printf.sprintf "e%d-%d" a b) edges
  in
  let edge_arr = Array.of_list edges in
  let qfield field (ao : float array) (an : float array) =
    summarize field qubit_subjects (fun i -> ao.(i)) (fun i -> an.(i))
  in
  let efield field read =
    summarize field edge_subjects
      (fun i ->
        let a, b = edge_arr.(i) in
        read old_ a b)
      (fun i ->
        let a, b = edge_arr.(i) in
        read candidate a b)
  in
  let fields =
    [
      qfield "t1_us" old_.Calibration.t1_us candidate.Calibration.t1_us;
      qfield "t2_us" old_.Calibration.t2_us candidate.Calibration.t2_us;
      qfield "readout_error" old_.Calibration.readout_error
        candidate.Calibration.readout_error;
      qfield "single_error" old_.Calibration.single_error
        candidate.Calibration.single_error;
      efield "cnot_error" (fun c a b ->
          c.Calibration.cnot_error.(a).(b));
      efield "cnot_duration" (fun c a b ->
          float_of_int c.Calibration.cnot_duration.(a).(b));
    ]
  in
  let old_dead_q = Calibration.quarantined_qubits old_ in
  let new_dead_q = Calibration.quarantined_qubits candidate in
  let old_dead_l = Calibration.quarantined_links old_ in
  let new_dead_l = Calibration.quarantined_links candidate in
  {
    day_old = old_.Calibration.day;
    day_new = candidate.Calibration.day;
    new_quarantined_qubits =
      List.filter (fun q -> not (List.mem q old_dead_q)) new_dead_q;
    revived_qubits =
      List.filter (fun q -> not (List.mem q new_dead_q)) old_dead_q;
    new_quarantined_links =
      List.filter (fun l -> not (List.mem l old_dead_l)) new_dead_l;
    revived_links =
      List.filter (fun l -> not (List.mem l new_dead_l)) old_dead_l;
    fields;
    mean_cnot_drift =
      rel_delta
        (Calibration.mean_cnot_error old_)
        (Calibration.mean_cnot_error candidate);
    mean_readout_drift =
      rel_delta
        (Calibration.mean_readout_error old_)
        (Calibration.mean_readout_error candidate);
  }

let gate ?(thresholds = default_thresholds) d =
  let reasons = ref [] in
  let reject fmt = Printf.ksprintf (fun s -> reasons := s :: !reasons) fmt in
  let growth =
    List.length d.new_quarantined_qubits
    + List.length d.new_quarantined_links
  in
  if growth > thresholds.max_new_quarantined then
    reject
      "quarantine set grew by %d (%d qubits, %d links; threshold %d)"
      growth
      (List.length d.new_quarantined_qubits)
      (List.length d.new_quarantined_links)
      thresholds.max_new_quarantined;
  if d.mean_cnot_drift > thresholds.max_mean_cnot_drift then
    reject "mean CNOT error drifted %.0f%% (threshold %.0f%%)"
      (100.0 *. d.mean_cnot_drift)
      (100.0 *. thresholds.max_mean_cnot_drift);
  if d.mean_readout_drift > thresholds.max_mean_readout_drift then
    reject "mean readout error drifted %.0f%% (threshold %.0f%%)"
      (100.0 *. d.mean_readout_drift)
      (100.0 *. thresholds.max_mean_readout_drift);
  List.rev !reasons

let to_json d =
  let ints l = Json.List (List.map (fun i -> Json.Int i) l) in
  let links l =
    Json.List
      (List.map (fun (a, b) -> Json.List [ Json.Int a; Json.Int b ]) l)
  in
  let field f =
    Json.Obj
      [
        ("field", Json.String f.field);
        ("changed", Json.Int f.changed);
        ("max_rel", Json.Float f.max_rel);
        ("worst_subject", Json.String f.worst_subject);
        ("mean_old", Json.Float f.mean_old);
        ("mean_new", Json.Float f.mean_new);
      ]
  in
  Json.Obj
    [
      ("schema", Json.String "nisq-calib-diff/1");
      ("day_old", Json.Int d.day_old);
      ("day_new", Json.Int d.day_new);
      ("new_quarantined_qubits", ints d.new_quarantined_qubits);
      ("revived_qubits", ints d.revived_qubits);
      ("new_quarantined_links", links d.new_quarantined_links);
      ("revived_links", links d.revived_links);
      ("fields", Json.List (List.map field d.fields));
      ("mean_cnot_drift", Json.Float d.mean_cnot_drift);
      ("mean_readout_drift", Json.Float d.mean_readout_drift);
    ]

let render d =
  let b = Buffer.create 512 in
  Printf.bprintf b "calibration drift: day %d -> day %d\n" d.day_old d.day_new;
  let show_q label = function
    | [] -> ()
    | qs ->
        Printf.bprintf b "  %s qubits: %s\n" label
          (String.concat ", " (List.map string_of_int qs))
  in
  let show_l label = function
    | [] -> ()
    | ls ->
        Printf.bprintf b "  %s links: %s\n" label
          (String.concat ", "
             (List.map (fun (x, y) -> Printf.sprintf "%d-%d" x y) ls))
  in
  show_q "newly quarantined" d.new_quarantined_qubits;
  show_q "revived" d.revived_qubits;
  show_l "newly quarantined" d.new_quarantined_links;
  show_l "revived" d.revived_links;
  List.iter
    (fun f ->
      if f.changed = 0 then
        Printf.bprintf b "  %-13s unchanged (mean %.6g)\n" f.field f.mean_old
      else
        Printf.bprintf b
          "  %-13s %d changed, worst %+.1f%% at %s, mean %.6g -> %.6g\n"
          f.field f.changed
          (100.0 *. f.max_rel)
          f.worst_subject f.mean_old f.mean_new)
    d.fields;
  Printf.bprintf b "  mean cnot error drift    %.1f%%\n"
    (100.0 *. d.mean_cnot_drift);
  Printf.bprintf b "  mean readout error drift %.1f%%\n"
    (100.0 *. d.mean_readout_drift);
  Buffer.contents b
