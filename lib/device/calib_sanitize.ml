module Faultkit = Nisq_faultkit.Faultkit
module Metrics = Nisq_obs.Metrics

type raw = {
  topology : Topology.t;
  day : int;
  t1_us : float array;
  t2_us : float array;
  readout_error : float array;
  single_error : float array;
  cnot_error : float array array;
  cnot_duration : int array array;
}

type action =
  | Repaired of { value : string; source : string }
  | Quarantined of string

type issue = {
  subject : string;
  field : string;
  found : string;
  action : action;
}

type report = {
  issues : issue list;
  quarantined_qubits : int list;
  quarantined_links : (int * int) list;
}

let m_repairs = Metrics.counter "resilience.calib.repairs"
let m_quar_qubits = Metrics.counter "resilience.calib.quarantined_qubits"
let m_quar_links = Metrics.counter "resilience.calib.quarantined_links"

let of_calibration (c : Calibration.t) =
  {
    topology = c.Calibration.topology;
    day = c.Calibration.day;
    t1_us = Array.copy c.Calibration.t1_us;
    t2_us = Array.copy c.Calibration.t2_us;
    readout_error = Array.copy c.Calibration.readout_error;
    single_error = Array.copy c.Calibration.single_error;
    cnot_error = Array.map Array.copy c.Calibration.cnot_error;
    cnot_duration = Array.map Array.copy c.Calibration.cnot_duration;
  }

let copy_raw r =
  {
    r with
    t1_us = Array.copy r.t1_us;
    t2_us = Array.copy r.t2_us;
    readout_error = Array.copy r.readout_error;
    single_error = Array.copy r.single_error;
    cnot_error = Array.map Array.copy r.cnot_error;
    cnot_duration = Array.map Array.copy r.cnot_duration;
  }

let apply_faults r faults =
  let r = copy_raw r in
  let n = Topology.num_qubits r.topology in
  let corrupt_qubit q v =
    r.t1_us.(q) <- v;
    r.t2_us.(q) <- v
  in
  List.iter
    (fun { Faultkit.target; kind } ->
      match target with
      | Faultkit.Qubit q when q >= 0 && q < n -> (
          match kind with
          | Faultkit.Nan -> corrupt_qubit q Float.nan
          | Faultkit.Zero -> corrupt_qubit q 0.0
          | Faultkit.Offline ->
              corrupt_qubit q Float.nan;
              r.readout_error.(q) <- Float.nan;
              r.single_error.(q) <- Float.nan)
      | Faultkit.Edge (a, b)
        when a >= 0 && a < n && b >= 0 && b < n
             && Topology.adjacent r.topology a b -> (
          let set_err v =
            r.cnot_error.(a).(b) <- v;
            r.cnot_error.(b).(a) <- v
          and set_dur v =
            r.cnot_duration.(a).(b) <- v;
            r.cnot_duration.(b).(a) <- v
          in
          match kind with
          | Faultkit.Nan -> set_err Float.nan
          | Faultkit.Zero -> set_dur 0
          | Faultkit.Offline ->
              set_err Float.nan;
              set_dur 0)
      | _ -> ())
    faults;
  r

let is_clean r = r.issues = []

let repairs r =
  List.length
    (List.filter (fun i -> match i.action with Repaired _ -> true | _ -> false)
       r.issues)

(* ------------------------------------------------------------------ *)
(* Field validity                                                      *)
(* ------------------------------------------------------------------ *)

let valid_time v = Float.is_finite v && v > 0.0 && v <= 1e6
let valid_prob v = Float.is_finite v && v >= 0.0 && v <= 1.0
let valid_dur d = d > 0 && d <= 100_000

let median values =
  match values with
  | [] -> None
  | _ ->
      let a = Array.of_list values in
      Array.sort compare a;
      Some a.(Array.length a / 2)

(* ------------------------------------------------------------------ *)
(* Sanitize                                                            *)
(* ------------------------------------------------------------------ *)

let sanitize ?previous (r : raw) =
  let n = Topology.num_qubits r.topology in
  let check_len name a =
    if Array.length a <> n then
      invalid_arg
        (Printf.sprintf "Calib_sanitize: %s has length %d, want %d" name
           (Array.length a) n)
  in
  check_len "t1_us" r.t1_us;
  check_len "t2_us" r.t2_us;
  check_len "readout_error" r.readout_error;
  check_len "single_error" r.single_error;
  if
    Array.length r.cnot_error <> n
    || Array.length r.cnot_duration <> n
    || Array.exists (fun row -> Array.length row <> n) r.cnot_error
    || Array.exists (fun row -> Array.length row <> n) r.cnot_duration
  then invalid_arg "Calib_sanitize: edge matrices must be n x n";
  (match previous with
  | Some p ->
      if Topology.num_qubits p.Calibration.topology <> n then
        invalid_arg "Calib_sanitize: previous-day topology mismatch"
  | None -> ());
  let edges = Topology.edges r.topology in
  let issues = ref [] in
  let push i = issues := i :: !issues in
  (* --- per-qubit fields ------------------------------------------- *)
  let bad_fields = Array.make n 0 in
  let fix_qubit_field ~field ~valid ~prev ~default arr =
    let med =
      median (List.filter valid (Array.to_list arr))
    in
    Array.iteri
      (fun h v ->
        if not (valid v) then begin
          bad_fields.(h) <- bad_fields.(h) + 1;
          let value, source =
            match prev with
            | Some get when valid (get h) -> (get h, "previous day")
            | _ -> (
                match med with
                | Some m -> (m, "device median")
                | None -> (default, "default"))
          in
          arr.(h) <- value;
          push
            {
              subject = Printf.sprintf "q%d" h;
              field;
              found = Printf.sprintf "%g" v;
              action =
                Repaired { value = Printf.sprintf "%g" value; source };
            }
        end)
      arr
  in
  let t1_us = Array.copy r.t1_us in
  let t2_us = Array.copy r.t2_us in
  let readout_error = Array.copy r.readout_error in
  let single_error = Array.copy r.single_error in
  let prev_field f =
    Option.map (fun p h -> (f p).(h)) previous
  in
  fix_qubit_field ~field:"t1_us" ~valid:valid_time
    ~prev:(prev_field (fun p -> p.Calibration.t1_us))
    ~default:50.0 t1_us;
  fix_qubit_field ~field:"t2_us" ~valid:valid_time
    ~prev:(prev_field (fun p -> p.Calibration.t2_us))
    ~default:50.0 t2_us;
  fix_qubit_field ~field:"readout_error" ~valid:valid_prob
    ~prev:(prev_field (fun p -> p.Calibration.readout_error))
    ~default:0.1 readout_error;
  fix_qubit_field ~field:"single_error" ~valid:valid_prob
    ~prev:(prev_field (fun p -> p.Calibration.single_error))
    ~default:0.005 single_error;
  (* --- per-edge fields -------------------------------------------- *)
  let cnot_error = Array.map Array.copy r.cnot_error in
  let cnot_duration = Array.map Array.copy r.cnot_duration in
  let err_median =
    median
      (List.filter valid_prob
         (List.concat_map
            (fun (a, b) -> [ r.cnot_error.(a).(b); r.cnot_error.(b).(a) ])
            edges))
  in
  let dur_median =
    median
      (List.filter valid_dur
         (List.concat_map
            (fun (a, b) ->
              [ r.cnot_duration.(a).(b); r.cnot_duration.(b).(a) ])
            edges))
  in
  let dead_links = Hashtbl.create 8 in
  List.iter
    (fun (a, b) ->
      let subject = Printf.sprintf "e%d-%d" a b in
      let fwd = cnot_error.(a).(b) and bwd = cnot_error.(b).(a) in
      let err_bad = ref false in
      let repaired_err =
        if valid_prob fwd && valid_prob bwd then
          if Float.abs (fwd -. bwd) > 1e-12 then begin
            (* Both readable but disagree: keep the pessimistic one. *)
            let v = Float.max fwd bwd in
            push
              {
                subject;
                field = "cnot_error";
                found = Printf.sprintf "%g/%g" fwd bwd;
                action =
                  Repaired
                    { value = Printf.sprintf "%g" v; source = "symmetrized" };
              };
            v
          end
          else fwd
        else begin
          err_bad := true;
          let value, source =
            if valid_prob fwd then (fwd, "symmetric partner")
            else if valid_prob bwd then (bwd, "symmetric partner")
            else
              match previous with
              | Some p when valid_prob p.Calibration.cnot_error.(a).(b) ->
                  (p.Calibration.cnot_error.(a).(b), "previous day")
              | _ -> (
                  match err_median with
                  | Some m -> (m, "device median")
                  | None -> (0.1, "default"))
          in
          push
            {
              subject;
              field = "cnot_error";
              found = Printf.sprintf "%g" fwd;
              action = Repaired { value = Printf.sprintf "%g" value; source };
            };
          value
        end
      in
      cnot_error.(a).(b) <- repaired_err;
      cnot_error.(b).(a) <- repaired_err;
      let dfwd = cnot_duration.(a).(b) and dbwd = cnot_duration.(b).(a) in
      let dur_bad = ref false in
      let repaired_dur =
        if valid_dur dfwd && valid_dur dbwd then
          if dfwd <> dbwd then begin
            let v = Int.max dfwd dbwd in
            push
              {
                subject;
                field = "cnot_duration";
                found = Printf.sprintf "%d/%d" dfwd dbwd;
                action =
                  Repaired
                    { value = string_of_int v; source = "symmetrized" };
              };
            v
          end
          else dfwd
        else begin
          dur_bad := true;
          let value, source =
            if valid_dur dfwd then (dfwd, "symmetric partner")
            else if valid_dur dbwd then (dbwd, "symmetric partner")
            else
              match previous with
              | Some p when valid_dur p.Calibration.cnot_duration.(a).(b) ->
                  (p.Calibration.cnot_duration.(a).(b), "previous day")
              | _ -> (
                  match dur_median with
                  | Some m -> (m, "device median")
                  | None -> (4, "default"))
          in
          push
            {
              subject;
              field = "cnot_duration";
              found = string_of_int dfwd;
              action = Repaired { value = string_of_int value; source };
            };
          value
        end
      in
      cnot_duration.(a).(b) <- repaired_dur;
      cnot_duration.(b).(a) <- repaired_dur;
      (* A link with no readable error AND no readable duration is treated
         as offline: the backfilled numbers keep the arrays well-formed,
         but the compiler must not trust the link. *)
      if !err_bad && !dur_bad then begin
        Hashtbl.replace dead_links (Int.min a b, Int.max a b) ();
        push
          {
            subject;
            field = "link";
            found = "no readable fields";
            action = Quarantined "link offline";
          }
      end)
    edges;
  (* --- qubit quarantine ------------------------------------------- *)
  let qubit_ok = Array.make n true in
  for h = 0 to n - 1 do
    (* 3 of 4 fields unreadable: the record is garbage, not a glitch. *)
    if bad_fields.(h) >= 3 then begin
      qubit_ok.(h) <- false;
      push
        {
          subject = Printf.sprintf "q%d" h;
          field = "qubit";
          found = Printf.sprintf "%d/4 fields invalid" bad_fields.(h);
          action = Quarantined "qubit offline";
        }
    end
  done;
  let link_ok = Array.make_matrix n n false in
  List.iter
    (fun (a, b) ->
      let live =
        qubit_ok.(a) && qubit_ok.(b)
        && not (Hashtbl.mem dead_links (Int.min a b, Int.max a b))
      in
      link_ok.(a).(b) <- live;
      link_ok.(b).(a) <- live)
    edges;
  (* --- connectivity: keep only the largest live component ---------- *)
  if n > 1 then begin
    let comp = Array.make n (-1) in
    let comp_size = ref [] in
    let next = ref 0 in
    for start = 0 to n - 1 do
      if qubit_ok.(start) && comp.(start) = -1 then begin
        let id = !next in
        incr next;
        let size = ref 0 in
        let q = Queue.create () in
        Queue.add start q;
        comp.(start) <- id;
        while not (Queue.is_empty q) do
          let u = Queue.pop q in
          incr size;
          List.iter
            (fun v ->
              if qubit_ok.(v) && link_ok.(u).(v) && comp.(v) = -1 then begin
                comp.(v) <- id;
                Queue.add v q
              end)
            (Topology.neighbors r.topology u)
        done;
        comp_size := (id, !size) :: !comp_size
      end
    done;
    let keep =
      (* Largest live component; ties break toward the lower id, i.e. the
         component containing the lowest-numbered live qubit. *)
      List.fold_left
        (fun acc (id, size) ->
          match acc with
          | None -> Some (id, size)
          | Some (_, best) when size > best -> Some (id, size)
          | Some _ -> acc)
        None
        (List.rev !comp_size)
    in
    match keep with
    | None -> ()
    | Some (keep_id, _) ->
        for h = 0 to n - 1 do
          if qubit_ok.(h) && comp.(h) <> keep_id then begin
            qubit_ok.(h) <- false;
            push
              {
                subject = Printf.sprintf "q%d" h;
                field = "qubit";
                found = "unreachable";
                action = Quarantined "disconnected from largest live component";
              }
          end
        done
  end;
  (* --- assemble ---------------------------------------------------- *)
  let calib =
    Calibration.create ~topology:r.topology ~day:r.day ~t1_us ~t2_us
      ~readout_error ~single_error ~cnot_error ~cnot_duration
  in
  let calib = Calibration.with_quarantine calib ~qubit_ok ~link_ok in
  let report =
    {
      issues = List.rev !issues;
      quarantined_qubits = Calibration.quarantined_qubits calib;
      quarantined_links = Calibration.quarantined_links calib;
    }
  in
  Metrics.add m_repairs (repairs report);
  Metrics.add m_quar_qubits (List.length report.quarantined_qubits);
  Metrics.add m_quar_links (List.length report.quarantined_links);
  (* Ledger-only notices (info severity — the CLI already prints the
     rendered summary on stdout, so no new stderr text appears): one
     per quarantined resource plus a summary for an unclean pass. *)
  if not (is_clean report) then begin
    let module Events = Nisq_obs.Events in
    List.iter
      (fun q ->
        Events.emit ~domain:"sanitize" Events.Info
          (Printf.sprintf "quarantined qubit %d" q)
          ~fields:[ ("qubit", string_of_int q); ("day", string_of_int r.day) ])
      report.quarantined_qubits;
    List.iter
      (fun (a, b) ->
        Events.emit ~domain:"sanitize" Events.Info
          (Printf.sprintf "quarantined link %d-%d" a b)
          ~fields:
            [ ("link", Printf.sprintf "%d-%d" a b);
              ("day", string_of_int r.day) ])
      report.quarantined_links;
    Events.emit ~domain:"sanitize" Events.Info
      (Printf.sprintf
         "calibration sanitized: %d repairs, %d qubits and %d links \
          quarantined"
         (repairs report)
         (List.length report.quarantined_qubits)
         (List.length report.quarantined_links))
      ~fields:[ ("day", string_of_int r.day) ]
  end;
  (calib, report)

let render r =
  if is_clean r then "calibration clean: all fields valid"
  else begin
    let buf = Buffer.create 256 in
    Buffer.add_string buf
      (Printf.sprintf "calibration sanitized: %d repairs, %d qubits and %d links quarantined\n"
         (repairs r)
         (List.length r.quarantined_qubits)
         (List.length r.quarantined_links));
    List.iter
      (fun i ->
        let what =
          match i.action with
          | Repaired { value; source } ->
              Printf.sprintf "repaired to %s (%s)" value source
          | Quarantined reason -> Printf.sprintf "quarantined (%s)" reason
        in
        Buffer.add_string buf
          (Printf.sprintf "  %-6s %-14s %-22s %s\n" i.subject i.field
             ("found " ^ i.found) what))
      r.issues;
    (match r.quarantined_qubits with
    | [] -> ()
    | qs ->
        Buffer.add_string buf
          ("  live set excludes qubits: "
          ^ String.concat ", " (List.map string_of_int qs)
          ^ "\n"));
    Buffer.contents buf
  end
