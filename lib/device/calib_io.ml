let to_string (c : Calibration.t) =
  let buf = Buffer.create 1024 in
  let topo = c.Calibration.topology in
  Buffer.add_string buf "nisq-calibration 1\n";
  if Topology.is_grid topo then
    Buffer.add_string buf
      (Printf.sprintf "topology grid %d %d\n" (Topology.rows topo)
         (Topology.cols topo))
  else begin
    Buffer.add_string buf
      (Printf.sprintf "topology graph %d" (Topology.num_qubits topo));
    List.iter
      (fun (a, b) -> Buffer.add_string buf (Printf.sprintf " %d-%d" a b))
      (Topology.edges topo);
    Buffer.add_char buf '\n'
  end;
  Buffer.add_string buf (Printf.sprintf "day %d\n" c.Calibration.day);
  for h = 0 to Topology.num_qubits topo - 1 do
    Buffer.add_string buf
      (Printf.sprintf "qubit %d %.17g %.17g %.17g %.17g\n" h
         c.Calibration.t1_us.(h) c.Calibration.t2_us.(h)
         c.Calibration.readout_error.(h) c.Calibration.single_error.(h))
  done;
  List.iter
    (fun (a, b) ->
      Buffer.add_string buf
        (Printf.sprintf "edge %d %d %.17g %d\n" a b
           c.Calibration.cnot_error.(a).(b)
           c.Calibration.cnot_duration.(a).(b)))
    (Topology.edges topo);
  Buffer.contents buf

type error = { line : int; message : string }

exception Parse_fail of error

let fail line message = raise (Parse_fail { line; message })

(* Structural parse into an unvalidated raw record: the shape (topology,
   one record per qubit and edge) must be right, but field values are
   passed through untouched — NaN, negative and zero values are the
   sanitizer's job, not the parser's. *)
let raw_of_string src =
  try
    let lines = String.split_on_char '\n' src in
    let header = ref false in
    let topology = ref None in
    let day = ref None in
    let qubits = Hashtbl.create 32 in
    let edges = Hashtbl.create 32 in
    (* Duplicate records are rejected, not last-one-wins: a file with
       two values for the same qubit is ambiguous (likely a bad merge
       or a re-appended archive), and silently preferring either one
       would compile against data nobody chose. *)
    let parse_line lineno line =
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      match
        String.split_on_char ' ' (String.trim line)
        |> List.filter (fun s -> s <> "")
      with
      | [] -> ()
      | "nisq-calibration" :: version :: _ ->
          if !header then fail lineno "duplicate nisq-calibration header";
          header := true;
          if version <> "1" then fail lineno ("unsupported version " ^ version)
      | [ "topology"; "grid"; rows; cols ] -> (
          if Option.is_some !topology then
            fail lineno "duplicate topology record";
          try
            topology :=
              Some
                (Topology.grid ~rows:(int_of_string rows)
                   ~cols:(int_of_string cols))
          with _ -> fail lineno "bad grid dimensions")
      | "topology" :: "graph" :: n :: edge_specs -> (
          if Option.is_some !topology then
            fail lineno "duplicate topology record";
          try
            let num_qubits = int_of_string n in
            let parsed =
              List.map
                (fun spec ->
                  match String.split_on_char '-' spec with
                  | [ a; b ] -> (int_of_string a, int_of_string b)
                  | _ -> failwith "edge")
                edge_specs
            in
            topology := Some (Topology.of_edges ~name:"loaded" ~num_qubits parsed)
          with _ -> fail lineno "bad graph topology")
      | [ "day"; d ] -> (
          if Option.is_some !day then fail lineno "duplicate day record";
          try day := Some (int_of_string d)
          with _ -> fail lineno "bad day")
      | [ "qubit"; h; t1; t2; readout; single ] -> (
          match
            ( int_of_string h,
              Float.of_string t1,
              Float.of_string t2,
              Float.of_string readout,
              Float.of_string single )
          with
          | h, t1, t2, readout, single ->
              if Hashtbl.mem qubits h then
                fail lineno (Printf.sprintf "duplicate qubit %d record" h);
              Hashtbl.replace qubits h (t1, t2, readout, single)
          | exception _ -> fail lineno "bad qubit record")
      | [ "edge"; a; b; err; dur ] -> (
          match
            ( int_of_string a,
              int_of_string b,
              Float.of_string err,
              int_of_string dur )
          with
          | a, b, err, dur ->
              if Hashtbl.mem edges (a, b) || Hashtbl.mem edges (b, a) then
                fail lineno (Printf.sprintf "duplicate edge %d-%d record" a b);
              Hashtbl.replace edges (a, b) (err, dur)
          | exception _ -> fail lineno "bad edge record")
      | word :: _ -> fail lineno ("unknown record " ^ word)
    in
    List.iteri (fun i line -> parse_line (i + 1) line) lines;
    let topology =
      match !topology with
      | Some t -> t
      | None -> fail 0 "missing topology record"
    in
    let n = Topology.num_qubits topology in
    let get_qubit h =
      match Hashtbl.find_opt qubits h with
      | Some v -> v
      | None -> fail 0 (Printf.sprintf "missing qubit %d" h)
    in
    let t1_us = Array.init n (fun h -> let a, _, _, _ = get_qubit h in a) in
    let t2_us = Array.init n (fun h -> let _, a, _, _ = get_qubit h in a) in
    let readout_error =
      Array.init n (fun h -> let _, _, a, _ = get_qubit h in a)
    in
    let single_error =
      Array.init n (fun h -> let _, _, _, a = get_qubit h in a)
    in
    let cnot_error = Array.make_matrix n n Float.nan in
    let cnot_duration = Array.make_matrix n n 0 in
    List.iter
      (fun (a, b) ->
        let err, dur =
          match Hashtbl.find_opt edges (a, b) with
          | Some v -> v
          | None -> (
              match Hashtbl.find_opt edges (b, a) with
              | Some v -> v
              | None -> fail 0 (Printf.sprintf "missing edge %d-%d" a b))
        in
        cnot_error.(a).(b) <- err;
        cnot_error.(b).(a) <- err;
        cnot_duration.(a).(b) <- dur;
        cnot_duration.(b).(a) <- dur)
      (Topology.edges topology);
    Ok
      {
        Calib_sanitize.topology;
        day = Option.value ~default:0 !day;
        t1_us;
        t2_us;
        readout_error;
        single_error;
        cnot_error;
        cnot_duration;
      }
  with Parse_fail e -> Error e

let of_string src =
  match raw_of_string src with
  | Error _ as e -> e
  | Ok raw -> (
      try
        Ok
          (Calibration.create ~topology:raw.Calib_sanitize.topology
             ~day:raw.Calib_sanitize.day ~t1_us:raw.Calib_sanitize.t1_us
             ~t2_us:raw.Calib_sanitize.t2_us
             ~readout_error:raw.Calib_sanitize.readout_error
             ~single_error:raw.Calib_sanitize.single_error
             ~cnot_error:raw.Calib_sanitize.cnot_error
             ~cnot_duration:raw.Calib_sanitize.cnot_duration)
      with Invalid_argument msg -> Error { line = 0; message = msg })

let of_string_exn src =
  match of_string src with
  | Ok c -> c
  | Error { line; message } ->
      failwith (Printf.sprintf "Calib_io: line %d: %s" line message)

let save c ~path =
  let oc = open_out path in
  output_string oc (to_string c);
  close_out oc

let read_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  src

let load ~path = of_string (read_file path)

let load_raw ~path = raw_of_string (read_file path)
