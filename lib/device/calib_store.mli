(** Epoch-versioned calibration registry with atomic swap.

    A long-lived daemon serves every request against {e some} day's
    calibration; a hot reload must never change the calibration under a
    request that has already been admitted. This module gives each
    loaded calibration an {e epoch}: a monotonically increasing id, the
    sanitized record, and its provenance. Requests {!acquire} the
    current epoch at admission and {!release} it after their reply is
    delivered; {!swap} atomically promotes a new epoch for {e future}
    acquisitions while already-pinned epochs keep serving their
    in-flight requests unchanged — replies stay byte-identical across a
    concurrent reload.

    {2 Cache retention}

    Derived tables ({!Calib_cache}) are keyed by calibration digest.
    When a {e retired} epoch's pin count drains to zero its digest is
    flushed from every memo — unless another live epoch shares the
    digest (a reload of an identical file must not flush the tables the
    new epoch is using). The current epoch is never flushed.

    All operations are mutex-protected and O(live epochs); the store
    never blocks on I/O. *)

type epoch = {
  id : int;  (** monotonic; promotion takes the candidate's id *)
  calib : Calibration.t;
  source : string;  (** file path, or ["synthetic"] for generated data *)
  digest : string;  (** {!Calib_cache.digest} of [calib] *)
}

type t

val create : calib:Calibration.t -> source:string -> t
(** The store starts serving [calib] as epoch 0. *)

val current : t -> epoch
(** The serving epoch, without pinning it — for stats and for the
    reload pipeline's read of the live side. *)

val acquire : t -> epoch
(** Pin and return the current epoch. Every [acquire] must be paired
    with exactly one {!release}. *)

val release : t -> epoch -> unit
(** Unpin. When this was the last pin of a {e retired} epoch, its
    cache entries are flushed (see the digest-sharing caveat above).
    Releasing an unknown epoch is a no-op. *)

val allocate_candidate : t -> int
(** Reserve the next epoch id for a reload attempt. Ids are consumed
    whether or not the attempt promotes, so faultkit's [@epoch<N>]
    clauses name attempts unambiguously even across rollbacks. *)

val swap : t -> id:int -> calib:Calibration.t -> source:string -> epoch
(** Atomically promote [calib] as epoch [id] (from
    {!allocate_candidate}). The old current epoch is retired: if it has
    no pins its caches flush immediately, otherwise on its last
    {!release}. Raises [Invalid_argument] if [id] was not allocated
    after the current epoch's id (stale candidate). *)

val live_epochs : t -> int
(** Current epoch plus retired epochs still holding pins — the value a
    test asserts to see retention drain. *)

val pins : t -> int
(** Total outstanding pins across all epochs. *)
