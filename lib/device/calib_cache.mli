(** Calibration-keyed memoization of derived routing tables.

    A figure regeneration compiles every benchmark under ~10 configs
    against the {e same} calibration day, and each compile used to
    rebuild the all-pairs Dijkstra tables (and, downstream, the per-pair
    route matrices) from scratch. Everything those tables contain is a
    pure function of the calibration record — noise fields, topology and
    the [qubit_ok]/[link_ok] quarantine masks — so this module keys a
    process-wide cache on a digest of exactly those fields and shares
    one solve across all compiles of the day.

    {2 Keying}

    {!digest} hashes every field of the calibration that any derived
    table reads: topology, T1/T2, readout/single/CNOT error, CNOT
    duration, and both quarantine masks. The masks are load-bearing: two
    records with identical noise but different quarantine produce
    different reachability (dead rows, dead routes), so they must never
    share tables. The [day] label is deliberately excluded — it names
    the record but influences no derived value, and blind configs
    rebuild an identical uniform view each compile whose cache hit
    depends on it being ignored.

    {2 Concurrency and determinism}

    A single global mutex protects every memo table, and the [compute]
    closure runs {e while the lock is held}: concurrent compiles (the
    bench harness's figure-cell fan-out) agree on exactly one compute
    per key, which keeps the [cache.hit]/[cache.miss] counter totals —
    and the cached values themselves — deterministic for any pool size.
    The corollary: a [compute] closure must not call back into this
    module (the lock is not reentrant). The built-in {!paths} memo and
    the compiler's route-matrix memos satisfy this by construction.

    Each memo holds at most a bounded number of entries and is flushed
    wholesale when full — calibration streams are short (days, not
    millions), so anything smarter is dead weight. *)

val digest : Calibration.t -> string
(** Hex digest of the noise fields, topology and quarantine masks (not
    [day]). Physically-equal records short-circuit through a small ring
    memo, so repeated digests of the same record cost a pointer scan. *)

type 'a memo
(** A named table from calibration digest (plus an optional salt) to a
    derived value. *)

val memo : string -> 'a memo
(** Create a memo. The name labels the per-table
    ["cache.<name>.hit"]/["cache.<name>.miss"] counters feeding explain
    reports (alongside the global ["cache.hit"]/["cache.miss"] pair);
    distinct memos never share entries even under equal names. *)

val registered_names : unit -> string list
(** Every memo/shared-memo name registered so far, sorted — the tables
    a report's cache-provenance section should enumerate. *)

val find : 'a memo -> ?salt:string -> Calibration.t -> compute:(unit -> 'a) -> 'a
(** [find m calib ~compute] returns the cached value for [digest calib]
    (extended with [salt] when given — use it to key per-policy or
    per-criterion variants), computing and caching it on first use.
    Bumps [cache.hit] or [cache.miss] accordingly. [compute] runs under
    the global cache lock; it must be pure and must not re-enter the
    cache. *)

type 'a shared_memo
(** Like {!memo}, but built for expensive values: [compute] runs outside
    the global cache lock. *)

val shared_memo : string -> 'a shared_memo
(** Create a shared memo; same naming semantics as {!memo}. *)

val find_shared :
  'a shared_memo -> ?salt:string -> Calibration.t -> compute:(unit -> 'a) -> 'a
(** Like {!find}, except that [compute] runs {e outside} the global lock:
    the first requester of a key becomes its builder while concurrent
    requesters of the {e same} key block on a per-entry condition until
    the value is ready — requests for other keys (and every other memo)
    proceed unblocked. Exactly one compute per key either way, so the
    [cache.hit]/[cache.miss] totals stay deterministic for any pool size
    (waiters count as hits). If the builder raises — a cancelled run, an
    injected fault — the pending entry is dropped, the exception
    propagates to the builder, and each waiter retries from scratch (one
    becomes the new builder). Intended for multi-millisecond computes
    like solver-backed layouts; use {!find} for cheap derived tables. *)

val paths : Calibration.t -> Paths.t
(** Memoized {!Paths.make}: every caller with an equal-valued
    calibration gets the {e physically same} table. *)

val clear : unit -> unit
(** Drop every entry in every memo (counters are untouched). Tests use
    this to isolate hit/miss accounting. *)

val flush_digest : string -> unit
(** Drop every entry — in every memo — keyed under one calibration
    digest (the bare digest and every salted [digest ^ "|" ^ salt]
    variant). The epoch store ({!Calib_store}) calls this when a retired
    calibration epoch's pin count drains to zero, so a long-lived daemon
    retains derived tables per live epoch instead of forever. In-flight
    shared-memo builds are left alone (their epoch is pinned, so a
    refcount-zero flush never sees one). Counters are untouched. *)
