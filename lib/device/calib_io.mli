(** Calibration persistence.

    The real toolflow fetches calibration logs from the IBM Quantum
    Experience API and archives them (§6); this module provides the
    equivalent: a plain-text, line-oriented, diff-friendly format for
    saving a day's calibration and reloading it later, so experiments can
    be pinned to archived machine states.

    Format (one record per line, '#' comments allowed):

    {v
    nisq-calibration 1
    topology grid 2 8          # or: topology graph <n> a-b a-b ...
    day 3
    qubit <h> t1_us t2_us readout_error single_error
    edge <a> <b> cnot_error cnot_duration_slots
    v} *)

val to_string : Calibration.t -> string

type error = { line : int; message : string }
(** [line = 0] means the error is not tied to a single line (missing
    record, value rejected by [Calibration.create]). *)

val of_string : string -> (Calibration.t, error) result
(** Strict: parse and validate via [Calibration.create]. For lenient
    loading of possibly-corrupt logs, use [raw_of_string] (or [load_raw])
    and hand the result to [Calib_sanitize.sanitize]. *)

val raw_of_string : string -> (Calib_sanitize.raw, error) result
(** Structural parse only: topology plus one record per qubit and edge
    must be present, but field values are passed through unvalidated
    (NaNs and out-of-range values survive for the sanitizer to repair). *)

val of_string_exn : string -> Calibration.t
(** [of_string], raising [Failure] with a ["Calib_io: line N: ..."]
    message. *)

val save : Calibration.t -> path:string -> unit

val load : path:string -> (Calibration.t, error) result

val load_raw : path:string -> (Calib_sanitize.raw, error) result
