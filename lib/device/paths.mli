(** Reliability-aware path precomputation.

    Implements the two path families the compiler needs:

    - {b Most reliable paths} (Dijkstra with edge weight
      [-log (1 - cnot_error)]), used by the greedy heuristics (§5); and
    - {b One-bend paths} along the bounding rectangle of a qubit pair
      (§4.3, Fig. 4b), whose per-junction reliabilities form the paper's
      [EC] matrix (§4.4, Constraint 11) and whose durations form the [∆]
      matrix (§4.2, Constraint 5).

    A {!route} prices a full long-distance CNOT under the static-placement
    movement model: SWAP the control along the path until adjacent to the
    target, perform the CNOT, and SWAP back — duration
    [2·(d−1)·τ_SWAP + τ_CNOT] (§4.2) and reliability
    [Π_hops (1−e_hop)^6 · (1−e_last)] (each hop is traversed by two SWAPs
    = 6 CNOTs; cf. the §3.1 worked example). *)

type route = {
  path : int array;  (** qubit indices from control to target, inclusive *)
  junction : int;  (** the bend qubit; equals an endpoint on straight paths *)
  log_reliability : float;  (** log of the full round-trip CNOT reliability *)
  duration : int;  (** timeslots, including the CNOT itself *)
}

val route_via_path : ?junction:int -> Calibration.t -> int array -> route
(** Price a CNOT routed along an explicit adjacent-qubit path (length ≥ 2).
    [junction] defaults to the path head. Raises [Invalid_argument] if
    consecutive entries are not coupled. *)

type t
(** Precomputed path tables for one calibration day. *)

val make : Calibration.t -> t
(** All-pairs Dijkstra plus one-bend route tables; O(n² log n + n·m). *)

val calibration : t -> Calibration.t

val reachable : t -> int -> int -> bool
(** True when a live (non-quarantined) path connects the two qubits. *)

val best_path : t -> int -> int -> int array
(** Most reliable swap path between two distinct qubits, avoiding
    quarantined qubits and links. Raises [Invalid_argument] when no live
    path exists (check {!reachable}, or use {!best_path_route} which
    degrades to a sentinel instead). *)

val path_log_reliability : t -> int -> int -> float
(** Σ log(1 − e) over the best path's edges — the single-traversal
    "path length" score the greedy heuristics sum over neighbours. *)

val one_bend_routes : t -> int -> int -> route list
(** The (one or two) one-bend routes between distinct qubits; two entries
    when control and target differ in both coordinates, one otherwise.
    This is the EC/∆ lookup: [List.nth] index is the junction choice.
    Routes crossing quarantined hardware are dropped; if none survive,
    the list degrades to the single best live path (or, with no live
    path at all, a sentinel with [log_reliability = neg_infinity] and a
    huge duration that no decision procedure will ever pick). *)

val best_one_bend : t -> int -> int -> route
(** The more reliable of {!one_bend_routes}. *)

val best_path_route : t -> int -> int -> route
(** Full CNOT route priced along the Dijkstra best path — the heuristics'
    "Best Path" routing policy (Table 1). Degrades to the dead-route
    sentinel when no live path exists. *)
