(** Structured per-field drift between two calibration days.

    The reload pipeline's drift gate and [caliblint --diff] both consume
    this module: {!diff} computes a field-by-field comparison of a live
    calibration against a candidate, {!gate} turns it into a verdict
    under configurable thresholds, and {!to_json}/{!render} serialize
    the same structure for the [nisq-reload/1] report and the terminal.

    The comparison is purely structural — no wall-clock, no randomness —
    so the same pair of calibrations always produces byte-identical
    reports. *)

type thresholds = {
  max_new_quarantined : int;
      (** newly quarantined qubits + links tolerated before rejection *)
  max_mean_cnot_drift : float;
      (** relative drift of the mean CNOT error, e.g. [0.5] = ±50% *)
  max_mean_readout_drift : float;  (** likewise for mean readout error *)
  min_canary_esp_ratio : float;
      (** canary stage: candidate ESP must be at least this fraction of
          the live epoch's ESP on every probe *)
}

val default_thresholds : thresholds
(** 3 new quarantines, 50% mean-error drift, 0.5 ESP ratio. *)

(** Per-field aggregate: how many entries changed, the worst relative
    change and where it happened, and both means — one record for each
    of [t1_us], [t2_us], [readout_error], [single_error], [cnot_error],
    [cnot_duration]. *)
type field_summary = {
  field : string;
  changed : int;
  max_rel : float;  (** 0 when nothing changed *)
  worst_subject : string;  (** ["q3"] / ["e0-1"], [""] when unchanged *)
  mean_old : float;
  mean_new : float;
}

type t = {
  day_old : int;
  day_new : int;
  new_quarantined_qubits : int list;  (** live before, dead after *)
  revived_qubits : int list;
  new_quarantined_links : (int * int) list;
  revived_links : (int * int) list;
  fields : field_summary list;  (** fixed order, all six fields *)
  mean_cnot_drift : float;  (** relative, >= 0 *)
  mean_readout_drift : float;
}

val diff : old_:Calibration.t -> candidate:Calibration.t -> t
(** Raises [Invalid_argument] when the topologies differ (a candidate
    for a different machine is never comparable). *)

val gate : ?thresholds:thresholds -> t -> string list
(** Rejection reasons under the thresholds; [[]] means the candidate
    passes the drift gate. *)

val to_json : t -> Nisq_obs.Json.t
(** Schema [nisq-calib-diff/1]. *)

val render : t -> string
(** Human-readable multi-line report for [caliblint --diff]. *)
