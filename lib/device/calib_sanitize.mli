(** Calibration validation, repair and quarantine.

    Real calibration logs contain NaNs, zeroed T1/T2 entries and qubits
    taken offline mid-week (§2, §6.4). This module accepts an unvalidated
    [raw] record, repairs every field it can — backfilling from the
    previous day's calibration when available, else from same-day device
    medians, else from conservative defaults — and {e quarantines} qubits
    and links that are unusable (a mostly-invalid record, an isolated
    qubit, or a fragment disconnected from the largest live component).
    The result is always a well-formed [Calibration.t] whose quarantine
    masks make the compiler route around dead hardware, plus a structured
    report of everything that was touched. It never raises on bad values. *)

(** A calibration candidate before validation: same shape as
    [Calibration.t] but with no invariants — any field may be NaN,
    negative, zero or out of range. *)
type raw = {
  topology : Topology.t;
  day : int;
  t1_us : float array;
  t2_us : float array;
  readout_error : float array;
  single_error : float array;
  cnot_error : float array array;  (** [nan] off-edge *)
  cnot_duration : int array array;  (** [0] off-edge *)
}

val of_calibration : Calibration.t -> raw
(** Deep copy (mutating the result never aliases the calibration). *)

val apply_faults : raw -> Nisq_faultkit.Faultkit.calib_fault list -> raw
(** A copy of [raw] with the given deterministic corruptions applied:
    [Nan]/[Zero] corrupt a qubit's T1/T2 (or an edge's error/duration),
    [Offline] corrupts every field of the target so the sanitizer
    quarantines it. Out-of-range targets are ignored. *)

type action =
  | Repaired of { value : string; source : string }
      (** field replaced; [source] is ["previous day"], ["device median"],
          ["symmetric partner"], ["symmetrized"] or ["default"] *)
  | Quarantined of string  (** reason *)

type issue = {
  subject : string;  (** ["q3"] or ["e0-1"] *)
  field : string;
  found : string;  (** offending value as printed *)
  action : action;
}

type report = {
  issues : issue list;  (** in device order *)
  quarantined_qubits : int list;
  quarantined_links : (int * int) list;
}

val is_clean : report -> bool

val repairs : report -> int
(** Number of [Repaired] issues. *)

val sanitize : ?previous:Calibration.t -> raw -> Calibration.t * report
(** Validate, repair and quarantine. [previous] is the prior day's
    (trusted) calibration used as the first backfill source; its topology
    must match. Increments [resilience.calib.*] metrics for every repair
    and quarantine. Raises [Invalid_argument] only on structural
    mismatches (array lengths vs topology), never on bad values. *)

val render : report -> string
(** Human-readable multi-line report ("all fields valid" when clean). *)
