type t = {
  topology : Topology.t;
  day : int;
  t1_us : float array;
  t2_us : float array;
  readout_error : float array;
  single_error : float array;
  cnot_error : float array array;
  cnot_duration : int array array;
  qubit_ok : bool array;
  link_ok : bool array array;
}

let timeslot_ns = 80.0

let single_gate_duration = 1

let measure_duration = 4

let create ~topology ~day ~t1_us ~t2_us ~readout_error ~single_error
    ~cnot_error ~cnot_duration =
  let n = Topology.num_qubits topology in
  let check_len name a =
    if Array.length a <> n then
      invalid_arg (Printf.sprintf "Calibration.create: %s has length %d, want %d"
                     name (Array.length a) n)
  in
  check_len "t1_us" t1_us;
  check_len "t2_us" t2_us;
  check_len "readout_error" readout_error;
  check_len "single_error" single_error;
  if Array.length cnot_error <> n || Array.length cnot_duration <> n then
    invalid_arg "Calibration.create: edge matrices must be n x n";
  Array.iter
    (fun p ->
      if p < 0.0 || p > 1.0 then
        invalid_arg "Calibration.create: probability out of [0,1]")
    readout_error;
  List.iter
    (fun (a, b) ->
      let e = cnot_error.(a).(b) in
      if Float.is_nan e || e < 0.0 || e > 1.0 then
        invalid_arg
          (Printf.sprintf "Calibration.create: missing/bad CNOT error on edge (%d,%d)" a b);
      if Float.abs (e -. cnot_error.(b).(a)) > 1e-12 then
        invalid_arg "Calibration.create: CNOT error matrix not symmetric";
      if cnot_duration.(a).(b) <= 0 || cnot_duration.(a).(b) <> cnot_duration.(b).(a)
      then invalid_arg "Calibration.create: bad CNOT duration matrix")
    (Topology.edges topology);
  let link_ok = Array.make_matrix n n false in
  List.iter
    (fun (a, b) ->
      link_ok.(a).(b) <- true;
      link_ok.(b).(a) <- true)
    (Topology.edges topology);
  { topology; day; t1_us; t2_us; readout_error; single_error; cnot_error;
    cnot_duration; qubit_ok = Array.make n true; link_ok }

let with_quarantine t ~qubit_ok ~link_ok =
  let n = Topology.num_qubits t.topology in
  if Array.length qubit_ok <> n then
    invalid_arg "Calibration.with_quarantine: qubit_ok length mismatch";
  if Array.length link_ok <> n || Array.exists (fun r -> Array.length r <> n) link_ok
  then invalid_arg "Calibration.with_quarantine: link_ok must be n x n";
  (* Normalize: a link is live only if it is a coupling edge, both
     directions agree, and both endpoints are live. *)
  let qubit_ok = Array.copy qubit_ok in
  let norm = Array.make_matrix n n false in
  List.iter
    (fun (a, b) ->
      let live =
        link_ok.(a).(b) && link_ok.(b).(a) && qubit_ok.(a) && qubit_ok.(b)
      in
      norm.(a).(b) <- live;
      norm.(b).(a) <- live)
    (Topology.edges t.topology);
  { t with qubit_ok; link_ok = norm }

let uniform ?(cnot_error = 0.04) ?(readout_error = 0.07)
    ?(single_error = 0.002) ?(t2_us = 80.0) ?(cnot_duration = 4) topology =
  let n = Topology.num_qubits topology in
  let cnot_error_m = Array.make_matrix n n Float.nan in
  let cnot_duration_m = Array.make_matrix n n 0 in
  List.iter
    (fun (a, b) ->
      cnot_error_m.(a).(b) <- cnot_error;
      cnot_error_m.(b).(a) <- cnot_error;
      cnot_duration_m.(a).(b) <- cnot_duration;
      cnot_duration_m.(b).(a) <- cnot_duration)
    (Topology.edges topology);
  create ~topology ~day:(-1) ~t1_us:(Array.make n t2_us)
    ~t2_us:(Array.make n t2_us)
    ~readout_error:(Array.make n readout_error)
    ~single_error:(Array.make n single_error) ~cnot_error:cnot_error_m
    ~cnot_duration:cnot_duration_m

let require_edge t h1 h2 =
  if not (Topology.adjacent t.topology h1 h2) then
    invalid_arg
      (Printf.sprintf "Calibration: qubits %d and %d are not coupled" h1 h2)

let cnot_error t h1 h2 =
  require_edge t h1 h2;
  t.cnot_error.(h1).(h2)

let cnot_reliability t h1 h2 = 1.0 -. cnot_error t h1 h2

let cnot_duration t h1 h2 =
  require_edge t h1 h2;
  t.cnot_duration.(h1).(h2)

let swap_duration t h1 h2 = 3 * cnot_duration t h1 h2

let readout_error t h = t.readout_error.(h)

let readout_reliability t h = 1.0 -. t.readout_error.(h)

let qubit_live t h = t.qubit_ok.(h)

let link_live t h1 h2 = t.link_ok.(h1).(h2)

let num_live t =
  Array.fold_left (fun acc ok -> if ok then acc + 1 else acc) 0 t.qubit_ok

let live_qubits t =
  let acc = ref [] in
  for h = Array.length t.qubit_ok - 1 downto 0 do
    if t.qubit_ok.(h) then acc := h :: !acc
  done;
  !acc

let quarantined_qubits t =
  let acc = ref [] in
  for h = Array.length t.qubit_ok - 1 downto 0 do
    if not t.qubit_ok.(h) then acc := h :: !acc
  done;
  !acc

let quarantined_links t =
  List.filter (fun (a, b) -> not t.link_ok.(a).(b)) (Topology.edges t.topology)

let fully_live t =
  num_live t = Topology.num_qubits t.topology && quarantined_links t = []

let t2_slots t h =
  int_of_float (t.t2_us.(h) *. 1000.0 /. timeslot_ns)

let worst_t2_slots t =
  let worst = ref max_int in
  for h = 0 to Topology.num_qubits t.topology - 1 do
    worst := Int.min !worst (t2_slots t h)
  done;
  !worst

let mean_cnot_error t =
  let es = List.map (fun (a, b) -> t.cnot_error.(a).(b)) (Topology.edges t.topology) in
  Nisq_util.Stats.mean (Array.of_list es)

let mean_readout_error t = Nisq_util.Stats.mean t.readout_error

let mean_t2_us t = Nisq_util.Stats.mean t.t2_us

let pp_summary ppf t =
  Format.fprintf ppf
    "day %d: mean CNOT err %.4f, mean readout err %.4f, mean T2 %.1f us, worst T2 %d slots"
    t.day (mean_cnot_error t) (mean_readout_error t) (mean_t2_us t)
    (worst_t2_slots t);
  if not (fully_live t) then
    Format.fprintf ppf ", quarantined: %d qubits %d links"
      (Topology.num_qubits t.topology - num_live t)
      (List.length (quarantined_links t))
