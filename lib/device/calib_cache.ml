module Metrics = Nisq_obs.Metrics

let m_hit = Metrics.counter "cache.hit"
let m_miss = Metrics.counter "cache.miss"

(* One lock for the digest ring and every memo table. Compute runs under
   it (see the .mli's concurrency note): one compute per key, counter
   totals deterministic for any pool size. *)
let lock = Mutex.create ()

let with_lock f =
  Mutex.lock lock;
  Fun.protect f ~finally:(fun () -> Mutex.unlock lock)

(* ------------------------------ digest ----------------------------- *)

let digest_uncached (c : Calibration.t) =
  (* Every field a derived table reads; [day] deliberately excluded (it
     names the record but influences no derived value). The quarantine
     masks are part of the key: same noise + different masks = different
     reachability. *)
  let payload =
    Marshal.to_string
      ( c.Calibration.topology,
        c.Calibration.t1_us,
        c.Calibration.t2_us,
        c.Calibration.readout_error,
        c.Calibration.single_error,
        c.Calibration.cnot_error,
        c.Calibration.cnot_duration,
        c.Calibration.qubit_ok,
        c.Calibration.link_ok )
      []
  in
  Digest.to_hex (Digest.string payload)

(* Small ring of physically-known records: figures reuse one calibration
   value across ~36 compiles, so the marshal+MD5 runs once per record,
   not once per compile. Guarded by [lock]. *)
let ring_size = 8
let ring : (Calibration.t * string) option array = Array.make ring_size None
let ring_next = ref 0

let digest c =
  with_lock @@ fun () ->
  let found = ref None in
  for i = 0 to ring_size - 1 do
    match ring.(i) with
    | Some (c', d) when c' == c -> found := Some d
    | _ -> ()
  done;
  match !found with
  | Some d -> d
  | None ->
      let d = digest_uncached c in
      ring.(!ring_next) <- Some (c, d);
      ring_next := (!ring_next + 1) mod ring_size;
      d

(* ------------------------------- memos ----------------------------- *)

(* Bounded: when a table fills up it is flushed wholesale. Calibration
   streams are short (a few dozen days per figure run at most), so
   recency bookkeeping would cost more than the rare recompute. *)
let capacity = 64

type 'a memo = {
  name : string;
  tbl : (string, 'a) Hashtbl.t;
  c_hit : Metrics.counter; (* per-memo provenance for explain reports *)
  c_miss : Metrics.counter;
}

(* Per-memo hooks: [reset] drops everything (wholesale [clear]), [drop]
   removes only the entries keyed under one calibration digest — the
   epoch store calls it when a retired epoch's last pin is released. *)
type hooks = { reset : unit -> unit; drop : string -> unit }

let memos : hooks list ref = ref []

(* Keys are [digest] or [digest ^ "|" ^ salt]; digests are fixed-width
   MD5 hex, so a prefix match is unambiguous. *)
let key_under digest key =
  let dl = String.length digest in
  String.length key >= dl && String.sub key 0 dl = digest

let drop_keys tbl digest =
  let doomed =
    Hashtbl.fold
      (fun k _ acc -> if key_under digest k then k :: acc else acc)
      tbl []
  in
  List.iter (Hashtbl.remove tbl) doomed

(* Every memo keeps per-table "cache.<name>.{hit,miss}" counters next
   to the global pair, so an explain report can attribute which tables
   served a compile. Registered names are recorded for the report
   assembly to enumerate. *)
let memo_names : string list ref = ref []

let register_name name =
  with_lock (fun () ->
      if not (List.mem name !memo_names) then
        memo_names := name :: !memo_names)

let registered_names () =
  with_lock (fun () -> List.sort compare !memo_names)

let memo name =
  let m =
    {
      name;
      tbl = Hashtbl.create 16;
      c_hit = Metrics.counter ("cache." ^ name ^ ".hit");
      c_miss = Metrics.counter ("cache." ^ name ^ ".miss");
    }
  in
  register_name name;
  with_lock (fun () ->
      memos :=
        {
          reset = (fun () -> Hashtbl.reset m.tbl);
          drop = (fun digest -> drop_keys m.tbl digest);
        }
        :: !memos);
  m

let _ = fun (m : _ memo) -> m.name

let find m ?salt calib ~compute =
  (* [digest] takes the lock itself; key construction stays outside so
     the ring scan and the table lookup are two short critical
     sections around one (rare) marshal. *)
  let key =
    match salt with
    | None -> digest calib
    | Some s -> digest calib ^ "|" ^ s
  in
  with_lock @@ fun () ->
  match Hashtbl.find_opt m.tbl key with
  | Some v ->
      Metrics.incr m_hit;
      Metrics.incr m.c_hit;
      v
  | None ->
      Metrics.incr m_miss;
      Metrics.incr m.c_miss;
      let v = compute () in
      if Hashtbl.length m.tbl >= capacity then Hashtbl.reset m.tbl;
      Hashtbl.replace m.tbl key v;
      v

(* --------------------------- shared memos --------------------------- *)

(* Like [memo], but [compute] runs OUTSIDE the global lock: the first
   requester of a key installs a build cell and computes; concurrent
   requesters of the same key block on the cell's condition instead of
   holding up every other cache user. One compute per key either way, so
   counter totals stay deterministic for any pool size. *)

type 'a outcome = Pending | Ready of 'a | Failed

type 'a build = {
  bm : Mutex.t;
  bc : Condition.t;
  mutable outcome : 'a outcome;
}

type 'a shared_entry = Done of 'a | Building of 'a build

type 'a shared_memo = {
  sname : string;
  stbl : (string, 'a shared_entry) Hashtbl.t;
  sc_hit : Metrics.counter;
  sc_miss : Metrics.counter;
}

let shared_memo name =
  let m =
    {
      sname = name;
      stbl = Hashtbl.create 16;
      sc_hit = Metrics.counter ("cache." ^ name ^ ".hit");
      sc_miss = Metrics.counter ("cache." ^ name ^ ".miss");
    }
  in
  register_name name;
  with_lock (fun () ->
      memos :=
        {
          reset = (fun () -> Hashtbl.reset m.stbl);
          drop =
            (fun digest ->
              (* Skip in-flight builds: their builder will [finish] by
                 key and the entry is dropped at the next flush. A
                 refcount-zero epoch has no in-flight requests, so in
                 practice nothing is skipped. *)
              let doomed =
                Hashtbl.fold
                  (fun k v acc ->
                    match v with
                    | Done _ when key_under digest k -> k :: acc
                    | _ -> acc)
                  m.stbl []
              in
              List.iter (Hashtbl.remove m.stbl) doomed);
        }
        :: !memos);
  m

let _ = fun (m : _ shared_memo) -> m.sname

let rec find_shared_key m key ~compute =
  let role =
    with_lock @@ fun () ->
    match Hashtbl.find_opt m.stbl key with
    | Some (Done v) ->
        Metrics.incr m_hit;
        Metrics.incr m.sc_hit;
        `Hit v
    | Some (Building b) ->
        Metrics.incr m_hit;
        Metrics.incr m.sc_hit;
        `Wait b
    | None ->
        Metrics.incr m_miss;
        Metrics.incr m.sc_miss;
        let b =
          { bm = Mutex.create (); bc = Condition.create (); outcome = Pending }
        in
        if Hashtbl.length m.stbl >= capacity then Hashtbl.reset m.stbl;
        Hashtbl.replace m.stbl key (Building b);
        `Build b
  in
  match role with
  | `Hit v -> v
  | `Wait b -> (
      Mutex.lock b.bm;
      let rec await () =
        match b.outcome with
        | Pending ->
            Condition.wait b.bc b.bm;
            await ()
        | (Ready _ | Failed) as o -> o
      in
      let o = await () in
      Mutex.unlock b.bm;
      match o with
      | Ready v -> v
      (* The builder raised (cancellation, fault injection): its entry is
         gone, so retry from the top — we may become the new builder. *)
      | Failed | Pending -> find_shared_key m key ~compute)
  | `Build b ->
      let finish outcome =
        with_lock (fun () ->
            match outcome with
            | Ready v -> Hashtbl.replace m.stbl key (Done v)
            | Failed | Pending -> Hashtbl.remove m.stbl key);
        Mutex.lock b.bm;
        b.outcome <- outcome;
        Condition.broadcast b.bc;
        Mutex.unlock b.bm
      in
      (match compute () with
      | v ->
          finish (Ready v);
          v
      | exception e ->
          finish Failed;
          raise e)

let find_shared m ?salt calib ~compute =
  let key =
    match salt with
    | None -> digest calib
    | Some s -> digest calib ^ "|" ^ s
  in
  find_shared_key m key ~compute

let clear () =
  with_lock @@ fun () ->
  List.iter (fun h -> h.reset ()) !memos;
  Array.fill ring 0 ring_size None

let flush_digest digest =
  with_lock @@ fun () ->
  List.iter (fun h -> h.drop digest) !memos;
  for i = 0 to ring_size - 1 do
    match ring.(i) with
    | Some (_, d) when d = digest -> ring.(i) <- None
    | _ -> ()
  done

(* ------------------------------ paths ------------------------------ *)

let paths_memo : Paths.t memo = memo "device.paths"

let paths calib = find paths_memo calib ~compute:(fun () -> Paths.make calib)
