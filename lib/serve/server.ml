module Json = Nisq_obs.Json
module Metrics = Nisq_obs.Metrics
module Events = Nisq_obs.Events
module Clock = Nisq_obs.Clock
module Deadline = Nisq_runkit.Deadline
module Faultkit = Nisq_faultkit.Faultkit
module Config = Nisq_compiler.Config
module Compile = Nisq_compiler.Compile
module Layout = Nisq_compiler.Layout
module Budget = Nisq_solver.Budget
module Circuit = Nisq_circuit.Circuit
module Qasm = Nisq_circuit.Qasm
module Ibmq16 = Nisq_device.Ibmq16
module Calibration = Nisq_device.Calibration
module Calib_io = Nisq_device.Calib_io
module Calib_sanitize = Nisq_device.Calib_sanitize
module Calib_diff = Nisq_device.Calib_diff
module Calib_store = Nisq_device.Calib_store
module Benchmarks = Nisq_bench.Benchmarks
module Experiments = Nisq_bench.Experiments
module Runner = Nisq_sim.Runner
module Pool = Nisq_util.Pool

type calib_config = {
  calib_path : string;
  calib_prev : string option;
  watch_s : float option;
  thresholds : Calib_diff.thresholds;
  reload_report : string option;
}

type config = {
  socket : string;
  workers : int;
  queue_capacity : int;
  default_deadline_ms : int;
  drain_grace_s : float;
  calib : calib_config option;
}

let default_config ~socket =
  {
    socket;
    workers = 2;
    queue_capacity = 64;
    default_deadline_ms = 30_000;
    drain_grace_s = 5.0;
    calib = None;
  }

let calib_config ?prev ?watch_s ?(thresholds = Calib_diff.default_thresholds)
    ?report path =
  {
    calib_path = path;
    calib_prev = prev;
    watch_s;
    thresholds;
    reload_report = report;
  }

type outcome = Drained of Deadline.reason option

exception Startup_error of string

let m_requests = Metrics.counter "serve.requests"
let m_served = Metrics.counter "serve.served"
let m_handler_crashes = Metrics.counter "resilience.serve.handler_crashes"
let m_deadline_expired = Metrics.counter "serve.deadline_expired"
let m_conns = Metrics.counter "serve.connections"
let g_in_flight = Metrics.gauge "serve.in_flight"

(* One latency histogram per verb, shared across server instances —
   metrics names are process-global anyway. *)
let latency_hist =
  let table = Hashtbl.create 8 in
  fun verb_name ->
    match Hashtbl.find_opt table verb_name with
    | Some h -> h
    | None ->
        let h = Metrics.histogram ("serve.latency_ms." ^ verb_name) in
        Hashtbl.replace table verb_name h;
        h

(* ------------------------------ handler ----------------------------- *)

(* Request-level failures that are the client's fault, not ours. *)
exception Bad_request of string

let circuit_of (p : Protocol.compile_params) =
  match p.program with
  | Protocol.Named n -> (
      match Benchmarks.by_name n with
      | b -> (b.Benchmarks.name, b.Benchmarks.circuit)
      | exception Not_found ->
          raise (Bad_request (Printf.sprintf "unknown benchmark %S" n)))
  | Protocol.Qasm src -> (
      match Qasm.of_string src with
      | Ok c -> ("<qasm>", c)
      | Error { Qasm.line; message } ->
          raise (Bad_request (Printf.sprintf "qasm:%d: %s" line message)))

let config_of (p : Protocol.compile_params) =
  match p.routing with
  | Some r -> Config.make ~routing:r ~movement:p.movement p.method_
  | None -> Config.make ~movement:p.movement p.method_

(* The compile reply payload. Deterministic by construction: every
   field is a pure function of the request params and the calibration —
   wall-clock values (compile_seconds) are deliberately left out so
   coalesced waiters and repeated requests get byte-identical bytes.
   [calib] overrides the synthetic per-request calibration when the
   daemon serves file-backed epochs; the reply's [day] then reports the
   epoch's day, not the (ignored) request parameter. *)
let compile_result ?calib (p : Protocol.compile_params) =
  let name, circuit = circuit_of p in
  let calib =
    match calib with
    | Some c -> c
    | None -> Ibmq16.calibration ~seed:p.calib_seed ~day:p.day ()
  in
  let r = Compile.run ~config:(config_of p) ~calib circuit in
  let solver =
    match r.Compile.solver_stats with
    | None -> []
    | Some s ->
        [
          ( "solver",
            Json.Obj
              ([
                 ("nodes", Json.Int s.Budget.nodes_visited);
                 ("proven_optimal", Json.Bool s.Budget.proven_optimal);
               ]
              @
              match r.Compile.rung with
              | None -> []
              | Some rung ->
                  [ ("rung", Json.String (Compile.rung_name rung)) ]) );
        ]
  in
  let qasm =
    if p.emit_qasm then [ ("qasm", Json.String (Compile.to_qasm r)) ] else []
  in
  ( r,
    Json.Obj
      ([
         ("program", Json.String name);
         ("qubits", Json.Int r.Compile.program.Circuit.num_qubits);
         ("gates", Json.Int (Circuit.gate_count r.Compile.program));
         ("cnots", Json.Int (Circuit.cnot_count r.Compile.program));
         ("config", Json.String (Config.name r.Compile.config));
         ("day", Json.Int calib.Calibration.day);
         ("swaps", Json.Int r.Compile.swap_count);
         ("duration_slots", Json.Int r.Compile.duration);
         ("esp", Json.Float r.Compile.esp);
         ( "layout",
           Json.List
             (Array.to_list
                (Array.map (fun h -> Json.Int h)
                   (Layout.to_array r.Compile.layout))) );
       ]
      @ solver @ qasm) )

let run_result ?calib (p : Protocol.run_params) =
  let r, compile_json = compile_result ?calib p.Protocol.compile in
  let runner = Experiments.runner_of r in
  let success =
    Runner.success_rate ~trials:p.Protocol.trials ~pool:(Pool.default ())
      ~seed:p.Protocol.sim_seed runner
  in
  let extra =
    [
      ("trials", Json.Int p.Protocol.trials);
      ("sim_seed", Json.Int p.Protocol.sim_seed);
      ("ideal_answer", Json.Int (Runner.ideal_answer runner));
      ("success_rate", Json.Float success);
    ]
  in
  match compile_json with
  | Json.Obj kvs -> Json.Obj (kvs @ extra)
  | _ -> assert false

let handle_work ?calib verb =
  match verb with
  | Protocol.Compile p -> Protocol.Result (snd (compile_result ?calib p))
  | Protocol.Run p -> Protocol.Result (run_result ?calib p)
  | Protocol.Ping | Protocol.Stats | Protocol.Drain | Protocol.Reload _ ->
      Protocol.Failed
        {
          code = "not-work";
          message =
            Printf.sprintf "%S is answered inline, not queued"
              (Protocol.verb_name verb);
          retryable = false;
        }

(* --------------------------- server state --------------------------- *)

type conn = {
  fd : Unix.file_descr;
  wmutex : Mutex.t;
  (* No more writes: the peer is gone or the reply stream was severed. *)
  mutable dead : bool;
  (* The reader closed the fd and is terminating: the connection can be
     reaped (joined) without blocking, and the fd number may be reused. *)
  mutable closed : bool;
}

type drain_cause = Running | By_signal of Deadline.reason | By_verb

(* One queued reload attempt: [rpath] overrides the configured file,
   [rdeliver] answers the triggering connection (None for SIGHUP /
   watcher attempts, which have no one to answer). *)
type reload_request = {
  rpath : string option;
  rdeliver : (Protocol.reply_body -> unit) option;
}

type t = {
  cfg : config;
  queue : Admission.t;
  drain : drain_cause Atomic.t;
  req_counter : int Atomic.t;
  in_flight : int Atomic.t;
  served : int Atomic.t;
  crashes : int Atomic.t;
  started_ns : int64;
  conns_mutex : Mutex.t;
  mutable conns : (conn * unit Domain.t) list;
  (* server:slow / server:crash-handler clauses consumed by the reader
     at arrival (the faultkit is one-shot) but acted on by the worker. *)
  faults_mutex : Mutex.t;
  handler_faults : (int, Faultkit.server_fault) Hashtbl.t;
  (* Calibration epochs: None = synthetic per-request calibration (the
     pre-reload behaviour); Some = file-backed, hot-reloadable. *)
  store : Calib_store.t option;
  reload_mutex : Mutex.t;
  reload_pending : reload_request Queue.t;
  reload_stop : bool Atomic.t;
  hup : bool Atomic.t;
  r_attempts : int Atomic.t;
  r_promotions : int Atomic.t;
  r_rollbacks : int Atomic.t;
}

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* ------------------------------ replies ----------------------------- *)

(* Deliver one reply frame, honoring a one-shot net:* fault. Never
   raises: a peer that vanished mid-reply is that peer's problem — the
   connection is marked dead and the server moves on. *)
let send_reply ?net_fault conn (reply : Protocol.reply) =
  locked conn.wmutex (fun () ->
      if not (conn.dead || conn.closed) then
        let json = Protocol.reply_to_json reply in
        try
          match net_fault with
          | Some Faultkit.Net_torn ->
              Frame.write_torn conn.fd json;
              (* Sever so the client sees the tear now, not on its next
                 request. *)
              Unix.shutdown conn.fd Unix.SHUTDOWN_SEND
          | Some Faultkit.Net_close ->
              Unix.shutdown conn.fd Unix.SHUTDOWN_SEND
          | _ -> ignore (Frame.write conn.fd json)
        with Unix.Unix_error _ -> conn.dead <- true)

(* ------------------------------ workers ----------------------------- *)

let take_handler_fault t idx =
  locked t.faults_mutex (fun () ->
      match Hashtbl.find_opt t.handler_faults idx with
      | Some f ->
          Hashtbl.remove t.handler_faults idx;
          Some f
      | None -> None)

(* The server:slow fault: burn the request's whole deadline budget,
   cooperatively — the scoped deadline (or a drain's global cancel)
   ends the stall. *)
let rec stall () =
  (match Deadline.cancelled () with
  | Some r -> raise (Deadline.Cancelled r)
  | None -> ());
  Unix.sleepf 0.005;
  stall ()

let deliver_all entry body =
  List.iter (fun deliver -> deliver body) entry.Admission.waiters

let release_pin t epoch =
  match (t.store, epoch) with
  | Some store, Some e -> Calib_store.release store e
  | _ -> ()

let work_one t (entry : Admission.entry) =
  Atomic.incr t.in_flight;
  Metrics.set g_in_flight (float_of_int (Atomic.get t.in_flight));
  let t0 = Clock.now_ns () in
  let deadline_ms =
    Option.value entry.deadline_ms ~default:t.cfg.default_deadline_ms
  in
  let fault = take_handler_fault t entry.req_index in
  let verb_name = Protocol.verb_name entry.verb in
  (* The request compiles against the epoch it was admitted under, not
     whatever is current by the time a worker picks it up — that is the
     byte-identity contract across a concurrent reload. *)
  let calib =
    Option.map (fun e -> e.Calib_store.calib) entry.Admission.epoch
  in
  let body =
    match
      Deadline.with_scoped
        ~seconds:(float_of_int deadline_ms /. 1000.0)
        (fun () ->
          (match fault with
          | Some Faultkit.Crash_handler ->
              failwith "injected handler crash (server:crash-handler)"
          | Some Faultkit.Slow -> stall ()
          | _ -> ());
          handle_work ?calib entry.verb)
    with
    | Ok body -> body
    | Error _ ->
        Metrics.incr m_deadline_expired;
        Protocol.Failed
          {
            code = "deadline";
            message =
              Printf.sprintf "request exceeded its %d ms deadline" deadline_ms;
            retryable = false;
          }
    | exception Deadline.Cancelled _ ->
        (* Drain stage 2: the global token is flipped. Fail the request
           as retryable — a restarted daemon will serve it — and keep
           looping; the queue is stopped, so the worker exits once the
           backlog of instantly-cancelling entries is delivered. *)
        Protocol.Failed
          {
            code = "draining";
            message = "server is draining; retry against the next instance";
            retryable = true;
          }
    | exception Bad_request message ->
        Protocol.Failed { code = "bad-request"; message; retryable = false }
    | exception exn ->
        (* The resilience contract: a crashing handler produces a
           structured error reply and a metric tick; the worker domain
           survives to serve the next request. *)
        Atomic.incr t.crashes;
        Metrics.incr m_handler_crashes;
        Events.emit ~domain:"serve" Events.Warn
          (Printf.sprintf "nisqd: %s handler crashed: %s" verb_name
             (Printexc.to_string exn))
          ~fields:[ ("verb", verb_name) ];
        Protocol.Failed
          {
            code = "internal";
            message = Printexc.to_string exn;
            retryable = true;
          }
  in
  let ms = Int64.to_float (Int64.sub (Clock.now_ns ()) t0) /. 1e6 in
  Admission.note_service_ms t.queue ms;
  Metrics.observe (latency_hist verb_name) ms;
  (* Count and unpin before delivering: a client that sees its reply and
     immediately asks for stats must find this request in [served] and
     must not observe its epoch pin. The epoch was only needed while
     computing [body], so releasing here is safe. *)
  Atomic.incr t.served;
  Metrics.incr m_served;
  release_pin t entry.Admission.epoch;
  deliver_all entry body;
  Atomic.decr t.in_flight;
  Metrics.set g_in_flight (float_of_int (Atomic.get t.in_flight))

let rec worker_loop t =
  match Admission.pop t.queue with
  | None -> ()
  | Some entry ->
      work_one t entry;
      worker_loop t

(* ------------------------------ reload ------------------------------ *)

let draining_reply =
  Protocol.Failed
    {
      code = "draining";
      message = "server is draining; not accepting reloads";
      retryable = true;
    }

let enqueue_reload t req =
  if Atomic.get t.reload_stop then
    Option.iter (fun deliver -> deliver draining_reply) req.rdeliver
  else
    locked t.reload_mutex (fun () -> Queue.push req t.reload_pending)

let run_reload t ccfg store req =
  Atomic.incr t.r_attempts;
  let path = Option.value req.rpath ~default:ccfg.calib_path in
  let res = Reload.run ~store ~path ~thresholds:ccfg.thresholds () in
  (match res.Reload.outcome with
  | Reload.Promoted _ -> Atomic.incr t.r_promotions
  | Reload.Rolled_back _ -> Atomic.incr t.r_rollbacks);
  Option.iter
    (fun path -> Json.to_file ~path res.Reload.report)
    ccfg.reload_report;
  Option.iter
    (fun deliver -> deliver (Protocol.Result res.Reload.report))
    req.rdeliver

(* The reload domain: one pipeline at a time, fed by the reload verb,
   SIGHUP (the handler only flips an atomic — Events/Metrics take locks
   a signal could deadlock on), and the --calib-watch mtime poller.
   Serving never blocks on it; it never blocks serving. *)
let reload_loop t ccfg store =
  let mtime () =
    match Unix.stat ccfg.calib_path with
    | st -> st.Unix.st_mtime
    | exception Unix.Unix_error _ -> 0.0
  in
  let watch_last = ref (mtime ()) in
  let watch_next =
    ref
      (match ccfg.watch_s with
      | None -> Float.infinity
      | Some w -> Unix.gettimeofday () +. w)
  in
  let rec loop () =
    if Atomic.get t.reload_stop then
      (* Answer every still-queued trigger; nobody is left hanging. *)
      locked t.reload_mutex (fun () ->
          Queue.iter
            (fun req ->
              Option.iter (fun d -> d draining_reply) req.rdeliver)
            t.reload_pending;
          Queue.clear t.reload_pending)
    else begin
      if Atomic.exchange t.hup false then
        enqueue_reload t { rpath = None; rdeliver = None };
      (match ccfg.watch_s with
      | Some w when Unix.gettimeofday () >= !watch_next ->
          watch_next := Unix.gettimeofday () +. w;
          let m = mtime () in
          if m <> !watch_last then begin
            watch_last := m;
            enqueue_reload t { rpath = None; rdeliver = None }
          end
      | _ -> ());
      let req =
        locked t.reload_mutex (fun () -> Queue.take_opt t.reload_pending)
      in
      (match req with
      | Some req -> run_reload t ccfg store req
      | None -> Unix.sleepf 0.02);
      loop ()
    end
  in
  loop ()

(* ---------------------------- admin verbs --------------------------- *)

let ping_json =
  Json.Obj
    [
      ("pong", Json.Bool true);
      ("build", Json.String Protocol.build_id);
      ("protocol", Json.Int Protocol.protocol_version);
    ]

let stats_json t =
  let uptime_s =
    Int64.to_float (Int64.sub (Clock.now_ns ()) t.started_ns) /. 1e9
  in
  let admitted, coalesced, shed = Admission.counts t.queue in
  let calib =
    match t.store with
    | None -> [ ("calib", Json.Null) ]
    | Some store ->
        let e = Calib_store.current store in
        [
          ( "calib",
            Json.Obj
              [
                ("epoch", Json.Int e.Calib_store.id);
                ("day", Json.Int e.Calib_store.calib.Calibration.day);
                ("source", Json.String e.Calib_store.source);
                ("live_epochs", Json.Int (Calib_store.live_epochs store));
                ("pins", Json.Int (Calib_store.pins store));
              ] );
        ]
  in
  Json.Obj
    ([
       ("build", Json.String Protocol.build_id);
       ("protocol", Json.Int Protocol.protocol_version);
       ("workers", Json.Int t.cfg.workers);
       ("queue_capacity", Json.Int t.cfg.queue_capacity);
       ("queue_depth", Json.Int (Admission.depth t.queue));
       ("in_flight", Json.Int (Atomic.get t.in_flight));
       ("served", Json.Int (Atomic.get t.served));
       ("admitted", Json.Int admitted);
       ("coalesced", Json.Int coalesced);
       ("shed", Json.Int shed);
       ("handler_crashes", Json.Int (Atomic.get t.crashes));
       ( "reloads",
         Json.Obj
           [
             ("attempts", Json.Int (Atomic.get t.r_attempts));
             ("promotions", Json.Int (Atomic.get t.r_promotions));
             ("rollbacks", Json.Int (Atomic.get t.r_rollbacks));
           ] );
       ("uptime_s", Json.Float uptime_s);
       ( "draining",
         Json.Bool
           (match Atomic.get t.drain with Running -> false | _ -> true) );
     ]
    @ calib)

(* ------------------------------ readers ----------------------------- *)

let request_drain t cause =
  ignore (Atomic.compare_and_set t.drain Running cause)

let dispatch t conn (req : Protocol.request) =
  Metrics.incr m_requests;
  match req.verb with
  | Protocol.Ping -> send_reply conn { id = req.id; body = Result ping_json }
  | Protocol.Stats ->
      send_reply conn { id = req.id; body = Result (stats_json t) }
  | Protocol.Drain ->
      send_reply conn
        { id = req.id; body = Result (Json.Obj [ ("draining", Json.Bool true) ]) };
      request_drain t By_verb
  | Protocol.Reload { path } -> (
      match t.store with
      | None ->
          send_reply conn
            {
              id = req.id;
              body =
                Protocol.Failed
                  {
                    code = "no-calibration";
                    message =
                      "daemon serves synthetic calibration; start with \
                       --calib FILE to enable reload";
                    retryable = false;
                  };
            }
      | Some _ ->
          (* Queued to the reload domain; the reply arrives once the
             pipeline decides. The reader keeps reading — other requests
             on this connection are served meanwhile. *)
          let deliver body = send_reply conn { id = req.id; body } in
          enqueue_reload t { rpath = path; rdeliver = Some deliver })
  | Protocol.Compile _ | Protocol.Run _ ->
      (* Work verbs consume arrival indices — the faultkit's @req<N>
         targets count these, not pings. *)
      let idx = Atomic.fetch_and_add t.req_counter 1 in
      let net_fault, handler_faulted =
        match Faultkit.server_fault idx with
        | Some (Faultkit.Net_torn | Faultkit.Net_close) as f -> (f, false)
        | Some ((Faultkit.Slow | Faultkit.Crash_handler) as fault) ->
            locked t.faults_mutex (fun () ->
                Hashtbl.replace t.handler_faults idx fault);
            (None, true)
        | None -> (None, false)
      in
      let deliver body = send_reply ?net_fault conn { id = req.id; body } in
      (* Pin the serving epoch at admission: a reload promoted a moment
         later must not change this request's reply bytes. *)
      let epoch = Option.map Calib_store.acquire t.store in
      (* A handler-faulted request must own its entry: coalescing onto
         a clean twin would both dodge the fault (the worker consumes it
         by the entry's index) and blast the twin's waiters with it. *)
      let verdict =
        Admission.submit ~coalescable:(not handler_faulted) ?epoch t.queue
          ~verb:req.verb ~deadline_ms:req.deadline_ms ~req_index:idx ~deliver
      in
      (match verdict with
      | Admission.Admitted -> ()
      | Admission.Coalesced ->
          (* The queued twin holds its own pin on the same epoch (the
             epoch id is part of the coalesce key). *)
          release_pin t epoch
      | Admission.Shed { retry_after_ms; queue_depth } ->
          release_pin t epoch;
          deliver (Protocol.Overloaded { retry_after_ms; queue_depth })
      | Admission.Draining ->
          release_pin t epoch;
          deliver
            (Protocol.Failed
               {
                 code = "draining";
                 message = "server is draining; not accepting new work";
                 retryable = true;
               }))

let reader_loop t conn =
  let rec loop () =
    match Frame.read conn.fd with
    | Error Frame.Eof -> ()
    | Error ((Frame.Torn _ | Frame.Too_large _ | Frame.Malformed _) as e) ->
        (* The stream is unframed from here on; answer what we can and
           hang up. id 0 is reserved for "could not even parse the
           request". *)
        send_reply conn
          {
            id = 0;
            body =
              Protocol.Failed
                {
                  code = "bad-frame";
                  message = Frame.error_message e;
                  retryable = false;
                };
          }
    | Ok json ->
        (match Protocol.request_of_json json with
        | Error message ->
            send_reply conn
              {
                id = 0;
                body =
                  Protocol.Failed
                    { code = "bad-request"; message; retryable = false };
              }
        | Ok req -> dispatch t conn req);
        loop ()
  in
  loop ();
  (* The reader owns the fd: close exactly once, here, whatever state
     the writers left the connection in. *)
  locked conn.wmutex (fun () ->
      conn.dead <- true;
      if not conn.closed then begin
        conn.closed <- true;
        (try Unix.close conn.fd with Unix.Unix_error _ -> ())
      end)

(* ------------------------------- drain ------------------------------ *)

(* Reap connections whose reader has finished: join costs nothing once
   [closed] is set, and eager joins keep a long-lived daemon's domain
   count proportional to live connections, not total ones. *)
let reap_finished t =
  let finished =
    locked t.conns_mutex (fun () ->
        let gone, live =
          List.partition (fun (conn, _) -> conn.closed) t.conns
        in
        t.conns <- live;
        gone)
  in
  List.iter (fun (_, d) -> Domain.join d) finished

let sever_connections t =
  let conns = locked t.conns_mutex (fun () -> t.conns) in
  List.iter
    (fun (conn, _) ->
      locked conn.wmutex (fun () ->
          conn.dead <- true;
          (* shutdown, not close: unblocks a reader parked in
             [Frame.read]; the reader closes the fd on its way out. *)
          if not conn.closed then
            try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL
            with Unix.Unix_error _ -> ()))
    conns;
  List.iter (fun (_, d) -> Domain.join d) conns

let fail_leftovers t =
  let rec loop () =
    match Admission.pop t.queue with
    | None -> ()
    | Some entry ->
        deliver_all entry
          (Protocol.Failed
             {
               code = "draining";
               message = "server drained before this request was served";
               retryable = true;
             });
        (* The entry owned its epoch pin from admission; an unserved
           entry must still release it or the epoch leaks forever. *)
        release_pin t entry.Admission.epoch;
        loop ()
  in
  loop ()

(* ------------------------- initial calibration ---------------------- *)

(* Load the file the daemon will serve. Startup is strict — a daemon
   that cannot establish epoch 0 must not come up — but routes through
   the same raw-parse + sanitize pipeline reloads use, so a file good
   enough to promote is good enough to boot from. [calib_prev] seeds
   the sanitizer's previous-day backfill chain exactly as the live
   epoch does for later reloads. *)
let load_initial_calib ccfg =
  let parse path =
    match Calib_io.load_raw ~path with
    | Ok raw -> raw
    | Error { Calib_io.line; message } ->
        raise
          (Startup_error
             (if line > 0 then Printf.sprintf "%s:%d: %s" path line message
              else Printf.sprintf "%s: %s" path message))
  in
  let previous =
    Option.map
      (fun path -> fst (Calib_sanitize.sanitize (parse path)))
      ccfg.calib_prev
  in
  let raw = parse ccfg.calib_path in
  match
    match previous with
    | Some previous -> Calib_sanitize.sanitize ~previous raw
    | None -> Calib_sanitize.sanitize raw
  with
  | calib, report ->
      if not (Calib_sanitize.is_clean report) then
        Events.emit ~domain:"serve" Events.Info
          (Printf.sprintf
             "calibration %s sanitized at startup: %d repairs, %d qubits + \
              %d links quarantined"
             ccfg.calib_path
             (Calib_sanitize.repairs report)
             (List.length report.Calib_sanitize.quarantined_qubits)
             (List.length report.Calib_sanitize.quarantined_links))
          ~fields:[ ("path", ccfg.calib_path) ];
      calib
  | exception Invalid_argument msg ->
      raise (Startup_error (Printf.sprintf "%s: %s" ccfg.calib_path msg))

(* -------------------------------- run ------------------------------- *)

let assert_socket_free path =
  if Sys.file_exists path then begin
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error _ -> false
    in
    (try Unix.close fd with Unix.Unix_error _ -> ());
    if live then
      raise
        (Startup_error
           (Printf.sprintf "socket %s is already served by a live daemon" path));
    (* Stale socket from a crashed daemon: reclaim it. *)
    try Unix.unlink path
    with Unix.Unix_error (e, _, _) ->
      raise
        (Startup_error
           (Printf.sprintf "cannot reclaim stale socket %s: %s" path
              (Unix.error_message e)))
  end

let run ?(on_ready = fun () -> ()) ?(signals = false) cfg =
  if cfg.workers < 0 then invalid_arg "Server.run: workers must be >= 0";
  (* A client hanging up mid-reply must be an EPIPE result, not a
     process-killing signal. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  assert_socket_free cfg.socket;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket)
   with Unix.Unix_error (e, _, _) ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise
       (Startup_error
          (Printf.sprintf "cannot bind %s: %s" cfg.socket (Unix.error_message e))));
  Unix.listen listen_fd 64;
  let store =
    match cfg.calib with
    | None -> None
    | Some ccfg ->
        let calib =
          try load_initial_calib ccfg
          with Startup_error _ as e ->
            (try Unix.close listen_fd with Unix.Unix_error _ -> ());
            (try Unix.unlink cfg.socket with Unix.Unix_error _ -> ());
            raise e
        in
        Some (Calib_store.create ~calib ~source:ccfg.calib_path)
  in
  let t =
    {
      cfg;
      queue =
        Admission.create ~capacity:cfg.queue_capacity
          ~workers:(max 1 cfg.workers) ();
      drain = Atomic.make Running;
      req_counter = Atomic.make 0;
      in_flight = Atomic.make 0;
      served = Atomic.make 0;
      crashes = Atomic.make 0;
      started_ns = Clock.now_ns ();
      conns_mutex = Mutex.create ();
      conns = [];
      faults_mutex = Mutex.create ();
      handler_faults = Hashtbl.create 8;
      store;
      reload_mutex = Mutex.create ();
      reload_pending = Queue.create ();
      reload_stop = Atomic.make false;
      hup = Atomic.make false;
      r_attempts = Atomic.make 0;
      r_promotions = Atomic.make 0;
      r_rollbacks = Atomic.make 0;
    }
  in
  let old_term = ref Sys.Signal_default and old_int = ref Sys.Signal_default in
  let old_hup = ref Sys.Signal_default in
  if signals then begin
    let on_signal reason _ =
      match Atomic.get t.drain with
      | Running -> request_drain t (By_signal reason)
      | _ ->
          (* Second signal: the operator means it. *)
          Stdlib.exit (Deadline.exit_code reason)
    in
    old_term := Sys.signal Sys.sigterm (Sys.Signal_handle (on_signal Deadline.Sigterm));
    old_int := Sys.signal Sys.sigint (Sys.Signal_handle (on_signal Deadline.Sigint));
    if Option.is_some t.store then
      (* The handler only flips an atomic: Events/Metrics take mutexes
         a signal handler could deadlock on. The reload domain notices
         the flag within one poll tick. *)
      old_hup :=
        Sys.signal Sys.sighup (Sys.Signal_handle (fun _ -> Atomic.set t.hup true))
  end;
  let reload_domain =
    match (t.store, cfg.calib) with
    | Some store, Some ccfg ->
        Some (Domain.spawn (fun () -> reload_loop t ccfg store))
    | _ -> None
  in
  let workers = List.init cfg.workers (fun _ -> Domain.spawn (fun () -> worker_loop t)) in
  Events.emit ~domain:"serve" Events.Info
    (Printf.sprintf "nisqd listening on %s (%d workers, queue %d)" cfg.socket
       cfg.workers cfg.queue_capacity)
    ~fields:[ ("socket", cfg.socket) ];
  on_ready ();
  (* Accept loop: select with a short timeout so a drain request (from
     a signal or the drain verb, either delivered on another domain) is
     noticed promptly. *)
  let rec accept_loop () =
    match Atomic.get t.drain with
    | Running ->
        let readable =
          match Unix.select [ listen_fd ] [] [] 0.1 with
          | r, _, _ -> r <> []
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
        in
        reap_finished t;
        (if readable then
           match Unix.accept listen_fd with
           | fd, _ ->
               Metrics.incr m_conns;
               let conn =
                 { fd; wmutex = Mutex.create (); dead = false; closed = false }
               in
               let d = Domain.spawn (fun () -> reader_loop t conn) in
               locked t.conns_mutex (fun () -> t.conns <- (conn, d) :: t.conns)
           | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EINTR | Unix.EWOULDBLOCK), _, _)
             ->
               ());
        accept_loop ()
    | _ -> ()
  in
  accept_loop ();
  let cause = Atomic.get t.drain in
  (* Stage 1: stop accepting. New connects fail, queued submissions get
     "draining", queued + in-flight work keeps going. *)
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  (try Unix.unlink cfg.socket with Unix.Unix_error _ -> ());
  Admission.close_intake t.queue;
  Events.emit ~domain:"serve" Events.Info "nisqd drain stage 1: intake closed";
  let grace_deadline =
    Int64.add (Clock.now_ns ()) (Int64.of_float (cfg.drain_grace_s *. 1e9))
  in
  let rec await_idle () =
    if Admission.is_empty t.queue && Atomic.get t.in_flight = 0 then true
    else if Clock.now_ns () >= grace_deadline then false
    else begin
      Unix.sleepf 0.01;
      await_idle ()
    end
  in
  let drained_in_grace = await_idle () in
  (* Stage 2: cancel stragglers. Flipping the global token makes every
     cooperative checkpoint (solver ticks, pool chunk boundaries, the
     injected-slow stall) raise; their requests answer "draining". *)
  let flipped =
    if drained_in_grace then false
    else begin
      Events.emit ~domain:"serve" Events.Warn
        (Printf.sprintf
           "nisqd drain stage 2: grace (%.1fs) expired with work in flight — \
            cancelling"
           cfg.drain_grace_s);
      Deadline.cancel
        (match cause with By_signal r -> r | _ -> Deadline.Sigterm);
      true
    end
  in
  Admission.stop t.queue;
  (* The reload domain finishes its in-flight pipeline (sub-second),
     answers anything still queued with "draining", and exits. *)
  Atomic.set t.reload_stop true;
  Option.iter Domain.join reload_domain;
  List.iter Domain.join workers;
  (* With zero workers (or a worker lost to the grace cutoff) the queue
     can still hold undelivered entries — every waiter gets an answer. *)
  fail_leftovers t;
  sever_connections t;
  if signals then begin
    (try Sys.set_signal Sys.sigterm !old_term with Invalid_argument _ -> ());
    (try Sys.set_signal Sys.sigint !old_int with Invalid_argument _ -> ());
    if Option.is_some t.store then
      try Sys.set_signal Sys.sighup !old_hup with Invalid_argument _ -> ()
  end;
  (* In-process callers (tests) reuse the domain: leave the token as
     clean as we found it. The daemon binary exits right after anyway. *)
  if flipped then Deadline.reset ();
  Events.emit ~domain:"serve" Events.Info
    (Printf.sprintf "nisqd drained (%d served, %d crashes handled)"
       (Atomic.get t.served) (Atomic.get t.crashes));
  Drained (match cause with By_signal r -> Some r | _ -> None)
