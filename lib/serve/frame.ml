module Json = Nisq_obs.Json

let max_payload_bytes = 16 * 1024 * 1024

let encode json =
  let payload = Json.to_string json in
  let n = String.length payload in
  if n > max_payload_bytes then
    invalid_arg (Printf.sprintf "Frame.encode: %d-byte payload" n);
  let b = Bytes.create (4 + n) in
  Bytes.set_uint8 b 0 ((n lsr 24) land 0xff);
  Bytes.set_uint8 b 1 ((n lsr 16) land 0xff);
  Bytes.set_uint8 b 2 ((n lsr 8) land 0xff);
  Bytes.set_uint8 b 3 (n land 0xff);
  Bytes.blit_string payload 0 b 4 n;
  Bytes.unsafe_to_string b

let rec write_all fd s pos len =
  if len > 0 then begin
    let n =
      try Unix.write_substring fd s pos len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd s (pos + n) (len - n)
  end

let write fd json =
  let wire = encode json in
  write_all fd wire 0 (String.length wire);
  wire

let write_torn fd json =
  let wire = encode json in
  write_all fd wire 0 (String.length wire / 2)

type error =
  | Eof
  | Torn of string
  | Too_large of int
  | Malformed of string

let error_message = function
  | Eof -> "end of stream"
  | Torn what -> Printf.sprintf "torn frame (stream ended inside %s)" what
  | Too_large n ->
      Printf.sprintf "frame length %d exceeds the %d-byte cap" n
        max_payload_bytes
  | Malformed msg -> Printf.sprintf "malformed payload: %s" msg

(* Read exactly [len] bytes; [`Eof n] reports how many arrived before
   the stream ended. A remote hard close can also surface as
   ECONNRESET/EPIPE — to a frame reader that is the same event as a
   mid-frame EOF, so it maps to the same result. *)
let read_exact fd buf len =
  let rec go pos =
    if pos >= len then `Ok
    else
      match Unix.read fd buf pos (len - pos) with
      | 0 -> `Eof pos
      | n -> go (pos + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go pos
      | exception
          Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
          `Eof pos
  in
  go 0

let read ?record fd =
  let header = Bytes.create 4 in
  match read_exact fd header 4 with
  | `Eof 0 -> Error Eof
  | `Eof _ -> Error (Torn "the length prefix")
  | `Ok -> (
      let n =
        (Bytes.get_uint8 header 0 lsl 24)
        lor (Bytes.get_uint8 header 1 lsl 16)
        lor (Bytes.get_uint8 header 2 lsl 8)
        lor Bytes.get_uint8 header 3
      in
      if n > max_payload_bytes then Error (Too_large n)
      else
        let payload = Bytes.create n in
        match read_exact fd payload n with
        | `Eof _ -> Error (Torn "the payload")
        | `Ok -> (
            let s = Bytes.unsafe_to_string payload in
            (match record with
            | Some f -> f (Bytes.to_string header ^ s)
            | None -> ());
            match Json.of_string s with
            | Ok v -> Ok v
            | Error msg -> Error (Malformed msg)))

let scan_string src =
  let len = String.length src in
  let rec go acc pos =
    if pos = len then Ok (List.rev acc)
    else if pos + 4 > len then Error "torn length prefix"
    else
      let n =
        (Char.code src.[pos] lsl 24)
        lor (Char.code src.[pos + 1] lsl 16)
        lor (Char.code src.[pos + 2] lsl 8)
        lor Char.code src.[pos + 3]
      in
      if n > max_payload_bytes then
        Error (Printf.sprintf "frame length %d exceeds the cap" n)
      else if pos + 4 + n > len then
        Error (Printf.sprintf "torn payload at byte %d" pos)
      else
        match Json.of_string (String.sub src (pos + 4) n) with
        | Ok v -> go (v :: acc) (pos + 4 + n)
        | Error msg ->
            Error (Printf.sprintf "frame at byte %d: invalid JSON: %s" pos msg)
  in
  go [] 0
