(** Client side of the daemon protocol: one-shot calls and the retry
    loop `nisqc --connect` uses.

    The retry policy is capped exponential backoff with deterministic
    jitter, and it {e honors the server}: an [overloaded] reply carries
    [retry_after_ms], the server's own estimate of when a queue slot
    opens, and the backoff never sleeps less than that hint. Jitter is
    derived from [(seed, attempt)] — no wall clock, no global RNG — so
    a retry schedule is reproducible in tests. *)

type t
(** One connected socket. Not thread-safe: one caller at a time. *)

val connect : socket:string -> (t, string) result
val close : t -> unit

val call :
  ?record:(string -> unit) ->
  t ->
  Protocol.request ->
  (Protocol.reply, string) result
(** One round-trip: write the request frame, read one reply frame.
    [record] receives the raw wire bytes of both frames (request then
    reply) — the [--record] capture that [jsonlint --frame] checks.
    [Error] means the connection is unusable (refused, torn frame,
    unparseable reply) — reconnect before retrying. *)

val backoff_ms :
  ?base_ms:int ->
  ?cap_ms:int ->
  seed:int ->
  attempt:int ->
  retry_after_ms:int option ->
  unit ->
  int
(** The pause before retry number [attempt+1] (attempts count from 0):
    [base_ms * 2^attempt] capped at [cap_ms] (defaults 50/2000),
    raised to [retry_after_ms] when the server sent one, plus
    deterministic jitter of up to 25% on top. Pure — exposed so tests
    can check the whole schedule without sleeping. *)

type failure =
  | Remote of { code : string; message : string }
      (** the server answered with a non-retryable error — retrying is
          pointless (bad request, deadline, unknown benchmark) *)
  | Unavailable of string
      (** could not get an answer within the attempt budget: connection
          refused/torn every time, or persistent overload/draining *)

val call_with_retry :
  ?attempts:int ->
  ?base_ms:int ->
  ?cap_ms:int ->
  ?seed:int ->
  ?sleep:(float -> unit) ->
  socket:string ->
  Protocol.request ->
  (Nisq_obs.Json.t, failure) result
(** Call until a definitive answer or [attempts] (default 5) tries are
    spent. Each attempt opens a fresh connection — a daemon that tore
    the last one mid-reply is healthy again for the next. Retries on:
    connect failure, torn/short reply, [overloaded] (honoring its
    hint), and [error] replies marked [retryable] (a draining server).
    [sleep] is injectable for tests (default [Unix.sleepf]). On
    success, returns the reply's [result] payload. *)
