module Json = Nisq_obs.Json
module Config = Nisq_compiler.Config

let protocol_version = 2

let build_id = Printf.sprintf "nisq 1.2.0 proto/%d" protocol_version

type program = Named of string | Qasm of string

type compile_params = {
  program : program;
  method_ : Config.method_;
  routing : Config.routing option;
  movement : Config.movement;
  day : int;
  calib_seed : int;
  emit_qasm : bool;
}

type run_params = { compile : compile_params; trials : int; sim_seed : int }

type verb =
  | Ping
  | Stats
  | Drain
  | Reload of { path : string option }
  | Compile of compile_params
  | Run of run_params

let verb_name = function
  | Ping -> "ping"
  | Stats -> "stats"
  | Drain -> "drain"
  | Reload _ -> "reload"
  | Compile _ -> "compile"
  | Run _ -> "run"

type request = { id : int; deadline_ms : int option; verb : verb }

type reply_body =
  | Result of Json.t
  | Overloaded of { retry_after_ms : int; queue_depth : int }
  | Failed of { code : string; message : string; retryable : bool }

type reply = { id : int; body : reply_body }

(* --------------------------- method names --------------------------- *)

let method_to_string = function
  | Config.Qiskit -> "qiskit"
  | Config.T_smt -> "tsmt"
  | Config.T_smt_star -> "tsmt*"
  | Config.R_smt_star w -> Printf.sprintf "rsmt:%g" w
  | Config.Greedy_v -> "greedyv"
  | Config.Greedy_e -> "greedye"

let method_of_string s =
  match String.lowercase_ascii s with
  | "qiskit" -> Ok Config.Qiskit
  | "tsmt" | "t-smt" -> Ok Config.T_smt
  | "tsmt*" | "t-smt*" | "tsmt-star" -> Ok Config.T_smt_star
  | "rsmt" | "rsmt*" | "r-smt*" -> Ok (Config.R_smt_star 0.5)
  | s when String.length s > 5 && String.sub s 0 5 = "rsmt:" -> (
      match Float.of_string_opt (String.sub s 5 (String.length s - 5)) with
      | Some w when w >= 0.0 && w <= 1.0 -> Ok (Config.R_smt_star w)
      | _ -> Error "bad omega in rsmt:<omega>")
  | "greedyv" | "greedyv*" -> Ok Config.Greedy_v
  | "greedye" | "greedye*" -> Ok Config.Greedy_e
  | other -> Error (Printf.sprintf "unknown method %S" other)

let routing_to_string = function
  | Config.Rectangle_reservation -> "rr"
  | Config.One_bend -> "1bp"
  | Config.Best_path -> "bestpath"

let routing_of_string s =
  match String.lowercase_ascii s with
  | "rr" -> Ok Config.Rectangle_reservation
  | "1bp" -> Ok Config.One_bend
  | "bestpath" | "best-path" -> Ok Config.Best_path
  | other -> Error (Printf.sprintf "unknown routing %S" other)

let movement_to_string = function
  | Config.Swap_back -> "swap-back"
  | Config.Move_and_stay -> "move-and-stay"

let movement_of_string s =
  match String.lowercase_ascii s with
  | "swap-back" | "swapback" | "static" -> Ok Config.Swap_back
  | "move" | "move-and-stay" | "dynamic" -> Ok Config.Move_and_stay
  | other -> Error (Printf.sprintf "unknown movement %S" other)

(* ------------------------------ encode ------------------------------ *)

let compile_params_to_json p =
  let program =
    match p.program with
    | Named n -> ("program", Json.String n)
    | Qasm src -> ("qasm", Json.String src)
  in
  Json.Obj
    (program
    :: [
         ("method", Json.String (method_to_string p.method_));
         ( "routing",
           match p.routing with
           | None -> Json.Null
           | Some r -> Json.String (routing_to_string r) );
         ("movement", Json.String (movement_to_string p.movement));
         ("day", Json.Int p.day);
         ("calibration_seed", Json.Int p.calib_seed);
         ("emit_qasm", Json.Bool p.emit_qasm);
       ])

let params_to_json = function
  | Ping | Stats | Drain -> []
  | Reload { path = None } -> []
  | Reload { path = Some p } ->
      [ ("params", Json.Obj [ ("path", Json.String p) ]) ]
  | Compile p -> [ ("params", compile_params_to_json p) ]
  | Run { compile; trials; sim_seed } ->
      let base =
        match compile_params_to_json compile with
        | Json.Obj kvs -> kvs
        | _ -> assert false
      in
      [
        ( "params",
          Json.Obj
            (base @ [ ("trials", Json.Int trials); ("sim_seed", Json.Int sim_seed) ])
        );
      ]

let request_to_json (r : request) =
  Json.Obj
    ([
       ("nisqd", Json.Int protocol_version);
       ("id", Json.Int r.id);
       ("verb", Json.String (verb_name r.verb));
     ]
    @ (match r.deadline_ms with
      | None -> []
      | Some ms -> [ ("deadline_ms", Json.Int ms) ])
    @ params_to_json r.verb)

let reply_to_json r =
  let body =
    match r.body with
    | Result v -> [ ("status", Json.String "ok"); ("result", v) ]
    | Overloaded { retry_after_ms; queue_depth } ->
        [
          ("status", Json.String "overloaded");
          ("retry_after_ms", Json.Int retry_after_ms);
          ("queue_depth", Json.Int queue_depth);
        ]
    | Failed { code; message; retryable } ->
        [
          ("status", Json.String "error");
          ("code", Json.String code);
          ("message", Json.String message);
          ("retryable", Json.Bool retryable);
        ]
  in
  Json.Obj (("id", Json.Int r.id) :: body)

(* ------------------------------ decode ------------------------------ *)

let ( let* ) = Result.bind

let int_member name ?default v =
  match Json.member name v with
  | Some (Json.Int i) -> Ok i
  | Some _ -> Error (Printf.sprintf "%S is not an integer" name)
  | None -> (
      match default with
      | Some d -> Ok d
      | None -> Error (Printf.sprintf "missing %S" name))

let string_member name v =
  match Json.member name v with
  | Some (Json.String s) -> Ok s
  | Some _ -> Error (Printf.sprintf "%S is not a string" name)
  | None -> Error (Printf.sprintf "missing %S" name)

let bool_member name ~default v =
  match Json.member name v with
  | Some (Json.Bool b) -> Ok b
  | Some _ -> Error (Printf.sprintf "%S is not a boolean" name)
  | None -> Ok default

let compile_params_of_json v =
  let* program =
    match (Json.member "program" v, Json.member "qasm" v) with
    | Some (Json.String n), None -> Ok (Named n)
    | None, Some (Json.String src) -> Ok (Qasm src)
    | Some _, Some _ -> Error "both \"program\" and \"qasm\" given"
    | None, None -> Error "missing \"program\" or \"qasm\""
    | _ -> Error "\"program\"/\"qasm\" is not a string"
  in
  let* method_ = Result.bind (string_member "method" v) method_of_string in
  let* routing =
    match Json.member "routing" v with
    | None | Some Json.Null -> Ok None
    | Some (Json.String s) -> Result.map Option.some (routing_of_string s)
    | Some _ -> Error "\"routing\" is not a string"
  in
  let* movement =
    match Json.member "movement" v with
    | None -> Ok Config.Swap_back
    | Some (Json.String s) -> movement_of_string s
    | Some _ -> Error "\"movement\" is not a string"
  in
  let* day = int_member "day" ~default:0 v in
  let* calib_seed =
    int_member "calibration_seed" ~default:Nisq_device.Ibmq16.default_seed v
  in
  let* emit_qasm = bool_member "emit_qasm" ~default:false v in
  Ok { program; method_; routing; movement; day; calib_seed; emit_qasm }

let request_of_json v =
  let* id = int_member "id" v in
  let* deadline_ms =
    match Json.member "deadline_ms" v with
    | None -> Ok None
    | Some (Json.Int ms) when ms > 0 -> Ok (Some ms)
    | Some (Json.Int _) -> Error "\"deadline_ms\" must be positive"
    | Some _ -> Error "\"deadline_ms\" is not an integer"
  in
  let* name = string_member "verb" v in
  let params () =
    match Json.member "params" v with
    | Some (Json.Obj _ as p) -> Ok p
    | Some _ -> Error "\"params\" is not an object"
    | None -> Error "missing \"params\""
  in
  let* verb =
    match name with
    | "ping" -> Ok Ping
    | "stats" -> Ok Stats
    | "drain" -> Ok Drain
    | "reload" -> (
        match Json.member "params" v with
        | None -> Ok (Reload { path = None })
        | Some p -> (
            match Json.member "path" p with
            | None | Some Json.Null -> Ok (Reload { path = None })
            | Some (Json.String s) -> Ok (Reload { path = Some s })
            | Some _ -> Error "\"path\" is not a string"))
    | "compile" ->
        let* p = params () in
        Result.map (fun c -> Compile c) (compile_params_of_json p)
    | "run" ->
        let* p = params () in
        let* compile = compile_params_of_json p in
        let* trials = int_member "trials" ~default:4096 p in
        let* sim_seed = int_member "sim_seed" ~default:424242 p in
        if trials <= 0 then Error "\"trials\" must be positive"
        else Ok (Run { compile; trials; sim_seed })
    | other -> Error (Printf.sprintf "unknown verb %S" other)
  in
  Ok { id; deadline_ms; verb }

let reply_of_json v =
  let* id = int_member "id" v in
  let* status = string_member "status" v in
  let* body =
    match status with
    | "ok" -> (
        match Json.member "result" v with
        | Some r -> Ok (Result r)
        | None -> Error "missing \"result\"")
    | "overloaded" ->
        let* retry_after_ms = int_member "retry_after_ms" v in
        let* queue_depth = int_member "queue_depth" ~default:0 v in
        Ok (Overloaded { retry_after_ms; queue_depth })
    | "error" ->
        let* code = string_member "code" v in
        let* message = string_member "message" v in
        let* retryable = bool_member "retryable" ~default:false v in
        Ok (Failed { code; message; retryable })
    | other -> Error (Printf.sprintf "unknown status %S" other)
  in
  Ok { id; body }

(* --------------------------- coalesce key --------------------------- *)

let coalesce_key verb =
  match verb with
  | Ping | Stats | Drain | Reload _ -> None
  | Compile _ | Run _ ->
      (* The canonical JSON of the work-defining params (the request id
         and deadline are delivery concerns, not work) digested to a
         fixed-size key. *)
      let work =
        match params_to_json verb with
        | [ (_, p) ] -> p
        | _ -> assert false
      in
      let tag = verb_name verb in
      Some (Digest.to_hex (Digest.string (tag ^ ":" ^ Json.to_string work)))
