module Json = Nisq_obs.Json
module Metrics = Nisq_obs.Metrics

let m_retries = Metrics.counter "serve.client.retries"

type t = { fd : Unix.file_descr; mutable closed : bool }

let connect ~socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | () -> Ok { fd; closed = false }
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "cannot connect to %s: %s" socket
           (Unix.error_message e))

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let call ?record t req =
  match
    let wire = Frame.write t.fd (Protocol.request_to_json req) in
    Option.iter (fun f -> f wire) record;
    Frame.read ?record t.fd
  with
  | Ok json -> (
      match Protocol.reply_of_json json with
      | Ok reply when reply.Protocol.id = req.Protocol.id -> Ok reply
      | Ok reply ->
          Error
            (Printf.sprintf "reply id %d for request id %d" reply.Protocol.id
               req.Protocol.id)
      | Error msg -> Error ("bad reply: " ^ msg))
  | Error e -> Error (Frame.error_message e)
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

(* Deterministic: Hashtbl.hash is a pure function of its argument, so
   one (seed, attempt) pair always jitters the same way — tests can
   assert the whole schedule. Distinct seeds (one per client) decorrelate
   the herd. *)
let backoff_ms ?(base_ms = 50) ?(cap_ms = 2000) ~seed ~attempt ~retry_after_ms
    () =
  let expo = min cap_ms (base_ms * (1 lsl min attempt 10)) in
  let lo = max expo (Option.value retry_after_ms ~default:0) in
  let jitter_span = max 1 (lo / 4) in
  lo + (Hashtbl.hash (seed, attempt, lo) mod jitter_span)

type failure =
  | Remote of { code : string; message : string }
  | Unavailable of string

let call_with_retry ?(attempts = 5) ?base_ms ?cap_ms ?(seed = 0)
    ?(sleep = Unix.sleepf) ~socket req =
  if attempts < 1 then invalid_arg "call_with_retry: attempts must be >= 1";
  let rec go attempt =
    let retry ~hint err =
      if attempt + 1 >= attempts then
        Error
          (Unavailable
             (Printf.sprintf "gave up after %d attempts; last: %s" attempts err))
      else begin
        Metrics.incr m_retries;
        let ms = backoff_ms ?base_ms ?cap_ms ~seed ~attempt ~retry_after_ms:hint () in
        sleep (float_of_int ms /. 1000.0);
        go (attempt + 1)
      end
    in
    match connect ~socket with
    | Error msg -> retry ~hint:None msg
    | Ok conn -> (
        let result = call conn req in
        close conn;
        match result with
        | Ok { Protocol.body = Protocol.Result v; _ } -> Ok v
        | Ok { body = Protocol.Overloaded { retry_after_ms; queue_depth }; _ }
          ->
            retry ~hint:(Some retry_after_ms)
              (Printf.sprintf "overloaded (queue %d)" queue_depth)
        | Ok { body = Protocol.Failed { code; message; retryable = true }; _ }
          ->
            retry ~hint:None (Printf.sprintf "%s: %s" code message)
        | Ok { body = Protocol.Failed { code; message; retryable = false }; _ }
          ->
            Error (Remote { code; message })
        | Error msg -> retry ~hint:None msg)
  in
  go 0
