(** The `nisqd` daemon: accept loop, worker pool, graceful drain,
    calibration hot-reload.

    {2 Architecture}

    One listener (the calling domain) accepts connections on a Unix
    socket and spawns a reader domain per connection. Readers decode
    frames; administrative verbs ([ping]/[stats]/[drain]) are answered
    inline, work verbs ([compile]/[run]) go through the bounded
    {!Admission} queue — or come straight back as [overloaded] when it
    is full. A fixed pool of worker domains pops entries, runs each
    handler under a per-request {!Nisq_runkit.Deadline.with_scoped}
    deadline, and delivers one reply body to every (possibly coalesced)
    waiter. A handler that raises produces a structured [error] reply
    and a [resilience.serve.handler_crashes] tick; the worker survives.

    {2 Calibration epochs and hot reload}

    With [config.calib = Some _] the daemon serves a file-backed
    calibration through a {!Nisq_device.Calib_store}: every work
    request pins ([Calib_store.acquire]) the epoch current at
    admission, compiles against exactly that epoch, and releases the
    pin after delivery — so a reload promoted while the request is
    queued or in flight cannot change its reply bytes. The epoch id is
    folded into the coalesce key; requests on either side of a
    promotion never share an entry.

    Reload attempts — triggered by the [reload] verb, SIGHUP (when
    [~signals:true]), or [watch_s] mtime polling — run one at a time on
    a dedicated reload domain, through {!Reload.run}'s
    parse → sanitize → drift gate → canary pipeline. Failure at any
    stage leaves the live epoch untouched (crash-only); success swaps
    atomically. The SIGHUP handler only flips an atomic flag — the
    reload domain notices it within one poll tick — because
    Events/Metrics take mutexes a signal handler could deadlock on.

    Without [calib] the daemon behaves as before: synthetic
    per-request [Ibmq16] calibration, no store, [reload] answered with
    a non-retryable [no-calibration] error.

    {2 Drain}

    SIGTERM (when [~signals:true]), SIGINT, or the [drain] verb starts
    a two-stage drain: stage 1 stops accepting (socket closed and
    unlinked, intake closed — late submissions get a retryable
    [draining] error) and lets queued + in-flight work finish for up to
    [drain_grace_s]; stage 2 flips the process-wide cancellation token
    so stubborn handlers cancel at their next cooperative checkpoint,
    then undelivered queued entries are failed with [draining], reader
    connections are severed, and {!run} returns. The reload domain is
    stopped and joined during drain; still-queued reload triggers are
    answered with [draining]. A second signal exits immediately
    ([Unix._exit]) with the signal's conventional code.

    {2 Fault injection}

    [Nisq_faultkit] server clauses are serviced here, keyed by the
    arrival index of {e work} requests (administrative verbs do not
    consume indices): [net:torn@req<N>] / [net:close@req<N>] damage the
    reply write; [server:slow@req<N>] stalls the handler until its
    deadline; [server:crash-handler@req<N>] raises inside it. Reload
    clauses ([calib:reload-*@epoch<N>], [server:slow-reload@epoch<N>])
    are serviced inside {!Reload.run}, keyed by candidate epoch id. All
    are one-shot, so a client retry observes a healthy server. *)

type calib_config = {
  calib_path : string;  (** the file served, and the default reload source *)
  calib_prev : string option;
      (** previous-day calibration seeding the sanitizer's backfill
          chain at startup (reloads use the live epoch automatically) *)
  watch_s : float option;
      (** poll [calib_path]'s mtime every [watch_s] seconds and reload
          on change; [None] disables watching *)
  thresholds : Nisq_device.Calib_diff.thresholds;
      (** drift-gate and canary rejection thresholds *)
  reload_report : string option;
      (** write each attempt's [nisq-reload/1] report here (overwritten
          per attempt) *)
}

type config = {
  socket : string;  (** Unix socket path; created, and unlinked on exit *)
  workers : int;  (** worker domains (>= 0; 0 admits but never serves) *)
  queue_capacity : int;  (** admission slots before shedding *)
  default_deadline_ms : int;  (** per-request deadline when unspecified *)
  drain_grace_s : float;  (** stage-1 drain budget *)
  calib : calib_config option;
      (** [None]: synthetic per-request calibration (the historical
          behaviour); [Some]: file-backed epochs with hot reload *)
}

val default_config : socket:string -> config
(** 2 workers, 64 slots, 30 s deadline, 5 s drain grace, no
    file-backed calibration. *)

val calib_config :
  ?prev:string ->
  ?watch_s:float ->
  ?thresholds:Nisq_device.Calib_diff.thresholds ->
  ?report:string ->
  string ->
  calib_config
(** [calib_config path] with defaults: no previous file, no watching,
    {!Nisq_device.Calib_diff.default_thresholds}, no report file. *)

type outcome = Drained of Nisq_runkit.Deadline.reason option
(** Why {!run} returned: [Some Sigterm]/[Some Sigint] for a signal,
    [None] for the [drain] verb. The daemon binary maps these to exit
    codes 143/130/0. *)

exception Startup_error of string
(** Raised before serving begins: socket already served by a live
    daemon, bind failure, unwritable path, or an initial calibration
    file that fails to parse or sanitize. *)

val run : ?on_ready:(unit -> unit) -> ?signals:bool -> config -> outcome
(** Serve until drained. [on_ready] fires once the socket is
    listening (tests use it to connect without polling). [signals]
    (default [false]) installs the two-stage SIGTERM/SIGINT drain
    handlers and — when [calib] is set — the SIGHUP reload trigger;
    the daemon binary turns it on, in-process tests leave it off.
    Blocks the calling domain. *)

val handle_work :
  ?calib:Nisq_device.Calibration.t -> Protocol.verb -> Protocol.reply_body
(** The [compile]/[run] handler the workers run, exposed for the
    determinism tests: a pure function of the verb and the calibration
    (modulo the shared calibration caches, which never change a cached
    value), so calling it twice — or once, delivering the body to two
    coalesced waiters — yields byte-identical [Result] payloads.
    [calib] overrides the synthetic per-request calibration — this is
    how a pinned epoch reaches the compiler. Administrative verbs
    return a non-retryable [error]; the daemon answers those inline on
    the connection reader, never here. *)
