(** The `nisqd` daemon: accept loop, worker pool, graceful drain.

    {2 Architecture}

    One listener (the calling domain) accepts connections on a Unix
    socket and spawns a reader domain per connection. Readers decode
    frames; administrative verbs ([ping]/[stats]/[drain]) are answered
    inline, work verbs ([compile]/[run]) go through the bounded
    {!Admission} queue — or come straight back as [overloaded] when it
    is full. A fixed pool of worker domains pops entries, runs each
    handler under a per-request {!Nisq_runkit.Deadline.with_scoped}
    deadline, and delivers one reply body to every (possibly coalesced)
    waiter. A handler that raises produces a structured [error] reply
    and a [resilience.serve.handler_crashes] tick; the worker survives.

    {2 Drain}

    SIGTERM (when [~signals:true]), SIGINT, or the [drain] verb starts
    a two-stage drain: stage 1 stops accepting (socket closed and
    unlinked, intake closed — late submissions get a retryable
    [draining] error) and lets queued + in-flight work finish for up to
    [drain_grace_s]; stage 2 flips the process-wide cancellation token
    so stubborn handlers cancel at their next cooperative checkpoint,
    then undelivered queued entries are failed with [draining], reader
    connections are severed, and {!run} returns. A second signal exits
    immediately ([Unix._exit]) with the signal's conventional code.

    {2 Fault injection}

    [Nisq_faultkit] server clauses are serviced here, keyed by the
    arrival index of {e work} requests (administrative verbs do not
    consume indices): [net:torn@req<N>] / [net:close@req<N>] damage the
    reply write; [server:slow@req<N>] stalls the handler until its
    deadline; [server:crash-handler@req<N>] raises inside it. All are
    one-shot, so a client retry observes a healthy server. *)

type config = {
  socket : string;  (** Unix socket path; created, and unlinked on exit *)
  workers : int;  (** worker domains (>= 0; 0 admits but never serves) *)
  queue_capacity : int;  (** admission slots before shedding *)
  default_deadline_ms : int;  (** per-request deadline when unspecified *)
  drain_grace_s : float;  (** stage-1 drain budget *)
}

val default_config : socket:string -> config
(** 2 workers, 64 slots, 30 s deadline, 5 s drain grace. *)

type outcome = Drained of Nisq_runkit.Deadline.reason option
(** Why {!run} returned: [Some Sigterm]/[Some Sigint] for a signal,
    [None] for the [drain] verb. The daemon binary maps these to exit
    codes 143/130/0. *)

exception Startup_error of string
(** Raised before serving begins: socket already served by a live
    daemon, bind failure, unwritable path. *)

val run : ?on_ready:(unit -> unit) -> ?signals:bool -> config -> outcome
(** Serve until drained. [on_ready] fires once the socket is
    listening (tests use it to connect without polling). [signals]
    (default [false]) installs the two-stage SIGTERM/SIGINT drain
    handlers — the daemon binary turns it on; in-process tests leave it
    off. Blocks the calling domain. *)

val handle_work : Protocol.verb -> Protocol.reply_body
(** The [compile]/[run] handler the workers run, exposed for the
    determinism tests: a pure function of the verb (modulo the shared
    calibration caches, which never change a cached value), so calling
    it twice — or once, delivering the body to two coalesced waiters —
    yields byte-identical [Result] payloads. Administrative verbs
    return a non-retryable [error]; the daemon answers those inline on
    the connection reader, never here. *)
