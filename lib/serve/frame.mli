(** Length-prefixed JSON frames — the daemon's wire format.

    A frame is a 4-byte big-endian payload length followed by exactly
    that many bytes of compact JSON. The prefix makes message
    boundaries explicit, so a reader can always tell a {e torn} frame
    (the peer died mid-write) from a clean end of stream, and a single
    oversized length field cannot make the daemon allocate unbounded
    memory ({!max_payload_bytes}).

    All reads and writes loop over [Unix.read]/[Unix.write_substring]
    and retry [EINTR], so signal delivery (the daemon's drain path)
    never tears a frame from our side. *)

val max_payload_bytes : int
(** Upper bound on a payload length this codec will read or write
    (16 MiB). A length prefix above it is a protocol violation, not an
    allocation request. *)

val encode : Nisq_obs.Json.t -> string
(** The full wire bytes of one frame: prefix plus payload. *)

val write : Unix.file_descr -> Nisq_obs.Json.t -> string
(** Encode and write one frame; returns the wire bytes written (for
    [--record]). Raises [Unix.Unix_error] if the peer is gone. *)

val write_torn : Unix.file_descr -> Nisq_obs.Json.t -> unit
(** Write only the first half of the frame's bytes — the [net:torn]
    fault: the peer sees a well-formed prefix and a payload that ends
    mid-value. *)

type error =
  | Eof  (** clean end of stream, on a frame boundary *)
  | Torn of string  (** stream ended inside a prefix or payload *)
  | Too_large of int  (** prefix exceeded {!max_payload_bytes} *)
  | Malformed of string  (** payload is not valid JSON *)

val error_message : error -> string

val read : ?record:(string -> unit) -> Unix.file_descr -> (Nisq_obs.Json.t, error) result
(** Read one frame. [record] (when given) receives the raw wire bytes
    of the frame as read, prefix included, before parsing. *)

val scan_string : string -> (Nisq_obs.Json.t list, string) result
(** Decode a byte string holding zero or more concatenated frames —
    the shape a [--record] capture file has. [Error] on a torn trailing
    frame, an oversized prefix, or an unparseable payload. *)
