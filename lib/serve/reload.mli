(** The calibration hot-reload pipeline: parse, sanitize, drift gate,
    canary, promote-or-rollback.

    {!run} takes a candidate calibration file through four stages
    against a {!Nisq_device.Calib_store}:

    + {b parse} — read the file and [Calib_io.raw_of_string] it;
    + {b sanitize} — [Calib_sanitize.sanitize ~previous:<live epoch>],
      so the previous-day backfill chain applies to reloads
      automatically;
    + {b drift gate} — [Calib_diff.diff] vs the live epoch, rejected by
      [Calib_diff.gate] on quarantine growth or mean-error drift beyond
      the thresholds;
    + {b canary} — compile a small probe suite under the candidate and
      the live epoch and compare ESP / solver-ladder-rung evidence; a
      candidate that collapses ESP below
      [thresholds.min_canary_esp_ratio] of live, or falls to the greedy
      rung where live did not, is rejected.

    Passing all four promotes the candidate via [Calib_store.swap];
    failing {e any} stage leaves the live epoch untouched — crash-only
    semantics: no partial state, nothing to repair, the next attempt
    starts from the same live epoch. Every attempt emits
    [resilience.reload.{attempts,promotions,rollbacks}] metric ticks, a
    [reload]-domain {!Nisq_obs.Events} entry for the decision, and a
    [nisq-reload/1] JSON report (checkable with [jsonlint --reload]).

    Faultkit clauses [calib:reload-torn@epoch<N>],
    [calib:reload-drift@epoch<N>], [calib:reload-poison@epoch<N>] and
    [server:slow-reload@epoch<N>] — keyed by the candidate epoch id the
    attempt allocates — deterministically damage the candidate (or
    stall the pipeline) to exercise each rollback path. {!run} never
    raises. *)

type outcome =
  | Promoted of Nisq_device.Calib_store.epoch
  | Rolled_back of { stage : string; reasons : string list }
      (** [stage] is ["parse"], ["sanitize"], ["drift"], ["canary"] or
          ["internal"] (unexpected exception, still contained) *)

type result = { outcome : outcome; report : Nisq_obs.Json.t }

val probe_names : string list
(** The canary suite — small, fast benchmarks ([BV4], [HS2], [Peres]). *)

val run :
  store:Nisq_device.Calib_store.t ->
  path:string ->
  ?thresholds:Nisq_device.Calib_diff.thresholds ->
  unit ->
  result
(** One reload attempt of the candidate file at [path]. Blocking (the
    canary compiles); callers run it off the serving path — the daemon
    uses a dedicated reload domain. *)
