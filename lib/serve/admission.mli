(** Bounded admission queue with request coalescing and load shedding.

    The daemon's backpressure point. Work requests ([compile]/[run])
    enter here; worker domains pop them. Three things can happen to a
    submission:

    - {b admitted}: a slot was free — the request queues FIFO;
    - {b coalesced}: an identical request (equal {!Protocol.coalesce_key})
      is already {e queued} (not yet started); the new waiter piggybacks
      on that entry and both receive the same — byte-identical — reply
      body from one execution. In-flight entries never coalesce: their
      reply may already be partially delivered;
    - {b shed}: the queue is full — the caller must send the client a
      structured [overloaded] reply carrying [retry_after_ms], an
      estimate of when a slot will open (queue depth × a service-time
      EWMA over the worker count).

    All operations are mutex-protected; {!pop} blocks on a condition
    until work arrives, intake closes, or {!stop}. *)

type entry = {
  key : string option;
  verb : Protocol.verb;
  deadline_ms : int option;
  req_index : int;  (** arrival index of the {e first} waiter *)
  enqueued_ns : int64;
  epoch : Nisq_device.Calib_store.epoch option;
      (** the calibration epoch the request was admitted under; the
          worker compiles against it and releases the pin after
          delivery. [None] when the daemon serves synthetic
          calibration. *)
  mutable waiters : (Protocol.reply_body -> unit) list;
      (** delivery callbacks, submission order *)
}

type t

val create : ?capacity:int -> ?workers:int -> unit -> t
(** [capacity] (default 64) bounds queued entries (waiters on a
    coalesced entry don't consume extra slots — they occupy none).
    [workers] (default 1) scales the [retry_after_ms] estimate. *)

type admit =
  | Admitted
  | Coalesced
  | Shed of { retry_after_ms : int; queue_depth : int }
  | Draining  (** intake closed; the daemon is shutting down *)

val submit :
  ?coalescable:bool ->
  ?epoch:Nisq_device.Calib_store.epoch ->
  t ->
  verb:Protocol.verb ->
  deadline_ms:int option ->
  req_index:int ->
  deliver:(Protocol.reply_body -> unit) ->
  admit
(** [coalescable] (default [true]): pass [false] to force a private
    entry even when an identical request is queued — the server does
    this for requests that drew a handler-level injected fault, so the
    fault lands on exactly the arrival index its clause names (and
    cannot poison coalesced bystanders).

    [epoch]: the already-acquired calibration epoch this request is
    pinned to. The epoch id is folded into the coalesce key, so
    requests admitted on either side of a hot reload never share an
    entry. The queue takes ownership of the pin only on [Admitted]; on
    every other verdict the caller must release it. *)

val pop : t -> entry option
(** Blocking. [None] once {!stop} was called and the queue is empty —
    the worker's signal to exit. A popped entry stops coalescing. *)

val depth : t -> int
(** Queued (not yet popped) entries. *)

val counts : t -> int * int * int
(** [(admitted, coalesced, shed)] totals for this queue since creation —
    the stats verb's source (the [serve.*] metric counters are
    process-global and bleed across server instances in tests). *)

val note_service_ms : t -> float -> unit
(** Feed one request's service time into the shed estimate's EWMA. *)

val close_intake : t -> unit
(** Drain stage 1: every later {!submit} returns {!Draining}; queued
    entries still drain through {!pop}. *)

val stop : t -> unit
(** Drain stage 2: wake every blocked {!pop}; once the queue empties,
    pops return [None]. Implies {!close_intake}. *)

val is_empty : t -> bool
