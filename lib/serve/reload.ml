module Json = Nisq_obs.Json
module Metrics = Nisq_obs.Metrics
module Events = Nisq_obs.Events
module Faultkit = Nisq_faultkit.Faultkit
module Calib_io = Nisq_device.Calib_io
module Calib_sanitize = Nisq_device.Calib_sanitize
module Calib_diff = Nisq_device.Calib_diff
module Calib_store = Nisq_device.Calib_store
module Config = Nisq_compiler.Config
module Compile = Nisq_compiler.Compile
module Benchmarks = Nisq_bench.Benchmarks

type outcome =
  | Promoted of Calib_store.epoch
  | Rolled_back of { stage : string; reasons : string list }

type result = { outcome : outcome; report : Json.t }

let m_attempts = Metrics.counter "resilience.reload.attempts"
let m_promotions = Metrics.counter "resilience.reload.promotions"
let m_rollbacks = Metrics.counter "resilience.reload.rollbacks"
let g_epoch = Metrics.gauge "resilience.reload.epoch"

let probe_names = [ "BV4"; "HS2"; "Peres" ]

let probe_config = Config.make (Config.R_smt_star 0.5)

(* ------------------------- injected damage ------------------------- *)

(* Each fault fabricates the real-world failure it names, applied to the
   candidate only — the pipeline then detects it through the ordinary
   stages, which is the point: no stage special-cases injection. *)

let tear text = String.sub text 0 (String.length text / 2)

let poison_targets = [ 0; 1; 2; 3 ]

let poison raw =
  Calib_sanitize.apply_faults raw
    (List.map
       (fun q ->
         { Faultkit.target = Faultkit.Qubit q; kind = Faultkit.Offline })
       poison_targets)

let drift (raw : Calib_sanitize.raw) =
  let scale x = Float.min 0.9 (3.0 *. x) in
  {
    raw with
    Calib_sanitize.readout_error = Array.map scale raw.Calib_sanitize.readout_error;
    cnot_error =
      Array.map (Array.map (fun e -> if Float.is_nan e then e else scale e))
        raw.Calib_sanitize.cnot_error;
  }

(* ------------------------------ canary ----------------------------- *)

let rung_rank = function
  | Some Compile.Rung_full -> 0
  | Some Compile.Rung_capped -> 1
  | Some Compile.Rung_greedy -> 2
  | None -> 0

let rung_label = function
  | Some r -> Compile.rung_name r
  | None -> "none"

type probe_result = {
  probe : string;
  live_esp : float;
  cand_esp : float;
  live_rung : Compile.rung option;
  cand_rung : Compile.rung option;
  probe_ok : bool;
}

let run_canary ~live_calib ~cand_calib ~(thresholds : Calib_diff.thresholds) =
  List.map
    (fun name ->
      let circuit = (Benchmarks.by_name name).Benchmarks.circuit in
      let live_r = Compile.run ~config:probe_config ~calib:live_calib circuit in
      let cand_r = Compile.run ~config:probe_config ~calib:cand_calib circuit in
      let ratio =
        if live_r.Compile.esp <= 0.0 then 1.0
        else cand_r.Compile.esp /. live_r.Compile.esp
      in
      let rung_degraded =
        rung_rank cand_r.Compile.rung = 2 && rung_rank live_r.Compile.rung < 2
      in
      {
        probe = name;
        live_esp = live_r.Compile.esp;
        cand_esp = cand_r.Compile.esp;
        live_rung = live_r.Compile.rung;
        cand_rung = cand_r.Compile.rung;
        probe_ok =
          ratio >= thresholds.Calib_diff.min_canary_esp_ratio
          && not rung_degraded;
      })
    probe_names

(* ------------------------------ report ----------------------------- *)

let report_json ~path ~live ~candidate_id ~injected ~stages ~sanitize ~drift_d
    ~canary ~outcome =
  let decision, failed_stage, reasons =
    match outcome with
    | Promoted _ -> ("promoted", Json.Null, [])
    | Rolled_back { stage; reasons } ->
        ("rolled-back", Json.String stage, reasons)
  in
  Json.Obj
    [
      ("schema", Json.String "nisq-reload/1");
      ("path", Json.String path);
      ("live_epoch", Json.Int live.Calib_store.id);
      ( "live_day",
        Json.Int live.Calib_store.calib.Nisq_device.Calibration.day );
      ("candidate_epoch", Json.Int candidate_id);
      ("decision", Json.String decision);
      ("failed_stage", failed_stage);
      ("reasons", Json.List (List.map (fun r -> Json.String r) reasons));
      ( "injected",
        match injected with
        | None -> Json.Null
        | Some f -> Json.String f );
      ( "stages",
        Json.List
          (List.rev_map
             (fun (stage, ok, detail) ->
               Json.Obj
                 [
                   ("stage", Json.String stage);
                   ("ok", Json.Bool ok);
                   ("detail", Json.String detail);
                 ])
             stages) );
      ( "sanitize",
        match sanitize with
        | None -> Json.Null
        | Some (r : Calib_sanitize.report) ->
            Json.Obj
              [
                ("repairs", Json.Int (Calib_sanitize.repairs r));
                ( "quarantined_qubits",
                  Json.Int (List.length r.Calib_sanitize.quarantined_qubits) );
                ( "quarantined_links",
                  Json.Int (List.length r.Calib_sanitize.quarantined_links) );
              ] );
      ( "drift",
        match drift_d with None -> Json.Null | Some d -> Calib_diff.to_json d );
      ( "canary",
        Json.List
          (List.map
             (fun p ->
               Json.Obj
                 [
                   ("probe", Json.String p.probe);
                   ("live_esp", Json.Float p.live_esp);
                   ("candidate_esp", Json.Float p.cand_esp);
                   ("live_rung", Json.String (rung_label p.live_rung));
                   ("candidate_rung", Json.String (rung_label p.cand_rung));
                   ("ok", Json.Bool p.probe_ok);
                 ])
             canary) );
    ]

let fault_name = function
  | Faultkit.Reload_torn -> "calib:reload-torn"
  | Faultkit.Reload_drift -> "calib:reload-drift"
  | Faultkit.Reload_poison -> "calib:reload-poison"
  | Faultkit.Reload_slow -> "server:slow-reload"

(* -------------------------------- run ------------------------------ *)

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | text -> Ok text
  | exception Sys_error msg -> Error msg
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

let run ~store ~path ?(thresholds = Calib_diff.default_thresholds) () =
  Metrics.incr m_attempts;
  let live = Calib_store.current store in
  let candidate_id = Calib_store.allocate_candidate store in
  let injected = Faultkit.reload_fault candidate_id in
  (* The slow clause stalls the whole pipeline — serving must continue
     unaffected, which the smoke test observes through byte-identical
     replies to requests admitted during the stall. *)
  (match injected with
  | Some Faultkit.Reload_slow -> Unix.sleepf 0.75
  | _ -> ());
  let stages = ref [] in
  let stage name ok detail = stages := (name, ok, detail) :: !stages in
  let sanitize_report = ref None in
  let drift_report = ref None in
  let canary_results = ref [] in
  let ( let* ) r k = match r with Ok v -> k v | Error e -> Error e in
  let pipeline () =
    (* parse *)
    let* raw =
      let attempt =
        let* text = read_file path in
        let text =
          match injected with
          | Some Faultkit.Reload_torn -> tear text
          | _ -> text
        in
        match Calib_io.raw_of_string text with
        | Ok raw -> Ok raw
        | Error { Calib_io.line; message } ->
            Error
              (if line > 0 then Printf.sprintf "line %d: %s" line message
               else message)
      in
      match attempt with
      | Ok raw ->
          stage "parse" true
            (Printf.sprintf "%d qubits, day %d"
               (Nisq_device.Topology.num_qubits raw.Calib_sanitize.topology)
               raw.Calib_sanitize.day);
          Ok raw
      | Error msg ->
          stage "parse" false msg;
          Error ("parse", [ msg ])
    in
    let raw =
      match injected with
      | Some Faultkit.Reload_poison -> poison raw
      | Some Faultkit.Reload_drift -> drift raw
      | _ -> raw
    in
    (* sanitize, with the live epoch as the previous-day backfill *)
    let* calib =
      match Calib_sanitize.sanitize ~previous:live.Calib_store.calib raw with
      | calib, report ->
          sanitize_report := Some report;
          stage "sanitize" true
            (Printf.sprintf "%d repairs, %d qubits + %d links quarantined"
               (Calib_sanitize.repairs report)
               (List.length report.Calib_sanitize.quarantined_qubits)
               (List.length report.Calib_sanitize.quarantined_links));
          Ok calib
      | exception Invalid_argument msg ->
          stage "sanitize" false msg;
          Error ("sanitize", [ msg ])
    in
    (* drift gate *)
    let* () =
      match Calib_diff.diff ~old_:live.Calib_store.calib ~candidate:calib with
      | d -> (
          drift_report := Some d;
          match Calib_diff.gate ~thresholds d with
          | [] ->
              stage "drift" true "within thresholds";
              Ok ()
          | reasons ->
              stage "drift" false (String.concat "; " reasons);
              Error ("drift", reasons))
      | exception Invalid_argument msg ->
          stage "drift" false msg;
          Error ("drift", [ msg ])
    in
    (* canary *)
    let* () =
      match
        run_canary ~live_calib:live.Calib_store.calib ~cand_calib:calib
          ~thresholds
      with
      | probes -> (
          canary_results := probes;
          match List.filter (fun p -> not p.probe_ok) probes with
          | [] ->
              stage "canary" true
                (Printf.sprintf "%d probes ok" (List.length probes));
              Ok ()
          | bad ->
              let reasons =
                List.map
                  (fun p ->
                    Printf.sprintf
                      "probe %s: esp %.4g -> %.4g, rung %s -> %s" p.probe
                      p.live_esp p.cand_esp (rung_label p.live_rung)
                      (rung_label p.cand_rung))
                  bad
              in
              stage "canary" false (String.concat "; " reasons);
              Error ("canary", reasons))
      | exception exn ->
          let msg = Printexc.to_string exn in
          stage "canary" false msg;
          Error ("canary", [ msg ])
    in
    Ok calib
  in
  let outcome =
    match pipeline () with
    | Ok calib ->
        let epoch =
          Calib_store.swap store ~id:candidate_id ~calib ~source:path
        in
        stage "promote" true (Printf.sprintf "epoch %d live" epoch.id);
        Promoted epoch
    | Error (failed, reasons) -> Rolled_back { stage = failed; reasons }
    | exception exn ->
        (* Crash-only: whatever blew up, the live epoch was never
           touched — swap is the last step and is atomic. *)
        let msg = Printexc.to_string exn in
        stage "internal" false msg;
        Rolled_back { stage = "internal"; reasons = [ msg ] }
  in
  (match outcome with
  | Promoted epoch ->
      Metrics.incr m_promotions;
      Metrics.set g_epoch (float_of_int epoch.Calib_store.id);
      Events.emit ~domain:"reload" Events.Info
        (Printf.sprintf
           "calibration epoch %d promoted (day %d, %s) replacing epoch %d"
           epoch.Calib_store.id
           epoch.Calib_store.calib.Nisq_device.Calibration.day path
           live.Calib_store.id)
        ~fields:
          [
            ("epoch", string_of_int epoch.Calib_store.id);
            ("path", path);
          ]
  | Rolled_back { stage = failed; reasons } ->
      Metrics.incr m_rollbacks;
      Events.emit ~domain:"reload" Events.Warn
        (Printf.sprintf
           "calibration reload rolled back at %s stage (epoch %d stays \
            live): %s"
           failed live.Calib_store.id
           (String.concat "; " reasons))
        ~fields:
          [
            ("stage", failed);
            ("epoch", string_of_int live.Calib_store.id);
            ("path", path);
          ]);
  {
    outcome;
    report =
      report_json ~path ~live ~candidate_id
        ~injected:(Option.map fault_name injected)
        ~stages:!stages ~sanitize:!sanitize_report ~drift_d:!drift_report
        ~canary:!canary_results ~outcome;
  }
