(** The daemon's request/reply vocabulary and its JSON codecs.

    Requests and replies are single JSON objects carried in
    length-prefixed frames ({!Frame}). Every request carries a
    client-chosen [id] echoed verbatim in the reply, so a client may
    pipeline. Reply payloads for [compile]/[run] contain only
    deterministic fields (no wall-clock) — two requests for the same
    work get byte-identical [result] objects whether or not the
    admission queue coalesced them. *)

val protocol_version : int
(** Bumped on any wire-incompatible change; exchanged in [ping]. *)

val build_id : string
(** Build identifier printed by [nisqc --version] / [nisqd --version]
    and returned by the [ping] verb, e.g. ["nisq 1.1.0 proto/1"]. *)

type program =
  | Named of string  (** a built-in benchmark, by name *)
  | Qasm of string  (** inline OpenQASM 2.0 source *)

type compile_params = {
  program : program;
  method_ : Nisq_compiler.Config.method_;
  routing : Nisq_compiler.Config.routing option;
      (** [None]: the paper's default for the method *)
  movement : Nisq_compiler.Config.movement;
  day : int;
  calib_seed : int;
  emit_qasm : bool;
      (** include the compiled OpenQASM text in the reply *)
}

type run_params = { compile : compile_params; trials : int; sim_seed : int }

type verb =
  | Ping
  | Stats
  | Drain
  | Reload of { path : string option }
      (** hot-reload the daemon's calibration; [path] overrides the
          configured candidate file for this attempt. Answered with the
          [nisq-reload/1] decision report once the pipeline finishes. *)
  | Compile of compile_params
  | Run of run_params

val verb_name : verb -> string
(** ["ping" | "stats" | "drain" | "reload" | "compile" | "run"]. *)

type request = {
  id : int;
  deadline_ms : int option;  (** [None]: the server's default *)
  verb : verb;
}

type reply_body =
  | Result of Nisq_obs.Json.t  (** status ["ok"] *)
  | Overloaded of { retry_after_ms : int; queue_depth : int }
  | Failed of { code : string; message : string; retryable : bool }

type reply = { id : int; body : reply_body }

val request_to_json : request -> Nisq_obs.Json.t
val request_of_json : Nisq_obs.Json.t -> (request, string) result
val reply_to_json : reply -> Nisq_obs.Json.t
val reply_of_json : Nisq_obs.Json.t -> (reply, string) result

val method_to_string : Nisq_compiler.Config.method_ -> string
val method_of_string : string -> (Nisq_compiler.Config.method_, string) result
(** The CLI's method grammar: [qiskit | tsmt | tsmt* | rsmt |
    rsmt:<omega> | greedyv | greedye]. *)

val coalesce_key : verb -> string option
(** Stable digest of everything that determines a [compile]/[run]
    reply payload: program text or name, method, routing, movement,
    calibration day and seed, trials and simulation seed. Two requests
    with equal keys would produce byte-identical [Result] payloads, so
    the admission queue may serve both from one execution. [None] for
    the administrative verbs, which are never coalesced. *)
