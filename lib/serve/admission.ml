module Metrics = Nisq_obs.Metrics
module Events = Nisq_obs.Events

let m_admitted = Metrics.counter "serve.admitted"
let m_coalesced = Metrics.counter "serve.coalesced"
let m_shed = Metrics.counter "serve.shed"
let g_depth = Metrics.gauge "serve.queue_depth"

type entry = {
  key : string option;
  verb : Protocol.verb;
  deadline_ms : int option;
  req_index : int;
  enqueued_ns : int64;
  epoch : Nisq_device.Calib_store.epoch option;
  mutable waiters : (Protocol.reply_body -> unit) list;
}

type t = {
  capacity : int;
  workers : int;
  mutex : Mutex.t;
  nonempty : Condition.t;
  queue : entry Queue.t;
  (* queued (not yet popped) coalescable entries, by key *)
  by_key : (string, entry) Hashtbl.t;
  mutable intake_open : bool;
  mutable stopped : bool;
  (* EWMA of request service time, for the shed reply's retry hint.
     Starts at a compile-scale guess; refined by [note_service_ms]. *)
  mutable service_ms : float;
  (* Per-queue verdict totals for the stats verb (the serve.* metric
     counters are process-global and would bleed across servers). *)
  mutable n_admitted : int;
  mutable n_coalesced : int;
  mutable n_shed : int;
}

let create ?(capacity = 64) ?(workers = 1) () =
  if capacity < 1 then invalid_arg "Admission.create: capacity must be >= 1";
  {
    capacity;
    workers = max 1 workers;
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    queue = Queue.create ();
    by_key = Hashtbl.create 64;
    intake_open = true;
    stopped = false;
    service_ms = 20.0;
    n_admitted = 0;
    n_coalesced = 0;
    n_shed = 0;
  }

type admit =
  | Admitted
  | Coalesced
  | Shed of { retry_after_ms : int; queue_depth : int }
  | Draining

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Expected wait for a fresh slot: the whole queue plus the in-flight
   request ahead of it, spread over the workers. Clamped to something a
   client can reasonably sleep. *)
let retry_after t depth =
  let ms = t.service_ms *. float_of_int (depth + 1) /. float_of_int t.workers in
  min 5000 (max 25 (int_of_float ms))

let submit ?(coalescable = true) ?epoch t ~verb ~deadline_ms ~req_index
    ~deliver =
  let verdict =
    locked t (fun () ->
        if t.stopped || not t.intake_open then Draining
        else
          let key =
            if coalescable then
              (* The calibration epoch is part of what determines the
                 reply bytes: a request admitted after a promotion must
                 never piggyback on an entry pinned to the old epoch. *)
              Option.map
                (fun k ->
                  match epoch with
                  | None -> k
                  | Some e ->
                      k ^ Printf.sprintf "@epoch%d" e.Nisq_device.Calib_store.id)
                (Protocol.coalesce_key verb)
            else None
          in
          match Option.bind key (Hashtbl.find_opt t.by_key) with
          | Some entry ->
              entry.waiters <- deliver :: entry.waiters;
              t.n_coalesced <- t.n_coalesced + 1;
              Coalesced
          | None ->
              let depth = Queue.length t.queue in
              if depth >= t.capacity then begin
                t.n_shed <- t.n_shed + 1;
                Shed { retry_after_ms = retry_after t depth; queue_depth = depth }
              end
              else begin
                let entry =
                  {
                    key;
                    verb;
                    deadline_ms;
                    req_index;
                    enqueued_ns = Nisq_obs.Clock.now_ns ();
                    epoch;
                    waiters = [ deliver ];
                  }
                in
                Queue.push entry t.queue;
                Option.iter (fun k -> Hashtbl.replace t.by_key k entry) key;
                Metrics.set g_depth (float_of_int (Queue.length t.queue));
                Condition.signal t.nonempty;
                t.n_admitted <- t.n_admitted + 1;
                Admitted
              end)
  in
  (match verdict with
  | Admitted -> Metrics.incr m_admitted
  | Coalesced ->
      Metrics.incr m_coalesced;
      Events.emit ~domain:"serve" Events.Info
        (Printf.sprintf "coalesced duplicate %s request"
           (Protocol.verb_name verb))
        ~fields:[ ("verb", Protocol.verb_name verb) ]
  | Shed { retry_after_ms; queue_depth } ->
      Metrics.incr m_shed;
      Events.emit ~domain:"serve" Events.Warn
        (Printf.sprintf
           "nisqd: admission queue full (%d queued) — shedding %s request \
            (retry_after_ms=%d)"
           queue_depth (Protocol.verb_name verb) retry_after_ms)
        ~fields:
          [
            ("verb", Protocol.verb_name verb);
            ("queue_depth", string_of_int queue_depth);
            ("retry_after_ms", string_of_int retry_after_ms);
          ]
  | Draining -> ());
  verdict

let pop t =
  locked t (fun () ->
      let rec wait () =
        match Queue.take_opt t.queue with
        | Some entry ->
            (* From here on the entry is in flight: a duplicate arriving
               now starts its own entry rather than racing delivery. *)
            Option.iter (fun k -> Hashtbl.remove t.by_key k) entry.key;
            Metrics.set g_depth (float_of_int (Queue.length t.queue));
            (* Waiters accumulated in reverse submission order. *)
            entry.waiters <- List.rev entry.waiters;
            Some entry
        | None ->
            if t.stopped then None
            else begin
              Condition.wait t.nonempty t.mutex;
              wait ()
            end
      in
      wait ())

let depth t = locked t (fun () -> Queue.length t.queue)

let counts t =
  locked t (fun () -> (t.n_admitted, t.n_coalesced, t.n_shed))

let note_service_ms t ms =
  locked t (fun () -> t.service_ms <- (0.8 *. t.service_ms) +. (0.2 *. ms))

let close_intake t = locked t (fun () -> t.intake_open <- false)

let stop t =
  locked t (fun () ->
      t.intake_open <- false;
      t.stopped <- true;
      Condition.broadcast t.nonempty)

let is_empty t = locked t (fun () -> Queue.is_empty t.queue)
