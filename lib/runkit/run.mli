(** A checkpointed run: a directory under [_runs/<run-id>/] holding the
    append-only {!Journal} ([journal.jsonl]), rendered tables
    ([tables/<figure>.txt]) and a final [status.json].

    The journal's first record is a {e header} carrying the run's
    identity (seed, trial count, config and calibration digests). Each
    completed unit of work appends a {e cell} record keyed by a digest
    of everything that determines its value; each completed figure
    appends a {e figure} record after its rendered table is written.
    Because the simulator is bit-deterministic at a fixed seed
    (fixed-size chunks, per-chunk RNG streams), replaying cached cells
    on resume reproduces the uninterrupted run's tables exactly.

    On {!resume} the header identity must match the current invocation;
    a mismatch means the cached numbers answer a different question, so
    it is refused unless [force] is set. A torn trailing journal line
    (the record in flight when the process died) is dropped and the
    file truncated to the intact prefix before appends continue. *)

type t

val start :
  ?root:string -> run_id:string -> identity:Nisq_obs.Json.t -> unit -> t
(** Create [root]/[run_id] (default root [_runs]), truncating any
    previous journal, and write the header record. *)

val resume :
  ?root:string ->
  run_id:string ->
  identity:Nisq_obs.Json.t ->
  force:bool ->
  unit ->
  (t, string) result
(** Reopen an existing run for appending: load the journal, verify the
    header identity (unless [force]), drop a torn tail, and prime the
    cell/figure caches. *)

val id : t -> string
val dir : t -> string

val float_cell : t -> key:string -> (unit -> float) -> float
(** The memoising checkpoint: return the journalled value for [key] if
    one exists, else run [compute], append the result, and return it.
    Thread-safe: concurrent cells (the bench harness's figure-cell
    fan-out) serialize on an internal lock for the table lookup and the
    journal append, while [compute] itself runs outside it — two racing
    computes of one key cost a duplicate journal record with the same
    (digest-determined) value, which replay treats as idempotent. A
    cancellation raised inside [compute] leaves the journal without the
    record, exactly as if the cell had never started. *)

val figure_cached : t -> string -> string option
(** The rendered table for a completed figure, if the journal marks it
    done and the table file is readable. *)

val figure_done : t -> string -> string -> unit
(** Atomically write [tables/<name>.txt], then journal the figure as
    complete. *)

val cache_stats : t -> int * int
(** [(cells replayed from the journal, cells computed fresh)]. *)

val write_status : t -> status:string -> unit
(** Write [status.json] ([completed], [degraded:deadline],
    [interrupted:sigint], …) without closing the journal. *)

val finish : t -> status:string -> unit
(** {!write_status} and close the journal. Idempotent on the journal. *)

(** {2 Ambient run}

    The benchmark harness installs the active run so that deeply nested
    evaluation code ([Nisq_bench.Experiments]) can consult the cell
    cache without threading a handle through every signature. *)

val install : t -> unit
val uninstall : unit -> unit
val current : unit -> t option
