(** Deadline-aware cooperative cancellation.

    One process-wide token, flipped at most once per run, observed at
    explicit {e cancellation points}: pool chunk boundaries
    ({!chunk_checkpoint} via [Nisq_util.Pool]), the solver's budget
    clock ([Nisq_solver.Budget.Clock.tick], every 256 nodes), the
    compiler's fallback-ladder rungs, and the run loop between figures
    and cells. Work between two points always completes — a blown
    deadline or a SIGINT/SIGTERM can therefore never corrupt a chunk or
    a journal record, only stop cleanly between them.

    Three sources can flip the token:
    - an armed wall-clock deadline expiring ({!arm_seconds}, from
      [--deadline]/[NISQ_DEADLINE]);
    - a signal handler calling {!cancel} ({!Signals});
    - deterministic fault injection ([deadline:blow] starts the
      deadline expired; [kill:chunk<N>] makes chunk [N]'s checkpoint
      behave like a SIGTERM — see {!Nisq_faultkit.Faultkit}).

    A disarmed check costs one atomic read plus two ref reads —
    negligible against a 256-trial chunk. *)

type reason = Deadline | Sigint | Sigterm

exception Cancelled of reason
(** Raised by cancellation points once the token is flipped. The run
    layer catches it at the top level, writes the final checkpoint and
    [status.json], flushes telemetry, and exits with {!exit_code}. *)

val reason_name : reason -> string
(** ["deadline" | "sigint" | "sigterm"] — used in status files. *)

val exit_code : reason -> int
(** [Deadline] → 3; [Sigint] → 130; [Sigterm] → 143. *)

val arm_seconds : float -> unit
(** Arm a wall-clock budget of [s] seconds from now (monotonic). *)

val armed : unit -> bool

val init_from_env : unit -> unit
(** Arm from [NISQ_DEADLINE] (e.g. "30s", "5m", "1h30m", "250ms", or a
    bare number of seconds) if set; warns once on stderr if malformed. *)

val parse_duration : string -> (float, string) result
(** Parse a human duration into seconds. Rejects empty, non-positive,
    malformed and overflowing (non-finite) inputs. *)

val with_scoped : seconds:float -> (unit -> 'a) -> ('a, reason) result
(** [with_scoped ~seconds f] runs [f] under a {e per-domain} deadline of
    [seconds] from now, observed by the same cancellation points as the
    process-wide token. When the scope expires, the next point raises
    {!Cancelled}[ Deadline] and [with_scoped] converts it to
    [Error Deadline] — the process-wide token is {e never} flipped, so
    other domains (the serving layer's sibling workers) are untouched.
    A process-wide cancellation (signal, global deadline, fault) still
    wins: it re-raises through [with_scoped] untouched. Nested scopes
    tighten — the inner scope cannot outlive the outer one. The scope is
    restored on every exit path. *)

val cancel : reason -> unit
(** Flip the token; the first reason wins, later calls are no-ops.
    Async-signal-safe (one compare-and-set). *)

val cancelled : unit -> reason option
(** Current state, also noticing an expired deadline or an armed
    [deadline:blow] fault. *)

val is_cancelled : unit -> bool

val raise_if_cancelled : unit -> unit
(** Raise {!Cancelled} if the token is flipped: the generic
    cancellation point. *)

val chunk_checkpoint : int -> unit
(** Cancellation point before pool chunk [i]: services an armed
    [kill:chunk<i>] fault (flipping the token as a SIGTERM would), then
    {!raise_if_cancelled}. *)

val reset : unit -> unit
(** Disarm the deadline and un-flip the token. For tests and in-process
    resume; a real resumed run is a fresh process. *)
