module Json = Nisq_obs.Json

type t = {
  id : string;
  dir : string;
  mutable journal : Journal.writer option;
  cells : (string, float) Hashtbl.t;
  figures : (string, unit) Hashtbl.t;
  mutable cached : int;
  mutable computed : int;
  (* Guards the tables, counters and journal appends: with the bench
     harness's figure-cell fan-out, cells complete on pool workers
     concurrently. Cell [compute] closures run OUTSIDE the lock — two
     racing computes of the same digest are benign (equal digests imply
     equal values) and cost at most one duplicate journal record. *)
  lock : Mutex.t;
}

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect f ~finally:(fun () -> Mutex.unlock t.lock)

let id t = t.id
let dir t = t.dir
let cache_stats t = with_lock t (fun () -> (t.cached, t.computed))

let journal_path dir = Filename.concat dir "journal.jsonl"
let tables_dir dir = Filename.concat dir "tables"
let table_path t name = Filename.concat (tables_dir t.dir) (name ^ ".txt")

let header_record ~run_id ~identity =
  Json.Obj
    [ ("kind", Json.String "header");
      ("run_id", Json.String run_id);
      ("identity", identity) ]

let append t record =
  match t.journal with
  | None -> invalid_arg "Run: journal already closed"
  | Some w -> Journal.append w record

let start ?(root = "_runs") ~run_id ~identity () =
  let dir = Filename.concat root run_id in
  Atomic_io.mkdir_p (tables_dir dir);
  let journal = Journal.create ~path:(journal_path dir) in
  let t =
    { id = run_id; dir; journal = Some journal;
      cells = Hashtbl.create 64; figures = Hashtbl.create 16;
      cached = 0; computed = 0; lock = Mutex.create () }
  in
  append t (header_record ~run_id ~identity);
  t

(* Rebuild the cell and figure caches from the journal's records.
   Unknown kinds are skipped so an older binary can resume a newer
   journal's runs as far as it understands them. *)
let replay t records =
  List.iter
    (fun r ->
      match Json.member "kind" r with
      | Some (Json.String "cell") -> (
          match (Json.member "key" r, Json.member "value" r) with
          | Some (Json.String key), Some (Json.Float v) ->
              Hashtbl.replace t.cells key v
          | Some (Json.String key), Some (Json.Int v) ->
              (* integral floats render without a '.', so they parse
                 back as Int *)
              Hashtbl.replace t.cells key (float_of_int v)
          | _ -> ())
      | Some (Json.String "figure") -> (
          match Json.member "name" r with
          | Some (Json.String name) -> Hashtbl.replace t.figures name ()
          | _ -> ())
      | _ -> ())
    records

let resume ?(root = "_runs") ~run_id ~identity ~force () =
  let dir = Filename.concat root run_id in
  let path = journal_path dir in
  if not (Sys.file_exists path) then
    Error (Printf.sprintf "no journal at %s: nothing to resume" path)
  else
    match Journal.load ~path with
    | Error msg -> Error msg
    | Ok { records = []; _ } ->
        Error (Printf.sprintf "%s: empty journal (missing header)" path)
    | Ok { records = header :: rest; torn; valid_bytes } -> (
        let check =
          match Json.member "kind" header with
          | Some (Json.String "header") -> (
              match Json.member "identity" header with
              | Some found ->
                  let want = Json.to_string identity in
                  let got = Json.to_string found in
                  if want = got || force then Ok ()
                  else
                    Error
                      (Printf.sprintf
                         "%s: run identity mismatch — the journal was \
                          written under a different seed/config/calibration.\n\
                          \  journal: %s\n\
                          \  current: %s\n\
                          Resuming would mix incompatible results; rerun \
                          fresh or pass --resume-force to override." path got
                         want)
              | None -> Error (Printf.sprintf "%s: header has no identity" path))
          | _ -> Error (Printf.sprintf "%s: first record is not a header" path)
        in
        match check with
        | Error _ as e -> e
        | Ok () ->
            if torn then Journal.truncate_to ~path valid_bytes;
            let t =
              { id = run_id; dir; journal = None;
                cells = Hashtbl.create 64; figures = Hashtbl.create 16;
                cached = 0; computed = 0; lock = Mutex.create () }
            in
            replay t rest;
            Atomic_io.mkdir_p (tables_dir dir);
            t.journal <- Some (Journal.append_to ~path);
            Ok t)

let float_cell t ~key compute =
  let cached =
    with_lock t (fun () ->
        match Hashtbl.find_opt t.cells key with
        | Some v ->
            t.cached <- t.cached + 1;
            Some v
        | None -> None)
  in
  match cached with
  | Some v -> v
  | None ->
      (* Computed outside the lock so concurrent cells overlap; see the
         note on [lock] for why a racing duplicate is benign. *)
      let v = compute () in
      with_lock t (fun () ->
          append t
            (Json.Obj
               [ ("kind", Json.String "cell");
                 ("key", Json.String key);
                 ("value", Json.Float v) ]);
          Hashtbl.replace t.cells key v;
          t.computed <- t.computed + 1);
      v

let figure_cached t name =
  if not (with_lock t (fun () -> Hashtbl.mem t.figures name)) then None
  else
    match Atomic_io.read_file (table_path t name) with
    | text -> Some text
    | exception Sys_error _ -> None

let figure_done t name text =
  (* table file first, journal record second: the record implies the
     rendered table exists *)
  Atomic_io.write_file ~path:(table_path t name) text;
  with_lock t (fun () ->
      append t
        (Json.Obj
           [ ("kind", Json.String "figure"); ("name", Json.String name) ]);
      Hashtbl.replace t.figures name ())

let write_status t ~status =
  let cached, computed = cache_stats t in
  Atomic_io.write_json
    ~path:(Filename.concat t.dir "status.json")
    (Json.Obj
       [ ("run_id", Json.String t.id);
         ("status", Json.String status);
         ("cells_cached", Json.Int cached);
         ("cells_computed", Json.Int computed) ])

let finish t ~status =
  write_status t ~status;
  let w = with_lock t (fun () -> let w = t.journal in t.journal <- None; w) in
  match w with
  | None -> ()
  | Some w -> Journal.close w

(* ------------------------- ambient run ----------------------------- *)

let current_run : t option ref = ref None
let install t = current_run := Some t
let uninstall () = current_run := None
let current () = !current_run
