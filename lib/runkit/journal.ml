module Json = Nisq_obs.Json

type writer = {
  path : string;
  oc : out_channel;
  mutable closed : bool;
}

let open_writer ~truncate ~path =
  let flags =
    if truncate then [ Open_wronly; Open_creat; Open_trunc ]
    else [ Open_wronly; Open_creat; Open_append ]
  in
  { path; oc = open_out_gen flags 0o644 path; closed = false }

let create ~path = open_writer ~truncate:true ~path

let append_to ~path = open_writer ~truncate:false ~path

(* One record = one line, flushed and fsync'd before [append] returns:
   after a crash the journal is a prefix of complete lines plus at most
   one torn tail, which [load] drops. *)
let append w json =
  if w.closed then invalid_arg "Journal.append: closed journal";
  output_string w.oc (Json.to_string json);
  output_char w.oc '\n';
  flush w.oc;
  (try Unix.fsync (Unix.descr_of_out_channel w.oc)
   with Unix.Unix_error _ -> ())

let close w =
  if not w.closed then begin
    w.closed <- true;
    close_out w.oc
  end

type loaded = {
  records : Json.t list;
  torn : bool;
  valid_bytes : int;  (* byte length of the complete-line prefix *)
}

let load ~path =
  match Atomic_io.read_file path with
  | exception Sys_error msg -> Error msg
  | src ->
      let n = String.length src in
      let rec go acc pos =
        if pos >= n then Ok { records = List.rev acc; torn = false; valid_bytes = pos }
        else
          let nl = String.index_from_opt src pos '\n' in
          let line_end, complete =
            match nl with Some i -> (i, true) | None -> (n, false)
          in
          let line = String.sub src pos (line_end - pos) in
          let next () = go acc (line_end + 1) in
          if String.trim line = "" then
            if complete then next ()
            else Ok { records = List.rev acc; torn = false; valid_bytes = pos }
          else
            match Json.of_string line with
            | Ok v when complete -> go (v :: acc) (line_end + 1)
            | Ok _ (* missing trailing newline: treat as torn *) ->
                Ok { records = List.rev acc; torn = true; valid_bytes = pos }
            | Error msg ->
                if complete then
                  (* A corrupt line with intact lines after it is real
                     damage, not a crash artifact: refuse. *)
                  if String.index_from_opt src (line_end + 1) '\n' <> None
                     || String.trim
                          (String.sub src (line_end + 1) (n - line_end - 1))
                        <> ""
                  then
                    Error
                      (Printf.sprintf "%s: corrupt journal line at byte %d: %s"
                         path pos msg)
                  else Ok { records = List.rev acc; torn = true; valid_bytes = pos }
                else Ok { records = List.rev acc; torn = true; valid_bytes = pos }
      in
      go [] 0

(* Chop a torn tail so appends restart on a clean line boundary. *)
let truncate_to ~path bytes =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () -> Unix.ftruncate fd bytes)
