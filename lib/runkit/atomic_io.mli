(** Crash-safe filesystem primitives shared by every output path of the
    run layer (journal, tables, telemetry, status files).

    A kill mid-write must never leave a half-written file where a
    consumer expects a complete one; {!write_file} therefore writes to a
    sibling temporary file, fsyncs, and renames into place — on POSIX
    the rename is atomic, so readers observe either the old content or
    the new, never a torn mix. *)

val mkdir_p : string -> unit
(** Create [dir] and any missing parents. Tolerates concurrent creation
    ([EEXIST] is success — unlike the racy
    [if not (Sys.file_exists d) then Sys.mkdir d] pattern this
    replaces). Raises [Unix.Unix_error] on real failures
    (e.g. permissions). *)

val write_file : path:string -> string -> unit
(** Atomically replace [path] with [content]: write
    [path.tmp.<pid>], flush, [fsync], rename over [path], then
    best-effort fsync the containing directory. On error the temporary
    file is removed and [path] is untouched. *)

val write_json : path:string -> Nisq_obs.Json.t -> unit
(** {!write_file} of the compact rendering plus a trailing newline. *)

val read_file : string -> string
(** Whole-file read (binary). Raises [Sys_error] if unreadable. *)

val fsync_dir : string -> unit
(** Best-effort fsync of a directory fd (persists renames/creates). *)
