let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" then ()
  else
    match Unix.mkdir dir 0o755 with
    | () -> ()
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    | exception Unix.Unix_error (Unix.ENOENT, _, _) ->
        mkdir_p (Filename.dirname dir);
        (try Unix.mkdir dir 0o755
         with Unix.Unix_error (Unix.EEXIST, _, _) -> ())

(* Durability of the rename itself needs the parent directory synced;
   failure is non-fatal (some filesystems refuse fsync on a directory
   fd) — the file content is already safe at that point. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let write_file ~path content =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  (match
     output_string oc content;
     flush oc;
     Unix.fsync (Unix.descr_of_out_channel oc)
   with
  | () -> close_out oc
  | exception e ->
      close_out_noerr oc;
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e);
  Sys.rename tmp path;
  fsync_dir (Filename.dirname path)

let write_json ~path json =
  write_file ~path (Nisq_obs.Json.to_string json ^ "\n")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))
