module Clock = Nisq_obs.Clock
module Metrics = Nisq_obs.Metrics
module Faultkit = Nisq_faultkit.Faultkit

type reason = Deadline | Sigint | Sigterm

exception Cancelled of reason

let reason_name = function
  | Deadline -> "deadline"
  | Sigint -> "sigint"
  | Sigterm -> "sigterm"

(* POSIX convention: 3 is "budget exceeded, partial results on disk"
   (documented in README), 128+N for death-by-signal after checkpoint. *)
let exit_code = function Deadline -> 3 | Sigint -> 130 | Sigterm -> 143

let m_cancellations = Metrics.counter "runkit.cancellations"

(* The token. [state] is flipped exactly once per run (first reason
   wins); every later checkpoint observes it with a single atomic read.
   [deadline_ns] is the absolute monotonic expiry, armed by the main
   thread before work starts. *)
let state : reason option Atomic.t = Atomic.make None
let deadline_ns : int64 option ref = ref None

let cancel reason =
  if Atomic.compare_and_set state None (Some reason) then
    Metrics.incr m_cancellations

let arm_seconds s =
  deadline_ns :=
    Some (Int64.add (Clock.now_ns ()) (Int64.of_float (s *. 1e9)))

let armed () = !deadline_ns <> None

let reset () =
  deadline_ns := None;
  Atomic.set state None

let cancelled () =
  match Atomic.get state with
  | Some _ as r -> r
  | None ->
      if Faultkit.deadline_blow () then begin
        cancel Deadline;
        Atomic.get state
      end
      else (
        match !deadline_ns with
        | Some t when Clock.now_ns () >= t ->
            cancel Deadline;
            Atomic.get state
        | _ -> None)

let is_cancelled () = cancelled () <> None

let raise_if_cancelled () =
  match cancelled () with Some r -> raise (Cancelled r) | None -> ()

let chunk_checkpoint i =
  if Faultkit.kill_chunk i then cancel Sigterm;
  raise_if_cancelled ()

(* ----------------------- duration parsing ------------------------- *)

let parse_duration src =
  let src = String.trim (String.lowercase_ascii src) in
  let n = String.length src in
  if n = 0 then Error "empty duration"
  else begin
    let pos = ref 0 in
    let total = ref 0.0 in
    let error = ref None in
    let fail msg = error := Some msg; pos := n in
    while !pos < n && !error = None do
      let start = !pos in
      while
        !pos < n
        && (match src.[!pos] with '0' .. '9' | '.' -> true | _ -> false)
      do
        incr pos
      done;
      if !pos = start then
        fail (Printf.sprintf "expected a number at %S" (String.sub src start (n - start)))
      else
        match float_of_string_opt (String.sub src start (!pos - start)) with
        | None -> fail "malformed number"
        | Some v ->
            let unit_start = !pos in
            while
              !pos < n
              && (match src.[!pos] with 'a' .. 'z' -> true | _ -> false)
            do
              incr pos
            done;
            let scale =
              match String.sub src unit_start (!pos - unit_start) with
              | "" | "s" | "sec" | "secs" -> Some 1.0
              | "ms" -> Some 0.001
              | "m" | "min" | "mins" -> Some 60.0
              | "h" | "hr" | "hrs" -> Some 3600.0
              | u -> fail (Printf.sprintf "unknown unit %S (want ms|s|m|h)" u); None
            in
            Option.iter (fun sc -> total := !total +. (v *. sc)) scale
    done;
    match !error with
    | Some e -> Error e
    | None when !total <= 0.0 -> Error "duration must be positive"
    | None -> Ok !total
  end

let env_warned = ref false

let init_from_env () =
  match Sys.getenv_opt "NISQ_DEADLINE" with
  | None | Some "" -> ()
  | Some src -> (
      match parse_duration src with
      | Ok s -> arm_seconds s
      | Error msg ->
          if not !env_warned then begin
            env_warned := true;
            Nisq_obs.Events.emit ~domain:"deadline" Nisq_obs.Events.Warn
              (Printf.sprintf
                 "nisq: warning: ignoring malformed NISQ_DEADLINE=%S (%s)" src
                 msg)
              ~fields:
                [ ("env", "NISQ_DEADLINE"); ("value", src); ("reason", msg) ]
          end)
