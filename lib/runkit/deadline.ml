module Clock = Nisq_obs.Clock
module Metrics = Nisq_obs.Metrics
module Faultkit = Nisq_faultkit.Faultkit

type reason = Deadline | Sigint | Sigterm

exception Cancelled of reason

let reason_name = function
  | Deadline -> "deadline"
  | Sigint -> "sigint"
  | Sigterm -> "sigterm"

(* POSIX convention: 3 is "budget exceeded, partial results on disk"
   (documented in README), 128+N for death-by-signal after checkpoint. *)
let exit_code = function Deadline -> 3 | Sigint -> 130 | Sigterm -> 143

let m_cancellations = Metrics.counter "runkit.cancellations"

(* The token. [state] is flipped exactly once per run (first reason
   wins); every later checkpoint observes it with a single atomic read.
   [deadline_ns] is the absolute monotonic expiry, armed by the main
   thread before work starts. *)
let state : reason option Atomic.t = Atomic.make None
let deadline_ns : int64 option ref = ref None

(* Per-domain scoped deadline ({!with_scoped}): the serving layer runs
   many requests concurrently, one per worker domain, and a process-wide
   token cannot expire one request without killing its neighbours. The
   scoped expiry lives in domain-local storage, is consulted by
   [cancelled] after the global sources, and never flips the global
   token — an expired scope cancels exactly the domain that armed it. *)
let scoped_key : int64 option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let m_scoped_expired = Metrics.counter "runkit.scoped_deadline_expired"

let cancel reason =
  if Atomic.compare_and_set state None (Some reason) then
    Metrics.incr m_cancellations

let arm_seconds s =
  deadline_ns :=
    Some (Int64.add (Clock.now_ns ()) (Int64.of_float (s *. 1e9)))

let armed () = !deadline_ns <> None

let reset () =
  deadline_ns := None;
  Domain.DLS.get scoped_key := None;
  Atomic.set state None

(* The global sources only: token, deadline:blow fault, armed wall
   clock. Used by [with_scoped] to tell a scope-local expiry apart from
   a process-wide cancellation that must keep propagating. *)
let global_cancelled () =
  match Atomic.get state with
  | Some _ as r -> r
  | None ->
      if Faultkit.deadline_blow () then begin
        cancel Deadline;
        Atomic.get state
      end
      else (
        match !deadline_ns with
        | Some t when Clock.now_ns () >= t ->
            cancel Deadline;
            Atomic.get state
        | _ -> None)

let cancelled () =
  match global_cancelled () with
  | Some _ as r -> r
  | None -> (
      match !(Domain.DLS.get scoped_key) with
      | Some t when Clock.now_ns () >= t -> Some Deadline
      | _ -> None)

let with_scoped ~seconds f =
  let cell = Domain.DLS.get scoped_key in
  let saved = !cell in
  let expiry = Int64.add (Clock.now_ns ()) (Int64.of_float (seconds *. 1e9)) in
  (* Nested scopes tighten, never loosen: an outer 1 s budget is not
     escaped by arming an inner 10 s one. *)
  let expiry =
    match saved with Some outer when outer < expiry -> outer | _ -> expiry
  in
  cell := Some expiry;
  let restore () = cell := saved in
  match f () with
  | v ->
      restore ();
      Ok v
  | exception Cancelled Deadline when global_cancelled () = None ->
      restore ();
      Metrics.incr m_scoped_expired;
      Error Deadline
  | exception e ->
      restore ();
      raise e

let is_cancelled () = cancelled () <> None

let raise_if_cancelled () =
  match cancelled () with Some r -> raise (Cancelled r) | None -> ()

let chunk_checkpoint i =
  if Faultkit.kill_chunk i then cancel Sigterm;
  raise_if_cancelled ()

(* ----------------------- duration parsing ------------------------- *)

let parse_duration src =
  let src = String.trim (String.lowercase_ascii src) in
  let n = String.length src in
  if n = 0 then Error "empty duration"
  else begin
    let pos = ref 0 in
    let total = ref 0.0 in
    let error = ref None in
    let fail msg = error := Some msg; pos := n in
    while !pos < n && !error = None do
      let start = !pos in
      while
        !pos < n
        && (match src.[!pos] with '0' .. '9' | '.' -> true | _ -> false)
      do
        incr pos
      done;
      if !pos = start then
        fail (Printf.sprintf "expected a number at %S" (String.sub src start (n - start)))
      else
        match float_of_string_opt (String.sub src start (!pos - start)) with
        | None -> fail "malformed number"
        | Some v ->
            let unit_start = !pos in
            while
              !pos < n
              && (match src.[!pos] with 'a' .. 'z' -> true | _ -> false)
            do
              incr pos
            done;
            let scale =
              match String.sub src unit_start (!pos - unit_start) with
              | "" | "s" | "sec" | "secs" -> Some 1.0
              | "ms" -> Some 0.001
              | "m" | "min" | "mins" -> Some 60.0
              | "h" | "hr" | "hrs" -> Some 3600.0
              | u -> fail (Printf.sprintf "unknown unit %S (want ms|s|m|h)" u); None
            in
            Option.iter (fun sc -> total := !total +. (v *. sc)) scale
    done;
    match !error with
    | Some e -> Error e
    | None when !total <= 0.0 -> Error "duration must be positive"
    | None when not (Float.is_finite !total) ->
        (* "1e999h"-style inputs overflow to infinity; arming an infinite
           deadline would feed Int64.of_float an undefined conversion. *)
        Error "duration overflows"
    | None -> Ok !total
  end

let env_warned = ref false

let init_from_env () =
  match Sys.getenv_opt "NISQ_DEADLINE" with
  | None | Some "" -> ()
  | Some src -> (
      match parse_duration src with
      | Ok s -> arm_seconds s
      | Error msg ->
          if not !env_warned then begin
            env_warned := true;
            Nisq_obs.Events.emit ~domain:"deadline" Nisq_obs.Events.Warn
              (Printf.sprintf
                 "nisq: warning: ignoring malformed NISQ_DEADLINE=%S (%s)" src
                 msg)
              ~fields:
                [ ("env", "NISQ_DEADLINE"); ("value", src); ("reason", msg) ]
          end)
