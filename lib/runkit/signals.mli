(** Graceful-shutdown signal handling.

    {!install} routes SIGINT and SIGTERM into the {!Deadline} token:
    the first signal flips the token and prints a one-line notice —
    in-flight pool chunks finish, the run layer writes its checkpoint
    and [status.json], and the process exits with 130 (SIGINT) or 143
    (SIGTERM). A second signal calls [Unix._exit] immediately: every
    journal record is fsync'd before its append returns, so skipping
    the orderly teardown loses at most the work since the last
    checkpoint — never the journal's integrity. *)

val install : unit -> unit
(** Install the handlers once; later calls are no-ops. Safe on
    platforms without signal support (failures are swallowed). *)
