let hits = Atomic.make 0

let handle reason _signo =
  let n = Atomic.fetch_and_add hits 1 in
  if n = 0 then begin
    Deadline.cancel reason;
    prerr_string
      (Printf.sprintf
         "\nnisq: %s received — draining in-flight chunks and writing a \
          checkpoint (signal again to abort immediately)\n"
         (Deadline.reason_name reason));
    flush stderr
  end
  else
    (* Second signal: the user means it. Skip at_exit (pool teardown,
       buffered channels) — everything durable is already fsync'd. *)
    Unix._exit (Deadline.exit_code reason)

let installed = ref false

let install () =
  if not !installed then begin
    installed := true;
    let set signal reason =
      try Sys.set_signal signal (Sys.Signal_handle (handle reason))
      with Invalid_argument _ | Sys_error _ -> ()
    in
    set Sys.sigint Deadline.Sigint;
    set Sys.sigterm Deadline.Sigterm
  end
