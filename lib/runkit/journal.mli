(** The append-only run ledger: one JSON record per line
    ([journal.jsonl]), flushed and fsync'd record by record.

    The format is crash-safe by construction: a record is durable before
    {!append} returns, so after any kill the file is a prefix of
    complete lines plus at most one torn tail. {!load} ignores the torn
    tail (it is the unit of work that was in flight — by definition not
    yet completed) but treats a corrupt line {e followed by} intact
    lines as real damage and refuses, since silently dropping interior
    records would violate the resume-equals-uninterrupted contract. *)

type writer

val create : path:string -> writer
(** Open a fresh journal, truncating any existing file. *)

val append_to : path:string -> writer
(** Reopen an existing journal for appending (resume). Call
    {!truncate_to} first if {!load} reported a torn tail. *)

val append : writer -> Nisq_obs.Json.t -> unit
(** Write one record line, flush, fsync. *)

val close : writer -> unit

type loaded = {
  records : Nisq_obs.Json.t list;  (** complete records, in order *)
  torn : bool;  (** a torn/corrupt trailing line was dropped *)
  valid_bytes : int;  (** length of the intact prefix, for {!truncate_to} *)
}

val load : path:string -> (loaded, string) result
(** Read a journal back. [Error] on an unreadable file or a corrupt
    interior line; a torn {e final} line is reported, not fatal. *)

val truncate_to : path:string -> int -> unit
(** Truncate the file to [valid_bytes], removing a torn tail so that
    subsequent appends start on a line boundary. *)
