(** Deterministic fault injection for resilience testing.

    A fault spec is a [';']-separated list of clauses, each naming an
    injection site and an optional target:

    {v
      calib:nan@q3       NaN the per-qubit fields of qubit 3
      calib:nan@e0-1     NaN the CNOT error of link 0-1
      calib:zero@q3      zero out qubit 3's fields
      calib:offline@q3   corrupt every field of qubit 3 (forces quarantine)
      solver:blow        every Budget.Clock starts exhausted
      pool:crash@chunk7  chunk 7 raises Injected on its first execution
      pool:kill@chunk7   chunk 7 raises Domain_kill on its first execution
      deadline:blow      the run deadline starts already expired
      kill:chunk7        chunk 7's cancellation checkpoint acts as if a
                         SIGTERM had just arrived (deterministic kill)
      net:torn@req3      the daemon writes half of request 3's reply
                         frame, then severs the connection
      net:close@req3     the daemon severs the connection instead of
                         writing request 3's reply
      server:slow@req3   request 3's handler stalls until its deadline
                         cancels it
      server:crash-handler@req3
                         request 3's handler raises Injected (the worker
                         must survive and answer request 4)
      calib:reload-torn@epoch2
                         the reload attempt allocating candidate epoch 2
                         reads a torn (truncated) candidate file
      calib:reload-drift@epoch2
                         the candidate's error rates are scaled past the
                         drift gate's thresholds
      calib:reload-poison@epoch2
                         several qubits of the candidate are corrupted
                         offline-style, growing the quarantine set
      server:slow-reload@epoch2
                         the reload pipeline stalls before deciding,
                         widening the concurrent-serving window
    v}

    Specs come from [nisqc --inject SPEC] or the [NISQ_FAULTS] environment
    variable. Pool faults are one-shot: the first execution of the named
    chunk fails, the retry succeeds, so the determinism contract
    (bit-identical results at equal seeds) is observable end to end.

    All checks are cheap when no spec is armed: a single ref read. *)

type calib_target = Qubit of int | Edge of int * int
type calib_kind = Nan | Zero | Offline
type calib_fault = { target : calib_target; kind : calib_kind }

(** Daemon-side faults, targeted at a request index (arrival order,
    counted by the server across all connections). *)
type server_fault = Net_torn | Net_close | Slow | Crash_handler

(** Reload-pipeline faults, targeted at the candidate epoch id a reload
    attempt allocates (ids are consumed by every attempt, promoted or
    rolled back, so clauses name attempts unambiguously). *)
type reload_fault = Reload_torn | Reload_drift | Reload_poison | Reload_slow

(** Raised by an armed [pool:crash@chunkN] clause. *)
exception Injected of string

(** Raised by an armed [pool:kill@chunkN] clause; the hosting pool worker
    treats it as a domain death (the chunk is retried, the domain exits
    and is respawned on the next parallel call). *)
exception Domain_kill

val configure : string -> (unit, string) result
(** Parse and arm a fault spec, replacing any previous one. The empty
    string clears. *)

val init_from_env : unit -> unit
(** Arm from [NISQ_FAULTS] if set; warns on stderr (once) if malformed. *)

val clear : unit -> unit
(** Disarm everything, including already-fired one-shot clauses. *)

val active : unit -> string option
(** The armed spec, if any. *)

val calib_faults : unit -> calib_fault list
(** Armed calibration corruptions, to be applied by [Calib_sanitize]. *)

val solver_blow : unit -> bool
(** True when every solver budget should start exhausted. *)

val deadline_blow : unit -> bool
(** True when the run-layer deadline should start already expired
    ([deadline:blow]); consumed by [Nisq_runkit.Deadline]. *)

val kill_chunk : int -> bool
(** True the first time chunk [i]'s cancellation checkpoint runs with an
    armed [kill:chunk<i>] clause, then disarms that clause. The caller
    ([Nisq_runkit.Deadline.chunk_checkpoint]) reacts exactly as to a
    real SIGTERM, making mid-sweep kills reproducible in tests. No-op
    (one ref read) when disarmed. *)

val server_fault : int -> server_fault option
(** The armed fault for daemon request [i], if any — one-shot: the
    clause disarms when first looked up, so the retry of a damaged
    request finds a healthy server. No-op (one ref read) when no server
    clause is armed. Consumed by [Nisq_serve.Server]. *)

val reload_fault : int -> reload_fault option
(** The armed fault for the reload attempt whose candidate epoch id is
    [i], if any — one-shot: the clause disarms when first looked up, so
    the operator's next attempt observes a healthy pipeline. No-op (one
    ref read) when no reload clause is armed. Consumed by
    [Nisq_serve.Reload]. *)

val chunk_check : int -> unit
(** Injection site for pool chunk [i]: raises [Injected] or [Domain_kill]
    the first time an armed chunk index is executed, then disarms that
    clause so the retry succeeds. No-op (one ref read) when disarmed. *)
