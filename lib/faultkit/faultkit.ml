type calib_target = Qubit of int | Edge of int * int
type calib_kind = Nan | Zero | Offline
type calib_fault = { target : calib_target; kind : calib_kind }

exception Injected of string
exception Domain_kill

type pool_fault = Crash | Kill

type server_fault = Net_torn | Net_close | Slow | Crash_handler

type reload_fault = Reload_torn | Reload_drift | Reload_poison | Reload_slow

type spec = {
  source : string;
  calib : calib_fault list;
  blow : bool;
  deadline_blow : bool;
  (* chunk index -> fault; clauses are removed once fired (one-shot). *)
  pool : (int, pool_fault) Hashtbl.t;
  (* chunk indices whose cancellation checkpoint behaves as if a SIGTERM
     had just arrived; one-shot, like pool clauses. *)
  kill : (int, unit) Hashtbl.t;
  (* daemon request index -> fault; one-shot, so the client's retry of
     the damaged request observes an undisturbed server. *)
  server : (int, server_fault) Hashtbl.t;
  (* candidate epoch id -> reload-pipeline fault; one-shot, so the next
     reload attempt observes a healthy pipeline. *)
  reload : (int, reload_fault) Hashtbl.t;
}

let m_injected = Nisq_obs.Metrics.counter "resilience.faults.injected"

(* [chunk_check] runs on worker domains, so the armed spec lives behind a
   mutex; the disarmed fast path is a single ref read. *)
let lock = Mutex.create ()
let armed : spec option ref = ref None
let pool_armed = ref false
let kill_armed = ref false
let server_armed = ref false
let reload_armed = ref false

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let parse_clause clause =
  let clause = String.trim clause in
  let site, target =
    match String.index_opt clause '@' with
    | Some i ->
        ( String.sub clause 0 i,
          Some (String.sub clause (i + 1) (String.length clause - i - 1)) )
    | None -> (clause, None)
  in
  let int_after prefix s =
    let plen = String.length prefix in
    if String.length s > plen && String.sub s 0 plen = prefix then
      int_of_string_opt (String.sub s plen (String.length s - plen))
    else None
  in
  let calib_target () =
    match target with
    | None -> Error (Printf.sprintf "%s: missing @q<N> or @e<A>-<B> target" site)
    | Some t -> (
        let fail () = Error (Printf.sprintf "bad calibration target %S" t) in
        match int_after "q" t with
        | Some q when q >= 0 -> Ok (Qubit q)
        | Some _ -> fail ()
        | None ->
            if String.length t < 2 || t.[0] <> 'e' then fail ()
            else
              let body = String.sub t 1 (String.length t - 1) in
              (match String.index_opt body '-' with
              | Some i -> (
                  let a = String.sub body 0 i
                  and b = String.sub body (i + 1) (String.length body - i - 1) in
                  match (int_of_string_opt a, int_of_string_opt b) with
                  | Some a, Some b when a >= 0 && b >= 0 -> Ok (Edge (a, b))
                  | _ -> fail ())
              | None -> fail ()))
  in
  match site with
  | "calib:nan" ->
      Result.map (fun t -> `Calib { target = t; kind = Nan }) (calib_target ())
  | "calib:zero" ->
      Result.map (fun t -> `Calib { target = t; kind = Zero }) (calib_target ())
  | "calib:offline" ->
      Result.map
        (fun t -> `Calib { target = t; kind = Offline })
        (calib_target ())
  | "solver:blow" ->
      if target = None then Ok `Blow
      else Error "solver:blow takes no target"
  | "deadline:blow" ->
      if target = None then Ok `Deadline_blow
      else Error "deadline:blow takes no target"
  | _ when int_after "kill:chunk" site <> None -> (
      match (int_after "kill:chunk" site, target) with
      | Some i, None when i >= 0 -> Ok (`Kill i)
      | Some _, None -> Error "kill:chunk<N>: negative chunk index"
      | _, Some _ -> Error "kill:chunk<N> takes no @target"
      | None, _ -> assert false)
  | "pool:crash" | "pool:kill" -> (
      let kind = if site = "pool:crash" then Crash else Kill in
      match Option.bind target (int_after "chunk") with
      | Some i when i >= 0 -> Ok (`Pool (i, kind))
      | _ ->
          Error (Printf.sprintf "%s: expected @chunk<N> target" site))
  | "calib:reload-torn" | "calib:reload-drift" | "calib:reload-poison"
  | "server:slow-reload" -> (
      let kind =
        match site with
        | "calib:reload-torn" -> Reload_torn
        | "calib:reload-drift" -> Reload_drift
        | "calib:reload-poison" -> Reload_poison
        | _ -> Reload_slow
      in
      match Option.bind target (int_after "epoch") with
      | Some i when i >= 0 -> Ok (`Reload (i, kind))
      | _ -> Error (Printf.sprintf "%s: expected @epoch<N> target" site))
  | "net:torn" | "net:close" | "server:slow" | "server:crash-handler" -> (
      let kind =
        match site with
        | "net:torn" -> Net_torn
        | "net:close" -> Net_close
        | "server:slow" -> Slow
        | _ -> Crash_handler
      in
      match Option.bind target (int_after "req") with
      | Some i when i >= 0 -> Ok (`Server (i, kind))
      | _ -> Error (Printf.sprintf "%s: expected @req<N> target" site))
  | _ -> Error (Printf.sprintf "unknown fault site %S" site)

let parse source =
  let clauses =
    String.split_on_char ';' source
    |> List.map String.trim
    |> List.filter (fun c -> c <> "")
  in
  let pool = Hashtbl.create 4 in
  let kill = Hashtbl.create 4 in
  let server = Hashtbl.create 4 in
  let reload = Hashtbl.create 4 in
  let rec go calib blow dblow = function
    | [] ->
        Ok
          { source; calib = List.rev calib; blow; deadline_blow = dblow; pool;
            kill; server; reload }
    | c :: rest -> (
        match parse_clause c with
        | Ok (`Calib f) -> go (f :: calib) blow dblow rest
        | Ok `Blow -> go calib true dblow rest
        | Ok `Deadline_blow -> go calib blow true rest
        | Ok (`Pool (i, k)) ->
            Hashtbl.replace pool i k;
            go calib blow dblow rest
        | Ok (`Kill i) ->
            Hashtbl.replace kill i ();
            go calib blow dblow rest
        | Ok (`Server (i, k)) ->
            Hashtbl.replace server i k;
            go calib blow dblow rest
        | Ok (`Reload (i, k)) ->
            Hashtbl.replace reload i k;
            go calib blow dblow rest
        | Error e -> Error (Printf.sprintf "fault clause %S: %s" c e))
  in
  go [] false false clauses

let clear () =
  with_lock (fun () ->
      armed := None;
      pool_armed := false;
      kill_armed := false;
      server_armed := false;
      reload_armed := false)

let configure source =
  if String.trim source = "" then (
    clear ();
    Ok ())
  else
    match parse source with
    | Ok spec ->
        with_lock (fun () ->
            armed := Some spec;
            pool_armed := Hashtbl.length spec.pool > 0;
            kill_armed := Hashtbl.length spec.kill > 0;
            server_armed := Hashtbl.length spec.server > 0;
            reload_armed := Hashtbl.length spec.reload > 0);
        Ok ()
    | Error _ as e -> e

let env_warned = ref false

let init_from_env () =
  match Sys.getenv_opt "NISQ_FAULTS" with
  | None | Some "" -> ()
  | Some spec -> (
      match configure spec with
      | Ok () -> ()
      | Error msg ->
          if not !env_warned then (
            env_warned := true;
            Nisq_obs.Events.emit ~domain:"faultkit" Nisq_obs.Events.Warn
              (Printf.sprintf "nisq: ignoring malformed NISQ_FAULTS: %s" msg)
              ~fields:[ ("env", "NISQ_FAULTS"); ("reason", msg) ]))

let active () =
  with_lock (fun () -> Option.map (fun s -> s.source) !armed)

let calib_faults () =
  with_lock (fun () ->
      match !armed with None -> [] | Some s -> s.calib)

let solver_blow () =
  match !armed with None -> false | Some s -> s.blow

let deadline_blow () =
  match !armed with None -> false | Some s -> s.deadline_blow

(* One-shot like the pool clauses: the first checkpoint of the armed
   chunk reports the kill, later ones don't — so a resumed run (with the
   spec no longer armed, or the clause consumed) proceeds normally. *)
let kill_chunk i =
  !kill_armed
  && with_lock (fun () ->
         match !armed with
         | None -> false
         | Some s ->
             if Hashtbl.mem s.kill i then begin
               Hashtbl.remove s.kill i;
               if Hashtbl.length s.kill = 0 then kill_armed := false;
               Nisq_obs.Metrics.incr m_injected;
               true
             end
             else false)

(* One-shot, like the pool clauses: request [i]'s fault fires once and
   disarms, so the client's retry (a fresh request index, or the same
   request replayed) sees a healthy server — the determinism contract for
   retry-eventually-succeeds smoke tests. *)
let server_fault i =
  if not !server_armed then None
  else
    with_lock (fun () ->
        match !armed with
        | None -> None
        | Some s -> (
            match Hashtbl.find_opt s.server i with
            | None -> None
            | Some f ->
                Hashtbl.remove s.server i;
                if Hashtbl.length s.server = 0 then server_armed := false;
                Nisq_obs.Metrics.incr m_injected;
                Some f))

(* One-shot like the server clauses: the reload attempt whose candidate
   epoch id matches consumes the clause; the operator's next attempt
   (a fresh id) observes a healthy pipeline. *)
let reload_fault i =
  if not !reload_armed then None
  else
    with_lock (fun () ->
        match !armed with
        | None -> None
        | Some s -> (
            match Hashtbl.find_opt s.reload i with
            | None -> None
            | Some f ->
                Hashtbl.remove s.reload i;
                if Hashtbl.length s.reload = 0 then reload_armed := false;
                Nisq_obs.Metrics.incr m_injected;
                Some f))

let chunk_check i =
  if !pool_armed then
    let fault =
      with_lock (fun () ->
          match !armed with
          | None -> None
          | Some s -> (
              match Hashtbl.find_opt s.pool i with
              | None -> None
              | Some f ->
                  Hashtbl.remove s.pool i;
                  if Hashtbl.length s.pool = 0 then pool_armed := false;
                  Some f))
    in
    match fault with
    | None -> ()
    | Some Crash ->
        Nisq_obs.Metrics.incr m_injected;
        raise (Injected (Printf.sprintf "pool:crash@chunk%d" i))
    | Some Kill ->
        Nisq_obs.Metrics.incr m_injected;
        raise Domain_kill
