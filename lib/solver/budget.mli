(** Search budgets and statistics for the optimization engine.

    The paper's Z3 runs are wall-clock bounded in practice (R-SMT⋆ takes
    up to 3 hours at 32 qubits, §7.4); our engine makes the budget explicit
    so scalability experiments terminate and report whether the returned
    solution is proven optimal or merely the best found in budget. *)

type t = {
  max_nodes : int option;  (** search-tree node limit *)
  max_seconds : float option;  (** wall-clock limit *)
}

val unlimited : t

val nodes : int -> t

val seconds : float -> t

val make : ?max_nodes:int -> ?max_seconds:float -> unit -> t

type stats = {
  nodes_visited : int;
      (** Search-tree nodes expanded. For a parallel solve
          ({!Parallel}), this is the {e sum} over all subtree searches —
          a work count, not a wall-clock proxy — and is byte-identical
          across pool sizes because the subtree decomposition and every
          incumbent handoff are pool-size-independent. *)
  elapsed_seconds : float;
      (** Wall-clock duration of the whole solve, start to finish. For a
          parallel solve this is measured once around the entire fan-out
          — {e not} the sum of per-subtree clocks, which would
          double-count overlapping work and shrink with pool size. The
          two fields deliberately diverge under parallelism:
          [nodes_visited] stays deterministic while [elapsed_seconds]
          reflects real time. *)
  proven_optimal : bool;
      (** true iff the search space was exhausted within budget *)
  degraded : bool;
      (** true iff the budget blew: the answer is best-so-far (or a greedy
          completion), not the search's verdict. Callers such as
          [Compile] use this to walk their fallback ladder. *)
  bound_hits : (string * int) list;
      (** Per-level admissible-bound prune counts, in ladder order
          (for {!Placement}: ["static"], ["cheap"], ["tight"],
          ["matching"]). Searches without a bound ladder report [[]].
          Like [nodes_visited], these are sums of deterministic
          per-subtree counts, byte-identical across pool sizes. *)
}

val merge_hits :
  (string * int) list -> (string * int) list -> (string * int) list
(** Keyed elementwise sum; key order follows the first argument (extra
    keys from the second are appended). Used by [Parallel] to fold
    per-subtree ladders into one. *)

(** Internal budget-tracking clock handed to searches. *)
module Clock : sig
  type budget := t
  type t

  val start : budget -> t
  val tick : t -> bool
  (** Count one node; [false] when the budget is exhausted. *)

  val stats : ?bound_hits:(string * int) list -> t -> exhausted:bool -> stats
  (** [bound_hits] (default [[]]) is threaded into the result verbatim;
      the search that owns the ladder supplies its counts. *)
end
