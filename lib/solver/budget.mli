(** Search budgets and statistics for the optimization engine.

    The paper's Z3 runs are wall-clock bounded in practice (R-SMT⋆ takes
    up to 3 hours at 32 qubits, §7.4); our engine makes the budget explicit
    so scalability experiments terminate and report whether the returned
    solution is proven optimal or merely the best found in budget. *)

type t = {
  max_nodes : int option;  (** search-tree node limit *)
  max_seconds : float option;  (** wall-clock limit *)
}

val unlimited : t

val nodes : int -> t

val seconds : float -> t

val make : ?max_nodes:int -> ?max_seconds:float -> unit -> t

type stats = {
  nodes_visited : int;
  elapsed_seconds : float;
  proven_optimal : bool;
      (** true iff the search space was exhausted within budget *)
  degraded : bool;
      (** true iff the budget blew: the answer is best-so-far (or a greedy
          completion), not the search's verdict. Callers such as
          [Compile] use this to walk their fallback ladder. *)
}

(** Internal budget-tracking clock handed to searches. *)
module Clock : sig
  type budget := t
  type t

  val start : budget -> t
  val tick : t -> bool
  (** Count one node; [false] when the budget is exhausted. *)

  val stats : t -> exhausted:bool -> stats
end
