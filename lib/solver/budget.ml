module Faultkit = Nisq_faultkit.Faultkit
module Deadline = Nisq_runkit.Deadline

type t = { max_nodes : int option; max_seconds : float option }

let unlimited = { max_nodes = None; max_seconds = None }

let nodes n = { max_nodes = Some n; max_seconds = None }

let seconds s = { max_nodes = None; max_seconds = Some s }

let make ?max_nodes ?max_seconds () = { max_nodes; max_seconds }

type stats = {
  nodes_visited : int;
  elapsed_seconds : float;
  proven_optimal : bool;
  degraded : bool;
  bound_hits : (string * int) list;
}

(* Keyed sum of two hit lists; key order follows [a] with [b]'s extra
   keys appended, so merging preserves the ladder's level order. *)
let merge_hits a b =
  let merged =
    List.map
      (fun (k, va) ->
        (k, va + Option.value (List.assoc_opt k b) ~default:0))
      a
  in
  merged @ List.filter (fun (k, _) -> not (List.mem_assoc k a)) b

module Clock = struct
  type nonrec t = {
    budget : t;
    started : float;
    mutable count : int;
    mutable blown : bool;
  }

  (* Node totals are deterministic unless a wall-clock budget blows; the
     paper-scale benchmarks stay far inside the default time budget. *)
  let m_solves = Nisq_obs.Metrics.counter "solver.solves"
  let m_nodes = Nisq_obs.Metrics.counter "solver.nodes"
  let m_degraded = Nisq_obs.Metrics.counter "resilience.solver.degraded"

  let start budget =
    Nisq_obs.Metrics.incr m_solves;
    (* A "solver:blow" fault starts the clock pre-exhausted: the search
       falls straight through to its best-so-far/greedy completion path
       and reports a degraded result, exercising the fallback ladder. *)
    (* A cancelled run (blown deadline, SIGINT/SIGTERM) likewise starts
       exhausted: the search degrades to its fast completion path instead
       of burning the shutdown grace period on a doomed solve. *)
    let blown = Faultkit.solver_blow () || Deadline.is_cancelled () in
    { budget; started = Unix.gettimeofday (); count = 0; blown }

  let tick c =
    if c.blown then false
    else begin
      c.count <- c.count + 1;
      let over_nodes =
        match c.budget.max_nodes with Some n -> c.count > n | None -> false
      in
      (* Check the clock only every 256 nodes: gettimeofday is not free.
         The run deadline piggybacks on the same cadence — this is the
         solver's cancellation point, so even an unbounded search notices
         a flipped token within 256 nodes. *)
      let over_time =
        (c.count land 255) = 0
        && (Deadline.is_cancelled ()
           ||
           match c.budget.max_seconds with
           | Some s -> Unix.gettimeofday () -. c.started > s
           | None -> false)
      in
      if over_nodes || over_time then begin
        c.blown <- true;
        false
      end
      else true
    end

  let stats ?(bound_hits = []) c ~exhausted =
    Nisq_obs.Metrics.add m_nodes c.count;
    if c.blown then Nisq_obs.Metrics.incr m_degraded;
    {
      nodes_visited = c.count;
      elapsed_seconds = Unix.gettimeofday () -. c.started;
      proven_optimal = exhausted && not c.blown;
      degraded = c.blown;
      bound_hits;
    }
end
