(** Minimizing branch-and-bound over injective placements with
    caller-supplied cost model.

    Used by the duration-oriented compiler variants (T-SMT, T-SMT⋆): the
    objective — the finish time of the last gate under the scheduling
    constraints of §4.2 — is not additive over placement decisions, so the
    caller provides an admissible [lower_bound] for partial placements
    (e.g. a critical path with optimistic routing durations) and the exact
    [leaf_cost] for complete placements (the list scheduler's makespan).

    Item [i] unplaced is encoded as [placement.(i) = -1]. [leaf_cost] may
    return [Int.max_int] to reject an infeasible placement (e.g. one whose
    schedule violates the coherence constraint, Eq. 4/6). *)

type problem = {
  num_items : int;
  num_slots : int;
  order : int array option;  (** placement order; default [0..n-1] *)
  lower_bound : int array -> int;
      (** admissible: never exceeds the best completion's [leaf_cost] *)
  leaf_cost : int array -> int;
}

type solution = {
  assignment : int array;
  cost : int;  (** [Int.max_int] iff no feasible placement was found *)
  stats : Budget.stats;
}

val solve :
  ?budget:Budget.t ->
  ?forbid:(int -> bool) ->
  ?incumbent:int array * int ->
  ?prefix:int array ->
  problem ->
  solution
(** [forbid slot] excludes a slot from every assignment (quarantined
    hardware); raises [Invalid_argument] if fewer than [num_items] slots
    remain.

    For {!Parallel}: [incumbent (a, cost)] starts the search with [a] as
    the best-known assignment at [cost] — only strictly cheaper leaves
    replace it, so on an exact cost tie the incumbent is returned, and a
    seeded search visits a subset of the unseeded search's nodes.
    [prefix] pins order positions [0 .. d-1] to the given slots (a row of
    {!frontier}) and searches only that subtree; prefix placements cost
    no budget nodes. If the budget blows before any leaf and no incumbent
    was supplied, the greedy fallback ignores the prefix (feasibility
    wins over subtree membership). *)

val frontier : ?forbid:(int -> bool) -> depth:int -> problem -> int array array
(** All feasible prefixes of the first [depth] order positions ([depth]
    clamped to [0 .. num_items]), each usable as [solve ~prefix], in the
    exact ascending-lower-bound child order the DFS explores. [depth = 0]
    returns [[| [||] |]]. Calls [lower_bound] (stateful callers must pass
    the same instance they will solve with, or a fresh one). *)
