(** Minimizing branch-and-bound over injective placements with
    caller-supplied cost model.

    Used by the duration-oriented compiler variants (T-SMT, T-SMT⋆): the
    objective — the finish time of the last gate under the scheduling
    constraints of §4.2 — is not additive over placement decisions, so the
    caller provides an admissible [lower_bound] for partial placements
    (e.g. a critical path with optimistic routing durations) and the exact
    [leaf_cost] for complete placements (the list scheduler's makespan).

    Item [i] unplaced is encoded as [placement.(i) = -1]. [leaf_cost] may
    return [Int.max_int] to reject an infeasible placement (e.g. one whose
    schedule violates the coherence constraint, Eq. 4/6). *)

type problem = {
  num_items : int;
  num_slots : int;
  order : int array option;  (** placement order; default [0..n-1] *)
  lower_bound : int array -> int;
      (** admissible: never exceeds the best completion's [leaf_cost] *)
  leaf_cost : int array -> int;
}

type solution = {
  assignment : int array;
  cost : int;  (** [Int.max_int] iff no feasible placement was found *)
  stats : Budget.stats;
}

val solve : ?budget:Budget.t -> ?forbid:(int -> bool) -> problem -> solution
(** [forbid slot] excludes a slot from every assignment (quarantined
    hardware); raises [Invalid_argument] if fewer than [num_items] slots
    remain. *)
