module Pool = Nisq_util.Pool
module Metrics = Nisq_obs.Metrics
module Trace = Nisq_obs.Trace

type mode = Fanout | Portfolio

(* Work counters are deterministic (subtree/wave/racer counts depend
   only on the problem and split depth); the worker gauge is
   configuration. *)
let m_solves = Metrics.counter "solver.parallel.solves"
let m_subtrees = Metrics.counter "solver.parallel.subtrees"
let m_waves = Metrics.counter "solver.parallel.waves"
let m_racers = Metrics.counter "solver.parallel.racers"
let g_workers = Metrics.gauge "solver.parallel.workers"

(* Wave width is a fixed constant, NOT the pool size: the incumbent
   handoff points (wave barriers) must fall at the same subtree indices
   for every pool size, or the node counts would diverge. 16 keeps a
   4-worker pool busy four deep while still propagating bounds often. *)
let default_wave_size = 16

(* ------------------------------------------------------------------ *)
(* Process-wide switchboard (mirrors Telemetry/Faultkit).              *)

let cfg_domains = ref (None : int option)
let cfg_portfolio = ref false

let configure ?domains ?portfolio () =
  (match domains with
  | Some d -> cfg_domains := Some (Int.max 0 d)
  | None -> ());
  match portfolio with Some b -> cfg_portfolio := b | None -> ()

let disable () =
  cfg_domains := None;
  cfg_portfolio := false

let env_warned = ref false

let warn_env raw reason =
  if not !env_warned then begin
    env_warned := true;
    Nisq_obs.Events.emit ~domain:"solver" Nisq_obs.Events.Warn
      (Printf.sprintf
         "nisq: warning: ignoring NISQ_SOLVER_DOMAINS=%S (%s); solver stays \
          sequential"
         raw reason)
      ~fields:
        [ ("env", "NISQ_SOLVER_DOMAINS"); ("value", raw); ("reason", reason) ]
  end

let truthy v =
  match String.lowercase_ascii (String.trim v) with
  | "1" | "true" | "yes" | "on" -> true
  | _ -> false

let init_from_env () =
  (match Sys.getenv_opt "NISQ_SOLVER_DOMAINS" with
  | None -> ()
  | Some raw -> (
      match int_of_string_opt (String.trim raw) with
      | None -> warn_env raw "not an integer"
      | Some n when n < 0 -> warn_env raw "negative"
      | Some n -> cfg_domains := Some n));
  match Sys.getenv_opt "NISQ_SOLVER_PORTFOLIO" with
  | Some v when truthy v -> cfg_portfolio := true
  | _ -> ()

let enabled () = !cfg_domains <> None

let mode_tag () =
  match !cfg_domains with
  | None -> "seq"
  | Some _ -> if !cfg_portfolio then "portfolio" else "fanout"

let default_mode () = if !cfg_portfolio then Portfolio else Fanout

(* The dedicated solver pool. Separate from [Pool.default] so a figure
   cell running as a default-pool task can submit its solve here without
   tripping the same-pool re-entrancy guard, and sized independently
   (NISQ_SOLVER_DOMAINS vs NISQ_DOMAINS). Rebuilt when the configured
   size changes; the stale pool is shut down so its workers don't leak. *)
let pool_state = ref (None : (int * Pool.t) option)
let pool_mutex = Mutex.create ()
let pool_at_exit = ref false

let pool () =
  let want = match !cfg_domains with Some n -> n | None -> 0 in
  Mutex.lock pool_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock pool_mutex) @@ fun () ->
  match !pool_state with
  | Some (sz, p) when sz = want -> p
  | prev ->
      (match prev with Some (_, p) -> Pool.shutdown p | None -> ());
      let p = Pool.create ~size:want () in
      pool_state := Some (want, p);
      if not !pool_at_exit then begin
        pool_at_exit := true;
        at_exit (fun () ->
            match !pool_state with
            | Some (_, p) -> Pool.shutdown p
            | None -> ())
      end;
      p

(* ------------------------------------------------------------------ *)
(* Shared wave machinery.                                              *)

(* Remaining node allowance across waves; [max_int] encodes "unlimited"
   so the per-wave arithmetic stays branch-light. *)
let initial_nodes (budget : Budget.t) =
  match budget.max_nodes with Some n -> n | None -> max_int

let wave_budget (budget : Budget.t) ~t0 ~remaining =
  let max_nodes = if remaining = max_int then None else Some remaining in
  let max_seconds =
    match budget.max_seconds with
    | None -> None
    | Some total -> Some (total -. (Unix.gettimeofday () -. t0))
  in
  (Budget.make ?max_nodes ?max_seconds (), match max_seconds with
   | Some s -> s <= 0.0
   | None -> false)

let merged_stats ?(hits = []) ~t0 ~nodes ~proven ~degraded () =
  {
    Budget.nodes_visited = nodes;
    elapsed_seconds = Unix.gettimeofday () -. t0;
    proven_optimal = proven && not degraded;
    degraded;
    bound_hits = hits;
  }

let sum_hits stats_of sols =
  List.fold_left
    (fun acc s -> Budget.merge_hits acc (stats_of s)) [] sols

(* ------------------------------------------------------------------ *)
(* Placement (maximizing).                                             *)

let placement_fanout ~split_depth ~wave_size ~budget ~forbid ~seed ~pool p =
  let t0 = Unix.gettimeofday () in
  let depth = Int.max 0 (Int.min split_depth (p.Placement.num_items - 1)) in
  (* One shared bound-table build for the frontier and every subtree:
     the tables are immutable, each subtree search allocates only its
     own scratch. *)
  let tables = Placement.prepare ~forbid p in
  let prefixes = Placement.frontier_prepared ~depth tables in
  let k = Array.length prefixes in
  Metrics.add m_subtrees k;
  let incumbent =
    Atomic.make
      (Option.map (fun a -> (Array.copy a, Placement.score p a)) seed)
  in
  let nodes = ref 0 and degraded = ref false and proven = ref true in
  let hits = ref [] in
  let remaining = ref (initial_nodes budget) in
  let start = ref 0 in
  while !start < k do
    let sub_budget, out_of_time = wave_budget budget ~t0 ~remaining:!remaining in
    if !remaining <= 0 || out_of_time then begin
      (* Whole waves are skipped, never partial ones: a mid-wave cut
         would make the incumbent handoff timing-dependent. *)
      degraded := true;
      proven := false;
      start := k
    end
    else begin
      Metrics.incr m_waves;
      let w = Int.min wave_size (k - !start) in
      let base = !start in
      let results =
        Pool.parallel_chunks pool ~chunks:w (fun i ->
            (* No writer runs during the wave, so this read is the
               wave-start value on every domain. *)
            Placement.solve_prepared ~budget:sub_budget
              ?incumbent:(Atomic.get incumbent) ~prefix:prefixes.(base + i)
              tables)
      in
      (* Barrier reached: commit results in submission order. Ties keep
         the earliest subtree — the order the sequential DFS would have
         found them. *)
      List.iter
        (fun (sol : Placement.solution) ->
          nodes := !nodes + sol.stats.nodes_visited;
          hits := Budget.merge_hits !hits sol.stats.bound_hits;
          if !remaining <> max_int then
            remaining := Int.max 0 (!remaining - sol.stats.nodes_visited);
          if sol.stats.degraded then begin
            degraded := true;
            proven := false
          end;
          let improved =
            match Atomic.get incumbent with
            | None -> true
            | Some (_, obj) -> sol.objective > obj
          in
          if improved then
            Atomic.set incumbent (Some (Array.copy sol.assignment, sol.objective)))
        results;
      start := base + w
    end
  done;
  match Atomic.get incumbent with
  | None -> assert false (* every subtree returns a feasible assignment *)
  | Some (assignment, objective) ->
      {
        Placement.assignment;
        objective;
        stats =
          merged_stats ~hits:!hits ~t0 ~nodes:!nodes ~proven:!proven
            ~degraded:!degraded ();
      }

(* Portfolio orderings: the sequential involvement order, a
   unary-spread order (items whose readout reliabilities differ most
   across slots first), its reverse, and a fixed-seed shuffle. All
   deterministic functions of the problem. *)
let placement_orderings (p : Placement.problem) =
  let base = Placement.default_order p in
  let n = Array.length base in
  let spread =
    Array.init n (fun i ->
        let row = p.unary.(i) in
        Array.fold_left Float.max neg_infinity row
        -. Array.fold_left Float.min infinity row)
  in
  let unary = Array.init n Fun.id in
  Array.sort
    (fun a b ->
      let c = Float.compare spread.(b) spread.(a) in
      if c <> 0 then c else compare a b)
    unary;
  let rev = Array.init n (fun i -> base.(n - 1 - i)) in
  let shuffled =
    let a = Array.init n Fun.id in
    Nisq_util.Rng.shuffle (Nisq_util.Rng.create 0x50F7) a;
    a
  in
  [| base; unary; rev; shuffled |]

let placement_portfolio ~budget ~forbid ~seed ~pool p =
  let t0 = Unix.gettimeofday () in
  let incumbent =
    Option.map (fun a -> (Array.copy a, Placement.score p a)) seed
  in
  let orders = placement_orderings p in
  let k = Array.length orders in
  Metrics.add m_racers k;
  (* Each racer gets its own tables (the order changes every bound
     table), built up front so racer wall time is pure search. *)
  let tables =
    Array.map (fun order -> Placement.prepare ~forbid ~order p) orders
  in
  let sols =
    Pool.parallel_chunks pool ~chunks:k (fun i ->
        Placement.solve_prepared ~budget ?incumbent tables.(i))
  in
  let nodes =
    List.fold_left (fun acc (s : Placement.solution) ->
        acc + s.stats.nodes_visited)
      0 sols
  in
  (* First proof wins; with no proof, best objective at the lowest racer
     index. Both rules are submission-order deterministic. *)
  let winner =
    match
      List.find_opt (fun (s : Placement.solution) -> s.stats.proven_optimal) sols
    with
    | Some s -> s
    | None ->
        List.fold_left
          (fun (best : Placement.solution) (s : Placement.solution) ->
            if s.objective > best.objective then s else best)
          (List.hd sols) (List.tl sols)
  in
  let proven = winner.stats.proven_optimal in
  {
    winner with
    stats =
      merged_stats
        ~hits:
          (sum_hits (fun (s : Placement.solution) -> s.stats.bound_hits) sols)
        ~t0 ~nodes ~proven ~degraded:(not proven) ();
  }

let solve_placement ?mode ?(split_depth = 2) ?(wave_size = default_wave_size)
    ?(budget = Budget.unlimited) ?(forbid = fun _ -> false) ?seed ~pool p =
  let mode = match mode with Some m -> m | None -> default_mode () in
  Metrics.incr m_solves;
  Metrics.set g_workers (float_of_int (Pool.size pool));
  let tag = match mode with Fanout -> "fanout" | Portfolio -> "portfolio" in
  Trace.with_span "solve.parallel" ~attrs:[ ("mode", tag) ] @@ fun () ->
  match mode with
  | Fanout -> placement_fanout ~split_depth ~wave_size ~budget ~forbid ~seed ~pool p
  | Portfolio -> placement_portfolio ~budget ~forbid ~seed ~pool p

(* ------------------------------------------------------------------ *)
(* Makespan (minimizing). Same protocol with [<] in place of [>]; the
   problem arrives as a thunk because T-SMT⋆'s incremental lower bound
   is stateful, so every worker needs a private instance.              *)

let makespan_fanout ~split_depth ~wave_size ~budget ~forbid ~seed ~pool make_problem =
  let t0 = Unix.gettimeofday () in
  let p0 = make_problem () in
  let depth = Int.max 0 (Int.min split_depth (p0.Makespan.num_items - 1)) in
  let prefixes = Makespan.frontier ~forbid ~depth p0 in
  let k = Array.length prefixes in
  Metrics.add m_subtrees k;
  let incumbent =
    Atomic.make
      (Option.map (fun a -> (Array.copy a, p0.Makespan.leaf_cost a)) seed)
  in
  let nodes = ref 0 and degraded = ref false and proven = ref true in
  let hits = ref [] in
  let remaining = ref (initial_nodes budget) in
  let start = ref 0 in
  while !start < k do
    let sub_budget, out_of_time = wave_budget budget ~t0 ~remaining:!remaining in
    if !remaining <= 0 || out_of_time then begin
      degraded := true;
      proven := false;
      start := k
    end
    else begin
      Metrics.incr m_waves;
      let w = Int.min wave_size (k - !start) in
      let base = !start in
      let results =
        Pool.parallel_chunks pool ~chunks:w (fun i ->
            let p = make_problem () in
            Makespan.solve ~budget:sub_budget ~forbid
              ?incumbent:(Atomic.get incumbent) ~prefix:prefixes.(base + i) p)
      in
      List.iter
        (fun (sol : Makespan.solution) ->
          nodes := !nodes + sol.stats.nodes_visited;
          hits := Budget.merge_hits !hits sol.stats.bound_hits;
          if !remaining <> max_int then
            remaining := Int.max 0 (!remaining - sol.stats.nodes_visited);
          if sol.stats.degraded then begin
            degraded := true;
            proven := false
          end;
          let improved =
            match Atomic.get incumbent with
            | None -> true
            | Some (_, cost) -> sol.cost < cost
          in
          if improved then
            Atomic.set incumbent (Some (Array.copy sol.assignment, sol.cost)))
        results;
      start := base + w
    end
  done;
  match Atomic.get incumbent with
  | None -> assert false
  | Some (assignment, cost) ->
      {
        Makespan.assignment;
        cost;
        stats =
          merged_stats ~hits:!hits ~t0 ~nodes:!nodes ~proven:!proven
            ~degraded:!degraded ();
      }

let makespan_orderings (p : Makespan.problem) =
  let n = p.num_items in
  let base =
    match p.order with Some o -> Array.copy o | None -> Array.init n Fun.id
  in
  let rev = Array.init n (fun i -> base.(n - 1 - i)) in
  let shuffle seed =
    let a = Array.init n Fun.id in
    Nisq_util.Rng.shuffle (Nisq_util.Rng.create seed) a;
    a
  in
  [| base; rev; shuffle 0x5EED1; shuffle 0x5EED2 |]

let makespan_portfolio ~budget ~forbid ~seed ~pool make_problem =
  let t0 = Unix.gettimeofday () in
  let p0 = make_problem () in
  let incumbent =
    Option.map (fun a -> (Array.copy a, p0.Makespan.leaf_cost a)) seed
  in
  let orders = makespan_orderings p0 in
  let k = Array.length orders in
  Metrics.add m_racers k;
  let sols =
    Pool.parallel_chunks pool ~chunks:k (fun i ->
        let p = make_problem () in
        Makespan.solve ~budget ~forbid ?incumbent
          { p with Makespan.order = Some orders.(i) })
  in
  let nodes =
    List.fold_left (fun acc (s : Makespan.solution) ->
        acc + s.stats.nodes_visited)
      0 sols
  in
  let winner =
    match
      List.find_opt (fun (s : Makespan.solution) -> s.stats.proven_optimal) sols
    with
    | Some s -> s
    | None ->
        List.fold_left
          (fun (best : Makespan.solution) (s : Makespan.solution) ->
            if s.cost < best.cost then s else best)
          (List.hd sols) (List.tl sols)
  in
  let proven = winner.stats.proven_optimal in
  {
    winner with
    stats =
      merged_stats
        ~hits:
          (sum_hits (fun (s : Makespan.solution) -> s.stats.bound_hits) sols)
        ~t0 ~nodes ~proven ~degraded:(not proven) ();
  }

let solve_makespan ?mode ?(split_depth = 2) ?(wave_size = default_wave_size)
    ?(budget = Budget.unlimited) ?(forbid = fun _ -> false) ?seed ~pool
    make_problem =
  let mode = match mode with Some m -> m | None -> default_mode () in
  Metrics.incr m_solves;
  Metrics.set g_workers (float_of_int (Pool.size pool));
  let tag = match mode with Fanout -> "fanout" | Portfolio -> "portfolio" in
  Trace.with_span "solve.parallel" ~attrs:[ ("mode", tag) ] @@ fun () ->
  match mode with
  | Fanout ->
      makespan_fanout ~split_depth ~wave_size ~budget ~forbid ~seed ~pool
        make_problem
  | Portfolio -> makespan_portfolio ~budget ~forbid ~seed ~pool make_problem
