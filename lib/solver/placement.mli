(** Optimal injective placement by branch-and-bound.

    This is the optimization core standing in for Z3/νZ (§3.1): given
    [num_items] program qubits and [num_slots ≥ num_items] hardware
    locations, find an injective assignment maximizing an additive
    objective

    {v Σ_i unary(i, π(i))  +  Σ_(i,j) pairwise(i,j)(π(i), π(j)) v}

    which is exactly the linearized log-reliability objective of Eq. 12
    once [unary] carries weighted readout log-reliabilities and [pairwise]
    carries CNOT-count-weighted routed-CNOT log-reliabilities (the EC
    matrix of Constraint 11). Mapping constraints 1–2 (distinctness,
    range) are structural here.

    The search places the most pairwise-involved items first, explores
    slots in decreasing incremental-score order, and prunes with an
    admissible bound built from per-pair/per-item maxima, so on
    paper-scale instances it proves optimality; on larger instances the
    budget truncates the search and the best-found placement is returned
    with [proven_optimal = false] (the paper's "SMT stops scaling past 32
    qubits" regime, §7.4). *)

type problem = {
  num_items : int;
  num_slots : int;
  unary : float array array;  (** [num_items × num_slots] *)
  pairwise : (int * int * float array array) list;
      (** [(i, j, m)] with [i < j]; [m] is [num_slots × num_slots],
          [m.(si).(sj)] scored when [π(i) = si, π(j) = sj]. Multiple
          entries for one pair are summed. *)
}

type solution = {
  assignment : int array;  (** item → slot *)
  objective : float;
  stats : Budget.stats;
}

val solve : ?budget:Budget.t -> ?forbid:(int -> bool) -> problem -> solution
(** Raises [Invalid_argument] on malformed problems (more items than
    slots, bad matrix dimensions, out-of-range pair indices). Always
    returns a feasible assignment: even when the budget is blown, the
    first DFS descent has completed. [forbid slot] excludes a slot from
    every assignment (quarantined hardware); raises [Invalid_argument]
    if fewer than [num_items] slots remain. *)

val brute_force : problem -> int array * float
(** Exhaustive enumeration over all injective assignments — exponential;
    only for cross-checking the solver in tests. *)

val score : problem -> int array -> float
(** Objective value of a complete assignment. *)
