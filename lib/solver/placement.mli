(** Optimal injective placement by branch-and-bound.

    This is the optimization core standing in for Z3/νZ (§3.1): given
    [num_items] program qubits and [num_slots ≥ num_items] hardware
    locations, find an injective assignment maximizing an additive
    objective

    {v Σ_i unary(i, π(i))  +  Σ_(i,j) pairwise(i,j)(π(i), π(j)) v}

    which is exactly the linearized log-reliability objective of Eq. 12
    once [unary] carries weighted readout log-reliabilities and [pairwise]
    carries CNOT-count-weighted routed-CNOT log-reliabilities (the EC
    matrix of Constraint 11). Mapping constraints 1–2 (distinctness,
    range) are structural here.

    The search places the most pairwise-involved items first, explores
    slots in decreasing incremental-score order, and prunes with an
    admissible bound built from per-pair/per-item maxima, so on
    paper-scale instances it proves optimality; on larger instances the
    budget truncates the search and the best-found placement is returned
    with [proven_optimal = false] (the paper's "SMT stops scaling past 32
    qubits" regime, §7.4). *)

type problem = {
  num_items : int;
  num_slots : int;
  unary : float array array;  (** [num_items × num_slots] *)
  pairwise : (int * int * float array array) list;
      (** [(i, j, m)] with [i < j]; [m] is [num_slots × num_slots],
          [m.(si).(sj)] scored when [π(i) = si, π(j) = sj]. Multiple
          entries for one pair are summed. *)
}

type solution = {
  assignment : int array;  (** item → slot *)
  objective : float;
  stats : Budget.stats;
}

val solve :
  ?budget:Budget.t ->
  ?forbid:(int -> bool) ->
  ?order:int array ->
  ?incumbent:int array * float ->
  ?prefix:int array ->
  problem ->
  solution
(** Raises [Invalid_argument] on malformed problems (more items than
    slots, bad matrix dimensions, out-of-range pair indices). Always
    returns a feasible assignment: even when the budget is blown, the
    first DFS descent has completed. [forbid slot] excludes a slot from
    every assignment (quarantined hardware); raises [Invalid_argument]
    if fewer than [num_items] slots remain.

    The remaining options exist for {!Parallel}:

    - [order] overrides the involvement-sorted variable order with an
      explicit permutation of [0 .. num_items-1] (portfolio racing).
    - [incumbent (a, obj)] starts the search with [a] as the best-known
      assignment at objective [obj], so pruning bites from node one.
      Only strictly better leaves replace it: on an exact objective tie
      the incumbent's assignment is returned, which is why the default
      compile path stays unseeded. A seeded search visits a subset of
      the unseeded search's nodes (the bound is never weaker along the
      identical exploration order), so seeding never increases
      [nodes_visited].
    - [prefix] pins order positions [0 .. d-1] to the given slots (a row
      of {!frontier}) and searches only the subtree below; prefix
      placements count constraint evaluations but no budget nodes. *)

val default_order : problem -> int array
(** The involvement-sorted variable order [solve] uses when [?order] is
    omitted — the identity baseline for portfolio orderings. *)

type tables
(** The immutable half of the search state: variable order plus every
    admissible-bound table (slot rankings, pair-cell rankings,
    assignment-bound weights). Building one costs a stack of sorts;
    sharing one across searches amortizes that. [tables] is read-only
    after construction and safe to share across domains — each search
    allocates its own mutable scratch. *)

val prepare : ?forbid:(int -> bool) -> ?order:int array -> problem -> tables
(** Validates the problem and builds the shared tables. Raises
    [Invalid_argument] exactly where {!solve} would. *)

val solve_prepared :
  ?budget:Budget.t ->
  ?incumbent:int array * float ->
  ?prefix:int array ->
  tables ->
  solution
(** [solve] against pre-built tables: identical results, none of the
    per-call sorting. This is what {!Parallel} calls per subtree. *)

val frontier_prepared : depth:int -> tables -> int array array
(** {!frontier} against pre-built tables. *)

val frontier :
  ?forbid:(int -> bool) -> ?order:int array -> depth:int -> problem ->
  int array array
(** All feasible prefixes of the first [depth] variable-order positions
    ([depth] is clamped to [0 .. num_items]), each a slot array usable as
    [solve ~prefix], listed in the exact child order the DFS explores.
    Together the subtrees partition the search space: solving each and
    merging in frontier order is equivalent to the sequential search.
    [depth = 0] returns [[| [||] |]] (the whole space as one subtree). *)

val brute_force : problem -> int array * float
(** Exhaustive enumeration over all injective assignments — exponential;
    only for cross-checking the solver in tests. *)

val score : problem -> int array -> float
(** Objective value of a complete assignment. *)
