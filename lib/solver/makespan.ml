type problem = {
  num_items : int;
  num_slots : int;
  order : int array option;
  lower_bound : int array -> int;
  leaf_cost : int array -> int;
}

type solution = { assignment : int array; cost : int; stats : Budget.stats }

let m_evals = Nisq_obs.Metrics.counter "solver.constraint_evals"
let m_bound_lower = Nisq_obs.Metrics.counter "solver.bound.lower_bound"

let validate ~forbid p =
  if p.num_items <= 0 then invalid_arg "Makespan: no items";
  if p.num_slots < p.num_items then
    invalid_arg "Makespan: fewer slots than items";
  let allowed = ref 0 in
  for slot = 0 to p.num_slots - 1 do
    if not (forbid slot) then incr allowed
  done;
  if !allowed < p.num_items then
    invalid_arg "Makespan: fewer live slots than items (quarantine)";
  let order =
    match p.order with Some o -> o | None -> Array.init p.num_items Fun.id
  in
  if Array.length order <> p.num_items then
    invalid_arg "Makespan: bad order length";
  order

let solve ?(budget = Budget.unlimited) ?(forbid = fun _ -> false) ?incumbent
    ?prefix p =
  let n = p.num_items and s = p.num_slots in
  let order = validate ~forbid p in
  let clock = Budget.Clock.start budget in
  (* Local tally, batch-published once after the search (see Placement). *)
  let evals = ref 0 in
  (* Candidates discarded because their makespan lower bound could not
     beat the incumbent — the report's single-rung "bound ladder". *)
  let hit_lower = ref 0 in
  let placement = Array.make n (-1) in
  let used = Array.make s false in
  let best = Array.make n (-1) in
  let best_cost = ref Int.max_int in
  (* Seeded incumbent: pruning bites from node one, and on an exact cost
     tie the incumbent's assignment is returned (candidate gathering and
     leaf acceptance are both strict [<]). A seeded search visits a
     subset of the unseeded search's nodes. *)
  (match incumbent with
  | None -> ()
  | Some (a, cost) ->
      if Array.length a <> n then invalid_arg "Makespan: incumbent length mismatch";
      Array.blit a 0 best 0 n;
      best_cost := cost);
  let blown = ref false in
  (* Preallocated per-depth candidate arrays, filled and sorted in place.
     Candidates are gathered in descending slot order and sorted with a
     stable insertion sort on the bound, which reproduces — entry for
     entry — the order the old cons-and-[List.sort] loop explored
     (ascending bound, ties by descending slot). *)
  let cand_slot = Array.init n (fun _ -> Array.make s 0) in
  let cand_lb = Array.init n (fun _ -> Array.make s 0) in
  let rec dfs pos =
    if !blown then ()
    else if not (Budget.Clock.tick clock) then blown := true
    else if pos = n then begin
      let c = p.leaf_cost placement in
      if c < !best_cost then begin
        best_cost := c;
        Array.blit placement 0 best 0 n
      end
    end
    else begin
      let item = order.(pos) in
      (* Explore slots in increasing lower-bound order. *)
      let slots = cand_slot.(pos) and lbs = cand_lb.(pos) in
      let k = ref 0 in
      for slot = s - 1 downto 0 do
        if not used.(slot) && not (forbid slot) then begin
          placement.(item) <- slot;
          let lb = p.lower_bound placement in
          placement.(item) <- -1;
          Stdlib.incr evals;
          if lb < !best_cost then begin
            slots.(!k) <- slot;
            lbs.(!k) <- lb;
            incr k
          end
          else Stdlib.incr hit_lower
        end
      done;
      let k = !k in
      for i = 1 to k - 1 do
        let lb = lbs.(i) and sl = slots.(i) in
        let j = ref (i - 1) in
        while !j >= 0 && lb < lbs.(!j) do
          lbs.(!j + 1) <- lbs.(!j);
          slots.(!j + 1) <- slots.(!j);
          decr j
        done;
        lbs.(!j + 1) <- lb;
        slots.(!j + 1) <- sl
      done;
      for c = 0 to k - 1 do
        let slot = slots.(c) and lb = lbs.(c) in
        if not !blown then begin
          if lb < !best_cost then begin
            placement.(item) <- slot;
            used.(slot) <- true;
            dfs (pos + 1);
            used.(slot) <- false;
            placement.(item) <- -1
          end
          else Stdlib.incr hit_lower
        end
      done
    end
  in
  (* Replay a frontier prefix: slot [pre.(pos)] for item [order.(pos)].
     Bookkeeping, not search — no budget ticks, no bound calls. *)
  let start_pos =
    match prefix with
    | None -> 0
    | Some pre ->
        let d = Array.length pre in
        if d > n then invalid_arg "Makespan: prefix longer than item count";
        for pos = 0 to d - 1 do
          let slot = pre.(pos) in
          if slot < 0 || slot >= s || used.(slot) || forbid slot then
            invalid_arg "Makespan: bad prefix slot";
          placement.(order.(pos)) <- slot;
          used.(slot) <- true
        done;
        d
  in
  dfs start_pos;
  (* If the budget blew before any leaf (and no incumbent was supplied),
     fall back to a greedy completion ignoring bounds — and ignoring any
     prefix — so callers always get an assignment. *)
  if !best_cost = Int.max_int && Array.exists (fun v -> v = -1) best then begin
    Array.fill placement 0 n (-1);
    Array.fill used 0 s false;
    Array.iter
      (fun item ->
        let chosen = ref (-1) and chosen_lb = ref Int.max_int in
        for slot = 0 to s - 1 do
          if not used.(slot) && not (forbid slot) then begin
            placement.(item) <- slot;
            let lb = p.lower_bound placement in
            placement.(item) <- -1;
            Stdlib.incr evals;
            if lb < !chosen_lb then begin
              chosen_lb := lb;
              chosen := slot
            end
          end
        done;
        placement.(item) <- !chosen;
        used.(!chosen) <- true)
      order;
    Array.blit placement 0 best 0 n;
    best_cost := p.leaf_cost best
  end;
  Nisq_obs.Metrics.add m_evals !evals;
  Nisq_obs.Metrics.add m_bound_lower !hit_lower;
  {
    assignment = best;
    cost = !best_cost;
    stats =
      Budget.Clock.stats clock ~exhausted:(not !blown)
        ~bound_hits:[ ("lower_bound", !hit_lower) ];
  }

let frontier ?(forbid = fun _ -> false) ~depth p =
  let n = p.num_items and s = p.num_slots in
  let order = validate ~forbid p in
  let depth = Int.max 0 (Int.min depth n) in
  if depth = 0 then [| [||] |]
  else begin
    (* Enumerate every feasible prefix of the first [depth] order
       positions, children sorted by ascending lower bound exactly as
       the DFS explores them (no [best_cost] filter: a fresh search has
       none, and the union of subtrees must cover the whole space). *)
    let evals = ref 0 in
    let placement = Array.make n (-1) in
    let used = Array.make s false in
    let cand_slot = Array.init depth (fun _ -> Array.make s 0) in
    let cand_lb = Array.init depth (fun _ -> Array.make s 0) in
    let out = ref [] in
    let pre = Array.make depth (-1) in
    let rec go pos =
      if pos = depth then out := Array.copy pre :: !out
      else begin
        let item = order.(pos) in
        let slots = cand_slot.(pos) and lbs = cand_lb.(pos) in
        let k = ref 0 in
        for slot = s - 1 downto 0 do
          if not used.(slot) && not (forbid slot) then begin
            placement.(item) <- slot;
            let lb = p.lower_bound placement in
            placement.(item) <- -1;
            Stdlib.incr evals;
            slots.(!k) <- slot;
            lbs.(!k) <- lb;
            incr k
          end
        done;
        let k = !k in
        for i = 1 to k - 1 do
          let lb = lbs.(i) and sl = slots.(i) in
          let j = ref (i - 1) in
          while !j >= 0 && lb < lbs.(!j) do
            lbs.(!j + 1) <- lbs.(!j);
            slots.(!j + 1) <- slots.(!j);
            decr j
          done;
          lbs.(!j + 1) <- lb;
          slots.(!j + 1) <- sl
        done;
        for c = 0 to k - 1 do
          let slot = slots.(c) in
          pre.(pos) <- slot;
          placement.(item) <- slot;
          used.(slot) <- true;
          go (pos + 1);
          used.(slot) <- false;
          placement.(item) <- -1
        done
      end
    in
    go 0;
    Nisq_obs.Metrics.add m_evals !evals;
    Array.of_list (List.rev !out)
  end
