type problem = {
  num_items : int;
  num_slots : int;
  unary : float array array;
  pairwise : (int * int * float array array) list;
}

type solution = {
  assignment : int array;
  objective : float;
  stats : Budget.stats;
}

let validate p =
  if p.num_items <= 0 then invalid_arg "Placement: no items";
  if p.num_slots < p.num_items then
    invalid_arg "Placement: fewer slots than items";
  if Array.length p.unary <> p.num_items then
    invalid_arg "Placement: unary row count mismatch";
  Array.iter
    (fun row ->
      if Array.length row <> p.num_slots then
        invalid_arg "Placement: unary column count mismatch")
    p.unary;
  List.iter
    (fun (i, j, m) ->
      if i < 0 || j < 0 || i >= p.num_items || j >= p.num_items || i >= j then
        invalid_arg "Placement: bad pair indices (need 0 <= i < j < items)";
      if
        Array.length m <> p.num_slots
        || Array.exists (fun r -> Array.length r <> p.num_slots) m
      then invalid_arg "Placement: pairwise matrix dimension mismatch")
    p.pairwise

let score p assignment =
  let total = ref 0.0 in
  for i = 0 to p.num_items - 1 do
    total := !total +. p.unary.(i).(assignment.(i))
  done;
  List.iter
    (fun (i, j, m) -> total := !total +. m.(assignment.(i)).(assignment.(j)))
    p.pairwise;
  !total

(* Merge duplicate pair entries into one matrix per (i, j). *)
let merged_pairs p =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (i, j, m) ->
      match Hashtbl.find_opt tbl (i, j) with
      | None -> Hashtbl.add tbl (i, j) (Array.map Array.copy m)
      | Some acc ->
          Array.iteri
            (fun si row -> Array.iteri (fun sj v -> acc.(si).(sj) <- acc.(si).(sj) +. v) row)
            m)
    p.pairwise;
  Hashtbl.fold (fun (i, j) m acc -> (i, j, m) :: acc) tbl []

let matrix_max m =
  Array.fold_left
    (fun acc row -> Array.fold_left Float.max acc row)
    neg_infinity m

let m_evals = Nisq_obs.Metrics.counter "solver.constraint_evals"

let solve ?(budget = Budget.unlimited) ?(forbid = fun _ -> false) p =
  validate p;
  let pairs = merged_pairs p in
  let n = p.num_items and s = p.num_slots in
  let allowed = ref 0 in
  for slot = 0 to s - 1 do
    if not (forbid slot) then incr allowed
  done;
  if !allowed < n then
    invalid_arg "Placement: fewer live slots than items (quarantine)";
  (* Item order: most pairwise involvement first, then highest degree of
     unary spread — placing constrained items early tightens the bound. *)
  let involvement = Array.make n 0.0 in
  List.iter
    (fun (i, j, m) ->
      let span = Float.abs (matrix_max m) in
      involvement.(i) <- involvement.(i) +. span +. 1.0;
      involvement.(j) <- involvement.(j) +. span +. 1.0)
    pairs;
  let order = Array.init n Fun.id in
  Array.sort (fun a b -> Float.compare involvement.(b) involvement.(a)) order;
  (* rank.(item) = position in placement order *)
  let rank = Array.make n 0 in
  Array.iteri (fun pos item -> rank.(item) <- pos) order;
  (* Pair bookkeeping, from the perspective of the later-placed item:
     when we place item [i], every pair (i, j) with rank.(j) < rank.(i)
     contributes exactly, and every pair with rank.(j) > rank.(i) is
     bounded by its row maximum. *)
  let earlier_pairs = Array.make n [] (* (partner, matrix_lookup) *) in
  let unary_max =
    Array.map (fun row -> Array.fold_left Float.max neg_infinity row) p.unary
  in
  List.iter
    (fun (i, j, m) ->
      let earlier, later, lookup =
        if rank.(i) < rank.(j) then
          (i, j, fun s_earlier s_later -> m.(s_earlier).(s_later))
        else (j, i, fun s_earlier s_later -> m.(s_later).(s_earlier))
      in
      earlier_pairs.(later) <- (earlier, lookup) :: earlier_pairs.(later))
    pairs;
  (* optimistic.(pos) = admissible upper bound on the total score of items
     order.(pos..n-1): their best unary plus, for each pair whose later
     endpoint is among them, the pair's global max. *)
  let optimistic = Array.make (n + 1) 0.0 in
  let pair_max_into = Array.make n 0.0 in
  List.iter
    (fun (i, j, m) ->
      let later = if rank.(i) < rank.(j) then j else i in
      pair_max_into.(later) <- pair_max_into.(later) +. matrix_max m)
    pairs;
  for pos = n - 1 downto 0 do
    let item = order.(pos) in
    optimistic.(pos) <- optimistic.(pos + 1) +. unary_max.(item) +. pair_max_into.(item)
  done;
  let clock = Budget.Clock.start budget in
  (* Local tally, batch-published once — keeps the dfs inner loop free of
     atomics and the published total deterministic. *)
  let evals = ref 0 in
  let placed = Array.make n (-1) in
  let used = Array.make s false in
  let best = Array.make n (-1) in
  let best_score = ref neg_infinity in
  let have_solution = ref false in
  let blown = ref false in
  let rec dfs pos acc =
    if !blown then ()
    else if not (Budget.Clock.tick clock) then begin
      blown := true;
      (* Finish the current descent greedily so we always return something. *)
      if not !have_solution then complete_greedily pos acc
    end
    else if pos = n then begin
      if acc > !best_score then begin
        best_score := acc;
        Array.blit placed 0 best 0 n;
        have_solution := true
      end
    end
    else begin
      let item = order.(pos) in
      (* Candidate slots sorted by incremental score, best first. *)
      let candidates = ref [] in
      for slot = s - 1 downto 0 do
        if not used.(slot) && not (forbid slot) then begin
          let inc = ref p.unary.(item).(slot) in
          List.iter
            (fun (partner, lookup) -> inc := !inc +. lookup placed.(partner) slot)
            earlier_pairs.(item);
          Stdlib.incr evals;
          candidates := (slot, !inc) :: !candidates
        end
      done;
      let sorted =
        List.sort (fun (_, a) (_, b) -> Float.compare b a) !candidates
      in
      List.iter
        (fun (slot, inc) ->
          let bound = acc +. inc +. optimistic.(pos + 1) in
          if bound > !best_score || not !have_solution then begin
            placed.(item) <- slot;
            used.(slot) <- true;
            dfs (pos + 1) (acc +. inc);
            used.(slot) <- false;
            placed.(item) <- -1
          end)
        sorted
    end
  and complete_greedily pos acc =
    (* Budget blown before any leaf: finish by taking the best slot at
       each remaining level without branching. *)
    if pos = n then begin
      best_score := acc;
      Array.blit placed 0 best 0 n;
      have_solution := true
    end
    else begin
      let item = order.(pos) in
      let best_slot = ref (-1) and best_inc = ref neg_infinity in
      for slot = 0 to s - 1 do
        if not used.(slot) && not (forbid slot) then begin
          let inc = ref p.unary.(item).(slot) in
          List.iter
            (fun (partner, lookup) -> inc := !inc +. lookup placed.(partner) slot)
            earlier_pairs.(item);
          Stdlib.incr evals;
          if !inc > !best_inc then begin
            best_inc := !inc;
            best_slot := slot
          end
        end
      done;
      placed.(item) <- !best_slot;
      used.(!best_slot) <- true;
      complete_greedily (pos + 1) (acc +. !best_inc)
    end
  in
  dfs 0 0.0;
  Nisq_obs.Metrics.add m_evals !evals;
  {
    assignment = best;
    objective = !best_score;
    stats = Budget.Clock.stats clock ~exhausted:(not !blown);
  }

let brute_force p =
  validate p;
  let n = p.num_items and s = p.num_slots in
  let assignment = Array.make n (-1) in
  let used = Array.make s false in
  let best = Array.make n (-1) in
  let best_score = ref neg_infinity in
  let rec go i =
    if i = n then begin
      let v = score p assignment in
      if v > !best_score then begin
        best_score := v;
        Array.blit assignment 0 best 0 n
      end
    end
    else
      for slot = 0 to s - 1 do
        if not used.(slot) then begin
          assignment.(i) <- slot;
          used.(slot) <- true;
          go (i + 1);
          used.(slot) <- false;
          assignment.(i) <- -1
        end
      done
  in
  go 0;
  (best, !best_score)
