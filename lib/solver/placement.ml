type problem = {
  num_items : int;
  num_slots : int;
  unary : float array array;
  pairwise : (int * int * float array array) list;
}

type solution = {
  assignment : int array;
  objective : float;
  stats : Budget.stats;
}

let validate p =
  if p.num_items <= 0 then invalid_arg "Placement: no items";
  if p.num_slots < p.num_items then
    invalid_arg "Placement: fewer slots than items";
  if Array.length p.unary <> p.num_items then
    invalid_arg "Placement: unary row count mismatch";
  Array.iter
    (fun row ->
      if Array.length row <> p.num_slots then
        invalid_arg "Placement: unary column count mismatch")
    p.unary;
  List.iter
    (fun (i, j, m) ->
      if i < 0 || j < 0 || i >= p.num_items || j >= p.num_items || i >= j then
        invalid_arg "Placement: bad pair indices (need 0 <= i < j < items)";
      if
        Array.length m <> p.num_slots
        || Array.exists (fun r -> Array.length r <> p.num_slots) m
      then invalid_arg "Placement: pairwise matrix dimension mismatch")
    p.pairwise

let score p assignment =
  let total = ref 0.0 in
  for i = 0 to p.num_items - 1 do
    total := !total +. p.unary.(i).(assignment.(i))
  done;
  List.iter
    (fun (i, j, m) -> total := !total +. m.(assignment.(i)).(assignment.(j)))
    p.pairwise;
  !total

(* Merge duplicate pair entries into one matrix per (i, j). *)
let merged_pairs p =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (i, j, m) ->
      match Hashtbl.find_opt tbl (i, j) with
      | None -> Hashtbl.add tbl (i, j) (Array.map Array.copy m)
      | Some acc ->
          Array.iteri
            (fun si row -> Array.iteri (fun sj v -> acc.(si).(sj) <- acc.(si).(sj) +. v) row)
            m)
    p.pairwise;
  Hashtbl.fold (fun (i, j) m acc -> (i, j, m) :: acc) tbl []

let matrix_max m =
  Array.fold_left
    (fun acc row -> Array.fold_left Float.max acc row)
    neg_infinity m

let m_evals = Nisq_obs.Metrics.counter "solver.constraint_evals"

(* Per-level bound-ladder prune tallies; deterministic for the same
   reason node counts are (the subtree trajectories are). *)
let m_bound_static = Nisq_obs.Metrics.counter "solver.bound.static"
let m_bound_cheap = Nisq_obs.Metrics.counter "solver.bound.cheap"
let m_bound_tight = Nisq_obs.Metrics.counter "solver.bound.tight"
let m_bound_matching = Nisq_obs.Metrics.counter "solver.bound.matching"

(* Item order: most pairwise involvement first — placing constrained
   items early tightens the bound. *)
let involvement_order pairs n =
  let involvement = Array.make n 0.0 in
  List.iter
    (fun (i, j, m) ->
      let span = Float.abs (matrix_max m) in
      involvement.(i) <- involvement.(i) +. span +. 1.0;
      involvement.(j) <- involvement.(j) +. span +. 1.0)
    pairs;
  let order = Array.init n Fun.id in
  Array.sort (fun a b -> Float.compare involvement.(b) involvement.(a)) order;
  order

let default_order p =
  validate p;
  involvement_order (merged_pairs p) p.num_items

let check_order n = function
  | None -> ()
  | Some o ->
      if Array.length o <> n then invalid_arg "Placement: bad order length";
      let seen = Array.make n false in
      Array.iter
        (fun i ->
          if i < 0 || i >= n || seen.(i) then
            invalid_arg "Placement: order is not a permutation";
          seen.(i) <- true)
        o

(* Immutable, shareable half of the search state: the variable order and
   every admissible-bound table. Building these costs a stack of sorts
   (unary ranks, pair-cell rankings); one [tables] value can serve many
   searches — including concurrent subtree searches on other domains,
   which only need their own [engine] scratch. [t_forbid] is shared too:
   it must be safe to call from any domain (the calibration lookups the
   compiler passes are pure). *)
type tables = {
  t_p : problem;
  t_n : int;
  t_s : int;
  t_forbid : int -> bool;
  t_banned : bool array;
  t_order : int array;
  t_optimistic : float array;
  t_pair_max_into : float array;
  t_unary_rank : int array array;
  t_ep_partner : int array array;
  t_ep_mat : float array array array;
  t_ep_rowmax : float array array array;
  t_ep_gmax : float array array;
}

(* Precomputed search state shared by [solve] and [frontier]: the
   variable order, the admissible bound tables, and the preallocated
   per-depth scratch of the allocation-free DFS. One engine serves one
   search — [placed]/[used] are mutable scratch, not shared state. *)
type engine = {
  p : problem;
  n : int;
  s : int;
  forbid : int -> bool;
  banned : bool array;
  order : int array;
  optimistic : float array;
  pair_max_into : float array;
  unary_rank : int array array;
  ep_partner : int array array;
  ep_mat : float array array array;
  (* Per earlier-pair bound tables. Cheap level (O(1) per pair):
     [ep_rowmax.(item).(k).(se)] is the max over the later item's slots
     with the earlier partner on [se]; [ep_gmax.(item).(k)] the
     whole-matrix max. Both levels are admissible, so tightening prunes
     nodes without ever changing the returned assignment (leaves are
     only accepted on strict improvement). *)
  ep_rowmax : float array array array;
  ep_gmax : float array array;
  placed : int array;
  used : bool array;
  cand_slot : int array array;
  cand_score : float array array;
  (* Preallocated scratch for the exact-assignment bound
     [dynamic_rest_matching] (shortest-augmenting-path Hungarian):
     [mt_free] the free-slot list, [mt_w] the (remaining item × free
     slot) weight matrix flattened by [s], the rest the standard
     potential/augmenting-path arrays. *)
  mt_free : int array;
  mt_w : float array;
  mt_u : float array;
  mt_v : float array;
  mt_match : int array;
  mt_way : int array;
  mt_minv : float array;
  mt_used : bool array;
  evals : int ref;
}

let make_tables ?(forbid = fun _ -> false) ?order p =
  validate p;
  let pairs = merged_pairs p in
  let n = p.num_items and s = p.num_slots in
  (* banned.(slot) snapshots [forbid] once for the bound computations
     below; the candidate fill keeps probing the live closure, which is
     the authoritative legality check (and the hook fault injection
     relies on). *)
  let banned = Array.make s false in
  let allowed = ref 0 in
  for slot = 0 to s - 1 do
    banned.(slot) <- forbid slot;
    if not banned.(slot) then incr allowed
  done;
  if !allowed < n then
    invalid_arg "Placement: fewer live slots than items (quarantine)";
  check_order n order;
  let order =
    match order with
    | Some o -> Array.copy o
    | None -> involvement_order pairs n
  in
  (* rank.(item) = position in placement order *)
  let rank = Array.make n 0 in
  Array.iteri (fun pos item -> rank.(item) <- pos) order;
  (* Pair bookkeeping, from the perspective of the later-placed item:
     when we place item [i], every pair (i, j) with rank.(j) < rank.(i)
     contributes exactly, and every pair with rank.(j) > rank.(i) is
     bounded by its row maximum. Each pair is flattened into one
     row-major array oriented (earlier slot, later slot), replacing the
     per-pair closures of the old inner loop with an indexed load; the
     per-item traversal order (and with it the float summation order)
     matches the old closure lists exactly. *)
  let earlier_pairs = Array.make n [] (* (partner, oriented flat matrix) *) in
  let unary_max =
    Array.map (fun row -> Array.fold_left Float.max neg_infinity row) p.unary
  in
  List.iter
    (fun (i, j, m) ->
      let earlier, later = if rank.(i) < rank.(j) then (i, j) else (j, i) in
      let flat = Array.make (s * s) 0.0 in
      for se = 0 to s - 1 do
        for sl = 0 to s - 1 do
          flat.((se * s) + sl) <-
            (if earlier = i then m.(se).(sl) else m.(sl).(se))
        done
      done;
      earlier_pairs.(later) <- (earlier, flat) :: earlier_pairs.(later))
    pairs;
  let ep_partner = Array.make n [||] and ep_mat = Array.make n [||] in
  for item = 0 to n - 1 do
    ep_partner.(item) <- Array.of_list (List.map fst earlier_pairs.(item));
    ep_mat.(item) <- Array.of_list (List.map snd earlier_pairs.(item))
  done;
  let ep_rowmax =
    Array.map
      (Array.map (fun flat ->
           Array.init s (fun se ->
               let m = ref neg_infinity in
               for sl = 0 to s - 1 do
                 let v = flat.((se * s) + sl) in
                 if v > !m then m := v
               done;
               !m)))
      ep_mat
  in
  let ep_gmax =
    Array.map (Array.map (Array.fold_left Float.max neg_infinity)) ep_rowmax
  in
  (* optimistic.(pos) = admissible upper bound on the total score of items
     order.(pos..n-1): their best unary plus, for each pair whose later
     endpoint is among them, the pair's global max. *)
  let optimistic = Array.make (n + 1) 0.0 in
  let pair_max_into = Array.make n 0.0 in
  List.iter
    (fun (i, j, m) ->
      let later = if rank.(i) < rank.(j) then j else i in
      pair_max_into.(later) <- pair_max_into.(later) +. matrix_max m)
    pairs;
  for pos = n - 1 downto 0 do
    let item = order.(pos) in
    optimistic.(pos) <- optimistic.(pos + 1) +. unary_max.(item) +. pair_max_into.(item)
  done;
  (* unary_rank.(item): slot indices sorted by unary score descending
     (ties by ascending slot). The dynamic bound needs "best unary over
     the slots still free", which this turns from an O(s) scan with a
     closure call per slot into a walk of the first few entries. *)
  let unary_rank =
    Array.init n (fun item ->
        let slots = Array.init s Fun.id in
        let row = p.unary.(item) in
        Array.sort
          (fun a b ->
            let c = Float.compare row.(b) row.(a) in
            if c <> 0 then c else compare a b)
          slots;
        slots)
  in
  {
    t_p = p;
    t_n = n;
    t_s = s;
    t_forbid = forbid;
    t_banned = banned;
    t_order = order;
    t_optimistic = optimistic;
    t_pair_max_into = pair_max_into;
    t_unary_rank = unary_rank;
    t_ep_partner = ep_partner;
    t_ep_mat = ep_mat;
    t_ep_rowmax = ep_rowmax;
    t_ep_gmax = ep_gmax;
  }

(* Per-search mutable scratch around shared tables; cheap (a handful of
   small array allocations) next to the sorts [make_tables] pays. *)
let engine_of_tables ~evals t =
  let n = t.t_n and s = t.t_s in
  {
    p = t.t_p;
    n;
    s;
    forbid = t.t_forbid;
    banned = t.t_banned;
    order = t.t_order;
    optimistic = t.t_optimistic;
    pair_max_into = t.t_pair_max_into;
    unary_rank = t.t_unary_rank;
    ep_partner = t.t_ep_partner;
    ep_mat = t.t_ep_mat;
    ep_rowmax = t.t_ep_rowmax;
    ep_gmax = t.t_ep_gmax;
    placed = Array.make n (-1);
    used = Array.make s false;
    (* Preallocated per-depth candidate arrays: the DFS inner loop fills
       and sorts them in place instead of consing and List.sorting a
       fresh list per node. *)
    cand_slot = Array.init n (fun _ -> Array.make s 0);
    cand_score = Array.init n (fun _ -> Array.make s 0.0);
    mt_free = Array.make s 0;
    mt_w = Array.make (n * s) 0.0;
    mt_u = Array.make (n + 1) 0.0;
    mt_v = Array.make (s + 1) 0.0;
    mt_match = Array.make (s + 1) 0;
    mt_way = Array.make (s + 1) 0;
    mt_minv = Array.make (s + 1) 0.0;
    mt_used = Array.make (s + 1) false;
    evals;
  }

(* Incremental score of placing [item] on [slot] given the current
   partial assignment: unary plus every already-placed partner's pair
   entry, summed in the original pair-list order. *)
let incremental eng item slot =
  let inc = ref eng.p.unary.(item).(slot) in
  let partners = eng.ep_partner.(item) and mats = eng.ep_mat.(item) in
  let placed = eng.placed and s = eng.s in
  for k = 0 to Array.length partners - 1 do
    inc := !inc +. Array.unsafe_get mats.(k) ((placed.(partners.(k)) * s) + slot)
  done;
  Stdlib.incr eng.evals;
  !inc

(* Stable in-place insertion sort by (score desc, slot asc) — the same
   order List.sort gave the ascending-slot candidate list. Candidate
   counts are <= num_slots, where insertion sort beats allocation. *)
let sort_candidates slots scores k =
  for i = 1 to k - 1 do
    let sc = scores.(i) and sl = slots.(i) in
    let j = ref (i - 1) in
    while !j >= 0 && scores.(!j) < sc do
      scores.(!j + 1) <- scores.(!j);
      slots.(!j + 1) <- slots.(!j);
      decr j
    done;
    scores.(!j + 1) <- sc;
    slots.(!j + 1) <- sl
  done

(* Fill and sort the candidate arrays for depth [pos]; returns the
   candidate count. Probes the live [forbid] closure per slot, exactly
   as the DFS always has. *)
let fill_candidates eng pos =
  let item = eng.order.(pos) in
  let slots = eng.cand_slot.(pos) and scores = eng.cand_score.(pos) in
  let k = ref 0 in
  for slot = 0 to eng.s - 1 do
    if not eng.used.(slot) && not (eng.forbid slot) then begin
      slots.(!k) <- slot;
      scores.(!k) <- incremental eng item slot;
      incr k
    end
  done;
  let k = !k in
  sort_candidates slots scores k;
  k

(* Cheap admissible bound for the subtree below [pos]: per remaining
   item, its best unary over the slots still free *at this node* (the
   static bound uses the global unary max) plus an O(1)-per-pair
   ceiling — the partner's row max when the partner is committed, the
   whole-matrix max otherwise. Dominates [dynamic_rest_tight], so a
   prune here implies the tight bound would prune too: filtering with
   the cheap level first changes cost, never the node set. *)
let dynamic_rest_cheap eng pos =
  let total = ref 0.0 in
  let used = eng.used and banned = eng.banned and placed = eng.placed in
  for q = pos to eng.n - 1 do
    let item = eng.order.(q) in
    let row = eng.p.unary.(item) in
    let ranked = eng.unary_rank.(item) in
    let idx = ref 0 in
    while
      let slot = Array.unsafe_get ranked !idx in
      used.(slot) || banned.(slot)
    do
      incr idx
    done;
    let partners = eng.ep_partner.(item) in
    let rowmaxes = eng.ep_rowmax.(item) and gmaxes = eng.ep_gmax.(item) in
    let pairs_bound = ref 0.0 in
    for k = 0 to Array.length partners - 1 do
      let ps = placed.(partners.(k)) in
      pairs_bound :=
        !pairs_bound
        +.
        if ps >= 0 then Array.unsafe_get (Array.unsafe_get rowmaxes k) ps
        else Array.unsafe_get gmaxes k
    done;
    total := !total +. row.(Array.unsafe_get ranked !idx) +. !pairs_bound
  done;
  !total

(* Tight admissible bound, consulted only when the cheap level fails to
   prune. Per remaining item it maximizes the item's unary term JOINTLY
   with all committed-partner pair terms over the slots still free —
   coupling terms the cheap bound maximizes independently. Pairs whose
   partner is still unplaced keep the whole-matrix ceiling: they only
   occur at shallow nodes, where tightening buys little. Every candidate
   completion places the item on some currently-free slot, so each
   summand dominates its true contribution: admissible. *)
let dynamic_rest_tight eng pos =
  let total = ref 0.0 in
  let used = eng.used and banned = eng.banned and placed = eng.placed in
  let s = eng.s in
  for q = pos to eng.n - 1 do
    let item = eng.order.(q) in
    let row = eng.p.unary.(item) in
    let partners = eng.ep_partner.(item) in
    let mats = eng.ep_mat.(item) in
    let deg = Array.length partners in
    let joint = ref neg_infinity in
    for sl = 0 to s - 1 do
      if not (used.(sl) || banned.(sl)) then begin
        let v = ref (Array.unsafe_get row sl) in
        for k = 0 to deg - 1 do
          let ps = placed.(partners.(k)) in
          if ps >= 0 then
            v := !v +. Array.unsafe_get (Array.unsafe_get mats k) ((ps * s) + sl)
        done;
        if !v > !joint then joint := !v
      end
    done;
    let unplaced_bound = ref 0.0 in
    let gmaxes = eng.ep_gmax.(item) in
    for k = 0 to deg - 1 do
      if placed.(partners.(k)) < 0 then
        unplaced_bound := !unplaced_bound +. Array.unsafe_get gmaxes k
    done;
    total := !total +. !joint +. !unplaced_bound
  done;
  !total

(* Exact-assignment bound (the last rung of the Gilmore–Lawler ladder),
   consulted only when [dynamic_rest_tight] fails to prune. The tight
   bound still lets two remaining items claim the same free slot; here
   we solve the max-weight assignment of remaining items to free slots
   exactly (shortest-augmenting-path Hungarian on negated weights,
   O(m²·k) for m items × k slots), with weight(item, slot) = unary +
   committed-partner pair terms. Unplaced-partner pairs keep the
   additive whole-matrix ceiling. When every partner of every
   remaining item is committed — e.g. deep in a star-shaped interaction
   graph — this bound is the exact best completion, so the search
   expands little beyond the optimal descent plus its proof.
   Dominance: tight takes each item's best slot independently, the
   matching constrains those choices to be injective, so
   cheap ≥ tight ≥ matching ≥ truth — admissible, and filtering with
   the cheaper levels first never changes the node set. *)
let dynamic_rest_matching eng pos =
  let n = eng.n and s = eng.s in
  let used = eng.used and banned = eng.banned and placed = eng.placed in
  let m = n - pos in
  if m = 0 then 0.0
  else begin
    let free = eng.mt_free in
    let k = ref 0 in
    for sl = 0 to s - 1 do
      if not (used.(sl) || banned.(sl)) then begin
        free.(!k) <- sl;
        incr k
      end
    done;
    let k = !k in
    let w = eng.mt_w in
    let unplaced_bound = ref 0.0 in
    for r = 0 to m - 1 do
      let item = eng.order.(pos + r) in
      let row = eng.p.unary.(item) in
      let partners = eng.ep_partner.(item) in
      let mats = eng.ep_mat.(item) in
      let deg = Array.length partners in
      for c = 0 to k - 1 do
        let sl = Array.unsafe_get free c in
        let v = ref (Array.unsafe_get row sl) in
        for j = 0 to deg - 1 do
          let ps = placed.(partners.(j)) in
          if ps >= 0 then
            v := !v +. Array.unsafe_get (Array.unsafe_get mats j) ((ps * s) + sl)
        done;
        w.((r * s) + c) <- !v
      done;
      let gmaxes = eng.ep_gmax.(item) in
      for j = 0 to deg - 1 do
        if placed.(partners.(j)) < 0 then
          unplaced_bound := !unplaced_bound +. Array.unsafe_get gmaxes j
      done
    done;
    (* Min-cost assignment on negated weights; 1-indexed potentials,
       [mt_match.(j)] = row currently matched to column [j] (0 = none). *)
    let u = eng.mt_u and v = eng.mt_v in
    let mt = eng.mt_match and way = eng.mt_way in
    let minv = eng.mt_minv and usedc = eng.mt_used in
    Array.fill u 0 (m + 1) 0.0;
    Array.fill v 0 (k + 1) 0.0;
    Array.fill mt 0 (k + 1) 0;
    let cost i j = -.w.(((i - 1) * s) + (j - 1)) in
    for i = 1 to m do
      mt.(0) <- i;
      let j0 = ref 0 in
      Array.fill minv 0 (k + 1) infinity;
      Array.fill usedc 0 (k + 1) false;
      let break = ref false in
      while not !break do
        usedc.(!j0) <- true;
        let i0 = mt.(!j0) in
        let delta = ref infinity and j1 = ref (-1) in
        for j = 1 to k do
          if not usedc.(j) then begin
            let cur = cost i0 j -. u.(i0) -. v.(j) in
            if cur < minv.(j) then begin
              minv.(j) <- cur;
              way.(j) <- !j0
            end;
            if minv.(j) < !delta then begin
              delta := minv.(j);
              j1 := j
            end
          end
        done;
        for j = 0 to k do
          if usedc.(j) then begin
            u.(mt.(j)) <- u.(mt.(j)) +. !delta;
            v.(j) <- v.(j) -. !delta
          end
          else minv.(j) <- minv.(j) -. !delta
        done;
        j0 := !j1;
        if mt.(!j0) = 0 then break := true
      done;
      let j0 = ref !j0 in
      while !j0 <> 0 do
        let j1 = way.(!j0) in
        mt.(!j0) <- mt.(j1);
        j0 := j1
      done
    done;
    let total = ref !unplaced_bound in
    for j = 1 to k do
      if mt.(j) > 0 then total := !total +. w.(((mt.(j) - 1) * s) + (j - 1))
    done;
    !total
  end

(* Replay a frontier prefix: slot [pre.(pos)] for item [eng.order.(pos)].
   Prefix placements are bookkeeping, not search — they pay constraint
   evaluations (deterministically) but no budget ticks. *)
let apply_prefix eng prefix =
  match prefix with
  | None -> (0, 0.0)
  | Some pre ->
      let d = Array.length pre in
      if d > eng.n then invalid_arg "Placement: prefix longer than item count";
      let acc = ref 0.0 in
      for pos = 0 to d - 1 do
        let slot = pre.(pos) in
        if slot < 0 || slot >= eng.s || eng.used.(slot) || eng.forbid slot then
          invalid_arg "Placement: bad prefix slot";
        let item = eng.order.(pos) in
        let inc = incremental eng item slot in
        eng.placed.(item) <- slot;
        eng.used.(slot) <- true;
        acc := !acc +. inc
      done;
      (d, !acc)

let run eng ~budget ~incumbent ~prefix =
  let n = eng.n and s = eng.s in
  let clock = Budget.Clock.start budget in
  let placed = eng.placed and used = eng.used in
  let best = Array.make n (-1) in
  let best_score = ref neg_infinity in
  let have_solution = ref false in
  (match incumbent with
  | None -> ()
  | Some (a, obj) ->
      if Array.length a <> n then
        invalid_arg "Placement: incumbent length mismatch";
      Array.blit a 0 best 0 n;
      best_score := obj;
      have_solution := true);
  let blown = ref false in
  let hit_static = ref 0
  and hit_cheap = ref 0
  and hit_tight = ref 0
  and hit_matching = ref 0 in
  let rec dfs pos acc =
    if !blown then ()
    else if not (Budget.Clock.tick clock) then begin
      blown := true;
      (* Finish the current descent greedily so we always return something. *)
      if not !have_solution then complete_greedily pos acc
    end
    else if pos = n then begin
      if acc > !best_score then begin
        best_score := acc;
        Array.blit placed 0 best 0 n;
        have_solution := true
      end
    end
    else begin
      let item = eng.order.(pos) in
      let slots = eng.cand_slot.(pos) and scores = eng.cand_score.(pos) in
      let k = fill_candidates eng pos in
      (* Lazily computed, memoized for the node: every candidate shares
         the same free-slot set at this depth. *)
      let cheap = ref nan and tight = ref nan and matching = ref nan in
      let dyn_cheap () =
        if Float.is_nan !cheap then cheap := dynamic_rest_cheap eng (pos + 1);
        !cheap
      in
      let dyn_tight () =
        if Float.is_nan !tight then tight := dynamic_rest_tight eng (pos + 1);
        !tight
      in
      let dyn_matching () =
        if Float.is_nan !matching then
          matching := dynamic_rest_matching eng (pos + 1);
        !matching
      in
      for c = 0 to k - 1 do
        let slot = slots.(c) and inc = scores.(c) in
        let static_bound = acc +. inc +. eng.optimistic.(pos + 1) in
        (* Same ladder, same lazy evaluation order as the old `&&`
           chain — only the pruning level is now attributed. *)
        let descend =
          (not !have_solution)
          ||
          if not (static_bound > !best_score) then begin
            Stdlib.incr hit_static;
            false
          end
          else if not (acc +. inc +. dyn_cheap () > !best_score) then begin
            Stdlib.incr hit_cheap;
            false
          end
          else if not (acc +. inc +. dyn_tight () > !best_score) then begin
            Stdlib.incr hit_tight;
            false
          end
          else if not (acc +. inc +. dyn_matching () > !best_score) then begin
            Stdlib.incr hit_matching;
            false
          end
          else true
        in
        if descend then begin
          placed.(item) <- slot;
          used.(slot) <- true;
          dfs (pos + 1) (acc +. inc);
          used.(slot) <- false;
          placed.(item) <- -1
        end
      done
    end
  and complete_greedily pos acc =
    (* Budget blown before any leaf: finish by taking the best slot at
       each remaining level without branching. *)
    if pos = n then begin
      best_score := acc;
      Array.blit placed 0 best 0 n;
      have_solution := true
    end
    else begin
      let item = eng.order.(pos) in
      let best_slot = ref (-1) and best_inc = ref neg_infinity in
      for slot = 0 to s - 1 do
        if not used.(slot) && not (eng.forbid slot) then begin
          let inc = incremental eng item slot in
          if inc > !best_inc then begin
            best_inc := inc;
            best_slot := slot
          end
        end
      done;
      placed.(item) <- !best_slot;
      used.(!best_slot) <- true;
      complete_greedily (pos + 1) (acc +. !best_inc)
    end
  in
  let start_pos, start_acc = apply_prefix eng prefix in
  dfs start_pos start_acc;
  Nisq_obs.Metrics.add m_bound_static !hit_static;
  Nisq_obs.Metrics.add m_bound_cheap !hit_cheap;
  Nisq_obs.Metrics.add m_bound_tight !hit_tight;
  Nisq_obs.Metrics.add m_bound_matching !hit_matching;
  {
    assignment = best;
    objective = !best_score;
    stats =
      Budget.Clock.stats clock ~exhausted:(not !blown)
        ~bound_hits:
          [
            ("static", !hit_static);
            ("cheap", !hit_cheap);
            ("tight", !hit_tight);
            ("matching", !hit_matching);
          ];
  }

let prepare ?forbid ?order p = make_tables ?forbid ?order p

let solve_prepared ?(budget = Budget.unlimited) ?incumbent ?prefix t =
  (* Everything past validation counts constraint evaluations, and
     [forbid] is caller code that may raise (fault injection, a live-slot
     probe hitting corrupted state). Publish the tally on every exit so
     the counter never undercounts. *)
  let evals = ref 0 in
  Fun.protect ~finally:(fun () -> Nisq_obs.Metrics.add m_evals !evals)
  @@ fun () ->
  let eng = engine_of_tables ~evals t in
  run eng ~budget ~incumbent ~prefix

let solve ?budget ?(forbid = fun _ -> false) ?order ?incumbent ?prefix p =
  solve_prepared ?budget ?incumbent ?prefix (make_tables ~forbid ?order p)

let frontier_prepared ~depth t =
  let evals = ref 0 in
  Fun.protect ~finally:(fun () -> Nisq_obs.Metrics.add m_evals !evals)
  @@ fun () ->
  let eng = engine_of_tables ~evals t in
  let depth = Int.max 0 (Int.min depth eng.n) in
  if depth = 0 then [| [||] |]
  else begin
    (* Enumerate every feasible prefix of the first [depth] order
       positions, in exactly the (score desc, slot asc) order the DFS
       explores children — so solving the subtrees in frontier order and
       merging in submission order reproduces the sequential anytime
       trajectory. No pruning here: the union of subtrees must cover the
       whole space for the merged [proven_optimal] verdict to be sound. *)
    let out = ref [] in
    let pre = Array.make depth (-1) in
    let rec go pos =
      if pos = depth then out := Array.copy pre :: !out
      else begin
        let k = fill_candidates eng pos in
        let slots = eng.cand_slot.(pos) in
        let item = eng.order.(pos) in
        for c = 0 to k - 1 do
          let slot = slots.(c) in
          pre.(pos) <- slot;
          eng.placed.(item) <- slot;
          eng.used.(slot) <- true;
          go (pos + 1);
          eng.used.(slot) <- false;
          eng.placed.(item) <- -1
        done
      end
    in
    go 0;
    Array.of_list (List.rev !out)
  end

let frontier ?(forbid = fun _ -> false) ?order ~depth p =
  frontier_prepared ~depth (make_tables ~forbid ?order p)

let brute_force p =
  validate p;
  let n = p.num_items and s = p.num_slots in
  let assignment = Array.make n (-1) in
  let used = Array.make s false in
  let best = Array.make n (-1) in
  let best_score = ref neg_infinity in
  let rec go i =
    if i = n then begin
      let v = score p assignment in
      if v > !best_score then begin
        best_score := v;
        Array.blit assignment 0 best 0 n
      end
    end
    else
      for slot = 0 to s - 1 do
        if not used.(slot) then begin
          assignment.(i) <- slot;
          used.(slot) <- true;
          go (i + 1);
          used.(slot) <- false;
          assignment.(i) <- -1
        end
      done
  in
  go 0;
  (best, !best_score)
