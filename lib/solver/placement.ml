type problem = {
  num_items : int;
  num_slots : int;
  unary : float array array;
  pairwise : (int * int * float array array) list;
}

type solution = {
  assignment : int array;
  objective : float;
  stats : Budget.stats;
}

let validate p =
  if p.num_items <= 0 then invalid_arg "Placement: no items";
  if p.num_slots < p.num_items then
    invalid_arg "Placement: fewer slots than items";
  if Array.length p.unary <> p.num_items then
    invalid_arg "Placement: unary row count mismatch";
  Array.iter
    (fun row ->
      if Array.length row <> p.num_slots then
        invalid_arg "Placement: unary column count mismatch")
    p.unary;
  List.iter
    (fun (i, j, m) ->
      if i < 0 || j < 0 || i >= p.num_items || j >= p.num_items || i >= j then
        invalid_arg "Placement: bad pair indices (need 0 <= i < j < items)";
      if
        Array.length m <> p.num_slots
        || Array.exists (fun r -> Array.length r <> p.num_slots) m
      then invalid_arg "Placement: pairwise matrix dimension mismatch")
    p.pairwise

let score p assignment =
  let total = ref 0.0 in
  for i = 0 to p.num_items - 1 do
    total := !total +. p.unary.(i).(assignment.(i))
  done;
  List.iter
    (fun (i, j, m) -> total := !total +. m.(assignment.(i)).(assignment.(j)))
    p.pairwise;
  !total

(* Merge duplicate pair entries into one matrix per (i, j). *)
let merged_pairs p =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (i, j, m) ->
      match Hashtbl.find_opt tbl (i, j) with
      | None -> Hashtbl.add tbl (i, j) (Array.map Array.copy m)
      | Some acc ->
          Array.iteri
            (fun si row -> Array.iteri (fun sj v -> acc.(si).(sj) <- acc.(si).(sj) +. v) row)
            m)
    p.pairwise;
  Hashtbl.fold (fun (i, j) m acc -> (i, j, m) :: acc) tbl []

let matrix_max m =
  Array.fold_left
    (fun acc row -> Array.fold_left Float.max acc row)
    neg_infinity m

let m_evals = Nisq_obs.Metrics.counter "solver.constraint_evals"

let solve ?(budget = Budget.unlimited) ?(forbid = fun _ -> false) p =
  validate p;
  let pairs = merged_pairs p in
  let n = p.num_items and s = p.num_slots in
  (* Everything past validation counts constraint evaluations, and
     [forbid] is caller code that may raise (fault injection, a live-slot
     probe hitting corrupted state). Publish the tally on every exit so
     the counter never undercounts. *)
  let evals = ref 0 in
  Fun.protect ~finally:(fun () -> Nisq_obs.Metrics.add m_evals !evals)
  @@ fun () ->
  (* banned.(slot) snapshots [forbid] once for the bound computations
     below; the candidate fill keeps probing the live closure, which is
     the authoritative legality check (and the hook fault injection
     relies on). *)
  let banned = Array.make s false in
  let allowed = ref 0 in
  for slot = 0 to s - 1 do
    banned.(slot) <- forbid slot;
    if not banned.(slot) then incr allowed
  done;
  if !allowed < n then
    invalid_arg "Placement: fewer live slots than items (quarantine)";
  (* Item order: most pairwise involvement first, then highest degree of
     unary spread — placing constrained items early tightens the bound. *)
  let involvement = Array.make n 0.0 in
  List.iter
    (fun (i, j, m) ->
      let span = Float.abs (matrix_max m) in
      involvement.(i) <- involvement.(i) +. span +. 1.0;
      involvement.(j) <- involvement.(j) +. span +. 1.0)
    pairs;
  let order = Array.init n Fun.id in
  Array.sort (fun a b -> Float.compare involvement.(b) involvement.(a)) order;
  (* rank.(item) = position in placement order *)
  let rank = Array.make n 0 in
  Array.iteri (fun pos item -> rank.(item) <- pos) order;
  (* Pair bookkeeping, from the perspective of the later-placed item:
     when we place item [i], every pair (i, j) with rank.(j) < rank.(i)
     contributes exactly, and every pair with rank.(j) > rank.(i) is
     bounded by its row maximum. Each pair is flattened into one
     row-major array oriented (earlier slot, later slot), replacing the
     per-pair closures of the old inner loop with an indexed load; the
     per-item traversal order (and with it the float summation order)
     matches the old closure lists exactly. *)
  let earlier_pairs = Array.make n [] (* (partner, oriented flat matrix) *) in
  let unary_max =
    Array.map (fun row -> Array.fold_left Float.max neg_infinity row) p.unary
  in
  List.iter
    (fun (i, j, m) ->
      let earlier, later = if rank.(i) < rank.(j) then (i, j) else (j, i) in
      let flat = Array.make (s * s) 0.0 in
      for se = 0 to s - 1 do
        for sl = 0 to s - 1 do
          flat.((se * s) + sl) <-
            (if earlier = i then m.(se).(sl) else m.(sl).(se))
        done
      done;
      earlier_pairs.(later) <- (earlier, flat) :: earlier_pairs.(later))
    pairs;
  let ep_partner = Array.make n [||] and ep_mat = Array.make n [||] in
  for item = 0 to n - 1 do
    ep_partner.(item) <- Array.of_list (List.map fst earlier_pairs.(item));
    ep_mat.(item) <- Array.of_list (List.map snd earlier_pairs.(item))
  done;
  (* optimistic.(pos) = admissible upper bound on the total score of items
     order.(pos..n-1): their best unary plus, for each pair whose later
     endpoint is among them, the pair's global max. *)
  let optimistic = Array.make (n + 1) 0.0 in
  let pair_max_into = Array.make n 0.0 in
  List.iter
    (fun (i, j, m) ->
      let later = if rank.(i) < rank.(j) then j else i in
      pair_max_into.(later) <- pair_max_into.(later) +. matrix_max m)
    pairs;
  for pos = n - 1 downto 0 do
    let item = order.(pos) in
    optimistic.(pos) <- optimistic.(pos + 1) +. unary_max.(item) +. pair_max_into.(item)
  done;
  let clock = Budget.Clock.start budget in
  let placed = Array.make n (-1) in
  let used = Array.make s false in
  let best = Array.make n (-1) in
  let best_score = ref neg_infinity in
  let have_solution = ref false in
  let blown = ref false in
  (* Preallocated per-depth candidate arrays: the DFS inner loop fills
     and sorts them in place instead of consing and List.sorting a fresh
     list per node. *)
  let cand_slot = Array.init n (fun _ -> Array.make s 0) in
  let cand_score = Array.init n (fun _ -> Array.make s 0.0) in
  (* Incremental score of placing [item] on [slot] given the current
     partial assignment: unary plus every already-placed partner's pair
     entry, summed in the original pair-list order. *)
  let incremental item slot =
    let inc = ref p.unary.(item).(slot) in
    let partners = ep_partner.(item) and mats = ep_mat.(item) in
    for k = 0 to Array.length partners - 1 do
      inc := !inc +. Array.unsafe_get mats.(k) ((placed.(partners.(k)) * s) + slot)
    done;
    Stdlib.incr evals;
    !inc
  in
  (* Stable in-place insertion sort by (score desc, slot asc) — the same
     order List.sort gave the ascending-slot candidate list. Candidate
     counts are <= num_slots, where insertion sort beats allocation. *)
  let sort_candidates slots scores k =
    for i = 1 to k - 1 do
      let sc = scores.(i) and sl = slots.(i) in
      let j = ref (i - 1) in
      while !j >= 0 && scores.(!j) < sc do
        scores.(!j + 1) <- scores.(!j);
        slots.(!j + 1) <- slots.(!j);
        decr j
      done;
      scores.(!j + 1) <- sc;
      slots.(!j + 1) <- sl
    done
  in
  (* unary_rank.(item): slot indices sorted by unary score descending
     (ties by ascending slot). The dynamic bound needs "best unary over
     the slots still free", which this turns from an O(s) scan with a
     closure call per slot into a walk of the first few entries. *)
  let unary_rank =
    Array.init n (fun item ->
        let slots = Array.init s Fun.id in
        let row = p.unary.(item) in
        Array.sort
          (fun a b ->
            let c = Float.compare row.(b) row.(a) in
            if c <> 0 then c else compare a b)
          slots;
        slots)
  in
  (* Tighter admissible bound for the subtree below [pos]: per remaining
     item, its best unary over the slots still free *at this node* (the
     static bound uses the global unary max) plus the same pairwise
     ceiling. Computed at most once per node, and only when the static
     bound fails to prune — nodes the static bound kills pay nothing. *)
  let dynamic_rest pos =
    let total = ref 0.0 in
    for q = pos to n - 1 do
      let item = order.(q) in
      let row = p.unary.(item) in
      let ranked = unary_rank.(item) in
      let idx = ref 0 in
      while
        let slot = Array.unsafe_get ranked !idx in
        used.(slot) || banned.(slot)
      do
        incr idx
      done;
      total :=
        !total +. row.(Array.unsafe_get ranked !idx) +. pair_max_into.(item)
    done;
    !total
  in
  let rec dfs pos acc =
    if !blown then ()
    else if not (Budget.Clock.tick clock) then begin
      blown := true;
      (* Finish the current descent greedily so we always return something. *)
      if not !have_solution then complete_greedily pos acc
    end
    else if pos = n then begin
      if acc > !best_score then begin
        best_score := acc;
        Array.blit placed 0 best 0 n;
        have_solution := true
      end
    end
    else begin
      let item = order.(pos) in
      let slots = cand_slot.(pos) and scores = cand_score.(pos) in
      let k = ref 0 in
      for slot = 0 to s - 1 do
        if not used.(slot) && not (forbid slot) then begin
          slots.(!k) <- slot;
          scores.(!k) <- incremental item slot;
          incr k
        end
      done;
      let k = !k in
      sort_candidates slots scores k;
      (* Lazily computed, memoized for the node: every candidate shares
         the same free-slot set at this depth. *)
      let dyn = ref nan in
      let dyn_rest () =
        if Float.is_nan !dyn then dyn := dynamic_rest (pos + 1);
        !dyn
      in
      for c = 0 to k - 1 do
        let slot = slots.(c) and inc = scores.(c) in
        let static_bound = acc +. inc +. optimistic.(pos + 1) in
        if
          (not !have_solution)
          || (static_bound > !best_score
             && acc +. inc +. dyn_rest () > !best_score)
        then begin
          placed.(item) <- slot;
          used.(slot) <- true;
          dfs (pos + 1) (acc +. inc);
          used.(slot) <- false;
          placed.(item) <- -1
        end
      done
    end
  and complete_greedily pos acc =
    (* Budget blown before any leaf: finish by taking the best slot at
       each remaining level without branching. *)
    if pos = n then begin
      best_score := acc;
      Array.blit placed 0 best 0 n;
      have_solution := true
    end
    else begin
      let item = order.(pos) in
      let best_slot = ref (-1) and best_inc = ref neg_infinity in
      for slot = 0 to s - 1 do
        if not used.(slot) && not (forbid slot) then begin
          let inc = incremental item slot in
          if inc > !best_inc then begin
            best_inc := inc;
            best_slot := slot
          end
        end
      done;
      placed.(item) <- !best_slot;
      used.(!best_slot) <- true;
      complete_greedily (pos + 1) (acc +. !best_inc)
    end
  in
  dfs 0 0.0;
  {
    assignment = best;
    objective = !best_score;
    stats = Budget.Clock.stats clock ~exhausted:(not !blown);
  }

let brute_force p =
  validate p;
  let n = p.num_items and s = p.num_slots in
  let assignment = Array.make n (-1) in
  let used = Array.make s false in
  let best = Array.make n (-1) in
  let best_score = ref neg_infinity in
  let rec go i =
    if i = n then begin
      let v = score p assignment in
      if v > !best_score then begin
        best_score := v;
        Array.blit assignment 0 best 0 n
      end
    end
    else
      for slot = 0 to s - 1 do
        if not used.(slot) then begin
          assignment.(i) <- slot;
          used.(slot) <- true;
          go (i + 1);
          used.(slot) <- false;
          assignment.(i) <- -1
        end
      done
  in
  go 0;
  (best, !best_score)
