(** Trajectory-deterministic parallel branch-and-bound.

    The sequential {!Placement}/{!Makespan} searches are wall-clock
    bound at paper scale (R-SMT⋆ takes hours at 32 qubits, §7.4) while
    [Nisq_util.Pool] sits idle. This module fans the search out over a
    dedicated solver pool without giving up the repository's determinism
    contract: the returned assignment, objective, [proven_optimal]
    verdict and [nodes_visited] total are byte-identical at pool sizes
    0, 1 and 4.

    {2 Deterministic merge protocol}

    Naive work-stealing B&B is timing-dependent: whichever subtree
    finishes first publishes its incumbent and changes how much the
    others prune. We instead:

    + enumerate the search frontier at a fixed split depth into
      independent subtree prefixes ({!Placement.frontier}), an
      enumeration that depends only on the problem;
    + solve the subtrees in fixed-size {e waves}. Within a wave every
      subtree reads the same wave-start incumbent from a shared
      [Atomic]; the incumbent is only updated at the wave barrier, in
      submission order. Per-subtree work is therefore a pure function of
      (problem, prefix, wave-start incumbent) — independent of pool
      size and scheduling — while later waves still prune against the
      best of all earlier waves;
    + seed the initial incumbent from the method-matched [Greedy]
      solution, so pruning bites from node one even in wave one.

    Because the sequential search accepts only {e strictly} better
    leaves, a seeded search returns the seed assignment on an exact
    objective tie — a different tie-break than the unseeded sequential
    solver. The parallel path is therefore opt-in (NISQ_SOLVER_DOMAINS):
    the default compile path remains byte-identical to the sequential
    solver, and the parallel path is byte-identical to itself at every
    pool size.

    Node budgets are a pacing device here, not an exact ceiling: each
    subtree in a wave is individually capped by the nodes remaining at
    the wave start, so the total can overshoot by up to one wave before
    the next barrier notices and degrades. Wall-clock budgets cut over
    whole waves only (checking mid-wave would reintroduce timing into
    the trajectory). *)

type mode =
  | Fanout  (** subtree decomposition, shared incumbent (the default) *)
  | Portfolio
      (** race independent variable orderings, keep the first proof *)

val solve_placement :
  ?mode:mode ->
  ?split_depth:int ->
  ?wave_size:int ->
  ?budget:Budget.t ->
  ?forbid:(int -> bool) ->
  ?seed:int array ->
  pool:Nisq_util.Pool.t ->
  Placement.problem ->
  Placement.solution
(** Maximizing parallel solve. [seed] is a feasible assignment (e.g.
    [Greedy.edge_first]) used as the initial incumbent; without it, wave
    one runs unseeded exactly like the sequential first descent.
    [split_depth] (default 2, clamped to [num_items - 1]) picks the
    frontier depth: [16]-ish slots at depth 2 gives a few hundred
    subtrees, enough to feed any realistic pool. The merged stats carry
    summed [nodes_visited] and whole-solve [elapsed_seconds] (see
    {!Budget.stats}). *)

val solve_makespan :
  ?mode:mode ->
  ?split_depth:int ->
  ?wave_size:int ->
  ?budget:Budget.t ->
  ?forbid:(int -> bool) ->
  ?seed:int array ->
  pool:Nisq_util.Pool.t ->
  (unit -> Makespan.problem) ->
  Makespan.solution
(** Minimizing parallel solve. Takes a thunk, not a problem: the T-SMT⋆
    [lower_bound] is a stateful incremental closure, so every subtree
    worker gets a private instance from [make_problem ()]. The thunk
    must be pure up to that private state (same problem every call). *)

(** {2 Process-wide switchboard}

    Mirrors [Telemetry]/[Faultkit]: compilation call sites consult this
    module instead of threading a mode through every signature, and the
    CLI/environment configure it once at startup. *)

val configure : ?domains:int -> ?portfolio:bool -> unit -> unit
(** [configure ~domains:n ()] enables the parallel path with a dedicated
    [n]-worker solver pool ([n = 0] or [1] keeps the same algorithm on
    the sequential pool path — determinism checks diff exactly this).
    [portfolio] selects {!Portfolio} as the default mode. *)

val disable : unit -> unit
(** Back to the sequential solver (the default state). *)

val init_from_env : unit -> unit
(** Read [NISQ_SOLVER_DOMAINS] (worker count; malformed values warn once
    on stderr and leave the path disabled) and [NISQ_SOLVER_PORTFOLIO]
    ([1]/[true]/[yes]/[on] select portfolio mode). *)

val enabled : unit -> bool

val mode_tag : unit -> string
(** ["seq"], ["fanout"] or ["portfolio"] — folded into the layout-cache
    salt so cached layouts never leak across solver modes (the modes
    tie-break differently). Deliberately excludes the pool size:
    trajectories agree across pool sizes, so sharing cache entries
    between them is sound. *)

val pool : unit -> Nisq_util.Pool.t
(** The dedicated solver pool, created lazily at the configured size and
    rebuilt if the size changes. Separate from [Pool.default] so a
    figure cell running on the default pool can hand its solve to this
    one without tripping the same-pool re-entrancy guard. *)
