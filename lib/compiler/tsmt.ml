module Circuit = Nisq_circuit.Circuit
module Gate = Nisq_circuit.Gate
module Dag = Nisq_circuit.Dag
module Calibration = Nisq_device.Calibration
module Topology = Nisq_device.Topology
module Paths = Nisq_device.Paths
module Makespan = Nisq_solver.Makespan
module Parallel = Nisq_solver.Parallel

let coherence_penalty = 1_000_000

let compile_layout ~decision_paths ~policy ~criterion ~budget
    (circuit : Circuit.t) dag =
  let calib = Paths.calibration decision_paths in
  let num_hw = Topology.num_qubits calib.Calibration.topology in
  let num_items = circuit.Circuit.num_qubits in
  let dur = Route.duration_matrix decision_paths ~policy ~criterion in
  (* Optimistic duration for a CNOT with an unplaced endpoint: the
     fastest hardware CNOT on the machine. *)
  let min_cnot_dur =
    List.fold_left
      (fun acc (a, b) -> Int.min acc (Calibration.cnot_duration calib a b))
      max_int
      (Topology.edges calib.Calibration.topology)
  in
  (* The bound is evaluated once per (node, candidate slot) — millions of
     times on the hard benchmarks — so it gets a specialized evaluator:
     predecessor lists flattened to CSR, non-CNOT gate durations (which
     never depend on the placement) precomputed, the duration matrix
     flattened, and one finish-time buffer reused across calls. Computes
     exactly [Dag.critical_path_length dag ~weight:(weight placement)],
     value for value, just without the per-call allocation. *)
  let gates = circuit.Circuit.gates in
  let ng = Array.length gates in
  let pred_off = Array.make (ng + 1) 0 in
  for i = 0 to ng - 1 do
    pred_off.(i + 1) <- pred_off.(i) + List.length (Dag.preds dag i)
  done;
  let pred_arr = Array.make pred_off.(ng) 0 in
  for i = 0 to ng - 1 do
    List.iteri (fun k p -> pred_arr.(pred_off.(i) + k) <- p) (Dag.preds dag i)
  done;
  (* static_w.(i) < 0 marks a CNOT (placement-dependent duration). *)
  let static_w =
    Array.map
      (fun (g : Gate.t) ->
        match g.kind with
        | Gate.Cnot -> -1
        | Gate.Measure -> Calibration.measure_duration
        | Gate.Barrier -> 0
        | _ -> Calibration.single_gate_duration)
      gates
  in
  let dur_flat = Array.make (num_hw * num_hw) 0 in
  for h1 = 0 to num_hw - 1 do
    for h2 = 0 to num_hw - 1 do
      dur_flat.((h1 * num_hw) + h2) <- dur.(h1).(h2)
    done
  done;
  (* first_dep.(q): the earliest gate whose duration can change when
     program qubit [q] moves — its first CNOT. Finish times strictly
     before that gate cannot depend on [q]'s slot. *)
  let first_dep = Array.make num_items ng in
  Array.iter
    (fun (g : Gate.t) ->
      if g.kind = Gate.Cnot then
        Array.iter
          (fun q -> if g.id < first_dep.(q) then first_dep.(q) <- g.id)
          g.qubits)
    gates;
  (* Place high-CNOT-degree qubits first: their routing dominates the
     critical path, so bounds bite early. *)
  let degrees = Circuit.qubit_degrees circuit in
  let order = Array.init num_items Fun.id in
  Array.sort (fun a b -> compare degrees.(b) degrees.(a)) order;
  (* Everything above is immutable once built and shared freely across
     domains. The bound evaluator below is stateful (placement diffing,
     reused finish/prefix buffers), so each caller — the sequential
     solve, and every parallel subtree worker — gets a private instance
     from this thunk. *)
  let make_problem () =
  (* The branch-and-bound probes sibling candidates that differ from the
     previous probe in one or two entries, so the evaluator diffs the
     placement against the last one it saw and recomputes finish times
     only from the earliest gate a moved qubit can influence. prefix_best
     memoizes running maxima so the untouched prefix still contributes to
     the critical path. Recomputing the identical integer recurrence over
     a suffix yields the exact value a full pass would. *)
  let finish = Array.make (Int.max ng 1) 0 in
  let last_placement = Array.make num_items Int.min_int in
  let prefix_best = Array.make (ng + 1) 0 in
  (* Finish times below this index are valid; 0 until the first pass. *)
  let computed = ref 0 in
  let lower_bound placement =
    let from = ref !computed in
    for q = 0 to num_items - 1 do
      if placement.(q) <> last_placement.(q) then begin
        if first_dep.(q) < !from then from := first_dep.(q);
        last_placement.(q) <- placement.(q)
      end
    done;
    computed := ng;
    let best = ref prefix_best.(!from) in
    for i = !from to ng - 1 do
      let start = ref 0 in
      for k = pred_off.(i) to pred_off.(i + 1) - 1 do
        let f = Array.unsafe_get finish (Array.unsafe_get pred_arr k) in
        if f > !start then start := f
      done;
      let w = Array.unsafe_get static_w i in
      let w =
        if w >= 0 then w
        else begin
          let g : Gate.t = Array.unsafe_get gates i in
          let h1 = placement.(g.qubits.(0)) and h2 = placement.(g.qubits.(1)) in
          if h1 >= 0 && h2 >= 0 then
            Array.unsafe_get dur_flat ((h1 * num_hw) + h2)
          else min_cnot_dur
        end
      in
      let f = !start + w in
      Array.unsafe_set finish i f;
      if f > !best then best := f;
      Array.unsafe_set prefix_best (i + 1)
        (if f > Array.unsafe_get prefix_best i then f
         else Array.unsafe_get prefix_best i)
    done;
    !best
  in
  let leaf_cost placement =
    let layout = Layout.of_array ~num_hw placement in
    let plans = Route.plan decision_paths ~policy ~criterion ~layout circuit in
    let sched = Schedule.compute dag ~circuit plans in
    let violations = Schedule.coherence_violations sched calib in
    if violations = [] then sched.Schedule.makespan
    else sched.Schedule.makespan + coherence_penalty
  in
  {
    Makespan.num_items;
    num_slots = num_hw;
    order = Some order;
    lower_bound;
    leaf_cost;
  }
  in
  let forbid slot = not (Calibration.qubit_live calib slot) in
  let solution =
    if Parallel.enabled () then
      (* Method-matched incumbent: GreedyV⋆ chases the same critical-path
         objective. Opt-in, as with R-SMT⋆ (the seed wins exact ties). *)
      let seed = Layout.to_array (Greedy.vertex_first decision_paths circuit) in
      Parallel.solve_makespan ~budget ~forbid ~seed ~pool:(Parallel.pool ())
        make_problem
    else Makespan.solve ~budget ~forbid (make_problem ())
  in
  (Layout.of_array ~num_hw solution.Makespan.assignment, solution.Makespan.stats)
