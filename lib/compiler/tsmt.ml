module Circuit = Nisq_circuit.Circuit
module Gate = Nisq_circuit.Gate
module Dag = Nisq_circuit.Dag
module Calibration = Nisq_device.Calibration
module Topology = Nisq_device.Topology
module Paths = Nisq_device.Paths
module Makespan = Nisq_solver.Makespan

let coherence_penalty = 1_000_000

let compile_layout ~decision_paths ~policy ~criterion ~budget
    (circuit : Circuit.t) dag =
  let calib = Paths.calibration decision_paths in
  let num_hw = Topology.num_qubits calib.Calibration.topology in
  let num_items = circuit.Circuit.num_qubits in
  let dur = Route.duration_matrix decision_paths ~policy ~criterion in
  (* Optimistic duration for a CNOT with an unplaced endpoint: the
     fastest hardware CNOT on the machine. *)
  let min_cnot_dur =
    List.fold_left
      (fun acc (a, b) -> Int.min acc (Calibration.cnot_duration calib a b))
      max_int
      (Topology.edges calib.Calibration.topology)
  in
  let weight placement (g : Gate.t) =
    match g.kind with
    | Gate.Cnot ->
        let h1 = placement.(g.qubits.(0)) and h2 = placement.(g.qubits.(1)) in
        if h1 >= 0 && h2 >= 0 then dur.(h1).(h2) else min_cnot_dur
    | Gate.Measure -> Calibration.measure_duration
    | Gate.Barrier -> 0
    | _ -> Calibration.single_gate_duration
  in
  let lower_bound placement =
    Dag.critical_path_length dag ~weight:(weight placement)
  in
  let leaf_cost placement =
    let layout = Layout.of_array ~num_hw placement in
    let plans = Route.plan decision_paths ~policy ~criterion ~layout circuit in
    let sched = Schedule.compute dag ~circuit plans in
    let violations = Schedule.coherence_violations sched calib in
    if violations = [] then sched.Schedule.makespan
    else sched.Schedule.makespan + coherence_penalty
  in
  (* Place high-CNOT-degree qubits first: their routing dominates the
     critical path, so bounds bite early. *)
  let degrees = Circuit.qubit_degrees circuit in
  let order = Array.init num_items Fun.id in
  Array.sort (fun a b -> compare degrees.(b) degrees.(a)) order;
  let solution =
    Makespan.solve ~budget
      ~forbid:(fun slot -> not (Calibration.qubit_live calib slot))
      {
        Makespan.num_items;
        num_slots = num_hw;
        order = Some order;
        lower_bound;
        leaf_cost;
      }
  in
  (Layout.of_array ~num_hw solution.Makespan.assignment, solution.Makespan.stats)
