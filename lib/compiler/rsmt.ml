module Paths = Nisq_device.Paths
module Topology = Nisq_device.Topology
module Calibration = Nisq_device.Calibration
module Placement = Nisq_solver.Placement

let compile_layout ~decision_paths ~omega ~policy ~budget circuit =
  let problem = Reliability.placement_problem decision_paths ~omega ~policy circuit in
  let calib = Paths.calibration decision_paths in
  let solution =
    Placement.solve ~budget
      ~forbid:(fun slot -> not (Calibration.qubit_live calib slot))
      problem
  in
  let num_hw = Topology.num_qubits calib.Calibration.topology in
  ( Layout.of_array ~num_hw solution.Placement.assignment,
    solution.Placement.stats,
    solution.Placement.objective )
