module Paths = Nisq_device.Paths
module Topology = Nisq_device.Topology
module Calibration = Nisq_device.Calibration
module Placement = Nisq_solver.Placement
module Parallel = Nisq_solver.Parallel

let compile_layout ~decision_paths ~omega ~policy ~budget circuit =
  let problem = Reliability.placement_problem decision_paths ~omega ~policy circuit in
  let calib = Paths.calibration decision_paths in
  let forbid slot = not (Calibration.qubit_live calib slot) in
  let solution =
    if Parallel.enabled () then
      (* Method-matched incumbent: GreedyE⋆ optimizes the same weighted
         reliability objective, so its score is an immediately useful
         bound. Opt-in because seeding changes tie-breaking (the seed
         wins exact objective ties). *)
      let seed = Layout.to_array (Greedy.edge_first decision_paths circuit) in
      Parallel.solve_placement ~budget ~forbid ~seed ~pool:(Parallel.pool ())
        problem
    else Placement.solve ~budget ~forbid problem
  in
  let num_hw = Topology.num_qubits calib.Calibration.topology in
  ( Layout.of_array ~num_hw solution.Placement.assignment,
    solution.Placement.stats,
    solution.Placement.objective )
