module Gate = Nisq_circuit.Gate
module Circuit = Nisq_circuit.Circuit
module Paths = Nisq_device.Paths
module Calibration = Nisq_device.Calibration

type phys = {
  kind : Gate.kind;
  qubits : int array;
  start : int;
  duration : int;
  src_gate : int;
  routing : bool;
}

(* A SWAP on edge (a,b) lasting [dur] = 3 sequential CNOTs of dur/3. *)
let emit_swap acc ~src ~start ~dur a b =
  let d = dur / 3 in
  let cnot qubits start =
    { kind = Gate.Cnot; qubits; start; duration = d; src_gate = src;
      routing = true }
  in
  acc := cnot [| a; b |] start :: !acc;
  acc := cnot [| b; a |] (start + d) :: !acc;
  acc := cnot [| a; b |] (start + (2 * d)) :: !acc

let expand_cnot acc ~src ~start calib (route : Paths.route) =
  let path = route.Paths.path in
  let k = Array.length path - 1 in
  (* forward swaps: hops 0 .. k-2 *)
  let t = ref start in
  for i = 0 to k - 2 do
    let a = path.(i) and b = path.(i + 1) in
    let dur = Calibration.swap_duration calib a b in
    emit_swap acc ~src ~start:!t ~dur a b;
    t := !t + dur
  done;
  (* the CNOT itself: the control state now sits at path.(k-1) *)
  let a = path.(k - 1) and b = path.(k) in
  let d = Calibration.cnot_duration calib a b in
  acc :=
    { kind = Gate.Cnot; qubits = [| a; b |]; start = !t; duration = d;
      src_gate = src; routing = false }
    :: !acc;
  t := !t + d;
  (* backward swaps restore the placement *)
  for i = k - 2 downto 0 do
    let a = path.(i) and b = path.(i + 1) in
    let dur = Calibration.swap_duration calib a b in
    emit_swap acc ~src ~start:!t ~dur a b;
    t := !t + dur
  done

let physical_ops calib (circuit : Circuit.t) (sched : Schedule.t)
    (plans : Route.entry array) =
  let acc = ref [] in
  Array.iteri
    (fun i (g : Gate.t) ->
      let e = sched.Schedule.entries.(i) in
      let p = plans.(i) in
      match (g.kind, p.Route.route) with
      | Gate.Barrier, _ -> ()
      | Gate.Cnot, Some route ->
          expand_cnot acc ~src:i ~start:e.Schedule.start calib route
      | Gate.Cnot, None -> assert false
      | Gate.Swap, _ ->
          let a = p.Route.hw.(0) and b = p.Route.hw.(1) in
          emit_swap acc ~src:i ~start:e.Schedule.start
            ~dur:(Calibration.swap_duration calib a b) a b
      | kind, _ ->
          acc :=
            { kind; qubits = Array.copy p.Route.hw; start = e.Schedule.start;
              duration = e.Schedule.duration; src_gate = i; routing = false }
            :: !acc)
    circuit.Circuit.gates;
  let ops = Array.of_list (List.rev !acc) in
  let order = Array.init (Array.length ops) Fun.id in
  Array.sort
    (fun a b -> compare (ops.(a).start, a) (ops.(b).start, b))
    order;
  Array.map (fun i -> ops.(i)) order

let to_circuit ~num_hw ops =
  let b = Circuit.Builder.create ~name:"physical" num_hw in
  Array.iter (fun op -> Circuit.Builder.add b op.kind op.qubits) ops;
  Circuit.Builder.build b
