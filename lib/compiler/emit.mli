(** Expansion of a scheduled plan into timed physical gates.

    The scheduler treats a routed CNOT as one atomic operation; this
    module expands it into the hardware gate stream — forward SWAPs
    (3 CNOTs each), the CNOT, backward SWAPs — each with its own start
    time inside the parent's window. The result is both the executable
    program (→ OpenQASM) and the event list the noise simulator replays. *)

type phys = {
  kind : Nisq_circuit.Gate.kind;  (** only hardware kinds: 1q, Cnot, Measure *)
  qubits : int array;  (** hardware qubits *)
  start : int;  (** timeslot *)
  duration : int;
  src_gate : int;  (** originating program gate id *)
  routing : bool;
      (** [true] for CNOTs that exist only to move states — the 3-CNOT
          expansions of route SWAPs and movement SWAPs. The core CNOT
          of a routed interaction and every other hardware op carry
          [false]. The ESP decomposition splits on this flag: the
          product over non-routing ops is the untouched-circuit bound. *)
}

val physical_ops :
  Nisq_device.Calibration.t ->
  Nisq_circuit.Circuit.t ->
  Schedule.t ->
  Route.entry array ->
  phys array
(** Sorted by [start] (ties: emission order). Barriers are dropped. The
    calibration supplies per-edge CNOT durations for SWAP expansion and
    must be the one the plan was (re)priced with. *)

val to_circuit : num_hw:int -> phys array -> Nisq_circuit.Circuit.t
(** The physical gate stream as a circuit over hardware qubits (for QASM
    emission and unitary-equivalence checking). *)
