module Dag = Nisq_circuit.Dag
module Gate = Nisq_circuit.Gate
module Circuit = Nisq_circuit.Circuit
module Calibration = Nisq_device.Calibration

type entry = {
  gate_id : int;
  start : int;
  duration : int;
  hw : int array;
  reserve : int array;
}

type t = { entries : entry array; makespan : int }

(* A "conflict" is a gate whose start was pushed past its dependency-ready
   time by hardware-qubit reservations — i.e. routing contention, not data
   dependence. *)
let m_conflicts = Nisq_obs.Metrics.counter "compiler.schedule.conflicts" 

let compute dag ~(circuit : Circuit.t) (plans : Route.entry array) =
  let n = Dag.num_gates dag in
  if Array.length plans <> n then
    invalid_arg "Schedule.compute: plan/DAG size mismatch";
  if Array.length circuit.Circuit.gates <> n then
    invalid_arg "Schedule.compute: circuit/DAG size mismatch";
  let is_measure =
    Array.map (fun (g : Gate.t) -> g.kind = Gate.Measure) circuit.Circuit.gates
  in
  let entries =
    Array.map
      (fun (p : Route.entry) ->
        { gate_id = -1; start = -1; duration = p.duration; hw = p.hw;
          reserve = p.reserve })
      plans
  in
  (* busy.(h): earliest slot at which hardware qubit h is free *)
  let num_hw =
    Array.fold_left
      (fun acc (p : Route.entry) ->
        Array.fold_left (fun a q -> Int.max a (q + 1)) acc p.reserve)
      1 plans
  in
  let busy = Array.make num_hw 0 in
  let dep_ready = Array.make n 0 in
  let finish_of = Array.make n 0 in
  let remaining_preds = Array.init n (fun i -> List.length (Dag.preds dag i)) in
  let makespan = ref 0 in
  let ready = ref [] in
  for i = n - 1 downto 0 do
    if remaining_preds.(i) = 0 && not is_measure.(i) then ready := i :: !ready
  done;
  let feasible_start i =
    let p = plans.(i) in
    Array.fold_left (fun acc h -> Int.max acc busy.(h)) dep_ready.(i) p.reserve
  in
  let place i start =
    let p = plans.(i) in
    let finish = start + p.Route.duration in
    entries.(i) <- { (entries.(i)) with gate_id = i; start };
    finish_of.(i) <- finish;
    Array.iter (fun h -> busy.(h) <- finish) p.Route.reserve;
    makespan := Int.max !makespan finish
  in
  let count = ref 0 in
  let conflicts = ref 0 in
  (* Phase 1: every non-measure gate, earliest-ready-gate-first. *)
  while !ready <> [] do
    let best =
      List.fold_left
        (fun acc i ->
          let s = feasible_start i in
          match acc with
          | None -> Some (i, s)
          | Some (j, sj) ->
              if s < sj || (s = sj && i < j) then Some (i, s) else acc)
        None !ready
    in
    let i, start = Option.get best in
    if start > dep_ready.(i) then Stdlib.incr conflicts;
    ready := List.filter (fun j -> j <> i) !ready;
    place i start;
    incr count;
    List.iter
      (fun s ->
        remaining_preds.(s) <- remaining_preds.(s) - 1;
        dep_ready.(s) <- Int.max dep_ready.(s) finish_of.(i);
        if remaining_preds.(s) = 0 && not is_measure.(s) then
          ready := s :: !ready)
      (Dag.succs dag i)
  done;
  (* Phase 2: measurements. Readout is terminal for its hardware qubit, so
     it must come after the last use of that qubit by any routed
     operation — scheduling measures once everything else is placed
     guarantees no gate ever acts on an already-measured qubit. *)
  for i = 0 to n - 1 do
    if is_measure.(i) then begin
      if Dag.succs dag i <> [] then
        invalid_arg "Schedule.compute: gate depends on a measurement";
      let dep =
        List.fold_left (fun acc pr -> Int.max acc finish_of.(pr)) 0
          (Dag.preds dag i)
      in
      let start =
        Array.fold_left (fun acc h -> Int.max acc busy.(h)) dep
          plans.(i).Route.reserve
      in
      if start > dep then Stdlib.incr conflicts;
      place i start;
      incr count
    end
  done;
  if !count <> n then failwith "Schedule.compute: dependency cycle";
  Nisq_obs.Metrics.add m_conflicts !conflicts;
  { entries; makespan = !makespan }

let coherence_violations t calib =
  Array.fold_left
    (fun acc e ->
      if e.duration = 0 && Array.length e.hw = 0 then acc
      else
        let finish = e.start + e.duration in
        let limit =
          Array.fold_left
            (fun acc h -> Int.min acc (Calibration.t2_slots calib h))
            max_int e.hw
        in
        if finish > limit then (e.gate_id, finish, limit) :: acc else acc)
    [] t.entries
  |> List.rev

let busy_slots t h =
  Array.fold_left
    (fun acc e ->
      if Array.exists (fun q -> q = h) e.reserve then acc + e.duration else acc)
    0 t.entries

let pp ppf t =
  Format.fprintf ppf "@[<v>schedule (makespan %d):@," t.makespan;
  let sorted = Array.copy t.entries in
  Array.sort (fun a b -> compare (a.start, a.gate_id) (b.start, b.gate_id)) sorted;
  Array.iter
    (fun e ->
      Format.fprintf ppf "  g%-3d @@ %4d +%-3d on %s@," e.gate_id e.start
        e.duration
        (String.concat ","
           (Array.to_list (Array.map (Printf.sprintf "q%d") e.hw))))
    sorted;
  Format.fprintf ppf "@]"
