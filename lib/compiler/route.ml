module Paths = Nisq_device.Paths
module Topology = Nisq_device.Topology
module Calibration = Nisq_device.Calibration
module Gate = Nisq_circuit.Gate

type criterion = Min_hops | Min_duration | Max_reliability

let m_routes = Nisq_obs.Metrics.counter "compiler.routes" 

type entry = {
  hw : int array;
  duration : int;
  reserve : int array;
  route : Paths.route option;
}

let pick criterion routes =
  let better (a : Paths.route) (b : Paths.route) =
    match criterion with
    | Min_hops ->
        (* fewer qubits on the path, then faster *)
        compare
          (Array.length a.Paths.path, a.Paths.duration)
          (Array.length b.Paths.path, b.Paths.duration)
        < 0
    | Min_duration -> a.Paths.duration < b.Paths.duration
    | Max_reliability -> a.Paths.log_reliability > b.Paths.log_reliability
  in
  match routes with
  | [] -> invalid_arg "Route.pick: no candidate routes"
  | r :: rest -> List.fold_left (fun acc r -> if better r acc then r else acc) r rest

let choose_route paths ~policy ~criterion h1 h2 =
  Nisq_obs.Metrics.incr m_routes;
  match (policy, criterion) with
  | Config.Best_path, Max_reliability -> Paths.best_path_route paths h1 h2
  | (Config.Best_path | Config.One_bend | Config.Rectangle_reservation), _ ->
      pick criterion (Paths.one_bend_routes paths h1 h2)

let rectangle topo h1 h2 =
  let x1, y1 = Topology.coords topo h1 and x2, y2 = Topology.coords topo h2 in
  let xlo = Int.min x1 x2 and xhi = Int.max x1 x2 in
  let ylo = Int.min y1 y2 and yhi = Int.max y1 y2 in
  let acc = ref [] in
  for y = yhi downto ylo do
    for x = xhi downto xlo do
      acc := Topology.index topo ~x ~y :: !acc
    done
  done;
  Array.of_list !acc

let reserve_of paths ~policy (route : Paths.route) =
  let topo = (Paths.calibration paths).Calibration.topology in
  match policy with
  | Config.Rectangle_reservation when Topology.is_grid topo ->
      let p = route.Paths.path in
      rectangle topo p.(0) p.(Array.length p - 1)
  | Config.Rectangle_reservation | Config.One_bend | Config.Best_path ->
      Array.copy route.Paths.path

let plan paths ~policy ~criterion ~layout (circuit : Nisq_circuit.Circuit.t) =
  Array.map
    (fun (g : Gate.t) ->
      let hw = Array.map (Layout.hw_of layout) g.qubits in
      match g.kind with
      | Gate.Swap ->
          (* Only router-inserted SWAPs between coupled qubits are legal
             here (the Move_and_stay pipeline); program-level SWAPs are
             lowered before compilation. *)
          {
            hw;
            duration = Calibration.swap_duration (Paths.calibration paths) hw.(0) hw.(1);
            reserve = hw;
            route = None;
          }
      | Gate.Cnot ->
          let route = choose_route paths ~policy ~criterion hw.(0) hw.(1) in
          {
            hw;
            duration = route.Paths.duration;
            reserve = reserve_of paths ~policy route;
            route = Some route;
          }
      | Gate.Measure ->
          { hw; duration = Calibration.measure_duration; reserve = hw; route = None }
      | Gate.Barrier -> { hw; duration = 0; reserve = hw; route = None }
      | Gate.H | Gate.X | Gate.Y | Gate.Z | Gate.S | Gate.Sdg | Gate.T
      | Gate.Tdg | Gate.Rz _ | Gate.Rx _ | Gate.Ry _ ->
          { hw; duration = Calibration.single_gate_duration; reserve = hw; route = None })
    circuit.Nisq_circuit.Circuit.gates

let reprice paths entries =
  let calib = Paths.calibration paths in
  Array.map
    (fun e ->
      match e.route with
      | None -> e
      | Some r ->
          let r' =
            Paths.route_via_path ~junction:r.Paths.junction calib r.Paths.path
          in
          { e with duration = r'.Paths.duration; route = Some r' })
    entries

let num_hw paths =
  Topology.num_qubits (Paths.calibration paths).Calibration.topology

(* The all-pairs route matrices are pure functions of the calibration
   (which determines [paths]) plus the policy/criterion pair, so they
   memoize in the calibration-keyed cache with the pair as the salt.
   Every solver-backed compile of a figure shares one matrix build. *)

let criterion_salt = function
  | Min_hops -> "min-hops"
  | Min_duration -> "min-duration"
  | Max_reliability -> "max-reliability"

let duration_memo : int array array Nisq_device.Calib_cache.memo =
  Nisq_device.Calib_cache.memo "route.duration_matrix"

let reliability_memo : float array array Nisq_device.Calib_cache.memo =
  Nisq_device.Calib_cache.memo "route.log_reliability_matrix"

let duration_matrix paths ~policy ~criterion =
  let salt = Config.routing_name policy ^ "/" ^ criterion_salt criterion in
  Nisq_device.Calib_cache.find duration_memo ~salt (Paths.calibration paths)
    ~compute:(fun () ->
      let n = num_hw paths in
      let m = Array.make_matrix n n 0 in
      for h1 = 0 to n - 1 do
        for h2 = 0 to n - 1 do
          if h1 <> h2 then
            m.(h1).(h2) <-
              (choose_route paths ~policy ~criterion h1 h2).Paths.duration
        done
      done;
      m)

let log_reliability_matrix paths ~policy =
  let salt = Config.routing_name policy ^ "/log-reliability" in
  Nisq_device.Calib_cache.find reliability_memo ~salt (Paths.calibration paths)
    ~compute:(fun () ->
      let n = num_hw paths in
      let m = Array.make_matrix n n 0.0 in
      for h1 = 0 to n - 1 do
        for h2 = 0 to n - 1 do
          if h1 <> h2 then
            m.(h1).(h2) <-
              (choose_route paths ~policy ~criterion:Max_reliability h1 h2)
                .Paths.log_reliability
        done
      done;
      m)

(* Dynamic routing: SWAPs permanently move qubit state instead of
   swapping back (Config.Move_and_stay). Returns the routed circuit over
   hardware qubits — CNOTs and SWAPs all between coupled qubits — and the
   final position of every program qubit. Route choices use the same
   policy/criterion machinery as the static model, evaluated at each
   CNOT's *current* positions. *)
let expand_move_and_stay paths ~policy ~criterion ~layout
    (circuit : Nisq_circuit.Circuit.t) =
  let module Circuit = Nisq_circuit.Circuit in
  let topo = (Paths.calibration paths).Calibration.topology in
  let num_hw = Topology.num_qubits topo in
  let pos = Array.init circuit.Circuit.num_qubits (Layout.hw_of layout) in
  let occupant = Array.make num_hw (-1) in
  Array.iteri (fun p h -> occupant.(h) <- p) pos;
  let b = Circuit.Builder.create ~name:(circuit.Circuit.name ^ "_routed") num_hw in
  let do_swap a b' =
    Circuit.Builder.swap b a b';
    let pa = occupant.(a) and pb = occupant.(b') in
    occupant.(a) <- pb;
    occupant.(b') <- pa;
    if pa >= 0 then pos.(pa) <- b';
    if pb >= 0 then pos.(pb) <- a
  in
  Array.iter
    (fun (g : Gate.t) ->
      match g.Gate.kind with
      | Gate.Swap ->
          invalid_arg "Route.expand_move_and_stay: lower Swap gates first"
      | Gate.Cnot ->
          let c = pos.(g.qubits.(0)) and t = pos.(g.qubits.(1)) in
          if Topology.adjacent topo c t then Circuit.Builder.cnot b c t
          else begin
            let route = choose_route paths ~policy ~criterion c t in
            let path = route.Paths.path in
            let k = Array.length path - 1 in
            for i = 0 to k - 2 do
              do_swap path.(i) path.(i + 1)
            done;
            Circuit.Builder.cnot b path.(k - 1) path.(k)
          end
      | Gate.Barrier ->
          Circuit.Builder.barrier b (Array.map (fun q -> pos.(q)) g.qubits)
      | kind -> Circuit.Builder.add b kind (Array.map (fun q -> pos.(q)) g.qubits))
    circuit.Circuit.gates;
  (Circuit.Builder.build b, Array.copy pos)

let swap_count entries =
  Array.fold_left
    (fun acc e ->
      match e.route with
      | Some r -> acc + (2 * (Array.length r.Paths.path - 2))
      | None -> acc)
    0 entries
