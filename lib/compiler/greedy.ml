module Circuit = Nisq_circuit.Circuit
module Paths = Nisq_device.Paths
module Topology = Nisq_device.Topology
module Calibration = Nisq_device.Calibration

type state = {
  paths : Paths.t;
  calib : Calibration.t;
  topo : Topology.t;
  num_hw : int;
  placed : int array;  (* prog -> hw, -1 when unplaced *)
  used : bool array;
  neighbors : (int * int) list array;  (* prog -> (prog neighbour, weight) *)
}

let init paths (circuit : Circuit.t) =
  let calib = Paths.calibration paths in
  let topo = calib.Calibration.topology in
  let num_hw = Topology.num_qubits topo in
  let n = circuit.Circuit.num_qubits in
  if n > Calibration.num_live calib then
    invalid_arg "Greedy: more program qubits than live hardware";
  let neighbors = Array.make n [] in
  List.iter
    (fun ((a, b), w) ->
      neighbors.(a) <- (b, w) :: neighbors.(a);
      neighbors.(b) <- (a, w) :: neighbors.(b))
    (Circuit.interaction_weights circuit);
  {
    paths;
    calib;
    topo;
    num_hw;
    placed = Array.make n (-1);
    used = Array.make num_hw false;
    neighbors;
  }

let free_slots st =
  List.filter
    (fun h -> (not st.used.(h)) && Calibration.qubit_live st.calib h)
    (List.init st.num_hw Fun.id)

let assign st p h =
  st.placed.(p) <- h;
  st.used.(h) <- true

(* Score of placing program qubit [p] at free hardware qubit [h]: summed
   weighted best-path log-reliability to its already-placed neighbours
   (§5.1: "maximize the total reliability of paths between it and each of
   its placed neighbors"). *)
let attachment_score st p h =
  List.fold_left
    (fun acc (q, w) ->
      if st.placed.(q) >= 0 then
        acc +. (Float.of_int w *. Paths.path_log_reliability st.paths h st.placed.(q))
      else acc)
    0.0 st.neighbors.(p)

let best_free_by st score =
  let best = ref (-1) and best_score = ref neg_infinity in
  List.iter
    (fun h ->
      let s = score h in
      if s > !best_score then begin
        best_score := s;
        best := h
      end)
    (free_slots st);
  !best

(* Place [p] by attachment score, breaking ties with readout
   reliability. *)
let place_attached st p =
  let h =
    best_free_by st (fun h ->
        attachment_score st p h
        +. (1e-6 *. log (Calibration.readout_reliability st.calib h)))
  in
  assign st p h

let place_best_readout st p ~require_max_degree =
  let max_degree =
    List.fold_left
      (fun acc h -> Int.max acc (Topology.degree st.topo h))
      0 (free_slots st)
  in
  let h =
    best_free_by st (fun h ->
        let r = Calibration.readout_reliability st.calib h in
        if require_max_degree && Topology.degree st.topo h < max_degree then
          (* strongly disprefer low-degree corners for the hub qubit *)
          r -. 2.0
        else r)
  in
  assign st p h

let vertex_first paths (circuit : Circuit.t) =
  let st = init paths circuit in
  let n = circuit.Circuit.num_qubits in
  let degrees = Circuit.qubit_degrees circuit in
  let unplaced () =
    List.filter (fun p -> st.placed.(p) < 0) (List.init n Fun.id)
  in
  let has_placed_neighbor p =
    List.exists (fun (q, _) -> st.placed.(q) >= 0) st.neighbors.(p)
  in
  (* Heaviest qubit first, at the best readout among high-degree
     hardware locations. *)
  (match
     List.sort
       (fun a b -> compare (degrees.(b), a) (degrees.(a), b))
       (unplaced ())
   with
  | [] -> ()
  | first :: _ -> place_best_readout st first ~require_max_degree:true);
  let rec loop () =
    match unplaced () with
    | [] -> ()
    | remaining ->
        let attached = List.filter has_placed_neighbor remaining in
        let pool = if attached <> [] then attached else remaining in
        let p =
          List.fold_left
            (fun acc p ->
              match acc with
              | None -> Some p
              | Some q -> if degrees.(p) > degrees.(q) then Some p else acc)
            None pool
          |> Option.get
        in
        if has_placed_neighbor p then place_attached st p
        else place_best_readout st p ~require_max_degree:false;
        loop ()
  in
  loop ();
  Layout.of_array ~num_hw:st.num_hw st.placed

(* Best free hardware edge for a fresh program edge of weight [w]:
   maximize CNOT reliability of the edge plus readout reliability of both
   endpoints (§5.2: "maximum CNOT and readout reliability"). *)
let place_fresh_edge st a b w =
  let best = ref None and best_score = ref neg_infinity in
  List.iter
    (fun (h1, h2) ->
      if
        (not st.used.(h1)) && (not st.used.(h2))
        && Calibration.link_live st.calib h1 h2
      then begin
        let s =
          (Float.of_int w *. log (Calibration.cnot_reliability st.calib h1 h2))
          +. log (Calibration.readout_reliability st.calib h1)
          +. log (Calibration.readout_reliability st.calib h2)
        in
        if s > !best_score then begin
          best_score := s;
          best := Some (h1, h2)
        end
      end)
    (Topology.edges st.topo);
  match !best with
  | Some (h1, h2) ->
      (* Orient so the higher-degree program qubit gets the higher-degree
         hardware qubit, giving its future neighbours room. *)
      let da = List.length st.neighbors.(a)
      and db = List.length st.neighbors.(b) in
      let d1 = Topology.degree st.topo h1 and d2 = Topology.degree st.topo h2 in
      if (da >= db && d1 >= d2) || (da < db && d1 < d2) then begin
        assign st a h1;
        assign st b h2
      end
      else begin
        assign st a h2;
        assign st b h1
      end
  | None ->
      (* No free adjacent pair left: fall back to attachment placement. *)
      place_attached st a;
      place_attached st b

let edge_first paths (circuit : Circuit.t) =
  let st = init paths circuit in
  let n = circuit.Circuit.num_qubits in
  let edges =
    Circuit.interaction_weights circuit
    |> List.sort (fun ((_, _), w1) ((_, _), w2) -> compare w2 w1)
  in
  List.iter
    (fun ((a, b), w) ->
      match (st.placed.(a) >= 0, st.placed.(b) >= 0) with
      | true, true -> ()
      | true, false -> place_attached st b
      | false, true -> place_attached st a
      | false, false -> place_fresh_edge st a b w)
    edges;
  (* Isolated program qubits (no CNOTs) go to the best free readout. *)
  for p = 0 to n - 1 do
    if st.placed.(p) < 0 then place_best_readout st p ~require_max_degree:false
  done;
  Layout.of_array ~num_hw:st.num_hw st.placed
