(** Reliability scoring: the optimization objective and ESP.

    The paper scores a mapping by the product of CNOT and readout
    reliabilities, linearized as the weighted additive-log objective of
    Eq. 12:

    {v ω Σ_readouts log ε  +  (1−ω) Σ_CNOTs log ε v}

    {!placement_problem} encodes exactly that objective over injective
    placements for the {!Nisq_solver.Placement} engine; {!esp} computes
    the analytic estimated success probability of a compiled physical
    gate stream. *)

val placement_problem :
  Nisq_device.Paths.t ->
  omega:float ->
  policy:Config.routing ->
  Nisq_circuit.Circuit.t ->
  Nisq_solver.Placement.problem
(** Items are program qubits, slots are hardware qubits. Unary scores
    carry [ω · log readout-reliability] per measurement of a qubit;
    pairwise scores carry [(1−ω) · multiplicity · EC] per interacting
    qubit pair, with EC the best routed-CNOT log-reliability under
    [policy] (Constraint 11). *)

val plan_log_reliability :
  Nisq_device.Calibration.t ->
  omega:float ->
  Nisq_circuit.Circuit.t ->
  Route.entry array ->
  float
(** The Eq.-12 objective value actually achieved by a plan (CNOT routes +
    readout locations). *)

val esp :
  ?include_single:bool ->
  Nisq_device.Calibration.t ->
  Emit.phys array ->
  float
(** Estimated success probability: Π (1 − error) over the physical gate
    stream — CNOTs and readouts always, single-qubit gates when
    [include_single] (default true). *)

val esp_breakdown :
  ?include_single:bool ->
  Nisq_device.Calibration.t ->
  Emit.phys array ->
  Nisq_obs.Report.esp
(** {!esp} decomposed for the explain report: one term per
    [(channel, site)] group — per-qubit readout and single-qubit
    terms, per-link core-CNOT terms, per-link routing-SWAP terms
    ([Emit.phys.routing]) — in stream order of first occurrence. The
    terms multiply back to [predicted] (which equals {!esp} exactly)
    up to float reassociation; [untouched_bound] is the product over
    non-routing ops only, the ESP no routing could beat;
    [routing_overhead] is their ratio (>= 1). *)
