module Circuit = Nisq_circuit.Circuit
module Gate = Nisq_circuit.Gate
module Calibration = Nisq_device.Calibration
module Topology = Nisq_device.Topology
module Paths = Nisq_device.Paths
module Placement = Nisq_solver.Placement

let placement_problem paths ~omega ~policy (circuit : Circuit.t) =
  let calib = Paths.calibration paths in
  let num_slots = Topology.num_qubits calib.Calibration.topology in
  let num_items = circuit.Circuit.num_qubits in
  (* Readout term: each measurement of program qubit p contributes
     omega * log(readout reliability of its location). *)
  let measure_count = Array.make num_items 0 in
  Array.iter
    (fun (g : Gate.t) ->
      if g.kind = Gate.Measure then
        measure_count.(g.qubits.(0)) <- measure_count.(g.qubits.(0)) + 1)
    circuit.Circuit.gates;
  let unary =
    Array.init num_items (fun p ->
        Array.init num_slots (fun h ->
            if measure_count.(p) = 0 then 0.0
            else
              omega
              *. Float.of_int measure_count.(p)
              *. log (Calibration.readout_reliability calib h)))
  in
  let ec = Route.log_reliability_matrix paths ~policy in
  let pairwise =
    Circuit.interaction_weights circuit
    |> List.map (fun ((a, b), w) ->
           let m =
             Array.init num_slots (fun ha ->
                 Array.init num_slots (fun hb ->
                     if ha = hb then neg_infinity
                     else (1.0 -. omega) *. Float.of_int w *. ec.(ha).(hb)))
           in
           (a, b, m))
  in
  { Placement.num_items; num_slots; unary; pairwise }

let plan_log_reliability calib ~omega (circuit : Circuit.t)
    (plans : Route.entry array) =
  let total = ref 0.0 in
  Array.iteri
    (fun i (g : Gate.t) ->
      let p = plans.(i) in
      match g.kind with
      | Gate.Measure ->
          total :=
            !total
            +. (omega *. log (Calibration.readout_reliability calib p.Route.hw.(0)))
      | Gate.Cnot -> (
          match p.Route.route with
          | Some r ->
              total := !total +. ((1.0 -. omega) *. r.Paths.log_reliability)
          | None -> assert false)
      | _ -> ())
    circuit.Circuit.gates;
  !total

let esp ?(include_single = true) calib (ops : Emit.phys array) =
  Array.fold_left
    (fun acc (op : Emit.phys) ->
      match op.Emit.kind with
      | Gate.Cnot ->
          acc *. Calibration.cnot_reliability calib op.qubits.(0) op.qubits.(1)
      | Gate.Measure -> acc *. Calibration.readout_reliability calib op.qubits.(0)
      | Gate.Barrier | Gate.Swap -> acc
      | Gate.H | Gate.X | Gate.Y | Gate.Z | Gate.S | Gate.Sdg | Gate.T
      | Gate.Tdg | Gate.Rz _ | Gate.Rx _ | Gate.Ry _ ->
          if include_single then
            acc *. (1.0 -. calib.Calibration.single_error.(op.qubits.(0)))
          else acc)
    1.0 ops

(* ----------------------- ESP decomposition ------------------------ *)

type group = {
  mutable g_ops : int;
  g_reliability : float; (* first occurrence, representative *)
  mutable g_contribution : float;
}

(* Per-(channel, site) reliability terms of the compiled stream, plus
   the untouched-circuit bound: the ESP the same stream would have if
   every routing SWAP were free. Groups appear in stream order of
   first occurrence — deterministic because the phys stream is. *)
let esp_breakdown ?(include_single = true) calib (ops : Emit.phys array) =
  let tbl : (string * string, group) Hashtbl.t = Hashtbl.create 32 in
  let order = ref [] in
  let touch channel site r =
    let key = (channel, site) in
    match Hashtbl.find_opt tbl key with
    | Some g ->
        g.g_ops <- g.g_ops + 1;
        g.g_contribution <- g.g_contribution *. r
    | None ->
        Hashtbl.add tbl key
          { g_ops = 1; g_reliability = r; g_contribution = r };
        order := key :: !order
  in
  let qubit_site q = Printf.sprintf "q%d" q in
  let link_site a b =
    Printf.sprintf "e%d-%d" (Int.min a b) (Int.max a b)
  in
  let untouched = ref 1.0 in
  Array.iter
    (fun (op : Emit.phys) ->
      match op.Emit.kind with
      | Gate.Cnot ->
          let a = op.qubits.(0) and b = op.qubits.(1) in
          let r = Calibration.cnot_reliability calib a b in
          if op.routing then touch "swap" (link_site a b) r
          else begin
            touch "cnot" (link_site a b) r;
            untouched := !untouched *. r
          end
      | Gate.Measure ->
          let q = op.qubits.(0) in
          let r = Calibration.readout_reliability calib q in
          touch "readout" (qubit_site q) r;
          untouched := !untouched *. r
      | Gate.Barrier | Gate.Swap -> ()
      | Gate.H | Gate.X | Gate.Y | Gate.Z | Gate.S | Gate.Sdg | Gate.T
      | Gate.Tdg | Gate.Rz _ | Gate.Rx _ | Gate.Ry _ ->
          if include_single then begin
            let q = op.qubits.(0) in
            let r = 1.0 -. calib.Calibration.single_error.(q) in
            touch "single" (qubit_site q) r;
            untouched := !untouched *. r
          end)
    ops;
  let predicted = esp ~include_single calib ops in
  let terms =
    List.rev_map
      (fun ((channel, site) as key) ->
        let g = Hashtbl.find tbl key in
        {
          Nisq_obs.Report.channel;
          site;
          ops = g.g_ops;
          reliability = g.g_reliability;
          contribution = g.g_contribution;
        })
      !order
  in
  {
    Nisq_obs.Report.predicted;
    untouched_bound = !untouched;
    routing_overhead =
      (if predicted > 0.0 then !untouched /. predicted else 1.0);
    terms;
  }
