module Circuit = Nisq_circuit.Circuit
module Dag = Nisq_circuit.Dag
module Decompose = Nisq_circuit.Decompose
module Qasm = Nisq_circuit.Qasm
module Calibration = Nisq_device.Calibration
module Topology = Nisq_device.Topology
module Paths = Nisq_device.Paths
module Trace = Nisq_obs.Trace
module Metrics = Nisq_obs.Metrics
module Report = Nisq_obs.Report
module Events = Nisq_obs.Events
module Deadline = Nisq_runkit.Deadline

let m_compiles = Metrics.counter "compiler.compiles"
let m_swaps = Metrics.counter "compiler.swaps_inserted"
let m_fallback_capped = Metrics.counter "resilience.compiler.fallback_capped"
let m_fallback_greedy = Metrics.counter "resilience.compiler.fallback_greedy"
let g_esp = Metrics.gauge "compiler.esp"
let g_esp_cnot = Metrics.gauge "compiler.esp.cnot"
let g_esp_readout = Metrics.gauge "compiler.esp.readout"
let g_esp_single = Metrics.gauge "compiler.esp.single"

(* ESP split by error channel (Π of per-channel reliabilities), so the
   metrics dump shows which channel dominates the success-probability
   loss for the last compile. *)
let esp_by_channel calib (ops : Emit.phys array) =
  let module Gate = Nisq_circuit.Gate in
  let cnot = ref 1.0 and readout = ref 1.0 and single = ref 1.0 in
  Array.iter
    (fun (op : Emit.phys) ->
      match op.Emit.kind with
      | Gate.Cnot ->
          cnot :=
            !cnot *. Calibration.cnot_reliability calib op.qubits.(0) op.qubits.(1)
      | Gate.Measure ->
          readout := !readout *. Calibration.readout_reliability calib op.qubits.(0)
      | Gate.Barrier | Gate.Swap -> ()
      | Gate.H | Gate.X | Gate.Y | Gate.Z | Gate.S | Gate.Sdg | Gate.T
      | Gate.Tdg | Gate.Rz _ | Gate.Rx _ | Gate.Ry _ ->
          single :=
            !single *. (1.0 -. calib.Calibration.single_error.(op.qubits.(0))))
    ops;
  (!cnot, !readout, !single)

type rung = Rung_full | Rung_capped | Rung_greedy

let rung_name = function
  | Rung_full -> "full"
  | Rung_capped -> "node-capped"
  | Rung_greedy -> "greedy"

(* Calibration-keyed layout (solver-solution) cache. A figure sweep — and
   even more so an `all` run — re-solves identical layout instances: the
   same benchmark under the same config against the same calibration day
   shows up in fig5, fig6's day-0 column, fig10 and the ablations. The
   layout is a pure function of (decision calibration, method, routing
   policy, budget, program), so it is memoized under exactly that key:
   the calibration digest plus a salt hashing the rest. Movement is
   deliberately NOT in the key — it changes routing downstream, never the
   layout — so move-and-stay ablations reuse the swap-back layouts.
   Cached: the assignment plus the solver stats and ladder rung of the
   solve that produced it (replayed verbatim on a hit). Builds run
   outside the cache lock so fanned-out figure cells solving distinct
   instances never serialize. *)
let layout_memo :
    (int array * Nisq_solver.Budget.stats option * rung option)
    Nisq_device.Calib_cache.shared_memo =
  Nisq_device.Calib_cache.shared_memo "compiler.layout"

let layout_salt (config : Config.t) (program : Circuit.t) =
  Digest.to_hex
    (Digest.string
       (* The solver mode is part of the key: parallel (seeded) and
          sequential solves tie-break differently, so a layout cached
          under one mode must not be replayed under another. Pool sizes
          share entries — trajectories agree across them by design. *)
       (Nisq_solver.Parallel.mode_tag ()
       ^ Marshal.to_string
           ( config.Config.method_,
             config.Config.routing,
             config.Config.budget,
             program.Circuit.name,
             program.Circuit.num_qubits,
             program.Circuit.gates )
           []))

type t = {
  config : Config.t;
  program : Circuit.t;
  calib : Calibration.t;
  layout : Layout.t;
  final_positions : int array;
  plan : Route.entry array;
  schedule : Schedule.t;
  phys : Emit.phys array;
  hw_circuit : Circuit.t;
  duration : int;
  esp : float;
  swap_count : int;
  compile_seconds : float;
  solver_stats : Nisq_solver.Budget.stats option;
  rung : rung option;
  report : Report.t option;
}

(* Second-rung budget: small enough to finish fast when the configured
   budget has already blown, node-only so the result is deterministic. *)
let fallback_budget = Nisq_solver.Budget.nodes 20_000

(* ------------------------- explain reports ------------------------- *)

let movement_name = function
  | Config.Swap_back -> "swap-back"
  | Config.Move_and_stay -> "move-and-stay"

let config_kvs (config : Config.t) =
  [
    ("name", Config.name config);
    ("routing", Config.routing_name config.Config.routing);
    ("movement", movement_name config.Config.movement);
    ("uses_calibration", string_of_bool (Config.uses_calibration config));
  ]

(* Cache provenance is attributed by counter deltas around the compile:
   the registry is armed whenever reports are, and report assembly only
   ever reads counters, so the deltas are exactly this compile's. *)
let cache_counter_snapshot () =
  if not (Report.enabled ()) then []
  else Metrics.counter_values ()

let caches_of_delta before after =
  let delta name =
    Option.value (List.assoc_opt name after) ~default:0
    - Option.value (List.assoc_opt name before) ~default:0
  in
  let table n =
    {
      Report.cache = n;
      hits = delta (Printf.sprintf "cache.%s.hit" n);
      misses = delta (Printf.sprintf "cache.%s.miss" n);
    }
  in
  { Report.cache = "total"; hits = delta "cache.hit"; misses = delta "cache.miss" }
  :: List.map table (Nisq_device.Calib_cache.registered_names ())

let solver_report solver_stats rung =
  match solver_stats with
  | None -> None
  | Some (s : Nisq_solver.Budget.stats) ->
      Some
        {
          Report.rung =
            (match rung with Some r -> rung_name r | None -> "-");
          mode = Nisq_solver.Parallel.mode_tag ();
          nodes_visited = s.Nisq_solver.Budget.nodes_visited;
          elapsed_seconds = s.Nisq_solver.Budget.elapsed_seconds;
          proven_optimal = s.Nisq_solver.Budget.proven_optimal;
          degraded = s.Nisq_solver.Budget.degraded;
          bound_hits = s.Nisq_solver.Budget.bound_hits;
        }

let criterion_of (config : Config.t) : Route.criterion =
  match config.method_ with
  | Config.Qiskit | Config.T_smt -> Route.Min_hops
  | Config.T_smt_star -> Route.Min_duration
  | Config.R_smt_star _ | Config.Greedy_v | Config.Greedy_e ->
      Route.Max_reliability

let run ~(config : Config.t) ~calib circuit =
  Trace.with_span "compile"
    ~attrs:[ ("config", Config.name config); ("program", circuit.Circuit.name) ]
  @@ fun () ->
  (* Cancellation point: don't start a compile the run layer is already
     tearing down. *)
  Deadline.raise_if_cancelled ();
  Metrics.incr m_compiles;
  let cache_before = cache_counter_snapshot () in
  let phase_log = ref [] in
  (* [measured name f] is [Trace.with_span name f] plus, when a report
     is being assembled, per-phase wall and GC accounting. *)
  let measured name f =
    if not (Report.enabled ()) then Trace.with_span name f
    else begin
      let t0 = Unix.gettimeofday () in
      let g0 = Gc.quick_stat () in
      Fun.protect
        ~finally:(fun () ->
          let g1 = Gc.quick_stat () in
          phase_log :=
            {
              Report.phase = name;
              wall_ms = (Unix.gettimeofday () -. t0) *. 1000.0;
              minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
              major_words = g1.Gc.major_words -. g0.Gc.major_words;
            }
            :: !phase_log)
        (fun () -> Trace.with_span name f)
    end
  in
  let cache_bypassed = ref false in
  let started = Unix.gettimeofday () in
  let program = Decompose.lower_swaps circuit in
  let dag = Dag.of_circuit program in
  let topo = calib.Calibration.topology in
  if program.Circuit.num_qubits > Topology.num_qubits topo then
    invalid_arg "Compile.run: program needs more qubits than the machine has";
  if program.Circuit.num_qubits > Calibration.num_live calib then
    invalid_arg
      (Printf.sprintf
         "Compile.run: program needs %d qubits but only %d are live \
          (quarantine)"
         program.Circuit.num_qubits (Calibration.num_live calib));
  let decision_calib =
    if Config.uses_calibration config then calib
    else
      (* Calibration-blind planning still must not place work on
         quarantined hardware: propagate the masks into the uniform view. *)
      Calibration.with_quarantine (Calibration.uniform topo)
        ~qubit_ok:calib.Calibration.qubit_ok ~link_ok:calib.Calibration.link_ok
  in
  (* Calibration-keyed cache: the ~120 compiles of a figure run share
     one all-pairs routing solve per distinct (noise, quarantine) key
     instead of re-running Dijkstra per compile. *)
  let decision_paths = Nisq_device.Calib_cache.paths decision_calib in
  let criterion = criterion_of config in
  (* Solver-backed layouts walk a fallback ladder: the configured budget
     first; if it blows, a small node-capped search (deterministic, no
     wall clock); if that blows too, the greedy heuristic closest to the
     method (§5). Each downgrade is counted. *)
  let solver_ladder solve greedy =
    let l1, s1 = solve config.Config.budget in
    if not s1.Nisq_solver.Budget.degraded then (l1, Some s1, Some Rung_full)
    else begin
      Metrics.incr m_fallback_capped;
      (* Between rungs: a budget that "blew" because the run was
         cancelled must not descend the ladder — propagate instead. *)
      Deadline.raise_if_cancelled ();
      let l2, s2 = solve fallback_budget in
      if not s2.Nisq_solver.Budget.degraded then (l2, Some s2, Some Rung_capped)
      else begin
        Metrics.incr m_fallback_greedy;
        Deadline.raise_if_cancelled ();
        (greedy (), Some s2, Some Rung_greedy)
      end
    end
  in
  (* Solver-backed layouts go through the calibration-keyed cache: one
     solve per distinct (calibration, method, routing, budget, program)
     instance per process. Bypassed under solver fault injection so an
     injected blow always exercises the live ladder instead of replaying
     a healthy cached layout. *)
  let cached_ladder solve greedy =
    if Nisq_faultkit.Faultkit.solver_blow () then begin
      cache_bypassed := true;
      Events.emit ~domain:"cache" Events.Info
        "layout cache bypassed: solver fault injection active"
        ~fields:
          [
            ("memo", "compiler.layout");
            ("program", program.Circuit.name);
            ("config", Config.name config);
          ];
      solver_ladder solve greedy
    end
    else
      let assignment, stats, rung =
        Nisq_device.Calib_cache.find_shared layout_memo
          ~salt:(layout_salt config program) decision_calib
          ~compute:(fun () ->
            let layout, stats, rung = solver_ladder solve greedy in
            (Layout.to_array layout, stats, rung))
      in
      ( Layout.of_array ~num_hw:(Topology.num_qubits topo) assignment,
        stats,
        rung )
  in
  let layout, solver_stats, rung =
    measured "layout" @@ fun () ->
    match config.method_ with
    | Config.Qiskit ->
        ( Layout.identity ~num_prog:program.Circuit.num_qubits
            ~num_hw:(Topology.num_qubits topo),
          None,
          None )
    | Config.T_smt | Config.T_smt_star ->
        cached_ladder
          (fun budget ->
            Tsmt.compile_layout ~decision_paths ~policy:config.routing
              ~criterion ~budget program dag)
          (fun () -> Greedy.vertex_first decision_paths program)
    | Config.R_smt_star omega ->
        cached_ladder
          (fun budget ->
            let layout, stats, _objective =
              Rsmt.compile_layout ~decision_paths ~omega ~policy:config.routing
                ~budget program
            in
            (layout, stats))
          (fun () -> Greedy.edge_first decision_paths program)
    | Config.Greedy_v ->
        (Greedy.vertex_first decision_paths program, None, None)
    | Config.Greedy_e -> (Greedy.edge_first decision_paths program, None, None)
  in
  let num_hw = Topology.num_qubits topo in
  let eval_paths_blind () =
    if Config.uses_calibration config then decision_paths
    else Nisq_device.Calib_cache.paths calib
  in
  let scheduled_circuit, plan, final_positions, swap_count, compile_seconds =
    measured "route" @@ fun () ->
    match config.Config.movement with
    | Config.Swap_back ->
        (* The paper's static model: plan over the program circuit, SWAPs
           implicit in each CNOT's route, placement invariant. *)
        let decision_plan =
          Route.plan decision_paths ~policy:config.routing ~criterion ~layout
            program
        in
        let compile_seconds = Unix.gettimeofday () -. started in
        (* Evaluation against the real machine: reprice the committed
           routing decisions with the day's calibration. *)
        let plan = Route.reprice (eval_paths_blind ()) decision_plan in
        ( program,
          plan,
          Array.init program.Circuit.num_qubits (Layout.hw_of layout),
          Route.swap_count plan,
          compile_seconds )
    | Config.Move_and_stay ->
        (* Dynamic model: expand routing into an explicit hardware
           circuit whose SWAPs move state permanently. *)
        let routed, final_positions =
          Route.expand_move_and_stay decision_paths ~policy:config.routing
            ~criterion ~layout program
        in
        let compile_seconds = Unix.gettimeofday () -. started in
        let id_layout = Layout.identity ~num_prog:num_hw ~num_hw in
        let plan =
          Route.plan (eval_paths_blind ()) ~policy:config.routing ~criterion
            ~layout:id_layout routed
        in
        let swaps =
          Array.fold_left
            (fun acc (g : Nisq_circuit.Gate.t) ->
              if g.Nisq_circuit.Gate.kind = Nisq_circuit.Gate.Swap then acc + 1
              else acc)
            0 routed.Circuit.gates
        in
        (routed, plan, final_positions, swaps, compile_seconds)
  in
  let sched_dag =
    if scheduled_circuit == program then dag else Dag.of_circuit scheduled_circuit
  in
  let schedule =
    measured "schedule" @@ fun () ->
    Schedule.compute sched_dag ~circuit:scheduled_circuit plan
  in
  let phys, hw_circuit =
    measured "emit" @@ fun () ->
    let phys = Emit.physical_ops calib scheduled_circuit schedule plan in
    (phys, Emit.to_circuit ~num_hw phys)
  in
  Metrics.add m_swaps swap_count;
  let esp = Reliability.esp calib phys in
  if Metrics.enabled () then begin
    let c, r, s1 = esp_by_channel calib phys in
    Metrics.set g_esp esp;
    Metrics.set g_esp_cnot c;
    Metrics.set g_esp_readout r;
    Metrics.set g_esp_single s1
  end;
  let report =
    if not (Report.enabled ()) then None
    else
      Some
        {
          Report.program = program.Circuit.name;
          qubits = program.Circuit.num_qubits;
          hw_qubits = num_hw;
          config = config_kvs config;
          duration = schedule.Schedule.makespan;
          swap_count;
          compile_seconds;
          esp = Reliability.esp_breakdown calib phys;
          solver = solver_report solver_stats rung;
          cache_bypassed = !cache_bypassed;
          caches = caches_of_delta cache_before (cache_counter_snapshot ());
          phases = List.rev !phase_log;
        }
  in
  {
    config;
    program;
    calib;
    layout;
    final_positions;
    plan;
    schedule;
    phys;
    hw_circuit;
    duration = schedule.Schedule.makespan;
    esp;
    swap_count;
    compile_seconds;
    solver_stats;
    rung;
    report;
  }

let best_of ~configs ~calib circuit =
  match configs with
  | [] -> invalid_arg "Compile.best_of: no configurations"
  | first :: rest ->
      List.fold_left
        (fun best config ->
          let r = run ~config ~calib circuit in
          if
            r.esp > best.esp +. 1e-12
            || (Float.abs (r.esp -. best.esp) <= 1e-12
               && r.duration < best.duration)
          then r
          else best)
        (run ~config:first ~calib circuit)
        rest

let readout_map t =
  Circuit.measured_qubits t.program
  |> List.map (fun p -> (p, t.final_positions.(p)))
  |> List.sort compare

let to_qasm t = Qasm.to_string t.hw_circuit
