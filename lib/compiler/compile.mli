(** The compiler driver (Fig. 3).

    [run ~config ~calib circuit] takes a program circuit, a configuration
    (Table 1) and the day's calibration, and produces a fully mapped,
    routed and scheduled executable. Calibration-blind configurations
    (Qiskit, T-SMT) make all decisions against the uniform machine view
    and are then *evaluated* — durations, ESP, physical gates — against
    the real calibration, which is exactly what happens when a statically
    compiled program runs on that day's machine. *)

(** Which rung of the solver fallback ladder produced the layout: the
    full configured budget, the small node-capped retry after the full
    budget blew, or the greedy heuristic after both solver rungs blew. *)
type rung = Rung_full | Rung_capped | Rung_greedy

val rung_name : rung -> string

type t = {
  config : Config.t;
  program : Nisq_circuit.Circuit.t;  (** input, swaps lowered *)
  calib : Nisq_device.Calibration.t;  (** the day it runs on *)
  layout : Layout.t;
  final_positions : int array;
      (** hardware position of each program qubit after execution —
          equals the layout under [Swap_back], drifts under
          [Move_and_stay] *)
  plan : Route.entry array;
      (** priced against [calib]; indexed by the gates of the scheduled
          circuit (the program under [Swap_back], the routed hardware
          circuit under [Move_and_stay]) *)
  schedule : Schedule.t;
  phys : Emit.phys array;
  hw_circuit : Nisq_circuit.Circuit.t;  (** physical gates over hw qubits *)
  duration : int;  (** makespan in timeslots *)
  esp : float;  (** analytic estimated success probability *)
  swap_count : int;
  compile_seconds : float;
  solver_stats : Nisq_solver.Budget.stats option;
      (** SMT variants only; the stats of the last rung attempted *)
  rung : rung option;  (** SMT variants only *)
  report : Nisq_obs.Report.t option;
      (** Explain report, assembled iff [Nisq_obs.Report.enabled ()] at
          compile time: ESP decomposition, solver evidence (rung, bound
          ladder, parallel mode), cache hit/miss provenance and
          per-phase wall/GC stats. Collection never changes the compile
          itself — output and metrics are byte-identical either way. *)
}

val run :
  config:Config.t ->
  calib:Nisq_device.Calibration.t ->
  Nisq_circuit.Circuit.t ->
  t

val best_of :
  configs:Config.t list ->
  calib:Nisq_device.Calibration.t ->
  Nisq_circuit.Circuit.t ->
  t
(** Compile under every configuration and keep the result with the
    highest analytic ESP (ties: shortest duration, then compile order) —
    a portfolio driver for users who don't want to pick a Table-1 row by
    hand. Raises [Invalid_argument] on an empty list. *)

val readout_map : t -> (int * int) list
(** [(program qubit, hardware qubit)] for every measured program qubit,
    ascending program order — what the success-rate runner needs to
    assemble answers. *)

val to_qasm : t -> string
(** Executable OpenQASM of the compiled program. *)
