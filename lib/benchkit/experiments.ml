module Circuit = Nisq_circuit.Circuit
module Gate = Nisq_circuit.Gate
module Topology = Nisq_device.Topology
module Calibration = Nisq_device.Calibration
module Calib_gen = Nisq_device.Calib_gen
module Ibmq16 = Nisq_device.Ibmq16
module Config = Nisq_compiler.Config
module Compile = Nisq_compiler.Compile
module Layout = Nisq_compiler.Layout
module Runner = Nisq_sim.Runner
module Table = Nisq_util.Table
module Stats = Nisq_util.Stats
module Budget = Nisq_solver.Budget

type eval = {
  bench : Benchmarks.t;
  config : Config.t;
  result : Compile.t;
  success : float;
}

let default_trials = 4096

let default_sim_seed = 424242

let runner_of (r : Compile.t) =
  let ops =
    Array.map
      (fun (p : Nisq_compiler.Emit.phys) ->
        {
          Runner.kind = p.Nisq_compiler.Emit.kind;
          qubits = p.qubits;
          start = p.start;
          duration = p.duration;
        })
      r.Compile.phys
  in
  Runner.prepare ~calib:r.Compile.calib ~ops ~readout:(Compile.readout_map r)

(* Checkpoint-cell key for one simulation: a digest of everything that
   determines its value — the compiled physical ops, the readout map,
   the calibration noise the simulator reads, the trial count and the
   seed. Two invocations that agree on the digest are guaranteed the
   same success rate (the simulator is bit-deterministic), which is what
   makes replaying a journalled cell on [--resume] sound. Note the
   compile itself is {e not} part of the contract: resume re-runs the
   cheap compile and only skips the Monte-Carlo trials. *)
let sim_digest (r : Compile.t) ~trials ~seed =
  let ops =
    Array.map
      (fun (p : Nisq_compiler.Emit.phys) ->
        (p.Nisq_compiler.Emit.kind, p.qubits, p.start, p.duration))
      r.Compile.phys
  in
  let calib = r.Compile.calib in
  let payload =
    Marshal.to_string
      ( ops,
        Compile.readout_map r,
        calib.Calibration.t1_us,
        calib.Calibration.t2_us,
        calib.Calibration.readout_error,
        calib.Calibration.single_error,
        calib.Calibration.cnot_error,
        trials,
        seed )
      []
  in
  Digest.to_hex (Digest.string payload)

(* --------------------- figure-cell fan-out ------------------------- *)

(* A figure sweep is a list of independent (benchmark, config)
   compile+simulate cells. [map_cells] dispatches them over the domain
   pool, one cell per pool chunk; inside a cell the Monte-Carlo trials
   run on the {e sequential} reference path (flagged via DLS), so the
   pool parallelizes across cells instead of nesting inside them. Every
   per-cell value is bit-deterministic — the compile is a pure function
   of (config, calibration) and the sequential trial loop derives each
   256-trial chunk's stream from the cell seed via [Rng.mix], exactly as
   the pooled path does — and results are returned in input order, so
   the output is byte-identical to the sequential sweep at any worker
   count. Journalled cells keep their [sim_digest] keys regardless of
   completion order, which is what keeps the PR-4 resume contract
   intact (replay is key-based, not order-based). *)

let in_cell : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

(* Opt-out knob: NISQ_CELL_FANOUT=0 (or off/false) forces the
   sequential sweep — byte-identical output, just slower. *)
let cell_fanout_enabled () =
  match Sys.getenv_opt "NISQ_CELL_FANOUT" with
  | Some ("0" | "off" | "false") -> false
  | _ -> true

let map_cells ?pool (cells : (unit -> 'a) list) : 'a list =
  let pool = match pool with Some p -> p | None -> Nisq_util.Pool.default () in
  if
    List.length cells <= 1
    || (not (cell_fanout_enabled ()))
    || Domain.DLS.get in_cell
  then List.map (fun f -> f ()) cells
  else begin
    let arr = Array.of_list cells in
    Nisq_util.Pool.parallel_chunks pool ~chunks:(Array.length arr) (fun i ->
        Domain.DLS.set in_cell true;
        Fun.protect
          ~finally:(fun () -> Domain.DLS.set in_cell false)
          (fun () -> arr.(i) ()))
  end

(* Success rate with checkpoint/resume: when a [Nisq_runkit.Run] is
   installed, completed cells come straight from the journal and fresh
   ones are journalled as they finish. Without an ambient run this is
   exactly [Runner.success_rate] (or its bit-identical sequential
   reference when already running inside a fanned-out figure cell). *)
let checkpointed_success_rate ?(trials = default_trials)
    ?(seed = default_sim_seed) ?pool (result : Compile.t) =
  let compute () =
    let runner = runner_of result in
    if Domain.DLS.get in_cell then Runner.success_rate_seq ~trials ~seed runner
    else
      let pool =
        match pool with Some p -> p | None -> Nisq_util.Pool.default ()
      in
      Runner.success_rate ~trials ~pool ~seed runner
  in
  match Nisq_runkit.Run.current () with
  | None -> compute ()
  | Some run ->
      Nisq_runkit.Run.float_cell run ~key:(sim_digest result ~trials ~seed)
        compute

(* Regroup a flat, input-ordered cell-result list back into per-name
   rows of a fixed width. *)
let regroup names ~width flat =
  let rec split n acc l =
    if n = 0 then (List.rev acc, l)
    else
      match l with
      | x :: tl -> split (n - 1) (x :: acc) tl
      | [] -> invalid_arg "Experiments.regroup: short result list"
  in
  let rec go names flat =
    match names with
    | [] -> []
    | name :: rest ->
        let row, flat = split width [] flat in
        (name, row) :: go rest flat
  in
  go names flat

let evaluate ?(trials = default_trials) ?(seed = default_sim_seed) ?pool
    ~config ~calib (bench : Benchmarks.t) =
  let result = Compile.run ~config ~calib bench.Benchmarks.circuit in
  let success = checkpointed_success_rate ~trials ~seed ?pool result in
  { bench; config; result; success }

let section title body =
  Printf.sprintf "=== %s ===\n%s\n" title body

(* ------------------------------------------------------------------ *)
(* Table 2                                                             *)
(* ------------------------------------------------------------------ *)

let table2 () =
  let rows =
    List.map
      (fun b ->
        let name, qubits, gates, cnots = Benchmarks.characteristics b in
        [ name; string_of_int qubits; string_of_int gates; string_of_int cnots ])
      Benchmarks.all
  in
  section "Table 2: benchmark characteristics"
    (Table.render
       ~align:[ Table.Left; Table.Right; Table.Right; Table.Right ]
       ~header:[ "Name"; "Qubits"; "Gates"; "CNOTs" ]
       ~rows ())

(* ------------------------------------------------------------------ *)
(* Figure 1: daily calibration variation                               *)
(* ------------------------------------------------------------------ *)

let fig1_data ?(days = 25) ?(seed = Ibmq16.default_seed) () =
  let series = Ibmq16.calibration_series ~seed ~days () in
  Array.mapi
    (fun day calib ->
      let edges = Topology.edges Ibmq16.topology in
      let cnot_errs =
        Array.of_list
          (List.map (fun (a, b) -> Calibration.cnot_error calib a b) edges)
      in
      (day, Array.copy calib.Calibration.t2_us, cnot_errs))
    series

let fig1 ?days ?seed () =
  let data = fig1_data ?days ?seed () in
  let sample_qubits = [ 0; 4; 9; 13 ] in
  let sample_edges = [ 0; 7; 14 ] in
  let edges = Array.of_list (Topology.edges Ibmq16.topology) in
  let header_a =
    "Day" :: List.map (fun q -> Printf.sprintf "T2(Q%d) us" q) sample_qubits
  in
  let rows_a =
    Array.to_list
      (Array.map
         (fun (day, t2, _) ->
           string_of_int day
           :: List.map (fun q -> Table.fmt_float ~digits:1 t2.(q)) sample_qubits)
         data)
  in
  let header_b =
    "Day"
    :: List.map
         (fun i ->
           let a, b = edges.(i) in
           Printf.sprintf "CNOT %d,%d" a b)
         sample_edges
  in
  let rows_b =
    Array.to_list
      (Array.map
         (fun (day, _, errs) ->
           string_of_int day
           :: List.map (fun i -> Table.fmt_float ~digits:3 errs.(i)) sample_edges)
         data)
  in
  (* spread statistics quoted in §2 *)
  let all_t2 = Array.concat (Array.to_list (Array.map (fun (_, t2, _) -> t2) data)) in
  let all_cn = Array.concat (Array.to_list (Array.map (fun (_, _, e) -> e) data)) in
  let t2_lo, t2_hi = Stats.min_max all_t2 in
  let cn_lo, cn_hi = Stats.min_max all_cn in
  section "Figure 1: daily variation in T2 and CNOT error (selected elements)"
    (Table.render ~align:[ Table.Right ] ~header:header_a ~rows:rows_a ()
    ^ "\n"
    ^ Table.render ~align:[ Table.Right ] ~header:header_b ~rows:rows_b ()
    ^ Printf.sprintf
        "\nspread across qubits and days: T2 %.1fx (mean %.1f us), CNOT error %.1fx (mean %.3f)\n"
        (t2_hi /. t2_lo) (Stats.mean all_t2) (cn_hi /. cn_lo) (Stats.mean all_cn))

(* ------------------------------------------------------------------ *)
(* Figure 5: success rate vs Qiskit                                    *)
(* ------------------------------------------------------------------ *)

let fig5_configs =
  [ Config.make Config.Qiskit;
    Config.make Config.T_smt_star;
    Config.make (Config.R_smt_star 0.5) ]

let fig5_data ?trials ?seed ?(day = 0) ?pool () =
  let calib = Ibmq16.calibration ~day () in
  let cells =
    List.concat_map
      (fun b ->
        List.map
          (fun config () ->
            (Config.name config, evaluate ?trials ?seed ~config ~calib b))
          fig5_configs)
      Benchmarks.all
  in
  regroup
    (List.map (fun b -> b.Benchmarks.name) Benchmarks.all)
    ~width:(List.length fig5_configs)
    (map_cells ?pool cells)

let headline data =
  let get name =
    Array.of_list
      (List.map
         (fun (_, evals) ->
           let e = List.assoc name evals in
           e.success)
         data)
  in
  let qiskit = get (Config.name (List.nth fig5_configs 0)) in
  let tsmt = get (Config.name (List.nth fig5_configs 1)) in
  let rsmt = get (Config.name (List.nth fig5_configs 2)) in
  let geo_q, max_q = Stats.ratio_summary ~num:rsmt ~den:qiskit in
  let geo_t, max_t = Stats.ratio_summary ~num:rsmt ~den:tsmt in
  (* zero-swap vs swap-needing benchmarks, under R-SMT* *)
  let rsmt_name = Config.name (List.nth fig5_configs 2) in
  let zero, nonzero =
    List.partition
      (fun (_, evals) ->
        (List.assoc rsmt_name evals).result.Compile.swap_count = 0)
      data
  in
  let avg l =
    if l = [] then 0.0
    else
      Stats.mean
        (Array.of_list (List.map (fun (_, e) -> (List.assoc rsmt_name e).success) l))
  in
  Printf.sprintf
    "headline: R-SMT* vs Qiskit: geomean %.2fx (max %.2fx); vs T-SMT*: geomean %.2fx (max %.2fx)\n\
     zero-swap benchmarks (%d): mean success %.3f; swap-needing (%d): mean success %.3f (%.2fx gap)\n"
    geo_q max_q geo_t max_t (List.length zero) (avg zero) (List.length nonzero)
    (avg nonzero)
    (avg zero /. Float.max (avg nonzero) 1e-9)

let success_table data =
  let configs = List.map fst (snd (List.hd data)) in
  let rows =
    List.map
      (fun (bench, evals) ->
        bench
        :: List.map
             (fun c -> Table.fmt_float ~digits:3 (List.assoc c evals).success)
             configs)
      data
  in
  Table.render
    ~align:(Table.Left :: List.map (fun _ -> Table.Right) configs)
    ~header:("Benchmark" :: configs)
    ~rows ()

let fig5 ?trials ?seed ?day () =
  let data = fig5_data ?trials ?seed ?day () in
  section "Figure 5: measured success rate (Qiskit vs T-SMT* vs R-SMT* w=0.5)"
    (success_table data ^ "\n" ^ headline data)

(* ------------------------------------------------------------------ *)
(* Figure 6: a week of daily runs                                      *)
(* ------------------------------------------------------------------ *)

let fig6_benches () =
  [ Benchmarks.by_name "BV4"; Benchmarks.by_name "HS6"; Benchmarks.by_name "Toffoli" ]

let fig6_data ?trials ?seed ?(days = 7) () =
  let calibs = Ibmq16.calibration_series ~days () in
  let benches = fig6_benches () in
  let cells =
    List.concat_map
      (fun b ->
        Array.to_list
          (Array.mapi
             (fun day calib () ->
               let t =
                 evaluate ?trials ?seed ~config:(Config.make Config.T_smt_star)
                   ~calib b
               in
               let r =
                 evaluate ?trials ?seed
                   ~config:(Config.make (Config.R_smt_star 0.5))
                   ~calib b
               in
               (day, t.success, r.success))
             calibs))
      benches
  in
  regroup
    (List.map (fun b -> b.Benchmarks.name) benches)
    ~width:(Array.length calibs) (map_cells cells)

let fig6 ?trials ?seed ?days () =
  let data = fig6_data ?trials ?seed ?days () in
  let body =
    List.map
      (fun (bench, series) ->
        let rows =
          List.map
            (fun (day, t, r) ->
              [ string_of_int day;
                Table.fmt_float ~digits:3 t;
                Table.fmt_float ~digits:3 r ])
            series
        in
        let t_mean =
          Stats.mean (Array.of_list (List.map (fun (_, t, _) -> t) series))
        in
        let r_mean =
          Stats.mean (Array.of_list (List.map (fun (_, _, r) -> r) series))
        in
        Printf.sprintf "%s (week means: T-SMT* %.3f, R-SMT* %.3f)\n%s" bench
          t_mean r_mean
          (Table.render ~align:[ Table.Right; Table.Right; Table.Right ]
             ~header:[ "Day"; "T-SMT*"; "R-SMT* w=0.5" ]
             ~rows ()))
      data
    |> String.concat "\n"
  in
  section "Figure 6: daily success over one week (recompiled each day)" body

(* ------------------------------------------------------------------ *)
(* Figure 7: objective choice (omega sweep)                            *)
(* ------------------------------------------------------------------ *)

let fig7_configs =
  [ Config.make Config.T_smt_star;
    Config.make (Config.R_smt_star 1.0);
    Config.make (Config.R_smt_star 0.0);
    Config.make (Config.R_smt_star 0.5) ]

let fig7 ?trials ?seed ?(day = 0) () =
  let calib = Ibmq16.calibration ~day () in
  let benches = fig6_benches () in
  let cells =
    List.concat_map
      (fun b ->
        List.map
          (fun config () ->
            (Config.name config, evaluate ?trials ?seed ~config ~calib b))
          fig7_configs)
      benches
  in
  let data =
    regroup
      (List.map (fun b -> b.Benchmarks.name) benches)
      ~width:(List.length fig7_configs)
      (map_cells cells)
  in
  let configs = List.map Config.name fig7_configs in
  let mk f fmt =
    List.map
      (fun (bench, evals) ->
        bench :: List.map (fun c -> fmt (f (List.assoc c evals))) configs)
      data
  in
  let align = Table.Left :: List.map (fun _ -> Table.Right) configs in
  section "Figure 7: choice of optimization objective (BV4, HS6, Toffoli)"
    ("(a) success rate\n"
    ^ Table.render ~align ~header:("Benchmark" :: configs)
        ~rows:(mk (fun e -> e.success) (Table.fmt_float ~digits:3))
        ()
    ^ "\n(b) execution duration (timeslots)\n"
    ^ Table.render ~align ~header:("Benchmark" :: configs)
        ~rows:
          (mk
             (fun e -> Float.of_int e.result.Compile.duration)
             (fun f -> string_of_int (int_of_float f)))
        ()
    ^ "\n(c) compile time (s)\n"
    ^ Table.render ~align ~header:("Benchmark" :: configs)
        ~rows:
          (mk (fun e -> e.result.Compile.compile_seconds)
             (Table.fmt_float ~digits:3))
        ())

(* ------------------------------------------------------------------ *)
(* Figure 8: BV4 mappings                                              *)
(* ------------------------------------------------------------------ *)

let fig8 ?(day = 0) () =
  let calib = Ibmq16.calibration ~day () in
  let bv4 = Benchmarks.by_name "BV4" in
  let configs =
    [ Config.make Config.Qiskit;
      Config.make Config.T_smt_star;
      Config.make (Config.R_smt_star 1.0);
      Config.make (Config.R_smt_star 0.5) ]
  in
  let body =
    List.map
      (fun config ->
        let r = Compile.run ~config ~calib bv4.Benchmarks.circuit in
        Printf.sprintf "%s: swaps=%d, duration=%d slots, ESP=%.3f\n%s"
          (Config.name config) r.Compile.swap_count r.Compile.duration
          r.Compile.esp
          (Layout.render Ibmq16.topology ~calib r.Compile.layout))
      configs
    |> String.concat "\n"
  in
  section
    "Figure 8: BV4 qubit mappings (nodes: program qubit + readout err %; edges: CNOT err %)"
    body

(* ------------------------------------------------------------------ *)
(* Figure 9: durations by routing policy and gate-time awareness       *)
(* ------------------------------------------------------------------ *)

let fig9_configs =
  [ Config.make ~routing:Config.Rectangle_reservation Config.T_smt;
    Config.make ~routing:Config.Rectangle_reservation Config.T_smt_star;
    Config.make ~routing:Config.One_bend Config.T_smt_star;
    Config.make ~routing:Config.One_bend (Config.R_smt_star 0.5) ]

let fig9_data ?(day = 0) () =
  let calib = Ibmq16.calibration ~day () in
  List.map
    (fun b ->
      ( b.Benchmarks.name,
        List.map
          (fun config ->
            let r = Compile.run ~config ~calib b.Benchmarks.circuit in
            (Config.name config, r.Compile.duration))
          fig9_configs ))
    Benchmarks.all

let fig9 ?day () =
  let data = fig9_data ?day () in
  let configs = List.map Config.name fig9_configs in
  let rows =
    List.map
      (fun (bench, durs) ->
        bench :: List.map (fun c -> string_of_int (List.assoc c durs)) configs)
      data
  in
  (* noise-aware vs noise-blind duration ratio (the paper's 1.6x claim) *)
  let blind =
    Array.of_list
      (List.map (fun (_, d) -> Float.of_int (List.assoc (List.nth configs 0) d)) data)
  in
  let aware =
    Array.of_list
      (List.map (fun (_, d) -> Float.of_int (List.assoc (List.nth configs 1) d)) data)
  in
  let geo, mx = Stats.ratio_summary ~num:blind ~den:aware in
  section "Figure 9: execution duration (timeslots) by policy"
    (Table.render
       ~align:(Table.Left :: List.map (fun _ -> Table.Right) configs)
       ~header:("Benchmark" :: configs)
       ~rows ()
    ^ Printf.sprintf "T-SMT (blind) vs T-SMT* (calibrated): geomean %.2fx slower (max %.2fx)\n"
        geo mx)

(* ------------------------------------------------------------------ *)
(* Figure 10: heuristics vs optimal                                    *)
(* ------------------------------------------------------------------ *)

let fig10_configs =
  [ Config.make (Config.R_smt_star 0.5);
    Config.make Config.Greedy_e;
    Config.make Config.Greedy_v ]

let fig10_data ?trials ?seed ?(day = 0) () =
  let calib = Ibmq16.calibration ~day () in
  let cells =
    List.concat_map
      (fun b ->
        List.map
          (fun config () ->
            (Config.name config, evaluate ?trials ?seed ~config ~calib b))
          fig10_configs)
      Benchmarks.all
  in
  regroup
    (List.map (fun b -> b.Benchmarks.name) Benchmarks.all)
    ~width:(List.length fig10_configs)
    (map_cells cells)

let fig10 ?trials ?seed ?day () =
  let data = fig10_data ?trials ?seed ?day () in
  section "Figure 10: noise-aware heuristics vs R-SMT*" (success_table data)

(* ------------------------------------------------------------------ *)
(* Figure 11: compile-time scalability                                 *)
(* ------------------------------------------------------------------ *)

let fig11_data ?(rsmt_seconds = 10.0) ?(quick = false) () =
  let gate_counts = if quick then [ 128; 256 ] else [ 128; 192; 256; 384; 512 ] in
  let greedy_gates =
    if quick then [ 128; 512 ] else [ 128; 256; 512; 1024; 2048 ]
  in
  let rsmt_qubits = if quick then [ 4; 8 ] else [ 4; 8; 16; 32 ] in
  let greedy_qubits = if quick then [ 8; 32 ] else [ 4; 8; 32; 64; 128 ] in
  let run ~config ~qubits ~gates =
    let topo = Synth.grid_for ~qubits in
    let calib = Calib_gen.generate ~topology:topo ~seed:7 ~day:0 () in
    let circuit = Synth.random_circuit ~qubits ~gates ~seed:(qubits + gates) () in
    let r = Compile.run ~config ~calib circuit in
    ( r.Compile.compile_seconds,
      match r.Compile.solver_stats with
      | Some s -> s.Budget.proven_optimal
      | None -> true )
  in
  let rsmt_budget = Budget.make ~max_seconds:rsmt_seconds ~max_nodes:2_000_000 () in
  let rsmt_rows =
    List.concat_map
      (fun qubits ->
        List.filter_map
          (fun gates ->
            if gates > 384 && qubits >= 32 then None
            else
              let config =
                Config.make ~budget:rsmt_budget (Config.R_smt_star 0.5)
              in
              let secs, proven = run ~config ~qubits ~gates in
              Some ("R-SMT*", qubits, gates, secs, proven))
          gate_counts)
      rsmt_qubits
  in
  let greedy_rows =
    List.concat_map
      (fun qubits ->
        List.map
          (fun gates ->
            let config = Config.make Config.Greedy_e in
            let secs, proven = run ~config ~qubits ~gates in
            ("GreedyE*", qubits, gates, secs, proven))
          greedy_gates)
      greedy_qubits
  in
  rsmt_rows @ greedy_rows

let fig11 ?rsmt_seconds ?quick () =
  let data = fig11_data ?rsmt_seconds ?quick () in
  let rows =
    List.map
      (fun (m, q, g, s, proven) ->
        [ m; string_of_int q; string_of_int g;
          Printf.sprintf "%.4f" s;
          (if String.length m >= 6 && String.sub m 0 6 = "Greedy" then
             "n/a (heuristic)"
           else if proven then "optimal"
           else "budget-truncated") ])
      data
  in
  section "Figure 11: compile-time scalability on random circuits"
    (Table.render
       ~align:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Left ]
       ~header:[ "Method"; "Qubits"; "Gates"; "Compile (s)"; "Optimality" ]
       ~rows ())

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablation_movement ?trials ?seed ?(day = 0) () =
  let calib = Ibmq16.calibration ~day () in
  let benches = [ "BV8"; "Toffoli"; "Fredkin"; "Peres"; "Or"; "Adder" ] in
  let rows =
    map_cells
      (List.concat_map
         (fun name ->
           let b = Benchmarks.by_name name in
           List.map
             (fun movement () ->
               let config =
                 Config.make ~movement (Config.R_smt_star 0.5)
               in
               let e = evaluate ?trials ?seed ~config ~calib b in
               [
                 name;
                 (match movement with
                 | Config.Swap_back -> "swap-back (paper)"
                 | Config.Move_and_stay -> "move-and-stay");
                 string_of_int e.result.Compile.swap_count;
                 string_of_int e.result.Compile.duration;
                 Table.fmt_float ~digits:3 e.result.Compile.esp;
                 Table.fmt_float ~digits:3 e.success;
               ])
             [ Config.Swap_back; Config.Move_and_stay ])
         benches)
  in
  section "Ablation: movement model (R-SMT* w=0.5, swap-needing benchmarks)"
    (Table.render
       ~align:
         [ Table.Left; Table.Left; Table.Right; Table.Right; Table.Right;
           Table.Right ]
       ~header:[ "Benchmark"; "Movement"; "Swaps"; "Slots"; "ESP"; "Success" ]
       ~rows ())

let ablation_topology ?trials ?seed () =
  let topologies =
    [ ("grid-2x8", Ibmq16.topology);
      ("ring-16", Topology.ring 16);
      ("torus-4x4", Topology.torus ~rows:4 ~cols:4);
      ("full-16", Topology.fully_connected 16) ]
  in
  let benches = [ "BV8"; "Toffoli"; "Fredkin"; "Adder" ] in
  (* Generate each topology's calibration once, outside the cells, so all
     benchmarks on a topology share one cached [Paths.t]. *)
  let calibs =
    List.map
      (fun (tname, topo) ->
        ( tname,
          Calib_gen.generate ~topology:topo ~seed:Ibmq16.default_seed ~day:0 ()
        ))
      topologies
  in
  let rows =
    map_cells
      (List.concat_map
         (fun name ->
           let b = Benchmarks.by_name name in
           List.map
             (fun (tname, calib) () ->
               let e =
                 evaluate ?trials ?seed
                   ~config:(Config.make (Config.R_smt_star 0.5))
                   ~calib b
               in
               [
                 name; tname;
                 string_of_int e.result.Compile.swap_count;
                 string_of_int e.result.Compile.duration;
                 Table.fmt_float ~digits:3 e.success;
               ])
             calibs)
         benches)
  in
  section
    "Ablation: topology richness (R-SMT* w=0.5; richer coupling removes SWAPs)"
    (Table.render
       ~align:[ Table.Left; Table.Left; Table.Right; Table.Right; Table.Right ]
       ~header:[ "Benchmark"; "Topology"; "Swaps"; "Slots"; "Success" ]
       ~rows ())

let ablation_trials ?seed () =
  let calib = Ibmq16.calibration ~day:0 () in
  let benches = [ "BV4"; "Toffoli" ] in
  let trial_counts = [ 256; 1024; 4096; 8192 ] in
  let rows =
    List.map
      (fun name ->
        let b = Benchmarks.by_name name in
        let result =
          Compile.run
            ~config:(Config.make (Config.R_smt_star 0.5))
            ~calib b.Benchmarks.circuit
        in
        name
        :: List.map
             (fun trials ->
               Table.fmt_float ~digits:4
                 (checkpointed_success_rate ~trials ?seed result))
             trial_counts)
      benches
  in
  section "Ablation: Monte-Carlo trial-count sensitivity"
    (Table.render
       ~align:(Table.Left :: List.map (fun _ -> Table.Right) trial_counts)
       ~header:("Benchmark" :: List.map (fun t -> string_of_int t) trial_counts)
       ~rows ())

let ablation_high_variance ?trials ?seed () =
  let calib = Ibmq16.high_variance_calibration ~day:0 () in
  let cells =
    List.concat_map
      (fun b ->
        List.map
          (fun config () ->
            (Config.name config, evaluate ?trials ?seed ~config ~calib b))
          fig5_configs)
      Benchmarks.all
  in
  let data =
    regroup
      (List.map (fun b -> b.Benchmarks.name) Benchmarks.all)
      ~width:(List.length fig5_configs)
      (map_cells cells)
  in
  section
    "Ablation: high-variance machine state (the regime of the paper's 9.25x claim)"
    (success_table data ^ "\n" ^ headline data)

let ablation_architecture ?trials ?seed () =
  (* Mirrors the spirit of Linke et al. (the paper's ref. [29]):
     superconducting grid vs trapped-ion all-to-all on the same
     programs. *)
  let machines =
    [ ("IBMQ16 (2x8 grid)", Ibmq16.calibration ~day:0 ());
      ("ion trap (full-16)", Nisq_device.Iontrap.calibration ~day:0 ()) ]
  in
  let rows =
    map_cells
      (List.concat_map
         (fun b ->
           List.map
             (fun (mname, calib) () ->
               let e =
                 evaluate ?trials ?seed
                   ~config:(Config.make (Config.R_smt_star 0.5))
                   ~calib b
               in
               [
                 b.Benchmarks.name; mname;
                 string_of_int e.result.Compile.swap_count;
                 string_of_int e.result.Compile.duration;
                 Table.fmt_float ~digits:3 e.success;
               ])
             machines)
         (List.filter
            (fun b ->
              List.mem b.Benchmarks.name
                [ "BV8"; "HS6"; "Toffoli"; "Fredkin"; "Adder" ])
            Benchmarks.all))
  in
  section
    "Ablation: architecture comparison (connectivity vs gate speed, cf. Linke et al.)"
    (Table.render
       ~align:[ Table.Left; Table.Left; Table.Right; Table.Right; Table.Right ]
       ~header:[ "Benchmark"; "Machine"; "Swaps"; "Slots"; "Success" ]
       ~rows ())

(* ------------------------------------------------------------------ *)

let run_all ?trials ?(quick = false) () =
  let buf = Buffer.create (1 lsl 16) in
  let add s = Buffer.add_string buf s; Buffer.add_char buf '\n' in
  add (table2 ());
  add (fig1 ());
  add (fig5 ?trials ());
  add (fig6 ?trials ());
  add (fig7 ?trials ());
  add (fig8 ());
  add (fig9 ());
  add (fig10 ?trials ());
  add (fig11 ~quick ());
  add (ablation_movement ?trials ());
  add (ablation_topology ?trials ());
  add (ablation_trials ());
  add (ablation_high_variance ?trials ());
  add (ablation_architecture ?trials ());
  Buffer.contents buf
