module Json = Nisq_obs.Json

type verdict = {
  name : string;
  latest_ns : float;
  baseline_ns : float option;
  ratio : float option;
  regressed : bool;
}

type analysis = {
  latest_date : string;
  baseline_entries : int;
  threshold : float;
  verdicts : verdict list;
  failures : int;
}

let ( let* ) = Result.bind

(* One trajectory entry, decoded: date plus (name, ns_per_run) rows in
   file order. *)
let decode_entry i e =
  let ctx = Printf.sprintf "trajectory entry %d" i in
  let* date =
    match Json.member "date" e with
    | Some (Json.String d) -> Ok d
    | _ -> Error (ctx ^ ": missing or non-string \"date\"")
  in
  let* rows =
    match Json.member "benchmarks" e with
    | Some (Json.List bs) ->
        List.fold_left
          (fun acc b ->
            let* acc = acc in
            let* name =
              match Json.member "name" b with
              | Some (Json.String s) -> Ok s
              | _ -> Error (ctx ^ ": benchmark missing a string \"name\"")
            in
            let* ns =
              match Json.member "ns_per_run" b with
              | Some (Json.Float f) -> Ok f
              | Some (Json.Int n) -> Ok (Float.of_int n)
              | _ ->
                  Error
                    (Printf.sprintf "%s: %s: missing numeric \"ns_per_run\""
                       ctx name)
            in
            Ok ((name, ns) :: acc))
          (Ok []) bs
        |> Result.map List.rev
    | _ -> Error (ctx ^ ": missing \"benchmarks\" list")
  in
  Ok (date, rows)

let decode_trajectory v =
  match Json.member "schema" v with
  | Some (Json.String ("nisq-bench-compile/2" | "nisq-bench-sim/1")) -> (
      match Json.member "trajectory" v with
      | Some (Json.List (_ :: _ as entries)) ->
          List.fold_left
            (fun (acc, i) e ->
              match acc with
              | Error _ -> (acc, i)
              | Ok rest ->
                  ( (let* d = decode_entry i e in
                     Ok (d :: rest)),
                    i + 1 ))
            (Ok [], 0) entries
          |> fst
          |> Result.map List.rev
      | Some (Json.List []) -> Error "\"trajectory\" is empty"
      | _ -> Error "missing \"trajectory\" list")
  | Some (Json.String "nisq-bench-compile/1") ->
      (* One implicit, undated entry: no history, vacuous pass. *)
      let* d = decode_entry 0 (Json.Obj [ ("date", Json.String "legacy"); ("benchmarks", Option.value ~default:Json.Null (Json.member "benchmarks" v)) ]) in
      Ok [ d ]
  | Some (Json.String s) -> Error (Printf.sprintf "unknown schema %S" s)
  | _ -> Error "missing \"schema\""

let median = function
  | [] -> None
  | xs ->
      let a = Array.of_list xs in
      Array.sort Float.compare a;
      let n = Array.length a in
      Some
        (if n mod 2 = 1 then a.(n / 2)
         else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0)

let analyze ?(threshold = 1.5) ?(window = 5) v =
  if not (threshold > 0.0) then invalid_arg "Benchwatch.analyze: threshold";
  if window < 1 then invalid_arg "Benchwatch.analyze: window";
  let* entries = decode_trajectory v in
  let latest_date, latest = List.nth entries (List.length entries - 1) in
  let prior =
    (* trailing [window] entries just before the latest, newest first *)
    let before = List.filteri (fun i _ -> i < List.length entries - 1) entries in
    let rev = List.rev before in
    List.filteri (fun i _ -> i < window) rev
  in
  let baseline name =
    median
      (List.filter_map
         (fun (_, rows) -> List.assoc_opt name rows)
         prior)
  in
  let verdicts =
    List.map
      (fun (name, latest_ns) ->
        match baseline name with
        | Some b when b > 0.0 ->
            let ratio = latest_ns /. b in
            {
              name;
              latest_ns;
              baseline_ns = Some b;
              ratio = Some ratio;
              regressed = ratio > threshold;
            }
        | _ ->
            { name; latest_ns; baseline_ns = None; ratio = None; regressed = false })
      latest
  in
  Ok
    {
      latest_date;
      baseline_entries = List.length prior;
      threshold;
      verdicts;
      failures =
        List.length (List.filter (fun v -> v.regressed) verdicts);
    }

let render a =
  let buf = Buffer.create 512 in
  Printf.bprintf buf
    "benchwatch: latest entry %s vs median of %d prior entr%s (threshold %.2fx)\n"
    a.latest_date a.baseline_entries
    (if a.baseline_entries = 1 then "y" else "ies")
    a.threshold;
  List.iter
    (fun v ->
      match (v.baseline_ns, v.ratio) with
      | Some b, Some r ->
          Printf.bprintf buf "  %-36s %12.0f ns  baseline %12.0f ns  %5.2fx  %s\n"
            v.name v.latest_ns b r
            (if v.regressed then "REGRESSED" else "ok")
      | _ ->
          Printf.bprintf buf "  %-36s %12.0f ns  (new benchmark, no baseline)\n"
            v.name v.latest_ns)
    a.verdicts;
  Printf.bprintf buf "benchwatch: %s (%d of %d benchmarks regressed)\n"
    (if a.failures = 0 then "PASS" else "FAIL")
    a.failures (List.length a.verdicts);
  Buffer.contents buf
