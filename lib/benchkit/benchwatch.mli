(** Bench-trajectory regression sentinel.

    [BENCH_compile.json] (schema [nisq-bench-compile/2], appended by
    [make bench-compile]) and [BENCH_sim.json] (schema
    [nisq-bench-sim/1], appended by [make bench-scale]) carry dated
    trajectories of benchmark entries — sim entries add fields like
    [trials_per_sec], which the gate ignores; only [ns_per_run] is
    compared. This module compares the {e latest} entry
    against a trailing baseline — per benchmark, the median of its
    [ns_per_run] over up to [window] prior entries — and flags any
    benchmark whose latest/baseline ratio exceeds [threshold].

    The median baseline absorbs single-run noise and machine drift;
    the threshold (default 1.5×) is deliberately loose, because
    Bechamel estimates on shared CI hardware wobble — the sentinel is
    for the 2× cliffs a bad commit causes, not 5% regressions.

    Policy decisions, all vacuously passing rather than failing:
    - a trajectory with fewer than two entries has no baseline;
    - a benchmark appearing only in the latest entry is {e new} and is
      reported but never failed;
    - a benchmark present earlier but missing from the latest entry is
      ignored here — the [jsonlint --bench] name-set check owns that;
    - non-positive baselines (a pathological 0 estimate) are skipped.

    [tools/benchwatch] wraps {!analyze} as the [make bench-gate] CI
    command; the test suite drives it with synthetic trajectories. *)

type verdict = {
  name : string;
  latest_ns : float;
  baseline_ns : float option;  (** [None]: new benchmark, no history *)
  ratio : float option;  (** [latest_ns /. baseline] when both exist *)
  regressed : bool;  (** [ratio > threshold] *)
}

type analysis = {
  latest_date : string;
  baseline_entries : int;  (** prior entries feeding the baselines *)
  threshold : float;
  verdicts : verdict list;  (** latest entry's benchmarks, file order *)
  failures : int;  (** count of [regressed] verdicts *)
}

val analyze :
  ?threshold:float ->
  ?window:int ->
  Nisq_obs.Json.t ->
  (analysis, string) result
(** Analyze a parsed baseline document. [threshold] (default [1.5]) is
    the latest/baseline ratio above which a benchmark fails; [window]
    (default [5]) caps how many trailing prior entries feed the median.
    [Error] on a document that is not a [nisq-bench-compile/1], [/2]
    or [nisq-bench-sim/1] baseline ([compile/1] files have one implicit
    entry and therefore always pass). *)

val render : analysis -> string
(** Human-readable table: one line per verdict (name, latest,
    baseline, ratio, status) plus a PASS/FAIL summary line. *)
