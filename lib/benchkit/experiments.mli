(** Regeneration of every table and figure in the paper's evaluation
    (§7). Each [figN] returns the rendered report; [*_data] variants
    expose the underlying numbers for tests and plotting.

    Defaults: calibration seed {!Nisq_device.Ibmq16.default_seed}, day 0,
    4096 trials (paper: 8192), all runs deterministic. *)

type eval = {
  bench : Benchmarks.t;
  config : Nisq_compiler.Config.t;
  result : Nisq_compiler.Compile.t;
  success : float;
}

val runner_of : Nisq_compiler.Compile.t -> Nisq_sim.Runner.t
(** Wrap a compiled program for the Monte-Carlo runner. *)

val sim_digest : Nisq_compiler.Compile.t -> trials:int -> seed:int -> string
(** Checkpoint-cell key for one simulation: a hex digest of the compiled
    physical ops, readout map, calibration noise arrays, trial count and
    seed — everything that determines the (bit-deterministic) success
    rate. Equal digests guarantee equal results, so a journalled cell
    can be replayed on resume in place of rerunning the trials. *)

val cell_fanout_enabled : unit -> bool
(** Whether figure-cell fan-out is on. Disabled when the
    [NISQ_CELL_FANOUT] environment variable is ["0"], ["off"] or
    ["false"]; on by default. *)

val map_cells : ?pool:Nisq_util.Pool.t -> (unit -> 'a) list -> 'a list
(** Run independent figure cells (one compile + simulate each) over the
    domain pool, returning results in input order. Byte-deterministic:
    each cell's value is a pure function of its inputs and the
    Monte-Carlo trials inside a cell run on the bit-identical sequential
    reference path, so the result list — and hence every rendered
    table — is identical to [List.map (fun f -> f ())] at any worker
    count. Falls back to the plain sequential map when the list has at
    most one cell, when {!cell_fanout_enabled} is off, or when already
    running inside a cell (no nested fan-out). [pool] defaults to
    {!Nisq_util.Pool.default}. *)

val checkpointed_success_rate :
  ?trials:int ->
  ?seed:int ->
  ?pool:Nisq_util.Pool.t ->
  Nisq_compiler.Compile.t ->
  float
(** [Runner.success_rate] routed through the ambient
    {!Nisq_runkit.Run} when one is installed: a cell already in the
    run's journal is returned without simulating; a fresh cell is
    journalled (fsync'd) as soon as it completes. Identical to the plain
    computation when no run is installed. *)

val evaluate :
  ?trials:int ->
  ?seed:int ->
  ?pool:Nisq_util.Pool.t ->
  config:Nisq_compiler.Config.t ->
  calib:Nisq_device.Calibration.t ->
  Benchmarks.t ->
  eval
(** Compile then measure the success rate over noisy trials. Trials run
    on [pool] (default {!Nisq_util.Pool.default}, sized by the
    [NISQ_DOMAINS] environment variable); the estimate is bit-identical
    for every pool size. *)

val table2 : unit -> string
(** Benchmark characteristics. *)

val fig1_data :
  ?days:int -> ?seed:int -> unit -> (int * float array * float array) array
(** Per day: (day, T2 per qubit (µs), CNOT error per edge). *)

val fig1 : ?days:int -> ?seed:int -> unit -> string

val fig5_data :
  ?trials:int -> ?seed:int -> ?day:int -> ?pool:Nisq_util.Pool.t -> unit ->
  (string * (string * eval) list) list
(** Per benchmark: evals for Qiskit, T-SMT⋆ and R-SMT⋆(ω=0.5). The
    (benchmark, config) cells are fanned out over [pool] via
    {!map_cells}; the data is identical for every pool size. *)

val fig5 : ?trials:int -> ?seed:int -> ?day:int -> unit -> string
(** Includes the §7 headline numbers: geomean and max success-rate gain
    of R-SMT⋆ over Qiskit and over T-SMT⋆, and the zero-swap analysis. *)

val fig6_data :
  ?trials:int -> ?seed:int -> ?days:int -> unit ->
  (string * (int * float * float) list) list
(** Per benchmark (BV4, HS6, Toffoli): (day, T-SMT⋆ success, R-SMT⋆
    success) over a week. *)

val fig6 : ?trials:int -> ?seed:int -> ?days:int -> unit -> string

val fig7 : ?trials:int -> ?seed:int -> ?day:int -> unit -> string
(** ω ∈ {1, 0, 0.5} vs T-SMT⋆ on BV4/HS6/Toffoli: success rate,
    duration, compile time. *)

val fig8 : ?day:int -> unit -> string
(** The four BV4 mappings, rendered on the device grid. *)

val fig9_data :
  ?day:int -> unit -> (string * (string * int) list) list
(** Per benchmark: execution duration (timeslots) under T-SMT(RR),
    T-SMT⋆(RR), T-SMT⋆(1BP), R-SMT⋆(1BP). *)

val fig9 : ?day:int -> unit -> string

val fig10_data :
  ?trials:int -> ?seed:int -> ?day:int -> unit ->
  (string * (string * eval) list) list

val fig10 : ?trials:int -> ?seed:int -> ?day:int -> unit -> string
(** Heuristics (GreedyE⋆, GreedyV⋆) vs R-SMT⋆. *)

val fig11_data :
  ?rsmt_seconds:float -> ?quick:bool -> unit ->
  (string * int * int * float * bool) list
(** (method, qubits, gates, compile seconds, proven optimal). *)

val fig11 : ?rsmt_seconds:float -> ?quick:bool -> unit -> string

(** {1 Ablations}

    Design-choice studies beyond the paper's figures (see DESIGN.md §4). *)

val ablation_movement : ?trials:int -> ?seed:int -> ?day:int -> unit -> string
(** Swap-back (the paper's static model) vs move-and-stay (dynamic
    routing) on the swap-needing benchmarks: swaps, duration, success. *)

val ablation_topology : ?trials:int -> ?seed:int -> unit -> string
(** The same programs on richer 16-qubit topologies (2×8 grid, ring,
    4×4 torus, all-to-all) — quantifies the paper's conclusion that
    richer connectivity helps the Toffoli family most. *)

val ablation_trials : ?seed:int -> unit -> string
(** Success-rate estimate vs Monte-Carlo trial count (256…8192),
    showing the default 4096 is converged to ±0.01. *)

val ablation_high_variance :
  ?trials:int -> ?seed:int -> unit -> string
(** Fig. 5's comparison on a high-variance calibration: the regime where
    the paper reports R-SMT⋆'s largest wins over T-SMT⋆ (up to 9.25×). *)

val ablation_architecture : ?trials:int -> ?seed:int -> unit -> string
(** Superconducting 2×8 grid vs all-to-all trapped-ion machine on the
    movement-hungry benchmarks — the connectivity-vs-gate-speed trade-off
    of Linke et al. (the paper's ref. [29]). *)

val run_all : ?trials:int -> ?quick:bool -> unit -> string
(** Every figure and table in order, then the ablations. *)
