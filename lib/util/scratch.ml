type ('k, 'v) t = { slot : ('k * 'v) option ref Domain.DLS.key }

let create () = { slot = Domain.DLS.new_key (fun () -> ref None) }

let get t ~key ~make =
  let cell = Domain.DLS.get t.slot in
  match !cell with
  | Some (k, v) when k == key -> v
  | _ ->
      let v = make key in
      cell := Some (key, v);
      v
