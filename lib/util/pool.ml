module Clock = Nisq_obs.Clock
module Metrics = Nisq_obs.Metrics
module Faultkit = Nisq_faultkit.Faultkit
module Deadline = Nisq_runkit.Deadline

(* Registered once; updates are no-ops while telemetry is disabled.
   [pool.tasks]/[pool.parallel_calls] only count work items, so they are
   deterministic for any pool size; busy-time gauges are wall-clock. *)
let m_parallel_calls = Metrics.counter "pool.parallel_calls"
let m_tasks = Metrics.counter "pool.tasks"
let g_workers = Metrics.gauge "pool.workers"
let g_worker_busy = Metrics.gauge "pool.worker_busy_s"
let g_caller_busy = Metrics.gauge "pool.caller_busy_s"
let m_chunk_failures = Metrics.counter "resilience.pool.chunk_failures"
let m_retry_ok = Metrics.counter "resilience.pool.retry_ok"
let m_respawns = Metrics.counter "resilience.pool.respawns"

let timed busy f =
  if Metrics.enabled () then begin
    let t0 = Clock.now_ns () in
    Fun.protect f ~finally:(fun () ->
        let dt = Int64.sub (Clock.now_ns ()) t0 in
        Metrics.gauge_add busy (Int64.to_float dt /. 1e9))
  end
  else f ()

type task = Task of (unit -> unit) | Quit

type t = {
  id : int;
  size : int;
  mutable workers : unit Domain.t array;
  queue : task Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t;
  mutable stopped : bool;
  (* Workers that died (injected [Domain_kill] or an exception escaping a
     task wrapper); replacements are spawned lazily at the next
     [parallel_chunks] entry. *)
  dead : int Atomic.t;
}

let rec worker_loop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue do
    Condition.wait t.nonempty t.mutex
  done;
  let task = Queue.pop t.queue in
  Mutex.unlock t.mutex;
  match task with
  | Quit -> ()
  | Task f -> (
      (* Chunk results and exceptions are recorded inside the wrapper
         ([run] below); anything escaping it means the worker itself is
         being killed. Mark the death and exit — the queue survives, the
         remaining workers and the helping caller keep draining it. *)
      match timed g_worker_busy f with
      | () -> worker_loop t
      | exception _ -> Atomic.incr t.dead)

(* Re-entrancy guard: the ids of the pools whose chunk functions are
   executing on the current domain. A chunk that resubmits to its own
   pool can deadlock it (every worker blocked waiting for queue slots
   only they can drain) or, on the sequential path, recurse silently —
   the docs have always forbidden it; this enforces the ban with a clear
   error on every execution path (worker, helping caller, sequential).
   Distinct pools nest fine: a figure-cell task on the default pool may
   submit a solve to the dedicated solver pool. *)
let next_id = Atomic.make 0

let entered_key : int list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let entered t = List.mem t.id !(Domain.DLS.get entered_key)

let with_entered t f =
  let stack = Domain.DLS.get entered_key in
  stack := t.id :: !stack;
  Fun.protect f ~finally:(fun () -> stack := List.tl !stack)

(* Run one chunk, retrying once on failure with the same index: chunk
   randomness derives from the index alone (Rng.mix), so a successful
   retry is bit-identical to an undisturbed run. Returns the worker
   death sentence alongside the result: an injected [Domain_kill] still
   completes the chunk (via the retry) before the worker dies, so no
   work is lost. *)
let run_chunk f i =
  (* Cancellation point, outside the retry: a flipped token (deadline,
     signal, or an armed [kill:chunk] fault) stops the chunk before any
     work, and a cancelled chunk is not a "failure" to retry — the
     resumed run recomputes it from the same index, bit-identically. *)
  match Deadline.chunk_checkpoint i with
  | exception e -> (Error e, false)
  | () ->
  let attempt () =
    Faultkit.chunk_check i;
    f i
  in
  match attempt () with
  | v -> (Ok v, false)
  | exception (Deadline.Cancelled _ as e) ->
      (* Cancellation surfacing mid-chunk (a deadline or signal landing
         inside the work) is a shutdown, not a chunk failure: retrying
         would re-run the whole chunk only to be cancelled again. *)
      (Error e, false)
  | exception e ->
      Metrics.incr m_chunk_failures;
      let die = match e with Faultkit.Domain_kill -> true | _ -> false in
      (match attempt () with
      | v ->
          Metrics.incr m_retry_ok;
          (Ok v, die)
      | exception e2 -> (Error e2, die))

(* NISQ_DOMAINS diagnostics: a malformed value silently falling back to
   the default worker count is invisible and has burnt people; warn once
   per process on stderr and then use the default. *)
let env_warned = ref false

let warn_env raw reason =
  if not !env_warned then begin
    env_warned := true;
    (* Warn-severity events echo to stderr even with the ledger off, so
       the user-visible text is unchanged from the old eprintf. *)
    Nisq_obs.Events.emit ~domain:"pool" Nisq_obs.Events.Warn
      (Printf.sprintf
         "nisq: warning: ignoring NISQ_DOMAINS=%S (%s); using the default \
          worker count"
         raw reason)
      ~fields:[ ("env", "NISQ_DOMAINS"); ("value", raw); ("reason", reason) ]
  end

let env_size () =
  match Sys.getenv_opt "NISQ_DOMAINS" with
  | None -> None
  | Some raw -> (
      match int_of_string_opt (String.trim raw) with
      | None ->
          warn_env raw "not an integer";
          None
      | Some n when n < 0 ->
          warn_env raw "negative";
          None
      | Some n -> Some n)

let create ?size () =
  let size =
    match size with
    | Some n -> n
    | None -> (
        match env_size () with
        | Some n -> n
        | None -> Domain.recommended_domain_count () - 1)
  in
  let size = max 0 size in
  let t =
    {
      id = Atomic.fetch_and_add next_id 1;
      size;
      workers = [||];
      queue = Queue.create ();
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      stopped = false;
      dead = Atomic.make 0;
    }
  in
  if size > 1 then
    t.workers <- Array.init size (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let size t = t.size

let shutdown t =
  Mutex.lock t.mutex;
  let workers = t.workers in
  t.workers <- [||];
  t.stopped <- true;
  Array.iter (fun _ -> Queue.push Quit t.queue) workers;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex;
  Array.iter Domain.join workers

let default_pool = ref None
let default_mutex = Mutex.create ()

let default () =
  Mutex.lock default_mutex;
  let p =
    match !default_pool with
    | Some p -> p
    | None ->
        let p = create () in
        default_pool := Some p;
        at_exit (fun () -> shutdown p);
        p
  in
  Mutex.unlock default_mutex;
  p

let sequential chunks f =
  List.init chunks (fun i ->
      match run_chunk f i with
      | Ok v, _ -> v
      | Error e, _ -> raise e)

(* Replace workers that died since the last call. Lazy respawn keeps the
   failure path allocation-free for the dying domain and means a pool
   that lost every worker still makes progress: the caller drains the
   queue itself. *)
let heal t =
  let n = Atomic.exchange t.dead 0 in
  if n > 0 && not t.stopped then begin
    Metrics.add m_respawns n;
    Mutex.lock t.mutex;
    t.workers <-
      Array.append t.workers
        (Array.init n (fun _ -> Domain.spawn (fun () -> worker_loop t)));
    Mutex.unlock t.mutex
  end

let parallel_chunks t ~chunks f =
  if chunks <= 0 then invalid_arg "Pool.parallel_chunks: chunks must be positive";
  if entered t then
    invalid_arg
      "Pool.parallel_chunks: nested call on the same pool (chunk functions \
       must not resubmit to the pool running them)";
  (* Counted before choosing a path so the totals match for sequential
     and pooled execution alike. *)
  Metrics.incr m_parallel_calls;
  Metrics.add m_tasks chunks;
  if t.size > 1 then heal t;
  Metrics.set g_workers (float_of_int (Array.length t.workers));
  if t.size <= 1 || t.stopped || chunks = 1 then
    with_entered t (fun () -> sequential chunks f)
  else begin
    let results = Array.make chunks None in
    let remaining = ref chunks in
    let done_mutex = Mutex.create () and done_cond = Condition.create () in
    let run i =
      let r, die = with_entered t (fun () -> run_chunk f i) in
      Mutex.lock done_mutex;
      results.(i) <- Some r;
      decr remaining;
      if !remaining = 0 then Condition.signal done_cond;
      Mutex.unlock done_mutex;
      (* After the result is safely recorded: a killed worker takes no
         chunk down with it. Escapes to [worker_loop] (domain exits, is
         respawned next call) or to [help] (caught, the caller lives). *)
      if die then raise Faultkit.Domain_kill
    in
    Mutex.lock t.mutex;
    for i = 0 to chunks - 1 do
      Queue.push (Task (fun () -> run i)) t.queue
    done;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mutex;
    (* The caller helps drain the queue instead of blocking idle. It must
       not consume Quit tokens destined for the workers. *)
    let rec help () =
      Mutex.lock t.mutex;
      let task =
        match Queue.peek_opt t.queue with
        | Some (Task _) -> (
            match Queue.pop t.queue with Task f -> Some f | Quit -> None)
        | Some Quit | None -> None
      in
      Mutex.unlock t.mutex;
      match task with
      | Some f ->
          (* The caller must survive anything a task throws at a worker —
             including an injected [Domain_kill] it happened to pick up. *)
          (try timed g_caller_busy f with _ -> ());
          help ()
      | None -> ()
    in
    help ();
    Mutex.lock done_mutex;
    while !remaining > 0 do
      Condition.wait done_cond done_mutex
    done;
    Mutex.unlock done_mutex;
    List.init chunks (fun i ->
        match results.(i) with
        | Some (Ok v) -> v
        | Some (Error e) -> raise e
        | None -> assert false)
  end
