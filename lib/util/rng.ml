type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 output function: mix the incremented state. *)
let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let s = bits64 t in
  { state = s }

let mix seed i =
  (* SplitMix64 finalizer over [seed + golden*(i+1)]: the gamma multiple is
     injective (odd multiplier) and the finalizer is a bijection, so
     distinct chunk indices give distinct derived seeds. *)
  let z = Int64.add (Int64.of_int seed) (Int64.mul golden_gamma (Int64.of_int (i + 1))) in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_int z

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free for our purposes: modulo bias is negligible for the
     small bounds used here, but we still mask to 62 bits to stay
     non-negative. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod n

let float t x =
  (* 53 random mantissa bits. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  x *. (Float.of_int v /. 9007199254740992.0)

let bool t = Int64.logand (bits64 t) 1L = 1L

let uniform t ~lo ~hi = lo +. float t (hi -. lo)

let gaussian t ~mean ~sigma =
  let rec draw () =
    let u1 = float t 1.0 in
    if u1 <= 1e-300 then draw ()
    else
      let u2 = float t 1.0 in
      mean +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))
  in
  draw ()

let lognormal t ~mu ~sigma = exp (gaussian t ~mean:mu ~sigma)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))
