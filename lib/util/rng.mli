(** Deterministic pseudo-random number generation.

    Every stochastic component in this repository (calibration generation,
    noise injection, synthetic workloads) draws from an explicit [Rng.t]
    seeded by the caller, so that every experiment is exactly reproducible.
    The generator is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): tiny,
    fast, and passes BigCrush, which is more than sufficient for Monte-Carlo
    noise sampling. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator. Equal seeds give equal streams. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t]; the two
    streams are statistically independent. Used to give each qubit / day /
    trial its own stream without coupling draw orders. *)

val mix : int -> int -> int
(** [mix seed i] derives the seed of stream [i] from a base [seed] by a
    SplitMix64-style finalizer, without any shared mutable state. Distinct
    [i] give distinct results for a fixed [seed], so [create (mix seed i)]
    yields decorrelated, collision-free chunk streams — the basis of the
    Monte-Carlo engine's determinism across domain counts. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. Raises [Invalid_argument] if
    [n <= 0]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val bool : t -> bool

val uniform : t -> lo:float -> hi:float -> float
(** Uniform in [\[lo, hi)]. *)

val gaussian : t -> mean:float -> sigma:float -> float
(** Normal deviate by Box–Muller. *)

val lognormal : t -> mu:float -> sigma:float -> float
(** [exp (gaussian ~mean:mu ~sigma)] — used for error-rate distributions,
    which are strictly positive and right-skewed like the published
    calibration data. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
