(** A fixed-size pool of worker domains for embarrassingly-parallel
    chunked work (Monte-Carlo trial batches, compile sweeps).

    Domains are spawned once at {!create} and reused across every
    {!parallel_chunks} call — spawning a domain costs far more than a
    typical chunk, so a per-call [Domain.spawn] would erase the win for
    the 100 µs–10 ms chunks this repository runs.

    Determinism contract: [parallel_chunks] only distributes indices
    [0 .. chunks-1]; as long as the chunk function derives all of its
    randomness from its index (see {!Rng.mix}), results are independent
    of the pool size and of scheduling order.

    Self-healing: a chunk that raises is retried once with the same index
    — under the determinism contract the retry is bit-identical to an
    undisturbed execution, so one transient failure is invisible in the
    results. A worker domain that dies (an exception escaping the chunk
    wrapper, e.g. an injected [Faultkit.Domain_kill]) is replaced at the
    next [parallel_chunks] call; its in-flight chunk completes via the
    retry before the domain exits, and the helping caller never dies.
    Failures, successful retries and respawns are counted under
    [resilience.pool.*]. *)

type t

val create : ?size:int -> unit -> t
(** [create ()] spawns a pool of worker domains. The worker count is
    [size] when given, else the [NISQ_DOMAINS] environment variable,
    else [Domain.recommended_domain_count () - 1] (reserving one core
    for the calling domain). A non-integer or negative [NISQ_DOMAINS]
    is ignored with a single warning on stderr and the default sizing
    applies. A pool of size ≤ 1 spawns no domains and runs every call
    sequentially in the caller. *)

val size : t -> int
(** Number of worker domains ([0] for a sequential pool). *)

val default : unit -> t
(** The shared process-wide pool, created on first use with the default
    sizing and shut down automatically at exit. *)

val parallel_chunks : t -> chunks:int -> (int -> 'a) -> 'a list
(** [parallel_chunks t ~chunks f] computes [[f 0; f 1; …; f (chunks-1)]],
    distributing the calls over the pool's workers (the caller also
    drains the queue rather than idling). Results are returned in index
    order. A chunk that raises is retried once with the same index (on
    the sequential path too); if the retry also raises, one such
    exception is re-raised after all chunks finish. [f] must be safe to
    run on any domain. The pool is not re-entrant: a chunk function that
    calls [parallel_chunks] on the {e same} pool gets a chunk-level
    [Invalid_argument] on every execution path (worker, helping caller,
    and the sequential size ≤ 1 path alike — so the bug cannot hide in
    small configurations). Submitting to a {e different} pool from
    inside a chunk is fine; that is how a figure cell hands a solve to
    the dedicated solver pool. Raises [Invalid_argument] if
    [chunks <= 0]. *)

val shutdown : t -> unit
(** Terminate and join the workers. Idempotent. Calls issued after
    shutdown run sequentially. *)
