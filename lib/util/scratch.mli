(** Per-domain scratch arenas.

    A hot chunk loop wants to reuse its working buffers (simulator
    registers, fired-site arrays, tallies) across chunks instead of
    reallocating them per chunk — but the loop runs on whichever pool
    worker picked the chunk up, and scratch must never be shared between
    domains. An arena gives each domain one cached slot, keyed by the
    (physically equal) job the scratch was built for: successive chunks
    of the same job on the same domain hit the cache, a chunk of a
    different job rebuilds the slot.

    Values are handed out to exactly one domain and never migrate, so no
    synchronization is needed. The cache is intentionally single-slot:
    jobs interleaving on one domain degrade to per-chunk allocation
    (correct, just slower), and a dropped job's scratch is reclaimed as
    soon as the domain moves on to another job. *)

type ('k, 'v) t

val create : unit -> ('k, 'v) t
(** A fresh arena with an empty slot on every domain. *)

val get : ('k, 'v) t -> key:'k -> make:('k -> 'v) -> 'v
(** The calling domain's cached value when its slot holds [key]
    (physical equality), otherwise [make key], which replaces the slot.
    The caller is responsible for re-initializing any per-use state —
    the arena returns the cached value as the last use left it. *)
