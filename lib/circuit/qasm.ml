let to_string (c : Circuit.t) =
  let c = Decompose.lower_swaps c in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "OPENQASM 2.0;\n";
  Buffer.add_string buf "include \"qelib1.inc\";\n";
  Buffer.add_string buf (Printf.sprintf "qreg q[%d];\n" c.num_qubits);
  Buffer.add_string buf (Printf.sprintf "creg c[%d];\n" c.num_qubits);
  Array.iter
    (fun (g : Gate.t) ->
      let line =
        match g.kind with
        | Gate.Measure ->
            Printf.sprintf "measure q[%d] -> c[%d];" g.qubits.(0) g.qubits.(0)
        | Gate.Barrier ->
            let ops =
              g.qubits |> Array.to_list
              |> List.map (Printf.sprintf "q[%d]")
              |> String.concat ","
            in
            Printf.sprintf "barrier %s;" ops
        | Gate.Rz a -> Printf.sprintf "rz(%.17g) q[%d];" a g.qubits.(0)
        | Gate.Rx a -> Printf.sprintf "rx(%.17g) q[%d];" a g.qubits.(0)
        | Gate.Ry a -> Printf.sprintf "ry(%.17g) q[%d];" a g.qubits.(0)
        | Gate.Cnot -> Printf.sprintf "cx q[%d],q[%d];" g.qubits.(0) g.qubits.(1)
        | Gate.Swap ->
            (* unreachable: lower_swaps ran above *)
            assert false
        | k -> Printf.sprintf "%s q[%d];" (Gate.name k) g.qubits.(0)
      in
      Buffer.add_string buf line;
      Buffer.add_char buf '\n')
    c.gates;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type error = { line : int; message : string }

exception Parse_fail of error

let fail lineno msg = raise (Parse_fail { line = lineno; message = msg })

let strip_comment line =
  match String.index_opt line '/' with
  | Some i
    when i + 1 < String.length line && line.[i + 1] = '/' ->
      String.sub line 0 i
  | _ -> line

(* Split a source text into ";"-terminated statements with line numbers. *)
let statements src =
  let stmts = ref [] in
  let buf = Buffer.create 64 in
  let start_line = ref 1 in
  let line = ref 1 in
  String.iter
    (fun ch ->
      match ch with
      | ';' ->
          stmts := (!start_line, Buffer.contents buf) :: !stmts;
          Buffer.clear buf;
          start_line := !line
      | '\n' ->
          incr line;
          if Buffer.length buf = 0 then start_line := !line
          else Buffer.add_char buf ' '
      | c -> Buffer.add_char buf c)
    (* Remove //-comments line by line first. *)
    (String.concat "\n" (List.map strip_comment (String.split_on_char '\n' src)));
  List.rev !stmts

let parse_qubit_operand lineno s =
  (* "q[3]" -> 3 *)
  let s = String.trim s in
  match String.index_opt s '[' with
  | Some i when s.[String.length s - 1] = ']' ->
      let reg = String.sub s 0 i in
      if reg <> "q" then fail lineno ("unknown register " ^ reg);
      let inner = String.sub s (i + 1) (String.length s - i - 2) in
      (try int_of_string (String.trim inner)
       with _ -> fail lineno ("bad qubit index " ^ inner))
  | _ -> fail lineno ("expected q[<n>], got " ^ s)

let parse_angle lineno s =
  (* Accept plain floats and the common "pi/2", "-pi/4", "2*pi" forms. *)
  let s = String.trim s in
  let pi = Float.pi in
  let parse_atom a =
    let a = String.trim a in
    if a = "pi" then Some pi
    else if a = "-pi" then Some (-.pi)
    else Float.of_string_opt a
  in
  let result =
    match String.index_opt s '/' with
    | Some i ->
        let num = String.sub s 0 i
        and den = String.sub s (i + 1) (String.length s - i - 1) in
        Option.bind (parse_atom num) (fun n ->
            Option.map (fun d -> n /. d) (parse_atom den))
    | None -> (
        match String.index_opt s '*' with
        | Some i ->
            let a = String.sub s 0 i
            and b = String.sub s (i + 1) (String.length s - i - 1) in
            Option.bind (parse_atom a) (fun x ->
                Option.map (fun y -> x *. y) (parse_atom b))
        | None -> parse_atom s)
  in
  match result with
  | Some v -> v
  | None -> fail lineno ("bad angle expression " ^ s)

let m_statements = Nisq_obs.Metrics.counter "frontend.qasm_statements"

let parse src =
  let num_qubits = ref 0 in
  let pending = ref [] in
  let handle lineno stmt =
    let stmt = String.trim stmt in
    if stmt = "" then ()
    else
      let word, rest =
        match String.index_opt stmt ' ' with
        | Some i ->
            ( String.sub stmt 0 i,
              String.trim (String.sub stmt i (String.length stmt - i)) )
        | None -> (stmt, "")
      in
      (* Separate "rz(pi/2)" into mnemonic + angle. *)
      let mnemonic, angle =
        match String.index_opt word '(' with
        | Some i when word.[String.length word - 1] = ')' ->
            ( String.sub word 0 i,
              Some
                (parse_angle lineno
                   (String.sub word (i + 1) (String.length word - i - 2))) )
        | _ -> (word, None)
      in
      match mnemonic with
      | "OPENQASM" | "include" -> ()
      | "qreg" ->
          (* rest is "q[n]": its bracket content is the register size. *)
          num_qubits := parse_qubit_operand lineno rest
      | "creg" -> ()
      | "measure" -> (
          (* "q[i] -> c[j]" *)
          match String.index_opt rest '-' with
          | Some i when i + 1 < String.length rest && rest.[i + 1] = '>' ->
              let q = parse_qubit_operand lineno (String.sub rest 0 i) in
              pending := (Gate.Measure, [| q |]) :: !pending
          | _ -> fail lineno "bad measure statement")
      | "barrier" ->
          let qubits =
            String.split_on_char ',' rest
            |> List.map (parse_qubit_operand lineno)
            |> Array.of_list
          in
          pending := (Gate.Barrier, qubits) :: !pending
      | g ->
          let qubits =
            String.split_on_char ',' rest
            |> List.map (parse_qubit_operand lineno)
            |> Array.of_list
          in
          let kind =
            match (g, angle) with
            | "h", None -> Gate.H
            | "x", None -> Gate.X
            | "y", None -> Gate.Y
            | "z", None -> Gate.Z
            | "s", None -> Gate.S
            | "sdg", None -> Gate.Sdg
            | "t", None -> Gate.T
            | "tdg", None -> Gate.Tdg
            | "rz", Some a -> Gate.Rz a
            | "rx", Some a -> Gate.Rx a
            | "ry", Some a -> Gate.Ry a
            | "u1", Some a -> Gate.Rz a
            | "cx", None -> Gate.Cnot
            | "swap", None -> Gate.Swap
            | _ -> fail lineno ("unsupported gate " ^ g)
          in
          pending := (kind, qubits) :: !pending
  in
  let stmts = statements src in
  Nisq_obs.Metrics.add m_statements (List.length stmts);
  List.iter (fun (lineno, stmt) -> handle lineno stmt) stmts;
  if !num_qubits = 0 then fail 0 "missing qreg declaration";
  Circuit.make ~name:"qasm" !num_qubits (List.rev !pending)

let of_string src =
  match parse src with
  | c -> Ok c
  | exception Parse_fail e -> Error e
  | exception Invalid_argument msg ->
      (* Circuit.make rejections (e.g. a gate on a qubit outside the
         declared register) carry no line number. *)
      Error { line = 0; message = msg }

let of_string_exn src =
  match of_string src with
  | Ok c -> c
  | Error { line; message } ->
      failwith (Printf.sprintf "Qasm: line %d: %s" line message)

let roundtrip c = of_string_exn (to_string c)
