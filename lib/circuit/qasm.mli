(** OpenQASM 2.0 emission and parsing.

    The compiler's final output is executable OpenQASM (§3, Fig. 3); this
    module also parses the subset of OpenQASM 2.0 our emitter produces
    (one quantum and one classical register, the gate set of {!Gate}),
    which is enough to round-trip compiled programs and to accept textual
    benchmarks from disk. *)

val to_string : Circuit.t -> string
(** Emit OpenQASM 2.0. [Swap] gates are lowered to 3 CNOTs first, so the
    output uses only hardware-supported operations. Measurement of qubit
    [q] targets classical bit [c[q]]. *)

type error = { line : int; message : string }
(** [line = 0] when the diagnostic is not tied to a single line (missing
    [qreg], a rejection from [Circuit.make]). *)

val of_string : string -> (Circuit.t, error) result
(** Parse OpenQASM 2.0 (the emitted subset: [OPENQASM 2.0], [include],
    [qreg]/[creg], gate applications, [measure], [barrier], comments). *)

val of_string_exn : string -> Circuit.t
(** [of_string], raising [Failure] with a ["Qasm: line N: ..."] message. *)

val roundtrip : Circuit.t -> Circuit.t
(** [of_string_exn (to_string c)] — exposed for testing. *)
