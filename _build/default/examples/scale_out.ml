(* Scale-out: compiling beyond the SMT horizon.

   The SMT mappers are exact but stop scaling past ~32 qubits (Fig. 11);
   the greedy heuristics keep going. This example compiles random programs
   of growing size onto growing grids, switching mapper automatically, and
   prints compile time and mapping quality (ESP per CNOT, a size-neutral
   quality proxy).

   Run with: dune exec examples/scale_out.exe *)

module Config = Nisq_compiler.Config
module Compile = Nisq_compiler.Compile
module Circuit = Nisq_circuit.Circuit
module Calib_gen = Nisq_device.Calib_gen
module Budget = Nisq_solver.Budget
module Synth = Nisq_bench.Synth
module Table = Nisq_util.Table

let () =
  let sizes = [ (4, 64); (8, 128); (16, 256); (32, 512); (64, 1024); (128, 2048) ] in
  let rows =
    List.map
      (fun (qubits, gates) ->
        let topo = Synth.grid_for ~qubits in
        let calib = Calib_gen.generate ~topology:topo ~seed:2025 ~day:0 () in
        let circuit = Synth.random_circuit ~qubits ~gates ~seed:qubits () in
        (* exact mapping while tractable, heuristic beyond *)
        let config =
          if qubits <= 8 then
            Config.make ~budget:(Budget.seconds 20.0) (Config.R_smt_star 0.5)
          else Config.make Config.Greedy_e
        in
        let r = Compile.run ~config ~calib circuit in
        let cnots = Circuit.cnot_count r.Compile.hw_circuit in
        let esp_per_cnot =
          if cnots = 0 then 1.0
          else exp (log (Float.max r.Compile.esp 1e-300) /. Float.of_int cnots)
        in
        [
          Printf.sprintf "%dq/%dg" qubits gates;
          Config.name config;
          string_of_int r.Compile.swap_count;
          string_of_int r.Compile.duration;
          Printf.sprintf "%.4f" esp_per_cnot;
          Printf.sprintf "%.4f" r.Compile.compile_seconds;
        ])
      sizes
  in
  Table.print
    ~align:[ Table.Left; Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
    ~header:
      [ "Program"; "Mapper"; "Swaps"; "Slots"; "ESP/CNOT"; "Compile s" ]
    ~rows ();
  print_endline
    "\nESP/CNOT is the geometric-mean per-CNOT reliability achieved by the \
     mapping; compile time stays in milliseconds for the heuristic even at \
     128 qubits."
