(* Daily variation: the Fig. 6 scenario as an API walkthrough.

   The machine is recalibrated every day and its error rates drift; a
   noise-adaptive compiler recompiles each morning and follows the good
   qubits around, while a static compiler keeps using the same hardware
   even when it degrades. We run the Toffoli benchmark for two weeks under
   both policies and report the gap.

   Run with: dune exec examples/daily_variation.exe *)

module Config = Nisq_compiler.Config
module Compile = Nisq_compiler.Compile
module Layout = Nisq_compiler.Layout
module Ibmq16 = Nisq_device.Ibmq16
module Runner = Nisq_sim.Runner
module Experiments = Nisq_bench.Experiments
module Benchmarks = Nisq_bench.Benchmarks
module Stats = Nisq_util.Stats

let () =
  let bench = Benchmarks.by_name "Toffoli" in
  let days = 14 in
  let calibs = Ibmq16.calibration_series ~days () in
  let adaptive = Config.make (Config.R_smt_star 0.5) in
  let static = Config.make Config.T_smt_star in
  Printf.printf "%-4s  %-22s  %-8s  %-8s\n" "day" "R-SMT* placement" "R-SMT*"
    "T-SMT*";
  let a_rates = Array.make days 0.0 and s_rates = Array.make days 0.0 in
  Array.iteri
    (fun day calib ->
      let eval config =
        let r = Compile.run ~config ~calib bench.Benchmarks.circuit in
        let s =
          Runner.success_rate ~trials:2048 ~seed:7 (Experiments.runner_of r)
        in
        (r, s)
      in
      let ra, sa = eval adaptive in
      let _, ss = eval static in
      a_rates.(day) <- sa;
      s_rates.(day) <- ss;
      let placement =
        String.concat " "
          (List.init 3 (fun p ->
               Printf.sprintf "p%d->q%d" p (Layout.hw_of ra.Compile.layout p)))
      in
      Printf.printf "%-4d  %-22s  %-8.3f  %-8.3f\n" day placement sa ss)
    calibs;
  let geo, mx = Stats.ratio_summary ~num:a_rates ~den:s_rates in
  Printf.printf
    "\nacross %d days: noise-adaptive recompilation is %.2fx better on \
     geomean (up to %.2fx on the worst day)\n"
    days geo mx;
  Printf.printf
    "note how the R-SMT* placement moves across the grid as the machine's \
     good qubits change.\n"
