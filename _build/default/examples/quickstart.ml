(* Quickstart: build a circuit with the public API, compile it
   noise-adaptively for today's machine, inspect the mapping, and estimate
   the success rate on the simulated IBMQ16.

   Run with: dune exec examples/quickstart.exe *)

module B = Nisq_circuit.Circuit.Builder
module Config = Nisq_compiler.Config
module Compile = Nisq_compiler.Compile
module Layout = Nisq_compiler.Layout
module Ibmq16 = Nisq_device.Ibmq16
module Runner = Nisq_sim.Runner
module Experiments = Nisq_bench.Experiments

let () =
  (* 1. Describe a program over *logical* qubits: a 3-qubit
     Bernstein-Vazirani instance with hidden string 11. The program knows
     nothing about the machine: no topology, no error rates. *)
  let b = B.create ~name:"my-bv3" 3 in
  B.x b 2;
  (* ancilla to |-> *)
  for q = 0 to 2 do
    B.h b q
  done;
  B.cnot b 0 2;
  B.cnot b 1 2;
  B.h b 0;
  B.h b 1;
  B.measure b 0;
  B.measure b 1;
  let program = B.build b in
  print_endline "source circuit:";
  print_string (Nisq_circuit.Draw.render program);
  print_newline ();

  (* 2. Fetch today's calibration data for the 16-qubit machine. *)
  let calib = Ibmq16.calibration ~day:0 () in

  (* 3. Compile with the reliability-optimal mapper (R-SMT*, omega 0.5):
     placement, routing and scheduling all adapt to today's error rates. *)
  let result =
    Compile.run ~config:(Config.make (Config.R_smt_star 0.5)) ~calib program
  in
  Printf.printf "compiled %s: %d swaps, %d timeslots, ESP %.3f\n\n"
    "my-bv3" result.Compile.swap_count result.Compile.duration
    result.Compile.esp;
  print_string (Layout.render Ibmq16.topology ~calib result.Compile.layout);

  (* 4. Estimate the success rate with the noisy Monte-Carlo simulator. *)
  let runner = Experiments.runner_of result in
  Printf.printf "\nideal answer: %d (should be 3 = hidden string 11)\n"
    (Runner.ideal_answer runner);
  Printf.printf "success rate over 4096 noisy trials: %.3f\n"
    (Runner.success_rate ~trials:4096 ~seed:1 runner);

  (* 5. Export executable OpenQASM for the device. *)
  print_endline "\ncompiled OpenQASM:";
  print_string (Compile.to_qasm result)
