(* Policy tour: every Table-1 compiler configuration on one program.

   Shows the full trade-off space the paper explores — baseline vs
   duration-optimal vs reliability-optimal vs heuristic — on the 1-bit
   adder, the most movement-hungry benchmark of the suite.

   Run with: dune exec examples/policy_tour.exe *)

module Config = Nisq_compiler.Config
module Compile = Nisq_compiler.Compile
module Ibmq16 = Nisq_device.Ibmq16
module Runner = Nisq_sim.Runner
module Experiments = Nisq_bench.Experiments
module Benchmarks = Nisq_bench.Benchmarks
module Table = Nisq_util.Table

let () =
  let bench = Benchmarks.by_name "Adder" in
  let calib = Ibmq16.calibration ~day:0 () in
  let rows =
    List.map
      (fun config ->
        let r = Compile.run ~config ~calib bench.Benchmarks.circuit in
        let runner = Experiments.runner_of r in
        let success = Runner.success_rate ~trials:2048 ~seed:3 runner in
        [
          Config.name config;
          string_of_int r.Compile.swap_count;
          string_of_int r.Compile.duration;
          Printf.sprintf "%.3f" r.Compile.esp;
          Printf.sprintf "%.3f" success;
          Printf.sprintf "%.4f" r.Compile.compile_seconds;
        ])
      Config.paper_suite
  in
  Printf.printf "Adder (4 qubits, %d CNOTs) under every configuration:\n\n"
    (let _, _, _, c = Benchmarks.characteristics bench in
     c);
  Table.print
    ~align:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
    ~header:[ "Configuration"; "Swaps"; "Slots"; "ESP"; "Success"; "Compile s" ]
    ~rows ();
  print_endline
    "\nReading guide: the Qiskit baseline ignores calibration entirely; \
     T-SMT* minimizes duration; R-SMT* maximizes the Eq.-12 reliability \
     objective (omega weights readout vs CNOT error); the greedy heuristics \
     approximate R-SMT* in microseconds of compile time."
