examples/qasm_pipeline.ml: Nisq_bench Nisq_circuit Nisq_compiler Nisq_device Nisq_sim Printf
