examples/daily_variation.mli:
