examples/quickstart.mli:
