examples/scale_out.ml: Float List Nisq_bench Nisq_circuit Nisq_compiler Nisq_device Nisq_solver Nisq_util Printf
