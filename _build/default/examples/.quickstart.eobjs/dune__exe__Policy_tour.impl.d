examples/policy_tour.ml: List Nisq_bench Nisq_compiler Nisq_device Nisq_sim Nisq_util Printf
