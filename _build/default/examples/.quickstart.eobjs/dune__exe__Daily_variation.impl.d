examples/daily_variation.ml: Array List Nisq_bench Nisq_compiler Nisq_device Nisq_sim Nisq_util Printf String
