test/test_device.ml: Alcotest Array List Nisq_device Nisq_util
