test/test_extras.ml: Alcotest Array Astring_contains Filename Float List Nisq_bench Nisq_circuit Nisq_compiler Nisq_device Nisq_sim String Sys
