test/test_compiler.ml: Alcotest Array Astring_contains Format Fun Int List Nisq_bench Nisq_circuit Nisq_compiler Nisq_device Nisq_sim Nisq_solver Printf
