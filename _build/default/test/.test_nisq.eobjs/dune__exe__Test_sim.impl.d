test/test_sim.ml: Alcotest Array Float List Nisq_circuit Nisq_device Nisq_sim Nisq_util
