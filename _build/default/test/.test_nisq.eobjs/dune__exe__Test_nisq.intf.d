test/test_nisq.mli:
