test/test_solver.ml: Alcotest Array Hashtbl Int List Nisq_solver Nisq_util
