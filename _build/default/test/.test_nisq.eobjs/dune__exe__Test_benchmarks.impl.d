test/test_benchmarks.ml: Alcotest Array Astring_contains List Nisq_bench Nisq_circuit Nisq_compiler Nisq_device Nisq_sim
