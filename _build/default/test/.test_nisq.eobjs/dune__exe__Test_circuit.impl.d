test/test_circuit.ml: Alcotest Array Float List Nisq_bench Nisq_circuit String
