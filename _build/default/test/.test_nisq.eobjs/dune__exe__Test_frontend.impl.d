test/test_frontend.ml: Alcotest Array Float Nisq_bench Nisq_circuit Nisq_compiler Nisq_device Nisq_frontend Nisq_sim
