test/test_util.ml: Alcotest Array Float Fun List Nisq_util String
