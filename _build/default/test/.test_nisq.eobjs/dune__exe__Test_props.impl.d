test/test_props.ml: Array Float Hashtbl List Nisq_bench Nisq_circuit Nisq_compiler Nisq_device Nisq_sim Nisq_solver Nisq_util Option Printf QCheck QCheck_alcotest
