(* Tests for the mini-Scaffold frontend. *)

module Scaffold = Nisq_frontend.Scaffold
module Circuit = Nisq_circuit.Circuit
module Gate = Nisq_circuit.Gate
module Calibration = Nisq_device.Calibration
module Ibmq16 = Nisq_device.Ibmq16
module Config = Nisq_compiler.Config
module Compile = Nisq_compiler.Compile
module Runner = Nisq_sim.Runner
module Experiments = Nisq_bench.Experiments

let parses src = Scaffold.parse src

let rejects ?line src =
  try
    ignore (Scaffold.parse src);
    Alcotest.fail "expected Parse_error"
  with Scaffold.Parse_error { line = l; _ } -> (
    match line with
    | Some want -> Alcotest.(check int) "error line" want l
    | None -> ())

let test_minimal_program () =
  let c = parses "qreg q[2]; h q[0]; cx q[0], q[1]; measure q;" in
  Alcotest.(check int) "qubits" 2 c.Circuit.num_qubits;
  Alcotest.(check int) "gates" 4 (Circuit.length c)

let test_gate_kinds () =
  let c =
    parses
      "qreg q[2]; h q[0]; x q[0]; y q[0]; z q[0]; s q[0]; sdg q[0]; t q[0]; \
       tdg q[0]; swap q[0], q[1];"
  in
  Alcotest.(check int) "9 gates" 9 (Circuit.length c)

let test_rotation_angles () =
  let c = parses "qreg q[1]; rz(pi/2) q[0]; rx(0.25) q[0]; ry(2*pi) q[0]; rz(-pi) q[0];" in
  let angle i =
    match c.Circuit.gates.(i).Gate.kind with
    | Gate.Rz a | Gate.Rx a | Gate.Ry a -> a
    | _ -> Float.nan
  in
  Alcotest.(check (float 1e-12)) "pi/2" (Float.pi /. 2.0) (angle 0);
  Alcotest.(check (float 1e-12)) "0.25" 0.25 (angle 1);
  Alcotest.(check (float 1e-12)) "2pi" (2.0 *. Float.pi) (angle 2);
  Alcotest.(check (float 1e-12)) "-pi" (-.Float.pi) (angle 3)

let test_ccx_decomposes () =
  let c = parses "qreg q[3]; ccx q[0], q[1], q[2];" in
  Alcotest.(check int) "6 cnots" 6 (Circuit.cnot_count c);
  Alcotest.(check bool) "no raw toffoli" true
    (Array.for_all
       (fun (g : Gate.t) -> Array.length g.Gate.qubits <= 2)
       c.Circuit.gates)

let test_cswap_and_peres () =
  let c = parses "qreg q[3]; cswap q[0], q[1], q[2]; peres q[0], q[1], q[2];" in
  Alcotest.(check int) "8 + 7 cnots" 15 (Circuit.cnot_count c)

let test_repeat () =
  let c = parses "qreg q[1]; repeat 5 { t q[0]; }" in
  Alcotest.(check int) "5 gates" 5 (Circuit.length c)

let test_repeat_zero () =
  let c = parses "qreg q[1]; repeat 0 { t q[0]; } x q[0];" in
  Alcotest.(check int) "only the x" 1 (Circuit.length c)

let test_nested_repeat () =
  let c = parses "qreg q[1]; repeat 2 { repeat 3 { h q[0]; } }" in
  Alcotest.(check int) "6 gates" 6 (Circuit.length c)

let test_user_gate () =
  let c =
    parses
      "qreg q[3];\n\
       gate entangle(a, b) { h a; cx a, b; }\n\
       entangle q[0], q[1];\n\
       entangle q[1], q[2];"
  in
  Alcotest.(check int) "4 gates" 4 (Circuit.length c);
  Alcotest.(check (array int)) "second call operands" [| 1; 2 |]
    c.Circuit.gates.(3).Gate.qubits

let test_user_gate_calls_user_gate () =
  let c =
    parses
      "qreg q[2];\n\
       gate inner(a) { h a; }\n\
       gate outer(a, b) { inner a; cx a, b; inner b; }\n\
       outer q[0], q[1];"
  in
  Alcotest.(check int) "3 gates" 3 (Circuit.length c)

let test_measure_whole_register () =
  let c = parses "qreg q[3]; h q[0]; measure q;" in
  Alcotest.(check (list int)) "all measured" [ 0; 1; 2 ] (Circuit.measured_qubits c)

let test_comments_ignored () =
  let c = parses "// leading\nqreg q[1]; // decl\nh q[0]; // gate\n" in
  Alcotest.(check int) "1 gate" 1 (Circuit.length c)

let test_barrier () =
  let c = parses "qreg q[2]; h q[0]; barrier q[0], q[1]; x q[1];" in
  Alcotest.(check bool) "has barrier" true
    (Array.exists (fun (g : Gate.t) -> g.Gate.kind = Gate.Barrier) c.Circuit.gates)

(* error cases, with line numbers *)

let test_rejects_unknown_gate () = rejects ~line:2 "qreg q[1];\nfrob q[0];"

let test_rejects_out_of_range () = rejects "qreg q[2]; h q[5];"

let test_rejects_arity () = rejects "qreg q[2]; cx q[0];"

let test_rejects_missing_angle () = rejects "qreg q[1]; rz q[0];"

let test_rejects_spurious_angle () = rejects "qreg q[1]; h(0.5) q[0];"

let test_rejects_missing_qreg () = rejects "h q[0];"

let test_rejects_redefined_builtin () = rejects "qreg q[1]; gate h(a) { x a; }"

let test_rejects_duplicate_definition () =
  rejects "qreg q[1]; gate g(a) { x a; } gate g(a) { y a; }"

let test_rejects_nested_definition () =
  rejects "qreg q[1]; gate g(a) { gate h2(b) { x b; } }"

let test_rejects_unknown_param () = rejects "qreg q[1]; gate g(a) { x b; } g q[0];"

let test_rejects_duplicate_operands_via_macro () =
  (* macro called with the same qubit twice -> duplicate CNOT operands *)
  rejects "qreg q[2]; gate g(a, b) { cx a, b; } g q[0], q[0];"

let test_rejects_unterminated_block () = rejects "qreg q[1]; repeat 2 { h q[0];"

(* end-to-end: a mini-Scaffold adder compiles and runs correctly *)
let test_scaffold_program_end_to_end () =
  let src =
    "qreg q[4];\n\
     // compute 1 + 1: a=q0, b=q1, cin=q2, cout=q3\n\
     x q[0];\n\
     x q[1];\n\
     ccx q[0], q[1], q[3];\n\
     cx q[0], q[1];\n\
     ccx q[1], q[2], q[3];\n\
     cx q[1], q[2];\n\
     cx q[0], q[1];\n\
     measure q;"
  in
  let circuit = Scaffold.parse src in
  let calib = Ibmq16.calibration ~day:0 () in
  let r = Compile.run ~config:(Config.make (Config.R_smt_star 0.5)) ~calib circuit in
  let runner = Experiments.runner_of r in
  Alcotest.(check int) "sum 0, carry 1" 0b1011 (Runner.ideal_answer runner)

let suite =
  [
    ("minimal program", `Quick, test_minimal_program);
    ("all simple gate kinds", `Quick, test_gate_kinds);
    ("rotation angles", `Quick, test_rotation_angles);
    ("ccx decomposes to 6 cnots", `Quick, test_ccx_decomposes);
    ("cswap and peres", `Quick, test_cswap_and_peres);
    ("repeat", `Quick, test_repeat);
    ("repeat zero", `Quick, test_repeat_zero);
    ("nested repeat", `Quick, test_nested_repeat);
    ("user gate", `Quick, test_user_gate);
    ("user gate composition", `Quick, test_user_gate_calls_user_gate);
    ("measure whole register", `Quick, test_measure_whole_register);
    ("comments ignored", `Quick, test_comments_ignored);
    ("barrier", `Quick, test_barrier);
    ("rejects unknown gate", `Quick, test_rejects_unknown_gate);
    ("rejects out-of-range qubit", `Quick, test_rejects_out_of_range);
    ("rejects arity mismatch", `Quick, test_rejects_arity);
    ("rejects missing angle", `Quick, test_rejects_missing_angle);
    ("rejects spurious angle", `Quick, test_rejects_spurious_angle);
    ("rejects missing qreg", `Quick, test_rejects_missing_qreg);
    ("rejects builtin redefinition", `Quick, test_rejects_redefined_builtin);
    ("rejects duplicate definition", `Quick, test_rejects_duplicate_definition);
    ("rejects nested definition", `Quick, test_rejects_nested_definition);
    ("rejects unknown parameter", `Quick, test_rejects_unknown_param);
    ("rejects aliased macro operands", `Quick, test_rejects_duplicate_operands_via_macro);
    ("rejects unterminated block", `Quick, test_rejects_unterminated_block);
    ("scaffold adder end-to-end", `Quick, test_scaffold_program_end_to_end);
  ]
