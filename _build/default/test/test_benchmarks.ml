(* Tests for Nisq_bench: Benchmarks, Synth, Experiments. *)

module Circuit = Nisq_circuit.Circuit
module Gate = Nisq_circuit.Gate
module Benchmarks = Nisq_bench.Benchmarks
module Synth = Nisq_bench.Synth
module Experiments = Nisq_bench.Experiments
module Runner = Nisq_sim.Runner
module Config = Nisq_compiler.Config
module Compile = Nisq_compiler.Compile
module Calibration = Nisq_device.Calibration
module Ibmq16 = Nisq_device.Ibmq16
module Topology = Nisq_device.Topology

let contains = Astring_contains.contains

let test_suite_has_12_benchmarks () =
  Alcotest.(check int) "12" 12 (List.length Benchmarks.all)

let test_names_unique () =
  let names = List.map (fun b -> b.Benchmarks.name) Benchmarks.all in
  Alcotest.(check int) "unique" 12 (List.length (List.sort_uniq compare names))

let test_by_name_case_insensitive () =
  Alcotest.(check string) "found" "Toffoli"
    (Benchmarks.by_name "toffoli").Benchmarks.name

let test_by_name_missing () =
  Alcotest.(check bool) "raises" true
    (try ignore (Benchmarks.by_name "nope"); false with Not_found -> true)

(* Table 2 CNOT-graph shapes the paper relies on. *)
let test_cnot_counts_match_table2_shape () =
  let cnots name = let _, _, _, c = Benchmarks.characteristics (Benchmarks.by_name name) in c in
  Alcotest.(check int) "BV4" 3 (cnots "BV4");
  Alcotest.(check int) "HS2" 2 (cnots "HS2");
  Alcotest.(check int) "HS4" 4 (cnots "HS4");
  Alcotest.(check int) "HS6" 6 (cnots "HS6");
  Alcotest.(check int) "Toffoli" 6 (cnots "Toffoli");
  Alcotest.(check int) "Fredkin" 8 (cnots "Fredkin");
  Alcotest.(check int) "Or" 6 (cnots "Or")

let test_qubit_counts_match_table2 () =
  List.iter
    (fun (name, qubits) ->
      let _, q, _, _ = Benchmarks.characteristics (Benchmarks.by_name name) in
      Alcotest.(check int) name qubits q)
    [ ("BV4", 4); ("BV6", 6); ("BV8", 8); ("HS2", 2); ("HS4", 4); ("HS6", 6);
      ("Toffoli", 3); ("Fredkin", 3); ("Or", 3); ("Peres", 3); ("QFT2", 2);
      ("Adder", 4) ]

(* Every benchmark's ideal (noiseless) outcome must equal its declared
   expected answer — checked on the *source* circuit via an identity
   compilation on a perfect machine. *)
let test_expected_answers_are_correct () =
  let perfect =
    Calibration.uniform ~cnot_error:0.0 ~readout_error:0.0 ~single_error:0.0
      ~t2_us:1e9 Ibmq16.topology
  in
  List.iter
    (fun (b : Benchmarks.t) ->
      let r =
        Compile.run ~config:(Config.make Config.Greedy_e) ~calib:perfect
          b.Benchmarks.circuit
      in
      let runner = Experiments.runner_of r in
      Alcotest.(check int) (b.Benchmarks.name ^ " ideal answer")
        b.Benchmarks.expected (Runner.ideal_answer runner);
      Alcotest.(check (float 1e-6)) (b.Benchmarks.name ^ " prob 1") 1.0
        (Runner.ideal_answer_probability runner);
      Alcotest.(check (float 1e-6)) (b.Benchmarks.name ^ " perfect success") 1.0
        (Runner.success_rate ~trials:200 ~seed:1 runner))
    Benchmarks.all

let test_bv_parameterized () =
  let b = Benchmarks.bernstein_vazirani 5 in
  Alcotest.(check int) "5 qubits" 5 b.Benchmarks.circuit.Circuit.num_qubits;
  Alcotest.(check int) "expected all-ones" 15 b.Benchmarks.expected

let test_bv_rejects_tiny () =
  Alcotest.(check bool) "raises" true
    (try ignore (Benchmarks.bernstein_vazirani 1); false
     with Invalid_argument _ -> true)

let test_hs_rejects_odd () =
  Alcotest.(check bool) "raises" true
    (try ignore (Benchmarks.hidden_shift 3); false
     with Invalid_argument _ -> true)

let test_all_benchmarks_measure_something () =
  List.iter
    (fun (b : Benchmarks.t) ->
      Alcotest.(check bool) (b.Benchmarks.name ^ " measures") true
        (Circuit.measured_qubits b.Benchmarks.circuit <> []))
    Benchmarks.all

(* --------------------------- Extended suite ------------------------ *)

let test_extended_superset () =
  Alcotest.(check bool) "extended larger" true
    (List.length Benchmarks.extended > List.length Benchmarks.all)

let test_extended_answers_correct () =
  (* every extended benchmark is deterministic and classically checkable *)
  let perfect =
    Calibration.uniform ~cnot_error:0.0 ~readout_error:0.0 ~single_error:0.0
      ~t2_us:1e9 Ibmq16.topology
  in
  List.iter
    (fun (b : Benchmarks.t) ->
      let r =
        Compile.run ~config:(Config.make Config.Greedy_e) ~calib:perfect
          b.Benchmarks.circuit
      in
      let runner = Experiments.runner_of r in
      Alcotest.(check int) (b.Benchmarks.name ^ " ideal") b.Benchmarks.expected
        (Runner.ideal_answer runner);
      Alcotest.(check bool) (b.Benchmarks.name ^ " deterministic") true
        (Runner.ideal_answer_probability runner > 0.999))
    Benchmarks.extended

let test_bv_secret_structure () =
  (* only the secret's set bits contribute CNOTs *)
  let b = Benchmarks.bernstein_vazirani_secret ~secret:0b101 4 in
  Alcotest.(check int) "2 CNOTs" 2 (Circuit.cnot_count b.Benchmarks.circuit);
  Alcotest.(check int) "expects the secret" 0b101 b.Benchmarks.expected

let test_bv_secret_rejects_out_of_range () =
  Alcotest.(check bool) "raises" true
    (try ignore (Benchmarks.bernstein_vazirani_secret ~secret:8 4); false
     with Invalid_argument _ -> true)

let test_hs_shift_expected () =
  let b = Benchmarks.hidden_shift_with ~shift:0b0110 4 in
  Alcotest.(check int) "expects the shift" 0b0110 b.Benchmarks.expected

let test_grover2_finds_marked_state () =
  Alcotest.(check int) "marked state" 0b11 Benchmarks.grover2.Benchmarks.expected

let test_dj_balanced_nonzero () =
  let b = Benchmarks.deutsch_jozsa 5 in
  Alcotest.(check bool) "non-zero answer" true (b.Benchmarks.expected <> 0)

(* -------------------------------- Synth ---------------------------- *)

let test_synth_deterministic () =
  let a = Synth.random_circuit ~qubits:8 ~gates:100 ~seed:5 () in
  let b = Synth.random_circuit ~qubits:8 ~gates:100 ~seed:5 () in
  Alcotest.(check int) "same length" (Circuit.length a) (Circuit.length b);
  Array.iteri
    (fun i (g : Gate.t) ->
      Alcotest.(check bool) "same gates" true
        (Gate.equal_kind g.kind b.Circuit.gates.(i).Gate.kind))
    a.Circuit.gates

let test_synth_gate_count () =
  let c = Synth.random_circuit ~qubits:6 ~gates:50 ~seed:2 () in
  (* 50 sampled + 6 measures *)
  Alcotest.(check int) "56 gates" 56 (Circuit.length c)

let test_synth_no_measure_option () =
  let c = Synth.random_circuit ~measure:false ~qubits:6 ~gates:50 ~seed:2 () in
  Alcotest.(check (list int)) "no measures" [] (Circuit.measured_qubits c)

let test_synth_uses_universal_set () =
  let c = Synth.random_circuit ~qubits:4 ~gates:300 ~seed:3 () in
  Array.iter
    (fun (g : Gate.t) ->
      Alcotest.(check bool) "allowed kind" true
        (match g.Gate.kind with
        | Gate.H | Gate.X | Gate.Y | Gate.Z | Gate.S | Gate.T | Gate.Cnot
        | Gate.Measure -> true
        | _ -> false))
    c.Circuit.gates

let test_grid_for_sizes () =
  Alcotest.(check int) "16" 16 (Topology.num_qubits (Synth.grid_for ~qubits:10));
  Alcotest.(check int) "32" 32 (Topology.num_qubits (Synth.grid_for ~qubits:32));
  Alcotest.(check int) "64" 64 (Topology.num_qubits (Synth.grid_for ~qubits:33));
  Alcotest.(check int) "128" 128 (Topology.num_qubits (Synth.grid_for ~qubits:100))

let test_grid_for_rejects_large () =
  Alcotest.(check bool) "raises" true
    (try ignore (Synth.grid_for ~qubits:129); false
     with Invalid_argument _ -> true)

(* ----------------------------- Experiments ------------------------- *)

let test_evaluate_produces_sane_numbers () =
  let calib = Ibmq16.calibration ~day:0 () in
  let e =
    Experiments.evaluate ~trials:256 ~config:(Config.make (Config.R_smt_star 0.5))
      ~calib (Benchmarks.by_name "BV4")
  in
  Alcotest.(check bool) "success in (0,1]" true
    (e.Experiments.success > 0.0 && e.Experiments.success <= 1.0)

let test_table2_renders () =
  let s = Experiments.table2 () in
  Alcotest.(check bool) "has BV4 row" true (contains s "BV4");
  Alcotest.(check bool) "has Adder row" true (contains s "Adder")

let test_fig1_spread () =
  let data = Experiments.fig1_data ~days:10 () in
  Alcotest.(check int) "10 days" 10 (Array.length data);
  let day0_t2, _ = (fun (_, a, b) -> (a, b)) data.(0) |> fun (a, b) -> (a, b) in
  Alcotest.(check int) "16 qubits" 16 (Array.length day0_t2)

let test_fig5_data_consistency () =
  let data = Experiments.fig5_data ~trials:64 () in
  Alcotest.(check int) "12 benchmarks" 12 (List.length data);
  List.iter
    (fun (_, evals) -> Alcotest.(check int) "3 configs" 3 (List.length evals))
    data

let test_fig9_durations_positive () =
  let data = Experiments.fig9_data () in
  List.iter
    (fun (_, durs) ->
      List.iter
        (fun (_, d) -> Alcotest.(check bool) "positive" true (d > 0))
        durs)
    data

let test_fig11_quick () =
  let rows = Experiments.fig11_data ~rsmt_seconds:0.5 ~quick:true () in
  Alcotest.(check bool) "has rows" true (List.length rows > 0);
  List.iter
    (fun (_, _, _, secs, _) ->
      Alcotest.(check bool) "time recorded" true (secs >= 0.0))
    rows

let suite =
  [
    ("12 benchmarks", `Quick, test_suite_has_12_benchmarks);
    ("names unique", `Quick, test_names_unique);
    ("by_name case-insensitive", `Quick, test_by_name_case_insensitive);
    ("by_name missing", `Quick, test_by_name_missing);
    ("cnot counts match table 2", `Quick, test_cnot_counts_match_table2_shape);
    ("qubit counts match table 2", `Quick, test_qubit_counts_match_table2);
    ("expected answers correct", `Slow, test_expected_answers_are_correct);
    ("bv parameterized", `Quick, test_bv_parameterized);
    ("bv rejects tiny", `Quick, test_bv_rejects_tiny);
    ("hs rejects odd", `Quick, test_hs_rejects_odd);
    ("all benchmarks measure", `Quick, test_all_benchmarks_measure_something);
    ("extended is a superset", `Quick, test_extended_superset);
    ("extended answers correct", `Slow, test_extended_answers_correct);
    ("bv secret structure", `Quick, test_bv_secret_structure);
    ("bv secret range check", `Quick, test_bv_secret_rejects_out_of_range);
    ("hs shift expected", `Quick, test_hs_shift_expected);
    ("grover2 marked state", `Quick, test_grover2_finds_marked_state);
    ("dj balanced non-zero", `Quick, test_dj_balanced_nonzero);
    ("synth deterministic", `Quick, test_synth_deterministic);
    ("synth gate count", `Quick, test_synth_gate_count);
    ("synth no-measure option", `Quick, test_synth_no_measure_option);
    ("synth universal gate set", `Quick, test_synth_uses_universal_set);
    ("grid_for sizes", `Quick, test_grid_for_sizes);
    ("grid_for rejects >128", `Quick, test_grid_for_rejects_large);
    ("evaluate sane", `Quick, test_evaluate_produces_sane_numbers);
    ("table2 renders", `Quick, test_table2_renders);
    ("fig1 spread", `Quick, test_fig1_spread);
    ("fig5 data consistency", `Quick, test_fig5_data_consistency);
    ("fig9 durations positive", `Quick, test_fig9_durations_positive);
    ("fig11 quick", `Quick, test_fig11_quick);
  ]
