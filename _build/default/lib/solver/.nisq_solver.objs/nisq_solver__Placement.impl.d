lib/solver/placement.ml: Array Budget Float Fun Hashtbl List
