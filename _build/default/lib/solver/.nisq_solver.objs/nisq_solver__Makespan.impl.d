lib/solver/makespan.ml: Array Budget Fun Int List
