lib/solver/budget.ml: Unix
