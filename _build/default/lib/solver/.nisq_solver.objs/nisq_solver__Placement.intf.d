lib/solver/placement.mli: Budget
