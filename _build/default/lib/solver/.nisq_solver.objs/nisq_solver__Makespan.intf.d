lib/solver/makespan.mli: Budget
