lib/solver/budget.mli:
