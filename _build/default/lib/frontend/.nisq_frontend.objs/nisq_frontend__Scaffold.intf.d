lib/frontend/scaffold.mli: Nisq_circuit
