lib/frontend/scaffold.ml: Array Filename Float Hashtbl List Nisq_circuit Printf String
