module Circuit = Nisq_circuit.Circuit
module B = Circuit.Builder
module D = Nisq_circuit.Decompose
module Gate = Nisq_circuit.Gate

exception Parse_error of { line : int; message : string }

let fail line message = raise (Parse_error { line; message })

(* ------------------------------- lexer ----------------------------- *)

type token =
  | Ident of string
  | Number of float
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Comma
  | Semi
  | Star
  | Slash
  | Minus

let token_name = function
  | Ident s -> Printf.sprintf "identifier %S" s
  | Number f -> Printf.sprintf "number %g" f
  | Lparen -> "'('"
  | Rparen -> "')'"
  | Lbrace -> "'{'"
  | Rbrace -> "'}'"
  | Lbracket -> "'['"
  | Rbracket -> "']'"
  | Comma -> "','"
  | Semi -> "';'"
  | Star -> "'*'"
  | Slash -> "'/'"
  | Minus -> "'-'"

let tokenize src =
  let tokens = ref [] in
  let line = ref 1 in
  let n = String.length src in
  let i = ref 0 in
  let push t = tokens := (t, !line) :: !tokens in
  let is_ident_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_'
  in
  let is_digit c = c >= '0' && c <= '9' in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then begin
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if is_digit c || (c = '.' && !i + 1 < n && is_digit src.[!i + 1]) then begin
      let start = !i in
      while
        !i < n
        && (is_digit src.[!i] || src.[!i] = '.' || src.[!i] = 'e'
           || (src.[!i] = '-' && !i > start && src.[!i - 1] = 'e'))
      do
        incr i
      done;
      let text = String.sub src start (!i - start) in
      match Float.of_string_opt text with
      | Some f -> push (Number f)
      | None -> fail !line ("bad number " ^ text)
    end
    else if is_ident_char c && not (is_digit c) then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        incr i
      done;
      push (Ident (String.sub src start (!i - start)))
    end
    else begin
      (match c with
      | '(' -> push Lparen
      | ')' -> push Rparen
      | '{' -> push Lbrace
      | '}' -> push Rbrace
      | '[' -> push Lbracket
      | ']' -> push Rbracket
      | ',' -> push Comma
      | ';' -> push Semi
      | '*' -> push Star
      | '/' -> push Slash
      | '-' -> push Minus
      | c -> fail !line (Printf.sprintf "unexpected character %C" c));
      incr i
    end
  done;
  List.rev !tokens

(* ------------------------------- parser ---------------------------- *)

type operand =
  | Reg_ref of string * int  (* q[3] *)
  | Name_ref of string  (* macro parameter, or whole register for measure *)

type stmt =
  | Apply of { gate : string; angle : float option; operands : operand list; line : int }
  | Measure_all of { reg : string; line : int }
  | Repeat of { count : int; body : stmt list; line : int }
  | Gate_def of { name : string; params : string list; body : stmt list; line : int }
  | Barrier of { operands : operand list; line : int }

type parser_state = { mutable toks : (token * int) list }

let peek st = match st.toks with [] -> None | (t, l) :: _ -> Some (t, l)

let next st =
  match st.toks with
  | [] -> fail 0 "unexpected end of input"
  | (t, l) :: rest ->
      st.toks <- rest;
      (t, l)

let expect st want =
  let t, l = next st in
  if t <> want then
    fail l (Printf.sprintf "expected %s, found %s" (token_name want) (token_name t))

let expect_ident st =
  match next st with
  | Ident s, _ -> s
  | t, l -> fail l ("expected identifier, found " ^ token_name t)

let expect_int st =
  match next st with
  | Number f, l ->
      let i = int_of_float f in
      if Float.of_int i <> f then fail l "expected an integer";
      i
  | t, l -> fail l ("expected integer, found " ^ token_name t)

(* angle := term (('*'|'/') term)?   term := number | pi | '-' term *)
let rec parse_angle_term st =
  match next st with
  | Number f, _ -> f
  | Ident "pi", _ -> Float.pi
  | Minus, _ -> -.parse_angle_term st
  | t, l -> fail l ("expected angle term, found " ^ token_name t)

let parse_angle st =
  let first = parse_angle_term st in
  match peek st with
  | Some (Star, _) ->
      ignore (next st);
      first *. parse_angle_term st
  | Some (Slash, _) ->
      ignore (next st);
      let d = parse_angle_term st in
      if d = 0.0 then fail 0 "division by zero in angle";
      first /. d
  | _ -> first

let parse_operand st =
  let name = expect_ident st in
  match peek st with
  | Some (Lbracket, _) ->
      ignore (next st);
      let idx = expect_int st in
      expect st Rbracket;
      Reg_ref (name, idx)
  | _ -> Name_ref name

let rec parse_operands st acc =
  let op = parse_operand st in
  match peek st with
  | Some (Comma, _) ->
      ignore (next st);
      parse_operands st (op :: acc)
  | _ -> List.rev (op :: acc)

let rec parse_stmt st ~in_def =
  match next st with
  | Ident "gate", l ->
      if in_def then fail l "nested gate definitions are not allowed";
      let name = expect_ident st in
      expect st Lparen;
      let rec params acc =
        match next st with
        | Rparen, _ -> List.rev acc
        | Ident p, _ -> (
            match next st with
            | Comma, _ -> params (p :: acc)
            | Rparen, _ -> List.rev (p :: acc)
            | t, l -> fail l ("expected ',' or ')', found " ^ token_name t))
        | t, l -> fail l ("expected parameter name, found " ^ token_name t)
      in
      let params = params [] in
      expect st Lbrace;
      let body = parse_block st ~in_def:true in
      Gate_def { name; params; body; line = l }
  | Ident "repeat", l ->
      let count = expect_int st in
      if count < 0 then fail l "repeat count must be non-negative";
      expect st Lbrace;
      let body = parse_block st ~in_def in
      Repeat { count; body; line = l }
  | Ident "measure", l -> (
      let op = parse_operand st in
      expect st Semi;
      match op with
      | Reg_ref _ -> Apply { gate = "measure"; angle = None; operands = [ op ]; line = l }
      | Name_ref reg -> Measure_all { reg; line = l })
  | Ident "barrier", l ->
      let operands = parse_operands st [] in
      expect st Semi;
      Barrier { operands; line = l }
  | Ident gate, l ->
      let angle =
        match peek st with
        | Some (Lparen, _) ->
            ignore (next st);
            let a = parse_angle st in
            expect st Rparen;
            Some a
        | _ -> None
      in
      let operands = parse_operands st [] in
      expect st Semi;
      Apply { gate; angle; operands; line = l }
  | t, l -> fail l ("expected a statement, found " ^ token_name t)

and parse_block st ~in_def =
  match peek st with
  | Some (Rbrace, _) ->
      ignore (next st);
      []
  | Some _ -> (
      let s = parse_stmt st ~in_def in
      s :: parse_block st ~in_def)
  | None -> fail 0 "unterminated block"

let parse_program st =
  (* qreg <name>[<n>]; *)
  (match next st with
  | Ident "qreg", _ -> ()
  | t, l -> fail l ("program must start with qreg, found " ^ token_name t));
  let reg = expect_ident st in
  expect st Lbracket;
  let size = expect_int st in
  expect st Rbracket;
  expect st Semi;
  let rec stmts () =
    match peek st with
    | None -> []
    | Some _ ->
        let s = parse_stmt st ~in_def:false in
        s :: stmts ()
  in
  (reg, size, stmts ())

(* ----------------------------- elaboration ------------------------- *)

type builtin =
  | Simple of Gate.kind
  | Rotation of (float -> Gate.kind)
  | Emit of (B.t -> int list -> unit)

let builtins : (string * (int * builtin)) list =
  [
    ("h", (1, Simple Gate.H));
    ("x", (1, Simple Gate.X));
    ("y", (1, Simple Gate.Y));
    ("z", (1, Simple Gate.Z));
    ("s", (1, Simple Gate.S));
    ("sdg", (1, Simple Gate.Sdg));
    ("t", (1, Simple Gate.T));
    ("tdg", (1, Simple Gate.Tdg));
    ("rz", (1, Rotation (fun a -> Gate.Rz a)));
    ("rx", (1, Rotation (fun a -> Gate.Rx a)));
    ("ry", (1, Rotation (fun a -> Gate.Ry a)));
    ("cx", (2, Simple Gate.Cnot));
    ("cnot", (2, Simple Gate.Cnot));
    ("swap", (2, Simple Gate.Swap));
    ("measure", (1, Simple Gate.Measure));
    ( "cz",
      (2, Emit (fun b -> function [ c; t ] -> D.emit_cz b c t | _ -> assert false)) );
    ( "ccx",
      ( 3,
        Emit (fun b -> function [ a; c; t ] -> D.emit_toffoli b a c t | _ -> assert false) ) );
    ( "toffoli",
      ( 3,
        Emit (fun b -> function [ a; c; t ] -> D.emit_toffoli b a c t | _ -> assert false) ) );
    ( "cswap",
      ( 3,
        Emit (fun b -> function [ c; t1; t2 ] -> D.emit_fredkin b c t1 t2 | _ -> assert false) ) );
    ( "fredkin",
      ( 3,
        Emit (fun b -> function [ c; t1; t2 ] -> D.emit_fredkin b c t1 t2 | _ -> assert false) ) );
    ( "peres",
      ( 3,
        Emit (fun b -> function [ a; c; t ] -> D.emit_peres b a c t | _ -> assert false) ) );
  ]

let elaborate ~name (reg, size, stmts) =
  if size <= 0 then fail 1 "register size must be positive";
  let b = B.create ~name size in
  let user_gates = Hashtbl.create 8 in
  let resolve_operand ~env ~line = function
    | Reg_ref (r, idx) ->
        if r <> reg then fail line (Printf.sprintf "unknown register %s" r);
        if idx < 0 || idx >= size then
          fail line (Printf.sprintf "qubit %s[%d] out of range" r idx);
        idx
    | Name_ref n -> (
        match List.assoc_opt n env with
        | Some q -> q
        | None -> fail line (Printf.sprintf "unknown qubit name %s" n))
  in
  let rec exec_stmt ~env stmt =
    match stmt with
    | Gate_def { name; params; body; line } ->
        if env <> [] then fail line "gate definitions must be top-level";
        if List.exists (fun (g, _) -> g = name) builtins then
          fail line (Printf.sprintf "cannot redefine builtin gate %s" name);
        if Hashtbl.mem user_gates name then
          fail line (Printf.sprintf "gate %s already defined" name);
        let sorted = List.sort_uniq compare params in
        if List.length sorted <> List.length params then
          fail line "duplicate gate parameters";
        Hashtbl.add user_gates name (params, body)
    | Repeat { count; body; _ } ->
        for _ = 1 to count do
          List.iter (exec_stmt ~env) body
        done
    | Measure_all { reg = r; line } ->
        if r <> reg then fail line (Printf.sprintf "unknown register %s" r);
        B.measure_all b
    | Barrier { operands; line } ->
        let qs = List.map (resolve_operand ~env ~line) operands in
        B.barrier b (Array.of_list qs)
    | Apply { gate; angle; operands; line } -> (
        let qs = List.map (resolve_operand ~env ~line) operands in
        match List.assoc_opt gate builtins with
        | Some (arity, action) -> (
            if List.length qs <> arity then
              fail line
                (Printf.sprintf "%s expects %d operand(s), got %d" gate arity
                   (List.length qs));
            match (action, angle) with
            | Simple kind, None -> B.add b kind (Array.of_list qs)
            | Simple _, Some _ -> fail line (gate ^ " takes no angle")
            | Rotation mk, Some a -> B.add b (mk a) (Array.of_list qs)
            | Rotation _, None -> fail line (gate ^ " requires an angle")
            | Emit f, None -> (
                try f b qs
                with Invalid_argument msg -> fail line msg)
            | Emit _, Some _ -> fail line (gate ^ " takes no angle"))
        | None -> (
            match Hashtbl.find_opt user_gates gate with
            | None -> fail line (Printf.sprintf "unknown gate %s" gate)
            | Some (params, body) ->
                if angle <> None then fail line (gate ^ " takes no angle");
                if List.length qs <> List.length params then
                  fail line
                    (Printf.sprintf "%s expects %d operand(s), got %d" gate
                       (List.length params) (List.length qs));
                let call_env = List.combine params qs in
                List.iter (exec_stmt ~env:call_env) body))
  in
  List.iter (exec_stmt ~env:[]) stmts;
  B.build b

let parse src =
  let st = { toks = tokenize src } in
  let program = parse_program st in
  try elaborate ~name:"scaffold" program
  with Invalid_argument msg -> fail 0 msg

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  let st = { toks = tokenize src } in
  let program = parse_program st in
  try elaborate ~name:(Filename.remove_extension (Filename.basename path)) program
  with Invalid_argument msg -> fail 0 msg
