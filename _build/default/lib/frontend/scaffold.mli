(** A miniature Scaffold-like frontend.

    The paper's toolflow starts from programs in Scaffold, a C-style
    language with quantum gates, which ScaffCC lowers (decomposing
    Toffoli-class gates) into a gate-level IR (§3). This module provides
    the same on-ramp in miniature: a small imperative gate language that
    elaborates to {!Nisq_circuit.Circuit.t}, with multi-qubit primitives
    decomposed via {!Nisq_circuit.Decompose} exactly as ScaffCC would.

    {2 Language}

    {v
    // one quantum register, declared first
    qreg q[4];

    // user gate definitions (macros over qubit parameters)
    gate majority(a, b, c) {
      cx c, b;
      cx c, a;
      ccx a, b, c;
    }

    h q[0];
    majority q[0], q[1], q[2];
    repeat 2 { t q[3]; }
    rz(pi/4) q[3];
    measure q;          // whole register
    v}

    Statements: gate applications, [measure q[i]] / [measure q] (whole
    register), [barrier q[i], ...], [repeat <n> { ... }], and [gate]
    definitions (which may call previously defined gates). Builtin
    gates: h x y z s sdg t tdg rz(θ) rx(θ) ry(θ) cx cz swap ccx cswap
    peres. Angles accept literals, [pi], [pi/k], [k*pi]. Comments are
    [// ...]. *)

exception Parse_error of { line : int; message : string }

val parse : string -> Nisq_circuit.Circuit.t
(** Elaborate a source text. Raises {!Parse_error} with a 1-based line
    number on malformed input, unknown gates, arity mismatches or
    out-of-range qubits. *)

val parse_file : string -> Nisq_circuit.Circuit.t
(** [parse] on a file's contents; the circuit is named after the file. *)
