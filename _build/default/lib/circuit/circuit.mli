(** Gate-level quantum circuit IR.

    A circuit is an ordered list of gates over [num_qubits] program qubits.
    This carries the same information as the paper's ScaffCC/LLVM IR input
    (§3): the qubits required for each operation, and — through program
    order on shared qubits — the data dependencies between operations
    (materialized by {!Dag}). Circuits are immutable once built; use
    {!Builder} to construct them. *)

type t = private {
  name : string;
  num_qubits : int;
  gates : Gate.t array;  (** program order; [gates.(i).id = i] *)
}

(** Imperative construction API. *)
module Builder : sig
  type circuit := t
  type t

  val create : ?name:string -> int -> t
  (** [create n] starts a circuit over [n] qubits. *)

  val add : t -> Gate.kind -> int array -> unit
  (** Append a gate. Raises [Invalid_argument] on out-of-range operands,
      duplicate operands, or arity mismatch. *)

  (* Convenience appenders. *)
  val h : t -> int -> unit
  val x : t -> int -> unit
  val y : t -> int -> unit
  val z : t -> int -> unit
  val s : t -> int -> unit
  val sdg : t -> int -> unit
  val t_gate : t -> int -> unit
  val tdg : t -> int -> unit
  val rz : t -> float -> int -> unit
  val rx : t -> float -> int -> unit
  val ry : t -> float -> int -> unit
  val cnot : t -> int -> int -> unit
  (** [cnot b control target]. *)

  val swap : t -> int -> int -> unit
  val measure : t -> int -> unit
  val measure_all : t -> unit
  val barrier : t -> int array -> unit

  val build : t -> circuit
end

val make : ?name:string -> int -> (Gate.kind * int array) list -> t
(** One-shot construction from a gate list, with [Builder]'s validation. *)

val length : t -> int
(** Total gate count (including measurements and barriers). *)

val cnot_count : t -> int
(** Number of [Cnot] gates (SWAPs count as 3, matching the hardware cost). *)

val two_qubit_count : t -> int
(** Number of two-qubit gates ([Cnot] + [Swap]), uninflated. *)

val gate_count : t -> int
(** Unitary + measurement gates (barriers excluded) — the paper's Table 2
    "Gates" column. *)

val measured_qubits : t -> int list
(** Qubits carrying a [Measure], in program order of first measurement. *)

val used_qubits : t -> int list
(** Sorted list of qubits touched by at least one gate. *)

val interaction_weights : t -> ((int * int) * int) list
(** CNOT multiplicity per unordered qubit pair — the "program graph" edge
    weights driving the GreedyE⋆ heuristic (§5.2). Pairs are normalized
    with the smaller index first. *)

val qubit_degrees : t -> int array
(** Per-qubit count of CNOTs it participates in — the "vertex degree"
    driving GreedyV⋆ (§5.1). *)

val map_qubits : t -> f:(int -> int) -> num_qubits:int -> t
(** Relabel qubit operands (used to re-express a circuit over hardware
    qubits once a layout is chosen). [f] must be injective on
    [used_qubits]. *)

val append : t -> t -> t
(** Concatenate two circuits over the same qubit count. *)

val inverse : t -> t
(** Adjoint circuit: gates reversed and inverted. Raises
    [Invalid_argument] if the circuit contains measurements. *)

val pp : Format.formatter -> t -> unit
