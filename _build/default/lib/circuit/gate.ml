type kind =
  | H
  | X
  | Y
  | Z
  | S
  | Sdg
  | T
  | Tdg
  | Rz of float
  | Rx of float
  | Ry of float
  | Cnot
  | Swap
  | Measure
  | Barrier

type t = { id : int; kind : kind; qubits : int array }

let arity = function
  | H | X | Y | Z | S | Sdg | T | Tdg | Rz _ | Rx _ | Ry _ | Measure -> 1
  | Cnot | Swap -> 2
  | Barrier -> 0

let is_two_qubit = function Cnot | Swap -> true | _ -> false

let is_unitary = function Measure | Barrier -> false | _ -> true

let adjoint = function
  | H -> H
  | X -> X
  | Y -> Y
  | Z -> Z
  | S -> Sdg
  | Sdg -> S
  | T -> Tdg
  | Tdg -> T
  | Rz a -> Rz (-.a)
  | Rx a -> Rx (-.a)
  | Ry a -> Ry (-.a)
  | Cnot -> Cnot
  | Swap -> Swap
  | (Measure | Barrier) as k ->
      invalid_arg ("Gate.adjoint: non-unitary gate " ^ (match k with Measure -> "measure" | _ -> "barrier"))

let name = function
  | H -> "h"
  | X -> "x"
  | Y -> "y"
  | Z -> "z"
  | S -> "s"
  | Sdg -> "sdg"
  | T -> "t"
  | Tdg -> "tdg"
  | Rz _ -> "rz"
  | Rx _ -> "rx"
  | Ry _ -> "ry"
  | Cnot -> "cx"
  | Swap -> "swap"
  | Measure -> "measure"
  | Barrier -> "barrier"

let equal_kind a b =
  let feq x y = Float.abs (x -. y) < 1e-12 in
  match (a, b) with
  | Rz x, Rz y | Rx x, Rx y | Ry x, Ry y -> feq x y
  | Rz _, _ | Rx _, _ | Ry _, _ | _, Rz _ | _, Rx _ | _, Ry _ -> false
  | a, b -> a = b

let pp ppf g =
  let operands =
    g.qubits |> Array.to_list
    |> List.map (Printf.sprintf "q[%d]")
    |> String.concat ", "
  in
  match g.kind with
  | Rz a | Rx a | Ry a -> Format.fprintf ppf "%s(%.6g) %s" (name g.kind) a operands
  | k -> Format.fprintf ppf "%s %s" (name k) operands
