(** Quantum gate kinds.

    The gate set mirrors what ScaffCC emits after decomposition (§3 of the
    paper): the standard single-qubit Cliffords + T, Z-rotations for QFT,
    the two-qubit CNOT, and measurement. [Swap] appears only in *compiled*
    circuits (the router inserts it); frontends never emit it directly. *)

type kind =
  | H
  | X
  | Y
  | Z
  | S
  | Sdg
  | T
  | Tdg
  | Rz of float  (** rotation about Z by the given angle (radians) *)
  | Rx of float
  | Ry of float
  | Cnot  (** control is operand 0, target operand 1 *)
  | Swap  (** router-inserted; decomposes into 3 CNOTs on hardware *)
  | Measure  (** computational-basis readout of operand 0 *)
  | Barrier  (** scheduling fence across its operands; no physical effect *)

type t = {
  id : int;  (** unique within a circuit, assigned by [Circuit] *)
  kind : kind;
  qubits : int array;  (** operand qubit indices, in gate-specific order *)
}

val arity : kind -> int
(** Number of qubit operands ([Barrier] reports 0 meaning "variable"). *)

val is_two_qubit : kind -> bool
(** [Cnot] or [Swap]. *)

val is_unitary : kind -> bool
(** Everything except [Measure] and [Barrier]. *)

val adjoint : kind -> kind
(** Inverse gate kind. Raises [Invalid_argument] for [Measure]/[Barrier]. *)

val name : kind -> string
(** Lower-case OpenQASM-style mnemonic ("h", "cx", "rz", ...). *)

val equal_kind : kind -> kind -> bool
(** Structural equality with float tolerance 1e-12 on rotation angles. *)

val pp : Format.formatter -> t -> unit
(** e.g. "cx q[2], q[5]". *)
