let label_of (g : Gate.t) =
  match g.kind with
  | Gate.H -> "H"
  | Gate.X -> "X"
  | Gate.Y -> "Y"
  | Gate.Z -> "Z"
  | Gate.S -> "S"
  | Gate.Sdg -> "S'"
  | Gate.T -> "T"
  | Gate.Tdg -> "T'"
  | Gate.Rz _ -> "Rz"
  | Gate.Rx _ -> "Rx"
  | Gate.Ry _ -> "Ry"
  | Gate.Measure -> "M"
  | Gate.Barrier -> ":"
  | Gate.Cnot | Gate.Swap -> assert false

let render (c : Circuit.t) =
  if c.Circuit.num_qubits > 64 then
    invalid_arg "Draw.render: too many qubits for a readable diagram";
  let layers = Dag.layers (Dag.of_circuit c) in
  let n = c.Circuit.num_qubits in
  (* Each layer becomes one column of cells; cells are strings of equal
     width within the column. [mid] marks wires crossed by a vertical
     connector. *)
  let columns =
    List.map
      (fun layer ->
        let cell = Array.make n "" in
        let vertical = Array.make n false in
        List.iter
          (fun gate_id ->
            let g = c.Circuit.gates.(gate_id) in
            match g.Gate.kind with
            | Gate.Cnot | Gate.Swap ->
                let a = g.qubits.(0) and b = g.qubits.(1) in
                (if g.Gate.kind = Gate.Cnot then begin
                   cell.(a) <- "*";
                   cell.(b) <- "X"
                 end
                 else begin
                   cell.(a) <- "x";
                   cell.(b) <- "x"
                 end);
                for w = Int.min a b + 1 to Int.max a b - 1 do
                  vertical.(w) <- true
                done
            | Gate.Barrier -> Array.iter (fun q -> cell.(q) <- ":") g.qubits
            | _ -> cell.(g.qubits.(0)) <- label_of g)
          layer;
        let width =
          Array.fold_left (fun acc s -> Int.max acc (String.length s)) 1 cell
        in
        Array.init n (fun q ->
            let s = cell.(q) in
            if s = "" then
              if vertical.(q) then
                (* centre a '|' on the wire *)
                let pad = (width - 1) / 2 in
                String.make pad '-' ^ "|" ^ String.make (width - 1 - pad) '-'
              else String.make width '-'
            else s ^ String.make (width - String.length s) '-'))
      layers
  in
  let buf = Buffer.create 256 in
  let wire_label q = Printf.sprintf "q%-2d: " q in
  for q = 0 to n - 1 do
    Buffer.add_string buf (wire_label q);
    Buffer.add_string buf "--";
    List.iter
      (fun col ->
        Buffer.add_string buf col.(q);
        Buffer.add_string buf "--")
      columns;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf
