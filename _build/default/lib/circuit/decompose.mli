(** Decompositions of multi-qubit primitives into the hardware basis
    (1-qubit gates + CNOT), as ScaffCC performs before emitting IR (§3).

    Each [emit_*] function appends the decomposition to a builder; CNOT
    counts match the paper's Table 2 where it states them (Toffoli: 6,
    Fredkin: 8, CZ: 1). *)

val emit_cz : Circuit.Builder.t -> int -> int -> unit
(** Controlled-Z as [H t; CNOT c t; H t]. 1 CNOT. *)

val emit_toffoli : Circuit.Builder.t -> int -> int -> int -> unit
(** [emit_toffoli b a b' t]: standard 6-CNOT, 7-T decomposition
    (Nielsen & Chuang fig. 4.9). *)

val emit_fredkin : Circuit.Builder.t -> int -> int -> int -> unit
(** Controlled-SWAP as [CNOT t2 t1; Toffoli c t1 t2; CNOT t2 t1]: 8 CNOTs. *)

val emit_peres : Circuit.Builder.t -> int -> int -> int -> unit
(** Peres gate = Toffoli(a,b,c) followed by CNOT(a,b): 7 CNOTs. *)

val emit_swap_as_cnots : Circuit.Builder.t -> int -> int -> unit
(** SWAP(x,y) = CNOT x y; CNOT y x; CNOT x y (§2 footnote 2). *)

val lower_swaps : Circuit.t -> Circuit.t
(** Replace every [Swap] gate by its 3-CNOT expansion; other gates are
    preserved in order. Used before simulation and QASM emission so the
    executed gate stream matches hardware cost. *)
