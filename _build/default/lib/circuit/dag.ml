type t = {
  circuit : Circuit.t;
  preds : int list array;
  succs : int list array;
}

let of_circuit (c : Circuit.t) =
  let n = Array.length c.gates in
  let preds = Array.make n [] in
  let succs = Array.make n [] in
  (* last.(q) = id of the most recent gate touching qubit q *)
  let last = Array.make c.num_qubits (-1) in
  Array.iter
    (fun (g : Gate.t) ->
      let unique_preds = Hashtbl.create 4 in
      Array.iter
        (fun q ->
          let p = last.(q) in
          if p >= 0 && not (Hashtbl.mem unique_preds p) then begin
            Hashtbl.add unique_preds p ();
            preds.(g.id) <- p :: preds.(g.id);
            succs.(p) <- g.id :: succs.(p)
          end;
          last.(q) <- g.id)
        g.qubits)
    c.gates;
  (* Normalize adjacency order to ascending ids. *)
  Array.iteri (fun i l -> preds.(i) <- List.sort compare l) preds;
  Array.iteri (fun i l -> succs.(i) <- List.sort compare l) succs;
  { circuit = c; preds; succs }

let num_gates t = Array.length t.preds

let preds t i = t.preds.(i)
let succs t i = t.succs.(i)

let roots t =
  let out = ref [] in
  for i = num_gates t - 1 downto 0 do
    if t.preds.(i) = [] then out := i :: !out
  done;
  !out

let topo_order t = Array.init (num_gates t) Fun.id

let level_of t =
  let n = num_gates t in
  let level = Array.make n 0 in
  for i = 0 to n - 1 do
    List.iter (fun p -> level.(i) <- Int.max level.(i) (level.(p) + 1)) t.preds.(i)
  done;
  level

let layers t =
  let n = num_gates t in
  if n = 0 then []
  else begin
    let level = level_of t in
    let depth = 1 + Array.fold_left Int.max 0 level in
    let buckets = Array.make depth [] in
    for i = n - 1 downto 0 do
      buckets.(level.(i)) <- i :: buckets.(level.(i))
    done;
    Array.to_list buckets
  end

let depth t =
  let n = num_gates t in
  if n = 0 then 0 else 1 + Array.fold_left Int.max 0 (level_of t)

let critical_path_length t ~weight =
  let n = num_gates t in
  let finish = Array.make n 0 in
  let best = ref 0 in
  for i = 0 to n - 1 do
    let start =
      List.fold_left (fun acc p -> Int.max acc finish.(p)) 0 t.preds.(i)
    in
    finish.(i) <- start + weight t.circuit.gates.(i);
    best := Int.max !best finish.(i)
  done;
  !best
