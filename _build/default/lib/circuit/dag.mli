(** Data-dependency DAG of a circuit.

    Two gates depend on each other iff they share a qubit; the edge runs
    from the earlier gate to the later one (program order). This is the
    [>] relation of §4.1 ("g2 > g1 if g2 depends on g1"), restricted to
    immediate predecessors: for each operand qubit, a gate depends on the
    previous gate touching that qubit. *)

type t

val of_circuit : Circuit.t -> t

val num_gates : t -> int

val preds : t -> int -> int list
(** Immediate predecessors (gate ids) of a gate id. *)

val succs : t -> int -> int list
(** Immediate successors. *)

val roots : t -> int list
(** Gates with no predecessors. *)

val topo_order : t -> int array
(** A topological order of gate ids. Since construction is from program
    order, this is simply [0..n-1]; provided for clarity at call sites. *)

val layers : t -> int list list
(** ASAP layering: layer k holds the gates whose longest dependency chain
    has length k. Gates in one layer touch disjoint qubits and could run
    concurrently on ideal hardware. *)

val depth : t -> int
(** Number of layers ([0] for the empty circuit). *)

val critical_path_length : t -> weight:(Gate.t -> int) -> int
(** Longest weighted path through the DAG, with per-gate weights —
    a lower bound on any legal schedule's makespan. *)
