(** ASCII circuit diagrams (the presentation of the paper's Fig. 2a).

    One row per qubit, one column per dependency layer; CNOTs show a
    [*] control wired to an [X] target, measurements an [M]:

    {v
    q0: --H----*--------H----M-
    q1: --H----|---*----H----M-
    q2: --X----X---X-----------
    v} *)

val render : Circuit.t -> string
(** Raises [Invalid_argument] on circuits wider than 64 qubits (diagrams
    stop being readable long before that). *)
