type t = { name : string; num_qubits : int; gates : Gate.t array }

module Builder = struct
  type t = {
    bname : string;
    bnum_qubits : int;
    mutable rev_gates : Gate.t list;
    mutable count : int;
  }

  let create ?(name = "circuit") n =
    if n <= 0 then invalid_arg "Circuit.Builder.create: need at least 1 qubit";
    { bname = name; bnum_qubits = n; rev_gates = []; count = 0 }

  let validate b kind qubits =
    let arity = Gate.arity kind in
    if arity <> 0 && Array.length qubits <> arity then
      invalid_arg
        (Printf.sprintf "Circuit.Builder.add: %s expects %d operand(s), got %d"
           (Gate.name kind) arity (Array.length qubits));
    Array.iter
      (fun q ->
        if q < 0 || q >= b.bnum_qubits then
          invalid_arg
            (Printf.sprintf "Circuit.Builder.add: qubit %d out of range [0,%d)"
               q b.bnum_qubits))
      qubits;
    let n = Array.length qubits in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if qubits.(i) = qubits.(j) then
          invalid_arg
            (Printf.sprintf
               "Circuit.Builder.add: duplicate operand q[%d] for %s"
               qubits.(i) (Gate.name kind))
      done
    done

  let add b kind qubits =
    validate b kind qubits;
    let g = { Gate.id = b.count; kind; qubits = Array.copy qubits } in
    b.rev_gates <- g :: b.rev_gates;
    b.count <- b.count + 1

  let h b q = add b Gate.H [| q |]
  let x b q = add b Gate.X [| q |]
  let y b q = add b Gate.Y [| q |]
  let z b q = add b Gate.Z [| q |]
  let s b q = add b Gate.S [| q |]
  let sdg b q = add b Gate.Sdg [| q |]
  let t_gate b q = add b Gate.T [| q |]
  let tdg b q = add b Gate.Tdg [| q |]
  let rz b a q = add b (Gate.Rz a) [| q |]
  let rx b a q = add b (Gate.Rx a) [| q |]
  let ry b a q = add b (Gate.Ry a) [| q |]
  let cnot b c t = add b Gate.Cnot [| c; t |]
  let swap b a c = add b Gate.Swap [| a; c |]
  let measure b q = add b Gate.Measure [| q |]

  let measure_all b =
    for q = 0 to b.bnum_qubits - 1 do
      measure b q
    done

  let barrier b qubits = add b Gate.Barrier qubits

  let build b =
    {
      name = b.bname;
      num_qubits = b.bnum_qubits;
      gates = Array.of_list (List.rev b.rev_gates);
    }
end

let make ?name n gates =
  let b = Builder.create ?name n in
  List.iter (fun (kind, qubits) -> Builder.add b kind qubits) gates;
  Builder.build b

let length c = Array.length c.gates

let count_if c pred =
  Array.fold_left (fun acc g -> if pred g then acc + 1 else acc) 0 c.gates

let cnot_count c =
  Array.fold_left
    (fun acc (g : Gate.t) ->
      match g.kind with Gate.Cnot -> acc + 1 | Gate.Swap -> acc + 3 | _ -> acc)
    0 c.gates

let two_qubit_count c = count_if c (fun g -> Gate.is_two_qubit g.Gate.kind)

let gate_count c = count_if c (fun g -> g.Gate.kind <> Gate.Barrier)

let measured_qubits c =
  let seen = Hashtbl.create 8 in
  Array.fold_left
    (fun acc (g : Gate.t) ->
      match g.kind with
      | Gate.Measure ->
          let q = g.qubits.(0) in
          if Hashtbl.mem seen q then acc
          else (
            Hashtbl.add seen q ();
            q :: acc)
      | _ -> acc)
    [] c.gates
  |> List.rev

let used_qubits c =
  let used = Array.make c.num_qubits false in
  Array.iter (fun (g : Gate.t) -> Array.iter (fun q -> used.(q) <- true) g.qubits) c.gates;
  let out = ref [] in
  for q = c.num_qubits - 1 downto 0 do
    if used.(q) then out := q :: !out
  done;
  !out

let interaction_weights c =
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun (g : Gate.t) ->
      match g.kind with
      | Gate.Cnot | Gate.Swap ->
          let a = Int.min g.qubits.(0) g.qubits.(1)
          and b = Int.max g.qubits.(0) g.qubits.(1) in
          let key = (a, b) in
          let prev = Option.value ~default:0 (Hashtbl.find_opt tbl key) in
          Hashtbl.replace tbl key (prev + 1)
      | _ -> ())
    c.gates;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort compare

let qubit_degrees c =
  let deg = Array.make c.num_qubits 0 in
  Array.iter
    (fun (g : Gate.t) ->
      if Gate.is_two_qubit g.kind then
        Array.iter (fun q -> deg.(q) <- deg.(q) + 1) g.qubits)
    c.gates;
  deg

let map_qubits c ~f ~num_qubits =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun q ->
      let h = f q in
      if h < 0 || h >= num_qubits then
        invalid_arg "Circuit.map_qubits: image out of range";
      if Hashtbl.mem seen h then invalid_arg "Circuit.map_qubits: not injective";
      Hashtbl.add seen h ())
    (used_qubits c);
  {
    name = c.name;
    num_qubits;
    gates =
      Array.map
        (fun (g : Gate.t) -> { g with Gate.qubits = Array.map f g.qubits })
        c.gates;
  }

let append a b =
  if a.num_qubits <> b.num_qubits then
    invalid_arg "Circuit.append: qubit count mismatch";
  let n = Array.length a.gates in
  {
    name = a.name;
    num_qubits = a.num_qubits;
    gates =
      Array.append a.gates
        (Array.map (fun (g : Gate.t) -> { g with Gate.id = g.id + n }) b.gates);
  }

let inverse c =
  let n = Array.length c.gates in
  let gates =
    Array.init n (fun i ->
        let g = c.gates.(n - 1 - i) in
        match g.Gate.kind with
        | Gate.Measure -> invalid_arg "Circuit.inverse: circuit has measurements"
        | Gate.Barrier -> { g with Gate.id = i }
        | k -> { g with Gate.id = i; kind = Gate.adjoint k })
  in
  { name = c.name ^ "_inv"; num_qubits = c.num_qubits; gates }

let pp ppf c =
  Format.fprintf ppf "@[<v>%s (%d qubits, %d gates)@," c.name c.num_qubits
    (length c);
  Array.iter (fun g -> Format.fprintf ppf "  %a@," Gate.pp g) c.gates;
  Format.fprintf ppf "@]"
