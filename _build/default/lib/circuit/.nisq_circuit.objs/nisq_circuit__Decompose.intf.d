lib/circuit/decompose.mli: Circuit
