lib/circuit/gate.ml: Array Float Format List Printf String
