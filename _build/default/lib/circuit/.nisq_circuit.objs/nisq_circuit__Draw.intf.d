lib/circuit/draw.mli: Circuit
