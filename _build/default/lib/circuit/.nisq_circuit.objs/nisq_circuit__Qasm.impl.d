lib/circuit/qasm.ml: Array Buffer Circuit Decompose Float Gate List Option Printf String
