lib/circuit/draw.ml: Array Buffer Circuit Dag Gate Int List Printf String
