lib/circuit/dag.ml: Array Circuit Fun Gate Hashtbl Int List
