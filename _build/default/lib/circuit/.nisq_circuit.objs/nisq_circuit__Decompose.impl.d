lib/circuit/decompose.ml: Array Circuit Gate
