module B = Circuit.Builder

let emit_cz b c t =
  B.h b t;
  B.cnot b c t;
  B.h b t

(* Standard Toffoli decomposition, Nielsen & Chuang fig 4.9: 6 CNOTs. *)
let emit_toffoli b a c t =
  B.h b t;
  B.cnot b c t;
  B.tdg b t;
  B.cnot b a t;
  B.t_gate b t;
  B.cnot b c t;
  B.tdg b t;
  B.cnot b a t;
  B.t_gate b c;
  B.t_gate b t;
  B.h b t;
  B.cnot b a c;
  B.t_gate b a;
  B.tdg b c;
  B.cnot b a c

let emit_fredkin b c t1 t2 =
  B.cnot b t2 t1;
  emit_toffoli b c t1 t2;
  B.cnot b t2 t1

let emit_peres b a c t =
  emit_toffoli b a c t;
  B.cnot b a c

let emit_swap_as_cnots b x y =
  B.cnot b x y;
  B.cnot b y x;
  B.cnot b x y

let lower_swaps (c : Circuit.t) =
  let b = B.create ~name:c.name c.num_qubits in
  Array.iter
    (fun (g : Gate.t) ->
      match g.kind with
      | Gate.Swap -> emit_swap_as_cnots b g.qubits.(0) g.qubits.(1)
      | k -> B.add b k g.qubits)
    c.gates;
  B.build b
