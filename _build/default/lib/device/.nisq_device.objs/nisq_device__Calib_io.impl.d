lib/device/calib_io.ml: Array Buffer Calibration Float Hashtbl List Printf String Topology
