lib/device/topology.mli: Format
