lib/device/calibration.mli: Format Topology
