lib/device/calibration.ml: Array Float Format Int List Nisq_util Printf Topology
