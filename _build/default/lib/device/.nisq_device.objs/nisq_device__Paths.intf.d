lib/device/paths.mli: Calibration
