lib/device/calib_gen.mli: Calibration Topology
