lib/device/paths.ml: Array Calibration Fun List Topology
