lib/device/iontrap.ml: Calib_gen Topology
