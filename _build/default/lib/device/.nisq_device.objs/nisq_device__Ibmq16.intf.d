lib/device/ibmq16.mli: Calibration Topology
