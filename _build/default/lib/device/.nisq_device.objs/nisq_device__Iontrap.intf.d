lib/device/iontrap.mli: Calibration Topology
