lib/device/ibmq16.ml: Calib_gen Topology
