lib/device/calib_gen.ml: Array Calibration Float Hashtbl List Nisq_util Topology
