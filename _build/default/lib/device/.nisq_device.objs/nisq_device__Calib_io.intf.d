lib/device/calib_io.mli: Calibration
