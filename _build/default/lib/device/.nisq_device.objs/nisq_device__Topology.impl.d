lib/device/topology.ml: Array Format List Printf Queue
