module Rng = Nisq_util.Rng

type params = {
  cnot_err_median : float;
  cnot_err_spatial_sigma : float;
  cnot_err_temporal_sigma : float;
  cnot_err_clamp : float * float;
  readout_err_median : float;
  readout_err_spatial_sigma : float;
  readout_err_temporal_sigma : float;
  readout_err_clamp : float * float;
  t2_median_us : float;
  t2_spatial_sigma : float;
  t2_temporal_sigma : float;
  t2_clamp_us : float * float;
  single_err_median : float;
  single_err_sigma : float;
  cnot_duration_slots : int * int;
}

let default =
  {
    cnot_err_median = 0.033;
    cnot_err_spatial_sigma = 0.55;
    cnot_err_temporal_sigma = 0.30;
    cnot_err_clamp = (0.006, 0.35);
    readout_err_median = 0.06;
    readout_err_spatial_sigma = 0.45;
    readout_err_temporal_sigma = 0.25;
    readout_err_clamp = (0.012, 0.35);
    t2_median_us = 62.0;
    t2_spatial_sigma = 0.40;
    t2_temporal_sigma = 0.18;
    t2_clamp_us = (25.0, 220.0);
    single_err_median = 0.002;
    single_err_sigma = 0.4;
    cnot_duration_slots = (3, 5);
  }

let high_variance =
  {
    default with
    cnot_err_spatial_sigma = 1.0;
    cnot_err_temporal_sigma = 0.55;
    readout_err_spatial_sigma = 0.85;
    readout_err_temporal_sigma = 0.45;
    t2_spatial_sigma = 0.7;
  }

let clamp (lo, hi) x = Float.min hi (Float.max lo x)

(* Persistent (manufacturing) state derived only from the seed, so every
   day of a series shares it. *)
type persistent = {
  edge_bias : (int * int, float) Hashtbl.t;  (* log-space CNOT quality *)
  edge_duration : (int * int, int) Hashtbl.t;
  readout_bias : float array;
  t2_bias : float array;
  single_bias : float array;
}

let persistent_of_seed params topology seed =
  let rng = Rng.create (seed * 2 + 1) in
  let n = Topology.num_qubits topology in
  let edge_bias = Hashtbl.create 32 and edge_duration = Hashtbl.create 32 in
  let lo_d, hi_d = params.cnot_duration_slots in
  List.iter
    (fun e ->
      Hashtbl.add edge_bias e
        (Rng.gaussian rng ~mean:0.0 ~sigma:params.cnot_err_spatial_sigma);
      Hashtbl.add edge_duration e (lo_d + Rng.int rng (hi_d - lo_d + 1)))
    (Topology.edges topology);
  {
    edge_bias;
    edge_duration;
    readout_bias =
      Array.init n (fun _ ->
          Rng.gaussian rng ~mean:0.0 ~sigma:params.readout_err_spatial_sigma);
    t2_bias =
      Array.init n (fun _ ->
          Rng.gaussian rng ~mean:0.0 ~sigma:params.t2_spatial_sigma);
    single_bias =
      Array.init n (fun _ ->
          Rng.gaussian rng ~mean:0.0 ~sigma:params.single_err_sigma);
  }

let generate ?(params = default) ~topology ~seed ~day () =
  let persistent = persistent_of_seed params topology seed in
  (* Daily drift stream: deterministic in (seed, day) alone. *)
  let rng = Rng.create ((seed * 1_000_003) + (day * 7_919) + 17) in
  let n = Topology.num_qubits topology in
  let cnot_error = Array.make_matrix n n Float.nan in
  let cnot_duration = Array.make_matrix n n 0 in
  List.iter
    (fun (a, b) ->
      let drift =
        Rng.gaussian rng ~mean:0.0 ~sigma:params.cnot_err_temporal_sigma
      in
      let e =
        clamp params.cnot_err_clamp
          (params.cnot_err_median
          *. exp (Hashtbl.find persistent.edge_bias (a, b) +. drift))
      in
      cnot_error.(a).(b) <- e;
      cnot_error.(b).(a) <- e;
      let d = Hashtbl.find persistent.edge_duration (a, b) in
      cnot_duration.(a).(b) <- d;
      cnot_duration.(b).(a) <- d)
    (Topology.edges topology);
  let daily base_median bias sigma clamp_range =
    let drift = Rng.gaussian rng ~mean:0.0 ~sigma in
    clamp clamp_range (base_median *. exp (bias +. drift))
  in
  let readout_error =
    Array.init n (fun h ->
        daily params.readout_err_median persistent.readout_bias.(h)
          params.readout_err_temporal_sigma params.readout_err_clamp)
  in
  let t2_us =
    Array.init n (fun h ->
        daily params.t2_median_us persistent.t2_bias.(h)
          params.t2_temporal_sigma params.t2_clamp_us)
  in
  let t1_us =
    (* T2 <= 2 T1 physically; sample T1 in [T2/2, 1.5*T2]. *)
    Array.init n (fun h -> t2_us.(h) *. Rng.uniform rng ~lo:0.5 ~hi:1.5)
  in
  let single_error =
    Array.init n (fun h ->
        clamp (0.0003, 0.02)
          (params.single_err_median *. exp persistent.single_bias.(h)))
  in
  Calibration.create ~topology ~day ~t1_us ~t2_us ~readout_error ~single_error
    ~cnot_error ~cnot_duration

let series ?params ~topology ~seed ~days () =
  Array.init days (fun day -> generate ?params ~topology ~seed ~day ())
